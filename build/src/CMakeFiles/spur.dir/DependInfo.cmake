
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/bus.cc" "src/CMakeFiles/spur.dir/cache/bus.cc.o" "gcc" "src/CMakeFiles/spur.dir/cache/bus.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/spur.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/spur.dir/cache/cache.cc.o.d"
  "/root/repo/src/common/args.cc" "src/CMakeFiles/spur.dir/common/args.cc.o" "gcc" "src/CMakeFiles/spur.dir/common/args.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/spur.dir/common/log.cc.o" "gcc" "src/CMakeFiles/spur.dir/common/log.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/spur.dir/common/random.cc.o" "gcc" "src/CMakeFiles/spur.dir/common/random.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/spur.dir/common/table.cc.o" "gcc" "src/CMakeFiles/spur.dir/common/table.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/spur.dir/common/types.cc.o" "gcc" "src/CMakeFiles/spur.dir/common/types.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/spur.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/spur.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/mp_system.cc" "src/CMakeFiles/spur.dir/core/mp_system.cc.o" "gcc" "src/CMakeFiles/spur.dir/core/mp_system.cc.o.d"
  "/root/repo/src/core/overhead_model.cc" "src/CMakeFiles/spur.dir/core/overhead_model.cc.o" "gcc" "src/CMakeFiles/spur.dir/core/overhead_model.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/spur.dir/core/system.cc.o" "gcc" "src/CMakeFiles/spur.dir/core/system.cc.o.d"
  "/root/repo/src/core/tlb_system.cc" "src/CMakeFiles/spur.dir/core/tlb_system.cc.o" "gcc" "src/CMakeFiles/spur.dir/core/tlb_system.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/spur.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/spur.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/frame_table.cc" "src/CMakeFiles/spur.dir/mem/frame_table.cc.o" "gcc" "src/CMakeFiles/spur.dir/mem/frame_table.cc.o.d"
  "/root/repo/src/policy/dirty_policy.cc" "src/CMakeFiles/spur.dir/policy/dirty_policy.cc.o" "gcc" "src/CMakeFiles/spur.dir/policy/dirty_policy.cc.o.d"
  "/root/repo/src/policy/ref_policy.cc" "src/CMakeFiles/spur.dir/policy/ref_policy.cc.o" "gcc" "src/CMakeFiles/spur.dir/policy/ref_policy.cc.o.d"
  "/root/repo/src/pt/page_table.cc" "src/CMakeFiles/spur.dir/pt/page_table.cc.o" "gcc" "src/CMakeFiles/spur.dir/pt/page_table.cc.o.d"
  "/root/repo/src/pt/segment_map.cc" "src/CMakeFiles/spur.dir/pt/segment_map.cc.o" "gcc" "src/CMakeFiles/spur.dir/pt/segment_map.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/spur.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/spur.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/config_file.cc" "src/CMakeFiles/spur.dir/sim/config_file.cc.o" "gcc" "src/CMakeFiles/spur.dir/sim/config_file.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/CMakeFiles/spur.dir/sim/counters.cc.o" "gcc" "src/CMakeFiles/spur.dir/sim/counters.cc.o.d"
  "/root/repo/src/sim/events.cc" "src/CMakeFiles/spur.dir/sim/events.cc.o" "gcc" "src/CMakeFiles/spur.dir/sim/events.cc.o.d"
  "/root/repo/src/sim/timing.cc" "src/CMakeFiles/spur.dir/sim/timing.cc.o" "gcc" "src/CMakeFiles/spur.dir/sim/timing.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/spur.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/spur.dir/stats/summary.cc.o.d"
  "/root/repo/src/vm/region.cc" "src/CMakeFiles/spur.dir/vm/region.cc.o" "gcc" "src/CMakeFiles/spur.dir/vm/region.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/CMakeFiles/spur.dir/vm/vm.cc.o" "gcc" "src/CMakeFiles/spur.dir/vm/vm.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/spur.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/spur.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/process.cc" "src/CMakeFiles/spur.dir/workload/process.cc.o" "gcc" "src/CMakeFiles/spur.dir/workload/process.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/spur.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/spur.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/spur.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/spur.dir/workload/workloads.cc.o.d"
  "/root/repo/src/xlate/tlb.cc" "src/CMakeFiles/spur.dir/xlate/tlb.cc.o" "gcc" "src/CMakeFiles/spur.dir/xlate/tlb.cc.o.d"
  "/root/repo/src/xlate/translator.cc" "src/CMakeFiles/spur.dir/xlate/translator.cc.o" "gcc" "src/CMakeFiles/spur.dir/xlate/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libspur.a"
)

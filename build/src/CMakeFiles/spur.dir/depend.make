# Empty dependencies file for spur.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_cad_developer.
# This may be replaced when dependencies are built.

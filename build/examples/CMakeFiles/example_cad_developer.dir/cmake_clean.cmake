file(REMOVE_RECURSE
  "CMakeFiles/example_cad_developer.dir/cad_developer.cc.o"
  "CMakeFiles/example_cad_developer.dir/cad_developer.cc.o.d"
  "example_cad_developer"
  "example_cad_developer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cad_developer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_policy_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_policy_explorer.dir/policy_explorer.cc.o"
  "CMakeFiles/example_policy_explorer.dir/policy_explorer.cc.o.d"
  "example_policy_explorer"
  "example_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_lisp_compiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_lisp_compiler.dir/lisp_compiler.cc.o"
  "CMakeFiles/example_lisp_compiler.dir/lisp_compiler.cc.o.d"
  "example_lisp_compiler"
  "example_lisp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lisp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

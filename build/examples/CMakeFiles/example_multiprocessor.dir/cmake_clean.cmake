file(REMOVE_RECURSE
  "CMakeFiles/example_multiprocessor.dir/multiprocessor.cc.o"
  "CMakeFiles/example_multiprocessor.dir/multiprocessor.cc.o.d"
  "example_multiprocessor"
  "example_multiprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

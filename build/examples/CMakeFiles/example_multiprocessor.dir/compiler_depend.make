# Empty compiler generated dependencies file for example_multiprocessor.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_calibrate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_calibrate.dir/calibrate.cc.o"
  "CMakeFiles/example_calibrate.dir/calibrate.cc.o.d"
  "example_calibrate"
  "example_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

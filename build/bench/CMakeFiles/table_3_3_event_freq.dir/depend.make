# Empty dependencies file for table_3_3_event_freq.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table_3_3_event_freq.

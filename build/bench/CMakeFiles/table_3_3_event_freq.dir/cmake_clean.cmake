file(REMOVE_RECURSE
  "CMakeFiles/table_3_3_event_freq.dir/table_3_3_event_freq.cc.o"
  "CMakeFiles/table_3_3_event_freq.dir/table_3_3_event_freq.cc.o.d"
  "table_3_3_event_freq"
  "table_3_3_event_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_3_3_event_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig_3_2_formats.dir/fig_3_2_formats.cc.o"
  "CMakeFiles/fig_3_2_formats.dir/fig_3_2_formats.cc.o.d"
  "fig_3_2_formats"
  "fig_3_2_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_2_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

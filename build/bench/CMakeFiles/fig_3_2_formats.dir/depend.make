# Empty dependencies file for fig_3_2_formats.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_excess_model.
# This may be replaced when dependencies are built.

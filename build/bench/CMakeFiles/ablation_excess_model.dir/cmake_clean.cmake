file(REMOVE_RECURSE
  "CMakeFiles/ablation_excess_model.dir/ablation_excess_model.cc.o"
  "CMakeFiles/ablation_excess_model.dir/ablation_excess_model.cc.o.d"
  "ablation_excess_model"
  "ablation_excess_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_excess_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

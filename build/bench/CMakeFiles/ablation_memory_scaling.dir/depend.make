# Empty dependencies file for ablation_memory_scaling.
# This may be replaced when dependencies are built.

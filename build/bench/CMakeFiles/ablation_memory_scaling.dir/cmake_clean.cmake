file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_scaling.dir/ablation_memory_scaling.cc.o"
  "CMakeFiles/ablation_memory_scaling.dir/ablation_memory_scaling.cc.o.d"
  "ablation_memory_scaling"
  "ablation_memory_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/micro_cache.dir/micro_cache.cc.o"
  "CMakeFiles/micro_cache.dir/micro_cache.cc.o.d"
  "micro_cache"
  "micro_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/micro_xlate.dir/micro_xlate.cc.o"
  "CMakeFiles/micro_xlate.dir/micro_xlate.cc.o.d"
  "micro_xlate"
  "micro_xlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_xlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

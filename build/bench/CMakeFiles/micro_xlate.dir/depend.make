# Empty dependencies file for micro_xlate.
# This may be replaced when dependencies are built.

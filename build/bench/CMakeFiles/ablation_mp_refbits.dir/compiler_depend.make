# Empty compiler generated dependencies file for ablation_mp_refbits.
# This may be replaced when dependencies are built.

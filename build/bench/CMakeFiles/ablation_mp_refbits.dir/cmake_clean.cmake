file(REMOVE_RECURSE
  "CMakeFiles/ablation_mp_refbits.dir/ablation_mp_refbits.cc.o"
  "CMakeFiles/ablation_mp_refbits.dir/ablation_mp_refbits.cc.o.d"
  "ablation_mp_refbits"
  "ablation_mp_refbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mp_refbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

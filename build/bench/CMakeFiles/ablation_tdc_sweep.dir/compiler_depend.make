# Empty compiler generated dependencies file for ablation_tdc_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_tdc_sweep.dir/ablation_tdc_sweep.cc.o"
  "CMakeFiles/ablation_tdc_sweep.dir/ablation_tdc_sweep.cc.o.d"
  "ablation_tdc_sweep"
  "ablation_tdc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tdc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_flush_mechanism.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush_mechanism.dir/ablation_flush_mechanism.cc.o"
  "CMakeFiles/ablation_flush_mechanism.dir/ablation_flush_mechanism.cc.o.d"
  "ablation_flush_mechanism"
  "ablation_flush_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

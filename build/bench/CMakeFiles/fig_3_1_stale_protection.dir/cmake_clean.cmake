file(REMOVE_RECURSE
  "CMakeFiles/fig_3_1_stale_protection.dir/fig_3_1_stale_protection.cc.o"
  "CMakeFiles/fig_3_1_stale_protection.dir/fig_3_1_stale_protection.cc.o.d"
  "fig_3_1_stale_protection"
  "fig_3_1_stale_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_3_1_stale_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig_3_1_stale_protection.
# This may be replaced when dependencies are built.

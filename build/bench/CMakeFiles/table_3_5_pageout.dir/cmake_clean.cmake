file(REMOVE_RECURSE
  "CMakeFiles/table_3_5_pageout.dir/table_3_5_pageout.cc.o"
  "CMakeFiles/table_3_5_pageout.dir/table_3_5_pageout.cc.o.d"
  "table_3_5_pageout"
  "table_3_5_pageout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_3_5_pageout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table_3_5_pageout.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb_baseline.dir/ablation_tlb_baseline.cc.o"
  "CMakeFiles/ablation_tlb_baseline.dir/ablation_tlb_baseline.cc.o.d"
  "ablation_tlb_baseline"
  "ablation_tlb_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

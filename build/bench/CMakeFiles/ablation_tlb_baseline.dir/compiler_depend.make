# Empty compiler generated dependencies file for ablation_tlb_baseline.
# This may be replaced when dependencies are built.

# Empty dependencies file for table_2_1_config.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table_2_1_config.dir/table_2_1_config.cc.o"
  "CMakeFiles/table_2_1_config.dir/table_2_1_config.cc.o.d"
  "table_2_1_config"
  "table_2_1_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_2_1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table_3_4_dirty_overhead.dir/table_3_4_dirty_overhead.cc.o"
  "CMakeFiles/table_3_4_dirty_overhead.dir/table_3_4_dirty_overhead.cc.o.d"
  "table_3_4_dirty_overhead"
  "table_3_4_dirty_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_3_4_dirty_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

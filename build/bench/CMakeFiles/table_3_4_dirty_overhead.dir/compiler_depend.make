# Empty compiler generated dependencies file for table_3_4_dirty_overhead.
# This may be replaced when dependencies are built.

# Empty dependencies file for table_4_1_refbits.
# This may be replaced when dependencies are built.

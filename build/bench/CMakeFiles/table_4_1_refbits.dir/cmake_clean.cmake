file(REMOVE_RECURSE
  "CMakeFiles/table_4_1_refbits.dir/table_4_1_refbits.cc.o"
  "CMakeFiles/table_4_1_refbits.dir/table_4_1_refbits.cc.o.d"
  "table_4_1_refbits"
  "table_4_1_refbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_4_1_refbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

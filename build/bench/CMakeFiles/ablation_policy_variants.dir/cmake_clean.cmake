file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_variants.dir/ablation_policy_variants.cc.o"
  "CMakeFiles/ablation_policy_variants.dir/ablation_policy_variants.cc.o.d"
  "ablation_policy_variants"
  "ablation_policy_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

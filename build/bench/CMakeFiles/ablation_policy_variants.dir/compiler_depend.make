# Empty compiler generated dependencies file for ablation_policy_variants.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush_crossover.dir/ablation_flush_crossover.cc.o"
  "CMakeFiles/ablation_flush_crossover.dir/ablation_flush_crossover.cc.o.d"
  "ablation_flush_crossover"
  "ablation_flush_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_flush_crossover.
# This may be replaced when dependencies are built.

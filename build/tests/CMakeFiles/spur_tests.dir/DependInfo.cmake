
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bus_test.cc" "tests/CMakeFiles/spur_tests.dir/bus_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/bus_test.cc.o.d"
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/spur_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/spur_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/config_file_test.cc" "tests/CMakeFiles/spur_tests.dir/config_file_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/config_file_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/spur_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/spur_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/mp_system_test.cc" "tests/CMakeFiles/spur_tests.dir/mp_system_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/mp_system_test.cc.o.d"
  "/root/repo/tests/overhead_model_test.cc" "tests/CMakeFiles/spur_tests.dir/overhead_model_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/overhead_model_test.cc.o.d"
  "/root/repo/tests/policy_test.cc" "tests/CMakeFiles/spur_tests.dir/policy_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/policy_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/spur_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/pt_test.cc" "tests/CMakeFiles/spur_tests.dir/pt_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/pt_test.cc.o.d"
  "/root/repo/tests/pte_test.cc" "tests/CMakeFiles/spur_tests.dir/pte_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/pte_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/spur_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/spur_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/spur_tests.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/system_test.cc.o.d"
  "/root/repo/tests/tlb_test.cc" "tests/CMakeFiles/spur_tests.dir/tlb_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/tlb_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/spur_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/spur_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/vm_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/spur_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/xlate_test.cc" "tests/CMakeFiles/spur_tests.dir/xlate_test.cc.o" "gcc" "tests/CMakeFiles/spur_tests.dir/xlate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spur.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

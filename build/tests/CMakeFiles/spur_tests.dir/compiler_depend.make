# Empty compiler generated dependencies file for spur_tests.
# This may be replaced when dependencies are built.

/**
 * @file
 * Tests for the virtual-address cache: lookup/fill/eviction mechanics,
 * the Figure 3.2(b) tag fields, the two flush flavours (tag-checked vs.
 * SPUR's indexed flush), and parameterized property sweeps over cache
 * geometries.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "src/cache/cache.h"
#include "src/common/random.h"
#include "src/sim/config.h"

namespace spur::cache {
namespace {

sim::MachineConfig
Config()
{
    return sim::MachineConfig::Prototype(8);
}

TEST(CacheTest, GeometryMatchesPrototype)
{
    VirtualCache vcache(Config());
    EXPECT_EQ(vcache.NumLines(), 4096u);
    EXPECT_EQ(vcache.BlocksPerPage(), 128u);
    EXPECT_EQ(vcache.NumValid(), 0u);
}

TEST(CacheTest, MissThenFillThenHit)
{
    VirtualCache vcache(Config());
    const GlobalAddr addr = 0xABCDE0;
    EXPECT_FALSE(vcache.Lookup(addr));
    LineRef line = vcache.Fill(addr, Protection::kReadOnly, false, nullptr);
    EXPECT_EQ(line.prot(), Protection::kReadOnly);
    EXPECT_FALSE(line.page_dirty());
    EXPECT_FALSE(line.block_dirty());
    EXPECT_EQ(line.state(), CoherencyState::kUnOwned);
    EXPECT_TRUE(vcache.Lookup(addr));
    EXPECT_EQ(vcache.Lookup(addr).tag(), line.tag());
    // Any address within the same block hits (the same slot).
    EXPECT_TRUE(vcache.Lookup(addr + 31));
    EXPECT_EQ(vcache.IndexOf(addr + 31), vcache.IndexOf(addr));
    // The next block does not.
    EXPECT_FALSE(vcache.Lookup(addr + 32));
}

TEST(CacheTest, DirectMappedConflictEvicts)
{
    const sim::MachineConfig config = Config();
    VirtualCache vcache(config);
    const GlobalAddr a = 0x1000;
    const GlobalAddr b = a + config.cache_bytes;  // Same index, other tag.
    vcache.Fill(a, Protection::kReadWrite, false, nullptr);
    Eviction eviction;
    vcache.Fill(b, Protection::kReadWrite, false, &eviction);
    EXPECT_TRUE(eviction.happened);
    EXPECT_FALSE(eviction.writeback);  // Victim was clean.
    EXPECT_EQ(eviction.block_addr, a);
    EXPECT_FALSE(vcache.Lookup(a));
    EXPECT_TRUE(vcache.Lookup(b));
}

TEST(CacheTest, DirtyVictimReportsWriteback)
{
    const sim::MachineConfig config = Config();
    VirtualCache vcache(config);
    const GlobalAddr a = 0x2000;
    LineRef line = vcache.Fill(a, Protection::kReadWrite, false, nullptr);
    VirtualCache::MarkWritten(line);
    EXPECT_TRUE(line.block_dirty());
    EXPECT_EQ(line.state(), CoherencyState::kOwnedExclusive);
    Eviction eviction;
    vcache.Fill(a + config.cache_bytes, Protection::kReadWrite, false,
                &eviction);
    EXPECT_TRUE(eviction.writeback);
    EXPECT_EQ(eviction.block_addr, a);
}

TEST(CacheTest, FillCopiesPteState)
{
    VirtualCache vcache(Config());
    LineRef line = vcache.Fill(0x3000, Protection::kReadWrite,
                               /*page_dirty=*/true, nullptr);
    EXPECT_EQ(line.prot(), Protection::kReadWrite);
    EXPECT_TRUE(line.page_dirty());
    EXPECT_FALSE(line.block_dirty());  // Block dirty is about *this* copy.
}

TEST(CacheTest, InvalidateBlock)
{
    VirtualCache vcache(Config());
    const GlobalAddr addr = 0x4000;
    vcache.Fill(addr, Protection::kReadWrite, false, nullptr);
    EXPECT_FALSE(vcache.InvalidateBlock(addr));  // Clean: no writeback.
    EXPECT_FALSE(vcache.Lookup(addr));

    LineRef again = vcache.Fill(addr, Protection::kReadWrite, false, nullptr);
    VirtualCache::MarkWritten(again);
    EXPECT_TRUE(vcache.InvalidateBlock(addr));  // Dirty: writeback.
    EXPECT_FALSE(vcache.InvalidateBlock(addr));  // Already gone.
}

TEST(CacheTest, BlockAddrOfReconstructsAddress)
{
    VirtualCache vcache(Config());
    const GlobalAddr addr = 0x123456789ull & ~GlobalAddr{31};
    vcache.Fill(addr, Protection::kReadWrite, false, nullptr);
    const uint64_t index = vcache.IndexOf(addr);
    EXPECT_EQ(vcache.BlockAddrOf(index, vcache.LineAt(index)), addr);
}

// ---------------------------------------------------------------------------
// Page flushes
// ---------------------------------------------------------------------------

TEST(CacheFlushTest, CheckedFlushRemovesOnlyThePage)
{
    const sim::MachineConfig config = Config();
    VirtualCache vcache(config);
    const GlobalAddr page = 16 * config.page_bytes;
    // Fill 10 blocks of the page and one conflicting foreign block.
    for (int i = 0; i < 10; ++i) {
        vcache.Fill(page + i * config.block_bytes, Protection::kReadWrite,
                    false, nullptr);
    }
    // A block from another page that maps into one of the same slots:
    // same index as page block 3, different tag.
    const GlobalAddr foreign =
        page + 3 * config.block_bytes + config.cache_bytes;
    vcache.Fill(foreign, Protection::kReadWrite, false, nullptr);

    const FlushResult result = vcache.FlushPageChecked(page);
    EXPECT_EQ(result.slots_examined, config.BlocksPerPage());
    EXPECT_EQ(result.blocks_flushed, 9u);  // Block 3 was already evicted.
    EXPECT_EQ(result.foreign_flushed, 0u);
    EXPECT_TRUE(vcache.Lookup(foreign));  // Untouched.
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(vcache.Lookup(page + i * config.block_bytes));
    }
}

TEST(CacheFlushTest, IndexedFlushHitsInnocentBlocks)
{
    const sim::MachineConfig config = Config();
    VirtualCache vcache(config);
    const GlobalAddr page = 16 * config.page_bytes;
    const GlobalAddr foreign =
        page + 3 * config.block_bytes + config.cache_bytes;
    vcache.Fill(foreign, Protection::kReadWrite, false, nullptr);

    const FlushResult result = vcache.FlushPageIndexed(page);
    EXPECT_EQ(result.blocks_flushed, 1u);
    EXPECT_EQ(result.foreign_flushed, 1u);  // The innocent block died.
    EXPECT_FALSE(vcache.Lookup(foreign));
}

TEST(CacheFlushTest, FlushCountsWritebacks)
{
    const sim::MachineConfig config = Config();
    VirtualCache vcache(config);
    const GlobalAddr page = 8 * config.page_bytes;
    for (int i = 0; i < 4; ++i) {
        LineRef line = vcache.Fill(page + i * config.block_bytes,
                                   Protection::kReadWrite, false, nullptr);
        if (i % 2 == 0) {
            VirtualCache::MarkWritten(line);
        }
    }
    const FlushResult result = vcache.FlushPageChecked(page);
    EXPECT_EQ(result.blocks_flushed, 4u);
    EXPECT_EQ(result.writebacks, 2u);
}

TEST(CacheFlushTest, ResetInvalidatesEverything)
{
    const sim::MachineConfig config = Config();
    VirtualCache vcache(config);
    for (GlobalAddr a = 0; a < config.cache_bytes;
         a += config.block_bytes) {
        vcache.Fill(a, Protection::kReadWrite, true, nullptr);
    }
    EXPECT_EQ(vcache.NumValid(), vcache.NumLines());
    vcache.Reset();
    EXPECT_EQ(vcache.NumValid(), 0u);
}

TEST(CacheTest, CoherencyStateNames)
{
    EXPECT_STREQ(ToString(CoherencyState::kInvalid), "Invalid");
    EXPECT_STREQ(ToString(CoherencyState::kUnOwned), "UnOwned");
    EXPECT_STREQ(ToString(CoherencyState::kOwnedShared), "OwnedShared");
    EXPECT_STREQ(ToString(CoherencyState::kOwnedExclusive),
                 "OwnedExclusive");
}

// ---------------------------------------------------------------------------
// Parameterized geometry sweep: the cache invariants must hold for any
// (cache size, block size) combination, not just the prototype's.
// ---------------------------------------------------------------------------

class CacheGeometryTest
    : public testing::TestWithParam<std::tuple<uint64_t, uint64_t>>
{
  protected:
    sim::MachineConfig MakeConfig() const
    {
        sim::MachineConfig config = Config();
        config.cache_bytes = std::get<0>(GetParam());
        config.block_bytes = std::get<1>(GetParam());
        config.Validate();
        return config;
    }
};

TEST_P(CacheGeometryTest, RandomFillLookupConsistency)
{
    const sim::MachineConfig config = MakeConfig();
    VirtualCache vcache(config);
    Rng rng(99);
    // Property: after Fill(a), Lookup(a) hits and reconstructs a; filling
    // never corrupts an unrelated slot's reconstruction.
    for (int i = 0; i < 2000; ++i) {
        const GlobalAddr addr =
            rng.NextBelow(uint64_t{1} << 34) & ~(config.block_bytes - 1);
        vcache.Fill(addr, Protection::kReadWrite, false, nullptr);
        ASSERT_TRUE(vcache.Lookup(addr));
        const uint64_t index = vcache.IndexOf(addr);
        ASSERT_EQ(vcache.BlockAddrOf(index, vcache.LineAt(index)), addr);
    }
    EXPECT_LE(vcache.NumValid(), vcache.NumLines());
}

TEST_P(CacheGeometryTest, CheckedPageFlushNeverTouchesForeignBlocks)
{
    const sim::MachineConfig config = MakeConfig();
    VirtualCache vcache(config);
    Rng rng(7);
    for (int round = 0; round < 50; ++round) {
        // Fill a random mix of blocks from two pages.
        const GlobalAddr page_a =
            rng.NextBelow(1u << 16) * config.page_bytes;
        const GlobalAddr page_b =
            page_a + config.cache_bytes;  // Guaranteed index conflicts.
        for (int i = 0; i < 20; ++i) {
            const GlobalAddr offset =
                rng.NextBelow(config.page_bytes) &
                ~(config.block_bytes - 1);
            vcache.Fill((i % 2 ? page_a : page_b) + offset,
                        Protection::kReadWrite, false, nullptr);
        }
        const FlushResult result = vcache.FlushPageChecked(page_a);
        EXPECT_EQ(result.foreign_flushed, 0u);
        // Nothing from page A survives.
        for (GlobalAddr a = page_a; a < page_a + config.page_bytes;
             a += config.block_bytes) {
            EXPECT_FALSE(vcache.Lookup(a));
        }
    }
}

TEST_P(CacheGeometryTest, IndexedFlushExaminesBlocksPerPageSlots)
{
    const sim::MachineConfig config = MakeConfig();
    VirtualCache vcache(config);
    const FlushResult result = vcache.FlushPageIndexed(0);
    EXPECT_EQ(result.slots_examined, config.BlocksPerPage());
    EXPECT_EQ(result.blocks_flushed, 0u);  // Cache was empty.
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    testing::Combine(testing::Values(32 * 1024, 128 * 1024, 512 * 1024),
                     testing::Values(16, 32, 64)),
    [](const testing::TestParamInfo<std::tuple<uint64_t, uint64_t>>& info) {
        return std::to_string(std::get<0>(info.param) / 1024) + "K_b" +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace spur::cache

/**
 * @file
 * Tests for the protocol model checker (src/model/, DESIGN.md §16).
 *
 * Three layers:
 *   (a) the spec machinery itself — rule selection, stimulus
 *       enumeration, canonicalization, trace formatting, and each
 *       M1..M10 invariant firing on a hand-corrupted state;
 *   (b) exhaustive exploration of every (dirty, ref) policy pair at
 *       one and two processors, with the policy-discriminating
 *       reachability facts (FLUSH never excess-faults; every other
 *       policy's write-hit-refresh is reachable);
 *   (c) differential conformance of the real SpurSystem batch path and
 *       MpSpurSystem against the spec (the deeper procs=3 sweep runs
 *       under the `model-deep` ctest label, see tests/CMakeLists.txt).
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/model/conform.h"
#include "src/model/explore.h"
#include "src/model/invariants.h"
#include "src/model/spec.h"

namespace spur::model {
namespace {

using cache::CoherencyState;
using policy::DirtyPolicyKind;
using policy::RefPolicyKind;

const std::vector<DirtyPolicyKind> kAllDirty = {
    DirtyPolicyKind::kMin,      DirtyPolicyKind::kFault,
    DirtyPolicyKind::kFlush,    DirtyPolicyKind::kSpur,
    DirtyPolicyKind::kWrite,    DirtyPolicyKind::kSpurProt,
    DirtyPolicyKind::kWriteHw};
const std::vector<RefPolicyKind> kAllRef = {
    RefPolicyKind::kMiss, RefPolicyKind::kRef, RefPolicyKind::kNoRef};

/** A healthy baseline: resident dirty page, one exclusive dirty copy. */
ProtoState
HealthyState(unsigned procs)
{
    ProtoState state;
    state.procs = procs;
    state.pte = PteState{true, Protection::kReadWrite, true, false, true,
                         false};
    state.line[0][0] = LineState{CoherencyState::kOwnedExclusive,
                                 Protection::kReadWrite, true, true};
    return state;
}

bool
Fires(const std::vector<InvariantViolation>& violations, const char* id)
{
    for (const InvariantViolation& violation : violations) {
        if (std::string(violation.id) == id) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// (a) Spec machinery.
// ---------------------------------------------------------------------------

TEST(SpecTest, InitialStateIsColdAndNonResident)
{
    const ModelConfig config{2, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    const ProtoState state = InitialState(config);
    EXPECT_EQ(state.procs, 2u);
    EXPECT_FALSE(state.pte.resident);
    for (unsigned i = 0; i < state.procs; ++i) {
        for (unsigned b = 0; b < kTrackedBlocks; ++b) {
            EXPECT_FALSE(state.line[i][b].valid());
        }
    }
    EXPECT_TRUE(CheckState(state, config).empty());
}

TEST(SpecTest, StimuliCoverEveryProcessorAndBlock)
{
    const ModelConfig config{2, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    // Cold machine: 3 access kinds × 2 cpus × 2 blocks, no kernel ops.
    EXPECT_EQ(EnumerateStimuli(InitialState(config)).size(),
              3u * 2u * kTrackedBlocks);
    // Resident page: the kernel's flush-page and clear-ref join in.
    EXPECT_EQ(EnumerateStimuli(HealthyState(2)).size(),
              3u * 2u * kTrackedBlocks + 2u);
}

TEST(SpecTest, WriteMissSelectedOnColdMachine)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    SpecStepResult step;
    std::string error;
    ASSERT_TRUE(SpecStep(InitialState(config),
                         {StimulusKind::kWrite, 0, 0}, config, &step,
                         &error))
        << error;
    EXPECT_STREQ(step.rule->id, "write-miss");
    EXPECT_TRUE(step.next.pte.resident);
    EXPECT_TRUE(step.next.pte.dirty);
    EXPECT_FALSE(step.next.pte.zfod);  // The write consumed the ZFOD state.
    EXPECT_EQ(step.next.line[0][0].cs, CoherencyState::kOwnedExclusive);
    EXPECT_TRUE(step.next.line[0][0].block_dirty);
}

TEST(SpecTest, StaleCopyTakesDirtyBitMissNotFault)
{
    // SPUR: the page is already dirty but this block's cached P copy is
    // stale — the write must refresh it (dirty-bit miss), not re-fault.
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.line[0][1] = LineState{CoherencyState::kUnOwned,
                                 Protection::kReadWrite, false, false};
    SpecStepResult step;
    std::string error;
    ASSERT_TRUE(SpecStep(state, {StimulusKind::kWrite, 0, 1}, config, &step,
                         &error))
        << error;
    EXPECT_STREQ(step.rule->id, "write-hit-refresh");
    EXPECT_TRUE(step.next.line[0][1].page_dirty);
}

TEST(SpecTest, FlushFirstWriteHitPurgesEveryCache)
{
    // FLUSH: the necessary fault flushes the page everywhere, then the
    // store re-executes as a write miss under the upgraded protection.
    const ModelConfig config{2, DirtyPolicyKind::kFlush,
                             RefPolicyKind::kMiss};
    ProtoState state;
    state.procs = 2;
    state.pte = PteState{true, Protection::kReadOnly, false, false, true,
                         true};
    state.line[0][0] = LineState{CoherencyState::kUnOwned,
                                 Protection::kReadOnly, false, false};
    state.line[1][1] = LineState{CoherencyState::kUnOwned,
                                 Protection::kReadOnly, false, false};
    SpecStepResult step;
    std::string error;
    ASSERT_TRUE(SpecStep(state, {StimulusKind::kWrite, 0, 0}, config, &step,
                         &error))
        << error;
    EXPECT_STREQ(step.rule->id, "write-hit-flush-fault");
    EXPECT_TRUE(step.next.pte.soft_dirty);
    EXPECT_EQ(step.next.pte.prot, Protection::kReadWrite);
    // The peer's copy of the *other* block is gone too — that is the
    // mechanism behind FLUSH's no-excess-fault guarantee.
    EXPECT_FALSE(step.next.line[1][1].valid());
    EXPECT_EQ(step.next.line[0][0].cs, CoherencyState::kOwnedExclusive);
}

TEST(SpecTest, CanonicalKeyQuotientsProcessorIdsOnly)
{
    ProtoState a = HealthyState(2);
    // Same configuration with the processors' roles swapped…
    ProtoState b;
    b.procs = 2;
    b.pte = a.pte;
    b.line[1][0] = a.line[0][0];
    EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
    // …but moving the copy to the other *block* is a different state:
    // tracked blocks are deliberately not symmetry-reduced.
    ProtoState c;
    c.procs = 2;
    c.pte = a.pte;
    c.line[0][1] = a.line[0][0];
    EXPECT_NE(CanonicalKey(a), CanonicalKey(c));
}

TEST(SpecTest, EveryRuleHasStableIdAndDescription)
{
    for (const Rule& rule : SpecRules()) {
        EXPECT_NE(rule.id, nullptr);
        EXPECT_NE(rule.description, nullptr);
        EXPECT_NE(rule.guard, nullptr);
        EXPECT_NE(rule.apply, nullptr);
    }
    EXPECT_EQ(SpecRules().size(), 13u);
}

// ---------------------------------------------------------------------------
// (a) Invariants: each fires on a hand-corrupted state.
// ---------------------------------------------------------------------------

TEST(InvariantTest, HealthyStateIsSilent)
{
    for (const DirtyPolicyKind dirty : kAllDirty) {
        ModelConfig config{2, dirty, RefPolicyKind::kMiss};
        ProtoState state = HealthyState(2);
        if (dirty == DirtyPolicyKind::kFault ||
            dirty == DirtyPolicyKind::kFlush ||
            dirty == DirtyPolicyKind::kSpurProt) {
            state.pte.soft_dirty = true;  // Emulation records SD, not D.
        }
        EXPECT_TRUE(CheckState(state, config).empty())
            << policy::ToString(dirty);
    }
}

TEST(InvariantTest, M1FiresOnTwoOwners)
{
    const ModelConfig config{2, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(2);
    state.line[0][0].cs = CoherencyState::kOwnedShared;
    state.line[0][0].block_dirty = false;
    state.line[1][0] = state.line[0][0];
    EXPECT_TRUE(Fires(CheckState(state, config), "M1"));
}

TEST(InvariantTest, M2FiresOnExclusiveWithCompany)
{
    const ModelConfig config{2, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(2);
    state.line[1][0] = LineState{CoherencyState::kUnOwned,
                                 Protection::kReadWrite, true, false};
    const auto violations = CheckState(state, config);
    EXPECT_TRUE(Fires(violations, "M2"));
    EXPECT_FALSE(Fires(violations, "M1"));  // Still only one owner.
}

TEST(InvariantTest, M3FiresOnDirtyBlockWithoutOwnership)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.line[0][0].cs = CoherencyState::kUnOwned;
    EXPECT_TRUE(Fires(CheckState(state, config), "M3"));
}

TEST(InvariantTest, M4FiresOnDirtyBlockWithCleanPte)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.pte.dirty = false;          // The lost-dirty-bit bug:
    state.line[0][0].page_dirty = false;  // (avoid tripping M5 as well)
    EXPECT_TRUE(Fires(CheckState(state, config), "M4"));
}

TEST(InvariantTest, M5FiresOnCachedPAheadOfPte)
{
    const ModelConfig config{1, DirtyPolicyKind::kMin, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.pte.dirty = false;
    state.line[0][0].block_dirty = false;  // (avoid tripping M3/M4)
    EXPECT_TRUE(Fires(CheckState(state, config), "M5"));
}

TEST(InvariantTest, M6FiresOnProtectionDriftUnderEmulation)
{
    const ModelConfig config{1, DirtyPolicyKind::kFault,
                             RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.pte.dirty = false;
    state.pte.soft_dirty = false;  // RW protection with SD clear: drift.
    state.line[0][0] = LineState{};
    EXPECT_TRUE(Fires(CheckState(state, config), "M6"));
}

TEST(InvariantTest, M6FiresOnStaleReadOnlyCopyUnderFlush)
{
    const ModelConfig config{2, DirtyPolicyKind::kFlush,
                             RefPolicyKind::kMiss};
    ProtoState state;
    state.procs = 2;
    state.pte = PteState{true, Protection::kReadWrite, false, true, true,
                         false};
    // FLUSH promises this copy cannot exist (it would excess-fault):
    state.line[1][1] = LineState{CoherencyState::kUnOwned,
                                 Protection::kReadOnly, false, false};
    EXPECT_TRUE(Fires(CheckState(state, config), "M6"));
}

TEST(InvariantTest, M7FiresOnCachedBlocksOfUnreferencedPage)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kRef};
    ProtoState state = HealthyState(1);
    state.pte.referenced = false;
    EXPECT_TRUE(Fires(CheckState(state, config), "M7"));
}

TEST(InvariantTest, M8FiresOnDenormalizedInvalidLine)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.line[0][1].prot = Protection::kReadWrite;  // Invalid yet nonzero.
    EXPECT_TRUE(Fires(CheckState(state, config), "M8"));
}

TEST(InvariantTest, M8FiresOnCachedCopyOfNonResidentPage)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    ProtoState state = HealthyState(1);
    state.pte = PteState{};
    state.line[0][0].page_dirty = false;  // (isolate to M8: avoid M4/M5)
    state.line[0][0].block_dirty = false;
    EXPECT_TRUE(Fires(CheckState(state, config), "M8"));
}

TEST(InvariantTest, M9FiresWhenDirtyBitFalls)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    const ProtoState before = HealthyState(1);
    ProtoState after = before;
    after.pte.dirty = false;
    after.line[0][0].page_dirty = false;
    after.line[0][0].block_dirty = false;
    EXPECT_TRUE(Fires(
        CheckTransition(before, {StimulusKind::kRead, 0, 0}, after, config),
        "M9"));
}

TEST(InvariantTest, M10FiresWhenRFallsOutsideClearRef)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    const ProtoState before = HealthyState(1);
    ProtoState after = before;
    after.pte.referenced = false;
    EXPECT_TRUE(Fires(
        CheckTransition(before, {StimulusKind::kRead, 0, 0}, after, config),
        "M10"));
    // The same drop under clear-ref is legitimate.
    EXPECT_FALSE(Fires(CheckTransition(before, {StimulusKind::kClearRef, 0, 0},
                                       after, config),
                       "M10"));
}

// ---------------------------------------------------------------------------
// (b) Exploration.
// ---------------------------------------------------------------------------

TEST(ExploreTest, EveryPolicyPairExploresCleanAtOneAndTwoProcs)
{
    for (const unsigned procs : {1u, 2u}) {
        for (const DirtyPolicyKind dirty : kAllDirty) {
            for (const RefPolicyKind ref : kAllRef) {
                const ModelConfig config{procs, dirty, ref};
                const ExploreResult result = Explore(config);
                EXPECT_TRUE(result.ok)
                    << "procs=" << procs << " dirty="
                    << policy::ToString(dirty)
                    << " ref=" << policy::ToString(ref) << "\n"
                    << result.problem;
                EXPECT_GT(result.states.size(), 4u);
                EXPECT_GT(result.transitions, result.states.size());
            }
        }
    }
}

TEST(ExploreTest, StaleRefreshReachableEverywhereButFlush)
{
    // The paper's Table 3.1 economics hinge on these reachability facts:
    // every policy except FLUSH can meet a stale cached copy on a write
    // hit (MIN/SPUR dirty-bit miss, FAULT/SPUR-PROT excess fault, WRITE
    // PTE re-check), while FLUSH's purge-on-fault makes that state
    // unreachable — it trades flushes for a no-excess-fault guarantee.
    for (const DirtyPolicyKind dirty : kAllDirty) {
        const ModelConfig config{2, dirty, RefPolicyKind::kMiss};
        const ExploreResult result = Explore(config);
        ASSERT_TRUE(result.ok) << result.problem;
        const bool refresh_reachable =
            result.rule_fires.find("write-hit-refresh") !=
            result.rule_fires.end();
        EXPECT_EQ(refresh_reachable, dirty != DirtyPolicyKind::kFlush)
            << policy::ToString(dirty);
        const bool flush_fault_reachable =
            result.rule_fires.find("write-hit-flush-fault") !=
            result.rule_fires.end();
        EXPECT_EQ(flush_fault_reachable, dirty == DirtyPolicyKind::kFlush)
            << policy::ToString(dirty);
    }
}

TEST(ExploreTest, SymmetryReductionKeepsTwoProcStateSpaceSmall)
{
    const ModelConfig config{2, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    const ExploreResult result = Explore(config);
    ASSERT_TRUE(result.ok) << result.problem;
    // 229 canonical states at two processors (see DESIGN.md §16); the
    // exact count pins the spec — an unintended rule change moves it.
    EXPECT_EQ(result.states.size(), 229u);
    EXPECT_EQ(result.transitions, 3204u);
}

TEST(ExploreTest, TraceWalksBackToTheInitialState)
{
    const ModelConfig config{1, DirtyPolicyKind::kSpur, RefPolicyKind::kMiss};
    const ExploreResult result = Explore(config);
    ASSERT_TRUE(result.ok) << result.problem;
    ASSERT_GT(result.states.size(), 1u);

    const size_t last = result.states.size() - 1;
    const std::vector<Stimulus> trace = TraceTo(result, last);
    EXPECT_EQ(trace.size(), result.states[last].depth);

    // Replaying the stimulus trace through the spec lands on the state.
    ProtoState state = InitialState(config);
    for (const Stimulus& stimulus : trace) {
        SpecStepResult step;
        std::string error;
        ASSERT_TRUE(SpecStep(state, stimulus, config, &step, &error))
            << error;
        state = step.next;
    }
    EXPECT_TRUE(state == result.states[last].state);

    const std::string rendered = FormatTrace(result, last);
    EXPECT_NE(rendered.find("  0. "), std::string::npos);
    EXPECT_NE(rendered.find(" -->\n"), std::string::npos);
    EXPECT_NE(rendered.find("pte{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// (c) Differential conformance against the real machine.
// ---------------------------------------------------------------------------

TEST(ConformTest, BatchHotPathMatchesSpecForEveryPolicyPair)
{
    for (const DirtyPolicyKind dirty : kAllDirty) {
        for (const RefPolicyKind ref : kAllRef) {
            const ModelConfig config{1, dirty, ref};
            const ConformResult result =
                Conform(config, Implementation::kUniprocessorBatch);
            EXPECT_TRUE(result.ok)
                << "dirty=" << policy::ToString(dirty)
                << " ref=" << policy::ToString(ref) << "\n"
                << result.problem;
            EXPECT_GT(result.pairs_checked, 0u);
        }
    }
}

TEST(ConformTest, MultiprocessorMatchesSpecAtTwoProcs)
{
    for (const DirtyPolicyKind dirty : kAllDirty) {
        for (const RefPolicyKind ref : kAllRef) {
            const ModelConfig config{2, dirty, ref};
            const ConformResult result =
                Conform(config, Implementation::kMultiprocessor);
            EXPECT_TRUE(result.ok)
                << "dirty=" << policy::ToString(dirty)
                << " ref=" << policy::ToString(ref) << "\n"
                << result.problem;
            EXPECT_GT(result.states_replayed, 0u);
        }
    }
}

TEST(ConformTest, DegenerateBusMatchesBatchPathStateForState)
{
    // procs=1 through the MpSpurSystem: the snoop bus with no peers must
    // agree with the spec (and hence with the uniprocessor batch path).
    const ModelConfig config{1, DirtyPolicyKind::kFlush, RefPolicyKind::kRef};
    const ConformResult result =
        Conform(config, Implementation::kMultiprocessor);
    EXPECT_TRUE(result.ok) << result.problem;
}

}  // namespace
}  // namespace spur::model

/**
 * @file
 * Tests for the TLB and the TLB + physical-cache baseline machine: the
 * free reference/dirty-bit maintenance that motivates the whole paper,
 * the translation-on-every-access cost, and the reclaim shootdown path.
 */
#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/core/tlb_system.h"
#include "src/workload/driver.h"
#include "src/workload/process.h"
#include "src/workload/workloads.h"
#include "src/xlate/tlb.h"

namespace spur {
namespace {

using workload::kHeapBase;

// ---------------------------------------------------------------------------
// Tlb
// ---------------------------------------------------------------------------

TEST(TlbTest, MissThenHit)
{
    xlate::Tlb tlb(64);
    EXPECT_FALSE(tlb.Lookup(42));
    tlb.Insert(42);
    EXPECT_TRUE(tlb.Lookup(42));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, DirectMappedConflict)
{
    xlate::Tlb tlb(64);
    tlb.Insert(1);
    tlb.Insert(1 + 64);  // Same slot.
    EXPECT_FALSE(tlb.Lookup(1));
    EXPECT_TRUE(tlb.Lookup(1 + 64));
}

TEST(TlbTest, InvalidateAndFlush)
{
    xlate::Tlb tlb(64);
    tlb.Insert(7);
    tlb.Invalidate(7);
    EXPECT_FALSE(tlb.Lookup(7));
    tlb.Insert(8);
    tlb.Insert(9);
    tlb.Flush();
    EXPECT_FALSE(tlb.Lookup(8));
    EXPECT_FALSE(tlb.Lookup(9));
    // Invalidating an absent vpn is a no-op.
    tlb.Invalidate(12345);
}

TEST(TlbTest, RejectsBadSizes)
{
    EXPECT_EXIT(xlate::Tlb(0), testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(xlate::Tlb(63), testing::ExitedWithCode(1),
                "power of two");
}

// ---------------------------------------------------------------------------
// TlbSystem
// ---------------------------------------------------------------------------

class TlbSystemTest : public testing::Test
{
  protected:
    TlbSystemTest() : system_(sim::MachineConfig::Prototype(8))
    {
        pid_ = system_.CreateProcess();
        system_.MapRegion(pid_, kHeapBase,
                          130 * system_.config().page_bytes,
                          vm::PageKind::kHeap);
    }

    core::TlbSystem system_;
    Pid pid_ = 0;
};

TEST_F(TlbSystemTest, DirtyBitsAreFree)
{
    // A write sets the PTE D bit with zero fault cycles: the paper's
    // "checking the bits incurs no additional overhead".
    system_.Access(pid_, kHeapBase, AccessType::kWrite);
    const auto& ev = system_.events();
    // The clean->dirty transition is recorded for bookkeeping...
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
    // ...but no 1000-cycle handler ran: fault time is only the page
    // fault software, never dirty-bit handling.
    EXPECT_EQ(system_.timing().Get(sim::TimeBucket::kFault),
              system_.config().t_pagefault_sw);
    EXPECT_EQ(ev.Get(sim::Event::kDirtyBitMiss), 0u);
    EXPECT_EQ(ev.Get(sim::Event::kExcessFault), 0u);
}

TEST_F(TlbSystemTest, ReferenceBitsAreTrueAndFree)
{
    system_.Access(pid_, kHeapBase, AccessType::kRead);
    EXPECT_EQ(system_.events().Get(sim::Event::kRefFault), 0u);
    // The PTE's R bit is set (via the TLB path).
    // Touch another page; both stay referenced.
    system_.Access(pid_, kHeapBase + 4096, AccessType::kRead);
    EXPECT_EQ(system_.events().Get(sim::Event::kRefFault), 0u);
}

TEST_F(TlbSystemTest, EveryAccessPaysTheTlbCycle)
{
    // Two hits to the same cached block still charge translation twice.
    system_.Access(pid_, kHeapBase, AccessType::kRead);
    const Cycles xlate_after_one =
        system_.timing().Get(sim::TimeBucket::kXlate);
    system_.Access(pid_, kHeapBase, AccessType::kRead);
    EXPECT_EQ(system_.timing().Get(sim::TimeBucket::kXlate),
              xlate_after_one + 1);
}

TEST_F(TlbSystemTest, TlbMissWalksThePageTable)
{
    system_.Access(pid_, kHeapBase, AccessType::kRead);
    EXPECT_EQ(system_.tlb().misses(), 1u);
    system_.Access(pid_, kHeapBase + 8, AccessType::kRead);
    EXPECT_EQ(system_.tlb().misses(), 1u);
    EXPECT_GE(system_.tlb().hits(), 1u);
    // A conflicting vpn (64 pages away) displaces the entry.
    system_.Access(pid_, kHeapBase + 64 * 4096, AccessType::kRead);
    system_.Access(pid_, kHeapBase, AccessType::kRead);
    EXPECT_EQ(system_.tlb().misses(), 3u);
}

TEST_F(TlbSystemTest, ZeroFillClassificationMatchesSpur)
{
    system_.Access(pid_, kHeapBase, AccessType::kWrite);
    EXPECT_EQ(system_.events().Get(sim::Event::kDirtyFaultZfod), 1u);
}

TEST_F(TlbSystemTest, RunsAFullWorkloadViaTheDriver)
{
    // The WorkloadHost abstraction lets the same scripts run here.
    core::TlbSystem machine(sim::MachineConfig::Prototype(8));
    workload::Driver driver(machine, workload::MakeSlc(), 300'000, 1);
    driver.Run();
    EXPECT_EQ(machine.events().TotalRefs(), 300'000u);
    EXPECT_GT(machine.tlb().hits(), machine.tlb().misses());
    EXPECT_EQ(machine.events().Get(sim::Event::kRefFault), 0u);
}

TEST_F(TlbSystemTest, ReclaimShootsDownTlbNotCache)
{
    // Under memory pressure pages get reclaimed; the TLB machine pays a
    // shootdown (and frame-line invalidation), never a 500-cycle
    // virtual-page flush per ref-bit clear.
    core::TlbSystem machine(sim::MachineConfig::Prototype(5));
    const Pid pid = machine.CreateProcess();
    const uint64_t page = machine.config().page_bytes;
    const uint64_t pages = machine.config().NumFrames() + 256;
    machine.MapRegion(pid, kHeapBase, pages * page, vm::PageKind::kHeap);
    for (uint64_t i = 0; i < pages; ++i) {
        machine.Access(pid,
                       static_cast<ProcessAddr>(kHeapBase + i * page),
                       AccessType::kRead);
    }
    EXPECT_GT(machine.events().Get(sim::Event::kRefClear), 0u);
    EXPECT_EQ(machine.events().Get(sim::Event::kRefClearFlush), 0u);
}

TEST_F(TlbSystemTest, SameStreamFewerOverheadsThanSpurMachine)
{
    // Run identical workloads on both machines: the TLB machine takes no
    // bit-maintenance faults, while the SPUR machine pays xlate time
    // only on misses.
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::SpurSystem spur(config, policy::DirtyPolicyKind::kSpur,
                          policy::RefPolicyKind::kMiss);
    core::TlbSystem tlb(config);
    {
        workload::Driver driver(spur, workload::MakeSlc(), 300'000, 4);
        driver.Run();
    }
    {
        workload::Driver driver(tlb, workload::MakeSlc(), 300'000, 4);
        driver.Run();
    }
    // Bit maintenance: SPUR pays, the TLB machine does not.
    EXPECT_GT(spur.timing().Get(sim::TimeBucket::kDirtyAux) +
                  spur.events().Get(sim::Event::kRefFault),
              0u);
    EXPECT_EQ(tlb.events().Get(sim::Event::kRefFault), 0u);
    // Translation: the TLB machine pays on every reference, SPUR only on
    // misses - the virtual cache's raison d'etre.
    EXPECT_GT(tlb.timing().Get(sim::TimeBucket::kXlate),
              spur.timing().Get(sim::TimeBucket::kXlate));
}

}  // namespace
}  // namespace spur

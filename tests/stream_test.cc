/**
 * @file
 * Tests for crash-tolerant streaming record output (src/sweep/stream.h,
 * DESIGN.md §14): golden files pinning the frame and trailer bytes, the
 * complete-stream == --json document guarantee, a fault-injection
 * harness that truncates a streamed sweep at every byte offset and
 * proves recover + --resume reproduce the uninterrupted document byte
 * for byte, corruption rejection, and the mixed resumed/fresh shard
 * merge contract.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/args.h"
#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/runner/thread_pool.h"
#include "src/stats/run_record.h"
#include "src/sweep/merge.h"
#include "src/sweep/stream.h"

namespace spur::sweep {
namespace {

Args
MakeArgs(std::vector<std::string> words)
{
    static std::vector<std::string> storage;
    storage = std::move(words);
    static std::vector<char*> argv;
    argv.clear();
    for (std::string& word : storage) {
        argv.push_back(word.data());
    }
    return Args(static_cast<int>(argv.size()), argv.data());
}

std::string
ReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

void
WriteFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

std::string
TempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

/**
 * A fast 3x3 matrix (3 configs x 3 reps) whose cells all have distinct
 * identities; small enough that the every-byte-offset harness stays in
 * test-suite time.
 */
std::vector<core::RunConfig>
TinyMatrix()
{
    core::RunConfig base;
    base.workload = core::WorkloadId::kSlc;
    base.memory_mb = 8;
    base.refs = 3'000;
    base.seed = 5;
    std::vector<core::RunConfig> configs(3, base);
    configs[1].ref = policy::RefPolicyKind::kNoRef;
    configs[2].dirty = policy::DirtyPolicyKind::kFault;
    return configs;
}

/** The --json bytes a session would write, without touching disk. */
std::string
SessionDocument(const runner::BenchSession& session,
                const std::string& bench)
{
    stats::DocumentMeta meta;
    meta.bench = bench;
    meta.shard_index = session.shard().index;
    meta.shard_count = session.shard().count;
    meta.total_cells = session.total_cells();
    meta.ran_cells = session.ran_cells();
    return stats::JsonWriter::ToJson(meta, session.records());
}

/** One fixed record for byte-format goldens (never actually run). */
stats::RunRecord
GoldenRecord()
{
    stats::RunRecord record;
    record.bench = "golden";
    record.workload = "SLC";
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = 8;
    record.rep = 1;
    record.seed = 42;
    record.refs_issued = 1000;
    record.page_ins = 12;
    record.page_outs = 3;
    record.elapsed_seconds = 0.25;
    record.AddMetric("n_ds", 7.0);
    return record;
}

// ---- Golden files -----------------------------------------------------

/**
 * Compares a freshly written stream against its checked-in golden.  An
 * intentional format change regenerates them with
 * SPUR_UPDATE_GOLDEN=1 (and is a schema event: bump kStreamVersion).
 */
void
CheckGolden(const std::string& name, const std::string& produced)
{
    const std::string golden_path =
        std::string(SPUR_SOURCE_ROOT) + "/tests/golden/" + name;
    if (std::getenv("SPUR_UPDATE_GOLDEN") != nullptr) {
        WriteFile(golden_path, produced);
    }
    EXPECT_EQ(produced, ReadFile(golden_path))
        << name << " drifted from tests/golden/ — if intentional, bump "
        << "kStreamVersion and rerun with SPUR_UPDATE_GOLDEN=1";
}

TEST(StreamGoldenTest, EmptyMatrixStreamMatchesGolden)
{
    const std::string path = TempPath("stream_golden_empty");
    StreamWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, "golden", 0, 1, &error)) << error;
    stats::DocumentMeta meta;
    meta.bench = "golden";
    ASSERT_TRUE(writer.Finish(meta, &error)) << error;
    CheckGolden("stream_empty.json", ReadFile(path));
    std::remove(path.c_str());
}

TEST(StreamGoldenTest, SingleRecordStreamMatchesGolden)
{
    const std::string path = TempPath("stream_golden_single");
    StreamWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, "golden", 0, 1, &error)) << error;
    ASSERT_TRUE(writer.Append(GoldenRecord(), &error)) << error;
    EXPECT_EQ(writer.appended(), 1u);
    stats::DocumentMeta meta;
    meta.bench = "golden";
    meta.total_cells = 1;
    meta.ran_cells = 1;
    ASSERT_TRUE(writer.Finish(meta, &error)) << error;
    const std::string produced = ReadFile(path);
    CheckGolden("stream_single.json", produced);

    // The golden bytes must recover to the exact --json document.
    const std::optional<RecoveredStream> recovered =
        RecoverStreamBytes(produced, &error);
    ASSERT_TRUE(recovered.has_value()) << error;
    EXPECT_TRUE(recovered->complete);
    EXPECT_EQ(ToJson(recovered->document),
              stats::JsonWriter::ToJson(meta, {GoldenRecord()}));
    std::remove(path.c_str());
}

// ---- Complete streams -------------------------------------------------

TEST(StreamTest, CompleteStreamRecoversToJsonDocument)
{
    const auto configs = TinyMatrix();
    const std::string stream_path = TempPath("stream_complete");
    runner::BenchSession session(
        "t", MakeArgs({"bench", "--jobs=2", "--stream=" + stream_path}));
    session.RunMatrix(configs, /*reps=*/3, /*shuffle_seed=*/7);
    EXPECT_EQ(session.Finish(), 0);

    std::string error;
    const std::optional<RecoveredStream> recovered =
        RecoverStreamFile(stream_path, &error);
    ASSERT_TRUE(recovered.has_value()) << error;
    EXPECT_TRUE(recovered->complete);
    EXPECT_EQ(recovered->dropped_bytes, 0u);
    EXPECT_EQ(recovered->document.records.size(), 9u);
    EXPECT_EQ(ToJson(recovered->document), SessionDocument(session, "t"));
    std::remove(stream_path.c_str());
    runner::SetDefaultJobs(0);
}

// ---- Fault injection --------------------------------------------------

/**
 * The determinism guarantee extended to crashes: a stream cut at EVERY
 * byte offset recovers to a partial document from which --resume
 * reproduces the uninterrupted session's bytes exactly.
 */
TEST(StreamFaultInjectionTest, EveryTruncationOffsetResumesByteIdentically)
{
    const auto configs = TinyMatrix();
    const uint32_t reps = 3;
    const std::string stream_path = TempPath("stream_fault");
    runner::BenchSession full(
        "t", MakeArgs({"bench", "--jobs=1", "--stream=" + stream_path}));
    full.RunMatrix(configs, reps, /*shuffle_seed=*/7);
    ASSERT_EQ(full.Finish(), 0);
    const std::string expected = SessionDocument(full, "t");
    const std::string stream = ReadFile(stream_path);
    std::remove(stream_path.c_str());
    ASSERT_GT(stream.size(), 100u);

    const std::string resume_path = TempPath("stream_fault_resume");
    for (size_t cut = 0; cut < stream.size(); ++cut) {
        std::string error;
        const std::optional<RecoveredStream> recovered =
            RecoverStreamBytes(stream.substr(0, cut), &error);
        ASSERT_TRUE(recovered.has_value())
            << "cut at byte " << cut << ": " << error;
        // A proper prefix always lacks (part of) the trailer.
        EXPECT_FALSE(recovered->complete) << "cut at byte " << cut;

        WriteFile(resume_path, ToJson(recovered->document));
        runner::BenchSession resumed(
            "t",
            MakeArgs({"bench", "--jobs=1", "--resume=" + resume_path}));
        resumed.RunMatrix(configs, reps, /*shuffle_seed=*/7);
        EXPECT_EQ(resumed.resumed_cells(),
                  recovered->document.records.size())
            << "cut at byte " << cut;
        EXPECT_EQ(resumed.ran_cells(), 9u) << "cut at byte " << cut;
        ASSERT_EQ(SessionDocument(resumed, "t"), expected)
            << "cut at byte " << cut;
    }

    // The uncut stream is the complete document.
    std::string error;
    const std::optional<RecoveredStream> whole =
        RecoverStreamBytes(stream, &error);
    ASSERT_TRUE(whole.has_value()) << error;
    EXPECT_TRUE(whole->complete);
    EXPECT_EQ(ToJson(whole->document), expected);
    std::remove(resume_path.c_str());
    runner::SetDefaultJobs(0);
}

// ---- Corruption is a hard error ---------------------------------------

TEST(StreamRecoverTest, RejectsNonStreamBytes)
{
    std::string error;
    EXPECT_FALSE(
        RecoverStreamBytes("{\"schema_version\": 1}\n", &error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(StreamRecoverTest, ShortMagicPrefixIsTruncationNotCorruption)
{
    std::string error;
    const std::optional<RecoveredStream> recovered =
        RecoverStreamBytes("SPUR-ST", &error);
    ASSERT_TRUE(recovered.has_value()) << error;
    EXPECT_FALSE(recovered->complete);
    EXPECT_TRUE(recovered->document.records.empty());
}

TEST(StreamRecoverTest, RejectsUnknownFrameTag)
{
    std::string bytes = kStreamMagic;
    bytes += "X 3\nabc\n";
    std::string error;
    EXPECT_FALSE(RecoverStreamBytes(bytes, &error).has_value());
    EXPECT_NE(error.find("tag"), std::string::npos) << error;
}

/** A complete in-memory stream to tamper with. */
std::string
BuildStream(uint64_t records)
{
    const std::string path = TempPath("stream_tamper");
    StreamWriter writer;
    std::string error;
    EXPECT_TRUE(writer.Open(path, "golden", 0, 1, &error)) << error;
    stats::RunRecord record = GoldenRecord();
    for (uint64_t i = 0; i < records; ++i) {
        record.rep = static_cast<uint32_t>(i);
        EXPECT_TRUE(writer.Append(record, &error)) << error;
    }
    stats::DocumentMeta meta;
    meta.bench = "golden";
    meta.total_cells = records;
    meta.ran_cells = records;
    EXPECT_TRUE(writer.Finish(meta, &error)) << error;
    const std::string bytes = ReadFile(path);
    std::remove(path.c_str());
    return bytes;
}

TEST(StreamRecoverTest, RejectsTamperedRecordViaDigest)
{
    std::string bytes = BuildStream(2);
    // Flip one digit inside a record payload: the record still parses
    // and round-trips, so only the trailer digest can catch it.
    const size_t seed_pos = bytes.find("\"seed\": 42");
    ASSERT_NE(seed_pos, std::string::npos);
    bytes[seed_pos + 9] = '7';  // "seed": 42 -> "seed": 72
    std::string error;
    EXPECT_FALSE(RecoverStreamBytes(bytes, &error).has_value());
    EXPECT_NE(error.find("digest"), std::string::npos) << error;
}

TEST(StreamRecoverTest, RejectsTamperedTrailerCount)
{
    std::string bytes = BuildStream(2);
    const size_t pos = bytes.find("{\"records\": 2");
    ASSERT_NE(pos, std::string::npos);
    bytes[pos + 12] = '3';
    std::string error;
    EXPECT_FALSE(RecoverStreamBytes(bytes, &error).has_value());
    EXPECT_NE(error.find("count"), std::string::npos) << error;
}

TEST(StreamRecoverTest, RejectsTrailingGarbageAfterTrailer)
{
    std::string bytes = BuildStream(1);
    bytes += "R 0\n\n";
    std::string error;
    EXPECT_FALSE(RecoverStreamBytes(bytes, &error).has_value());
    EXPECT_NE(error.find("trailer"), std::string::npos) << error;
}

TEST(StreamRecoverTest, RejectsDuplicateHeaderFrame)
{
    const std::string bytes = BuildStream(0);
    const size_t header_start = std::string(kStreamMagic).size();
    const size_t header_end = bytes.find("\nR ", header_start);
    // No records: header then trailer.  Duplicate the header frame.
    const size_t trailer_start = bytes.find("T ", header_start);
    ASSERT_NE(trailer_start, std::string::npos);
    (void)header_end;
    std::string doubled = bytes.substr(0, trailer_start) +
                          bytes.substr(header_start,
                                       trailer_start - header_start) +
                          bytes.substr(trailer_start);
    std::string error;
    EXPECT_FALSE(RecoverStreamBytes(doubled, &error).has_value());
    EXPECT_NE(error.find("header"), std::string::npos) << error;
}

// ---- Resume edge cases ------------------------------------------------

TEST(StreamResumeTest, ResumeFromCompleteDocumentSkipsEverything)
{
    const auto configs = TinyMatrix();
    runner::BenchSession full("t", MakeArgs({"bench", "--jobs=1"}));
    full.RunMatrix(configs, /*reps=*/2, /*shuffle_seed=*/7);
    const std::string resume_path = TempPath("stream_resume_complete");
    WriteFile(resume_path, SessionDocument(full, "t"));

    runner::BenchSession resumed(
        "t", MakeArgs({"bench", "--jobs=1", "--resume=" + resume_path}));
    resumed.RunMatrix(configs, /*reps=*/2, /*shuffle_seed=*/7);
    EXPECT_EQ(resumed.resumed_cells(), 6u);
    EXPECT_EQ(resumed.ran_cells(), 6u);
    EXPECT_EQ(SessionDocument(resumed, "t"), SessionDocument(full, "t"));
    std::remove(resume_path.c_str());
    runner::SetDefaultJobs(0);
}

TEST(StreamResumeTest, ResumeAppliesToRunAllCells)
{
    auto configs = TinyMatrix();
    configs.resize(2);
    runner::BenchSession full("t", MakeArgs({"bench", "--jobs=1"}));
    full.RunAll(configs);
    const std::string resume_path = TempPath("stream_resume_runall");
    WriteFile(resume_path, SessionDocument(full, "t"));

    runner::BenchSession resumed(
        "t", MakeArgs({"bench", "--jobs=1", "--resume=" + resume_path}));
    resumed.RunAll(configs);
    EXPECT_EQ(resumed.resumed_cells(), 2u);
    EXPECT_EQ(SessionDocument(resumed, "t"), SessionDocument(full, "t"));
    std::remove(resume_path.c_str());
    runner::SetDefaultJobs(0);
}

// ---- Mixed resumed/fresh shards merge unchanged -----------------------

TEST(StreamResumeTest, ResumedShardMergesWithFreshShardsByteIdentically)
{
    const auto configs = TinyMatrix();
    const uint32_t reps = 3;

    // The canonical result: the full single-process run, merged (merge
    // of a single document canonicalizes record order).
    runner::BenchSession full("t", MakeArgs({"bench", "--jobs=2"}));
    full.RunMatrix(configs, reps, /*shuffle_seed=*/7);
    std::string error;
    auto full_doc =
        ParseSweepDocument(SessionDocument(full, "t"), &error);
    ASSERT_TRUE(full_doc.has_value()) << error;
    const auto canonical =
        MergeDocuments({*full_doc}, MergeOptions{}, &error);
    ASSERT_TRUE(canonical.has_value()) << error;

    // Shard 0 streams, "crashes" mid-file, recovers and resumes; shard 1
    // runs fresh.
    const std::string stream_path = TempPath("stream_shard0");
    runner::BenchSession shard0(
        "t", MakeArgs({"bench", "--jobs=2", "--shard=0/2",
                       "--stream=" + stream_path}));
    shard0.RunMatrix(configs, reps, /*shuffle_seed=*/7);
    ASSERT_EQ(shard0.Finish(), 0);
    const std::string stream = ReadFile(stream_path);
    std::remove(stream_path.c_str());
    const std::optional<RecoveredStream> recovered =
        RecoverStreamBytes(stream.substr(0, stream.size() / 2), &error);
    ASSERT_TRUE(recovered.has_value()) << error;

    const std::string resume_path = TempPath("stream_shard0_resume");
    WriteFile(resume_path, ToJson(recovered->document));
    runner::BenchSession resumed(
        "t", MakeArgs({"bench", "--jobs=2", "--shard=0/2",
                       "--resume=" + resume_path}));
    resumed.RunMatrix(configs, reps, /*shuffle_seed=*/7);
    std::remove(resume_path.c_str());

    runner::BenchSession shard1(
        "t", MakeArgs({"bench", "--jobs=2", "--shard=1/2"}));
    shard1.RunMatrix(configs, reps, /*shuffle_seed=*/7);

    auto doc0 = ParseSweepDocument(SessionDocument(resumed, "t"), &error);
    ASSERT_TRUE(doc0.has_value()) << error;
    auto doc1 = ParseSweepDocument(SessionDocument(shard1, "t"), &error);
    ASSERT_TRUE(doc1.has_value()) << error;
    // Both shards pass the standalone accounting check...
    EXPECT_TRUE(ValidateShardAccounting(*doc0, &error)) << error;
    EXPECT_TRUE(ValidateShardAccounting(*doc1, &error)) << error;
    // ...and their merge is byte-identical to the uninterrupted one.
    const auto merged =
        MergeDocuments({*doc0, *doc1}, MergeOptions{}, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_EQ(ToJson(*merged), ToJson(*canonical));
    runner::SetDefaultJobs(0);
}

// ---- Stream writer misuse ---------------------------------------------

TEST(StreamWriterTest, AppendAndFinishRequireOpen)
{
    StreamWriter writer;
    std::string error;
    EXPECT_FALSE(writer.is_open());
    EXPECT_FALSE(writer.Append(GoldenRecord(), &error));
    EXPECT_FALSE(writer.Finish(stats::DocumentMeta{}, &error));
}

TEST(StreamWriterTest, OpenFailsOnUnwritablePath)
{
    StreamWriter writer;
    std::string error;
    EXPECT_FALSE(writer.Open("/nonexistent-dir/x.stream", "t", 0, 1,
                             &error));
    EXPECT_FALSE(writer.is_open());
    EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace spur::sweep

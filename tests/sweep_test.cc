/**
 * @file
 * Tests for the distributed sweep subsystem (src/sweep/): shard
 * assignment, the shard-union bit-identity contract, cost-aware
 * scheduling, per-cell telemetry, the JSON reader, document round trips,
 * and the spur_sweep merge/validate contract.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/args.h"
#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/runner/thread_pool.h"
#include "src/stats/run_record.h"
#include "src/sweep/cost.h"
#include "src/sweep/json.h"
#include "src/sweep/merge.h"
#include "src/sweep/shard.h"
#include "src/sweep/telemetry.h"

namespace spur::sweep {
namespace {

// ---- ShardSpec --------------------------------------------------------

TEST(ShardSpecTest, ParsesValidSpecs)
{
    const auto full = ShardSpec::Parse("0/1");
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->index, 0u);
    EXPECT_EQ(full->count, 1u);
    EXPECT_TRUE(full->IsFull());

    const auto mid = ShardSpec::Parse("2/5");
    ASSERT_TRUE(mid.has_value());
    EXPECT_EQ(mid->index, 2u);
    EXPECT_EQ(mid->count, 5u);
    EXPECT_FALSE(mid->IsFull());
    EXPECT_EQ(mid->ToString(), "2/5");
}

TEST(ShardSpecTest, RejectsMalformedSpecs)
{
    for (const char* bad : {"", "1", "1/", "/2", "2/2", "3/2", "1/0",
                            "-1/2", "a/b", "1/2/3", "1.0/2", " 1/2",
                            "1/2 ", "9999999999/2"}) {
        EXPECT_FALSE(ShardSpec::Parse(bad).has_value()) << bad;
    }
}

TEST(ShardSpecTest, ContainsPartitionsOrdinals)
{
    const ShardSpec shard{1, 3};
    std::set<uint64_t> mine;
    for (uint64_t i = 0; i < 30; ++i) {
        if (shard.Contains(i)) {
            mine.insert(i);
        }
    }
    EXPECT_EQ(mine.size(), 10u);
    for (const uint64_t i : mine) {
        EXPECT_EQ(i % 3, 1u);
    }
}

// ---- Sharded RunMatrix ------------------------------------------------

core::RunConfig
SmallRun()
{
    core::RunConfig config;
    config.workload = core::WorkloadId::kSlc;
    config.memory_mb = 8;
    config.refs = 120'000;
    config.seed = 5;
    return config;
}

std::vector<core::RunConfig>
SmallMatrix()
{
    std::vector<core::RunConfig> configs(2, SmallRun());
    configs[1].ref = policy::RefPolicyKind::kNoRef;
    return configs;
}

void
ExpectIdentical(const core::RunResult& a, const core::RunResult& b)
{
    EXPECT_EQ(a.refs_issued, b.refs_issued);
    EXPECT_EQ(a.page_ins, b.page_ins);
    EXPECT_EQ(a.page_outs, b.page_outs);
    EXPECT_EQ(a.frequencies.n_ds, b.frequencies.n_ds);
    EXPECT_EQ(a.frequencies.n_zfod, b.frequencies.n_zfod);
    EXPECT_EQ(a.frequencies.n_ef, b.frequencies.n_ef);
    EXPECT_EQ(a.frequencies.n_w_hit, b.frequencies.n_w_hit);
    EXPECT_EQ(a.frequencies.n_w_miss, b.frequencies.n_w_miss);
    EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

/** Runs the matrix sharded N ways and checks the union against full. */
void
CheckShardUnion(uint32_t shard_count)
{
    const auto configs = SmallMatrix();
    const uint32_t reps = 3;
    const auto full = runner::RunMatrix(configs, reps, /*shuffle_seed=*/9,
                                        /*jobs=*/2);

    std::set<std::pair<size_t, uint32_t>> executed;
    for (uint32_t k = 0; k < shard_count; ++k) {
        runner::MatrixOptions options;
        options.shuffle_seed = 9;
        options.jobs = 2;
        options.shard_index = k;
        options.shard_count = shard_count;
        std::set<std::pair<size_t, uint32_t>> mine;
        const auto partial = runner::RunMatrix(
            configs, reps, options, [&](const runner::Cell& cell) {
                // Every executed cell belongs to exactly one shard.
                EXPECT_TRUE(
                    executed.insert({cell.config_index, cell.rep}).second);
                mine.insert({cell.config_index, cell.rep});
                ExpectIdentical(cell.result,
                                full[cell.config_index][cell.rep]);
            });
        for (const auto& [i, r] : mine) {
            ExpectIdentical(partial[i][r], full[i][r]);
        }
    }
    // The union covers the whole matrix.
    EXPECT_EQ(executed.size(), configs.size() * reps);
}

TEST(ShardedRunMatrixTest, TwoShardUnionIsBitIdenticalToFullRun)
{
    CheckShardUnion(2);
}

TEST(ShardedRunMatrixTest, ThreeShardUnionIsBitIdenticalToFullRun)
{
    CheckShardUnion(3);
}

TEST(ShardedRunMatrixTest, ShardOffsetShiftsAssignment)
{
    const auto configs = SmallMatrix();
    runner::MatrixOptions options;
    options.jobs = 1;
    options.shard_index = 0;
    options.shard_count = 2;
    options.shard_offset = 1;  // Odd ordinals now belong to shard 0.
    size_t executed = 0;
    runner::RunMatrix(configs, /*reps=*/2, options,
                      [&](const runner::Cell&) { ++executed; });
    EXPECT_EQ(executed, 2u);  // Half of the 4 cells.
}

TEST(ShardedRunMatrixTest, CostOrderingChangesNoResultBytes)
{
    const auto configs = SmallMatrix();
    const uint32_t reps = 2;
    const auto plain = runner::RunMatrix(configs, reps, /*shuffle_seed=*/9,
                                         /*jobs=*/2);
    runner::MatrixOptions options;
    options.shuffle_seed = 9;
    options.jobs = 2;
    // An adversarial cost function: reverse-biased, with one unknown.
    options.cost = [](const core::RunConfig& config, uint32_t rep) {
        if (rep == 1) {
            return -1.0;  // Unknown: keeps shuffled order at the back.
        }
        return config.memory_mb * 10.0 + rep;
    };
    const auto sorted = runner::RunMatrix(configs, reps, options);
    for (size_t i = 0; i < configs.size(); ++i) {
        for (uint32_t r = 0; r < reps; ++r) {
            ExpectIdentical(sorted[i][r], plain[i][r]);
        }
    }
}

TEST(ShardedRunMatrixTest, TelemetryIsPlausible)
{
    size_t cells = 0;
    runner::MatrixOptions options;
    options.jobs = 2;
    runner::RunMatrix(SmallMatrix(), /*reps=*/1, options,
                      [&](const runner::Cell& cell) {
                          ++cells;
                          EXPECT_GT(cell.wall_seconds, 0.0);
                          EXPECT_GT(cell.peak_rss_bytes, 0u);
                          EXPECT_LT(cell.worker, 2u);
                      });
    EXPECT_EQ(cells, 2u);
}

TEST(TelemetryTest, StopwatchAndRssReportPositiveValues)
{
    const Stopwatch stopwatch;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + 1.0;
    }
    EXPECT_GT(stopwatch.Seconds(), 0.0);
    EXPECT_GT(PeakRssBytes(), 0u);
}

// ---- BenchSession sharding --------------------------------------------

Args
MakeArgs(std::vector<std::string> words)
{
    static std::vector<std::string> storage;
    storage = std::move(words);
    static std::vector<char*> argv;
    argv.clear();
    for (std::string& word : storage) {
        argv.push_back(word.data());
    }
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(SessionShardTest, ShardRecordsUnionToFullSession)
{
    const auto configs = SmallMatrix();
    const uint32_t reps = 2;

    runner::BenchSession full("t", MakeArgs({"bench", "--jobs=2"}));
    full.RunMatrix(configs, reps, /*shuffle_seed=*/7);
    EXPECT_EQ(full.total_cells(), 4u);
    EXPECT_EQ(full.ran_cells(), 4u);
    std::map<std::string, std::string> expected;
    for (const stats::RunRecord& record : full.records()) {
        expected[RecordIdentity(record)] = RecordPayload(record);
    }
    EXPECT_EQ(expected.size(), 4u);

    std::map<std::string, std::string> merged;
    uint64_t ran_sum = 0;
    for (const char* spec : {"0/2", "1/2"}) {
        runner::BenchSession shard(
            "t", MakeArgs({"bench", "--jobs=2",
                           std::string("--shard=") + spec}));
        shard.RunMatrix(configs, reps, /*shuffle_seed=*/7);
        EXPECT_EQ(shard.total_cells(), 4u);
        EXPECT_EQ(shard.ran_cells(), shard.records().size());
        ran_sum += shard.ran_cells();
        for (const stats::RunRecord& record : shard.records()) {
            // No cell is produced by both shards.
            EXPECT_TRUE(
                merged.emplace(RecordIdentity(record),
                               RecordPayload(record)).second);
        }
    }
    EXPECT_EQ(ran_sum, 4u);
    EXPECT_EQ(merged, expected);  // Byte-identical payloads per cell.
    runner::SetDefaultJobs(0);
}

TEST(SessionShardTest, ConsecutiveCallsBalanceAcrossShards)
{
    // Two single-config RunAll calls: the session's running cell count
    // must spread them over the shards instead of giving both to 0.
    const std::vector<core::RunConfig> one{SmallRun()};
    runner::BenchSession shard0(
        "t", MakeArgs({"bench", "--jobs=1", "--shard=0/2"}));
    shard0.RunAll(one);
    shard0.RunAll(one);
    EXPECT_EQ(shard0.total_cells(), 2u);
    EXPECT_EQ(shard0.ran_cells(), 1u);

    runner::BenchSession shard1(
        "t", MakeArgs({"bench", "--jobs=1", "--shard=1/2"}));
    shard1.RunAll(one);
    shard1.RunAll(one);
    EXPECT_EQ(shard1.ran_cells(), 1u);
    runner::SetDefaultJobs(0);
}

TEST(SessionShardTest, TelemetryFlagControlsRecordTelemetry)
{
    const auto configs = SmallMatrix();
    runner::BenchSession plain("t", MakeArgs({"bench", "--jobs=1"}));
    plain.RunMatrix(configs, /*reps=*/1);
    for (const stats::RunRecord& record : plain.records()) {
        EXPECT_FALSE(record.telemetry.has_value());
    }

    runner::BenchSession timed(
        "t", MakeArgs({"bench", "--jobs=2", "--telemetry"}));
    EXPECT_TRUE(timed.telemetry_enabled());
    timed.RunMatrix(configs, /*reps=*/1);
    ASSERT_EQ(timed.records().size(), 2u);
    for (const stats::RunRecord& record : timed.records()) {
        ASSERT_TRUE(record.telemetry.has_value());
        EXPECT_GT(record.telemetry->wall_seconds, 0.0);
        EXPECT_GT(record.telemetry->peak_rss_bytes, 0u);
    }
    runner::SetDefaultJobs(0);
}

TEST(SessionShardTest, CostsFileReordersWithoutChangingRecords)
{
    const auto configs = SmallMatrix();
    runner::BenchSession plain("t", MakeArgs({"bench", "--jobs=2"}));
    plain.RunMatrix(configs, /*reps=*/2);

    // Produce a telemetry document and feed it back as a cost table.
    const std::string path = ::testing::TempDir() + "sweep_costs.json";
    {
        runner::BenchSession timed(
            "t", MakeArgs({"bench", "--jobs=2", "--telemetry",
                           "--json=" + path}));
        timed.RunMatrix(configs, /*reps=*/2);
        ASSERT_EQ(timed.Finish(), 0);
    }
    runner::BenchSession scheduled(
        "t", MakeArgs({"bench", "--jobs=2", "--costs=" + path}));
    scheduled.RunMatrix(configs, /*reps=*/2);
    std::remove(path.c_str());

    ASSERT_EQ(scheduled.records().size(), plain.records().size());
    for (size_t i = 0; i < plain.records().size(); ++i) {
        EXPECT_EQ(stats::JsonWriter::ToJson(scheduled.records()[i]),
                  stats::JsonWriter::ToJson(plain.records()[i]));
    }
    runner::SetDefaultJobs(0);
}

// ---- JSON parser ------------------------------------------------------

TEST(JsonParserTest, ParsesScalarsAndPreservesOrder)
{
    std::string error;
    const auto value = ParseJson(
        "{\"b\": 1, \"a\": [true, false, null, \"x\\n\"], \"c\": -2.5}",
        &error);
    ASSERT_TRUE(value.has_value()) << error;
    ASSERT_TRUE(value->IsObject());
    ASSERT_EQ(value->members().size(), 3u);
    EXPECT_EQ(value->members()[0].first, "b");  // Source order kept.
    EXPECT_EQ(value->members()[1].first, "a");
    EXPECT_EQ(value->members()[2].first, "c");
    const JsonValue* a = value->Find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 4u);
    EXPECT_TRUE(a->items()[0].AsBool());
    EXPECT_TRUE(a->items()[2].IsNull());
    EXPECT_EQ(a->items()[3].AsString(), "x\n");
    EXPECT_DOUBLE_EQ(value->Find("c")->AsDouble(), -2.5);
}

TEST(JsonParserTest, KeepsRawNumberTokens)
{
    std::string error;
    const auto value =
        ParseJson("[42, 0.10000000000000001, 1e3]", &error);
    ASSERT_TRUE(value.has_value()) << error;
    EXPECT_EQ(value->items()[0].raw_number(), "42");
    EXPECT_EQ(value->items()[1].raw_number(), "0.10000000000000001");
    EXPECT_EQ(value->items()[0].AsUint64(), std::optional<uint64_t>(42));
    // Only plain decimal integers read back as integers.
    EXPECT_FALSE(value->items()[1].AsUint64().has_value());
    EXPECT_FALSE(value->items()[2].AsUint64().has_value());
}

TEST(JsonParserTest, NullReadsBackAsNaN)
{
    std::string error;
    const auto value = ParseJson("null", &error);
    ASSERT_TRUE(value.has_value());
    EXPECT_TRUE(std::isnan(value->AsDouble()));
}

TEST(JsonParserTest, RejectsMalformedInput)
{
    for (const char* bad :
         {"", "{", "[1,]", "{\"a\" 1}", "{} extra", "tru", "\"unterminated",
          "+1", "nan", "'single'"}) {
        std::string error;
        EXPECT_FALSE(ParseJson(bad, &error).has_value()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(JsonParserTest, RejectsExcessiveNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    std::string error;
    EXPECT_FALSE(ParseJson(deep, &error).has_value());
    EXPECT_NE(error.find("nest"), std::string::npos);
}

// ---- Document round trip and schema validation ------------------------

stats::RunRecord
MakeRecord(const std::string& bench, const std::string& workload,
           uint32_t memory_mb, uint32_t rep, uint64_t seed)
{
    stats::RunRecord record;
    record.bench = bench;
    record.workload = workload;
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = memory_mb;
    record.rep = rep;
    record.seed = seed;
    record.refs_issued = 1000 + seed;
    record.page_ins = 10 * memory_mb;
    record.page_outs = 3;
    record.elapsed_seconds = 0.1 * static_cast<double>(rep + 1);
    record.AddMetric("n_ds", 42.0);
    record.AddMetric("oddball \"name\"", 0.1);
    return record;
}

TEST(SweepDocumentTest, RoundTripIsByteIdentical)
{
    stats::DocumentMeta meta;
    meta.bench = "round_trip \"bench\"";
    meta.shard_index = 1;
    meta.shard_count = 3;
    meta.total_cells = 12;
    meta.ran_cells = 2;
    std::vector<stats::RunRecord> records;
    records.push_back(MakeRecord(meta.bench, "SLC", 5, 0, 17));
    records.push_back(MakeRecord(meta.bench, "WORKLOAD1\x01", 8, 1, 23));
    records[1].telemetry = stats::CellTelemetry{0.25, 1 << 20, 3};

    const std::string json = stats::JsonWriter::ToJson(meta, records);
    std::string error;
    const auto document = ParseSweepDocument(json, &error);
    ASSERT_TRUE(document.has_value()) << error;
    EXPECT_EQ(document->schema_version, stats::kSchemaVersion);
    EXPECT_EQ(document->meta.bench, meta.bench);
    EXPECT_EQ(document->meta.shard_index, 1u);
    EXPECT_EQ(document->meta.shard_count, 3u);
    EXPECT_EQ(document->meta.total_cells, 12u);
    EXPECT_EQ(document->meta.ran_cells, 2u);
    ASSERT_EQ(document->records.size(), 2u);
    ASSERT_TRUE(document->records[1].telemetry.has_value());
    EXPECT_EQ(document->records[1].telemetry->worker, 3u);

    // Re-serializing the parsed document reproduces the input bytes.
    EXPECT_EQ(ToJson(*document), json);
}

TEST(SweepDocumentTest, RejectsUnknownSchemaVersion)
{
    const std::string json = stats::JsonWriter::ToJson("b", {});
    std::string bumped = json;
    const size_t pos = bumped.find("\"schema_version\": 1");
    ASSERT_NE(pos, std::string::npos);
    bumped.replace(pos, std::string("\"schema_version\": 1").size(),
                   "\"schema_version\": 99");
    std::string error;
    EXPECT_FALSE(ParseSweepDocument(bumped, &error).has_value());
    EXPECT_EQ(error, "unknown schema_version 99 (expected 1)");
}

TEST(SweepDocumentTest, RejectsPreVersioningAndUnknownFields)
{
    std::string error;
    EXPECT_FALSE(ParseSweepDocument("{\"bench\": \"b\", \"records\": []}",
                                    &error)
                     .has_value());
    EXPECT_NE(error.find("pre-versioning"), std::string::npos);

    const std::string extra =
        "{\"schema_version\": 1, \"bench\": \"b\", "
        "\"shard\": {\"index\": 0, \"count\": 1, \"total_cells\": 0, "
        "\"ran_cells\": 0}, \"records\": [], \"surprise\": 1}";
    EXPECT_FALSE(ParseSweepDocument(extra, &error).has_value());
    EXPECT_NE(error.find("unknown document field 'surprise'"),
              std::string::npos);
}

TEST(SweepDocumentTest, RejectsRecordSchemaViolations)
{
    stats::DocumentMeta meta;
    meta.bench = "b";
    std::string json =
        stats::JsonWriter::ToJson(meta, {MakeRecord("b", "SLC", 5, 0, 1)});
    // Smuggle an unknown field into the record object.
    const size_t pos = json.find("\"workload\"");
    ASSERT_NE(pos, std::string::npos);
    std::string bad = json;
    bad.insert(pos, "\"bogus\": 1, ");
    std::string error;
    EXPECT_FALSE(ParseSweepDocument(bad, &error).has_value());
    EXPECT_NE(error.find("unknown record field 'bogus'"),
              std::string::npos);

    // Drop a required field.
    std::string missing = json;
    const size_t seed_pos = missing.find(", \"seed\": 1");
    ASSERT_NE(seed_pos, std::string::npos);
    missing.erase(seed_pos, std::string(", \"seed\": 1").size());
    EXPECT_FALSE(ParseSweepDocument(missing, &error).has_value());
    EXPECT_NE(error.find("missing field 'seed'"), std::string::npos);
}

// ---- Standalone shard accounting (spur_sweep validate) ----------------

TEST(ValidateShardAccountingTest, AcceptsConsistentDocuments)
{
    std::string error;
    SweepDocument document;
    // Bespoke-only session: no matrix cells tracked.
    EXPECT_TRUE(ValidateShardAccounting(document, &error)) << error;

    // Full run: every cell ran.
    document.meta.total_cells = 9;
    document.meta.ran_cells = 9;
    EXPECT_TRUE(ValidateShardAccounting(document, &error)) << error;

    // Shard 1/3 of 12 cells owns ordinals 1, 4, 7, 10.
    document.meta.shard_index = 1;
    document.meta.shard_count = 3;
    document.meta.total_cells = 12;
    document.meta.ran_cells = 4;
    EXPECT_TRUE(ValidateShardAccounting(document, &error)) << error;

    // A shard past the matrix tail owns nothing.
    document.meta.shard_index = 2;
    document.meta.shard_count = 3;
    document.meta.total_cells = 2;
    document.meta.ran_cells = 0;
    EXPECT_TRUE(ValidateShardAccounting(document, &error)) << error;
}

TEST(ValidateShardAccountingTest, RejectsCellCountMismatch)
{
    // Regression: such a document passed `spur_sweep validate` and only
    // failed later at merge time ("missing cells").  A crashed shard
    // whose stream was recovered but never resumed looks exactly like
    // this once given a nonzero total.
    SweepDocument document;
    document.meta.shard_index = 1;
    document.meta.shard_count = 3;
    document.meta.total_cells = 12;
    document.meta.ran_cells = 2;  // Slice is 4.
    std::string error;
    EXPECT_FALSE(ValidateShardAccounting(document, &error));
    EXPECT_NE(error.find("must have run 4"), std::string::npos) << error;

    // Too many cells is just as wrong (duplicated work units).
    document.meta.ran_cells = 5;
    EXPECT_FALSE(ValidateShardAccounting(document, &error));
    EXPECT_NE(error.find("claims 5"), std::string::npos) << error;
}

// ---- Merge ------------------------------------------------------------

SweepDocument
MakeShardDocument(const std::string& bench, uint32_t index, uint32_t count,
                  uint64_t total, std::vector<stats::RunRecord> records)
{
    SweepDocument document;
    document.meta.bench = bench;
    document.meta.shard_index = index;
    document.meta.shard_count = count;
    document.meta.total_cells = total;
    document.meta.ran_cells = records.size();
    document.records = std::move(records);
    return document;
}

TEST(MergeTest, MergesShardsIntoCanonicalDocument)
{
    // Shard 0 ran cells (5 MB, rep 0) and (8 MB, rep 1); shard 1 the
    // others.  Both also recomputed the same bespoke record.
    stats::RunRecord bespoke = MakeRecord("b", "CUSTOM", 1, 0, 99);
    std::vector<SweepDocument> shards;
    shards.push_back(MakeShardDocument(
        "b", 0, 2, 4,
        {MakeRecord("b", "SLC", 5, 0, 1), MakeRecord("b", "SLC", 8, 1, 2),
         bespoke}));
    shards.push_back(MakeShardDocument(
        "b", 1, 2, 4,
        {MakeRecord("b", "SLC", 5, 1, 1), MakeRecord("b", "SLC", 8, 0, 2),
         bespoke}));
    // Bespoke rows are not sharded cells; ran_cells counts cells only.
    shards[0].meta.ran_cells = 2;
    shards[1].meta.ran_cells = 2;

    std::string error;
    const auto merged =
        MergeDocuments(shards, MergeOptions{}, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_EQ(merged->meta.bench, "b");
    EXPECT_EQ(merged->meta.shard_index, 0u);
    EXPECT_EQ(merged->meta.shard_count, 1u);
    EXPECT_EQ(merged->meta.total_cells, 4u);
    EXPECT_EQ(merged->meta.ran_cells, 4u);
    // 4 cells + 1 deduplicated bespoke record.
    ASSERT_EQ(merged->records.size(), 5u);

    // Canonical order: merging the shards in the opposite order yields
    // the byte-identical document.
    std::vector<SweepDocument> reversed{shards[1], shards[0]};
    const auto merged2 = MergeDocuments(reversed, MergeOptions{}, &error);
    ASSERT_TRUE(merged2.has_value()) << error;
    EXPECT_EQ(ToJson(*merged), ToJson(*merged2));
}

TEST(MergeTest, SingleDocumentIsCanonicalized)
{
    // A full run arrives in recording order; merging it alone sorts the
    // records into the same canonical order a shard merge produces.
    std::vector<SweepDocument> docs;
    docs.push_back(MakeShardDocument(
        "b", 0, 1, 2,
        {MakeRecord("b", "SLC", 8, 0, 2), MakeRecord("b", "SLC", 5, 0, 1)}));
    std::string error;
    const auto merged = MergeDocuments(docs, MergeOptions{}, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    ASSERT_EQ(merged->records.size(), 2u);
    EXPECT_LE(RecordIdentity(merged->records[0]),
              RecordIdentity(merged->records[1]));
}

TEST(MergeTest, StripTelemetryDropsTelemetry)
{
    stats::RunRecord record = MakeRecord("b", "SLC", 5, 0, 1);
    record.telemetry = stats::CellTelemetry{1.5, 4096, 0};
    std::vector<SweepDocument> docs;
    docs.push_back(MakeShardDocument("b", 0, 1, 1, {record}));
    std::string error;
    MergeOptions options;
    options.strip_telemetry = true;
    const auto merged = MergeDocuments(docs, options, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_FALSE(merged->records[0].telemetry.has_value());
}

TEST(MergeTest, RejectsContractViolations)
{
    const auto cell = [](uint32_t mb, uint32_t rep) {
        return MakeRecord("b", "SLC", mb, rep, 1);
    };
    std::string error;

    // Bench mismatch.
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 2, 2, {cell(5, 0)}),
                      MakeShardDocument("c", 1, 2, 2, {cell(5, 1)})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("bench mismatch"), std::string::npos);

    // Duplicate shard index.
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 2, 2, {cell(5, 0)}),
                      MakeShardDocument("b", 0, 2, 2, {cell(5, 1)})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("appears more than once"), std::string::npos);

    // Missing shard.
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 3, 3, {cell(5, 0)}),
                      MakeShardDocument("b", 2, 3, 3, {cell(5, 2)})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("missing shard(s) 1"), std::string::npos);

    // Shard shape mismatch.
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 2, 2, {cell(5, 0)}),
                      MakeShardDocument("b", 1, 2, 4, {cell(5, 1)})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("total_cells mismatch"), std::string::npos);

    // Duplicate cells: the shards together ran more cells than exist.
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 2, 2,
                                        {cell(5, 0), cell(5, 1)}),
                      MakeShardDocument("b", 1, 2, 2, {cell(8, 0)})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("duplicate cells"), std::string::npos);

    // Missing cells: fewer ran than the sweep holds.
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 2, 4, {cell(5, 0)}),
                      MakeShardDocument("b", 1, 2, 4, {cell(5, 1)})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("missing cells"), std::string::npos);

    // Conflicting payloads for one cell identity.
    stats::RunRecord conflicting = cell(5, 0);
    conflicting.page_ins += 1;
    EXPECT_FALSE(MergeDocuments(
                     {MakeShardDocument("b", 0, 2, 2, {cell(5, 0)}),
                      MakeShardDocument("b", 1, 2, 2, {conflicting})},
                     MergeOptions{}, &error)
                     .has_value());
    EXPECT_NE(error.find("conflicting records"), std::string::npos);
}

// ---- CostTable --------------------------------------------------------

TEST(CostTableTest, LooksUpByIdentityAndKeepsMax)
{
    CostTable table;
    EXPECT_TRUE(table.empty());
    table.Add("SLC", "SPUR", "MISS", 8, 0, 1.5);
    table.Add("SLC", "SPUR", "MISS", 8, 0, 0.5);  // Collision: keep max.
    table.Add("SLC", "SPUR", "MISS", 8, 1, 2.5);
    EXPECT_EQ(table.size(), 2u);

    core::RunConfig config;
    config.workload = core::WorkloadId::kSlc;
    config.dirty = policy::DirtyPolicyKind::kSpur;
    config.ref = policy::RefPolicyKind::kMiss;
    config.memory_mb = 8;
    EXPECT_DOUBLE_EQ(table.Lookup(config, 0), 1.5);
    EXPECT_DOUBLE_EQ(table.Lookup(config, 1), 2.5);
    EXPECT_LT(table.Lookup(config, 2), 0.0);  // Unknown cell.
    config.memory_mb = 5;
    EXPECT_LT(table.Lookup(config, 0), 0.0);
}

TEST(CostTableTest, FromDocumentSkipsRecordsWithoutTelemetry)
{
    SweepDocument document;
    document.meta.bench = "b";
    stats::RunRecord timed = MakeRecord("b", "SLC", 8, 0, 1);
    timed.dirty_policy = "SPUR";
    timed.telemetry = stats::CellTelemetry{0.75, 4096, 0};
    stats::RunRecord untimed = MakeRecord("b", "SLC", 8, 1, 1);
    stats::RunRecord zero = MakeRecord("b", "SLC", 8, 2, 1);
    zero.telemetry = stats::CellTelemetry{0.0, 4096, 0};
    document.records = {timed, untimed, zero};
    document.meta.total_cells = 3;
    document.meta.ran_cells = 3;

    const CostTable table = CostTable::FromDocument(document);
    EXPECT_EQ(table.size(), 1u);
    core::RunConfig config;
    config.workload = core::WorkloadId::kSlc;
    config.dirty = policy::DirtyPolicyKind::kSpur;
    config.ref = policy::RefPolicyKind::kMiss;
    config.memory_mb = 8;
    EXPECT_DOUBLE_EQ(table.Lookup(config, 0), 0.75);
}

}  // namespace
}  // namespace spur::sweep

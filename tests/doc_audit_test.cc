/**
 * @file
 * Tests for the record-level dominance audits (src/audit/doc_audit.h):
 * the post-hoc MIN / NOREF passes that close the shard_count > 1 audit
 * gap by re-deriving the comparisons from a merged document's records.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/doc_audit.h"
#include "src/audit/dominance.h"
#include "src/check/report.h"
#include "src/stats/run_record.h"

namespace spur::check {
namespace {

using audit::AuditSweepRecords;
using audit::kPassMinDominance;

stats::RunRecord
Record(const std::string& dirty, const std::string& ref, double n_ds,
       double n_zfod, uint64_t page_ins)
{
    stats::RunRecord record;
    record.bench = "audit";
    record.workload = "SLC";
    record.dirty_policy = dirty;
    record.ref_policy = ref;
    record.memory_mb = 8;
    record.rep = 0;
    record.seed = 17;
    record.refs_issued = 1000;
    record.page_ins = page_ins;
    record.AddMetric("n_ds", n_ds);
    record.AddMetric("n_zfod", n_zfod);
    return record;
}

TEST(DocAuditTest, HealthyRecordsPassBothPasses)
{
    const std::vector<stats::RunRecord> records = {
        Record("MIN", "MISS", /*n_ds=*/10, /*n_zfod=*/4, /*page_ins=*/50),
        Record("SPUR", "MISS", 14, 4, 50),
        Record("FAULT", "MISS", 20, 4, 50),
        Record("SPUR", "NOREF", 14, 4, 60),
    };
    const AuditReport report = AuditSweepRecords(records);
    EXPECT_EQ(report.NumErrors(), 0u) << report.Summary();
    EXPECT_EQ(report.NumWarnings(), 0u) << report.Summary();
}

TEST(DocAuditTest, MinTakingMoreFaultsIsAnError)
{
    // MIN claims 12 intrinsic dirty faults where SPUR managed 8: the
    // lower bound is violated, which only ever means corrupt or
    // mismatched records.
    const std::vector<stats::RunRecord> records = {
        Record("MIN", "MISS", /*n_ds=*/16, /*n_zfod=*/4, /*page_ins=*/50),
        Record("SPUR", "MISS", 12, 4, 50),
    };
    const AuditReport report = AuditSweepRecords(records);
    EXPECT_EQ(report.NumErrors(), 1u) << report.Summary();
    EXPECT_NE(report.Summary().find(kPassMinDominance),
              std::string::npos);
}

TEST(DocAuditTest, NorefPagingLessThanMissIsAWarning)
{
    const std::vector<stats::RunRecord> records = {
        Record("SPUR", "MISS", 14, 4, /*page_ins=*/50),
        Record("SPUR", "NOREF", 14, 4, /*page_ins=*/40),
    };
    const AuditReport report = AuditSweepRecords(records);
    EXPECT_EQ(report.NumErrors(), 0u) << report.Summary();
    EXPECT_EQ(report.NumWarnings(), 1u) << report.Summary();
}

TEST(DocAuditTest, RecordsFromDifferentCellsNeverPair)
{
    // Same policies, different seeds: no comparable pair, no findings
    // even though the numbers would violate dominance if paired.
    std::vector<stats::RunRecord> records = {
        Record("MIN", "MISS", 16, 4, 50),
        Record("SPUR", "MISS", 12, 4, 40),
    };
    records[1].seed = 99;
    const AuditReport report = AuditSweepRecords(records);
    EXPECT_EQ(report.NumErrors(), 0u) << report.Summary();
    EXPECT_EQ(report.NumWarnings(), 0u) << report.Summary();
}

TEST(DocAuditTest, RecordsWithoutStandardMetricsAreSkipped)
{
    // A bespoke bench record without n_ds/n_zfod cannot be audited for
    // MIN dominance — skipping beats false positives.
    stats::RunRecord bare;
    bare.bench = "audit";
    bare.workload = "SLC";
    bare.dirty_policy = "SPUR";
    bare.ref_policy = "MISS";
    bare.memory_mb = 8;
    bare.rep = 0;
    bare.seed = 17;
    bare.page_ins = 50;
    const std::vector<stats::RunRecord> records = {
        Record("MIN", "MISS", 16, 4, 50),
        bare,
    };
    const AuditReport report = AuditSweepRecords(records);
    EXPECT_EQ(report.NumErrors(), 0u) << report.Summary();
}

}  // namespace
}  // namespace spur::check

/**
 * @file
 * Tests for in-cache address translation: the cache-as-TLB behaviour,
 * second-level (wired) accesses, cost accounting, and the competition of
 * PTE blocks with data blocks for cache space.
 */
#include <gtest/gtest.h>

#include "src/cache/cache.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/xlate/translator.h"

namespace spur::xlate {
namespace {

class XlateTest : public testing::Test
{
  protected:
    XlateTest()
        : config_(sim::MachineConfig::Prototype(8)),
          vcache_(config_),
          xlate_(vcache_, table_, config_)
    {
    }

    sim::MachineConfig config_;
    cache::VirtualCache vcache_;
    pt::PageTable table_;
    Translator xlate_;
    sim::EventCounts events_;
};

TEST_F(XlateTest, FirstTranslationMissesToSecondLevel)
{
    const XlateResult result = xlate_.Translate(0x4000, events_);
    ASSERT_NE(result.pte, nullptr);
    EXPECT_FALSE(result.pte_hit);
    EXPECT_EQ(events_.Get(sim::Event::kXlatePteMiss), 1u);
    EXPECT_EQ(events_.Get(sim::Event::kXlateL2Access), 1u);
    EXPECT_EQ(events_.Get(sim::Event::kXlatePteHit), 0u);
    // Cost: 3-cycle cache check plus a block fetch.
    EXPECT_EQ(result.cycles,
              config_.t_xlate_hit + config_.BlockFetchCycles());
}

TEST_F(XlateTest, SecondTranslationHitsCachedPteBlock)
{
    xlate_.Translate(0x4000, events_);
    const XlateResult result = xlate_.Translate(0x4000, events_);
    EXPECT_TRUE(result.pte_hit);
    EXPECT_EQ(result.cycles, config_.t_xlate_hit);
    EXPECT_EQ(events_.Get(sim::Event::kXlatePteHit), 1u);
}

TEST_F(XlateTest, NeighbouringPagesShareAPteBlock)
{
    // A 32-byte block holds 8 PTEs: translating page N caches the PTEs
    // of pages [N & ~7, N | 7] - the "cache as a very large TLB" effect.
    xlate_.Translate(0 << 12, events_);
    for (GlobalVpn vpn = 1; vpn < 8; ++vpn) {
        const XlateResult result =
            xlate_.Translate(static_cast<GlobalAddr>(vpn) << 12, events_);
        EXPECT_TRUE(result.pte_hit) << "vpn " << vpn;
    }
    // Page 8's PTE is in the next block.
    const XlateResult result =
        xlate_.Translate(GlobalAddr{8} << 12, events_);
    EXPECT_FALSE(result.pte_hit);
}

TEST_F(XlateTest, ReturnsAuthoritativePte)
{
    XlateResult first = xlate_.Translate(0x9000, events_);
    first.pte->set_valid(true);
    first.pte->set_pfn(321);
    const XlateResult second = xlate_.Translate(0x9000, events_);
    EXPECT_EQ(second.pte, first.pte);
    EXPECT_TRUE(second.pte->valid());
    EXPECT_EQ(second.pte->pfn(), 321u);
}

TEST_F(XlateTest, PteBlocksCompeteForCacheSpace)
{
    // Fill the data block that conflicts with the PTE block of vpn 0,
    // then translate: the PTE fill must evict it.
    const GlobalAddr pte_va = pt::PageTable::PteVa(0);
    // A data address with the same cache index as the PTE block but a
    // different tag.
    const GlobalAddr conflicting = (pte_va & (config_.cache_bytes - 1));
    cache::LineRef line = vcache_.Fill(conflicting, Protection::kReadWrite,
                                       true, nullptr);
    cache::VirtualCache::MarkWritten(line);
    const XlateResult result = xlate_.Translate(0x0, events_);
    EXPECT_TRUE(result.evicted_dirty);
    EXPECT_EQ(events_.Get(sim::Event::kWriteback), 1u);
    EXPECT_FALSE(vcache_.Lookup(conflicting));
    // The PTE fill charged the writeback too.
    EXPECT_EQ(result.cycles, config_.t_xlate_hit +
                                 2 * Cycles{config_.BlockFetchCycles()});
}

TEST_F(XlateTest, ProbePteCostMatchesHitAndMissCases)
{
    // Cold probe: miss cost.
    EXPECT_EQ(xlate_.ProbePteCost(0x4000, events_),
              config_.t_xlate_hit + config_.BlockFetchCycles());
    // Warm probe: hit cost.
    EXPECT_EQ(xlate_.ProbePteCost(0x4000, events_), config_.t_xlate_hit);
}

TEST_F(XlateTest, PteLineIsKernelProtectedAndPageDirty)
{
    // PTE blocks are cached with kernel read-write protection and the
    // page-dirty bit set, so stores to PTEs never recurse into the
    // dirty-bit machinery.
    xlate_.Translate(0x4000, events_);
    const cache::LineRef line =
        vcache_.Lookup(pt::PageTable::PteVa(0x4000 >> 12));
    ASSERT_TRUE(line);
    EXPECT_EQ(line.prot(), Protection::kReadWrite);
    EXPECT_TRUE(line.page_dirty());
}

}  // namespace
}  // namespace spur::xlate

/**
 * @file
 * Tests for physical memory accounting: the frame table's free list and
 * reverse map, and the backing store's I/O bookkeeping.
 */
#include <gtest/gtest.h>

#include <set>

#include "src/mem/backing_store.h"
#include "src/mem/frame_table.h"

namespace spur::mem {
namespace {

// ---------------------------------------------------------------------------
// FrameTable
// ---------------------------------------------------------------------------

TEST(FrameTableTest, InitialState)
{
    FrameTable frames(100, 10);
    EXPECT_EQ(frames.NumTotal(), 100u);
    EXPECT_EQ(frames.NumPageable(), 90u);
    EXPECT_EQ(frames.NumFree(), 90u);
    EXPECT_EQ(frames.FirstPageable(), 10u);
}

TEST(FrameTableTest, AllocateAllThenExhaust)
{
    FrameTable frames(20, 4);
    std::set<FrameNum> seen;
    for (int i = 0; i < 16; ++i) {
        const FrameNum frame = frames.Allocate();
        ASSERT_NE(frame, kInvalidFrame);
        EXPECT_GE(frame, 4u);   // Never a wired frame.
        EXPECT_LT(frame, 20u);
        EXPECT_TRUE(seen.insert(frame).second);  // No duplicates.
    }
    EXPECT_EQ(frames.Allocate(), kInvalidFrame);
    EXPECT_EQ(frames.NumFree(), 0u);
}

TEST(FrameTableTest, LowFramesAllocatedFirst)
{
    FrameTable frames(20, 4);
    EXPECT_EQ(frames.Allocate(), 4u);
    EXPECT_EQ(frames.Allocate(), 5u);
}

TEST(FrameTableTest, BindUnbindRoundTrip)
{
    FrameTable frames(20, 4);
    const FrameNum frame = frames.Allocate();
    EXPECT_EQ(frames.VpnOf(frame), kNoVpn);
    frames.Bind(frame, 12345);
    EXPECT_EQ(frames.VpnOf(frame), 12345u);
    frames.Unbind(frame);
    EXPECT_EQ(frames.VpnOf(frame), kNoVpn);
    frames.Free(frame);
    EXPECT_EQ(frames.NumFree(), 16u);
}

TEST(FrameTableTest, FreedFrameIsReallocatable)
{
    FrameTable frames(6, 4);
    const FrameNum a = frames.Allocate();
    const FrameNum b = frames.Allocate();
    EXPECT_EQ(frames.Allocate(), kInvalidFrame);
    frames.Free(a);
    EXPECT_EQ(frames.Allocate(), a);
    (void)b;
}

TEST(FrameTableDeathTest, FreeOfBoundFramePanics)
{
    FrameTable frames(20, 4);
    const FrameNum frame = frames.Allocate();
    frames.Bind(frame, 1);
    EXPECT_DEATH(frames.Free(frame), "bound frame");
}

TEST(FrameTableDeathTest, DoubleFreePanics)
{
    FrameTable frames(20, 4);
    const FrameNum frame = frames.Allocate();
    frames.Free(frame);
    EXPECT_DEATH(frames.Free(frame), "unallocated");
}

TEST(FrameTableDeathTest, BindUnallocatedPanics)
{
    FrameTable frames(20, 4);
    EXPECT_DEATH(frames.Bind(5, 1), "unallocated");
}

TEST(FrameTableDeathTest, WiredGeTotalIsFatal)
{
    EXPECT_EXIT(FrameTable(10, 10), testing::ExitedWithCode(1), "wired");
}

// ---------------------------------------------------------------------------
// BackingStore
// ---------------------------------------------------------------------------

TEST(BackingStoreTest, PageOutCreatesCopy)
{
    BackingStore store;
    EXPECT_FALSE(store.HasCopy(7));
    store.PageOut(7);
    EXPECT_TRUE(store.HasCopy(7));
    EXPECT_EQ(store.NumPageOuts(), 1u);
    EXPECT_EQ(store.NumStored(), 1u);
}

TEST(BackingStoreTest, PageInWithoutCopyIsLegal)
{
    // Initial text/data page-ins come from the file system.
    BackingStore store;
    store.PageIn(42);
    EXPECT_EQ(store.NumPageIns(), 1u);
    EXPECT_FALSE(store.HasCopy(42));
}

TEST(BackingStoreTest, IoCountsAccumulate)
{
    BackingStore store;
    store.PageOut(1);
    store.PageOut(1);  // Re-outs overwrite the same copy.
    store.PageIn(1);
    store.PageIn(2);
    EXPECT_EQ(store.NumPageOuts(), 2u);
    EXPECT_EQ(store.NumPageIns(), 2u);
    EXPECT_EQ(store.NumIos(), 4u);
    EXPECT_EQ(store.NumStored(), 1u);
}

TEST(BackingStoreTest, DiscardForgetsCopy)
{
    BackingStore store;
    store.PageOut(9);
    store.Discard(9);
    EXPECT_FALSE(store.HasCopy(9));
    store.Discard(9);  // Idempotent.
    EXPECT_EQ(store.NumPageOuts(), 1u);  // Counts are history, not state.
}

}  // namespace
}  // namespace spur::mem

/**
 * @file
 * Tests for the summary statistics (src/stats/summary.h): moments, the
 * Student-t 95% confidence interval, and the Over projection helper the
 * benches use instead of hand-rolled accumulation loops.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/summary.h"

namespace spur::stats {
namespace {

TEST(SummaryTest, EmptyAndSingletonAreDegenerate)
{
    Summary empty;
    EXPECT_EQ(empty.Count(), 0u);
    EXPECT_EQ(empty.Mean(), 0.0);
    EXPECT_EQ(empty.StdDev(), 0.0);
    EXPECT_EQ(empty.Ci95(), 0.0);
    EXPECT_EQ(empty.Min(), 0.0);
    EXPECT_EQ(empty.Max(), 0.0);

    Summary one;
    one.Add(7.0);
    EXPECT_EQ(one.Mean(), 7.0);
    EXPECT_EQ(one.StdDev(), 0.0);  // Sample deviation needs 2 points.
    EXPECT_EQ(one.Ci95(), 0.0);
}

TEST(SummaryTest, MomentsMatchHandComputation)
{
    Summary s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.Add(v);
    }
    EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
    // Sum of squared deviations is 32; sample variance 32/7.
    EXPECT_NEAR(s.StdDev(), 2.13808993529939, 1e-12);
    EXPECT_EQ(s.Min(), 2.0);
    EXPECT_EQ(s.Max(), 9.0);
}

TEST(SummaryTest, Ci95UsesStudentTForSmallSamples)
{
    // The paper's five repetitions: 4 degrees of freedom, t = 2.776 —
    // over 40% wider than the 1.96 normal approximation would claim.
    Summary five;
    for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
        five.Add(v);
    }
    const double stderr5 =
        five.StdDev() / std::sqrt(5.0);  // ~0.7071
    EXPECT_NEAR(five.Ci95(), 2.776 * stderr5, 1e-12);

    // Two samples: df = 1, the famously huge t = 12.706.
    Summary two;
    two.Add(0.0);
    two.Add(1.0);
    EXPECT_NEAR(two.Ci95(), 12.706 * two.StdDev() / std::sqrt(2.0), 1e-12);
}

TEST(SummaryTest, Ci95FallsBackToNormalForLargeSamples)
{
    Summary s;
    for (int i = 0; i < 100; ++i) {
        s.Add(static_cast<double>(i % 10));
    }
    EXPECT_NEAR(s.Ci95(), 1.96 * s.StdDev() / 10.0, 1e-12);
}

TEST(SummaryTest, OverProjectsARange)
{
    struct Point {
        int x;
        double y;
    };
    const std::vector<Point> points{{1, 0.5}, {3, 1.5}, {5, 2.5}};
    const Summary xs =
        Summary::Over(points, [](const Point& p) { return p.x; });
    EXPECT_EQ(xs.Count(), 3u);
    EXPECT_DOUBLE_EQ(xs.Mean(), 3.0);
    const Summary ys =
        Summary::Over(points, [](const Point& p) { return p.y; });
    EXPECT_DOUBLE_EQ(ys.Mean(), 1.5);
    EXPECT_DOUBLE_EQ(ys.Min(), 0.5);
}

}  // namespace
}  // namespace spur::stats

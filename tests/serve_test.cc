/**
 * @file
 * Tests for the sweep service (src/serve/, DESIGN.md §17): strict
 * request parsing, the shared executor's byte-identity with
 * runner::BenchSession, an in-process daemon round trip whose save file
 * byte-equals an offline --stream file, concurrent clients, the
 * every-byte-offset torn-connection resume harness, deterministic
 * admission rejects, queue saturation, and graceful drain.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/args.h"
#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/runner/thread_pool.h"
#include "src/serve/client.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/stats/run_record.h"
#include "src/sweep/merge.h"
#include "src/sweep/stream.h"

namespace spur::serve {
namespace {

Args
MakeArgs(std::vector<std::string> words)
{
    static std::vector<std::string> storage;
    storage = std::move(words);
    static std::vector<char*> argv;
    argv.clear();
    for (std::string& word : storage) {
        argv.push_back(word.data());
    }
    return Args(static_cast<int>(argv.size()), argv.data());
}

std::string
ReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

void
WriteFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

std::string
TempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

/**
 * A small matrix (2 configs x 2 reps) sized so the every-byte-offset
 * resume harness stays in test-suite time, with distinct identities.
 */
SweepRequest
TinyRequest(const std::string& name)
{
    SweepRequest request;
    request.name = name;
    request.reps = 2;
    request.shuffle_seed = 7;
    core::RunConfig base;
    base.workload = core::WorkloadId::kSlc;
    base.memory_mb = 8;
    base.refs = 1'500;
    base.seed = 5;
    request.configs.assign(2, base);
    request.configs[1].ref = policy::RefPolicyKind::kNoRef;
    return request;
}

/** The --json bytes the request's offline reference run produces. */
std::string
OfflineDocument(const SweepRequest& request)
{
    const ExecuteOutcome outcome =
        ExecuteSweepRequest(request, /*jobs=*/1, ExecuteHooks{});
    EXPECT_TRUE(outcome.completed);
    return sweep::ToJson(outcome.document);
}

/** The --json bytes a session would write, without touching disk. */
std::string
SessionDocument(const runner::BenchSession& session,
                const std::string& bench)
{
    stats::DocumentMeta meta;
    meta.bench = bench;
    meta.shard_index = session.shard().index;
    meta.shard_count = session.shard().count;
    meta.total_cells = session.total_cells();
    meta.ran_cells = session.ran_cells();
    return stats::JsonWriter::ToJson(meta, session.records());
}

/** Start/RequestDrain/Run/join wrapper so tests cannot leak a server. */
class TestServer
{
  public:
    explicit TestServer(ServeOptions options)
        : server_(std::move(options))
    {
    }

    ~TestServer() { Stop(); }

    bool Start(std::string* error)
    {
        if (!server_.Start(error)) {
            return false;
        }
        thread_ = std::thread([this] { exit_code_ = server_.Run(); });
        return true;
    }

    int Stop()
    {
        if (thread_.joinable()) {
            server_.RequestDrain();
            thread_.join();
        }
        return exit_code_;
    }

    SweepServer& server() { return server_; }

  private:
    SweepServer server_;
    std::thread thread_;
    int exit_code_ = -1;
};

// ---- Request parsing --------------------------------------------------

TEST(RequestParseTest, ToJsonRoundTrips)
{
    SweepRequest request = TinyRequest("round");
    request.configs[0].intensity = 0.5;
    request.configs[0].page_in_us = 120.0;
    request.configs[1].dirty = policy::DirtyPolicyKind::kWriteHw;
    std::string error;
    const std::optional<SweepRequest> parsed =
        ParseSweepRequest(ToJson(request), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(ToJson(*parsed), ToJson(request));
    EXPECT_EQ(parsed->name, "round");
    EXPECT_EQ(parsed->reps, 2u);
    EXPECT_EQ(parsed->shuffle_seed, 7u);
    EXPECT_EQ(TotalCells(*parsed), 4u);
}

TEST(RequestParseTest, MinimalCellUsesDefaults)
{
    std::string error;
    const std::optional<SweepRequest> parsed = ParseSweepRequest(
        "{\"request_version\": 1, \"name\": \"m\","
        " \"cells\": [{\"workload\": \"SLC\"}]}",
        &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->reps, 1u);
    ASSERT_EQ(parsed->configs.size(), 1u);
    const core::RunConfig defaults;
    EXPECT_EQ(parsed->configs[0].memory_mb, defaults.memory_mb);
    EXPECT_EQ(parsed->configs[0].dirty, defaults.dirty);
    EXPECT_EQ(parsed->configs[0].ref, defaults.ref);
}

TEST(RequestParseTest, RejectsMalformedRequests)
{
    const struct {
        const char* json;
        const char* needle;
    } cases[] = {
        {"nonsense", "invalid"},
        {"{\"name\": \"x\", \"cells\": [{\"workload\": \"SLC\"}]}",
         "request_version"},
        {"{\"request_version\": 2, \"name\": \"x\","
         " \"cells\": [{\"workload\": \"SLC\"}]}",
         "request_version"},
        {"{\"request_version\": 1, \"cells\": [{\"workload\": \"SLC\"}]}",
         "name"},
        {"{\"request_version\": 1, \"name\": \"x\", \"cells\": []}",
         "cells"},
        {"{\"request_version\": 1, \"name\": \"x\", \"reps\": 0,"
         " \"cells\": [{\"workload\": \"SLC\"}]}",
         "reps"},
        {"{\"request_version\": 1, \"name\": \"x\", \"bogus\": 1,"
         " \"cells\": [{\"workload\": \"SLC\"}]}",
         "bogus"},
        {"{\"request_version\": 1, \"name\": \"x\","
         " \"cells\": [{\"workload\": \"SLC\", \"dirty\": \"TURBO\"}]}",
         "TURBO"},
        {"{\"request_version\": 1, \"name\": \"x\","
         " \"cells\": [{\"workload\": \"SLC\", \"surprise\": 1}]}",
         "surprise"},
        {"{\"request_version\": 1, \"name\": \"x\","
         " \"cells\": [{\"memory_mb\": 8}]}",
         "workload"},
    };
    for (const auto& test : cases) {
        std::string error;
        EXPECT_FALSE(ParseSweepRequest(test.json, &error).has_value())
            << test.json;
        EXPECT_NE(error.find(test.needle), std::string::npos)
            << test.json << " -> " << error;
    }
}

// ---- The shared executor ----------------------------------------------

TEST(ExecuteTest, DocumentIsIndependentOfJobCount)
{
    const SweepRequest request = TinyRequest("jobs");
    const ExecuteOutcome one =
        ExecuteSweepRequest(request, 1, ExecuteHooks{});
    const ExecuteOutcome three =
        ExecuteSweepRequest(request, 3, ExecuteHooks{});
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(three.completed);
    EXPECT_EQ(sweep::ToJson(one.document), sweep::ToJson(three.document));
}

TEST(ExecuteTest, CostOrderingNeverChangesBytes)
{
    const SweepRequest request = TinyRequest("cost");
    ExecuteHooks hooks;
    // An adversarial cost: reverse of the natural order.
    hooks.cost = [](const core::RunConfig& config, uint32_t rep) {
        return 100.0 - static_cast<double>(config.seed) -
               static_cast<double>(rep);
    };
    const ExecuteOutcome costed = ExecuteSweepRequest(request, 2, hooks);
    ASSERT_TRUE(costed.completed);
    EXPECT_EQ(sweep::ToJson(costed.document), OfflineDocument(request));
}

/** The service contract's anchor: the executor reproduces, byte for
 *  byte, what runner::BenchSession writes behind --json for the same
 *  matrix. */
TEST(ExecuteTest, DocumentByteEqualsBenchSessionJson)
{
    const SweepRequest request = TinyRequest("t");
    runner::BenchSession session("t", MakeArgs({"bench", "--jobs=2"}));
    session.RunMatrix(request.configs, request.reps,
                      request.shuffle_seed);
    EXPECT_EQ(OfflineDocument(request), SessionDocument(session, "t"));
    runner::SetDefaultJobs(0);
}

TEST(ExecuteTest, CommitReturningFalseCancelsRemainingCells)
{
    const SweepRequest request = TinyRequest("cancel");
    ExecuteHooks hooks;
    uint64_t commits = 0;
    hooks.commit = [&commits](const stats::RunRecord&) {
        return ++commits < 2;  // Accept one record, cancel on the second.
    };
    const ExecuteOutcome outcome = ExecuteSweepRequest(request, 2, hooks);
    EXPECT_FALSE(outcome.completed);
    EXPECT_EQ(outcome.committed, 1u);
    EXPECT_EQ(outcome.document.records.size(), 1u);
    EXPECT_EQ(outcome.document.meta.ran_cells, 1u);
    EXPECT_EQ(outcome.document.meta.total_cells, 4u);
}

// ---- Daemon round trip ------------------------------------------------

TEST(ServeTest, ReplyByteEqualsOfflineRun)
{
    const SweepRequest request = TinyRequest("t");
    ServeOptions options;
    options.socket_path = TempPath("serve_rt.sock");
    options.jobs = 2;
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    SubmitOptions client;
    client.socket_path = options.socket_path;
    const std::string save_path = TempPath("serve_rt.save");
    std::remove(save_path.c_str());
    const std::optional<SubmitResult> result =
        SubmitRequest(request, client, save_path, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_TRUE(result->accepted) << result->reject_reason;
    ASSERT_TRUE(result->complete);
    EXPECT_EQ(result->records, 4u);
    EXPECT_EQ(sweep::ToJson(result->document), OfflineDocument(request));
    EXPECT_EQ(server.Stop(), 0);
    EXPECT_EQ(server.server().queued_cells(), 0u);

    // The save file is not merely recoverable: it is byte-identical to
    // the --stream file an offline session writes for the same matrix.
    const std::string stream_path = TempPath("serve_rt.stream");
    runner::BenchSession session(
        "t", MakeArgs({"bench", "--jobs=1", "--stream=" + stream_path}));
    session.RunMatrix(request.configs, request.reps,
                      request.shuffle_seed);
    ASSERT_EQ(session.Finish(), 0);
    EXPECT_EQ(ReadFile(save_path), ReadFile(stream_path));
    std::remove(save_path.c_str());
    std::remove(stream_path.c_str());
    runner::SetDefaultJobs(0);
}

TEST(ServeTest, CompleteSaveFileIsServedLocally)
{
    const SweepRequest request = TinyRequest("t");
    const std::string save_path = TempPath("serve_local.save");
    const std::string stream_path = TempPath("serve_local.stream");
    runner::BenchSession session(
        "t", MakeArgs({"bench", "--jobs=1", "--stream=" + stream_path}));
    session.RunMatrix(request.configs, request.reps,
                      request.shuffle_seed);
    ASSERT_EQ(session.Finish(), 0);
    WriteFile(save_path, ReadFile(stream_path));
    std::remove(stream_path.c_str());
    runner::SetDefaultJobs(0);

    // No server is listening anywhere — the complete save file alone
    // must satisfy the request.
    SubmitOptions client;
    client.socket_path = TempPath("serve_local_nonexistent.sock");
    std::string error;
    const std::optional<SubmitResult> result =
        SubmitRequest(request, client, save_path, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_TRUE(result->accepted);
    EXPECT_TRUE(result->complete);
    EXPECT_EQ(sweep::ToJson(result->document), OfflineDocument(request));
    std::remove(save_path.c_str());
}

TEST(ServeTest, ConcurrentClientsEachGetByteIdenticalReplies)
{
    constexpr int kClients = 4;
    ServeOptions options;
    options.socket_path = TempPath("serve_many.sock");
    options.jobs = 2;
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    // Distinct requests (different base seeds) so replies differ.
    std::vector<SweepRequest> requests;
    for (int i = 0; i < kClients; ++i) {
        std::string name = "c";
        name += std::to_string(i);
        SweepRequest request = TinyRequest(name);
        for (core::RunConfig& config : request.configs) {
            config.seed += static_cast<uint64_t>(i);
        }
        requests.push_back(std::move(request));
    }

    std::vector<std::optional<SubmitResult>> results(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            SubmitOptions client;
            client.socket_path = options.socket_path;
            const std::string save_path =
                TempPath("serve_many_" + std::to_string(i) + ".save");
            std::remove(save_path.c_str());
            results[i] = SubmitRequest(requests[i], client, save_path,
                                       &errors[i]);
            std::remove(save_path.c_str());
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    EXPECT_EQ(server.Stop(), 0);

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(results[i].has_value()) << i << ": " << errors[i];
        EXPECT_TRUE(results[i]->accepted) << results[i]->reject_reason;
        ASSERT_TRUE(results[i]->complete) << i;
        EXPECT_EQ(sweep::ToJson(results[i]->document),
                  OfflineDocument(requests[i]))
            << i;
    }
}

// ---- Torn connections -------------------------------------------------

/**
 * The crash-tolerance guarantee extended over the wire: a client torn
 * at EVERY byte offset of the reply resumes via `wait` semantics and
 * ends with a save file byte-identical to the uninterrupted one.
 */
TEST(ServeFaultInjectionTest, EveryTornOffsetResumesByteIdentically)
{
    const SweepRequest request = TinyRequest("t");
    ServeOptions options;
    options.socket_path = TempPath("serve_torn.sock");
    options.jobs = 2;
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    SubmitOptions client;
    client.socket_path = options.socket_path;
    const std::string save_path = TempPath("serve_torn.save");
    std::remove(save_path.c_str());
    const std::optional<SubmitResult> full =
        SubmitRequest(request, client, save_path, &error);
    ASSERT_TRUE(full.has_value()) << error;
    ASSERT_TRUE(full->complete);
    const std::string reply = ReadFile(save_path);
    ASSERT_GT(reply.size(), 100u);

    for (size_t cut = 0; cut < reply.size(); cut += 7) {
        WriteFile(save_path, reply.substr(0, cut));
        std::string resume_error;
        const std::optional<SubmitResult> resumed =
            SubmitRequest(request, client, save_path, &resume_error);
        ASSERT_TRUE(resumed.has_value())
            << "cut at byte " << cut << ": " << resume_error;
        EXPECT_TRUE(resumed->accepted) << resumed->reject_reason;
        ASSERT_TRUE(resumed->complete) << "cut at byte " << cut;
        ASSERT_EQ(ReadFile(save_path), reply) << "cut at byte " << cut;
    }
    // The stride above keeps suite time down; pin the classic worst
    // cases exactly: empty, mid-magic, and one byte short of complete.
    for (const size_t cut :
         {size_t{0}, size_t{3}, reply.size() - 1}) {
        WriteFile(save_path, reply.substr(0, cut));
        std::string resume_error;
        const std::optional<SubmitResult> resumed =
            SubmitRequest(request, client, save_path, &resume_error);
        ASSERT_TRUE(resumed.has_value())
            << "cut at byte " << cut << ": " << resume_error;
        ASSERT_TRUE(resumed->complete) << "cut at byte " << cut;
        ASSERT_EQ(ReadFile(save_path), reply) << "cut at byte " << cut;
    }
    std::remove(save_path.c_str());
    EXPECT_EQ(server.Stop(), 0);
}

// ---- Admission --------------------------------------------------------

TEST(ServeAdmissionTest, OversizedRequestIsRejectedWithReason)
{
    ServeOptions options;
    options.socket_path = TempPath("serve_big.sock");
    options.jobs = 1;
    options.max_queued_cells = 2;
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    SubmitOptions client;
    client.socket_path = options.socket_path;
    const std::optional<SubmitResult> result =
        SubmitRequest(TinyRequest("big"), client, /*save_path=*/"",
                      &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_FALSE(result->accepted);
    EXPECT_NE(result->reject_reason.find("queue capacity"),
              std::string::npos)
        << result->reject_reason;
    EXPECT_EQ(server.Stop(), 0);
}

TEST(ServeAdmissionTest, ResumeBeyondTheRequestIsRejected)
{
    // Build a torn 4-record save file, then shrink the request to a
    // single cell: the claimed resume position exceeds the request.
    const SweepRequest request = TinyRequest("t");
    ServeOptions options;
    options.socket_path = TempPath("serve_beyond.sock");
    options.jobs = 1;
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    SubmitOptions client;
    client.socket_path = options.socket_path;
    const std::string save_path = TempPath("serve_beyond.save");
    std::remove(save_path.c_str());
    const std::optional<SubmitResult> full =
        SubmitRequest(request, client, save_path, &error);
    ASSERT_TRUE(full.has_value()) << error;
    ASSERT_TRUE(full->complete);
    const std::string reply = ReadFile(save_path);
    // Drop the trailer frame so the file holds 4 records but is torn.
    const size_t trailer = reply.rfind("\nT ");
    ASSERT_NE(trailer, std::string::npos);
    WriteFile(save_path, reply.substr(0, trailer + 1));

    SweepRequest shrunk = request;
    shrunk.configs.resize(1);
    shrunk.reps = 1;
    const std::optional<SubmitResult> result =
        SubmitRequest(shrunk, client, save_path, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_FALSE(result->accepted);
    EXPECT_NE(result->reject_reason.find("beyond the request"),
              std::string::npos)
        << result->reject_reason;
    std::remove(save_path.c_str());
    EXPECT_EQ(server.Stop(), 0);
}

TEST(ServeAdmissionTest, SaturationRejectsButNeverDeadlocks)
{
    constexpr int kClients = 5;
    ServeOptions options;
    options.socket_path = TempPath("serve_sat.sock");
    options.jobs = 2;
    options.max_queued_cells = 4;  // One tiny request at a time.
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    std::vector<SweepRequest> requests;
    for (int i = 0; i < kClients; ++i) {
        std::string name = "s";
        name += std::to_string(i);
        SweepRequest request = TinyRequest(name);
        for (core::RunConfig& config : request.configs) {
            config.seed += static_cast<uint64_t>(i);
        }
        requests.push_back(std::move(request));
    }
    std::vector<std::optional<SubmitResult>> results(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            SubmitOptions client;
            client.socket_path = options.socket_path;
            results[i] = SubmitRequest(requests[i], client,
                                       /*save_path=*/"", &errors[i]);
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }

    int completed = 0;
    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(results[i].has_value()) << i << ": " << errors[i];
        if (results[i]->accepted) {
            ASSERT_TRUE(results[i]->complete) << i;
            EXPECT_EQ(sweep::ToJson(results[i]->document),
                      OfflineDocument(requests[i]))
                << i;
            ++completed;
        } else {
            EXPECT_FALSE(results[i]->reject_reason.empty()) << i;
        }
    }
    EXPECT_GE(completed, 1);  // Saturation must not starve everyone.

    // Capacity must have drained: one more request completes normally.
    SubmitOptions client;
    client.socket_path = options.socket_path;
    const std::optional<SubmitResult> after =
        SubmitRequest(TinyRequest("after"), client, /*save_path=*/"",
                      &error);
    ASSERT_TRUE(after.has_value()) << error;
    EXPECT_TRUE(after->accepted) << after->reject_reason;
    EXPECT_TRUE(after->complete);
    EXPECT_EQ(server.Stop(), 0);
    EXPECT_EQ(server.server().queued_cells(), 0u);
}

// ---- Drain ------------------------------------------------------------

TEST(ServeDrainTest, DrainStopsAcceptingAndRunReturnsZero)
{
    ServeOptions options;
    options.socket_path = TempPath("serve_drain.sock");
    options.jobs = 1;
    TestServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    EXPECT_EQ(server.Stop(), 0);

    // The listener is gone: a fresh submit is a hard connect error.
    SubmitOptions client;
    client.socket_path = options.socket_path;
    const std::optional<SubmitResult> result =
        SubmitRequest(TinyRequest("late"), client, /*save_path=*/"",
                      &error);
    EXPECT_FALSE(result.has_value());
    EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace spur::serve

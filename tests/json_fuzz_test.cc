/**
 * @file
 * Deterministic seeded fuzzer for the sweep-pipeline readers: the JSON
 * parser (src/sweep/json.h), the document parser (src/sweep/merge.h)
 * and the stream reader (src/sweep/stream.h).
 *
 * Structure-aware mutations of valid documents and streams assert the
 * crash-interruptible-format contract: the parsers never crash on
 * arbitrary bytes, and every input is either rejected with a diagnostic
 * or accepted into a value whose re-serialization is a parse fixpoint
 * (serialize(parse(x)) parses back byte-identically).
 *
 * Everything is seeded through spur::Rng, so a failure reproduces from
 * its iteration number alone.  The default iteration count keeps the
 * default ctest suite fast; the `fuzz`-labelled ctest case re-runs the
 * suite with SPUR_FUZZ_ITERATIONS=10000.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/stats/run_record.h"
#include "src/sweep/json.h"
#include "src/sweep/merge.h"
#include "src/sweep/stream.h"
#include "src/vm/region.h"
#include "src/workload/trace.h"

namespace spur::sweep {
namespace {

/** Iterations per fuzz test; the `fuzz` ctest label raises it to 10k. */
uint64_t
Iterations()
{
    const char* env = std::getenv("SPUR_FUZZ_ITERATIONS");
    if (env != nullptr) {
        const long long parsed = std::atoll(env);
        if (parsed > 0) {
            return static_cast<uint64_t>(parsed);
        }
    }
    return 300;
}

/** A representative document: sharded, metrics, telemetry, escapes. */
std::string
CorpusDocument()
{
    stats::RunRecord record;
    record.bench = "fuzz \"bench\"\n";
    record.workload = "SLC";
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = 8;
    record.rep = 2;
    record.seed = 18446744073709551615ULL;
    record.refs_issued = 120000;
    record.page_ins = 7;
    record.page_outs = 0;
    record.elapsed_seconds = 1.5;
    record.AddMetric("n_ds", 3.0);
    record.AddMetric("frac", 0.333333333333333315);
    stats::RunRecord second = record;
    second.rep = 3;
    second.elapsed_seconds = 0.0;
    stats::CellTelemetry telemetry;
    telemetry.wall_seconds = 0.25;
    telemetry.peak_rss_bytes = 1u << 20;
    telemetry.worker = 1;
    second.telemetry = telemetry;
    stats::DocumentMeta meta;
    meta.bench = "fuzz \"bench\"\n";
    meta.shard_index = 1;
    meta.shard_count = 3;
    meta.total_cells = 12;
    meta.ran_cells = 2;
    return stats::JsonWriter::ToJson(meta, {record, second});
}

/** A complete stream holding the corpus records, built frame by frame. */
std::string
CorpusStream()
{
    // Composed by hand (no file I/O in the hot fuzz path); the framing
    // here matches StreamWriter's and the golden files pin that.
    stats::RunRecord record;
    record.bench = "fuzz";
    record.workload = "SLC";
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = 8;
    record.rep = 0;
    record.seed = 9;
    record.refs_issued = 100;
    record.page_ins = 1;
    record.page_outs = 0;
    record.elapsed_seconds = 0.5;
    record.AddMetric("n_ds", 1.0);
    const std::string payload = stats::JsonWriter::ToJson(record);

    std::string bytes = kStreamMagic;
    const std::string header =
        "{\"stream_version\": 1, \"bench\": \"fuzz\", "
        "\"shard\": {\"index\": 0, \"count\": 1}}";
    bytes += "H " + std::to_string(header.size()) + "\n" + header + "\n";
    bytes += "R " + std::to_string(payload.size()) + "\n" + payload + "\n";

    // FNV-1a64 over payload + '\n', matching the writer.
    uint64_t digest = 14695981039346656037ULL;
    for (const char c : payload + "\n") {
        digest ^= static_cast<unsigned char>(c);
        digest *= 1099511628211ULL;
    }
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    const std::string trailer =
        "{\"records\": 1, \"schema_version\": 1, \"shard\": {\"index\": 0, "
        "\"count\": 1, \"total_cells\": 1, \"ran_cells\": 1}, \"digest\": "
        "\"" +
        std::string(hex) + "\"}";
    bytes += "T " + std::to_string(trailer.size()) + "\n" + trailer + "\n";
    return bytes;
}

/** Applies one random byte-level or structural mutation. */
std::string
Mutate(std::string input, Rng& rng)
{
    if (input.empty()) {
        return input;
    }
    switch (rng.NextBelow(8)) {
      case 0: {  // Flip one byte to an arbitrary value.
        input[rng.NextBelow(input.size())] =
            static_cast<char>(rng.NextBelow(256));
        return input;
      }
      case 1:  // Truncate.
        return input.substr(0, rng.NextBelow(input.size()));
      case 2: {  // Insert a random byte.
        input.insert(input.begin() + static_cast<long>(
                                         rng.NextBelow(input.size() + 1)),
                     static_cast<char>(rng.NextBelow(256)));
        return input;
      }
      case 3: {  // Delete a short range.
        const size_t at = rng.NextBelow(input.size());
        input.erase(at, rng.NextBelow(8) + 1);
        return input;
      }
      case 4: {  // Duplicate a short range (repeats frames/members).
        const size_t at = rng.NextBelow(input.size());
        const size_t len =
            std::min<size_t>(rng.NextBelow(32) + 1, input.size() - at);
        input.insert(at, input.substr(at, len));
        return input;
      }
      case 5: {  // Tweak a digit: numbers/lengths drift by one.
        for (size_t probe = 0; probe < 32; ++probe) {
            const size_t at = rng.NextBelow(input.size());
            if (input[at] >= '0' && input[at] <= '9') {
                input[at] = static_cast<char>('0' + rng.NextBelow(10));
                return input;
            }
        }
        return input;
      }
      case 6: {  // Swap two structural characters.
        const size_t a = rng.NextBelow(input.size());
        const size_t b = rng.NextBelow(input.size());
        std::swap(input[a], input[b]);
        return input;
      }
      default: {  // Splice: overwrite a range with bytes from elsewhere.
        const size_t from = rng.NextBelow(input.size());
        const size_t to = rng.NextBelow(input.size());
        const size_t len = std::min<size_t>(rng.NextBelow(16) + 1,
                                            input.size() -
                                                std::max(from, to));
        const std::string chunk = input.substr(from, len);
        input.replace(to, len, chunk);
        return input;
      }
    }
}

TEST(JsonFuzzTest, ParserNeverCrashesAndAcceptedInputsAreFixpoints)
{
    const std::string corpus = CorpusDocument();
    Rng rng(0x5eed0001);
    const uint64_t iterations = Iterations();
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
        std::string input = corpus;
        const uint64_t rounds = 1 + rng.NextBelow(4);
        for (uint64_t round = 0; round < rounds; ++round) {
            input = Mutate(std::move(input), rng);
        }
        std::string error;
        const std::optional<JsonValue> value = ParseJson(input, &error);
        if (!value) {
            EXPECT_FALSE(error.empty()) << "iteration " << i;
            continue;
        }
        ++accepted;
        // Accepted inputs must round-trip through the document layer:
        // if the mutant is still a valid sweep document, serializing it
        // must be a parse fixpoint (raw tokens and member order kept).
        std::string doc_error;
        const std::optional<SweepDocument> document =
            ParseSweepDocument(input, &doc_error);
        if (!document) {
            EXPECT_FALSE(doc_error.empty()) << "iteration " << i;
            continue;
        }
        const std::string serialized = ToJson(*document);
        const std::optional<SweepDocument> again =
            ParseSweepDocument(serialized, &doc_error);
        ASSERT_TRUE(again.has_value())
            << "iteration " << i << ": " << doc_error;
        EXPECT_EQ(ToJson(*again), serialized) << "iteration " << i;
    }
    // The mutator must not be so destructive that nothing parses.
    EXPECT_GT(accepted, 0u);
}

TEST(JsonFuzzTest, UnmutatedCorpusRoundTripsByteIdentically)
{
    const std::string corpus = CorpusDocument();
    std::string error;
    const std::optional<SweepDocument> document =
        ParseSweepDocument(corpus, &error);
    ASSERT_TRUE(document.has_value()) << error;
    EXPECT_EQ(ToJson(*document), corpus);
}

TEST(StreamFuzzTest, RecoverNeverCrashesAndNeverFailsSilently)
{
    const std::string corpus = CorpusStream();
    {
        // The unmutated corpus is a complete, verified stream.
        std::string error;
        const std::optional<RecoveredStream> recovered =
            RecoverStreamBytes(corpus, &error);
        ASSERT_TRUE(recovered.has_value()) << error;
        EXPECT_TRUE(recovered->complete);
        EXPECT_EQ(recovered->document.records.size(), 1u);
    }
    Rng rng(0x5eed0002);
    const uint64_t iterations = Iterations();
    for (uint64_t i = 0; i < iterations; ++i) {
        std::string input = corpus;
        const uint64_t rounds = 1 + rng.NextBelow(4);
        for (uint64_t round = 0; round < rounds; ++round) {
            input = Mutate(std::move(input), rng);
        }
        std::string error;
        const std::optional<RecoveredStream> recovered =
            RecoverStreamBytes(input, &error);
        if (!recovered) {
            EXPECT_FALSE(error.empty()) << "iteration " << i;
            continue;
        }
        // Whatever recovers must be a valid (possibly partial) sweep
        // document, or --resume could not consume it.
        std::string doc_error;
        const std::optional<SweepDocument> document =
            ParseSweepDocument(ToJson(recovered->document), &doc_error);
        ASSERT_TRUE(document.has_value())
            << "iteration " << i << ": " << doc_error;
        EXPECT_EQ(document->records.size(),
                  recovered->document.records.size())
            << "iteration " << i;
    }
}

TEST(StreamFuzzTest, EveryPrefixOfCorpusStreamRecovers)
{
    const std::string corpus = CorpusStream();
    for (size_t cut = 0; cut < corpus.size(); ++cut) {
        std::string error;
        const std::optional<RecoveredStream> recovered =
            RecoverStreamBytes(corpus.substr(0, cut), &error);
        ASSERT_TRUE(recovered.has_value())
            << "cut at byte " << cut << ": " << error;
        EXPECT_FALSE(recovered->complete) << "cut at byte " << cut;
    }
}

// ---- SPUR-TRACE/1 (src/workload/trace.h) ------------------------------

/**
 * A two-stream trace library, hand-scripted through the encoder (no
 * driver in the hot fuzz path): shares, destroys, pid renames, and
 * address deltas in both directions, so the mutator has every frame
 * kind and opcode to chew on.
 */
std::string
CorpusTrace()
{
    workload::TraceStreamMeta meta;
    meta.workload = "fuzz-a";
    meta.seed = 7;
    meta.refs = 5;
    meta.page_bytes = 4096;
    meta.block_bytes = 32;
    workload::TraceEncoder first(meta);
    first.OnCreateProcess(12);
    first.OnMapRegion(12, 0x80000000, 0x4000, vm::PageKind::kHeap);
    first.OnAccess(MemRef{12, 0x80000100, AccessType::kWrite});
    first.OnAccess(MemRef{12, 0x80000080, AccessType::kRead});
    first.OnContextSwitch();
    first.OnCreateProcess(3);
    first.OnShareSegment(3, 0, 12, 0);
    first.OnAccess(MemRef{3, 0x00000040, AccessType::kIFetch});
    first.OnDestroyProcess(3);
    first.OnAccess(MemRef{12, 0x80000084, AccessType::kRead});

    workload::TraceStreamMeta second_meta = meta;
    second_meta.workload = "fuzz-b";
    second_meta.seed = 18446744073709551615ULL;
    second_meta.intensity = 1.85;
    workload::TraceEncoder second(second_meta);
    second.OnCreateProcess(1);
    second.OnMapRegion(1, 0xC0000000, 0x1000, vm::PageKind::kStack);
    second.OnAccess(MemRef{1, 0xC0000FF8, AccessType::kWrite});
    second.OnContextSwitch();
    second.OnAccess(MemRef{1, 0xC0000FF0, AccessType::kWrite});

    return workload::EncodeTraceFile(
        {first.Finish(5), second.Finish(3)});
}

TEST(TraceFuzzTest, RecoverNeverCrashesAndAcceptedInputsAreFixpoints)
{
    const std::string corpus = CorpusTrace();
    {
        // The unmutated corpus is complete and re-encodes to itself.
        std::string error;
        const auto recovered =
            workload::RecoverTraceBytes(corpus, &error);
        ASSERT_TRUE(recovered.has_value()) << error;
        EXPECT_TRUE(recovered->complete);
        ASSERT_EQ(recovered->streams.size(), 2u);
        EXPECT_EQ(workload::EncodeTraceFile(
                      {recovered->streams[0].framed,
                       recovered->streams[1].framed}),
                  corpus);
    }
    Rng rng(0x5eed0003);
    const uint64_t iterations = Iterations();
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
        std::string input = corpus;
        const uint64_t rounds = 1 + rng.NextBelow(4);
        for (uint64_t round = 0; round < rounds; ++round) {
            input = Mutate(std::move(input), rng);
        }
        std::string error;
        const auto recovered =
            workload::RecoverTraceBytes(input, &error);
        if (!recovered) {
            EXPECT_FALSE(error.empty()) << "iteration " << i;
            continue;
        }
        ++accepted;
        // Whatever recovers must re-encode into a complete file that
        // recovers again with the same streams — and a mutant accepted
        // as *complete* must be byte-identical under re-encoding (the
        // strict-parse fixpoint).
        std::vector<std::string> frames;
        for (const workload::TraceStream& stream : recovered->streams) {
            frames.push_back(stream.framed);
        }
        const std::string reencoded = workload::EncodeTraceFile(frames);
        if (recovered->complete) {
            EXPECT_EQ(reencoded, input) << "iteration " << i;
        }
        std::string again_error;
        const auto again =
            workload::RecoverTraceBytes(reencoded, &again_error);
        ASSERT_TRUE(again.has_value())
            << "iteration " << i << ": " << again_error;
        EXPECT_TRUE(again->complete) << "iteration " << i;
        EXPECT_EQ(again->streams.size(), recovered->streams.size())
            << "iteration " << i;
    }
    // The mutator must not be so destructive that nothing parses.
    EXPECT_GT(accepted, 0u);
}

TEST(TraceFuzzTest, EveryPrefixOfCorpusTraceRecovers)
{
    // Truncation at any byte offset — a killed recorder — must recover
    // the complete-stream prefix, never hard-error.
    const std::string corpus = CorpusTrace();
    for (size_t cut = 0; cut < corpus.size(); ++cut) {
        std::string error;
        const auto recovered = workload::RecoverTraceBytes(
            corpus.substr(0, cut), &error);
        ASSERT_TRUE(recovered.has_value())
            << "cut at byte " << cut << ": " << error;
        EXPECT_FALSE(recovered->complete) << "cut at byte " << cut;
        EXPECT_LE(recovered->streams.size(), 2u) << "cut at byte " << cut;
    }
}

}  // namespace
}  // namespace spur::sweep

/**
 * @file
 * Tests for the machine model: configuration validation, derived timing
 * quantities, the event-count ground truth, the hardware performance
 * counters (mode multiplexing, 32-bit wrap, observer mirroring) and the
 * timing buckets.
 */
#include <gtest/gtest.h>

#include "src/sim/config.h"
#include "src/sim/counters.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"

namespace spur::sim {
namespace {

// ---------------------------------------------------------------------------
// MachineConfig
// ---------------------------------------------------------------------------

TEST(MachineConfigTest, PrototypeMatchesTable21)
{
    const MachineConfig config = MachineConfig::Prototype(8);
    EXPECT_EQ(config.cache_bytes, 128u * 1024);
    EXPECT_EQ(config.block_bytes, 32u);
    EXPECT_EQ(config.page_bytes, 4096u);
    EXPECT_DOUBLE_EQ(config.cpu_cycle_ns, 150.0);
    EXPECT_DOUBLE_EQ(config.bus_cycle_ns, 125.0);
    EXPECT_EQ(config.mem_first_word_cycles, 3u);
    EXPECT_EQ(config.mem_next_word_cycles, 1u);
    EXPECT_EQ(config.memory_bytes, 8ull * 1024 * 1024);
}

TEST(MachineConfigTest, Table32TimeParameters)
{
    const MachineConfig config = MachineConfig::Prototype(8);
    EXPECT_EQ(config.t_fault, 1000u);
    EXPECT_EQ(config.t_flush_page, 500u);
    EXPECT_EQ(config.t_dirty_miss, 25u);
    EXPECT_EQ(config.t_dirty_check, 5u);
}

TEST(MachineConfigTest, DerivedQuantities)
{
    const MachineConfig config = MachineConfig::Prototype(8);
    EXPECT_EQ(config.NumBlocks(), 4096u);
    EXPECT_EQ(config.BlocksPerPage(), 128u);
    EXPECT_EQ(config.NumFrames(), 2048u);
    EXPECT_EQ(config.BlockShift(), 5u);
    EXPECT_EQ(config.PageShift(), 12u);
    EXPECT_EQ(config.IndexBits(), 12u);
    // 32-byte block = 8 words: 3 + 7 * 1 = 10 bus cycles.
    EXPECT_EQ(config.BlockFetchBusCycles(), 10u);
    // 10 * 125ns = 1250ns; at 150ns/CPU-cycle -> ceil = 9 cycles.
    EXPECT_EQ(config.BlockFetchCycles(), 9u);
}

TEST(MachineConfigTest, PageInCycles)
{
    MachineConfig config = MachineConfig::Prototype(8);
    config.page_in_us = 1500.0;  // 1.5 ms.
    EXPECT_EQ(config.PageInCycles(), 10000u);  // 1.5e6 ns / 150 ns.
}

TEST(MachineConfigDeathTest, RejectsNonPowerOfTwo)
{
    MachineConfig config = MachineConfig::Prototype(8);
    config.block_bytes = 24;
    EXPECT_EXIT(config.Validate(), testing::ExitedWithCode(1), "power of");
}

TEST(MachineConfigDeathTest, RejectsTinyMemory)
{
    MachineConfig config;
    config.memory_bytes = 64 * 1024;
    EXPECT_EXIT(config.Validate(), testing::ExitedWithCode(1),
                "memory too small");
}

TEST(MachineConfigDeathTest, RejectsBadWatermarks)
{
    MachineConfig config = MachineConfig::Prototype(8);
    config.daemon_low_frac = 0.2;
    config.daemon_high_frac = 0.1;
    EXPECT_EXIT(config.Validate(), testing::ExitedWithCode(1), "watermark");
}

// ---------------------------------------------------------------------------
// EventCounts
// ---------------------------------------------------------------------------

TEST(EventCountsTest, StartsZeroAndAccumulates)
{
    EventCounts counts;
    for (size_t i = 0; i < kNumEvents; ++i) {
        EXPECT_EQ(counts.Get(static_cast<Event>(i)), 0u);
    }
    counts.Add(Event::kRead);
    counts.Add(Event::kRead, 4);
    EXPECT_EQ(counts.Get(Event::kRead), 5u);
    counts.Reset();
    EXPECT_EQ(counts.Get(Event::kRead), 0u);
}

TEST(EventCountsTest, Totals)
{
    EventCounts counts;
    counts.Add(Event::kIFetch, 10);
    counts.Add(Event::kRead, 5);
    counts.Add(Event::kWrite, 2);
    counts.Add(Event::kIFetchMiss, 1);
    counts.Add(Event::kReadMiss, 2);
    counts.Add(Event::kWriteMiss, 3);
    EXPECT_EQ(counts.TotalRefs(), 17u);
    EXPECT_EQ(counts.TotalMisses(), 6u);
}

TEST(EventCountsTest, EveryEventHasAName)
{
    for (size_t i = 0; i < kNumEvents; ++i) {
        EXPECT_STRNE(ToString(static_cast<Event>(i)), "?");
    }
}

// ---------------------------------------------------------------------------
// PerfCounters
// ---------------------------------------------------------------------------

TEST(PerfCountersTest, ModeSelectsEventSet)
{
    PerfCounters counters;
    counters.SetMode(0);
    EXPECT_GE(counters.IndexOf(Event::kIFetch), 0);
    EXPECT_EQ(counters.IndexOf(Event::kDirtyFault), -1);
    counters.SetMode(2);
    EXPECT_GE(counters.IndexOf(Event::kDirtyFault), 0);
    EXPECT_EQ(counters.IndexOf(Event::kIFetch), -1);
}

TEST(PerfCountersTest, ObserveAccumulatesOnlyCapturedEvents)
{
    PerfCounters counters;
    counters.SetMode(0);
    counters.Observe(Event::kIFetch, 3);
    counters.Observe(Event::kDirtyFault, 7);  // Not in mode 0.
    const int slot = counters.IndexOf(Event::kIFetch);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(counters.Read(static_cast<size_t>(slot)), 3u);
    // The uncaptured event left every register unchanged.
    uint32_t total = 0;
    for (size_t i = 0; i < kNumHwCounters; ++i) {
        total += counters.Read(i);
    }
    EXPECT_EQ(total, 3u);
}

TEST(PerfCountersTest, SetModeClearsRegisters)
{
    PerfCounters counters;
    counters.SetMode(0);
    counters.Observe(Event::kIFetch, 100);
    counters.SetMode(1);
    for (size_t i = 0; i < kNumHwCounters; ++i) {
        EXPECT_EQ(counters.Read(i), 0u);
    }
}

TEST(PerfCountersTest, RegistersWrapAt32Bits)
{
    PerfCounters counters;
    counters.SetMode(0);
    const int slot = counters.IndexOf(Event::kIFetch);
    ASSERT_GE(slot, 0);
    counters.Observe(Event::kIFetch, 0xFFFFFFFFu);
    counters.Observe(Event::kIFetch, 2);
    EXPECT_EQ(counters.Read(static_cast<size_t>(slot)), 1u);
}

TEST(PerfCountersTest, SlotEventTableIsConsistent)
{
    // Every (mode, slot) pair either names a real event or is unused, and
    // IndexOf agrees with SlotEvent.
    for (unsigned mode = 0; mode < kNumCounterModes; ++mode) {
        PerfCounters counters;
        counters.SetMode(mode);
        for (size_t slot = 0; slot < kNumHwCounters; ++slot) {
            const Event event = PerfCounters::SlotEvent(mode, slot);
            if (event != Event::kCount) {
                EXPECT_EQ(counters.IndexOf(event),
                          static_cast<int>(slot));
            }
        }
    }
}

TEST(PerfCountersTest, MirrorsEventCountsViaObserver)
{
    EventCounts counts;
    PerfCounters counters;
    counters.SetMode(2);
    counts.SetObserver(&counters);
    counts.Add(Event::kDirtyFault, 5);
    counts.Add(Event::kDirtyBitMiss, 2);
    counts.Add(Event::kIFetch, 99);  // Not captured in mode 2.
    const int ds = counters.IndexOf(Event::kDirtyFault);
    const int dm = counters.IndexOf(Event::kDirtyBitMiss);
    ASSERT_GE(ds, 0);
    ASSERT_GE(dm, 0);
    EXPECT_EQ(counters.Read(static_cast<size_t>(ds)), 5u);
    EXPECT_EQ(counters.Read(static_cast<size_t>(dm)), 2u);
    counts.SetObserver(nullptr);
    counts.Add(Event::kDirtyFault, 5);
    EXPECT_EQ(counters.Read(static_cast<size_t>(ds)), 5u);  // Unchanged.
}

TEST(PerfCountersDeathTest, RejectsBadMode)
{
    PerfCounters counters;
    EXPECT_EXIT(counters.SetMode(4), testing::ExitedWithCode(1), "mode");
}

// ---------------------------------------------------------------------------
// TimingModel
// ---------------------------------------------------------------------------

TEST(TimingModelTest, ChargesAndTotals)
{
    const MachineConfig config = MachineConfig::Prototype(8);
    TimingModel timing(config);
    timing.Charge(TimeBucket::kExecute, 100);
    timing.Charge(TimeBucket::kFault, 1000);
    timing.Charge(TimeBucket::kExecute, 50);
    EXPECT_EQ(timing.Get(TimeBucket::kExecute), 150u);
    EXPECT_EQ(timing.Get(TimeBucket::kFault), 1000u);
    EXPECT_EQ(timing.Total(), 1150u);
}

TEST(TimingModelTest, SecondsConversion)
{
    const MachineConfig config = MachineConfig::Prototype(8);
    TimingModel timing(config);
    // 1e9 cycles at 150ns = 150 seconds.
    timing.Charge(TimeBucket::kExecute, 1'000'000'000ull);
    EXPECT_NEAR(timing.ElapsedSeconds(), 150.0, 1e-9);
    EXPECT_NEAR(timing.Seconds(TimeBucket::kExecute), 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(timing.Seconds(TimeBucket::kFault), 0.0);
}

TEST(TimingModelTest, ResetZeroes)
{
    const MachineConfig config = MachineConfig::Prototype(8);
    TimingModel timing(config);
    timing.Charge(TimeBucket::kKernel, 42);
    timing.Reset();
    EXPECT_EQ(timing.Total(), 0u);
}

TEST(TimingModelTest, EveryBucketHasAName)
{
    for (size_t i = 0; i < kNumTimeBuckets; ++i) {
        EXPECT_STRNE(ToString(static_cast<TimeBucket>(i)), "?");
    }
}

}  // namespace
}  // namespace spur::sim

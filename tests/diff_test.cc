// Tests for telemetry trend comparison (src/sweep/diff.h), the engine
// behind `spur_sweep diff-telemetry BASE NEW`.
#include "src/sweep/diff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/stats/run_record.h"
#include "src/sweep/merge.h"

namespace {

using spur::stats::CellTelemetry;
using spur::stats::RunRecord;
using spur::sweep::CellDelta;
using spur::sweep::DiffOptions;
using spur::sweep::DiffTelemetry;
using spur::sweep::FormatDiffReport;
using spur::sweep::HasFatalRegressions;
using spur::sweep::HasRegressions;
using spur::sweep::SweepDocument;
using spur::sweep::TelemetryDiff;

RunRecord
MakeRecord(const std::string& workload, uint32_t rep, double wall_seconds,
           uint64_t peak_rss_bytes, uint64_t refs_issued = 0)
{
    RunRecord record;
    record.bench = "bench";
    record.workload = workload;
    record.dirty_policy = "writeback";
    record.ref_policy = "clock";
    record.memory_mb = 16;
    record.rep = rep;
    record.seed = 42 + rep;
    record.refs_issued = refs_issued;
    CellTelemetry telemetry;
    telemetry.wall_seconds = wall_seconds;
    telemetry.peak_rss_bytes = peak_rss_bytes;
    record.telemetry = telemetry;
    return record;
}

SweepDocument
MakeDocument(std::vector<RunRecord> records)
{
    SweepDocument document;
    document.meta.bench = "bench";
    document.records = std::move(records);
    return document;
}

constexpr uint64_t kMiB = 1024 * 1024;

TEST(DiffTest, FlagsWallClockRegressionOverThreshold)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 1.5, 10 * kMiB)});
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    ASSERT_TRUE(HasRegressions(diff));
    ASSERT_EQ(diff.regressions.size(), 1u);
    const CellDelta& delta = diff.regressions[0];
    EXPECT_TRUE(delta.wall_regressed);
    EXPECT_FALSE(delta.rss_regressed);
    EXPECT_DOUBLE_EQ(delta.base_wall_seconds, 1.0);
    EXPECT_DOUBLE_EQ(delta.new_wall_seconds, 1.5);
    EXPECT_EQ(diff.compared, 1u);
}

TEST(DiffTest, FlagsRssRegressionIndependently)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 20 * kMiB)});
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    ASSERT_EQ(diff.regressions.size(), 1u);
    EXPECT_FALSE(diff.regressions[0].wall_regressed);
    EXPECT_TRUE(diff.regressions[0].rss_regressed);
}

TEST(DiffTest, GrowthWithinThresholdPasses)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB)});
    // +20% wall and +10% RSS against the default +25% threshold.
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 1.2, 11 * kMiB)});
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    EXPECT_FALSE(HasRegressions(diff));
    EXPECT_EQ(diff.compared, 1u);
}

TEST(DiffTest, ImprovementIsNeverARegression)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 2.0, 20 * kMiB)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 0.5, 5 * kMiB)});
    EXPECT_FALSE(HasRegressions(DiffTelemetry(base, now, DiffOptions{})));
}

TEST(DiffTest, NoiseFloorSuppressesTinyCells)
{
    // 2 ms doubling to 4 ms is scheduler jitter, not a regression.
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 0.002, 10 * kMiB)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 0.004, 10 * kMiB)});
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    EXPECT_FALSE(HasRegressions(diff));
    EXPECT_EQ(diff.compared, 1u);
}

TEST(DiffTest, CustomThresholdTightensTheGate)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 1.2, 10 * kMiB)});
    DiffOptions tight;
    tight.threshold = 0.10;
    EXPECT_TRUE(HasRegressions(DiffTelemetry(base, now, tight)));
}

TEST(DiffTest, UnmatchedAndUntelemeteredCellsAreCounted)
{
    RunRecord no_telemetry = MakeRecord("mixed", 0, 1.0, kMiB);
    no_telemetry.telemetry.reset();

    const SweepDocument base = MakeDocument({
        MakeRecord("lisp", 0, 1.0, 10 * kMiB),  // matched, compared
        MakeRecord("lisp", 1, 1.0, 10 * kMiB),  // base-only
        no_telemetry,                           // matched, no telemetry
    });
    RunRecord no_telemetry_new = no_telemetry;
    const SweepDocument now = MakeDocument({
        MakeRecord("lisp", 0, 1.0, 10 * kMiB),
        MakeRecord("lisp", 2, 1.0, 10 * kMiB),  // new-only
        no_telemetry_new,
    });
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    EXPECT_EQ(diff.compared, 1u);
    EXPECT_EQ(diff.base_only, 1u);
    EXPECT_EQ(diff.new_only, 1u);
    EXPECT_EQ(diff.missing_telemetry, 1u);
    EXPECT_FALSE(HasRegressions(diff));
}

TEST(DiffTest, DuplicateIdentitiesKeepMaxCost)
{
    // Bespoke records recomputed by every shard share an identity; the
    // diff keeps the max cost, mirroring CostTable's collision rule.
    const SweepDocument base = MakeDocument({
        MakeRecord("lisp", 0, 1.0, 10 * kMiB),
        MakeRecord("lisp", 0, 3.0, 12 * kMiB),
    });
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 3.1, 12 * kMiB)});
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    EXPECT_FALSE(HasRegressions(diff));  // 3.1 vs max(1.0, 3.0) = +3%.
    ASSERT_EQ(diff.compared, 1u);
    EXPECT_DOUBLE_EQ(diff.base_total_wall_seconds, 3.0);
}

TEST(DiffTest, RegressionsSortByIdentity)
{
    const SweepDocument base = MakeDocument({
        MakeRecord("zsh", 0, 1.0, 10 * kMiB),
        MakeRecord("awk", 0, 1.0, 10 * kMiB),
    });
    const SweepDocument now = MakeDocument({
        MakeRecord("zsh", 0, 2.0, 10 * kMiB),
        MakeRecord("awk", 0, 2.0, 10 * kMiB),
    });
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    ASSERT_EQ(diff.regressions.size(), 2u);
    EXPECT_LT(diff.regressions[0].identity, diff.regressions[1].identity);
}

TEST(DiffTest, ReportIsDeterministicAndSummarized)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 2.0, 10 * kMiB)});
    const DiffOptions options;
    const TelemetryDiff diff = DiffTelemetry(base, now, options);
    const std::string report = FormatDiffReport(diff, options);
    EXPECT_EQ(report, FormatDiffReport(diff, options));
    EXPECT_NE(report.find("REGRESSION"), std::string::npos);
    EXPECT_NE(report.find("1.000s -> 2.000s"), std::string::npos);
    EXPECT_NE(report.find("+100.0%"), std::string::npos);
    EXPECT_NE(report.find("1 regression(s) at threshold +25%"),
              std::string::npos);
    EXPECT_EQ(report.back(), '\n');
}

TEST(DiffTest, ThroughputGateIsOffByDefault)
{
    // A 2x slowdown at the same refs count halves refs/s, but without
    // throughput_threshold set the only finding is the advisory wall
    // regression.
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB, 1000000)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 2.0, 10 * kMiB, 1000000)});
    const TelemetryDiff diff = DiffTelemetry(base, now, DiffOptions{});
    ASSERT_EQ(diff.regressions.size(), 1u);
    EXPECT_TRUE(diff.regressions[0].wall_regressed);
    EXPECT_FALSE(diff.regressions[0].throughput_regressed);
    EXPECT_FALSE(HasFatalRegressions(diff));
}

TEST(DiffTest, ThroughputDropBeyondGateIsFatal)
{
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB, 1000000)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 2.0, 10 * kMiB, 1000000)});
    DiffOptions gate;
    gate.throughput_threshold = 0.30;  // -50% refs/s trips a -30% gate.
    const TelemetryDiff diff = DiffTelemetry(base, now, gate);
    ASSERT_EQ(diff.regressions.size(), 1u);
    const CellDelta& delta = diff.regressions[0];
    EXPECT_TRUE(delta.throughput_regressed);
    EXPECT_DOUBLE_EQ(delta.base_refs_per_second, 1000000.0);
    EXPECT_DOUBLE_EQ(delta.new_refs_per_second, 500000.0);
    EXPECT_TRUE(HasFatalRegressions(diff));
    const std::string report = FormatDiffReport(diff, gate);
    EXPECT_NE(report.find("FATAL"), std::string::npos);
    EXPECT_NE(report.find("1000000 refs/s -> 500000 refs/s"),
              std::string::npos);
    EXPECT_NE(report.find("-50.0%"), std::string::npos);
    EXPECT_NE(report.find("throughput gate: 1 fatal cell(s) below -30%"),
              std::string::npos);
}

TEST(DiffTest, ThroughputDropWithinGatePasses)
{
    // -20% refs/s against a -30% gate: not fatal, and the wall growth
    // (+25% exactly) does not exceed the advisory threshold either.
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB, 1000000)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 1.25, 10 * kMiB, 1000000)});
    DiffOptions gate;
    gate.throughput_threshold = 0.30;
    const TelemetryDiff diff = DiffTelemetry(base, now, gate);
    EXPECT_FALSE(HasFatalRegressions(diff));
    EXPECT_FALSE(HasRegressions(diff));
}

TEST(DiffTest, ThroughputGateRespectsNoiseFloor)
{
    // A sub-floor base cell (2 ms) never trips the gate, however large
    // the relative drop.
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 0.002, 10 * kMiB, 1000)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 0.2, 10 * kMiB, 1000)});
    DiffOptions gate;
    gate.throughput_threshold = 0.30;
    const TelemetryDiff diff = DiffTelemetry(base, now, gate);
    EXPECT_FALSE(HasFatalRegressions(diff));
}

TEST(DiffTest, ThroughputGateSkipsCellsWithoutRefs)
{
    // Records that never report refs_issued (refs/s = 0) cannot be
    // throughput-compared; the gate must not divide by zero or flag.
    const SweepDocument base =
        MakeDocument({MakeRecord("lisp", 0, 1.0, 10 * kMiB, 0)});
    const SweepDocument now =
        MakeDocument({MakeRecord("lisp", 0, 2.0, 10 * kMiB, 0)});
    DiffOptions gate;
    gate.throughput_threshold = 0.30;
    const TelemetryDiff diff = DiffTelemetry(base, now, gate);
    EXPECT_FALSE(HasFatalRegressions(diff));
    EXPECT_TRUE(HasRegressions(diff));  // Wall still advisory-flagged.
}

TEST(DiffTest, EmptyDocumentsDiffClean)
{
    const TelemetryDiff diff =
        DiffTelemetry(MakeDocument({}), MakeDocument({}), DiffOptions{});
    EXPECT_FALSE(HasRegressions(diff));
    EXPECT_EQ(diff.compared, 0u);
    const std::string report = FormatDiffReport(diff, DiffOptions{});
    EXPECT_NE(report.find("0 regression(s)"), std::string::npos);
}

}  // namespace

/**
 * @file
 * Tests for the synthetic workload machinery: the process generator's
 * address discipline and mix, the driver's scheduling/respawn/sharing,
 * and the workload specs.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/system.h"
#include "src/workload/driver.h"
#include "src/workload/process.h"
#include "src/workload/workloads.h"

namespace spur::workload {
namespace {

class WorkloadTest : public testing::Test
{
  protected:
    WorkloadTest()
        : system_(sim::MachineConfig::Prototype(16),
                  policy::DirtyPolicyKind::kSpur,
                  policy::RefPolicyKind::kMiss)
    {
    }

    core::SpurSystem system_;
};

TEST_F(WorkloadTest, ProcessMapsItsRegions)
{
    ProcessProfile profile;
    SyntheticProcess process(system_, profile, 1);
    const auto& regions = system_.memory().regions();
    // code + data(file/output split) + heap + stack.
    EXPECT_GE(regions.NumRegions(), 4u);
    const GlobalVpn code_vpn =
        system_.ToGlobal(process.pid(), kCodeBase) >> 12;
    const vm::Region* code = regions.Find(code_vpn);
    ASSERT_NE(code, nullptr);
    EXPECT_EQ(code->kind, vm::PageKind::kCode);
}

TEST_F(WorkloadTest, GeneratedAddressesStayInsideRegions)
{
    ProcessProfile profile;
    profile.code_pages = 8;
    profile.data_pages = 8;
    profile.heap_pages = 16;
    profile.stack_pages = 4;
    SyntheticProcess process(system_, profile, 2);
    const uint32_t page = 4096;
    for (int i = 0; i < 50000; ++i) {
        const MemRef ref = process.Next();
        const ProcessAddr a = ref.addr;
        const bool in_code = a >= kCodeBase && a < kCodeBase + 8 * page;
        const bool in_data = a >= kDataBase && a < kDataBase + 8 * page;
        const bool in_heap = a >= kHeapBase && a < kHeapBase + 16 * page;
        const bool in_stack = a >= kStackBase && a < kStackBase + 4 * page;
        ASSERT_TRUE(in_code || in_data || in_heap || in_stack)
            << std::hex << a;
        if (ref.type == AccessType::kIFetch) {
            ASSERT_TRUE(in_code) << std::hex << a;
        } else {
            ASSERT_FALSE(in_code) << std::hex << a;
        }
    }
}

TEST_F(WorkloadTest, MixApproximatesProfile)
{
    ProcessProfile profile;
    profile.frac_ifetch = 0.6;
    SyntheticProcess process(system_, profile, 3);
    uint64_t ifetches = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (process.Next().type == AccessType::kIFetch) {
            ++ifetches;
        }
    }
    EXPECT_NEAR(static_cast<double>(ifetches) / n, 0.6, 0.02);
}

TEST_F(WorkloadTest, DeterministicForSameSeed)
{
    ProcessProfile profile;
    SyntheticProcess a(system_, profile, 42);
    SyntheticProcess b(system_, profile, 42);
    for (int i = 0; i < 10000; ++i) {
        const MemRef ra = a.Next();
        const MemRef rb = b.Next();
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(static_cast<int>(ra.type), static_cast<int>(rb.type));
    }
}

TEST_F(WorkloadTest, LifetimeTerminates)
{
    ProcessProfile profile;
    profile.lifetime_refs = 1000;
    SyntheticProcess process(system_, profile, 4);
    EXPECT_FALSE(process.Done());
    for (int i = 0; i < 1000; ++i) {
        process.Next();
    }
    EXPECT_TRUE(process.Done());
}

TEST_F(WorkloadTest, DestructionFreesAddressSpace)
{
    const size_t regions_before = system_.memory().regions().NumRegions();
    {
        ProcessProfile profile;
        SyntheticProcess process(system_, profile, 5);
        for (int i = 0; i < 10000; ++i) {
            process.Step();
        }
        EXPECT_GT(system_.memory().regions().NumRegions(), regions_before);
    }
    EXPECT_EQ(system_.memory().regions().NumRegions(), regions_before);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

TEST_F(WorkloadTest, DriverRunsToBudget)
{
    WorkloadSpec spec;
    JobSpec job;
    job.profile.lifetime_refs = 0;
    spec.name = "test";
    spec.jobs.push_back(job);
    Driver driver(system_, spec, 100'000, 1);
    driver.Run();
    EXPECT_GE(driver.refs_issued(), 100'000u);
    EXPECT_EQ(system_.events().TotalRefs(), driver.refs_issued());
    EXPECT_EQ(driver.NumSpawns(), 1u);
}

TEST_F(WorkloadTest, DriverRespawnsFinishedJobs)
{
    WorkloadSpec spec;
    spec.name = "test";
    JobSpec job;
    job.profile.lifetime_refs = 10'000;
    job.respawn_delay_refs = 5'000;
    spec.jobs.push_back(job);
    Driver driver(system_, spec, 100'000, 1);
    driver.Run();
    // Roughly every 15k refs a new instance starts.
    EXPECT_GE(driver.NumSpawns(), 5u);
    EXPECT_LE(driver.NumSpawns(), 9u);
}

TEST_F(WorkloadTest, DriverOneShotJobsDoNotRespawn)
{
    WorkloadSpec spec;
    spec.name = "test";
    JobSpec forever;
    forever.profile.lifetime_refs = 0;
    spec.jobs.push_back(forever);
    JobSpec once;
    once.profile.lifetime_refs = 1'000;
    once.respawn_delay_refs = 0;
    spec.jobs.push_back(once);
    Driver driver(system_, spec, 50'000, 1);
    driver.Run();
    EXPECT_EQ(driver.NumSpawns(), 2u);
    EXPECT_EQ(driver.NumLive(), 1u);
}

TEST_F(WorkloadTest, DriverConcurrencySpawnsInstances)
{
    WorkloadSpec spec;
    spec.name = "test";
    JobSpec job;
    job.profile.lifetime_refs = 0;
    job.concurrency = 3;
    spec.jobs.push_back(job);
    Driver driver(system_, spec, 10'000, 1);
    driver.Run();
    EXPECT_EQ(driver.NumLive(), 3u);
}

TEST_F(WorkloadTest, DriverContextSwitchesBetweenSlices)
{
    WorkloadSpec spec;
    spec.name = "test";
    JobSpec job;
    job.profile.lifetime_refs = 0;
    job.concurrency = 2;
    spec.jobs.push_back(job);
    Driver driver(system_, spec, 100'000, 1, /*slice_refs=*/10'000);
    driver.Run();
    EXPECT_GE(system_.events().Get(sim::Event::kContextSwitch), 9u);
}

TEST_F(WorkloadTest, SharedTextReusesGlobalPages)
{
    // Two sequential incarnations of a respawning job share text: the
    // second must not re-fault the code pages the first loaded.
    WorkloadSpec spec;
    spec.name = "test";
    JobSpec job;
    job.profile.lifetime_refs = 40'000;
    job.profile.frac_ifetch = 1.0;  // Pure code execution.
    job.profile.code_pages = 8;
    job.profile.code_ws_pages = 8;
    job.respawn_delay_refs = 1'000;
    job.share_text = true;
    spec.jobs.push_back(job);
    Driver driver(system_, spec, 200'000, 1);
    driver.Run();
    EXPECT_GE(driver.NumSpawns(), 3u);
    // Code is 8 pages; with sharing, page faults stay near 8 instead of
    // 8 per incarnation.
    EXPECT_LE(system_.events().Get(sim::Event::kPageFault), 10u);
}

TEST_F(WorkloadTest, PrivateTextRefaultsPerIncarnation)
{
    WorkloadSpec spec;
    spec.name = "test";
    JobSpec job;
    job.profile.lifetime_refs = 40'000;
    job.profile.frac_ifetch = 1.0;
    job.profile.code_pages = 8;
    job.profile.code_ws_pages = 8;
    job.respawn_delay_refs = 1'000;
    job.share_text = false;
    spec.jobs.push_back(job);
    Driver driver(system_, spec, 200'000, 1);
    driver.Run();
    EXPECT_GE(system_.events().Get(sim::Event::kPageFault),
              8u * driver.NumSpawns() / 2);
}

// ---------------------------------------------------------------------------
// Workload specs
// ---------------------------------------------------------------------------

TEST(WorkloadSpecsTest, Workload1Structure)
{
    const WorkloadSpec spec = MakeWorkload1();
    EXPECT_EQ(spec.name, "WORKLOAD1");
    EXPECT_GE(spec.jobs.size(), 6u);  // espresso, cc, ld, dbx, edit, 2 mon.
    // Exactly one background job runs forever from the start.
    int forever = 0;
    for (const JobSpec& job : spec.jobs) {
        if (job.profile.lifetime_refs == 0) {
            ++forever;
        }
    }
    EXPECT_EQ(forever, 1);
}

TEST(WorkloadSpecsTest, SlcStructure)
{
    const WorkloadSpec spec = MakeSlc();
    EXPECT_EQ(spec.name, "SLC");
    EXPECT_EQ(spec.jobs.size(), 2u);
    EXPECT_EQ(spec.jobs[0].profile.lifetime_refs, 0u);  // The Lisp system.
    EXPECT_GT(spec.jobs[1].respawn_delay_refs, 0u);     // Compile stream.
}

TEST(WorkloadSpecsTest, DevMachineScalesWithIntensity)
{
    const WorkloadSpec small = MakeDevMachine(0.5);
    const WorkloadSpec big = MakeDevMachine(2.0);
    EXPECT_GT(big.jobs[0].profile.heap_pages,
              small.jobs[0].profile.heap_pages);
}

TEST(WorkloadSpecsTest, AllProfilesHavePositiveWeights)
{
    for (const WorkloadSpec& spec :
         {MakeWorkload1(), MakeSlc(), MakeDevMachine(1.0)}) {
        for (const JobSpec& job : spec.jobs) {
            const ProcessProfile& p = job.profile;
            const double total = p.w_seq_read + p.w_seq_write + p.w_rmw +
                                 p.w_scan_update + p.w_rand +
                                 p.w_file_write;
            EXPECT_GT(total, 0.0) << spec.name << "/" << p.name;
            EXPECT_GT(p.frac_ifetch, 0.0);
            EXPECT_LT(p.frac_ifetch, 1.0);
            EXPECT_GT(p.code_pages, 0u);
        }
    }
}

}  // namespace
}  // namespace spur::workload

/**
 * @file
 * Tests for the invariant-audit subsystem (src/check/).
 *
 * Strategy: every built-in pass gets a pair of proofs —
 *   (a) it stays SILENT on healthy state (hand-built and full-system), and
 *   (b) it FIRES on deliberately corrupted state, injected either through
 *       the normal mutators (cache lines and PTEs are directly writable)
 *       or through the FrameTableTestAccess backdoor for states the
 *       FrameTable API correctly refuses to construct.
 * The dominance audits get the same treatment with fabricated matrices.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/check/checker.h"
#include "src/audit/dominance.h"
#include "src/check/invariants.h"
#include "src/check/report.h"
#include "src/common/random.h"
#include "src/core/experiment.h"
#include "src/core/mp_system.h"
#include "src/core/system.h"
#include "src/workload/process.h"

namespace spur::mem {

/** Friend backdoor: injects the free-list corruption the public API
 *  (correctly) panics on, so the frame-freelist pass can be exercised. */
struct FrameTableTestAccess {
    static std::vector<FrameNum>& FreeList(FrameTable& table)
    {
        return table.free_;
    }
    static void SetAllocated(FrameTable& table, FrameNum frame, bool value)
    {
        table.allocated_[frame] = value;
    }
    static void SetVpn(FrameTable& table, FrameNum frame, GlobalVpn vpn)
    {
        table.vpn_of_[frame] = vpn;
    }
};

}  // namespace spur::mem

namespace spur::check {
namespace {

using audit::AuditDominance;
using audit::IntrinsicDirtyFaults;
using audit::kPassMinDominance;
using audit::kPassNorefPageIns;
using policy::DirtyPolicyKind;
using policy::RefPolicyKind;
using workload::kHeapBase;

// ---------------------------------------------------------------------------
// Hand-built state: one cache, page table, frame table, backing store.
// ---------------------------------------------------------------------------

class PassTest : public testing::Test
{
  protected:
    PassTest()
        : config_(sim::MachineConfig::Prototype(8)),
          vcache_(config_),
          frames_(/*total_frames=*/32, /*wired_frames=*/2)
    {
        context_.config = &config_;
        context_.caches = {&vcache_};
        context_.table = &table_;
        context_.frames = &frames_;
        context_.store = &store_;
        context_.events = &events_;
        context_.dirty = DirtyPolicyKind::kSpur;
        context_.ref = RefPolicyKind::kMiss;
    }

    /** Makes page @p vpn resident the healthy way: frame allocated and
     *  bound, PTE valid and pointing back. */
    pt::Pte& MakeResident(GlobalVpn vpn,
                          Protection prot = Protection::kReadOnly)
    {
        const FrameNum frame = frames_.Allocate();
        EXPECT_NE(frame, kInvalidFrame);
        frames_.Bind(frame, vpn);
        pt::Pte& pte = table_.Ensure(vpn);
        pte.set_valid(true);
        pte.set_pfn(frame);
        pte.set_protection(prot);
        pte.set_cacheable(true);
        pte.set_referenced(true);
        return pte;
    }

    GlobalAddr AddrOf(GlobalVpn vpn) const
    {
        return vpn << config_.PageShift();
    }

    /** Caches the first block of @p vpn with PR/P copied from @p pte. */
    cache::LineRef CacheBlock(GlobalVpn vpn, const pt::Pte& pte)
    {
        return vcache_.Fill(AddrOf(vpn), pte.protection(), pte.dirty(),
                            nullptr);
    }

    /** Runs one named pass and returns its violation count. */
    size_t Fires(const char* pass) const
    {
        return InvariantChecker::Default()
            .RunOne(pass, context_)
            .CountFor(pass);
    }

    sim::MachineConfig config_;
    cache::VirtualCache vcache_;
    pt::PageTable table_;
    mem::FrameTable frames_;
    mem::BackingStore store_;
    sim::EventCounts events_;
    AuditContext context_;
};

TEST_F(PassTest, HealthyStateIsSilentUnderEveryPass)
{
    // A clean read-only page and a legitimately dirty read-write page.
    const pt::Pte& clean = MakeResident(100, Protection::kReadOnly);
    CacheBlock(100, clean);
    pt::Pte& dirty = MakeResident(101, Protection::kReadWrite);
    dirty.set_dirty(true);
    cache::LineRef line = CacheBlock(101, dirty);
    cache::VirtualCache::MarkWritten(line);

    const AuditReport report = InvariantChecker::Default().Run(context_);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.violations().empty()) << report.Summary();
    EXPECT_EQ(report.passes().size(),
              InvariantChecker::Default().NumPasses());
}

TEST_F(PassTest, CacheResidentFiresOnBlockOfNonResidentPage)
{
    const pt::Pte& pte = MakeResident(100);
    CacheBlock(100, pte);
    EXPECT_EQ(Fires(kPassCacheResident), 0u);

    // Cache a block of page 200, whose PTE is invalid (never mapped).
    vcache_.Fill(AddrOf(200), Protection::kReadOnly, false, nullptr);
    EXPECT_EQ(Fires(kPassCacheResident), 1u);
    EXPECT_FALSE(InvariantChecker::Default().Run(context_).ok());
}

TEST_F(PassTest, CachePteDirtyFiresWhenCachedPRunsAheadOfD)
{
    pt::Pte& pte = MakeResident(100, Protection::kReadWrite);
    cache::LineRef line = CacheBlock(100, pte);
    EXPECT_EQ(Fires(kPassCachePteDirty), 0u);

    line.set_page_dirty(true);  // P set while the PTE's D bit is clear.
    EXPECT_EQ(Fires(kPassCachePteDirty), 1u);

    pte.set_dirty(true);  // Recording the write repairs the invariant.
    EXPECT_EQ(Fires(kPassCachePteDirty), 0u);
}

TEST_F(PassTest, CachePteDirtyFiresOnUnrecordedBlockWrite)
{
    pt::Pte& pte = MakeResident(100, Protection::kReadWrite);
    cache::LineRef line = CacheBlock(100, pte);
    line.set_block_dirty(true);  // Modified block, page recorded clean.

    // SPUR's notion of "recorded" is the hardware D bit...
    context_.dirty = DirtyPolicyKind::kSpur;
    EXPECT_EQ(Fires(kPassCachePteDirty), 1u);
    // ...FAULT's is the software dirty bit, so D alone does not help...
    context_.dirty = DirtyPolicyKind::kFault;
    EXPECT_EQ(Fires(kPassCachePteDirty), 1u);
    pte.set_dirty(true);
    EXPECT_EQ(Fires(kPassCachePteDirty), 1u);
    // ...but the software bit does.
    pte.set_soft_dirty(true);
    EXPECT_EQ(Fires(kPassCachePteDirty), 0u);
}

TEST_F(PassTest, ProtectionEmulationFiresOnWritableCleanPage)
{
    pt::Pte& pte = MakeResident(100, Protection::kReadWrite);
    pte.set_writable_intent(true);  // Writable by intent, still clean.

    // Under a hardware-dirty-bit policy this state is legal...
    context_.dirty = DirtyPolicyKind::kSpur;
    EXPECT_EQ(Fires(kPassProtectionEmulation), 0u);
    // ...under the emulating policies the first write would be missed.
    for (const DirtyPolicyKind kind :
         {DirtyPolicyKind::kFault, DirtyPolicyKind::kFlush,
          DirtyPolicyKind::kSpurProt}) {
        context_.dirty = kind;
        EXPECT_EQ(Fires(kPassProtectionEmulation), 1u)
            << policy::ToString(kind);
    }

    // The emulation contract: clean writable pages are mapped read-only.
    context_.dirty = DirtyPolicyKind::kFault;
    pte.set_protection(Protection::kReadOnly);
    EXPECT_EQ(Fires(kPassProtectionEmulation), 0u);
    // Taking the dirty fault upgrades protection and sets the soft bit.
    pte.set_soft_dirty(true);
    pte.set_protection(Protection::kReadWrite);
    EXPECT_EQ(Fires(kPassProtectionEmulation), 0u);
}

TEST_F(PassTest, ProtectionEmulationFiresOnStaleCachedProtection)
{
    context_.dirty = DirtyPolicyKind::kFlush;
    pt::Pte& pte = MakeResident(100, Protection::kReadOnly);
    pte.set_writable_intent(true);
    CacheBlock(100, pte);
    EXPECT_EQ(Fires(kPassProtectionEmulation), 0u);

    // A cached read-write PR while the PTE still says read-only means a
    // write would hit without faulting — the emulation's blind spot.
    vcache_.Lookup(AddrOf(100)).set_prot(Protection::kReadWrite);
    EXPECT_EQ(Fires(kPassProtectionEmulation), 1u);
}

TEST_F(PassTest, FrameTableFiresOnBoundFrameWithoutValidPte)
{
    const FrameNum frame = frames_.Allocate();
    frames_.Bind(frame, 300);  // Page 300 never got a valid PTE.
    table_.Ensure(300);        // Materialized but invalid.
    EXPECT_GE(Fires(kPassFrameTable), 1u);
}

TEST_F(PassTest, FrameTableFiresOnPfnMismatch)
{
    pt::Pte& pte = MakeResident(100);
    EXPECT_EQ(Fires(kPassFrameTable), 0u);
    pte.set_pfn(pte.pfn() + 1);  // PTE now points at the wrong frame.
    EXPECT_GE(Fires(kPassFrameTable), 1u);
}

TEST_F(PassTest, FrameTableFiresOnOutOfRangePfn)
{
    pt::Pte& pte = table_.Ensure(500);
    pte.set_valid(true);
    pte.set_pfn(4000);  // Far beyond the 32-frame machine.
    EXPECT_EQ(Fires(kPassFrameTable), 1u);
}

TEST_F(PassTest, FrameTableFiresOnDoubleBinding)
{
    MakeResident(100);
    const FrameNum second = frames_.Allocate();
    frames_.Bind(second, 100);  // Two frames now claim page 100.
    EXPECT_GE(Fires(kPassFrameTable), 1u);
}

TEST_F(PassTest, FrameFreeListFiresOnInjectedCorruption)
{
    using Access = mem::FrameTableTestAccess;
    EXPECT_EQ(Fires(kPassFrameFreeList), 0u);

    // Leaked: silently drop a frame from the free list — now neither
    // free nor allocated.
    Access::FreeList(frames_).pop_back();
    EXPECT_EQ(Fires(kPassFrameFreeList), 1u);
}

TEST_F(PassTest, FrameFreeListFiresOnEachCorruptionKind)
{
    using Access = mem::FrameTableTestAccess;

    {
        mem::FrameTable frames(32, 2);
        AuditContext context = context_;
        context.frames = &frames;
        // Free frame marked allocated: "both free and allocated".
        Access::SetAllocated(frames, Access::FreeList(frames).back(), true);
        EXPECT_EQ(InvariantChecker::Default()
                      .RunOne(kPassFrameFreeList, context)
                      .CountFor(kPassFrameFreeList),
                  1u);
    }
    {
        mem::FrameTable frames(32, 2);
        AuditContext context = context_;
        context.frames = &frames;
        // Free frame still bound to a page.
        Access::SetVpn(frames, Access::FreeList(frames).back(), 42);
        EXPECT_EQ(InvariantChecker::Default()
                      .RunOne(kPassFrameFreeList, context)
                      .CountFor(kPassFrameFreeList),
                  1u);
    }
    {
        mem::FrameTable frames(32, 2);
        AuditContext context = context_;
        context.frames = &frames;
        // The same frame listed free twice.
        Access::FreeList(frames).push_back(
            Access::FreeList(frames).front());
        EXPECT_EQ(InvariantChecker::Default()
                      .RunOne(kPassFrameFreeList, context)
                      .CountFor(kPassFrameFreeList),
                  1u);
    }
    {
        mem::FrameTable frames(32, 2);
        AuditContext context = context_;
        context.frames = &frames;
        // An out-of-range frame number on the free list.
        Access::FreeList(frames).push_back(999);
        EXPECT_EQ(InvariantChecker::Default()
                      .RunOne(kPassFrameFreeList, context)
                      .CountFor(kPassFrameFreeList),
                  1u);
    }
}

TEST_F(PassTest, BackingStoreFiresOnCounterMismatch)
{
    // Healthy: event counters and the store's I/O counters move together.
    store_.PageOut(100);
    events_.Add(sim::Event::kPageOutDirty);
    store_.PageIn(100);
    events_.Add(sim::Event::kPageIn);
    EXPECT_EQ(Fires(kPassBackingStore), 0u);

    // A page-in event with no corresponding store read.
    events_.Add(sim::Event::kPageIn);
    EXPECT_EQ(Fires(kPassBackingStore), 1u);

    // Both directions wrong: two violations.
    events_.Add(sim::Event::kPageOutDirty);
    EXPECT_EQ(Fires(kPassBackingStore), 2u);
}

TEST_F(PassTest, RefFlushFiresOnResidentBlockOfClearedPage)
{
    context_.ref = RefPolicyKind::kRef;
    pt::Pte& pte = MakeResident(100);
    CacheBlock(100, pte);
    EXPECT_EQ(Fires(kPassRefFlush), 0u);  // R is set: fine.

    // Clearing R without flushing breaks REF's contract (Section 4): the
    // next reference would hit in the cache and never re-set the bit.
    pte.set_referenced(false);
    EXPECT_EQ(Fires(kPassRefFlush), 1u);

    // MISS and NOREF make no flush promise, so the pass stays silent.
    context_.ref = RefPolicyKind::kMiss;
    EXPECT_EQ(Fires(kPassRefFlush), 0u);
    context_.ref = RefPolicyKind::kNoRef;
    EXPECT_EQ(Fires(kPassRefFlush), 0u);
}

TEST_F(PassTest, MpCoherencyFiresOnOwnershipViolations)
{
    cache::VirtualCache peer(config_);
    context_.caches = {&vcache_, &peer};

    pt::Pte& pte = MakeResident(100, Protection::kReadWrite);

    // Two clean shared copies: legal.
    CacheBlock(100, pte);
    peer.Fill(AddrOf(100), pte.protection(), pte.dirty(), nullptr);
    EXPECT_EQ(Fires(kPassMpCoherency), 0u);

    // An exclusive owner with a peer copy still resident: one violation
    // (the peer copy is clean, so there is one owner but a stale sharer).
    cache::VirtualCache::MarkWritten(vcache_.Lookup(AddrOf(100)));
    pte.set_dirty(true);
    EXPECT_EQ(Fires(kPassMpCoherency), 1u);

    // Both caches claiming ownership: two owners AND exclusive-with-peers.
    cache::VirtualCache::MarkWritten(peer.Lookup(AddrOf(100)));
    EXPECT_GE(Fires(kPassMpCoherency), 2u);
}

TEST_F(PassTest, MpCoherencyFiresOnDirtyBlockWithoutOwner)
{
    // Model invariant M3 (src/model/invariants.h): modified data must
    // sit with an owner, or the bus never writes it back.  The model
    // checker proves the protocol cannot reach this state; the runtime
    // pass guards the same line against implementation bugs.
    cache::VirtualCache peer(config_);
    context_.caches = {&vcache_, &peer};

    pt::Pte& pte = MakeResident(100, Protection::kReadWrite);
    pte.set_dirty(true);
    cache::LineRef line = CacheBlock(100, pte);
    EXPECT_EQ(Fires(kPassMpCoherency), 0u);

    // Corrupt: dirty data in an UnOwned copy.
    line.set_block_dirty(true);
    EXPECT_EQ(Fires(kPassMpCoherency), 1u);
}

TEST_F(PassTest, MpCoherencySkipsUniprocessors)
{
    pt::Pte& pte = MakeResident(100, Protection::kReadWrite);
    pte.set_dirty(true);
    cache::VirtualCache::MarkWritten(CacheBlock(100, pte));
    // A lone cache is trivially coherent — even "exclusive" states.
    EXPECT_EQ(Fires(kPassMpCoherency), 0u);
}

// ---------------------------------------------------------------------------
// Checker and report plumbing.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, DefaultCarriesEveryBuiltinPass)
{
    const std::vector<std::string> names =
        InvariantChecker::Default().PassNames();
    const std::vector<std::string> expected = {
        kPassCacheResident, kPassCachePteDirty, kPassProtectionEmulation,
        kPassFrameTable,    kPassFrameFreeList, kPassBackingStore,
        kPassRefFlush,      kPassMpCoherency,
    };
    EXPECT_EQ(names, expected);
    EXPECT_EQ(InvariantChecker::WithBuiltinPasses().NumPasses(),
              names.size());
}

TEST(InvariantCheckerTest, CustomPassesRunInRegistrationOrder)
{
    InvariantChecker checker;
    checker.Register("first", [](const AuditContext&, AuditReport& report) {
        report.Add(Severity::kWarning, "P", kNoPage, "saw it");
    });
    checker.Register("second",
                     [](const AuditContext&, AuditReport&) {});
    AuditContext context;
    const AuditReport report = checker.Run(context);
    EXPECT_EQ(report.passes(),
              (std::vector<std::string>{"first", "second"}));
    EXPECT_TRUE(report.ok());  // Warnings alone do not fail a report.
    EXPECT_EQ(report.NumWarnings(), 1u);
    EXPECT_EQ(report.CountFor("first"), 1u);
    EXPECT_EQ(report.CountFor("second"), 0u);
}

TEST(AuditReportTest, SummaryNamesInvariantPolicyAndPage)
{
    AuditReport report;
    report.BeginPass("cache-pte-dirty");
    report.Add(Severity::kError, "FAULT/MISS", 123, "P ahead of D");
    const std::string summary = report.Summary();
    EXPECT_NE(summary.find("cache-pte-dirty"), std::string::npos);
    EXPECT_NE(summary.find("FAULT/MISS"), std::string::npos);
    EXPECT_NE(summary.find("0x7b"), std::string::npos);  // Page 123 in hex.
    EXPECT_NE(summary.find("P ahead of D"), std::string::npos);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.NumErrors(), 1u);
}

TEST(AuditReportTest, MergeCombinesPassesAndCounts)
{
    AuditReport a;
    a.BeginPass("one");
    a.Add(Severity::kError, "P", kNoPage, "x");
    AuditReport b;
    b.BeginPass("two");
    b.Add(Severity::kWarning, "P", kNoPage, "y");
    a.Merge(b);
    EXPECT_EQ(a.passes().size(), 2u);
    EXPECT_EQ(a.NumErrors(), 1u);
    EXPECT_EQ(a.NumWarnings(), 1u);
    EXPECT_EQ(a.violations().size(), 2u);
}

// ---------------------------------------------------------------------------
// Cross-policy dominance audits (fabricated matrices).
// ---------------------------------------------------------------------------

core::RunConfig
Cell(DirtyPolicyKind dirty, RefPolicyKind ref, uint64_t seed = 1)
{
    core::RunConfig config;
    config.workload = core::WorkloadId::kSlc;
    config.memory_mb = 6;
    config.dirty = dirty;
    config.ref = ref;
    config.refs = 1000;
    config.seed = seed;
    return config;
}

core::RunResult
Result(uint64_t dirty_faults, uint64_t zfod, uint64_t page_ins)
{
    core::RunResult result;
    result.events.Add(sim::Event::kDirtyFault, dirty_faults);
    result.events.Add(sim::Event::kDirtyFaultZfod, zfod);
    result.page_ins = page_ins;
    return result;
}

TEST(DominanceTest, IntrinsicFaultsExcludeZeroFill)
{
    EXPECT_EQ(IntrinsicDirtyFaults(Result(10, 6, 0)), 4u);
}

TEST(DominanceTest, SilentWhenMinIsALowerBound)
{
    const std::vector<core::RunConfig> configs = {
        Cell(DirtyPolicyKind::kMin, RefPolicyKind::kMiss),
        Cell(DirtyPolicyKind::kSpur, RefPolicyKind::kMiss),
    };
    const std::vector<std::vector<core::RunResult>> results = {
        {Result(5, 0, 100)},
        {Result(7, 0, 100)},
    };
    const AuditReport report = AuditDominance(configs, results);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.violations().empty()) << report.Summary();
}

TEST(DominanceTest, FiresWhenMinExceedsAnAlternative)
{
    const std::vector<core::RunConfig> configs = {
        Cell(DirtyPolicyKind::kMin, RefPolicyKind::kMiss),
        Cell(DirtyPolicyKind::kFault, RefPolicyKind::kMiss),
    };
    const std::vector<std::vector<core::RunResult>> results = {
        {Result(9, 0, 100)},
        {Result(7, 0, 100)},
    };
    const AuditReport report = AuditDominance(configs, results);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.CountFor(kPassMinDominance), 1u);
}

TEST(DominanceTest, ComparesIntrinsicNotRawFaultCounts)
{
    // MIN's raw count is higher, but its zero-fill subset is excluded
    // (Section 3.2's N_zfod), so the comparison still holds.
    const std::vector<core::RunConfig> configs = {
        Cell(DirtyPolicyKind::kMin, RefPolicyKind::kMiss),
        Cell(DirtyPolicyKind::kSpur, RefPolicyKind::kMiss),
    };
    const std::vector<std::vector<core::RunResult>> results = {
        {Result(10, 6, 100)},  // Intrinsic: 4.
        {Result(5, 0, 100)},   // Intrinsic: 5.
    };
    EXPECT_TRUE(AuditDominance(configs, results).ok());
}

TEST(DominanceTest, SkipsCellsWithoutAMatchedPartner)
{
    // Different seeds: not the same cell, so no comparison is made even
    // though the counts would violate dominance.
    const std::vector<core::RunConfig> configs = {
        Cell(DirtyPolicyKind::kMin, RefPolicyKind::kMiss, /*seed=*/1),
        Cell(DirtyPolicyKind::kSpur, RefPolicyKind::kMiss, /*seed=*/2),
    };
    const std::vector<std::vector<core::RunResult>> results = {
        {Result(9, 0, 100)},
        {Result(7, 0, 100)},
    };
    EXPECT_TRUE(AuditDominance(configs, results).violations().empty());
}

TEST(DominanceTest, NorefBelowMissIsAWarningNotAnError)
{
    const std::vector<core::RunConfig> configs = {
        Cell(DirtyPolicyKind::kSpur, RefPolicyKind::kMiss),
        Cell(DirtyPolicyKind::kSpur, RefPolicyKind::kNoRef),
    };
    const std::vector<std::vector<core::RunResult>> results = {
        {Result(0, 0, 200)},
        {Result(0, 0, 150)},  // NOREF paging in *less* than MISS.
    };
    const AuditReport report = AuditDominance(configs, results);
    EXPECT_TRUE(report.ok());  // Warning severity: does not fail.
    EXPECT_EQ(report.NumWarnings(), 1u);
    EXPECT_EQ(report.CountFor(kPassNorefPageIns), 1u);

    // The expected direction is silent.
    const std::vector<std::vector<core::RunResult>> expected = {
        {Result(0, 0, 200)},
        {Result(0, 0, 260)},
    };
    EXPECT_TRUE(AuditDominance(configs, expected).violations().empty());
}

// ---------------------------------------------------------------------------
// Full-system integration: healthy machines audit clean under every
// policy pair, uniprocessor and multiprocessor.
// ---------------------------------------------------------------------------

class SystemAuditTest
    : public testing::TestWithParam<
          std::tuple<DirtyPolicyKind, RefPolicyKind>>
{
};

TEST_P(SystemAuditTest, RandomWorkloadAuditsClean)
{
    const auto [dirty, ref] = GetParam();
    sim::MachineConfig config = sim::MachineConfig::Prototype(5);
    core::SpurSystem system(config, dirty, ref);
    Rng rng(static_cast<uint64_t>(dirty) * 131 +
            static_cast<uint64_t>(ref) * 17 + 5);

    const Pid pid = system.CreateProcess();
    const uint64_t page = config.page_bytes;
    system.MapRegion(pid, kHeapBase, 512 * page, vm::PageKind::kHeap);

    for (int op = 0; op < 30'000; ++op) {
        const ProcessAddr addr =
            kHeapBase + static_cast<ProcessAddr>(
                            rng.NextBelow(512) * page +
                            rng.NextBelow(128) * 32);
        const double kind = rng.NextDouble();
        system.Access(pid, addr,
                      kind < 0.3 ? AccessType::kWrite : AccessType::kRead);
        if (op % 10'000 == 9'999) {
            const AuditReport report = system.Audit();
            ASSERT_TRUE(report.ok()) << report.Summary();
            ASSERT_TRUE(report.violations().empty()) << report.Summary();
        }
    }
    const AuditReport report = system.Audit();
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_TRUE(report.violations().empty()) << report.Summary();
    EXPECT_EQ(report.passes().size(),
              InvariantChecker::Default().NumPasses());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SystemAuditTest,
    testing::Combine(testing::Values(DirtyPolicyKind::kMin,
                                     DirtyPolicyKind::kFault,
                                     DirtyPolicyKind::kFlush,
                                     DirtyPolicyKind::kSpur,
                                     DirtyPolicyKind::kWrite,
                                     DirtyPolicyKind::kSpurProt,
                                     DirtyPolicyKind::kWriteHw),
                     testing::Values(RefPolicyKind::kMiss,
                                     RefPolicyKind::kRef,
                                     RefPolicyKind::kNoRef)),
    [](const testing::TestParamInfo<SystemAuditTest::ParamType>& info) {
        std::string name = policy::ToString(std::get<0>(info.param));
        name += '_';
        name += policy::ToString(std::get<1>(info.param));
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(MpSystemAuditTest, MultiprocessorWorkloadAuditsClean)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::MpSpurSystem system(config, /*num_cpus=*/4,
                              DirtyPolicyKind::kSpur, RefPolicyKind::kMiss);
    Rng rng(97);

    const Pid pid = system.CreateProcess();
    const uint64_t page = config.page_bytes;
    system.MapRegion(pid, kHeapBase, 256 * page, vm::PageKind::kHeap);

    for (int op = 0; op < 40'000; ++op) {
        const auto cpu = static_cast<unsigned>(rng.NextBelow(4));
        const ProcessAddr addr =
            kHeapBase + static_cast<ProcessAddr>(
                            rng.NextBelow(256) * page +
                            rng.NextBelow(128) * 32);
        const double kind = rng.NextDouble();
        system.Access(cpu, MemRef{pid, addr,
                                  kind < 0.3 ? AccessType::kWrite
                                             : AccessType::kRead});
        if (op % 10'000 == 9'999) {
            const AuditReport report = system.Audit();
            ASSERT_TRUE(report.ok()) << report.Summary();
        }
    }
    const AuditReport report = system.Audit();
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_TRUE(report.violations().empty()) << report.Summary();
}

}  // namespace
}  // namespace spur::check

/**
 * @file
 * Cross-policy property tests: invariants that must hold between the
 * dirty-bit alternatives when they process *the same reference stream*
 * (driven by identical synthetic generators across seeds).
 *
 *  - FAULT's excess faults and SPUR's dirty-bit misses are the same
 *    event population (Section 3.1).
 *  - SPUR-PROT is performance-identical to SPUR (Section 3.1's
 *    "the performance of this scheme is identical").
 *  - Every policy observes the same necessary faults, page-ins and
 *    misses (the policy must not perturb the memory system, FLUSH
 *    excepted since flushing is its mechanism).
 *  - WRITE-HW never charges fault cycles.
 *  - MIN's dirty-bit cycles lower-bound every other policy's.
 */
#include <gtest/gtest.h>

#include <memory>

#include "src/core/system.h"
#include "src/workload/process.h"

namespace spur::core {
namespace {

using policy::DirtyPolicyKind;
using policy::RefPolicyKind;

struct RunStats {
    uint64_t n_ds = 0;
    uint64_t n_zfod = 0;
    uint64_t excess = 0;
    uint64_t dirty_miss = 0;
    uint64_t page_ins = 0;
    uint64_t misses = 0;
    Cycles fault_cycles = 0;
    Cycles aux_cycles = 0;
    Cycles flush_cycles = 0;
};

RunStats
RunPolicy(DirtyPolicyKind dirty, uint64_t seed, uint64_t refs = 400'000)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(5);
    SpurSystem system(config, dirty, RefPolicyKind::kMiss);
    workload::ProcessProfile profile;
    profile.code_pages = 48;
    profile.data_pages = 64;
    profile.heap_pages = 700;   // Enough to page at 5 MB.
    profile.heap_ws_pages = 260;
    profile.w_scan_update = 0.4;  // Plenty of stale-copy events.
    workload::SyntheticProcess process(system, profile, seed);
    for (uint64_t i = 0; i < refs; ++i) {
        process.Step();
    }
    RunStats stats;
    const auto& ev = system.events();
    stats.n_ds = ev.Get(sim::Event::kDirtyFault);
    stats.n_zfod = ev.Get(sim::Event::kDirtyFaultZfod);
    stats.excess = ev.Get(sim::Event::kExcessFault);
    stats.dirty_miss = ev.Get(sim::Event::kDirtyBitMiss);
    stats.page_ins = ev.Get(sim::Event::kPageIn);
    stats.misses = ev.TotalMisses();
    stats.fault_cycles = system.timing().Get(sim::TimeBucket::kFault);
    stats.aux_cycles = system.timing().Get(sim::TimeBucket::kDirtyAux);
    stats.flush_cycles = system.timing().Get(sim::TimeBucket::kFlush);
    return stats;
}

class CrossPolicyTest : public testing::TestWithParam<uint64_t>
{
};

TEST_P(CrossPolicyTest, FaultExcessEqualsSpurDirtyMisses)
{
    const RunStats fault = RunPolicy(DirtyPolicyKind::kFault, GetParam());
    const RunStats spur = RunPolicy(DirtyPolicyKind::kSpur, GetParam());
    // Same stream, same stale-copy events, different mechanism.
    EXPECT_EQ(fault.excess, spur.dirty_miss);
    EXPECT_EQ(fault.n_ds, spur.n_ds);
    EXPECT_EQ(fault.n_zfod, spur.n_zfod);
    EXPECT_EQ(fault.page_ins, spur.page_ins);
    EXPECT_EQ(fault.misses, spur.misses);
    EXPECT_EQ(fault.dirty_miss, 0u);
    EXPECT_EQ(spur.excess, 0u);
}

TEST_P(CrossPolicyTest, SpurProtIsIdenticalToSpur)
{
    // The paper: "Since the performance of this scheme is identical to
    // what we implemented in SPUR, we will not discuss it separately."
    const RunStats spur = RunPolicy(DirtyPolicyKind::kSpur, GetParam());
    const RunStats prot = RunPolicy(DirtyPolicyKind::kSpurProt, GetParam());
    EXPECT_EQ(prot.n_ds, spur.n_ds);
    EXPECT_EQ(prot.dirty_miss, spur.dirty_miss);
    EXPECT_EQ(prot.page_ins, spur.page_ins);
    EXPECT_EQ(prot.misses, spur.misses);
    EXPECT_EQ(prot.fault_cycles, spur.fault_cycles);
    EXPECT_EQ(prot.aux_cycles, spur.aux_cycles);
}

TEST_P(CrossPolicyTest, NonFlushingPoliciesAgreeOnMemoryBehaviour)
{
    // MIN / SPUR / WRITE / WRITE-HW never perturb cache contents, so the
    // paging and miss behaviour they observe is identical.
    const RunStats min = RunPolicy(DirtyPolicyKind::kMin, GetParam());
    for (const DirtyPolicyKind kind :
         {DirtyPolicyKind::kSpur, DirtyPolicyKind::kWrite,
          DirtyPolicyKind::kWriteHw}) {
        const RunStats other = RunPolicy(kind, GetParam());
        EXPECT_EQ(other.misses, min.misses) << ToString(kind);
        EXPECT_EQ(other.page_ins, min.page_ins) << ToString(kind);
        EXPECT_EQ(other.n_ds, min.n_ds) << ToString(kind);
    }
}

TEST_P(CrossPolicyTest, WriteHwNeverFaultsForDirtyBits)
{
    const RunStats min = RunPolicy(DirtyPolicyKind::kMin, GetParam());
    const RunStats hw = RunPolicy(DirtyPolicyKind::kWriteHw, GetParam());
    // MIN's fault bucket = page faults + ref faults + N_ds * t_ds;
    // WRITE-HW's lacks the N_ds term entirely.
    const Cycles t_ds = sim::MachineConfig::Prototype(5).t_fault;
    EXPECT_EQ(hw.fault_cycles + min.n_ds * t_ds, min.fault_cycles);
    // But it pays checks on every first block write.
    EXPECT_GT(hw.aux_cycles, 0u);
}

TEST_P(CrossPolicyTest, MinLowerBoundsDirtyCycles)
{
    // MIN's dirty-machinery time (fault + aux + flush attributable to
    // dirty bits) must not exceed any other policy's on the same stream.
    const RunStats min = RunPolicy(DirtyPolicyKind::kMin, GetParam());
    const Cycles min_total =
        min.fault_cycles + min.aux_cycles + min.flush_cycles;
    for (const DirtyPolicyKind kind :
         {DirtyPolicyKind::kFault, DirtyPolicyKind::kFlush,
          DirtyPolicyKind::kSpur, DirtyPolicyKind::kWrite,
          DirtyPolicyKind::kSpurProt}) {
        const RunStats other = RunPolicy(kind, GetParam());
        EXPECT_GE(other.fault_cycles + other.aux_cycles +
                      other.flush_cycles,
                  min_total)
            << ToString(kind);
    }
}

TEST_P(CrossPolicyTest, ZeroFillClassificationIsPolicyIndependent)
{
    const RunStats a = RunPolicy(DirtyPolicyKind::kMin, GetParam());
    const RunStats b = RunPolicy(DirtyPolicyKind::kFault, GetParam());
    const RunStats c = RunPolicy(DirtyPolicyKind::kWriteHw, GetParam());
    EXPECT_EQ(a.n_zfod, b.n_zfod);
    EXPECT_EQ(a.n_zfod, c.n_zfod);
    EXPECT_GT(a.n_zfod, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossPolicyTest,
                         testing::Values(1, 7, 23, 91, 1234),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace spur::core

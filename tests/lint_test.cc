// Tests for the spur_lint determinism checker (src/lint/).
//
// The seeded corpus under tests/lint_fixtures/ holds one file per rule
// with exactly one violation, plus clean files proving the whitelists,
// the suppression comments and comment-stripping work.  A final test
// runs the linter over the real tree — the CI gate in executable form.
//
// NOTE: this file's path is rule-exempt (see RuleExempt in lint.cc), so
// it may spell forbidden tokens when building inline file contents.
#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace {

using spur::lint::FormatViolation;
using spur::lint::Linter;
using spur::lint::NormalizePath;
using spur::lint::RuleInfo;
using spur::lint::Rules;
using spur::lint::Violation;

std::string
FixturePath(const std::string& name)
{
    return std::string(SPUR_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Violation>
LintFixture(const std::string& name)
{
    Linter linter;
    std::string error;
    EXPECT_TRUE(linter.AddFileFromDisk(FixturePath(name), &error)) << error;
    return linter.Run();
}

struct SeededFixture {
    const char* fixture;
    const char* rule;
};

constexpr SeededFixture kSeeded[] = {
    {"rand_violation.cc", "no-rand"},
    {"wallclock_violation.cc", "no-wallclock"},
    {"locale_violation.cc", "no-locale"},
    {"unordered_violation.cc", "no-unordered-output"},
    {"schema_violation.cc", "schema-version-once"},
    {"bench/no_session.cc", "bench-session"},
    {"hot_path_virtual.cc", "no-virtual-in-hot-path"},
    {"raw_meta_violation.cc", "no-raw-meta-bits"},
    // Serve code gets no wall-clock whitelist: its deadline reads are
    // legal only behind a scoped allow (src/serve/proto.cc); without
    // the marker the rule must still fire.
    {"src/serve/deadline_violation.cc", "no-wallclock"},
};

TEST(LintTest, EveryRuleCatchesItsSeededFixture)
{
    for (const SeededFixture& seeded : kSeeded) {
        const std::vector<Violation> violations = LintFixture(seeded.fixture);
        ASSERT_EQ(violations.size(), 1u)
            << seeded.fixture << " should hold exactly one violation";
        EXPECT_EQ(violations[0].rule, seeded.rule) << seeded.fixture;
        EXPECT_GT(violations[0].line, 0u) << seeded.fixture;
        EXPECT_EQ(violations[0].file,
                  NormalizePath(FixturePath(seeded.fixture)));
        EXPECT_FALSE(violations[0].message.empty());
    }
}

TEST(LintTest, SeededCorpusCoversEveryRule)
{
    std::set<std::string> covered;
    for (const SeededFixture& seeded : kSeeded) {
        covered.insert(seeded.rule);
    }
    for (const RuleInfo& rule : Rules()) {
        EXPECT_EQ(covered.count(rule.name), 1u)
            << "rule '" << rule.name << "' has no seeded fixture";
    }
    EXPECT_EQ(covered.size(), Rules().size());
}

TEST(LintTest, CleanFixturesPass)
{
    for (const char* fixture :
         {"clean.cc", "suppressed_ok.cc", "hot_path_ok.cc",
          "src/sweep/telemetry.cc", "src/serve/deadline_ok.cc"}) {
        const std::vector<Violation> violations = LintFixture(fixture);
        for (const Violation& violation : violations) {
            ADD_FAILURE() << fixture << ": " << FormatViolation(violation);
        }
    }
}

TEST(LintTest, WholeCorpusInOneRunStaysSorted)
{
    Linter linter;
    std::string error;
    for (const SeededFixture& seeded : kSeeded) {
        ASSERT_TRUE(
            linter.AddFileFromDisk(FixturePath(seeded.fixture), &error))
            << error;
    }
    const std::vector<Violation> violations = linter.Run();
    EXPECT_EQ(violations.size(), std::size(kSeeded));
    for (size_t i = 1; i < violations.size(); ++i) {
        EXPECT_LE(violations[i - 1].file, violations[i].file);
    }
}

TEST(LintTest, MissingSchemaDefinitionIsATreeLevelFinding)
{
    Linter linter;
    linter.AddFile("src/stats/run_record.h", "struct RunRecord {};\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "schema-version-once");
    EXPECT_EQ(violations[0].line, 0u);
    EXPECT_EQ(violations[0].file, "src/stats/run_record.h");
}

TEST(LintTest, DuplicateSchemaDefinitionInHomeIsFlagged)
{
    Linter linter;
    linter.AddFile("src/stats/run_record.h",
                   "inline constexpr int kSchemaVersion = 1;\n"
                   "inline constexpr int kSchemaVersion = 2;\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "schema-version-once");
    EXPECT_EQ(violations[0].line, 2u);
}

TEST(LintTest, SchemaVersionUseIsNotADefinition)
{
    Linter linter;
    linter.AddFile("src/core/uses.cc",
                   "bool Ok(int v) { return v == kSchemaVersion; }\n"
                   "int Copy() { return stats::kSchemaVersion + 0; }\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, UnorderedContainersAreFineOutsideOutputCode)
{
    // No output-feeding path prefix and no output header include: the
    // container only shapes in-memory state, so iteration order never
    // reaches a result byte.
    Linter linter;
    linter.AddFile("src/core/scratch.cc",
                   "#include <unordered_set>\n"
                   "size_t Count(const std::unordered_set<int>& s)\n"
                   "{ return s.size(); }\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, TokenMatchingRespectsWordBoundaries)
{
    // elapsed_time( must not match the time( token; a member named
    // mt19937_state must still match mt19937 at its boundary.
    Linter linter;
    linter.AddFile("src/core/boundaries.cc",
                   "double elapsed_time(int ticks);\n"
                   "int runtime_clocks(int x);\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, HotPathRuleNeedsTheMarker)
{
    // Without the // spur:hot-path marker the keyword is unrestricted.
    Linter linter;
    linter.AddFile("src/core/unmarked.h",
                   "class Sink {\n"
                   "  public:\n"
                   "    virtual void Emit(int) = 0;\n"
                   "};\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, HotPathRuleIgnoresCommentsAndIdentifiers)
{
    // In a marked file, the keyword inside comments is stripped before
    // the scan, and identifiers containing it have no word boundary.
    Linter linter;
    linter.AddFile("src/core/marked.h",
                   "// spur:hot-path\n"
                   "// the loop is devirtualized; virtual would hurt\n"
                   "class VirtualCacheView { int virtual_index; };\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, HotPathRuleFlagsKeywordInMarkedFile)
{
    Linter linter;
    linter.AddFile("src/core/marked_bad.h",
                   "// spur:hot-path\n"
                   "struct S { virtual ~S() = default; };\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "no-virtual-in-hot-path");
    EXPECT_EQ(violations[0].line, 2u);
}

TEST(LintTest, SuppressionOnSameLineWorks)
{
    Linter linter;
    linter.AddFile("src/core/same_line.cc",
                   "int x = rand();  // spur-lint: allow(no-rand) legacy\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, SuppressionNamesOneRuleOnly)
{
    // An allow(no-rand) comment must not silence a no-wallclock finding
    // on the same line.
    Linter linter;
    linter.AddFile("src/core/wrong_rule.cc",
                   "int x = time(nullptr);  // spur-lint: allow(no-rand)\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "no-wallclock");
}

TEST(LintTest, NormalizePathKeepsRepoRelativeSuffix)
{
    EXPECT_EQ(NormalizePath("/root/repo/src/common/log.cc"),
              "src/common/log.cc");
    EXPECT_EQ(NormalizePath("/abs/build/../tools/spur_lint.cc"),
              "tools/spur_lint.cc");
    EXPECT_EQ(NormalizePath("tests/lint_fixtures/bench/no_session.cc"),
              "bench/no_session.cc");
    EXPECT_EQ(NormalizePath("tests/lint_fixtures/src/sweep/telemetry.cc"),
              "src/sweep/telemetry.cc");
    // No top-level marker: returned unchanged.
    EXPECT_EQ(NormalizePath("README.md"), "README.md");
}

TEST(LintTest, FormatViolationRendersFileLineRule)
{
    EXPECT_EQ(FormatViolation({"src/a.cc", 12, "no-rand", "boom"}),
              "src/a.cc:12: [no-rand] boom");
    EXPECT_EQ(FormatViolation({"src/a.cc", 0, "schema-version-once", "gone"}),
              "src/a.cc: [schema-version-once] gone");
}

TEST(LintTest, AddCompileCommandsPullsFileEntries)
{
    // Build a minimal compile_commands.json pointing at two fixtures.
    const std::string json_path =
        ::testing::TempDir() + "/lint_compile_commands.json";
    {
        std::ofstream out(json_path);
        ASSERT_TRUE(out.is_open());
        out << "[\n"
            << "  {\"directory\": \"/tmp\", \"command\": \"c++ a.cc\",\n"
            << "   \"file\": \"" << FixturePath("rand_violation.cc")
            << "\"},\n"
            << "  {\"directory\": \"/tmp\", \"command\": \"c++ b.cc\",\n"
            << "   \"file\": \"" << FixturePath("clean.cc") << "\"}\n"
            << "]\n";
    }
    Linter linter;
    std::string error;
    ASSERT_TRUE(linter.AddCompileCommands(json_path, &error)) << error;
    EXPECT_EQ(linter.file_count(), 2u);
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "no-rand");
}

TEST(LintTest, AddTreeSkipsFixturesAndDeduplicates)
{
    Linter linter;
    std::string error;
    const std::string tests_dir = std::string(SPUR_SOURCE_ROOT) + "/tests";
    ASSERT_TRUE(linter.AddTree(tests_dir, &error)) << error;
    const size_t after_tree = linter.file_count();
    EXPECT_GT(after_tree, 0u);
    // lint_fixtures is pruned from tree walks.
    for (const Violation& violation : linter.Run()) {
        ADD_FAILURE() << FormatViolation(violation);
    }
    // Adding the same tree again is a no-op (paths dedup on normalize).
    ASSERT_TRUE(linter.AddTree(tests_dir, &error)) << error;
    EXPECT_EQ(linter.file_count(), after_tree);
}

TEST(LintTest, RealTreeIsClean)
{
    // The CI gate, as a unit test: the entire repo must lint clean.
    Linter linter;
    std::string error;
    for (const char* dir :
         {"src", "tools", "bench", "examples", "tests"}) {
        const std::string path =
            std::string(SPUR_SOURCE_ROOT) + "/" + dir;
        ASSERT_TRUE(linter.AddTree(path, &error)) << error;
    }
    EXPECT_GT(linter.file_count(), 100u);
    for (const Violation& violation : linter.Run()) {
        ADD_FAILURE() << FormatViolation(violation);
    }
}

}  // namespace

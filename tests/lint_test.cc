// Tests for the spur_lint determinism checker (src/lint/).
//
// The seeded corpus under tests/lint_fixtures/ holds one file per rule
// with exactly one violation, plus clean files proving the whitelists,
// the suppression comments and comment-stripping work.  A final test
// runs the linter over the real tree — the CI gate in executable form.
//
// NOTE: this file's path is rule-exempt (see RuleExempt in lint.cc), so
// it may spell forbidden tokens when building inline file contents.
#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using spur::lint::AllowSite;
using spur::lint::FormatViolation;
using spur::lint::FormatViolationJson;
using spur::lint::Linter;
using spur::lint::LintReport;
using spur::lint::NormalizePath;
using spur::lint::RuleInfo;
using spur::lint::Rules;
using spur::lint::Violation;

std::string
FixturePath(const std::string& name)
{
    return std::string(SPUR_LINT_FIXTURE_DIR) + "/" + name;
}

std::string
SourceRootPath(const std::string& relative)
{
    return std::string(SPUR_SOURCE_ROOT) + "/" + relative;
}

/// A linter armed with the repo's real layer manifest, so fixture runs
/// exercise the layering pass exactly as CI does.
Linter
MakeLinter()
{
    Linter linter;
    std::string error;
    EXPECT_TRUE(
        linter.LoadLayerManifest(SourceRootPath("LAYERS.toml"), &error))
        << error;
    return linter;
}

std::vector<Violation>
LintFixture(const std::string& name)
{
    Linter linter = MakeLinter();
    std::string error;
    EXPECT_TRUE(linter.AddFileFromDisk(FixturePath(name), &error)) << error;
    return linter.Run();
}

/// Serializes every byte a report carries, so two reports compare as
/// byte-identical exactly when a CLI invocation would print the same.
std::string
RenderReport(const LintReport& report)
{
    std::string out;
    for (const Violation& violation : report.violations) {
        out += FormatViolation(violation) + "\n";
        out += FormatViolationJson(violation) + "\n";
    }
    for (const AllowSite& site : report.allows) {
        out += site.file + ":" + std::to_string(site.line) + " allow(" +
               site.rule + ") " + (site.used ? "live" : "dead") + "\n";
    }
    out += report.subsystem_dot;
    return out;
}

struct SeededFixture {
    const char* fixture;
    const char* rule;
};

constexpr SeededFixture kSeeded[] = {
    {"rand_violation.cc", "no-rand"},
    {"wallclock_violation.cc", "no-wallclock"},
    {"locale_violation.cc", "no-locale"},
    {"unordered_violation.cc", "no-unordered-output"},
    {"schema_violation.cc", "schema-version-once"},
    {"bench/no_session.cc", "bench-session"},
    {"hot_path_virtual.cc", "no-virtual-in-hot-path"},
    {"raw_meta_violation.cc", "no-raw-meta-bits"},
    // Serve code gets no wall-clock whitelist: its deadline reads are
    // legal only behind a scoped allow (src/serve/proto.cc); without
    // the marker the rule must still fire.
    {"src/serve/deadline_violation.cc", "no-wallclock"},
    // The semantic passes: each seeded fixture trips exactly one of
    // the cross-file rules.
    {"src/cache/layer_breach.cc", "layering"},
    {"lock_cycle.cc", "lock-order"},
    {"switch_nonexhaustive.cc", "exhaustive-switch"},
    {"dead_allow.cc", "dead-allow"},
    {"allow_budget.cc", "allow-budget"},
};

TEST(LintTest, EveryRuleCatchesItsSeededFixture)
{
    for (const SeededFixture& seeded : kSeeded) {
        const std::vector<Violation> violations = LintFixture(seeded.fixture);
        ASSERT_EQ(violations.size(), 1u)
            << seeded.fixture << " should hold exactly one violation";
        EXPECT_EQ(violations[0].rule, seeded.rule) << seeded.fixture;
        EXPECT_GT(violations[0].line, 0u) << seeded.fixture;
        EXPECT_EQ(violations[0].file,
                  NormalizePath(FixturePath(seeded.fixture)));
        EXPECT_FALSE(violations[0].message.empty());
    }
}

TEST(LintTest, SeededCorpusCoversEveryRule)
{
    std::set<std::string> covered;
    for (const SeededFixture& seeded : kSeeded) {
        covered.insert(seeded.rule);
    }
    for (const RuleInfo& rule : Rules()) {
        EXPECT_EQ(covered.count(rule.name), 1u)
            << "rule '" << rule.name << "' has no seeded fixture";
    }
    EXPECT_EQ(covered.size(), Rules().size());
}

TEST(LintTest, CleanFixturesPass)
{
    for (const char* fixture :
         {"clean.cc", "suppressed_ok.cc", "hot_path_ok.cc",
          "src/sweep/telemetry.cc", "src/serve/deadline_ok.cc"}) {
        const std::vector<Violation> violations = LintFixture(fixture);
        for (const Violation& violation : violations) {
            ADD_FAILURE() << fixture << ": " << FormatViolation(violation);
        }
    }
}

TEST(LintTest, WholeCorpusInOneRunStaysSorted)
{
    Linter linter = MakeLinter();
    std::string error;
    for (const SeededFixture& seeded : kSeeded) {
        ASSERT_TRUE(
            linter.AddFileFromDisk(FixturePath(seeded.fixture), &error))
            << error;
    }
    const std::vector<Violation> violations = linter.Run();
    EXPECT_EQ(violations.size(), std::size(kSeeded));
    for (size_t i = 1; i < violations.size(); ++i) {
        EXPECT_LE(violations[i - 1].file, violations[i].file);
    }
}

TEST(LintTest, MissingSchemaDefinitionIsATreeLevelFinding)
{
    Linter linter;
    linter.AddFile("src/stats/run_record.h", "struct RunRecord {};\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "schema-version-once");
    EXPECT_EQ(violations[0].line, 0u);
    EXPECT_EQ(violations[0].file, "src/stats/run_record.h");
}

TEST(LintTest, DuplicateSchemaDefinitionInHomeIsFlagged)
{
    Linter linter;
    linter.AddFile("src/stats/run_record.h",
                   "inline constexpr int kSchemaVersion = 1;\n"
                   "inline constexpr int kSchemaVersion = 2;\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "schema-version-once");
    EXPECT_EQ(violations[0].line, 2u);
}

TEST(LintTest, SchemaVersionUseIsNotADefinition)
{
    Linter linter;
    linter.AddFile("src/core/uses.cc",
                   "bool Ok(int v) { return v == kSchemaVersion; }\n"
                   "int Copy() { return stats::kSchemaVersion + 0; }\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, UnorderedContainersAreFineOutsideOutputCode)
{
    // No output-feeding path prefix and no output header include: the
    // container only shapes in-memory state, so iteration order never
    // reaches a result byte.
    Linter linter;
    linter.AddFile("src/core/scratch.cc",
                   "#include <unordered_set>\n"
                   "size_t Count(const std::unordered_set<int>& s)\n"
                   "{ return s.size(); }\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, TokenMatchingRespectsWordBoundaries)
{
    // elapsed_time( must not match the time( token; a member named
    // mt19937_state must still match mt19937 at its boundary.
    Linter linter;
    linter.AddFile("src/core/boundaries.cc",
                   "double elapsed_time(int ticks);\n"
                   "int runtime_clocks(int x);\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, HotPathRuleNeedsTheMarker)
{
    // Without the // spur:hot-path marker the keyword is unrestricted.
    Linter linter;
    linter.AddFile("src/core/unmarked.h",
                   "class Sink {\n"
                   "  public:\n"
                   "    virtual void Emit(int) = 0;\n"
                   "};\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, HotPathRuleIgnoresCommentsAndIdentifiers)
{
    // In a marked file, the keyword inside comments is stripped before
    // the scan, and identifiers containing it have no word boundary.
    Linter linter;
    linter.AddFile("src/core/marked.h",
                   "// spur:hot-path\n"
                   "// the loop is devirtualized; virtual would hurt\n"
                   "class VirtualCacheView { int virtual_index; };\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, HotPathRuleFlagsKeywordInMarkedFile)
{
    Linter linter;
    linter.AddFile("src/core/marked_bad.h",
                   "// spur:hot-path\n"
                   "struct S { virtual ~S() = default; };\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "no-virtual-in-hot-path");
    EXPECT_EQ(violations[0].line, 2u);
}

TEST(LintTest, SuppressionOnSameLineWorks)
{
    Linter linter;
    linter.AddFile("src/core/same_line.cc",
                   "int x = rand();  // spur-lint: allow(no-rand) legacy\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, SuppressionNamesOneRuleOnly)
{
    // An allow(no-rand) comment must not silence a no-wallclock finding
    // on the same line — and because it then suppresses nothing, the
    // hygiene pass flags the marker itself as dead.
    Linter linter;
    linter.AddFile("src/core/wrong_rule.cc",
                   "int x = time(nullptr);  // spur-lint: allow(no-rand)\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 2u);
    EXPECT_EQ(violations[0].rule, "dead-allow");
    EXPECT_EQ(violations[1].rule, "no-wallclock");
}

TEST(LintTest, AllowNamingUnknownRuleIsDead)
{
    // A typoed rule name can never suppress anything; the message must
    // say the rule does not exist rather than just "suppresses nothing".
    Linter linter;
    linter.AddFile("src/core/typo.cc",
                   "int x = 0;  // spur-lint: allow(no-randd)\n");
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "dead-allow");
    EXPECT_NE(violations[0].message.find("does not exist"),
              std::string::npos)
        << violations[0].message;
}

TEST(LintTest, LayeringReportsTheFullIncludeChain)
{
    // The chain fixture's own include is same-subsystem; the breach is
    // transitive through the middle header, and the finding must spell
    // out all three hops, anchored at the first hop in each file.
    Linter linter = MakeLinter();
    std::string error;
    for (const char* name :
         {"src/cache/layer_chain.cc", "src/cache/layer_chain_mid.h"}) {
        ASSERT_TRUE(linter.AddFileFromDisk(FixturePath(name), &error))
            << error;
    }
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 2u);
    EXPECT_EQ(violations[0].file, "src/cache/layer_chain.cc");
    EXPECT_EQ(violations[0].rule, "layering");
    EXPECT_NE(
        violations[0].message.find(
            "src/cache/layer_chain.cc -> src/cache/layer_chain_mid.h"
            " -> src/runner/thread_pool.h"),
        std::string::npos)
        << violations[0].message;
    EXPECT_EQ(violations[1].file, "src/cache/layer_chain_mid.h");
    EXPECT_EQ(violations[1].rule, "layering");
}

TEST(LintTest, LockOrderCycleNamesBothWitnesses)
{
    const std::vector<Violation> violations = LintFixture("lock_cycle.cc");
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "lock-order");
    EXPECT_NE(violations[0].message.find("ForwardOrder"), std::string::npos)
        << violations[0].message;
    EXPECT_NE(violations[0].message.find("ReverseOrder"), std::string::npos)
        << violations[0].message;
}

TEST(LintTest, ConsistentLockOrderIsNotACycle)
{
    // Same two locks, same order in both functions: edges exist but no
    // cycle, so no finding.
    Linter linter;
    linter.AddFile("src/core/ordered.cc",
                   "void A() { MutexLock a(g_x); MutexLock b(g_y); }\n"
                   "void B() { MutexLock a(g_x); MutexLock b(g_y); }\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, SwitchWithDefaultOrFullCoverageIsExempt)
{
    Linter linter;
    linter.AddFile(
        "src/core/switches.cc",
        "enum class Mode { kA, kB };\n"
        "int F(Mode m) { switch (m) { case Mode::kA: return 1;\n"
        "  default: return 0; } }\n"
        "int G(Mode m) { switch (m) { case Mode::kA: return 1;\n"
        "  case Mode::kB: return 2; } return 0; }\n");
    EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTest, NormalizePathKeepsRepoRelativeSuffix)
{
    EXPECT_EQ(NormalizePath("/root/repo/src/common/log.cc"),
              "src/common/log.cc");
    EXPECT_EQ(NormalizePath("/abs/build/../tools/spur_lint.cc"),
              "tools/spur_lint.cc");
    EXPECT_EQ(NormalizePath("tests/lint_fixtures/bench/no_session.cc"),
              "bench/no_session.cc");
    EXPECT_EQ(NormalizePath("tests/lint_fixtures/src/sweep/telemetry.cc"),
              "src/sweep/telemetry.cc");
    // No top-level marker: returned unchanged.
    EXPECT_EQ(NormalizePath("README.md"), "README.md");
}

TEST(LintTest, FormatViolationRendersFileLineRule)
{
    EXPECT_EQ(FormatViolation({"src/a.cc", 12, "no-rand", "boom"}),
              "src/a.cc:12: [no-rand] boom");
    EXPECT_EQ(FormatViolation({"src/a.cc", 0, "schema-version-once", "gone"}),
              "src/a.cc: [schema-version-once] gone");
}

TEST(LintTest, AddCompileCommandsPullsFileEntries)
{
    // Build a minimal compile_commands.json pointing at two fixtures.
    const std::string json_path =
        ::testing::TempDir() + "/lint_compile_commands.json";
    {
        std::ofstream out(json_path);
        ASSERT_TRUE(out.is_open());
        out << "[\n"
            << "  {\"directory\": \"/tmp\", \"command\": \"c++ a.cc\",\n"
            << "   \"file\": \"" << FixturePath("rand_violation.cc")
            << "\"},\n"
            << "  {\"directory\": \"/tmp\", \"command\": \"c++ b.cc\",\n"
            << "   \"file\": \"" << FixturePath("clean.cc") << "\"}\n"
            << "]\n";
    }
    Linter linter;
    std::string error;
    ASSERT_TRUE(linter.AddCompileCommands(json_path, &error)) << error;
    EXPECT_EQ(linter.file_count(), 2u);
    const std::vector<Violation> violations = linter.Run();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "no-rand");
}

TEST(LintTest, AddTreeSkipsFixturesAndDeduplicates)
{
    Linter linter;
    std::string error;
    const std::string tests_dir = std::string(SPUR_SOURCE_ROOT) + "/tests";
    ASSERT_TRUE(linter.AddTree(tests_dir, &error)) << error;
    const size_t after_tree = linter.file_count();
    EXPECT_GT(after_tree, 0u);
    // lint_fixtures is pruned from tree walks.
    for (const Violation& violation : linter.Run()) {
        ADD_FAILURE() << FormatViolation(violation);
    }
    // Adding the same tree again is a no-op (paths dedup on normalize).
    ASSERT_TRUE(linter.AddTree(tests_dir, &error)) << error;
    EXPECT_EQ(linter.file_count(), after_tree);
}

TEST(LintTest, RealTreeIsClean)
{
    // The CI gate, as a unit test: the entire repo must lint clean —
    // including the layering manifest, the lock-order graph, switch
    // exhaustiveness and suppression hygiene.
    Linter linter = MakeLinter();
    std::string error;
    for (const char* dir :
         {"src", "tools", "bench", "examples", "tests"}) {
        ASSERT_TRUE(linter.AddTree(SourceRootPath(dir), &error)) << error;
    }
    EXPECT_GT(linter.file_count(), 100u);
    for (const Violation& violation : linter.Run()) {
        ADD_FAILURE() << FormatViolation(violation);
    }
}

TEST(LintTest, ParallelAnalyzeIsByteIdenticalToSequential)
{
    // The determinism contract applied to the linter itself: the whole
    // tree plus the seeded corpus, scanned at several job counts, must
    // render the identical report down to the last byte.
    Linter linter = MakeLinter();
    std::string error;
    for (const char* dir :
         {"src", "tools", "bench", "examples", "tests"}) {
        ASSERT_TRUE(linter.AddTree(SourceRootPath(dir), &error)) << error;
    }
    for (const SeededFixture& seeded : kSeeded) {
        ASSERT_TRUE(
            linter.AddFileFromDisk(FixturePath(seeded.fixture), &error))
            << error;
    }
    const std::string sequential = RenderReport(linter.Analyze(1));
    ASSERT_FALSE(sequential.empty());
    EXPECT_EQ(sequential, RenderReport(linter.Analyze(4)));
    EXPECT_EQ(sequential, RenderReport(linter.Analyze(0)));
}

TEST(LintTest, FormatViolationJsonEscapesAndOrdersKeys)
{
    EXPECT_EQ(FormatViolationJson(
                  {"src/a.cc", 12, "no-rand", "say \"hi\""}),
              "{\"file\": \"src/a.cc\", \"line\": 12, "
              "\"rule\": \"no-rand\", \"message\": \"say \\\"hi\\\"\"}");
}

TEST(LintTest, SubsystemGraphMatchesGoldenDot)
{
    // The DOT rendering over a fixed fixture set is pinned byte-for-
    // byte so any formatting or ordering drift in `spur_lint graph
    // --dot` shows up as a diff here first.
    Linter linter = MakeLinter();
    std::string error;
    for (const char* name :
         {"src/cache/layer_breach.cc", "src/cache/layer_chain.cc",
          "src/cache/layer_chain_mid.h", "lock_cycle.cc"}) {
        ASSERT_TRUE(linter.AddFileFromDisk(FixturePath(name), &error))
            << error;
    }
    const std::string golden_path =
        SourceRootPath("tests/golden/include_graph.dot");
    std::ifstream in(golden_path);
    ASSERT_TRUE(in.is_open()) << golden_path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(linter.Analyze().subsystem_dot, golden.str());
}

TEST(LintTest, ReportInventoriesAllowSitesWithLiveness)
{
    // `spur_lint allows` renders from report.allows: every marker in
    // the set, sorted, each tagged live or dead.
    Linter linter = MakeLinter();
    std::string error;
    for (const char* name : {"dead_allow.cc", "suppressed_ok.cc"}) {
        ASSERT_TRUE(linter.AddFileFromDisk(FixturePath(name), &error))
            << error;
    }
    const LintReport report = linter.Analyze();
    ASSERT_EQ(report.allows.size(), 2u);
    EXPECT_EQ(report.allows[0].file, "tests/lint_fixtures/dead_allow.cc");
    EXPECT_EQ(report.allows[0].rule, "no-rand");
    EXPECT_FALSE(report.allows[0].used);
    EXPECT_EQ(report.allows[1].file,
              "tests/lint_fixtures/suppressed_ok.cc");
    EXPECT_EQ(report.allows[1].rule, "no-rand");
    EXPECT_TRUE(report.allows[1].used);
}

}  // namespace

/**
 * @file
 * Tests for the segment map (synonym prevention) and the two-level page
 * table with its shift-and-concatenate PTE addressing.
 */
#include <gtest/gtest.h>

#include "src/pt/page_table.h"
#include "src/pt/segment_map.h"

namespace spur::pt {
namespace {

// ---------------------------------------------------------------------------
// SegmentMap
// ---------------------------------------------------------------------------

TEST(SegmentMapTest, ProcessesGetDistinctSegments)
{
    SegmentMap map;
    const Pid a = map.CreateProcess();
    const Pid b = map.CreateProcess();
    EXPECT_NE(a, b);
    for (unsigned reg = 0; reg < kSegmentsPerProcess; ++reg) {
        EXPECT_NE(map.SegmentOf(a, reg), map.SegmentOf(b, reg));
    }
    EXPECT_EQ(map.NumProcesses(), 2u);
}

TEST(SegmentMapTest, ToGlobalUsesTopTwoBits)
{
    SegmentMap map;
    const Pid pid = map.CreateProcess();
    const uint32_t seg0 = map.SegmentOf(pid, 0);
    const uint32_t seg3 = map.SegmentOf(pid, 3);

    const GlobalAddr g0 = map.ToGlobal(pid, 0x00001234);
    EXPECT_EQ(g0 >> kSegmentShift, seg0);
    EXPECT_EQ(g0 & (kSegmentBytes - 1), 0x1234u);

    const GlobalAddr g3 = map.ToGlobal(pid, 0xC0005678);
    EXPECT_EQ(g3 >> kSegmentShift, seg3);
    EXPECT_EQ(g3 & (kSegmentBytes - 1), 0x5678u);
}

TEST(SegmentMapTest, SharingGivesOneGlobalAddress)
{
    // The SPUR synonym-prevention property: two processes sharing memory
    // see the same *global* address for it.
    SegmentMap map;
    const Pid a = map.CreateProcess();
    const Pid b = map.CreateProcess();
    map.ShareSegment(b, 1, a, 1);
    const ProcessAddr addr = 0x40001000;  // Segment register 1.
    EXPECT_EQ(map.ToGlobal(a, addr), map.ToGlobal(b, addr));
    // Other segments stay private.
    EXPECT_NE(map.ToGlobal(a, 0x00001000), map.ToGlobal(b, 0x00001000));
}

TEST(SegmentMapTest, DestroyAndRecreate)
{
    SegmentMap map;
    const Pid a = map.CreateProcess();
    map.DestroyProcess(a);
    EXPECT_EQ(map.NumProcesses(), 0u);
    const Pid b = map.CreateProcess();
    EXPECT_EQ(map.NumProcesses(), 1u);
    // Segments are never recycled: the new process gets fresh ones.
    for (unsigned reg = 0; reg < kSegmentsPerProcess; ++reg) {
        EXPECT_NE(map.SegmentOf(b, reg), map.SegmentOf(a, reg));
    }
}

TEST(SegmentMapDeathTest, RejectsUnknownPid)
{
    SegmentMap map;
    EXPECT_EXIT(map.SegmentOf(5, 0), testing::ExitedWithCode(1),
                "unknown pid");
}

TEST(SegmentMapDeathTest, RejectsBadRegister)
{
    SegmentMap map;
    const Pid pid = map.CreateProcess();
    EXPECT_EXIT(map.SegmentOf(pid, 4), testing::ExitedWithCode(1),
                "register");
}

// ---------------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------------

TEST(PageTableTest, FindBeforeEnsureIsNull)
{
    PageTable table;
    EXPECT_EQ(table.Find(123), nullptr);
    EXPECT_EQ(table.FindMutable(123), nullptr);
    EXPECT_EQ(table.NumTablePages(), 0u);
}

TEST(PageTableTest, EnsureCreatesAndFindSees)
{
    PageTable table;
    Pte& pte = table.Ensure(123);
    pte.set_valid(true);
    pte.set_pfn(77);
    const Pte* found = table.Find(123);
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(found->valid());
    EXPECT_EQ(found->pfn(), 77u);
    EXPECT_EQ(table.NumTablePages(), 1u);
}

TEST(PageTableTest, NeighboursShareATablePage)
{
    PageTable table;
    table.Ensure(0);
    table.Ensure(kPtesPerPage - 1);
    EXPECT_EQ(table.NumTablePages(), 1u);
    table.Ensure(kPtesPerPage);  // First PTE of the next table page.
    EXPECT_EQ(table.NumTablePages(), 2u);
}

TEST(PageTableTest, FindInExistingPageButUntouchedEntry)
{
    PageTable table;
    table.Ensure(10);
    // Entry 11 shares the table page: Find returns it, and it is invalid.
    const Pte* pte = table.Find(11);
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->valid());
}

TEST(PageTableTest, ShiftAndConcatenateAddressing)
{
    // The hardware computes PteVa = PteBase + vpn * 4.
    EXPECT_EQ(PageTable::PteVa(0), kPteBase);
    EXPECT_EQ(PageTable::PteVa(1), kPteBase + 4);
    EXPECT_EQ(PageTable::PteVa(1000), kPteBase + 4000);
    // Inverse.
    EXPECT_EQ(PageTable::VpnOfPteVa(PageTable::PteVa(123456)), 123456u);
    // PTE addresses are recognizable.
    EXPECT_TRUE(PageTable::IsPteAddr(kPteBase));
    EXPECT_FALSE(PageTable::IsPteAddr(0x1000));
}

TEST(PageTableTest, SecondLevelIndexGroupsByTablePage)
{
    EXPECT_EQ(PageTable::SecondLevelIndex(0), 0u);
    EXPECT_EQ(PageTable::SecondLevelIndex(kPtesPerPage - 1), 0u);
    EXPECT_EQ(PageTable::SecondLevelIndex(kPtesPerPage), 1u);
    EXPECT_EQ(PageTable::SecondLevelIndex(5 * kPtesPerPage + 3), 5u);
}

TEST(PageTableTest, PteSegmentIsAboveUserSegments)
{
    // A few thousand processes x 4 segments must never collide with the
    // PTE segment.
    SegmentMap map;
    uint32_t max_segment = 0;
    for (int i = 0; i < 1000; ++i) {
        const Pid pid = map.CreateProcess();
        for (unsigned reg = 0; reg < kSegmentsPerProcess; ++reg) {
            max_segment = std::max(max_segment, map.SegmentOf(pid, reg));
        }
    }
    EXPECT_LT(max_segment, kPteSegment);
}

}  // namespace
}  // namespace spur::pt

/**
 * @file
 * Integration tests for SpurSystem: the full access path through cache,
 * in-cache translation, VM and policies, including the Figure 3.1
 * scenario end-to-end, the FLUSH redo path, counter mirroring, and
 * system-level invariants.
 */
#include <gtest/gtest.h>

#include <memory>

#include "src/core/system.h"
#include "src/sim/counters.h"
#include "src/workload/process.h"

namespace spur::core {
namespace {

using policy::DirtyPolicyKind;
using policy::RefPolicyKind;
using workload::kCodeBase;
using workload::kDataBase;
using workload::kHeapBase;

class SystemTest : public testing::Test
{
  protected:
    void Build(DirtyPolicyKind dirty = DirtyPolicyKind::kSpur,
               RefPolicyKind ref = RefPolicyKind::kMiss)
    {
        system_ = std::make_unique<SpurSystem>(
            sim::MachineConfig::Prototype(8), dirty, ref);
        pid_ = system_->CreateProcess();
        system_->MapRegion(pid_, kHeapBase,
                           64 * system_->config().page_bytes,
                           vm::PageKind::kHeap);
        system_->MapRegion(pid_, kCodeBase,
                           16 * system_->config().page_bytes,
                           vm::PageKind::kCode);
    }

    std::unique_ptr<SpurSystem> system_;
    Pid pid_ = 0;
};

TEST_F(SystemTest, ColdReadMissesThenHits)
{
    Build();
    system_->Access(pid_, kHeapBase, AccessType::kRead);
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kRead), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kReadMiss), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kPageFault), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kZeroFill), 1u);

    system_->Access(pid_, kHeapBase + 4, AccessType::kRead);
    EXPECT_EQ(ev.Get(sim::Event::kReadMiss), 1u);  // Same block: hit.
    EXPECT_EQ(ev.Get(sim::Event::kRead), 2u);
}

TEST_F(SystemTest, IFetchPathCounts)
{
    Build();
    system_->Access(pid_, kCodeBase, AccessType::kIFetch);
    EXPECT_EQ(system_->events().Get(sim::Event::kIFetch), 1u);
    EXPECT_EQ(system_->events().Get(sim::Event::kIFetchMiss), 1u);
    system_->Access(pid_, kCodeBase, AccessType::kIFetch);
    EXPECT_EQ(system_->events().Get(sim::Event::kIFetchMiss), 1u);
}

TEST_F(SystemTest, WriteMissFillCountsAndDirtyFault)
{
    Build();
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kWriteMiss), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kWriteMissFill), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFaultZfod), 1u);  // Fresh zfod page.
    EXPECT_EQ(ev.Get(sim::Event::kWriteHitCleanBlock), 0u);
}

TEST_F(SystemTest, WriteHitOnReadBlockCountsWHit)
{
    Build();
    system_->Access(pid_, kHeapBase, AccessType::kRead);
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kWriteHitCleanBlock), 1u);
    // A second write to the same (now dirty) block does not count again.
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    EXPECT_EQ(ev.Get(sim::Event::kWriteHitCleanBlock), 1u);
}

TEST_F(SystemTest, Figure31EndToEndUnderFaultPolicy)
{
    Build(DirtyPolicyKind::kFault);
    const uint64_t block = system_->config().block_bytes;
    // Two blocks cached while the page is clean (read-only protection).
    system_->Access(pid_, kHeapBase, AccessType::kRead);
    system_->Access(pid_, kHeapBase + block, AccessType::kRead);
    // First write: necessary fault.
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kExcessFault), 0u);
    // Second block still carries stale read-only protection: excess fault.
    system_->Access(pid_, kHeapBase + block, AccessType::kWrite);
    EXPECT_EQ(ev.Get(sim::Event::kExcessFault), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
    // Subsequent writes proceed without faults.
    system_->Access(pid_, kHeapBase + block, AccessType::kWrite);
    EXPECT_EQ(ev.Get(sim::Event::kExcessFault), 1u);
}

TEST_F(SystemTest, Figure31EndToEndUnderSpurPolicy)
{
    Build(DirtyPolicyKind::kSpur);
    const uint64_t block = system_->config().block_bytes;
    system_->Access(pid_, kHeapBase, AccessType::kRead);
    system_->Access(pid_, kHeapBase + block, AccessType::kRead);
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    system_->Access(pid_, kHeapBase + block, AccessType::kWrite);
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kDirtyBitMiss), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kExcessFault), 0u);
}

TEST_F(SystemTest, FlushPolicyRedoesWriteAsMiss)
{
    Build(DirtyPolicyKind::kFlush);
    const uint64_t block = system_->config().block_bytes;
    system_->Access(pid_, kHeapBase, AccessType::kRead);
    system_->Access(pid_, kHeapBase + block, AccessType::kRead);
    // The write hits a stale read-only line; the handler flushes the
    // page; the store re-executes as a miss and refills read-write.
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(ev.Get(sim::Event::kWriteMissFill), 1u);
    // The block is present, dirty, and read-write after the redo.
    const cache::ConstLineRef line =
        system_->vcache().Lookup(system_->ToGlobal(pid_, kHeapBase));
    ASSERT_TRUE(line);
    EXPECT_TRUE(line.block_dirty());
    EXPECT_EQ(line.prot(), Protection::kReadWrite);
    // The other previously cached block was flushed: no excess possible.
    EXPECT_FALSE(system_->vcache().Lookup(
        system_->ToGlobal(pid_, kHeapBase + block)));
    // Writing it refetches with read-write protection and no fault.
    system_->Access(pid_, kHeapBase + block, AccessType::kWrite);
    EXPECT_EQ(ev.Get(sim::Event::kExcessFault), 0u);
    EXPECT_EQ(ev.Get(sim::Event::kDirtyFault), 1u);
}

TEST_F(SystemTest, CacheHitImpliesResidentPage)
{
    // Invariant behind ResidentPte(): any cached line belongs to a
    // resident page, because reclaim flushes.
    Build();
    for (int i = 0; i < 32; ++i) {
        system_->Access(pid_,
                        kHeapBase + i * system_->config().page_bytes,
                        AccessType::kWrite);
    }
    const auto& vcache = system_->vcache();
    const auto& table = system_->page_table();
    for (uint64_t index = 0; index < vcache.NumLines(); ++index) {
        const cache::Line& line = vcache.LineAt(index);
        if (!line.valid()) {
            continue;
        }
        const GlobalAddr addr = vcache.BlockAddrOf(index, line);
        if (pt::PageTable::IsPteAddr(addr)) {
            continue;  // PTE blocks are backed by wired table pages.
        }
        const pt::Pte* pte =
            table.Find(addr >> system_->config().PageShift());
        ASSERT_NE(pte, nullptr);
        EXPECT_TRUE(pte->valid());
    }
}

TEST_F(SystemTest, PerfCountersMirrorGroundTruth)
{
    Build();
    sim::PerfCounters counters;
    counters.SetMode(2);  // Dirty/reference-bit events.
    system_->AttachPerfCounters(&counters);
    for (int i = 0; i < 8; ++i) {
        system_->Access(pid_,
                        kHeapBase + i * system_->config().page_bytes,
                        AccessType::kWrite);
    }
    const int slot = counters.IndexOf(sim::Event::kDirtyFault);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(counters.Read(static_cast<size_t>(slot)),
              system_->events().Get(sim::Event::kDirtyFault));
    EXPECT_EQ(system_->events().Get(sim::Event::kDirtyFault), 8u);
}

TEST_F(SystemTest, SharedSegmentIsOneGlobalAddress)
{
    Build();
    const Pid other = system_->CreateProcess();
    system_->ShareSegment(other, 2, pid_, 2);  // kHeapBase is segment 2.
    EXPECT_EQ(system_->ToGlobal(pid_, kHeapBase),
              system_->ToGlobal(other, kHeapBase));
    // A write by one process hits the same cache line for the other: no
    // synonyms, no coherence problem.
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    const auto misses_before = system_->events().TotalMisses();
    system_->Access(other, kHeapBase, AccessType::kRead);
    EXPECT_EQ(system_->events().TotalMisses(), misses_before);
    system_->DestroyProcess(other);
}

TEST_F(SystemTest, DestroyProcessFreesPages)
{
    Build();
    const uint32_t free_before = system_->memory().frames().NumFree();
    for (int i = 0; i < 16; ++i) {
        system_->Access(pid_,
                        kHeapBase + i * system_->config().page_bytes,
                        AccessType::kWrite);
    }
    EXPECT_EQ(system_->memory().frames().NumFree(), free_before - 16);
    system_->DestroyProcess(pid_);
    EXPECT_EQ(system_->memory().frames().NumFree(), free_before);
}

TEST_F(SystemTest, ContextSwitchAccounting)
{
    Build();
    system_->OnContextSwitch();
    system_->OnContextSwitch();
    EXPECT_EQ(system_->events().Get(sim::Event::kContextSwitch), 2u);
    EXPECT_EQ(system_->timing().Get(sim::TimeBucket::kKernel),
              2 * system_->config().t_context_switch);
}

TEST_F(SystemTest, TimingAccumulatesAcrossPath)
{
    Build();
    system_->Access(pid_, kHeapBase, AccessType::kWrite);
    const auto& timing = system_->timing();
    EXPECT_GT(timing.Get(sim::TimeBucket::kXlate), 0u);
    EXPECT_GT(timing.Get(sim::TimeBucket::kMissStall), 0u);
    EXPECT_GT(timing.Get(sim::TimeBucket::kFault), 0u);
    EXPECT_GT(timing.ElapsedSeconds(), 0.0);
}

TEST_F(SystemTest, RefFaultAfterDaemonClear)
{
    // Exercise the MISS policy's fault-to-set-bit through the system: a
    // page whose R bit is cleared re-faults on its next cache miss.
    Build();
    system_->Access(pid_, kHeapBase, AccessType::kRead);
    EXPECT_EQ(system_->events().Get(sim::Event::kRefFault), 0u);
    // (Daemon clears are exercised by the VM tests and full runs; here we
    // verify no spurious ref faults occur while the bit stays set.)
    for (int i = 0; i < 100; ++i) {
        system_->Access(pid_, kHeapBase + i * 32, AccessType::kRead);
    }
    EXPECT_EQ(system_->events().Get(sim::Event::kRefFault), 0u);
}

TEST_F(SystemTest, MapRegionValidation)
{
    Build();
    EXPECT_EXIT(system_->MapRegion(pid_, kDataBase + 1, 4096,
                                   vm::PageKind::kData),
                testing::ExitedWithCode(1), "aligned");
    EXPECT_EXIT(system_->MapRegion(pid_, kDataBase, 100,
                                   vm::PageKind::kData),
                testing::ExitedWithCode(1), "aligned");
    EXPECT_EXIT(system_->MapRegion(99, kDataBase, 4096,
                                   vm::PageKind::kData),
                testing::ExitedWithCode(1), "unknown pid");
}

TEST_F(SystemTest, InCacheTranslationSharesPteBlocks)
{
    Build();
    // Touch 8 consecutive pages: their PTEs share one cache block, so
    // only the first translation takes a second-level access.
    const auto& ev = system_->events();
    for (int i = 0; i < 8; ++i) {
        system_->Access(pid_,
                        kHeapBase + i * system_->config().page_bytes,
                        AccessType::kRead);
    }
    // At least most translations hit the shared PTE block; occasionally
    // a data fill evicts it (PTEs genuinely compete for cache space).
    EXPECT_GE(ev.Get(sim::Event::kXlatePteHit), 5u);
}

}  // namespace
}  // namespace spur::core

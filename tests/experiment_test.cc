/**
 * @file
 * Tests for the experiment framework (RunOnce / RunMatrix) and the
 * summary statistics: reproducibility, randomized-design bookkeeping,
 * and the scaled-machine configuration.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/stats/summary.h"

namespace spur::core {
namespace {

RunConfig
SmallRun()
{
    RunConfig config;
    config.workload = WorkloadId::kSlc;
    config.memory_mb = 8;
    config.refs = 300'000;
    config.seed = 5;
    return config;
}

TEST(ExperimentTest, RunOnceIsDeterministic)
{
    const RunResult a = RunOnce(SmallRun());
    const RunResult b = RunOnce(SmallRun());
    EXPECT_EQ(a.refs_issued, b.refs_issued);
    EXPECT_EQ(a.page_ins, b.page_ins);
    EXPECT_EQ(a.frequencies.n_ds, b.frequencies.n_ds);
    EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

TEST(ExperimentTest, SeedChangesTheRun)
{
    RunConfig other = SmallRun();
    other.seed = 6;
    const RunResult a = RunOnce(SmallRun());
    const RunResult b = RunOnce(other);
    // Different seed, different stream (counts are extremely unlikely to
    // coincide exactly across all fields).
    EXPECT_NE(a.events.TotalMisses(), b.events.TotalMisses());
}

TEST(ExperimentTest, RunOnceFillsDerivedFields)
{
    const RunResult r = RunOnce(SmallRun());
    EXPECT_EQ(r.refs_issued, 300'000u);
    EXPECT_EQ(r.events.TotalRefs(), 300'000u);
    EXPECT_EQ(r.page_ins, r.events.Get(sim::Event::kPageIn));
    EXPECT_GT(r.elapsed_seconds, 0.0);
    double bucket_total = 0;
    for (double s : r.bucket_seconds) {
        bucket_total += s;
    }
    EXPECT_NEAR(bucket_total, r.elapsed_seconds, 1e-9);
}

TEST(ExperimentTest, PageInLatencyOverride)
{
    RunConfig slow = SmallRun();
    slow.page_in_us = 50'000.0;
    const RunResult fast = RunOnce(SmallRun());
    const RunResult slow_result = RunOnce(slow);
    EXPECT_EQ(fast.page_ins, slow_result.page_ins);  // Same behaviour...
    EXPECT_GT(slow_result.elapsed_seconds,
              fast.elapsed_seconds);  // ...slower clock.
}

TEST(ExperimentTest, RunMatrixGroupsByConfig)
{
    std::vector<RunConfig> configs(2, SmallRun());
    configs[1].ref = policy::RefPolicyKind::kNoRef;
    int progress_calls = 0;
    const auto results = runner::RunMatrix(
        configs, /*reps=*/2, /*shuffle_seed=*/9, /*jobs=*/0,
        [&progress_calls](const runner::Cell&) { ++progress_calls; });
    ASSERT_EQ(results.size(), 2u);
    ASSERT_EQ(results[0].size(), 2u);
    ASSERT_EQ(results[1].size(), 2u);
    EXPECT_EQ(progress_calls, 4);
    for (const auto& group : results) {
        for (const RunResult& r : group) {
            EXPECT_EQ(r.refs_issued, 300'000u);
        }
    }
}

TEST(ExperimentTest, RepetitionsUseDistinctSeeds)
{
    const auto results =
        runner::RunMatrix({SmallRun()}, /*reps=*/2, /*shuffle_seed=*/42);
    EXPECT_NE(results[0][0].events.TotalMisses(),
              results[0][1].events.TotalMisses());
}

TEST(ExperimentTest, RefCompressionFactors)
{
    // Documented derivation: paper elapsed x 1.5 MIPS / simulated refs.
    EXPECT_DOUBLE_EQ(RefCompression(WorkloadId::kWorkload1), 160.0);
    EXPECT_DOUBLE_EQ(RefCompression(WorkloadId::kSlc), 35.0);
    EXPECT_GT(RefCompression(WorkloadId::kDevMachine), 1.0);
}

TEST(ExperimentTest, WorkloadNames)
{
    EXPECT_STREQ(ToString(WorkloadId::kWorkload1), "WORKLOAD1");
    EXPECT_STREQ(ToString(WorkloadId::kSlc), "SLC");
    EXPECT_STREQ(ToString(WorkloadId::kDevMachine), "dev-machine");
}

}  // namespace
}  // namespace spur::core

namespace spur::stats {
namespace {

TEST(SummaryTest, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
    EXPECT_DOUBLE_EQ(s.Ci95(), 0.0);
}

TEST(SummaryTest, MeanAndDeviation)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.Add(v);
    }
    EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
    EXPECT_NEAR(s.StdDev(), 2.138, 0.001);  // Sample (n-1) deviation.
    EXPECT_DOUBLE_EQ(s.Min(), 2.0);
    EXPECT_DOUBLE_EQ(s.Max(), 9.0);
    // 8 samples: 7 degrees of freedom, Student-t critical value 2.365.
    EXPECT_NEAR(s.Ci95(), 2.365 * 2.138 / std::sqrt(8.0), 0.001);
}

TEST(SummaryTest, SingleSampleHasNoSpread)
{
    Summary s;
    s.Add(42.0);
    EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
    EXPECT_DOUBLE_EQ(s.Ci95(), 0.0);
    EXPECT_DOUBLE_EQ(s.Min(), 42.0);
    EXPECT_DOUBLE_EQ(s.Max(), 42.0);
}

TEST(SummaryTest, ValuesPreservedInOrder)
{
    Summary s;
    s.Add(3.0);
    s.Add(1.0);
    s.Add(2.0);
    ASSERT_EQ(s.values().size(), 3u);
    EXPECT_DOUBLE_EQ(s.values()[0], 3.0);
    EXPECT_DOUBLE_EQ(s.values()[1], 1.0);
    EXPECT_DOUBLE_EQ(s.values()[2], 2.0);
}

}  // namespace
}  // namespace spur::stats

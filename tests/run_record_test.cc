/**
 * @file
 * Tests for the machine-readable run records (src/stats/run_record.h):
 * JSON escaping, document shape, file output, and the BenchSession
 * harness that collects records behind the --jobs/--json flags.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/runner/session.h"
#include "src/runner/thread_pool.h"
#include "src/stats/run_record.h"

namespace spur::stats {
namespace {

TEST(JsonWriterTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::Escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(JsonWriter::Escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonWriterTest, RecordRendersFlatObject)
{
    RunRecord record;
    record.bench = "bench_x";
    record.workload = "SLC";
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = 8;
    record.rep = 2;
    record.seed = 1000020;
    record.refs_issued = 300000;
    record.page_ins = 1234;
    record.page_outs = 567;
    record.elapsed_seconds = 12.5;
    record.AddMetric("n_ds", 42.0);
    const std::string json = JsonWriter::ToJson(record);
    EXPECT_NE(json.find("\"bench\": \"bench_x\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"SLC\""), std::string::npos);
    EXPECT_NE(json.find("\"memory_mb\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"rep\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 1000020"), std::string::npos);
    EXPECT_NE(json.find("\"page_ins\": 1234"), std::string::npos);
    EXPECT_NE(json.find("\"elapsed_seconds\": 12.5"), std::string::npos);
    EXPECT_NE(json.find("\"n_ds\": 42"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull)
{
    RunRecord record;
    record.elapsed_seconds = std::numeric_limits<double>::infinity();
    record.AddMetric("bad", std::numeric_limits<double>::quiet_NaN());
    const std::string json = JsonWriter::ToJson(record);
    EXPECT_NE(json.find("\"elapsed_seconds\": null"), std::string::npos);
    EXPECT_NE(json.find("\"bad\": null"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(JsonWriterTest, DocumentWrapsRecordsArray)
{
    const std::string empty = JsonWriter::ToJson("b", {});
    EXPECT_EQ(empty,
              "{\"schema_version\": 1, \"bench\": \"b\", "
              "\"shard\": {\"index\": 0, \"count\": 1, "
              "\"total_cells\": 0, \"ran_cells\": 0}, "
              "\"records\": [\n]}\n");

    std::vector<RunRecord> records(2);
    records[0].bench = "b";
    records[1].bench = "b";
    const std::string two = JsonWriter::ToJson("b", records);
    // Two objects, comma-separated, inside the records array.
    size_t count = 0;
    for (size_t pos = 0;
         (pos = two.find("\"bench\": \"b\"", pos)) != std::string::npos;
         ++pos) {
        ++count;
    }
    EXPECT_EQ(count, 3u);  // Document header + one per record.
}

TEST(JsonWriterTest, WritesFile)
{
    const std::string path = ::testing::TempDir() + "run_record_test.json";
    RunRecord record;
    record.bench = "file_test";
    ASSERT_TRUE(JsonWriter::WriteFile(path, "file_test", {record}));
    FILE* file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char buffer[512] = {};
    const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
    std::fclose(file);
    std::remove(path.c_str());
    const std::string contents(buffer, read);
    EXPECT_NE(contents.find("\"bench\": \"file_test\""),
              std::string::npos);
}

TEST(JsonWriterTest, WriteFileFailsOnBadPath)
{
    EXPECT_FALSE(
        JsonWriter::WriteFile("/nonexistent-dir/x.json", "b", {}));
}

}  // namespace
}  // namespace spur::stats

namespace spur::runner {
namespace {

Args
MakeArgs(std::vector<std::string> words)
{
    static std::vector<std::string> storage;
    storage = std::move(words);
    static std::vector<char*> argv;
    argv.clear();
    for (std::string& word : storage) {
        argv.push_back(word.data());
    }
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchSessionTest, ParsesJobsFlag)
{
    const Args args = MakeArgs({"bench", "--jobs=3"});
    BenchSession session("t", args);
    EXPECT_EQ(session.jobs(), 3u);
    EXPECT_EQ(DefaultJobs(), 3u);
    SetDefaultJobs(0);
}

TEST(BenchSessionTest, DefaultsToHardwareJobs)
{
    const Args args = MakeArgs({"bench"});
    BenchSession session("t", args);
    EXPECT_EQ(session.jobs(), HardwareJobs());
    SetDefaultJobs(0);
}

TEST(BenchSessionTest, MatrixRunsAreRecordedInConfigOrder)
{
    const Args args = MakeArgs({"bench", "--jobs=2"});
    BenchSession session("t", args);
    core::RunConfig config;
    config.workload = core::WorkloadId::kSlc;
    config.refs = 100'000;
    std::vector<core::RunConfig> configs(2, config);
    configs[1].memory_mb = 5;
    session.RunMatrix(configs, /*reps=*/2, /*shuffle_seed=*/7);
    ASSERT_EQ(session.records().size(), 4u);
    EXPECT_EQ(session.records()[0].rep, 0u);
    EXPECT_EQ(session.records()[1].rep, 1u);
    EXPECT_EQ(session.records()[2].memory_mb, 5u);
    EXPECT_EQ(session.records()[0].seed, CellSeed(config.seed, 0));
    EXPECT_EQ(session.records()[1].seed, CellSeed(config.seed, 1));
    EXPECT_EQ(session.records()[0].bench, "t");
    EXPECT_GT(session.records()[0].refs_issued, 0u);
    SetDefaultJobs(0);
}

TEST(BenchSessionTest, FinishWritesJson)
{
    const std::string path = ::testing::TempDir() + "session_test.json";
    const Args args = MakeArgs({"bench", "--json=" + path, "--jobs=1"});
    BenchSession session("session_test", args);
    stats::RunRecord record;
    record.AddMetric("custom", 1.0);
    session.Record(std::move(record));
    EXPECT_EQ(session.Finish(), 0);
    FILE* file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    std::fclose(file);
    std::remove(path.c_str());
    // The bench name was stamped onto the anonymous record.
    EXPECT_EQ(session.records()[0].bench, "session_test");
    SetDefaultJobs(0);
}

}  // namespace
}  // namespace spur::runner

/**
 * @file
 * Differential test for the SoA cache rewrite: an array-of-structs
 * reference model re-implements the pre-rewrite VirtualCache semantics
 * (one `Line` struct per slot, per-block-address page flush walk), and
 * a seeded random workload of ~1M mixed operations is replayed against
 * both.  Every operation's observable result must match, and the full
 * slot-by-slot cache state is compared at checkpoints and at the end.
 *
 * This is the safety net under the hot-path rearchitecture: any drift
 * in the packed-metadata encoding, the Fill/eviction protocol, the
 * flush scans or the HotView fast path shows up here as a first
 * divergence with the op index attached.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/cache/cache.h"
#include "src/common/bits.h"
#include "src/common/random.h"
#include "src/sim/config.h"

namespace spur::cache {
namespace {

/**
 * The pre-SoA cache: an array of Line structs and straight-line field
 * updates.  Mirrors the old VirtualCache public behaviour, including
 * the original page flush that walks block *addresses* (not a slot
 * run), which also covers pages larger than the cache.
 */
class AosReferenceCache
{
  public:
    explicit AosReferenceCache(const sim::MachineConfig& config)
        : block_shift_(config.BlockShift()),
          index_bits_(config.IndexBits()),
          index_mask_(config.NumBlocks() - 1),
          page_shift_(config.PageShift()),
          blocks_per_page_(static_cast<uint32_t>(config.BlocksPerPage())),
          lines_(config.NumBlocks())
    {
    }

    uint64_t IndexOf(GlobalAddr addr) const
    {
        return (addr >> block_shift_) & index_mask_;
    }
    uint64_t TagOf(GlobalAddr addr) const
    {
        return addr >> (block_shift_ + index_bits_);
    }
    GlobalAddr BlockAddrOf(uint64_t index, uint64_t tag) const
    {
        return (tag << (block_shift_ + index_bits_)) |
               (index << block_shift_);
    }

    const Line* Lookup(GlobalAddr addr) const
    {
        const Line& line = lines_[IndexOf(addr)];
        return (line.valid() && line.tag == TagOf(addr)) ? &line : nullptr;
    }

    Line* Lookup(GlobalAddr addr)
    {
        Line& line = lines_[IndexOf(addr)];
        return (line.valid() && line.tag == TagOf(addr)) ? &line : nullptr;
    }

    Line& Fill(GlobalAddr addr, Protection prot, bool page_dirty,
               Eviction* eviction)
    {
        const uint64_t index = IndexOf(addr);
        Line& line = lines_[index];
        if (eviction != nullptr) {
            eviction->happened = line.valid();
            eviction->writeback = line.valid() && line.block_dirty;
            eviction->block_addr =
                line.valid() ? BlockAddrOf(index, line.tag) : 0;
        }
        line.tag = TagOf(addr);
        line.prot = prot;
        line.state = CoherencyState::kUnOwned;
        line.page_dirty = page_dirty;
        line.block_dirty = false;
        return line;
    }

    static void MarkWritten(Line& line)
    {
        line.block_dirty = true;
        line.state = CoherencyState::kOwnedExclusive;
    }

    bool InvalidateBlock(GlobalAddr addr)
    {
        Line* line = Lookup(addr);
        if (line == nullptr) {
            return false;
        }
        const bool writeback = line->block_dirty;
        *line = Line{};
        return writeback;
    }

    template <bool kTagChecked>
    FlushResult FlushPage(GlobalAddr addr)
    {
        FlushResult result;
        const GlobalAddr page_base =
            AlignDown(addr, uint64_t{1} << page_shift_);
        for (uint32_t i = 0; i < blocks_per_page_; ++i) {
            const GlobalAddr block_addr =
                page_base + (static_cast<GlobalAddr>(i) << block_shift_);
            const uint64_t index = IndexOf(block_addr);
            Line& line = lines_[index];
            ++result.slots_examined;
            if (!line.valid()) {
                continue;
            }
            const bool belongs = line.tag == TagOf(block_addr);
            if (kTagChecked && !belongs) {
                continue;
            }
            if (!belongs) {
                ++result.foreign_flushed;
            }
            ++result.blocks_flushed;
            if (line.block_dirty) {
                ++result.writebacks;
            }
            line = Line{};
        }
        return result;
    }

    void Reset() { lines_.assign(lines_.size(), Line{}); }

    uint64_t NumValid() const
    {
        uint64_t count = 0;
        for (const Line& line : lines_) {
            count += line.valid() ? 1 : 0;
        }
        return count;
    }

    const Line& LineAt(uint64_t index) const { return lines_[index]; }
    uint64_t NumLines() const { return lines_.size(); }

  private:
    unsigned block_shift_;
    unsigned index_bits_;
    uint64_t index_mask_;
    unsigned page_shift_;
    uint32_t blocks_per_page_;
    std::vector<Line> lines_;
};

bool
SameLine(const Line& a, const Line& b)
{
    // An invalid slot compares equal regardless of stale tag bits in the
    // reference — except the SoA invariant zeroes both, and the
    // reference model zeroes on invalidate too, so compare exactly.
    return a.tag == b.tag && a.prot == b.prot && a.state == b.state &&
           a.page_dirty == b.page_dirty && a.block_dirty == b.block_dirty;
}

/** Asserts every slot of @p vcache matches @p model. */
void
ExpectSameState(const VirtualCache& vcache, const AosReferenceCache& model,
                uint64_t op_index)
{
    ASSERT_EQ(vcache.NumLines(), model.NumLines());
    for (uint64_t i = 0; i < vcache.NumLines(); ++i) {
        const Line got = vcache.LineAt(i);
        const Line& want = model.LineAt(i);
        ASSERT_TRUE(SameLine(got, want))
            << "slot " << i << " diverged after op " << op_index
            << ": got {tag=" << got.tag
            << " state=" << static_cast<int>(got.state)
            << " prot=" << static_cast<int>(got.prot)
            << " P=" << got.page_dirty << " B=" << got.block_dirty
            << "} want {tag=" << want.tag
            << " state=" << static_cast<int>(want.state)
            << " prot=" << static_cast<int>(want.prot)
            << " P=" << want.page_dirty << " B=" << want.block_dirty << "}";
    }
}

bool
SameFlush(const FlushResult& a, const FlushResult& b)
{
    return a.slots_examined == b.slots_examined &&
           a.blocks_flushed == b.blocks_flushed &&
           a.writebacks == b.writebacks &&
           a.foreign_flushed == b.foreign_flushed;
}

/**
 * Replays @p num_ops random operations against both caches.  Addresses
 * are drawn from a small set of tags crossed with random indices so
 * hits, conflict misses and page overlaps all occur constantly.
 */
void
RunDifferential(const sim::MachineConfig& config, uint64_t num_ops,
                uint64_t seed)
{
    VirtualCache vcache(config);
    AosReferenceCache model(config);
    Rng rng(seed);

    const unsigned block_shift = config.BlockShift();
    const uint64_t num_blocks = config.NumBlocks();
    const uint64_t block_bytes = config.block_bytes;
    const uint64_t page_bytes = config.page_bytes;
    // Few distinct tags over the full index range: dense conflicts.
    const uint64_t tag_choices = 6;
    const uint64_t tag_shift =
        block_shift + static_cast<unsigned>(config.IndexBits());

    const auto random_addr = [&]() -> GlobalAddr {
        const uint64_t tag = rng.NextBelow(tag_choices);
        const uint64_t index = rng.NextBelow(num_blocks);
        const uint64_t offset = rng.NextBelow(block_bytes);
        return (tag << tag_shift) | (index << block_shift) | offset;
    };

    const uint64_t checkpoint_every = num_ops / 64 + 1;
    for (uint64_t op = 0; op < num_ops; ++op) {
        const GlobalAddr addr = random_addr();
        const uint64_t dice = rng.NextBelow(100);
        if (dice < 55) {
            // Lookup, optionally marking the hit written — the
            // read/write hit path.  Odd ops route the write through
            // MarkWrittenIf (the branchless batch-loop flavour) and
            // also cross-check the HotView fast path against Lookup.
            LineRef line = vcache.Lookup(addr);
            Line* ref = model.Lookup(addr);
            ASSERT_EQ(static_cast<bool>(line), ref != nullptr)
                << "hit/miss divergence at op " << op;
            const VirtualCache::HotView hv = vcache.hot_view();
            LineRef hv_line =
                hv.Lookup(vcache.IndexOf(addr), vcache.TagOf(addr));
            ASSERT_EQ(static_cast<bool>(hv_line), ref != nullptr)
                << "HotView divergence at op " << op;
            const bool is_write = rng.Chance(0.4);
            if (line) {
                ASSERT_EQ(line.tag(), ref->tag);
                ASSERT_EQ(line.block_dirty(), ref->block_dirty);
                if ((op & 1) != 0) {
                    hv_line.MarkWrittenIf(is_write);
                    if (is_write) {
                        AosReferenceCache::MarkWritten(*ref);
                    }
                } else if (is_write) {
                    VirtualCache::MarkWritten(line);
                    AosReferenceCache::MarkWritten(*ref);
                }
            }
        } else if (dice < 85) {
            // Fill: the miss path.  Random PTE-derived state.
            const Protection prot = static_cast<Protection>(
                1 + rng.NextBelow(2));  // kReadOnly or kReadWrite
            const bool page_dirty = rng.Chance(0.3);
            Eviction got_ev;
            Eviction want_ev;
            LineRef got = vcache.Fill(addr, prot, page_dirty, &got_ev);
            Line& want = model.Fill(addr, prot, page_dirty, &want_ev);
            ASSERT_EQ(got_ev.happened, want_ev.happened) << "op " << op;
            ASSERT_EQ(got_ev.writeback, want_ev.writeback) << "op " << op;
            ASSERT_EQ(got_ev.block_addr, want_ev.block_addr) << "op " << op;
            ASSERT_TRUE(SameLine(got.Get(), want)) << "op " << op;
        } else if (dice < 92) {
            ASSERT_EQ(vcache.InvalidateBlock(addr),
                      model.InvalidateBlock(addr))
                << "op " << op;
        } else if (dice < 96) {
            const FlushResult got = vcache.FlushPageChecked(addr);
            const FlushResult want = model.FlushPage<true>(addr);
            ASSERT_TRUE(SameFlush(got, want)) << "checked flush, op " << op;
        } else if (dice < 99) {
            const FlushResult got = vcache.FlushPageIndexed(addr);
            const FlushResult want = model.FlushPage<false>(addr);
            ASSERT_TRUE(SameFlush(got, want)) << "indexed flush, op " << op;
        } else {
            // Rare: page-aligned flush of a *page base* address, plus a
            // NumValid cross-check (cheap at this frequency).
            const GlobalAddr page =
                AlignDown(addr, page_bytes);
            const FlushResult got = vcache.FlushPageChecked(page);
            const FlushResult want = model.FlushPage<true>(page);
            ASSERT_TRUE(SameFlush(got, want)) << "aligned flush, op " << op;
            ASSERT_EQ(vcache.NumValid(), model.NumValid()) << "op " << op;
        }
        if (op % checkpoint_every == 0) {
            ExpectSameState(vcache, model, op);
            if (::testing::Test::HasFatalFailure()) {
                return;
            }
        }
    }
    ExpectSameState(vcache, model, num_ops);
    vcache.Reset();
    model.Reset();
    ExpectSameState(vcache, model, num_ops + 1);
    EXPECT_EQ(vcache.NumValid(), 0u);
}

TEST(CacheSoaDiffTest, PrototypeGeometryMillionOps)
{
    // The paper's prototype: 128 KB cache, 32 B blocks, 4 KB pages.
    RunDifferential(sim::MachineConfig::Prototype(8), 1'000'000,
                    /*seed=*/0xD1FFu);
}

TEST(CacheSoaDiffTest, SmallCacheHighConflict)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    config.cache_bytes = 8 * 1024;
    config.block_bytes = 16;
    RunDifferential(config, 200'000, /*seed=*/0xBEEFu);
}

TEST(CacheSoaDiffTest, PageLargerThanCacheAliasedFlush)
{
    // blocks_per_page > num_blocks forces the aliasing flush walk where
    // a page's blocks wrap around the whole cache.
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    config.cache_bytes = 2 * 1024;
    config.block_bytes = 32;
    config.page_bytes = 4 * 1024;
    RunDifferential(config, 200'000, /*seed=*/0xCAFEu);
}

}  // namespace
}  // namespace spur::cache

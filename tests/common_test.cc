/**
 * @file
 * Tests for the common utilities: bit helpers, the deterministic RNG,
 * table rendering and argument parsing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/common/bits.h"
#include "src/common/random.h"
#include "src/common/table.h"

namespace spur {
namespace {

// ---------------------------------------------------------------------------
// bits.h
// ---------------------------------------------------------------------------

TEST(BitsTest, IsPowerOfTwo)
{
    EXPECT_FALSE(IsPowerOfTwo(0));
    EXPECT_TRUE(IsPowerOfTwo(1));
    EXPECT_TRUE(IsPowerOfTwo(2));
    EXPECT_FALSE(IsPowerOfTwo(3));
    EXPECT_TRUE(IsPowerOfTwo(4096));
    EXPECT_FALSE(IsPowerOfTwo(4097));
    EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
}

TEST(BitsTest, FloorLog2)
{
    EXPECT_EQ(FloorLog2(1), 0u);
    EXPECT_EQ(FloorLog2(2), 1u);
    EXPECT_EQ(FloorLog2(3), 1u);
    EXPECT_EQ(FloorLog2(32), 5u);
    EXPECT_EQ(FloorLog2(4096), 12u);
    EXPECT_EQ(FloorLog2((uint64_t{1} << 40) + 5), 40u);
}

TEST(BitsTest, ExtractBits)
{
    EXPECT_EQ(ExtractBits(0xFF00, 8, 8), 0xFFu);
    EXPECT_EQ(ExtractBits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(ExtractBits(~uint64_t{0}, 0, 64), ~uint64_t{0});
    EXPECT_EQ(ExtractBits(0b1010, 1, 2), 0b01u);
}

// Shift counts at or beyond the 64-bit boundary are UB on a bare shift;
// ExtractBits must give them defined results instead.  These run under
// UBSan in the asan preset, so a regression aborts the test.
TEST(BitsTest, ExtractBitsEdgeCasesAreDefined)
{
    // lo at or past the top bit: the field reads as zero.
    EXPECT_EQ(ExtractBits(~uint64_t{0}, 64, 8), 0u);
    EXPECT_EQ(ExtractBits(~uint64_t{0}, 200, 64), 0u);
    // lo + width past the top: clamps to the bits that exist.
    EXPECT_EQ(ExtractBits(~uint64_t{0}, 60, 64), 0xFu);
    EXPECT_EQ(ExtractBits(uint64_t{1} << 63, 63, 8), 1u);
    // Zero-width field is empty.
    EXPECT_EQ(ExtractBits(~uint64_t{0}, 0, 0), 0u);
    EXPECT_EQ(ExtractBits(~uint64_t{0}, 63, 0), 0u);
    // Everything above is also constant-foldable (no UB in constexpr).
    static_assert(ExtractBits(~uint64_t{0}, 64, 8) == 0);
    static_assert(ExtractBits(~uint64_t{0}, 60, 64) == 0xF);
}

TEST(BitsTest, AlignUpDown)
{
    EXPECT_EQ(AlignUp(0, 32), 0u);
    EXPECT_EQ(AlignUp(1, 32), 32u);
    EXPECT_EQ(AlignUp(32, 32), 32u);
    EXPECT_EQ(AlignUp(33, 32), 64u);
    EXPECT_EQ(AlignDown(33, 32), 32u);
    EXPECT_EQ(AlignDown(4095, 4096), 0u);
    EXPECT_EQ(AlignDown(4096, 4096), 4096u);
}

TEST(BitsTest, AlignAtTopOfAddressSpace)
{
    // The largest representable multiple of the alignment round-trips
    // exactly; align == 1 is the identity everywhere.
    const uint64_t top = ~uint64_t{0} - 4095;  // 2^64 - 4096
    EXPECT_EQ(AlignUp(top, 4096), top);
    EXPECT_EQ(AlignUp(top - 1, 4096), top);
    EXPECT_EQ(AlignDown(~uint64_t{0}, 4096), top);
    EXPECT_EQ(AlignUp(~uint64_t{0}, 1), ~uint64_t{0});
    EXPECT_EQ(AlignDown(~uint64_t{0}, 1), ~uint64_t{0});
    EXPECT_EQ(AlignDown(~uint64_t{0}, uint64_t{1} << 63), uint64_t{1} << 63);
}

// ---------------------------------------------------------------------------
// random.h
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.Next(), b.Next());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += (a.Next() == b.Next()) ? 1 : 0;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.NextBelow(bound), bound);
        }
    }
}

TEST(RngTest, NextBelowCoversRange)
{
    Rng rng(9);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i) {
        ++seen[rng.NextBelow(10)];
    }
    for (int count : seen) {
        // Uniform expectation 1000; allow generous slack.
        EXPECT_GT(count, 700);
        EXPECT_LT(count, 1300);
    }
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double value = rng.NextDouble();
        ASSERT_GE(value, 0.0);
        ASSERT_LT(value, 1.0);
        sum += value;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.Chance(0.0));
        EXPECT_TRUE(rng.Chance(1.0));
        EXPECT_FALSE(rng.Chance(-1.0));
        EXPECT_TRUE(rng.Chance(2.0));
    }
}

TEST(RngTest, ChanceProbabilityApproximate)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
        hits += rng.Chance(0.25) ? 1 : 0;
    }
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ZipfBiasesTowardZero)
{
    Rng rng(13);
    uint64_t low = 0;
    uint64_t high = 0;
    const uint64_t n = 100;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t idx = rng.NextZipf(n, 0.9);
        ASSERT_LT(idx, n);
        if (idx < n / 10) {
            ++low;
        }
        if (idx >= n - n / 10) {
            ++high;
        }
    }
    EXPECT_GT(low, high * 5);
}

TEST(RngTest, ZipfDegenerateCases)
{
    Rng rng(17);
    EXPECT_EQ(rng.NextZipf(0, 0.8), 0u);
    EXPECT_EQ(rng.NextZipf(1, 0.8), 0u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_LT(rng.NextZipf(5, 0.99), 5u);  // Near-1 skew is clamped.
    }
}

// ---------------------------------------------------------------------------
// table.h
// ---------------------------------------------------------------------------

std::string
Render(Table& table, bool csv = false)
{
    std::FILE* f = std::tmpfile();
    if (csv) {
        table.PrintCsv(f);
    } else {
        table.Print(f);
    }
    std::fseek(f, 0, SEEK_SET);
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        out.append(buf, n);
    }
    std::fclose(f);
    return out;
}

TEST(TableTest, RendersHeaderAndRows)
{
    Table t("Title");
    t.SetHeader({"a", "bb"});
    t.AddRow({"1", "2"});
    t.AddRow({"333", "4"});
    const std::string out = Render(t);
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, PadsShortRows)
{
    Table t("");
    t.SetHeader({"a", "b", "c"});
    t.AddRow({"only"});
    const std::string out = Render(t);
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCells)
{
    Table t("T");
    t.SetHeader({"x"});
    t.AddRow({"has,comma"});
    t.AddRow({"has\"quote"});
    const std::string out = Render(t, /*csv=*/true);
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
    EXPECT_NE(out.find("# T"), std::string::npos);
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(Table::Num(uint64_t{12345}), "12345");
    EXPECT_EQ(Table::Num(1.5, 2), "1.50");
    EXPECT_EQ(Table::Rel(1.034), "(1.03)");
    EXPECT_EQ(Table::Pct(0.18), "18%");
    EXPECT_EQ(Table::Pct(0.1849, 1), "18.5%");
}

// ---------------------------------------------------------------------------
// args.h
// ---------------------------------------------------------------------------

Args
MakeArgs(std::vector<const char*> argv)
{
    argv.insert(argv.begin(), "prog");
    return Args(static_cast<int>(argv.size()),
                const_cast<char**>(argv.data()));
}

TEST(ArgsTest, ParsesEqualsForm)
{
    const Args args = MakeArgs({"--reps=5", "--name=x"});
    EXPECT_EQ(args.GetInt("reps", 0), 5);
    EXPECT_EQ(args.GetString("name"), "x");
}

TEST(ArgsTest, ParsesSpaceForm)
{
    const Args args = MakeArgs({"--reps", "7"});
    EXPECT_EQ(args.GetInt("reps", 0), 7);
}

TEST(ArgsTest, BareFlagAndDefaults)
{
    const Args args = MakeArgs({"--csv"});
    EXPECT_TRUE(args.Has("csv"));
    EXPECT_FALSE(args.Has("missing"));
    EXPECT_EQ(args.GetInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(args.GetDouble("missing", 2.5), 2.5);
}

TEST(ArgsTest, Positional)
{
    const Args args = MakeArgs({"pos1", "--flag", "pos2"});
    // "pos2" follows a bare flag, so it is consumed as its value.
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.GetString("flag"), "pos2");
}

TEST(ArgsTest, DoubleValues)
{
    const Args args = MakeArgs({"--x=1.25"});
    EXPECT_DOUBLE_EQ(args.GetDouble("x", 0), 1.25);
}

// ---------------------------------------------------------------------------
// FormatToolUsage — the one renderer behind every tool's --help.
// ---------------------------------------------------------------------------

TEST(ToolUsageTest, RendersSynopsesOverviewAndAlignedFlags)
{
    const std::vector<ToolCommand> commands = {
        {"go [--fast] TARGET",
         "run the thing",
         {{"--fast", "skip checks"}, {"--dry-run=N", "pretend N times"}}},
        {"stop",
         "halt the thing",
         {{"--now", "no grace period"}}},
    };
    const std::string text =
        FormatToolUsage("demo", "A demo tool.", commands);

    // The usage block lists every synopsis, continuation-aligned.
    EXPECT_EQ(text.rfind("usage: demo go [--fast] TARGET\n", 0), 0u);
    EXPECT_NE(text.find("\n       demo stop\n"), std::string::npos);
    EXPECT_NE(text.find("\nA demo tool.\n"), std::string::npos);
    // Each command section carries its summary...
    EXPECT_NE(text.find("\n  run the thing\n"), std::string::npos);
    EXPECT_NE(text.find("\n  halt the thing\n"), std::string::npos);
    // ...and flag docs align on one column across the whole tool: the
    // widest flag is "--dry-run=N" (11 chars), so every doc starts at
    // 4 (indent) + 11 + 2 = column 17.
    EXPECT_NE(text.find("    --fast       skip checks\n"),
              std::string::npos);
    EXPECT_NE(text.find("    --dry-run=N  pretend N times\n"),
              std::string::npos);
    EXPECT_NE(text.find("    --now        no grace period\n"),
              std::string::npos);
}

TEST(ToolUsageTest, FlaglessCommandRendersWithoutFlagBlock)
{
    const std::vector<ToolCommand> commands = {
        {"version", "print the version", {}},
    };
    const std::string text = FormatToolUsage("demo", "", commands);
    EXPECT_EQ(text,
              "usage: demo version\n"
              "\n"
              "demo version\n"
              "  print the version\n");
}

}  // namespace
}  // namespace spur

/**
 * @file
 * Tests for the snooping bus: the Berkeley Ownership state machine
 * across caches — supply-on-read, ownership transfer, invalidation on
 * write, and the upgrade path.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache/bus.h"
#include "src/cache/cache.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::cache {
namespace {

class BusTest : public testing::Test
{
  protected:
    BusTest() : config_(sim::MachineConfig::Prototype(8)), bus_(events_)
    {
        for (int i = 0; i < 3; ++i) {
            caches_.push_back(std::make_unique<VirtualCache>(config_));
            bus_.Attach(caches_.back().get());
        }
    }

    /** Puts @p addr into cache @p port with @p state. */
    LineRef Install(unsigned port, GlobalAddr addr, CoherencyState state)
    {
        LineRef line = caches_[port]->Fill(addr, Protection::kReadWrite,
                                           false, nullptr);
        line.set_state(state);
        line.set_block_dirty(state == CoherencyState::kOwnedExclusive ||
                             state == CoherencyState::kOwnedShared);
        return line;
    }

    sim::MachineConfig config_;
    sim::EventCounts events_;
    std::vector<std::unique_ptr<VirtualCache>> caches_;
    SnoopBus bus_;
};

TEST_F(BusTest, ReadWithNoPeersComesFromMemory)
{
    const BusResult result = bus_.Read(0x1000, 0);
    EXPECT_FALSE(result.supplied_by_cache);
    EXPECT_EQ(result.invalidations, 0u);
    EXPECT_EQ(events_.Get(sim::Event::kBusRead), 1u);
}

TEST_F(BusTest, ReadIsSuppliedByOwnerWhoDropsToOwnedShared)
{
    Install(1, 0x1000, CoherencyState::kOwnedExclusive);
    const BusResult result = bus_.Read(0x1000, 0);
    EXPECT_TRUE(result.supplied_by_cache);
    EXPECT_EQ(result.invalidations, 0u);
    EXPECT_EQ(caches_[1]->Lookup(0x1000).state(),
              CoherencyState::kOwnedShared);
    EXPECT_EQ(events_.Get(sim::Event::kBusCacheToCache), 1u);
}

TEST_F(BusTest, ReadLeavesUnOwnedPeersAlone)
{
    Install(1, 0x1000, CoherencyState::kUnOwned);
    const BusResult result = bus_.Read(0x1000, 0);
    EXPECT_FALSE(result.supplied_by_cache);  // Memory supplies.
    EXPECT_EQ(caches_[1]->Lookup(0x1000).state(),
              CoherencyState::kUnOwned);
}

TEST_F(BusTest, ReadOwnedInvalidatesEveryCopy)
{
    Install(1, 0x1000, CoherencyState::kOwnedShared);
    Install(2, 0x1000, CoherencyState::kUnOwned);
    const BusResult result = bus_.ReadOwned(0x1000, 0);
    EXPECT_TRUE(result.supplied_by_cache);
    EXPECT_EQ(result.invalidations, 2u);
    EXPECT_FALSE(caches_[1]->Lookup(0x1000));
    EXPECT_FALSE(caches_[2]->Lookup(0x1000));
    EXPECT_EQ(events_.Get(sim::Event::kBusInvalidation), 2u);
}

TEST_F(BusTest, UpgradeInvalidatesSharersWithoutData)
{
    Install(1, 0x1000, CoherencyState::kUnOwned);
    Install(2, 0x1000, CoherencyState::kUnOwned);
    const BusResult result = bus_.Upgrade(0x1000, 0);
    EXPECT_FALSE(result.supplied_by_cache);
    EXPECT_EQ(result.invalidations, 2u);
    EXPECT_EQ(events_.Get(sim::Event::kBusUpgrade), 1u);
}

TEST_F(BusTest, UpgradeTransfersOwnershipFromDirtyPeer)
{
    // Requester holds UnOwned; a peer owns the dirty block: the upgrade
    // must pull the data across and invalidate the owner.
    Install(0, 0x1000, CoherencyState::kUnOwned);
    Install(1, 0x1000, CoherencyState::kOwnedShared);
    const BusResult result = bus_.Upgrade(0x1000, 0);
    EXPECT_TRUE(result.supplied_by_cache);
    EXPECT_EQ(result.invalidations, 1u);
    EXPECT_FALSE(caches_[1]->Lookup(0x1000));
}

TEST_F(BusTest, EvictionOfOwnedSharedLeavesPeersAndFallsBackToMemory)
{
    // Spec rule `evict` (src/model/spec.cc): displacing the owner
    // writes the dirty block back and leaves UnOwned peers untouched —
    // ownership is not handed over, so the next read is a memory
    // supply (rule `read-miss` with no owner on the bus).
    Install(1, 0x1000, CoherencyState::kOwnedShared);
    Install(2, 0x1000, CoherencyState::kUnOwned);

    // A conflicting fill one cache-size above displaces cache 1's copy.
    Eviction eviction;
    caches_[1]->Fill(0x1000 + config_.cache_bytes, Protection::kReadWrite,
                     false, &eviction);
    EXPECT_TRUE(eviction.happened);
    EXPECT_TRUE(eviction.writeback);  // The owner's copy was dirty.
    EXPECT_FALSE(caches_[1]->Lookup(0x1000));
    EXPECT_EQ(caches_[2]->Lookup(0x1000).state(),
              CoherencyState::kUnOwned);

    const BusResult result = bus_.Read(0x1000, 0);
    EXPECT_FALSE(result.supplied_by_cache);  // Memory, not cache 2.
    EXPECT_EQ(result.invalidations, 0u);
    EXPECT_EQ(caches_[2]->Lookup(0x1000).state(),
              CoherencyState::kUnOwned);
}

TEST_F(BusTest, WriteHitOnUnOwnedSharedCopyUpgradesAndInvalidatesPeers)
{
    // Spec rules `write-hit-fast`/`write-hit-refresh` (src/model/
    // spec.cc): a write hit on a non-exclusive copy issues Upgrade,
    // every peer copy dies, and MarkWritten leaves the writer
    // OwnedExclusive with B set.
    LineRef writer = caches_[0]->Fill(0x1000, Protection::kReadWrite,
                                      true, nullptr);
    Install(1, 0x1000, CoherencyState::kUnOwned);
    Install(2, 0x1000, CoherencyState::kUnOwned);
    ASSERT_EQ(writer.state(), CoherencyState::kUnOwned);

    const BusResult result = bus_.Upgrade(0x1000, 0);
    VirtualCache::MarkWritten(writer);

    EXPECT_EQ(result.invalidations, 2u);
    EXPECT_FALSE(caches_[1]->Lookup(0x1000));
    EXPECT_FALSE(caches_[2]->Lookup(0x1000));
    EXPECT_EQ(writer.state(), CoherencyState::kOwnedExclusive);
    EXPECT_TRUE(writer.block_dirty());
}

TEST_F(BusTest, TransactionsIgnoreOtherAddresses)
{
    Install(1, 0x2000, CoherencyState::kOwnedExclusive);
    const BusResult result = bus_.ReadOwned(0x1000, 0);
    EXPECT_EQ(result.invalidations, 0u);
    EXPECT_TRUE(caches_[1]->Lookup(0x2000));
}

TEST_F(BusTest, RequesterIsNeverSnooped)
{
    Install(0, 0x1000, CoherencyState::kOwnedExclusive);
    const BusResult result = bus_.Read(0x1000, 0);
    EXPECT_FALSE(result.supplied_by_cache);
    EXPECT_TRUE(caches_[0]->Lookup(0x1000));
}

TEST_F(BusTest, PortNumbering)
{
    EXPECT_EQ(bus_.NumPorts(), 3u);
    EXPECT_EQ(&bus_.CacheAt(1), caches_[1].get());
}

}  // namespace
}  // namespace spur::cache

/**
 * @file
 * The scenario library (DESIGN.md §19): per-scenario determinism (same
 * seed, same trace bytes), plausibility bounds tying each scenario to
 * the VAC behaviour it was built to stress, and a RealTreeIsClean-style
 * registration check that every scenario is wired into run_all.sh and
 * the bench matrix.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/run_trace.h"
#include "src/core/system.h"
#include "src/workload/trace.h"
#include "src/workload/workloads.h"

namespace spur {
namespace {

constexpr uint64_t kRefs = 2'000'000;
constexpr uint64_t kSeed = 9;

core::RunConfig
ConfigFor(core::WorkloadId id)
{
    core::RunConfig config;
    config.workload = id;
    config.refs = kRefs;
    config.seed = kSeed;
    return config;
}

/** Records @p id's op stream through the counts-only host. */
std::string
RecordStream(core::WorkloadId id)
{
    const core::RunConfig config = ConfigFor(id);
    const workload::TraceStreamMeta meta = core::TraceMetaFor(config);
    workload::WorkloadSpec spec = core::SpecFor(config);
    const uint32_t slice_refs = spec.slice_refs;
    workload::CountingHost host(sim::MachineConfig::Prototype(8));
    workload::TraceEncoder encoder(meta);
    workload::RecordingHost recorder(host, encoder);
    workload::Driver driver(recorder, std::move(spec), kRefs, kSeed,
                            slice_refs);
    driver.Run();
    recorder.StopRecording();
    return encoder.Finish(driver.refs_issued());
}

/** A live SPUR run of @p id; returns the system's counters by value. */
struct LiveRun {
    sim::EventCounts events;
    uint64_t spawns = 0;
};

LiveRun
RunLive(core::WorkloadId id)
{
    const core::RunConfig config = ConfigFor(id);
    workload::WorkloadSpec spec = core::SpecFor(config);
    const uint32_t slice_refs = spec.slice_refs;
    core::SpurSystem system(sim::MachineConfig::Prototype(8),
                            policy::DirtyPolicyKind::kSpur,
                            policy::RefPolicyKind::kMiss);
    workload::Driver driver(system, std::move(spec), kRefs, kSeed,
                            slice_refs);
    driver.Run();
    return LiveRun{system.events(), driver.NumSpawns()};
}

TEST(ScenarioLibraryTest, EveryScenarioRecordsDeterministically)
{
    // Same seed, same bytes — the property --record-trace leans on.
    for (const core::WorkloadId id : core::kScenarioLibrary) {
        const std::string first = RecordStream(id);
        const std::string second = RecordStream(id);
        EXPECT_EQ(first, second) << core::ToString(id);

        // And the digest inside the E frame names the stream uniquely
        // per scenario (different scripts, different bytes).
        EXPECT_NE(first.find("\"digest\""), std::string::npos);
    }
}

TEST(ScenarioLibraryTest, ScenarioStreamsDifferAcrossScenarios)
{
    std::set<std::string> bytes;
    for (const core::WorkloadId id : core::kScenarioLibrary) {
        EXPECT_TRUE(bytes.insert(RecordStream(id)).second)
            << core::ToString(id) << " duplicates another scenario";
    }
}

TEST(ScenarioLibraryTest, CtxSwitchScenarioIsContextSwitchDominated)
{
    const LiveRun base = RunLive(core::WorkloadId::kWorkload1);
    const LiveRun ctx = RunLive(core::WorkloadId::kCtxSwitch);
    const uint64_t base_switches =
        base.events.Get(sim::Event::kContextSwitch);
    const uint64_t ctx_switches =
        ctx.events.Get(sim::Event::kContextSwitch);
    // The short quantum (WorkloadSpec::slice_refs) must put the switch
    // rate far above the paper's WORKLOAD1 at the same budget.
    EXPECT_GT(ctx_switches, 5 * base_switches);
}

TEST(ScenarioLibraryTest, FlushStormScenarioFlushesPagesInBursts)
{
    const LiveRun base = RunLive(core::WorkloadId::kWorkload1);
    const LiveRun storm = RunLive(core::WorkloadId::kFlushStorm);
    // Short-lived dirty writers exiting means page teardown — whole-
    // page flush operations — far beyond the steady CAD-developer load.
    EXPECT_GT(storm.events.Get(sim::Event::kPageFlush),
              3 * base.events.Get(sim::Event::kPageFlush));
}

TEST(ScenarioLibraryTest, ServerChurnScenarioChurnsAddressSpaces)
{
    const LiveRun base = RunLive(core::WorkloadId::kWorkload1);
    const LiveRun churn = RunLive(core::WorkloadId::kServerChurn);
    // Handler respawn is the steady state: more spawns than WORKLOAD1
    // and at least one full respawn wave past the initial job list.
    EXPECT_GT(churn.spawns, base.spawns);
    EXPECT_GE(churn.spawns, 16u);
    // Teardown of those address spaces shows up as page flushes too.
    EXPECT_GT(churn.events.Get(sim::Event::kPageFlush),
              3 * base.events.Get(sim::Event::kPageFlush));
}

TEST(ScenarioLibraryTest, GcSweepScenarioWalksAPagingScaleHeap)
{
    const LiveRun base = RunLive(core::WorkloadId::kWorkload1);
    const LiveRun gc = RunLive(core::WorkloadId::kGcSweep);
    // The heap exceeds memory: the linear sweep pages, and its write-
    // back of survivors pages out dirty — which WORKLOAD1 never does
    // at this budget.
    EXPECT_GT(gc.events.Get(sim::Event::kPageIn),
              2 * base.events.Get(sim::Event::kPageIn));
    EXPECT_GT(gc.events.Get(sim::Event::kPageOutDirty), 0u);
    // And the allocation front keeps producing zero-fill pages.
    EXPECT_GT(gc.events.Get(sim::Event::kZeroFill),
              base.events.Get(sim::Event::kZeroFill));
}

TEST(ScenarioLibraryTest, GcSweepTouchesALargeWorkingSet)
{
    // Count distinct (pid, page) pairs through a tracking host: the
    // GC image alone maps ~1700 heap pages and the sweep visits them.
    class PageTrackingHost : public workload::WorkloadHost
    {
      public:
        explicit PageTrackingHost(const sim::MachineConfig& config)
            : config_(config)
        {
        }
        Pid CreateProcess() override { return next_pid_++; }
        void DestroyProcess(Pid) override {}
        void MapRegion(Pid, ProcessAddr, uint64_t, vm::PageKind) override
        {
        }
        void ShareSegment(Pid, unsigned, Pid, unsigned) override {}
        void Access(const MemRef& ref) override
        {
            if (pages_
                    .insert((static_cast<uint64_t>(ref.pid) << 32) |
                            (ref.addr / config_.page_bytes))
                    .second) {
                ++per_pid_[ref.pid];
            }
        }
        void OnContextSwitch() override {}
        const sim::MachineConfig& config() const override
        {
            return config_;
        }
        /** Distinct pages of the single widest process. */
        size_t widest_working_set() const
        {
            size_t widest = 0;
            for (const auto& [pid, pages] : per_pid_) {
                widest = std::max(widest, pages);
            }
            return widest;
        }

      private:
        sim::MachineConfig config_;
        Pid next_pid_ = 1;
        std::set<uint64_t> pages_;
        std::map<Pid, size_t> per_pid_;
    };

    const auto distinct = [](core::WorkloadId id) {
        const core::RunConfig config = ConfigFor(id);
        workload::WorkloadSpec spec = core::SpecFor(config);
        const uint32_t slice_refs = spec.slice_refs;
        PageTrackingHost host(sim::MachineConfig::Prototype(8));
        workload::Driver driver(host, std::move(spec), kRefs, kSeed,
                                slice_refs);
        driver.Run();
        return host.widest_working_set();
    };
    const size_t gc_pages = distinct(core::WorkloadId::kGcSweep);
    const size_t ctx_pages = distinct(core::WorkloadId::kCtxSwitch);
    // The 8 MB machine holds 2048 frames; the GC image's working set
    // must be paging-scale (well past half of memory) while the
    // interactive mix is built from small processes.
    EXPECT_GT(gc_pages, size_t{1200});
    EXPECT_GT(gc_pages, 4 * ctx_pages);
}

// ---- Registration (RealTreeIsClean-style) -----------------------------

std::string
ReadSource(const std::string& relative)
{
    const std::string path =
        std::string(SPUR_SOURCE_ROOT) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(ScenarioLibraryTest, EveryScenarioIsRegisteredEverywhere)
{
    const std::string run_all = ReadSource("bench/run_all.sh");
    const std::vector<std::string> benches = {
        "bench/ablation_policy_variants.cc",
        "bench/table_3_4_dirty_overhead.cc",
        "bench/table_3_5_pageout.cc",
    };
    // run_all.sh names every scenario and passes --scenarios through.
    for (const core::WorkloadId id : core::kScenarioLibrary) {
        EXPECT_NE(run_all.find(core::ToString(id)), std::string::npos)
            << "bench/run_all.sh does not mention "
            << core::ToString(id);
    }
    EXPECT_NE(run_all.find("--scenarios"), std::string::npos);

    // Each scenario bench iterates the library (not a hand list that
    // could silently miss a new scenario) and takes the flag.
    for (const std::string& bench : benches) {
        const std::string source = ReadSource(bench);
        EXPECT_NE(source.find("kScenarioLibrary"), std::string::npos)
            << bench << " does not iterate core::kScenarioLibrary";
        EXPECT_NE(source.find("scenarios"), std::string::npos) << bench;
        EXPECT_NE(run_all.find(bench.substr(std::string("bench/").size(),
                                            bench.size() - 9)),
                  std::string::npos)
            << bench << " missing from run_all.sh SCENARIO_BENCHES";
    }
}

}  // namespace
}  // namespace spur

/**
 * @file
 * Tests for the key=value machine-configuration loader.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/sim/config_file.h"

namespace spur::sim {
namespace {

TEST(ConfigFileTest, EmptyStringKeepsDefaults)
{
    const MachineConfig config = LoadConfigString("");
    EXPECT_EQ(config.cache_bytes, 128u * 1024);
    EXPECT_EQ(config.t_fault, 1000u);
}

TEST(ConfigFileTest, OverridesAndComments)
{
    const MachineConfig config = LoadConfigString(
        "# a variant machine\n"
        "cache_bytes = 262144   # 256 KB\n"
        "memory_mb = 16\n"
        "\n"
        "t_fault = 800\n"
        "page_in_us = 42000\n");
    EXPECT_EQ(config.cache_bytes, 256u * 1024);
    EXPECT_EQ(config.memory_bytes, 16ull * 1024 * 1024);
    EXPECT_EQ(config.t_fault, 800u);
    EXPECT_DOUBLE_EQ(config.page_in_us, 42000.0);
    // Untouched fields keep defaults.
    EXPECT_EQ(config.block_bytes, 32u);
}

TEST(ConfigFileTest, BaseConfigIsRespected)
{
    MachineConfig base = MachineConfig::Prototype(5);
    const MachineConfig config = LoadConfigString("t_fault = 500\n", base);
    EXPECT_EQ(config.memory_bytes, 5ull * 1024 * 1024);
    EXPECT_EQ(config.t_fault, 500u);
}

TEST(ConfigFileTest, AllDocumentedKeysParse)
{
    const MachineConfig config = LoadConfigString(
        "cache_bytes=131072\nblock_bytes=32\npage_bytes=4096\n"
        "memory_bytes=8388608\ncpu_cycle_ns=150\nbus_cycle_ns=125\n"
        "mem_first_word_cycles=3\nmem_next_word_cycles=1\nword_bytes=4\n"
        "t_fault=1000\nt_flush_page=500\nt_dirty_miss=25\n"
        "t_dirty_check=5\nt_cache_hit=1\nt_xlate_hit=3\n"
        "page_in_us=800\nt_pagefault_sw=3000\nt_pageout_sw=1500\n"
        "t_zero_fill=1024\nt_daemon_page=10\nt_ref_clear=20\n"
        "t_context_switch=500\ndaemon_low_frac=0.04\n"
        "daemon_high_frac=0.08\nwired_frames=96\n");
    EXPECT_EQ(config.NumBlocks(), 4096u);
}

TEST(ConfigFileDeathTest, UnknownKeyIsFatal)
{
    EXPECT_EXIT(LoadConfigString("cache_bites = 1\n"),
                testing::ExitedWithCode(1), "unknown key");
}

TEST(ConfigFileDeathTest, MalformedLineIsFatal)
{
    EXPECT_EXIT(LoadConfigString("cache_bytes 131072\n"),
                testing::ExitedWithCode(1), "expected 'key = value'");
}

TEST(ConfigFileDeathTest, BadNumberIsFatal)
{
    EXPECT_EXIT(LoadConfigString("t_fault = lots\n"),
                testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(LoadConfigString("t_fault = 12peanuts\n"),
                testing::ExitedWithCode(1), "trailing characters");
}

TEST(ConfigFileDeathTest, InvalidResultIsFatal)
{
    // Overrides that individually parse but produce an invalid machine
    // must still be rejected by validation.
    EXPECT_EXIT(LoadConfigString("block_bytes = 24\n"),
                testing::ExitedWithCode(1), "power of");
}

TEST(ConfigFileTest, LoadsFromDisk)
{
    const std::string path = testing::TempDir() + "/machine.conf";
    {
        std::ofstream out(path);
        out << "memory_mb = 12\nt_dirty_miss = 30\n";
    }
    const MachineConfig config = LoadConfigFile(path);
    EXPECT_EQ(config.memory_bytes, 12ull * 1024 * 1024);
    EXPECT_EQ(config.t_dirty_miss, 30u);
    std::remove(path.c_str());
}

TEST(ConfigFileDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(LoadConfigFile("/nonexistent/machine.conf"),
                testing::ExitedWithCode(1), "cannot open");
}

}  // namespace
}  // namespace spur::sim

/**
 * @file
 * The --record-trace / --replay-trace contract, end to end through
 * runner::BenchSession: for every scenario × dirty policy, a session
 * that records while running live, a session that replays the recorded
 * library, and the plain live session all produce byte-identical
 * --json documents — at --jobs=1 and --jobs=4.  This is the acceptance
 * gate of DESIGN.md §19: one workload generation feeds every cell of a
 * policy matrix, and parallelism never leaks into the bytes.
 */
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/runner/session.h"

namespace spur {
namespace {

/** A per-test unique directory (mkdtemp), removed on destruction. */
class ScopedTempDir
{
  public:
    ScopedTempDir()
    {
        std::string templ = testing::TempDir();
        if (templ.empty() || templ.back() != '/') {
            templ += '/';
        }
        templ += "spur_replay_diff_XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        const char* made = mkdtemp(buf.data());
        EXPECT_NE(made, nullptr) << templ;
        dir_ = (made != nullptr) ? made : testing::TempDir();
    }

    ~ScopedTempDir()
    {
        for (const std::string& path : files_) {
            std::remove(path.c_str());
        }
        rmdir(dir_.c_str());
    }

    std::string Path(const std::string& name)
    {
        files_.push_back(dir_ + "/" + name);
        return files_.back();
    }

  private:
    std::string dir_;
    std::vector<std::string> files_;
};

std::string
ReadFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string bytes;
    if (f != nullptr) {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
            bytes.append(buf, n);
        }
        std::fclose(f);
    }
    return bytes;
}

/** The scenario × dirty-policy matrix every session here runs. */
std::vector<core::RunConfig>
MatrixConfigs()
{
    const policy::DirtyPolicyKind kinds[] = {
        policy::DirtyPolicyKind::kFault, policy::DirtyPolicyKind::kFlush,
        policy::DirtyPolicyKind::kSpur, policy::DirtyPolicyKind::kWrite,
        policy::DirtyPolicyKind::kMin};
    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload : core::kScenarioLibrary) {
        for (const policy::DirtyPolicyKind dirty : kinds) {
            core::RunConfig config;
            config.workload = workload;
            config.dirty = dirty;
            config.memory_mb = 8;
            config.refs = 120'000;
            config.seed = 33;
            configs.push_back(config);
        }
    }
    return configs;
}

/**
 * Runs the matrix through one BenchSession built from @p flags plus a
 * --json path, returning the document bytes.  All sessions share the
 * bench name, so the documents are comparable byte for byte.
 */
std::string
RunSession(ScopedTempDir& tmp, const std::string& tag,
           std::vector<std::string> flags,
           std::vector<core::RunResult>* results = nullptr)
{
    const std::string json_path = tmp.Path(tag + ".json");
    flags.push_back("--json=" + json_path);
    std::vector<char*> argv;
    std::string argv0 = "trace_replay_diff";
    argv.push_back(argv0.data());
    for (std::string& flag : flags) {
        argv.push_back(flag.data());
    }
    const Args args(static_cast<int>(argv.size()), argv.data());
    runner::BenchSession session("trace_replay_diff", args);
    std::vector<core::RunResult> run = session.RunAll(MatrixConfigs());
    EXPECT_EQ(session.Finish(), 0) << tag;
    if (results != nullptr) {
        *results = std::move(run);
    }
    return ReadFile(json_path);
}

TEST(TraceReplayDiffTest, ReplayedMatrixIsByteIdenticalAtAnyJobs)
{
    ScopedTempDir tmp;
    const std::string trace_path = tmp.Path("scenarios.trc");

    // Plain live run: the reference bytes.
    std::vector<core::RunResult> live_results;
    const std::string live =
        RunSession(tmp, "live", {"--jobs=1"}, &live_results);
    ASSERT_FALSE(live.empty());

    // Recording must not perturb the run it records.
    const std::string recorded = RunSession(
        tmp, "record", {"--jobs=1", "--record-trace=" + trace_path});
    EXPECT_EQ(recorded, live);

    // Replaying the library reproduces the live bytes — with the
    // generator out of the loop entirely — at one worker and at four.
    std::vector<core::RunResult> replay_results;
    const std::string replay_j1 =
        RunSession(tmp, "replay_j1",
                   {"--jobs=1", "--replay-trace=" + trace_path},
                   &replay_results);
    EXPECT_EQ(replay_j1, live);
    const std::string replay_j4 = RunSession(
        tmp, "replay_j4", {"--jobs=4", "--replay-trace=" + trace_path});
    EXPECT_EQ(replay_j4, live);

    // The in-memory results agree too, not just the serialized ones.
    ASSERT_EQ(replay_results.size(), live_results.size());
    for (size_t i = 0; i < live_results.size(); ++i) {
        EXPECT_EQ(replay_results[i].events.TotalMisses(),
                  live_results[i].events.TotalMisses())
            << i;
        EXPECT_EQ(replay_results[i].events.Get(sim::Event::kDirtyFault),
                  live_results[i].events.Get(sim::Event::kDirtyFault))
            << i;
        EXPECT_EQ(replay_results[i].refs_issued,
                  live_results[i].refs_issued)
            << i;
        EXPECT_EQ(replay_results[i].elapsed_seconds,
                  live_results[i].elapsed_seconds)
            << i;
    }
}

TEST(TraceReplayDiffTest, RecordingAtFourJobsMatchesOneJob)
{
    // The claim-once protocol: whichever cell wins the race to record a
    // stream, the committed bytes are the same, so a --jobs=4 recording
    // replays to the same --json as a --jobs=1 recording.
    ScopedTempDir tmp;
    const std::string trace_j1 = tmp.Path("j1.trc");
    const std::string trace_j4 = tmp.Path("j4.trc");
    const std::string live_j1 = RunSession(
        tmp, "record_j1", {"--jobs=1", "--record-trace=" + trace_j1});
    const std::string live_j4 = RunSession(
        tmp, "record_j4", {"--jobs=4", "--record-trace=" + trace_j4});
    EXPECT_EQ(live_j4, live_j1);

    const std::string replay_a = RunSession(
        tmp, "replay_a", {"--jobs=4", "--replay-trace=" + trace_j1});
    const std::string replay_b = RunSession(
        tmp, "replay_b", {"--jobs=1", "--replay-trace=" + trace_j4});
    EXPECT_EQ(replay_a, live_j1);
    EXPECT_EQ(replay_b, live_j1);
}

}  // namespace
}  // namespace spur

/**
 * @file
 * Tests for the SPUR-TRACE/1 substrate (src/workload/trace.h): format
 * round-trip through the file writer and library, host-independent
 * recording (pid normalization), truncation-vs-corruption recovery,
 * golden byte fixtures, and the determinism property that replaying a
 * recorded stream reproduces the recording system's cache statistics.
 *
 * Every test gets its own mkdtemp directory: testing::TempDir() alone
 * is shared across parallel ctest invocations of this binary, and the
 * old fixed file names collided.
 */
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/core/system.h"
#include "src/workload/trace.h"
#include "src/workload/workloads.h"

namespace spur::workload {
namespace {

/** A per-test unique directory (mkdtemp), removed on destruction. */
class ScopedTempDir
{
  public:
    ScopedTempDir()
    {
        std::string templ = testing::TempDir();
        if (templ.empty() || templ.back() != '/') {
            templ += '/';
        }
        templ += "spur_trace_XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        const char* made = mkdtemp(buf.data());
        EXPECT_NE(made, nullptr) << templ;
        dir_ = (made != nullptr) ? made : testing::TempDir();
    }

    ~ScopedTempDir()
    {
        for (const std::string& path : files_) {
            std::remove(path.c_str());
        }
        rmdir(dir_.c_str());
    }

    /** A path inside the directory, removed with it. */
    std::string Path(const std::string& name)
    {
        files_.push_back(dir_ + "/" + name);
        return files_.back();
    }

  private:
    std::string dir_;
    std::vector<std::string> files_;
};

std::string
ReadFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string bytes;
    if (f != nullptr) {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
            bytes.append(buf, n);
        }
        std::fclose(f);
    }
    return bytes;
}

void
WriteFile(const std::string& path, const std::string& bytes)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

TraceStreamMeta
MetaFor(const std::string& workload, uint64_t seed, uint64_t refs)
{
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    TraceStreamMeta meta;
    meta.workload = workload;
    meta.seed = seed;
    meta.refs = refs;
    meta.page_bytes = config.page_bytes;
    meta.block_bytes = config.block_bytes;
    return meta;
}

struct Recorded {
    std::string framed;
    uint64_t refs_issued = 0;
    uint64_t ops = 0;
    uint64_t accesses = 0;
};

/** Records @p spec against @p host per the RunOnce recording recipe. */
Recorded
Record(const TraceStreamMeta& meta, WorkloadSpec spec, WorkloadHost& host)
{
    TraceEncoder encoder(meta);
    RecordingHost recorder(host, encoder);
    const uint32_t slice_refs = spec.slice_refs;
    Driver driver(recorder, std::move(spec), meta.refs, meta.seed,
                  slice_refs);
    driver.Run();
    recorder.StopRecording();
    Recorded r;
    r.refs_issued = driver.refs_issued();
    r.ops = encoder.ops();
    r.accesses = encoder.accesses();
    r.framed = encoder.Finish(r.refs_issued);
    return r;
}

TEST(TraceTest, RoundTripsThroughFileAndLibrary)
{
    ScopedTempDir tmp;
    const std::string path = tmp.Path("roundtrip.trc");
    const TraceStreamMeta meta = MetaFor("ctx-switch", 7, 120'000);
    CountingHost counting(sim::MachineConfig::Prototype(8));
    const Recorded rec = Record(meta, MakeCtxSwitchHeavy(), counting);

    TraceFileWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, &error)) << error;
    ASSERT_TRUE(writer.AppendStream(rec.framed, &error)) << error;
    EXPECT_EQ(writer.streams(), 1u);
    ASSERT_TRUE(writer.Finish(&error)) << error;

    TraceLibrary library;
    ASSERT_TRUE(library.Load(path, &error)) << error;
    ASSERT_EQ(library.streams().size(), 1u);
    const TraceStream* stream = library.Find(meta.Identity());
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->meta.Identity(), meta.Identity());
    EXPECT_EQ(stream->op_count, rec.ops);
    EXPECT_EQ(stream->accesses, rec.accesses);
    EXPECT_EQ(stream->refs_issued, rec.refs_issued);
    EXPECT_EQ(stream->framed, rec.framed);

    // Replay into a fresh counts-only host: same call counts.
    CountingHost replayed(sim::MachineConfig::Prototype(8));
    const ReplayStats stats = ReplayStream(*stream, replayed);
    EXPECT_EQ(stats.refs_issued, rec.refs_issued);
    EXPECT_EQ(stats.accesses, rec.accesses);
    EXPECT_EQ(replayed.accesses(), counting.accesses());
    EXPECT_EQ(replayed.context_switches(), counting.context_switches());
}

TEST(TraceTest, RecordingIsDeterministic)
{
    const TraceStreamMeta meta = MetaFor("flush-storm", 11, 100'000);
    CountingHost a(sim::MachineConfig::Prototype(8));
    CountingHost b(sim::MachineConfig::Prototype(8));
    const Recorded first = Record(meta, MakeFlushStorm(), a);
    const Recorded second = Record(meta, MakeFlushStorm(), b);
    EXPECT_EQ(first.framed, second.framed);
    EXPECT_EQ(first.refs_issued, second.refs_issued);
}

TEST(TraceTest, RecordingIsHostIndependent)
{
    // Pid normalization: the live machine and the counts-only host
    // assign pids differently, but the trace bytes must not see it.
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    const TraceStreamMeta meta = MetaFor("ctx-switch", 3, 80'000);
    CountingHost counting(config);
    const Recorded counted = Record(meta, MakeCtxSwitchHeavy(), counting);
    core::SpurSystem live(config, policy::DirtyPolicyKind::kSpur,
                          policy::RefPolicyKind::kMiss);
    const Recorded simulated = Record(meta, MakeCtxSwitchHeavy(), live);
    EXPECT_EQ(counted.framed, simulated.framed);
}

TEST(TraceTest, EmptyTraceRoundTrips)
{
    ScopedTempDir tmp;
    const std::string path = tmp.Path("empty.trc");
    TraceFileWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, &error)) << error;
    ASSERT_TRUE(writer.Finish(&error)) << error;
    EXPECT_EQ(ReadFile(path), EncodeTraceFile({}));

    TraceLibrary library;
    ASSERT_TRUE(library.Load(path, &error)) << error;
    EXPECT_TRUE(library.streams().empty());
}

TEST(TraceTest, ReplayReproducesRecordedRunStatistics)
{
    // Record a live run's op stream, then replay the trace on a fresh
    // identical machine: the cache statistics must match exactly (the
    // trace-driven methodology's repeatability).
    ScopedTempDir tmp;
    const std::string path = tmp.Path("replay.trc");
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    const TraceStreamMeta meta = MetaFor("flush-storm", 77, 200'000);

    uint64_t live_misses = 0;
    uint64_t live_dirty_faults = 0;
    uint64_t live_refs = 0;
    {
        core::SpurSystem live(config, policy::DirtyPolicyKind::kSpur,
                              policy::RefPolicyKind::kMiss);
        const Recorded rec = Record(meta, MakeFlushStorm(), live);
        live_misses = live.events().TotalMisses();
        live_dirty_faults = live.events().Get(sim::Event::kDirtyFault);
        live_refs = rec.refs_issued;
        TraceFileWriter writer;
        std::string error;
        ASSERT_TRUE(writer.Open(path, &error)) << error;
        ASSERT_TRUE(writer.AppendStream(rec.framed, &error)) << error;
        ASSERT_TRUE(writer.Finish(&error)) << error;
    }

    core::SpurSystem replayed(config, policy::DirtyPolicyKind::kSpur,
                              policy::RefPolicyKind::kMiss);
    const ReplayStats stats = ReplayTrace(path, replayed);
    EXPECT_EQ(stats.refs_issued, live_refs);
    EXPECT_EQ(replayed.events().TotalMisses(), live_misses);
    EXPECT_EQ(replayed.events().Get(sim::Event::kDirtyFault),
              live_dirty_faults);
}

TEST(TraceTest, ReplayUnderDifferentPolicyDiffers)
{
    // The point of traces: the same stream, a different policy.
    ScopedTempDir tmp;
    const std::string path = tmp.Path("policy.trc");
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    const TraceStreamMeta meta = MetaFor("flush-storm", 99, 150'000);
    {
        CountingHost counting(config);
        const Recorded rec = Record(meta, MakeFlushStorm(), counting);
        TraceFileWriter writer;
        std::string error;
        ASSERT_TRUE(writer.Open(path, &error)) << error;
        ASSERT_TRUE(writer.AppendStream(rec.framed, &error)) << error;
        ASSERT_TRUE(writer.Finish(&error)) << error;
    }
    core::SpurSystem fault_system(config, policy::DirtyPolicyKind::kFault,
                                  policy::RefPolicyKind::kMiss);
    ReplayTrace(path, fault_system);
    core::SpurSystem spur_system(config, policy::DirtyPolicyKind::kSpur,
                                 policy::RefPolicyKind::kMiss);
    ReplayTrace(path, spur_system);
    // FAULT turns the dirty-bit misses into excess faults.
    EXPECT_GT(fault_system.events().Get(sim::Event::kExcessFault), 0u);
    EXPECT_EQ(spur_system.events().Get(sim::Event::kExcessFault), 0u);
    EXPECT_EQ(fault_system.events().Get(sim::Event::kExcessFault),
              spur_system.events().Get(sim::Event::kDirtyBitMiss));
}

TEST(TraceTest, TruncationRecoversCompletePrefix)
{
    const TraceStreamMeta meta_a = MetaFor("ctx-switch", 1, 60'000);
    const TraceStreamMeta meta_b = MetaFor("gc-sweep", 2, 60'000);
    CountingHost host_a(sim::MachineConfig::Prototype(8));
    CountingHost host_b(sim::MachineConfig::Prototype(8));
    const Recorded a = Record(meta_a, MakeCtxSwitchHeavy(), host_a);
    const Recorded b = Record(meta_b, MakeGcSweep(), host_b);
    const std::string file = EncodeTraceFile({a.framed, b.framed});

    // Cut mid-way through the second stream: the first one survives.
    const size_t first_end = file.find(a.framed) + a.framed.size();
    const size_t cut = first_end + b.framed.size() / 2;
    std::string error;
    const auto recovered =
        RecoverTraceBytes(file.substr(0, cut), &error);
    ASSERT_TRUE(recovered.has_value()) << error;
    EXPECT_FALSE(recovered->complete);
    ASSERT_EQ(recovered->streams.size(), 1u);
    EXPECT_EQ(recovered->streams[0].meta.Identity(), meta_a.Identity());
    EXPECT_GT(recovered->dropped_bytes, 0u);
    EXPECT_FALSE(recovered->note.empty());

    // Cut exactly after both streams (trailer torn off): both survive,
    // and re-encoding the recovered streams reproduces the whole file.
    const auto trailerless = RecoverTraceBytes(
        file.substr(0, first_end + b.framed.size()), &error);
    ASSERT_TRUE(trailerless.has_value()) << error;
    EXPECT_FALSE(trailerless->complete);
    ASSERT_EQ(trailerless->streams.size(), 2u);
    EXPECT_EQ(EncodeTraceFile({trailerless->streams[0].framed,
                               trailerless->streams[1].framed}),
              file);

    // A truncated file is not loadable — the library demands recovery.
    ScopedTempDir tmp;
    const std::string path = tmp.Path("truncated.trc");
    WriteFile(path, file.substr(0, cut));
    TraceLibrary library;
    EXPECT_FALSE(library.Load(path, &error));
    EXPECT_NE(error.find("spur_trace validate"), std::string::npos)
        << error;
}

TEST(TraceTest, CorruptionIsAHardError)
{
    const TraceStreamMeta meta = MetaFor("ctx-switch", 5, 60'000);
    CountingHost host(sim::MachineConfig::Prototype(8));
    const Recorded rec = Record(meta, MakeCtxSwitchHeavy(), host);
    std::string file = EncodeTraceFile({rec.framed});

    // Flip one op byte behind the length prefix: the stream digest no
    // longer agrees, which truncation can never explain.
    const size_t b_frame = file.find("\nB ");
    ASSERT_NE(b_frame, std::string::npos);
    const size_t payload = file.find('\n', b_frame + 1) + 1;
    file[payload + 10] = static_cast<char>(file[payload + 10] ^ 0x40);
    std::string error;
    EXPECT_FALSE(RecoverTraceBytes(file, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(TraceDeathTest, RejectsMissingFile)
{
    CountingHost host(sim::MachineConfig::Prototype(8));
    EXPECT_EXIT(ReplayTrace("/nonexistent/nope.trc", host),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceDeathTest, RejectsBadMagic)
{
    ScopedTempDir tmp;
    const std::string path = tmp.Path("bad.trc");
    WriteFile(path, "NOTATRACEFILE...");
    CountingHost host(sim::MachineConfig::Prototype(8));
    EXPECT_EXIT(ReplayTrace(path, host), testing::ExitedWithCode(1),
                "not a SPUR-TRACE/1");
}

TEST(TraceDeathTest, RejectsGeometryMismatch)
{
    ScopedTempDir tmp;
    const std::string path = tmp.Path("geometry.trc");
    const TraceStreamMeta meta = MetaFor("ctx-switch", 5, 60'000);
    CountingHost host(sim::MachineConfig::Prototype(8));
    const Recorded rec = Record(meta, MakeCtxSwitchHeavy(), host);
    WriteFile(path, EncodeTraceFile({rec.framed}));

    sim::MachineConfig other = sim::MachineConfig::Prototype(8);
    other.page_bytes *= 2;
    CountingHost mismatched(other);
    EXPECT_EXIT(ReplayTrace(path, mismatched),
                testing::ExitedWithCode(1), "recorded at page/block");
}

// ---- Golden files -----------------------------------------------------

/**
 * Compares produced trace bytes against a checked-in golden.  An
 * intentional format change regenerates them with SPUR_UPDATE_GOLDEN=1
 * (and is a schema event: bump kTraceVersion).
 */
void
CheckGolden(const std::string& name, const std::string& produced)
{
    const std::string golden_path =
        std::string(SPUR_SOURCE_ROOT) + "/tests/golden/" + name;
    if (std::getenv("SPUR_UPDATE_GOLDEN") != nullptr) {
        WriteFile(golden_path, produced);
    }
    EXPECT_EQ(produced, ReadFile(golden_path))
        << name << " drifted from tests/golden/ — if intentional, bump "
        << "kTraceVersion and rerun with SPUR_UPDATE_GOLDEN=1";
}

TEST(TraceGoldenTest, EmptyTraceMatchesGolden)
{
    CheckGolden("trace_empty", EncodeTraceFile({}));
}

/** A tiny hand-scripted stream, independent of any workload tuning. */
std::string
GoldenStream()
{
    TraceStreamMeta meta;
    meta.workload = "golden";
    meta.seed = 42;
    meta.refs = 6;
    meta.page_bytes = 4096;
    meta.block_bytes = 32;
    TraceEncoder encoder(meta);
    encoder.OnCreateProcess(9);  // Host pid 9 normalizes to trace pid 0.
    encoder.OnMapRegion(9, 0x40000000, 0x2000, vm::PageKind::kData);
    encoder.OnAccess(MemRef{9, 0x40000010, AccessType::kRead});
    encoder.OnAccess(MemRef{9, 0x40000014, AccessType::kWrite});
    encoder.OnContextSwitch();
    encoder.OnCreateProcess(4);
    encoder.OnShareSegment(4, 0, 9, 0);
    encoder.OnAccess(MemRef{4, 0x00000020, AccessType::kIFetch});
    encoder.OnDestroyProcess(4);
    return encoder.Finish(6);
}

TEST(TraceGoldenTest, SmallTraceMatchesGolden)
{
    const std::string file = EncodeTraceFile({GoldenStream()});
    CheckGolden("trace_small", file);

    // The golden bytes must also recover completely and re-encode to
    // themselves (the parser fix-point the fuzzer generalizes).
    std::string error;
    const auto recovered = RecoverTraceBytes(file, &error);
    ASSERT_TRUE(recovered.has_value()) << error;
    EXPECT_TRUE(recovered->complete);
    ASSERT_EQ(recovered->streams.size(), 1u);
    EXPECT_EQ(recovered->streams[0].accesses, 3u);
    EXPECT_EQ(EncodeTraceFile({recovered->streams[0].framed}), file);
}

}  // namespace
}  // namespace spur::workload

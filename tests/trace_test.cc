/**
 * @file
 * Tests for trace recording and replay: format round-trip, corruption
 * detection, and the determinism property that replaying a recorded
 * stream reproduces the recording system's cache statistics.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/system.h"
#include "src/workload/process.h"
#include "src/workload/trace.h"

namespace spur::workload {
namespace {

std::string
TempPath(const char* name)
{
    return testing::TempDir() + "/" + name;
}

TEST(TraceTest, RoundTripsRecords)
{
    const std::string path = TempPath("roundtrip.trc");
    {
        TraceWriter writer(path);
        writer.Append(MemRef{1, 0x1234, AccessType::kRead});
        writer.Append(MemRef{2, 0xFFFFFFF0, AccessType::kWrite});
        writer.Append(MemRef{0, 0x0, AccessType::kIFetch});
        EXPECT_EQ(writer.count(), 3u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.count(), 3u);
    MemRef ref;
    ASSERT_TRUE(reader.Next(&ref));
    EXPECT_EQ(ref.pid, 1u);
    EXPECT_EQ(ref.addr, 0x1234u);
    EXPECT_EQ(ref.type, AccessType::kRead);
    ASSERT_TRUE(reader.Next(&ref));
    EXPECT_EQ(ref.pid, 2u);
    EXPECT_EQ(ref.addr, 0xFFFFFFF0u);
    EXPECT_EQ(ref.type, AccessType::kWrite);
    ASSERT_TRUE(reader.Next(&ref));
    EXPECT_EQ(ref.type, AccessType::kIFetch);
    EXPECT_FALSE(reader.Next(&ref));
}

TEST(TraceTest, EmptyTrace)
{
    const std::string path = TempPath("empty.trc");
    { TraceWriter writer(path); }
    TraceReader reader(path);
    EXPECT_EQ(reader.count(), 0u);
    MemRef ref;
    EXPECT_FALSE(reader.Next(&ref));
}

TEST(TraceDeathTest, RejectsMissingFile)
{
    EXPECT_EXIT({ TraceReader reader("/nonexistent/nope.trc"); },
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceDeathTest, RejectsBadMagic)
{
    const std::string path = TempPath("bad.trc");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACEFILE...", 1, 16, f);
    std::fclose(f);
    EXPECT_EXIT({ TraceReader reader(path); }, testing::ExitedWithCode(1),
                "not a SPUR trace");
}

TEST(TraceTest, ReplayReproducesRecordedRunStatistics)
{
    // Record a synthetic process's stream while running it, then replay
    // the trace on a fresh identical machine: the cache statistics must
    // match exactly (the trace-driven methodology's repeatability).
    const std::string path = TempPath("replay.trc");
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);

    uint64_t live_misses = 0;
    uint64_t live_dirty_faults = 0;
    {
        core::SpurSystem live(config, policy::DirtyPolicyKind::kSpur,
                              policy::RefPolicyKind::kMiss);
        ProcessProfile profile;
        profile.heap_pages = 64;
        profile.data_pages = 32;
        profile.code_pages = 16;
        SyntheticProcess process(live, profile, 77);
        TraceWriter writer(path);
        for (int i = 0; i < 200'000; ++i) {
            const MemRef ref = process.Next();
            writer.Append(ref);
            live.Access(ref);
        }
        live_misses = live.events().TotalMisses();
        live_dirty_faults = live.events().Get(sim::Event::kDirtyFault);
    }

    core::SpurSystem replayed(config, policy::DirtyPolicyKind::kSpur,
                              policy::RefPolicyKind::kMiss);
    const uint64_t n = ReplayTrace(path, replayed);
    EXPECT_EQ(n, 200'000u);
    EXPECT_EQ(replayed.events().TotalRefs(), 200'000u);
    EXPECT_EQ(replayed.events().TotalMisses(), live_misses);
    EXPECT_EQ(replayed.events().Get(sim::Event::kDirtyFault),
              live_dirty_faults);
}

TEST(TraceTest, ReplayUnderDifferentPolicyDiffers)
{
    // The point of traces: the same stream, a different policy.
    const std::string path = TempPath("policy.trc");
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    {
        core::SpurSystem live(config, policy::DirtyPolicyKind::kSpur,
                              policy::RefPolicyKind::kMiss);
        ProcessProfile profile;
        profile.heap_pages = 64;
        SyntheticProcess process(live, profile, 99);
        TraceWriter writer(path);
        for (int i = 0; i < 100'000; ++i) {
            writer.Append(process.Next());
        }
    }
    core::SpurSystem fault_system(config, policy::DirtyPolicyKind::kFault,
                                  policy::RefPolicyKind::kMiss);
    ReplayTrace(path, fault_system);
    core::SpurSystem spur_system(config, policy::DirtyPolicyKind::kSpur,
                                 policy::RefPolicyKind::kMiss);
    ReplayTrace(path, spur_system);
    // FAULT turns the dirty-bit misses into excess faults.
    EXPECT_GT(fault_system.events().Get(sim::Event::kExcessFault), 0u);
    EXPECT_EQ(spur_system.events().Get(sim::Event::kExcessFault), 0u);
    EXPECT_EQ(fault_system.events().Get(sim::Event::kExcessFault),
              spur_system.events().Get(sim::Event::kDirtyBitMiss));
}

}  // namespace
}  // namespace spur::workload

/**
 * @file
 * Tests for the Section 3.2 analytic overhead models, checked against the
 * paper's own published numbers: feeding Table 3.3's measured event
 * frequencies into the models must reproduce Table 3.4's cycle counts.
 */
#include <gtest/gtest.h>

#include "src/core/overhead_model.h"
#include "src/sim/config.h"

namespace spur::core {
namespace {

using policy::DirtyPolicyKind;

OverheadModel
PaperModel()
{
    // Table 3.2 parameters.
    return OverheadModel(/*t_ds=*/1000, /*t_flush=*/500, /*t_dm=*/25,
                         /*t_dc=*/5);
}

/** Table 3.3's SLC row at 5 MB (w-hit/w-miss columns are in millions). */
EventFrequencies
Slc5()
{
    EventFrequencies f;
    f.n_ds = 2349;
    f.n_zfod = 905;
    f.n_ef = 237;
    f.n_w_hit = 1'270'000;
    f.n_w_miss = 7'380'000;
    return f;
}

/** Table 3.3's WORKLOAD1 row at 5 MB. */
EventFrequencies
W15()
{
    EventFrequencies f;
    f.n_ds = 9860;
    f.n_zfod = 5286;
    f.n_ef = 1534;
    f.n_w_hit = 6'150'000;
    f.n_w_miss = 34'000'000;
    return f;
}

TEST(OverheadModelTest, ReproducesPaperTable34SlcRow)
{
    const OverheadModel model = PaperModel();
    const EventFrequencies f = Slc5();
    // Paper: MIN 1.44M, FAULT 1.68M, FLUSH 2.17M, SPUR 1.49M, WRITE 7.81M.
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kMin, f) / 1e6, 1.44, 0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kFault, f) / 1e6, 1.68,
                0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kFlush, f) / 1e6, 2.17,
                0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kSpur, f) / 1e6, 1.49,
                0.01);
    // The published inputs are rounded (N_w-hit "1.27" million), so the
    // recomputed WRITE overhead lands within rounding of the paper's.
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kWrite, f) / 1e6, 7.81,
                0.03);
}

TEST(OverheadModelTest, ReproducesPaperTable34Workload1Row)
{
    const OverheadModel model = PaperModel();
    const EventFrequencies f = W15();
    // Paper: MIN 4.57M, FAULT 6.11M, FLUSH 6.86M, SPUR 4.73M, WRITE 35.3M.
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kMin, f) / 1e6, 4.57, 0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kFault, f) / 1e6, 6.11,
                0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kFlush, f) / 1e6, 6.86,
                0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kSpur, f) / 1e6, 4.73,
                0.01);
    EXPECT_NEAR(model.Overhead(DirtyPolicyKind::kWrite, f) / 1e6, 35.3,
                0.05);
}

TEST(OverheadModelTest, ReproducesPaperRelatives)
{
    const OverheadModel model = PaperModel();
    const EventFrequencies f = W15();
    EXPECT_NEAR(model.RelativeToMin(DirtyPolicyKind::kFault, f), 1.34,
                0.005);
    EXPECT_NEAR(model.RelativeToMin(DirtyPolicyKind::kFlush, f), 1.50,
                0.005);
    EXPECT_NEAR(model.RelativeToMin(DirtyPolicyKind::kSpur, f), 1.03,
                0.005);
    EXPECT_NEAR(model.RelativeToMin(DirtyPolicyKind::kWrite, f), 7.72,
                0.01);
}

TEST(OverheadModelTest, FlushIsAlwaysExactlyHalfAboveMin)
{
    // With t_flush = t_ds / 2, FLUSH is 1.50x MIN for any frequencies.
    const OverheadModel model = PaperModel();
    for (uint64_t n_ds : {100ull, 1000ull, 50000ull}) {
        EventFrequencies f;
        f.n_ds = n_ds;
        f.n_ef = n_ds / 7;
        EXPECT_DOUBLE_EQ(model.RelativeToMin(DirtyPolicyKind::kFlush, f),
                         1.5);
    }
}

TEST(OverheadModelTest, FaultFlushCrossoverAtHalf)
{
    const OverheadModel model = PaperModel();
    EventFrequencies f;
    f.n_ds = 1000;
    f.n_ef = 499;
    EXPECT_LT(model.Overhead(DirtyPolicyKind::kFault, f),
              model.Overhead(DirtyPolicyKind::kFlush, f));
    f.n_ef = 501;
    EXPECT_GT(model.Overhead(DirtyPolicyKind::kFault, f),
              model.Overhead(DirtyPolicyKind::kFlush, f));
    f.n_ef = 500;
    EXPECT_DOUBLE_EQ(model.Overhead(DirtyPolicyKind::kFault, f),
                     model.Overhead(DirtyPolicyKind::kFlush, f));
}

TEST(OverheadModelTest, ZeroFillExclusion)
{
    const OverheadModel model = PaperModel();
    EventFrequencies f;
    f.n_ds = 1000;
    f.n_zfod = 400;
    EXPECT_DOUBLE_EQ(model.Overhead(DirtyPolicyKind::kMin, f,
                                    /*exclude_zfod=*/true),
                     600.0 * 1000);
    EXPECT_DOUBLE_EQ(model.Overhead(DirtyPolicyKind::kMin, f,
                                    /*exclude_zfod=*/false),
                     1000.0 * 1000);
    // Degenerate: more zfod than faults clamps at zero.
    f.n_zfod = 2000;
    EXPECT_DOUBLE_EQ(model.Overhead(DirtyPolicyKind::kMin, f), 0.0);
}

TEST(OverheadModelTest, GeometricExcessModel)
{
    // p_w = 0.8 -> (1 - 0.8) / 0.8 = 0.25.
    EventFrequencies f;
    f.n_w_hit = 200;
    f.n_w_miss = 800;
    EXPECT_DOUBLE_EQ(OverheadModel::WriteMissProbability(f), 0.8);
    EXPECT_DOUBLE_EQ(OverheadModel::PredictedExcessRatio(f), 0.25);
    // The paper's SLC@5 mix: 1.27 : 7.38 -> p_w = 0.853 -> 17.2%.
    const EventFrequencies slc = Slc5();
    EXPECT_NEAR(OverheadModel::PredictedExcessRatio(slc), 0.172, 0.001);
    // Measured (excluding zfod): 237 / 1444 = 16.4% - below the model,
    // as the paper observes.
    EXPECT_NEAR(OverheadModel::MeasuredExcessRatio(slc), 0.164, 0.001);
    EXPECT_LT(OverheadModel::MeasuredExcessRatio(slc),
              OverheadModel::PredictedExcessRatio(slc));
}

TEST(OverheadModelTest, MeasuredExcessRatioInclusiveVsExclusive)
{
    const EventFrequencies f = W15();
    // Excluding zero-fills: 1534 / 4574 = 33.5%.
    EXPECT_NEAR(OverheadModel::MeasuredExcessRatio(f, true), 0.335, 0.001);
    // Including: 1534 / 9860 = 15.6%.
    EXPECT_NEAR(OverheadModel::MeasuredExcessRatio(f, false), 0.156, 0.001);
}

TEST(OverheadModelTest, DegenerateFrequencies)
{
    const OverheadModel model = PaperModel();
    EventFrequencies empty;
    EXPECT_DOUBLE_EQ(model.Overhead(DirtyPolicyKind::kFault, empty), 0.0);
    EXPECT_DOUBLE_EQ(model.RelativeToMin(DirtyPolicyKind::kWrite, empty),
                     1.0);
    EXPECT_DOUBLE_EQ(OverheadModel::MeasuredExcessRatio(empty), 0.0);
    EXPECT_DOUBLE_EQ(OverheadModel::PredictedExcessRatio(empty), 0.0);
}

TEST(OverheadModelTest, FromEventsMergesExcessAndDirtyMiss)
{
    sim::EventCounts events;
    events.Add(sim::Event::kDirtyFault, 10);
    events.Add(sim::Event::kDirtyFaultZfod, 4);
    events.Add(sim::Event::kDirtyBitMiss, 3);
    events.Add(sim::Event::kExcessFault, 2);
    events.Add(sim::Event::kWriteHitCleanBlock, 100);
    events.Add(sim::Event::kWriteMissFill, 500);
    const EventFrequencies f = EventFrequencies::FromEvents(events);
    EXPECT_EQ(f.n_ds, 10u);
    EXPECT_EQ(f.n_zfod, 4u);
    EXPECT_EQ(f.n_ef, 5u);  // Same population, either counter.
    EXPECT_EQ(f.n_w_hit, 100u);
    EXPECT_EQ(f.n_w_miss, 500u);
    EXPECT_EQ(f.IntrinsicFaults(), 6u);
}

}  // namespace
}  // namespace spur::core

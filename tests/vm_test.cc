/**
 * @file
 * Tests for the Sprite-like VM: regions, the page-fault path (zero-fill
 * vs. page-in), the two-hand clock daemon, reclaim accounting (including
 * footnote 4's forced write of zero-fill pages and Table 3.5's
 * writable-page bookkeeping), and teardown.
 */
#include <gtest/gtest.h>

#include <memory>

#include "src/cache/cache.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"
#include "src/vm/region.h"
#include "src/vm/vm.h"

namespace spur::vm {
namespace {

// ---------------------------------------------------------------------------
// RegionMap
// ---------------------------------------------------------------------------

TEST(RegionMapTest, AddFindRemove)
{
    RegionMap map;
    map.Add(100, 10, PageKind::kHeap);
    const Region* region = map.Find(105);
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->kind, PageKind::kHeap);
    EXPECT_EQ(region->NumPages(), 10u);
    EXPECT_EQ(map.Find(99), nullptr);
    EXPECT_EQ(map.Find(110), nullptr);  // End is exclusive.
    const Region removed = map.Remove(100);
    EXPECT_EQ(removed.end, 110u);
    EXPECT_EQ(map.Find(105), nullptr);
}

TEST(RegionMapTest, MultipleDisjointRegions)
{
    RegionMap map;
    map.Add(0, 5, PageKind::kCode);
    map.Add(5, 5, PageKind::kData);
    map.Add(100, 1, PageKind::kStack);
    EXPECT_EQ(map.NumRegions(), 3u);
    EXPECT_EQ(map.Find(4)->kind, PageKind::kCode);
    EXPECT_EQ(map.Find(5)->kind, PageKind::kData);
    EXPECT_EQ(map.Find(100)->kind, PageKind::kStack);
}

TEST(RegionMapDeathTest, OverlapIsFatal)
{
    RegionMap map;
    map.Add(10, 10, PageKind::kHeap);
    EXPECT_EXIT(map.Add(15, 10, PageKind::kHeap),
                testing::ExitedWithCode(1), "overlap");
    EXPECT_EXIT(map.Add(5, 6, PageKind::kHeap), testing::ExitedWithCode(1),
                "overlap");
}

TEST(RegionMapDeathTest, RemoveUnknownIsFatal)
{
    RegionMap map;
    EXPECT_EXIT(map.Remove(42), testing::ExitedWithCode(1), "unknown");
}

TEST(RegionKindTest, WritabilityAndZeroFill)
{
    EXPECT_FALSE(IsWritable(PageKind::kCode));
    EXPECT_FALSE(IsWritable(PageKind::kFileCache));
    EXPECT_TRUE(IsWritable(PageKind::kData));
    EXPECT_TRUE(IsWritable(PageKind::kHeap));
    EXPECT_TRUE(IsWritable(PageKind::kStack));
    EXPECT_TRUE(IsZeroFill(PageKind::kHeap));
    EXPECT_TRUE(IsZeroFill(PageKind::kStack));
    EXPECT_FALSE(IsZeroFill(PageKind::kData));
    EXPECT_FALSE(IsZeroFill(PageKind::kCode));
}

// ---------------------------------------------------------------------------
// VirtualMemory fixture: a small machine so daemon behaviour is testable.
// ---------------------------------------------------------------------------

class VmTest : public testing::Test
{
  protected:
    VmTest() { Rebuild(8); }

    void Rebuild(uint32_t memory_mb)
    {
        config_ = sim::MachineConfig::Prototype(memory_mb);
        vcache_ = std::make_unique<cache::VirtualCache>(config_);
        table_ = std::make_unique<pt::PageTable>();
        events_ = std::make_unique<sim::EventCounts>();
        timing_ = std::make_unique<sim::TimingModel>(config_);
        vm_ = std::make_unique<VirtualMemory>(config_, *table_, *vcache_,
                                              *events_, *timing_);
        dirty_ = policy::MakeDirtyPolicy(policy::DirtyPolicyKind::kSpur,
                                         *vcache_, config_);
        ref_ = policy::MakeRefPolicy(policy::RefPolicyKind::kMiss, *vcache_,
                                     config_);
        vm_->SetPolicies(dirty_.get(), ref_.get());
    }

    sim::MachineConfig config_;
    std::unique_ptr<cache::VirtualCache> vcache_;
    std::unique_ptr<pt::PageTable> table_;
    std::unique_ptr<sim::EventCounts> events_;
    std::unique_ptr<sim::TimingModel> timing_;
    std::unique_ptr<VirtualMemory> vm_;
    std::unique_ptr<policy::DirtyPolicy> dirty_;
    std::unique_ptr<policy::RefPolicy> ref_;
};

TEST_F(VmTest, ZeroFillFaultHasNoIo)
{
    vm_->MapRegion(1000, 4, PageKind::kHeap);
    const pt::Pte& pte = vm_->HandlePageFault(1000ull << 12);
    EXPECT_TRUE(pte.valid());
    EXPECT_TRUE(pte.referenced());
    EXPECT_FALSE(pte.dirty());
    EXPECT_TRUE(pte.zfod_clean());
    EXPECT_TRUE(pte.writable_intent());
    EXPECT_EQ(events_->Get(sim::Event::kZeroFill), 1u);
    EXPECT_EQ(events_->Get(sim::Event::kPageIn), 0u);
    EXPECT_EQ(vm_->store().NumPageIns(), 0u);
}

TEST_F(VmTest, FileBackedFaultPagesIn)
{
    vm_->MapRegion(2000, 4, PageKind::kData);
    const pt::Pte& pte = vm_->HandlePageFault(2000ull << 12);
    EXPECT_TRUE(pte.valid());
    EXPECT_FALSE(pte.zfod_clean());
    EXPECT_EQ(events_->Get(sim::Event::kPageIn), 1u);
    EXPECT_GT(timing_->Get(sim::TimeBucket::kPagingIo), 0u);
}

TEST_F(VmTest, CodeFaultMapsReadOnly)
{
    vm_->MapRegion(3000, 2, PageKind::kCode);
    const pt::Pte& pte = vm_->HandlePageFault(3000ull << 12);
    EXPECT_EQ(pte.protection(), Protection::kReadOnly);
    EXPECT_FALSE(pte.writable_intent());
}

TEST_F(VmTest, ResidentProtectionComesFromDirtyPolicy)
{
    // Under SPUR, writable pages are mapped read-write; under FAULT they
    // would start read-only.
    vm_->MapRegion(4000, 2, PageKind::kHeap);
    const pt::Pte& pte = vm_->HandlePageFault(4000ull << 12);
    EXPECT_EQ(pte.protection(), Protection::kReadWrite);

    auto fault_policy = policy::MakeDirtyPolicy(
        policy::DirtyPolicyKind::kFault, *vcache_, config_);
    vm_->SetPolicies(fault_policy.get(), ref_.get());
    const pt::Pte& pte2 = vm_->HandlePageFault((4000ull + 1) << 12);
    EXPECT_EQ(pte2.protection(), Protection::kReadOnly);
    EXPECT_TRUE(pte2.writable_intent());
}

TEST_F(VmTest, FaultBindsFrameAndReverseMap)
{
    vm_->MapRegion(5000, 1, PageKind::kHeap);
    const pt::Pte& pte = vm_->HandlePageFault(5000ull << 12);
    EXPECT_EQ(vm_->frames().VpnOf(pte.pfn()), 5000u);
}

TEST_F(VmTest, UnmapFreesFramesAndInvalidates)
{
    vm_->MapRegion(6000, 8, PageKind::kHeap);
    for (GlobalVpn vpn = 6000; vpn < 6008; ++vpn) {
        vm_->HandlePageFault(vpn << 12);
    }
    const uint32_t free_before = vm_->frames().NumFree();
    vm_->UnmapRegion(6000);
    EXPECT_EQ(vm_->frames().NumFree(), free_before + 8);
    EXPECT_EQ(vm_->regions().NumRegions(), 0u);
    const pt::Pte* pte = table_->Find(6000);
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->valid());
}

TEST_F(VmTest, UnmapFlushesCacheLines)
{
    vm_->MapRegion(7000, 1, PageKind::kHeap);
    vm_->HandlePageFault(7000ull << 12);
    const GlobalAddr addr = 7000ull << 12;
    vcache_->Fill(addr, Protection::kReadWrite, false, nullptr);
    ASSERT_TRUE(vcache_->Lookup(addr));
    vm_->UnmapRegion(7000);
    EXPECT_FALSE(vcache_->Lookup(addr));
}

TEST_F(VmTest, DaemonReclaimsUnreferencedPages)
{
    // Fill memory to the brim with a big heap: the daemon must kick in
    // and every fault must still succeed.
    const uint64_t pages = config_.NumFrames();  // > pageable frames.
    vm_->MapRegion(10000, pages, PageKind::kHeap);
    for (uint64_t i = 0; i < pages; ++i) {
        vm_->HandlePageFault((10000 + i) << 12);
    }
    EXPECT_GT(events_->Get(sim::Event::kDaemonSweep), 0u);
    EXPECT_GT(events_->Get(sim::Event::kPageReclaimClean) +
                  events_->Get(sim::Event::kPageOutDirty),
              0u);
    EXPECT_GE(vm_->frames().NumFree(), 1u);
}

TEST_F(VmTest, Footnote4ZeroFillPagesAreWrittenOnFirstReplacement)
{
    // Untouched-after-fill zero-fill pages must be paged out (written to
    // swap) on their first replacement even though they are clean.
    const uint64_t pages = config_.NumFrames();
    vm_->MapRegion(20000, pages, PageKind::kHeap);
    for (uint64_t i = 0; i < pages; ++i) {
        vm_->HandlePageFault((20000 + i) << 12);
    }
    // All reclaimed pages were zero-fill-clean: every writable reclaim
    // must have been a page-out, none a clean drop.
    EXPECT_GT(events_->Get(sim::Event::kPageOutDirty), 0u);
    EXPECT_EQ(events_->Get(sim::Event::kPageoutWritableNotModified), 0u);
    EXPECT_EQ(events_->Get(sim::Event::kPageOutDirty),
              events_->Get(sim::Event::kPageoutWritableModified));
}

TEST_F(VmTest, ReloadedCleanPageReclaimsWithoutIo)
{
    // Page a zero-fill page out, fault it back (page-in), do not touch
    // it, and force its reclaim: now it is genuinely clean (not zfod any
    // more) and must be dropped without I/O, counted "not modified".
    const uint64_t pages = config_.NumFrames();
    vm_->MapRegion(30000, pages, PageKind::kHeap);
    for (uint64_t i = 0; i < pages; ++i) {
        vm_->HandlePageFault((30000 + i) << 12);
    }
    // Find a page the clock reclaimed during the fill, and reload it.
    GlobalVpn victim = 0;
    for (GlobalVpn vpn = 30000; vpn < 30000 + pages; ++vpn) {
        const pt::Pte* pte = table_->Find(vpn);
        if (pte != nullptr && !pte->valid()) {
            victim = vpn;
            break;
        }
    }
    ASSERT_NE(victim, 0u) << "no page was reclaimed under full pressure";
    const pt::Pte& reloaded = vm_->HandlePageFault(victim << 12);
    EXPECT_FALSE(reloaded.zfod_clean());
    EXPECT_EQ(events_->Get(sim::Event::kPageoutWritableNotModified), 0u);
    // Apply enough fresh pressure that the clock laps the reloaded,
    // untouched page and reclaims it again - this time genuinely clean.
    vm_->MapRegion(90000, 2 * pages, PageKind::kHeap);
    for (uint64_t i = 0; i < 2 * pages; ++i) {
        vm_->HandlePageFault((90000 + i) << 12);
    }
    EXPECT_GT(events_->Get(sim::Event::kPageoutWritableNotModified), 0u);
}

TEST_F(VmTest, ReclaimFlushesTheVirtualCache)
{
    // A reclaimed page must leave no stale lines behind.
    const uint64_t pages = config_.NumFrames();
    vm_->MapRegion(40000, pages, PageKind::kHeap);
    vm_->HandlePageFault(40000ull << 12);
    vcache_->Fill(40000ull << 12, Protection::kReadWrite, false, nullptr);
    for (uint64_t i = 1; i < pages; ++i) {
        vm_->HandlePageFault((40000 + i) << 12);
    }
    const pt::Pte* pte = table_->Find(40000);
    ASSERT_NE(pte, nullptr);
    if (!pte->valid()) {  // It was reclaimed, as expected under pressure.
        EXPECT_FALSE(vcache_->Lookup(40000ull << 12));
    }
    EXPECT_GT(events_->Get(sim::Event::kPageFlush), 0u);
}

TEST_F(VmTest, WatermarksAreOrdered)
{
    EXPECT_GT(vm_->LowWatermark(), 0u);
    EXPECT_GT(vm_->HighWatermark(), vm_->LowWatermark());
    EXPECT_LT(vm_->HighWatermark(), vm_->frames().NumPageable());
}

TEST_F(VmTest, SwapCopySurvivesReclaimAndServesReload)
{
    const uint64_t pages = config_.NumFrames();
    vm_->MapRegion(50000, pages, PageKind::kHeap);
    for (uint64_t i = 0; i < pages; ++i) {
        vm_->HandlePageFault((50000 + i) << 12);
    }
    // Some pages were reclaimed; zero-fill-clean ones went to swap
    // (footnote 4), so reloads must be page-ins, not fresh zero-fills.
    GlobalVpn victim = 0;
    for (GlobalVpn vpn = 50000; vpn < 50000 + pages; ++vpn) {
        const pt::Pte* pte = table_->Find(vpn);
        if (pte != nullptr && !pte->valid()) {
            victim = vpn;
            break;
        }
    }
    ASSERT_NE(victim, 0u);
    const auto zf_before = events_->Get(sim::Event::kZeroFill);
    ASSERT_TRUE(vm_->store().HasCopy(victim));
    vm_->HandlePageFault(victim << 12);
    EXPECT_EQ(events_->Get(sim::Event::kZeroFill), zf_before);
    EXPECT_GT(events_->Get(sim::Event::kPageIn), 0u);
}

TEST_F(VmTest, FaultOnUnmappedPagePanics)
{
    EXPECT_DEATH(vm_->HandlePageFault(0xDEAD000ull << 12), "unmapped");
}

}  // namespace
}  // namespace spur::vm

/**
 * @file
 * Integration tests for the multiprocessor machine: coherent sharing
 * through the bus, the dirty/reference machinery over shared PTEs, and
 * the all-caches flush semantics the REF policy depends on.
 */
#include <gtest/gtest.h>

#include <memory>

#include "src/core/mp_system.h"
#include "src/workload/process.h"

namespace spur::core {
namespace {

using policy::DirtyPolicyKind;
using policy::RefPolicyKind;
using workload::kHeapBase;

class MpSystemTest : public testing::Test
{
  protected:
    void Build(unsigned cpus, DirtyPolicyKind dirty = DirtyPolicyKind::kSpur,
               RefPolicyKind ref = RefPolicyKind::kMiss)
    {
        system_ = std::make_unique<MpSpurSystem>(
            sim::MachineConfig::Prototype(8), cpus, dirty, ref);
        pid_ = system_->CreateProcess();
        system_->MapRegion(pid_, kHeapBase,
                           64 * system_->config().page_bytes,
                           vm::PageKind::kHeap);
    }

    std::unique_ptr<MpSpurSystem> system_;
    Pid pid_ = 0;
};

TEST_F(MpSystemTest, RejectsBadCpuCounts)
{
    EXPECT_EXIT(MpSpurSystem(sim::MachineConfig::Prototype(8), 0,
                             DirtyPolicyKind::kSpur, RefPolicyKind::kMiss),
                testing::ExitedWithCode(1), "1..12");
    EXPECT_EXIT(MpSpurSystem(sim::MachineConfig::Prototype(8), 13,
                             DirtyPolicyKind::kSpur, RefPolicyKind::kMiss),
                testing::ExitedWithCode(1), "1..12");
}

TEST_F(MpSystemTest, ReadSharingSuppliesFromOwningCache)
{
    Build(2);
    // CPU 0 writes a block (becomes OwnedExclusive), CPU 1 reads it: the
    // block must come cache-to-cache and the owner drop to OwnedShared.
    system_->Access(0, MemRef{pid_, kHeapBase, AccessType::kWrite});
    system_->Access(1, MemRef{pid_, kHeapBase, AccessType::kRead});
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kBusCacheToCache), 1u);
    const GlobalAddr gva = system_->ToGlobal(pid_, kHeapBase);
    EXPECT_EQ(system_->vcache(0).Lookup(gva).state(),
              cache::CoherencyState::kOwnedShared);
    EXPECT_EQ(system_->vcache(1).Lookup(gva).state(),
              cache::CoherencyState::kUnOwned);
}

TEST_F(MpSystemTest, WriteInvalidatesPeerCopies)
{
    Build(3);
    system_->Access(0, MemRef{pid_, kHeapBase, AccessType::kRead});
    system_->Access(1, MemRef{pid_, kHeapBase, AccessType::kRead});
    system_->Access(2, MemRef{pid_, kHeapBase, AccessType::kWrite});
    const GlobalAddr gva = system_->ToGlobal(pid_, kHeapBase);
    EXPECT_FALSE(system_->vcache(0).Lookup(gva));
    EXPECT_FALSE(system_->vcache(1).Lookup(gva));
    EXPECT_EQ(system_->vcache(2).Lookup(gva).state(),
              cache::CoherencyState::kOwnedExclusive);
    EXPECT_GE(system_->events().Get(sim::Event::kBusInvalidation), 2u);
}

TEST_F(MpSystemTest, WriteHitOnSharedLineUpgrades)
{
    Build(2);
    system_->Access(0, MemRef{pid_, kHeapBase, AccessType::kRead});
    system_->Access(1, MemRef{pid_, kHeapBase, AccessType::kRead});
    // CPU 0 hits its UnOwned copy with a write: bus upgrade, peer copy
    // invalidated.
    system_->Access(0, MemRef{pid_, kHeapBase, AccessType::kWrite});
    const auto& ev = system_->events();
    EXPECT_EQ(ev.Get(sim::Event::kBusUpgrade), 1u);
    const GlobalAddr gva = system_->ToGlobal(pid_, kHeapBase);
    EXPECT_FALSE(system_->vcache(1).Lookup(gva));
    EXPECT_EQ(system_->vcache(0).Lookup(gva).state(),
              cache::CoherencyState::kOwnedExclusive);
}

TEST_F(MpSystemTest, DirtyFaultHappensOnceAcrossProcessors)
{
    // The page-dirty machinery is shared through the PTE: CPU 0's write
    // takes the necessary fault; CPU 1's later write to another block of
    // the same page sees the PTE already dirty (at worst a dirty-bit
    // miss, never a second fault).
    Build(2);
    const auto block =
        static_cast<ProcessAddr>(system_->config().block_bytes);
    system_->Access(0, MemRef{pid_, kHeapBase, AccessType::kWrite});
    system_->Access(1, MemRef{pid_, kHeapBase + block, AccessType::kWrite});
    EXPECT_EQ(system_->events().Get(sim::Event::kDirtyFault), 1u);
}

TEST_F(MpSystemTest, StaleCachedDirtyBitOnPeerIsADirtyBitMiss)
{
    Build(2);
    const auto block =
        static_cast<ProcessAddr>(system_->config().block_bytes);
    // CPU 1 reads a block while the page is clean: its line caches P=0.
    system_->Access(1, MemRef{pid_, kHeapBase + block, AccessType::kRead});
    // CPU 0 dirties the page via another block.
    system_->Access(0, MemRef{pid_, kHeapBase, AccessType::kWrite});
    EXPECT_EQ(system_->events().Get(sim::Event::kDirtyFault), 1u);
    // CPU 1 writes its stale-P block: dirty-bit miss, not a fault.
    system_->Access(1, MemRef{pid_, kHeapBase + block, AccessType::kWrite});
    EXPECT_EQ(system_->events().Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(system_->events().Get(sim::Event::kDirtyBitMiss), 1u);
}

TEST_F(MpSystemTest, AllCachesFlusherVisitsEveryCache)
{
    Build(4);
    // Cache the same page's blocks on all four CPUs.
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        system_->Access(cpu, MemRef{pid_, kHeapBase + cpu * 4,
                                    AccessType::kRead});
    }
    // Destroying the process flushes the page from every cache.
    system_->DestroyProcess(pid_);
    const GlobalAddr gva = system_->ToGlobal(pid_, kHeapBase);
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        EXPECT_FALSE(system_->vcache(cpu).Lookup(gva)) << cpu;
    }
}

TEST_F(MpSystemTest, RefClearFlushCostScalesWithCpus)
{
    // The Section 4.1 claim: REF is "especially true in a multiprocessor,
    // which must flush the page from all the caches."
    const uint64_t page = 4096;
    Cycles flush_1 = 0;
    Cycles flush_4 = 0;
    for (const unsigned cpus : {1u, 4u}) {
        MpSpurSystem system(sim::MachineConfig::Prototype(8), cpus,
                            DirtyPolicyKind::kSpur, RefPolicyKind::kRef);
        const Pid pid = system.CreateProcess();
        system.MapRegion(pid, kHeapBase, 32 * page, vm::PageKind::kHeap);
        // Heavy pressure region to trigger daemon clears.
        system.MapRegion(pid, workload::kDataBase,
                         (system.config().NumFrames() + 512) * page,
                         vm::PageKind::kHeap);
        for (uint64_t i = 0;
             i < system.config().NumFrames() + 200; ++i) {
            system.Access(0, MemRef{pid, static_cast<ProcessAddr>(
                                             workload::kDataBase + i * page),
                                    AccessType::kRead});
        }
        const Cycles flush =
            system.timing().Get(sim::TimeBucket::kFlush);
        if (cpus == 1) {
            flush_1 = flush;
        } else {
            flush_4 = flush;
        }
    }
    EXPECT_GT(flush_1, 0u);
    // Four caches to visit: flush time must grow substantially (close to
    // 4x; daemon step counts vary slightly between runs).
    EXPECT_GT(flush_4, 2 * flush_1);
}

TEST_F(MpSystemTest, UniprocessorMpMatchesBasicCounts)
{
    // A 1-CPU MpSpurSystem should behave like the uniprocessor system for
    // a simple access pattern.
    Build(1);
    for (int i = 0; i < 1000; ++i) {
        system_->Access(0, MemRef{pid_,
                                  static_cast<ProcessAddr>(kHeapBase +
                                                           (i % 512) * 32),
                                  (i % 3 == 0) ? AccessType::kWrite
                                               : AccessType::kRead});
    }
    EXPECT_EQ(system_->events().TotalRefs(), 1000u);
    EXPECT_EQ(system_->events().Get(sim::Event::kBusInvalidation), 0u);
    EXPECT_EQ(system_->events().Get(sim::Event::kBusCacheToCache), 0u);
}

TEST_F(MpSystemTest, CpuPortRunsSyntheticProcesses)
{
    // Synthetic processes built for the uniprocessor API run pinned to
    // multiprocessor CPUs through Port().
    Build(2);
    auto port0 = system_->Port(0);
    auto port1 = system_->Port(1);
    workload::ProcessProfile profile;
    profile.code_pages = 16;
    profile.data_pages = 16;
    profile.heap_pages = 64;
    workload::SyntheticProcess a(port0, profile, 1);
    workload::SyntheticProcess b(port1, profile, 2);
    for (int i = 0; i < 50'000; ++i) {
        a.Step();
        b.Step();
    }
    EXPECT_EQ(system_->events().TotalRefs(), 100'000u);
    // Both caches saw traffic.
    EXPECT_GT(system_->vcache(0).NumValid(), 0u);
    EXPECT_GT(system_->vcache(1).NumValid(), 0u);
}

}  // namespace
}  // namespace spur::core

/**
 * @file
 * Randomized stress tests: long random operation sequences against the
 * full system with global invariants checked along the way.  These are
 * the failure-injection nets that catch interactions the scenario tests
 * cannot enumerate.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/core/system.h"
#include "src/workload/process.h"

namespace spur::core {
namespace {

using policy::DirtyPolicyKind;
using policy::RefPolicyKind;
using workload::kHeapBase;

/** Checks the cross-module invariants of a live system. */
void
CheckInvariants(const SpurSystem& system)
{
    const auto& vcache = system.vcache();
    const auto& table = system.page_table();
    const auto& frames = system.memory().frames();
    const unsigned page_shift = system.config().PageShift();

    // 1. Every valid non-PTE cache line belongs to a resident page, and
    //    its cached page-dirty bit never claims *more* than the PTE
    //    (stale may lag behind, never run ahead).
    for (uint64_t index = 0; index < vcache.NumLines(); ++index) {
        const cache::Line& line = vcache.LineAt(index);
        if (!line.valid()) {
            continue;
        }
        const GlobalAddr addr = vcache.BlockAddrOf(index, line);
        if (pt::PageTable::IsPteAddr(addr)) {
            continue;
        }
        const pt::Pte* pte = table.Find(addr >> page_shift);
        ASSERT_NE(pte, nullptr) << std::hex << addr;
        ASSERT_TRUE(pte->valid()) << std::hex << addr;
        if (line.page_dirty) {
            ASSERT_TRUE(pte->dirty())
                << "cached page-dirty ahead of the PTE";
        }
    }

    // 2. Every resident PTE's frame reverse-maps to it.
    // (Scanned via the frame table: every bound frame's vpn must have a
    // valid PTE pointing back at the frame.)
    for (FrameNum f = frames.FirstPageable(); f < frames.NumTotal(); ++f) {
        const GlobalVpn vpn = frames.VpnOf(f);
        if (vpn == mem::kNoVpn) {
            continue;
        }
        const pt::Pte* pte = table.Find(vpn);
        ASSERT_NE(pte, nullptr);
        ASSERT_TRUE(pte->valid());
        ASSERT_EQ(pte->pfn(), f);
    }
}

class StressTest : public testing::TestWithParam<DirtyPolicyKind>
{
};

TEST_P(StressTest, RandomOpsPreserveInvariants)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(5);
    SpurSystem system(config, GetParam(), RefPolicyKind::kMiss);
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);

    struct LiveProcess {
        Pid pid;
        uint32_t heap_pages;
    };
    std::vector<LiveProcess> live;

    const uint64_t page = config.page_bytes;
    for (int op = 0; op < 120'000; ++op) {
        const double dice = rng.NextDouble();
        if ((dice < 0.0006 && live.size() < 12) || live.empty()) {
            // Spawn a process with a random-size heap.
            const auto heap_pages =
                static_cast<uint32_t>(32 + rng.NextBelow(480));
            const Pid pid = system.CreateProcess();
            system.MapRegion(pid, kHeapBase, heap_pages * page,
                             vm::PageKind::kHeap);
            live.push_back(LiveProcess{pid, heap_pages});
        } else if (dice < 0.001 && live.size() > 1) {
            // Kill a random process.
            const size_t victim = rng.NextBelow(live.size());
            system.DestroyProcess(live[victim].pid);
            live[victim] = live.back();
            live.pop_back();
        } else {
            // A random access from a random process.
            const LiveProcess& proc = live[rng.NextBelow(live.size())];
            const ProcessAddr addr =
                kHeapBase +
                static_cast<ProcessAddr>(
                    rng.NextBelow(proc.heap_pages) * page +
                    rng.NextBelow(128) * 32);
            const double kind = rng.NextDouble();
            system.Access(proc.pid, addr,
                          kind < 0.3   ? AccessType::kWrite
                          : kind < 0.9 ? AccessType::kRead
                                       : AccessType::kIFetch);
        }
        if (op % 20'000 == 19'999) {
            CheckInvariants(system);
        }
    }
    CheckInvariants(system);

    // Sanity: the run actually exercised the interesting machinery.
    const auto& ev = system.events();
    EXPECT_GT(ev.Get(sim::Event::kPageFault), 0u);
    EXPECT_GT(ev.Get(sim::Event::kDirtyFault), 0u);
    EXPECT_GT(ev.Get(sim::Event::kDaemonSweep), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, StressTest,
                         testing::Values(DirtyPolicyKind::kMin,
                                         DirtyPolicyKind::kFault,
                                         DirtyPolicyKind::kFlush,
                                         DirtyPolicyKind::kSpur,
                                         DirtyPolicyKind::kWrite,
                                         DirtyPolicyKind::kSpurProt,
                                         DirtyPolicyKind::kWriteHw),
                         [](const auto& info) {
                             std::string name = policy::ToString(info.param);
                             for (char& c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST(StressRefPolicyTest, AllRefPoliciesSurviveChurn)
{
    for (const RefPolicyKind ref :
         {RefPolicyKind::kMiss, RefPolicyKind::kRef,
          RefPolicyKind::kNoRef}) {
        sim::MachineConfig config = sim::MachineConfig::Prototype(5);
        SpurSystem system(config, DirtyPolicyKind::kFault, ref);
        const Pid pid = system.CreateProcess();
        const uint64_t page = config.page_bytes;
        const uint64_t pages = config.NumFrames() + 512;
        system.MapRegion(pid, kHeapBase, pages * page,
                         vm::PageKind::kHeap);
        Rng rng(11);
        for (int i = 0; i < 200'000; ++i) {
            const ProcessAddr addr =
                kHeapBase + static_cast<ProcessAddr>(
                                rng.NextBelow(pages) * page +
                                rng.NextBelow(128) * 32);
            system.Access(pid, addr,
                          rng.Chance(0.25) ? AccessType::kWrite
                                           : AccessType::kRead);
        }
        CheckInvariants(system);
        EXPECT_GT(system.events().Get(sim::Event::kPageOutDirty), 0u)
            << ToString(ref);
    }
}

}  // namespace
}  // namespace spur::core

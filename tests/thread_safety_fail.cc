// Compile-SHOULD-FAIL probe for the thread-safety annotations
// (DESIGN.md §13).  This file is deliberately mis-locked: it writes a
// SPUR_GUARDED_BY member without holding its mutex.  Under clang with
// -Wthread-safety -Werror it must NOT compile; the thread_safety_fail
// ctest entry builds it on demand and asserts the build fails
// (WILL_FAIL).  It is EXCLUDE_FROM_ALL and never part of spur_tests.
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

struct Counter {
    spur::Mutex mutex;
    int value SPUR_GUARDED_BY(mutex) = 0;
};

}  // namespace

int
main()
{
    Counter counter;
    counter.value = 1;  // BUG: guarded write without holding the mutex.
    return counter.value;
}

/**
 * @file
 * Tests for the five dirty-bit policies and three reference-bit policies:
 * the exact fault/miss/check semantics of Section 3 and 4, including the
 * fast paths, cost charging and event classification.
 */
#include <gtest/gtest.h>

#include <memory>

#include "src/cache/cache.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/pte.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::policy {
namespace {

class DirtyPolicyTest : public testing::TestWithParam<DirtyPolicyKind>
{
  protected:
    DirtyPolicyTest()
        : config_(sim::MachineConfig::Prototype(8)),
          vcache_(config_),
          policy_(MakeDirtyPolicy(GetParam(), vcache_, config_))
    {
    }

    /** A clean writable page's PTE as the VM would install it. */
    pt::Pte CleanWritablePte() const
    {
        pt::Pte pte;
        pte.set_valid(true);
        pte.set_writable_intent(true);
        pte.set_protection(policy_->ResidentProtection(true));
        return pte;
    }

    /** A line filled from @p pte (the Fill copy semantics). */
    cache::Line LineFrom(const pt::Pte& pte) const
    {
        cache::Line line;
        line.prot = pte.protection();
        line.page_dirty = pte.dirty();
        line.state = cache::CoherencyState::kUnOwned;
        return line;
    }

    sim::MachineConfig config_;
    cache::VirtualCache vcache_;
    std::unique_ptr<DirtyPolicy> policy_;
    sim::EventCounts events_;
};

TEST_P(DirtyPolicyTest, KindRoundTrips)
{
    EXPECT_EQ(policy_->kind(), GetParam());
    EXPECT_EQ(ParseDirtyPolicy(ToString(GetParam())), GetParam());
}

TEST_P(DirtyPolicyTest, FirstWriteMissIsExactlyOneNecessaryFault)
{
    pt::Pte pte = CleanWritablePte();
    const DirtyCost cost = policy_->OnWriteMiss(0x1000, pte, events_);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(cost.fault_cycles, config_.t_fault);
    EXPECT_TRUE(policy_->IsPageDirty(pte));
    // A second write miss to the now-dirty page is free.
    const DirtyCost again = policy_->OnWriteMiss(0x1020, pte, events_);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(again.fault_cycles, 0u);
}

TEST_P(DirtyPolicyTest, ZeroFillFaultsAreClassified)
{
    pt::Pte pte = CleanWritablePte();
    pte.set_zfod_clean(true);
    policy_->OnWriteMiss(0x1000, pte, events_);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFaultZfod), 1u);
    EXPECT_FALSE(pte.zfod_clean());  // Marker consumed.
}

TEST_P(DirtyPolicyTest, FastPathHoldsAfterPageDirtyAndBlockWritten)
{
    // Once the page is dirty and the line refreshed, subsequent writes to
    // the same block take the hardware fast path under every policy.
    pt::Pte pte = CleanWritablePte();
    cache::LineBuf line(LineFrom(pte));
    const DirtyCost first =
        policy_->OnWriteHit(line.ref(), 0x1000, pte, events_);
    (void)first;
    if (policy_->kind() == DirtyPolicyKind::kFlush) {
        // FLUSH invalidated the line; refill from the updated PTE.
        line = cache::LineBuf(LineFrom(pte));
    }
    cache::VirtualCache::MarkWritten(line.ref());
    EXPECT_TRUE(policy_->WriteHitFastPath(line.cref()));
}

TEST_P(DirtyPolicyTest, DirtyPageFillsTakeTheFastPathImmediately)
{
    // Blocks brought in *after* the page became dirty carry the dirty
    // state (or read-write protection) and never trip the policy. The
    // WRITE policy is the exception: it checks once per block regardless.
    pt::Pte pte = CleanWritablePte();
    policy_->OnWriteMiss(0x1000, pte, events_);  // Dirties the page.
    cache::LineBuf line(LineFrom(pte));
    if (policy_->kind() == DirtyPolicyKind::kWrite) {
        EXPECT_FALSE(policy_->WriteHitFastPath(line.cref()));
    } else {
        EXPECT_TRUE(policy_->WriteHitFastPath(line.cref()));
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DirtyPolicyTest,
                         testing::Values(DirtyPolicyKind::kMin,
                                         DirtyPolicyKind::kFault,
                                         DirtyPolicyKind::kFlush,
                                         DirtyPolicyKind::kSpur,
                                         DirtyPolicyKind::kWrite),
                         [](const auto& info) {
                             return ToString(info.param);
                         });

// ---------------------------------------------------------------------------
// Policy-specific semantics.
// ---------------------------------------------------------------------------

class PolicyFixture : public testing::Test
{
  protected:
    PolicyFixture() : config_(sim::MachineConfig::Prototype(8)),
                      vcache_(config_) {}

    std::unique_ptr<DirtyPolicy> Make(DirtyPolicyKind kind)
    {
        return MakeDirtyPolicy(kind, vcache_, config_);
    }

    sim::MachineConfig config_;
    cache::VirtualCache vcache_;
    sim::EventCounts events_;
};

TEST_F(PolicyFixture, FaultInitialProtectionIsReadOnly)
{
    auto policy = Make(DirtyPolicyKind::kFault);
    EXPECT_EQ(policy->ResidentProtection(true), Protection::kReadOnly);
    auto spur = Make(DirtyPolicyKind::kSpur);
    EXPECT_EQ(spur->ResidentProtection(true), Protection::kReadWrite);
}

TEST_F(PolicyFixture, FaultExcessFaultOnStaleLine)
{
    auto policy = Make(DirtyPolicyKind::kFault);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadOnly);

    // Two blocks cached while the page was read-only.
    cache::LineBuf line_a(cache::Line{0, Protection::kReadOnly,
                                      cache::CoherencyState::kUnOwned,
                                      false, false});
    cache::LineBuf line_b = line_a;

    const DirtyCost first =
        policy->OnWriteHit(line_a.ref(), 0x0, pte, events_);
    EXPECT_EQ(first.fault_cycles, config_.t_fault);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFault), 1u);
    EXPECT_EQ(events_.Get(sim::Event::kExcessFault), 0u);
    EXPECT_EQ(pte.protection(), Protection::kReadWrite);
    // Handler refreshed.
    EXPECT_EQ(line_a.Get().prot, Protection::kReadWrite);

    // The second previously cached block still faults: the excess fault.
    const DirtyCost second =
        policy->OnWriteHit(line_b.ref(), 0x20, pte, events_);
    EXPECT_EQ(second.fault_cycles, config_.t_fault);
    EXPECT_EQ(events_.Get(sim::Event::kExcessFault), 1u);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFault), 1u);  // Unchanged.
}

TEST_F(PolicyFixture, FaultUsesSoftwareDirtyBit)
{
    auto policy = Make(DirtyPolicyKind::kFault);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadOnly);
    EXPECT_FALSE(policy->IsPageDirty(pte));
    policy->OnWriteMiss(0x0, pte, events_);
    EXPECT_TRUE(pte.soft_dirty());
    EXPECT_FALSE(pte.dirty());  // The hardware D bit is not used.
    EXPECT_TRUE(policy->IsPageDirty(pte));
}

TEST_F(PolicyFixture, FlushPreventsExcessFaults)
{
    auto policy = Make(DirtyPolicyKind::kFlush);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadOnly);

    // Cache two blocks of the page (read-only copies).
    const GlobalAddr page = 0x10000;
    vcache_.Fill(page, Protection::kReadOnly, false, nullptr);
    vcache_.Fill(page + 32, Protection::kReadOnly, false, nullptr);
    cache::LineRef line_a = vcache_.Lookup(page);
    ASSERT_TRUE(line_a);

    const DirtyCost cost = policy->OnWriteHit(line_a, page, pte, events_);
    EXPECT_EQ(cost.fault_cycles, config_.t_fault);
    EXPECT_EQ(cost.flush_cycles, config_.t_flush_page);
    EXPECT_TRUE(cost.line_invalidated);
    // Every block of the page is gone: no stale copies can remain.
    EXPECT_FALSE(vcache_.Lookup(page));
    EXPECT_FALSE(vcache_.Lookup(page + 32));
    EXPECT_EQ(events_.Get(sim::Event::kExcessFault), 0u);
}

TEST_F(PolicyFixture, FlushOnWriteMissAlsoFlushes)
{
    auto policy = Make(DirtyPolicyKind::kFlush);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadOnly);
    const GlobalAddr page = 0x20000;
    vcache_.Fill(page + 64, Protection::kReadOnly, false, nullptr);
    const DirtyCost cost = policy->OnWriteMiss(page, pte, events_);
    EXPECT_EQ(cost.flush_cycles, config_.t_flush_page);
    EXPECT_FALSE(vcache_.Lookup(page + 64));
}

TEST_F(PolicyFixture, SpurDirtyBitMissRefreshesStaleCopy)
{
    auto policy = Make(DirtyPolicyKind::kSpur);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadWrite);
    pte.set_dirty(true);  // Page already dirty...

    // ...but this copy is stale.
    cache::LineBuf line(cache::Line{0, Protection::kReadWrite,
                                    cache::CoherencyState::kUnOwned,
                                    /*page_dirty=*/false,
                                    /*block_dirty=*/false});

    const DirtyCost cost = policy->OnWriteHit(line.ref(), 0x0, pte, events_);
    EXPECT_EQ(cost.fault_cycles, 0u);
    EXPECT_EQ(cost.aux_cycles, config_.t_dirty_miss);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyBitMiss), 1u);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyFault), 0u);
    EXPECT_TRUE(line.Get().page_dirty);
}

TEST_F(PolicyFixture, SpurNecessaryFaultCostsFaultPlusDirtyMiss)
{
    // O(SPUR) charges t_ds + t_dm per necessary fault: the fault plus the
    // forced miss that refreshes the cached copy.
    auto policy = Make(DirtyPolicyKind::kSpur);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadWrite);
    cache::LineBuf line(cache::Line{0, Protection::kReadWrite,
                                    cache::CoherencyState::kUnOwned,
                                    false, false});
    const DirtyCost cost = policy->OnWriteHit(line.ref(), 0x0, pte, events_);
    EXPECT_EQ(cost.fault_cycles, config_.t_fault);
    EXPECT_EQ(cost.aux_cycles, config_.t_dirty_miss);
    EXPECT_TRUE(pte.dirty());
    EXPECT_TRUE(line.Get().page_dirty);
}

TEST_F(PolicyFixture, WriteChecksOncePerBlock)
{
    auto policy = Make(DirtyPolicyKind::kWrite);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadWrite);
    pte.set_dirty(true);  // Page already dirty: checks still happen.

    cache::LineBuf line(cache::Line{0, Protection::kReadWrite,
                                    cache::CoherencyState::kUnOwned,
                                    true, false});
    const DirtyCost cost = policy->OnWriteHit(line.ref(), 0x0, pte, events_);
    EXPECT_EQ(cost.aux_cycles, config_.t_dirty_check);
    EXPECT_EQ(cost.fault_cycles, 0u);  // Page already dirty: no fault.
    EXPECT_EQ(events_.Get(sim::Event::kDirtyCheck), 1u);
    // Once the block is written, no further checks.
    cache::VirtualCache::MarkWritten(line.ref());
    EXPECT_TRUE(policy->WriteHitFastPath(line.cref()));
}

TEST_F(PolicyFixture, WriteMissCheckIsFree)
{
    // "When a write misses in the cache, the controller must examine the
    // PTE... so checking the dirty bit incurs no additional penalty."
    auto policy = Make(DirtyPolicyKind::kWrite);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadWrite);
    pte.set_dirty(true);
    const DirtyCost cost = policy->OnWriteMiss(0x0, pte, events_);
    EXPECT_EQ(cost.aux_cycles, 0u);
    EXPECT_EQ(cost.fault_cycles, 0u);
}

TEST_F(PolicyFixture, MinChargesOnlyNecessaryFaults)
{
    auto policy = Make(DirtyPolicyKind::kMin);
    pt::Pte pte;
    pte.set_valid(true);
    pte.set_writable_intent(true);
    pte.set_protection(Protection::kReadWrite);
    pte.set_dirty(true);
    cache::LineBuf line(cache::Line{0, Protection::kReadWrite,
                                    cache::CoherencyState::kUnOwned,
                                    false, false});
    // Stale cached copy under MIN refreshes for free.
    const DirtyCost cost = policy->OnWriteHit(line.ref(), 0x0, pte, events_);
    EXPECT_EQ(cost.fault_cycles, 0u);
    EXPECT_EQ(cost.aux_cycles, 0u);
    EXPECT_EQ(events_.Get(sim::Event::kDirtyBitMiss), 0u);
    EXPECT_TRUE(line.Get().page_dirty);
}

TEST_F(PolicyFixture, ParseRejectsUnknownNames)
{
    EXPECT_EXIT(ParseDirtyPolicy("bogus"), testing::ExitedWithCode(1),
                "unknown dirty policy");
    EXPECT_EXIT(ParseRefPolicy("bogus"), testing::ExitedWithCode(1),
                "unknown ref policy");
    EXPECT_EQ(ParseDirtyPolicy("fault"), DirtyPolicyKind::kFault);
    EXPECT_EQ(ParseRefPolicy("noref"), RefPolicyKind::kNoRef);
}

// ---------------------------------------------------------------------------
// Reference-bit policies.
// ---------------------------------------------------------------------------

class RefPolicyTest : public PolicyFixture
{
  protected:
    std::unique_ptr<RefPolicy> MakeRef(RefPolicyKind kind)
    {
        return MakeRefPolicy(kind, vcache_, config_);
    }
};

TEST_F(RefPolicyTest, MissPolicyFaultsToSetTheBit)
{
    auto policy = MakeRef(RefPolicyKind::kMiss);
    pt::Pte pte;
    pte.set_valid(true);
    const RefCost cost = policy->OnCacheMiss(pte, events_);
    EXPECT_EQ(cost.fault_cycles, config_.t_fault);
    EXPECT_TRUE(pte.referenced());
    EXPECT_EQ(events_.Get(sim::Event::kRefFault), 1u);
    // Set bit: no further faults.
    const RefCost again = policy->OnCacheMiss(pte, events_);
    EXPECT_EQ(again.fault_cycles, 0u);
    EXPECT_EQ(events_.Get(sim::Event::kRefFault), 1u);
}

TEST_F(RefPolicyTest, MissPolicyClearDoesNotFlush)
{
    auto policy = MakeRef(RefPolicyKind::kMiss);
    pt::Pte pte;
    pte.set_referenced(true);
    const GlobalAddr page = 0x30000;
    vcache_.Fill(page, Protection::kReadWrite, false, nullptr);
    const RefCost cost = policy->ClearRefBit(pte, page, events_);
    EXPECT_FALSE(pte.referenced());
    EXPECT_EQ(cost.flush_cycles, 0u);
    EXPECT_EQ(cost.kernel_cycles, config_.t_ref_clear);
    EXPECT_TRUE(vcache_.Lookup(page));  // Still cached: the MISS
                                        // policy's inaccuracy.
    EXPECT_TRUE(policy->ReadRefBit(pt::Pte{pte.raw() | pt::Pte::kRefBit}));
}

TEST_F(RefPolicyTest, TrueRefPolicyFlushesOnClear)
{
    auto policy = MakeRef(RefPolicyKind::kRef);
    pt::Pte pte;
    pte.set_referenced(true);
    const GlobalAddr page = 0x40000;
    vcache_.Fill(page, Protection::kReadWrite, false, nullptr);
    vcache_.Fill(page + 32, Protection::kReadWrite, false, nullptr);
    const RefCost cost = policy->ClearRefBit(pte, page, events_);
    EXPECT_EQ(cost.flush_cycles, config_.t_flush_page);
    EXPECT_FALSE(vcache_.Lookup(page));
    EXPECT_FALSE(vcache_.Lookup(page + 32));
    EXPECT_EQ(events_.Get(sim::Event::kRefClearFlush), 1u);
    // The next access must miss and re-set the bit: true reference bits.
}

TEST_F(RefPolicyTest, NoRefPolicyIsInert)
{
    auto policy = MakeRef(RefPolicyKind::kNoRef);
    pt::Pte pte;
    pte.set_referenced(true);  // Hardware bit left permanently set.
    const RefCost miss_cost = policy->OnCacheMiss(pte, events_);
    EXPECT_EQ(miss_cost.fault_cycles, 0u);
    EXPECT_EQ(events_.Get(sim::Event::kRefFault), 0u);
    // Reads always say "unreferenced"; clears change nothing.
    EXPECT_FALSE(policy->ReadRefBit(pte));
    const RefCost clear_cost = policy->ClearRefBit(pte, 0x0, events_);
    EXPECT_EQ(clear_cost.kernel_cycles, 0u);
    EXPECT_TRUE(pte.referenced());  // Untouched.
    EXPECT_EQ(events_.Get(sim::Event::kRefClear), 0u);
}

TEST_F(RefPolicyTest, KindNames)
{
    EXPECT_STREQ(ToString(RefPolicyKind::kMiss), "MISS");
    EXPECT_STREQ(ToString(RefPolicyKind::kRef), "REF");
    EXPECT_STREQ(ToString(RefPolicyKind::kNoRef), "NOREF");
}

}  // namespace
}  // namespace spur::policy

// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: no-wallclock.
#include <chrono>

double
Now()
{
    const auto now = std::chrono::system_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: no-locale.
#include <clocale>

void
UseUserLocale()
{
    setlocale(LC_ALL, "");
}

// Clean fixture for tests/lint_test.cc: a justified suppression comment
// on the preceding line silences the finding.
int
JustifiedNoise()
{
    // spur-lint: allow(no-rand) — fixture proving suppressions work
    return rand();
}

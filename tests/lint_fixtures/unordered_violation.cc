// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: no-unordered-output.  Including the table
// header marks it as output-feeding.  (Fixtures are linted, never
// compiled, so the missing container include does not matter.)
#include "src/common/table.h"

int
CountEntries(const std::unordered_map<int, int>& histogram)
{
    return static_cast<int>(histogram.size());
}

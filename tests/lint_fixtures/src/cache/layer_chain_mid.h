// Middle hop of the seeded transitive layering chain: a cache-layer
// header that itself includes the forbidden subsystem.  Linted
// together with layer_chain.cc it yields two findings — one for this
// header (two-hop chain) and one for the .cc (three-hop chain).
#ifndef SPUR_TESTS_LINT_FIXTURES_LAYER_CHAIN_MID_H_
#define SPUR_TESTS_LINT_FIXTURES_LAYER_CHAIN_MID_H_

#include "src/runner/thread_pool.h"

namespace spur::cache {

unsigned SeededMidHop();

}  // namespace spur::cache

#endif  // SPUR_TESTS_LINT_FIXTURES_LAYER_CHAIN_MID_H_

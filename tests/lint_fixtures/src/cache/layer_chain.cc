// Top of the seeded transitive layering chain: this file's only
// include is same-subsystem (allowed), but that header reaches the
// forbidden runner subsystem, so the violation must report the full
// three-hop chain
//   src/cache/layer_chain.cc -> src/cache/layer_chain_mid.h
//     -> src/runner/thread_pool.h
// anchored at the first hop's include line in THIS file.
#include "src/cache/layer_chain_mid.h"

namespace spur::cache {

unsigned
SeededChainTop()
{
    return SeededMidHop();
}

}  // namespace spur::cache

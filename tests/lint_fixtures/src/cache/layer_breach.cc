// Seeded layering violation: a machine-layer file (normalized path
// src/cache/...) reaching directly into the orchestration layer.
// cache's LAYERS.toml closure is {cache, common, sim}; runner is
// forbidden, so the include below must produce exactly one layering
// finding with a two-hop chain.
#include "src/runner/thread_pool.h"

namespace spur::cache {

unsigned
SeededBreach()
{
    return runner::HardwareJobs();
}

}  // namespace spur::cache

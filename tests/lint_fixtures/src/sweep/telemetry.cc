// Clean fixture for tests/lint_test.cc: wall-clock reads are legitimate
// here — the path normalizes to src/sweep/telemetry.cc, which is on the
// no-wallclock whitelist (telemetry measures the simulator itself and
// never feeds result bytes).
#include <chrono>

double
MonotonicSeconds()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

// Clean fixture: the scoped allow used by src/serve/proto.cc.  The
// clock read feeds connection deadlines only — scheduling, never result
// bytes — so the marker on the line above the read silences the rule
// without widening any whitelist.
#include <chrono>

namespace spur::serve {

long
NowMs()
{
    // Connection deadlines are scheduling, not data.
    // spur-lint: allow(no-wallclock)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now.time_since_epoch())
        .count();
}

}  // namespace spur::serve

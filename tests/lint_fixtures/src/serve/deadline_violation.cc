// Seeded fixture: serve code reading the monotonic clock WITHOUT the
// scoped allow marker must still fire no-wallclock.  Connection
// deadlines are the only sanctioned use in src/serve/, and only behind
// the marker (see src/serve/proto.cc).
#include <chrono>

namespace spur::serve {

long
NowMs()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now.time_since_epoch())
        .count();
}

}  // namespace spur::serve

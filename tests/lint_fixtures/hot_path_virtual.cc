// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: no-virtual-in-hot-path.
//
// The marker below opts this file into the devirtualized-hot-path
// contract; the virtual member then violates it.  Mentions of the
// keyword in comments (like this one: virtual) must NOT count — only
// the code token does.

// spur:hot-path

class Policy
{
  public:
    virtual int Charge(int cycles) { return cycles; }
};

// Seeded allow-budget violation: three LIVE no-locale suppressions
// against a tree-wide budget of two.  Each marker genuinely
// suppresses a finding (so dead-allow stays quiet); the third site is
// the one past the budget and must be the single finding.
#include <clocale>

namespace spur::fixture {

void
FirstLegacySite()
{
    setlocale(LC_ALL, "C");  // spur-lint: allow(no-locale) legacy tool
}

void
SecondLegacySite()
{
    setlocale(LC_ALL, "C");  // spur-lint: allow(no-locale) legacy tool
}

void
ThirdLegacySite()
{
    setlocale(LC_ALL, "C");  // spur-lint: allow(no-locale) one too many
}

}  // namespace spur::fixture

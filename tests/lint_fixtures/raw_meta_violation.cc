// Seeded violation: decodes a packed cache-line meta byte with the raw
// bit constants outside src/cache/cache.* — the layout is private to
// the cache layer; callers go through LineRef/ConstLineRef.
#include <cstdint>

namespace meta {
inline constexpr uint8_t kStateMask = 0x03;
}

bool
IsCached(uint8_t meta_byte)
{
    return (meta_byte & meta::kStateMask) != 0;
}

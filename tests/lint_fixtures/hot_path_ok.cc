// Clean fixture for tests/lint_test.cc: a marked hot-path file stays
// clean when every virtual site is either absent, only mentioned in
// comments, part of a longer identifier, or justified with allow().

// spur:hot-path

// Identifiers merely containing the keyword are fine (boundary check).
class VirtualCacheView
{
  public:
    int virtual_index = 0;  // suffix boundary: not the keyword
};

class Destructible
{
  public:
    // spur-lint: allow(no-virtual-in-hot-path) — cold teardown only
    virtual ~Destructible() = default;
};

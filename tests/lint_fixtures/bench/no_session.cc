// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: bench-session.  The directory name makes
// it normalize to bench/no_session.cc, where main() without
// runner::BenchSession is a violation.
#include <cstdio>

int
main()
{
    std::printf("raw bytes that --json, --shard and spur_sweep never see\n");
    return 0;
}

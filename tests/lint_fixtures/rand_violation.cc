// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: no-rand.
int
NoisySeed()
{
    return rand();
}

// Seeded lock-order violation: two functions acquire the same two
// global locks in opposite orders — the classic AB/BA deadlock.  The
// scanner must emit edges g_first -> g_second and g_second -> g_first,
// and the cycle check must report exactly one finding naming both
// witnessing sites.
#include "src/common/mutex.h"

namespace spur::fixture {

spur::Mutex g_first;
spur::Mutex g_second;
int g_shared = 0;

void
ForwardOrder()
{
    MutexLock outer(g_first);
    MutexLock inner(g_second);
    ++g_shared;
}

void
ReverseOrder()
{
    MutexLock outer(g_second);
    MutexLock inner(g_first);
    --g_shared;
}

}  // namespace spur::fixture

// Clean fixture for tests/lint_test.cc: deterministic code, plus
// comments that merely *mention* rand() and std::chrono::system_clock —
// mentions in comments must not trip the token rules.
#include <cstdint>

uint64_t
NextState(uint64_t state)
{
    /* A fixed-point LCG step; nothing like rand() or setlocale here. */
    return state * 6364136223846793005ull + 1442695040888963407ull;
}

// Seeded dead-allow violation: the marker below suppresses nothing on
// its own or the following line, so the hygiene pass must demand its
// deletion.
namespace spur::fixture {

// spur-lint: allow(no-rand) — stale: the rand() call moved away
int
Nothing()
{
    return 7;
}

}  // namespace spur::fixture

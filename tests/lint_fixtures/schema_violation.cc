// Seeded violation corpus for tests/lint_test.cc — this file must trip
// exactly one spur_lint rule: schema-version-once (a definition outside
// src/stats/run_record.h).
inline constexpr int kSchemaVersion = 2;

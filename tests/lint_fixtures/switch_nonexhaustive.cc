// Seeded exhaustive-switch violation: a defaultless switch over a
// scoped enum that skips one enumerator.  The compiler only enforces
// -Wswitch on code it actually compiles; the lint pass must flag this
// even though no build target includes the file.
namespace spur::fixture {

enum class Phase {
    kFill,
    kDrain,
    kSettle,
};

int
Step(Phase phase)
{
    switch (phase) {
        case Phase::kFill:
            return 1;
        case Phase::kDrain:
            return -1;
    }
    return 0;
}

}  // namespace spur::fixture

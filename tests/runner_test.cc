/**
 * @file
 * Tests for the run-orchestration layer (src/runner/): the determinism
 * contract (parallel results bit-identical to sequential), progress
 * callback delivery, exception safety of the pool, and the thread pool
 * itself.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/runner/thread_pool.h"

namespace spur::runner {
namespace {

core::RunConfig
SmallRun()
{
    core::RunConfig config;
    config.workload = core::WorkloadId::kSlc;
    config.memory_mb = 8;
    config.refs = 150'000;
    config.seed = 5;
    return config;
}

std::vector<core::RunConfig>
SmallMatrix()
{
    std::vector<core::RunConfig> configs(2, SmallRun());
    configs[1].ref = policy::RefPolicyKind::kNoRef;
    return configs;
}

/** Field-by-field bit equality of two run results. */
void
ExpectIdentical(const core::RunResult& a, const core::RunResult& b)
{
    EXPECT_EQ(a.refs_issued, b.refs_issued);
    EXPECT_EQ(a.page_ins, b.page_ins);
    EXPECT_EQ(a.page_outs, b.page_outs);
    EXPECT_EQ(a.events.TotalRefs(), b.events.TotalRefs());
    EXPECT_EQ(a.events.TotalMisses(), b.events.TotalMisses());
    EXPECT_EQ(a.frequencies.n_ds, b.frequencies.n_ds);
    EXPECT_EQ(a.frequencies.n_zfod, b.frequencies.n_zfod);
    EXPECT_EQ(a.frequencies.n_ef, b.frequencies.n_ef);
    EXPECT_EQ(a.frequencies.n_w_hit, b.frequencies.n_w_hit);
    EXPECT_EQ(a.frequencies.n_w_miss, b.frequencies.n_w_miss);
    // Timing accumulates in deterministic integer cycle counts, so even
    // the floating-point seconds must match exactly.
    EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
    for (size_t i = 0; i < a.bucket_seconds.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.bucket_seconds[i], b.bucket_seconds[i]);
    }
}

TEST(RunnerTest, ParallelMatrixBitIdenticalToSequential)
{
    const auto configs = SmallMatrix();
    const auto sequential = RunMatrix(configs, /*reps=*/2,
                                      /*shuffle_seed=*/9, /*jobs=*/1);
    const auto parallel = RunMatrix(configs, /*reps=*/2,
                                    /*shuffle_seed=*/9, /*jobs=*/4);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
        ASSERT_EQ(sequential[i].size(), parallel[i].size());
        for (size_t r = 0; r < sequential[i].size(); ++r) {
            ExpectIdentical(sequential[i][r], parallel[i][r]);
        }
    }
}

TEST(RunnerTest, DefaultJobCountMatchesExplicitJobCount)
{
    // jobs=0 (the process-wide default) agrees with an explicit
    // parallel run: callers inheriting the --jobs flag get the same
    // bytes as callers picking a count by hand.
    const auto configs = SmallMatrix();
    const auto via_default = RunMatrix(configs, /*reps=*/1,
                                       /*shuffle_seed=*/9, /*jobs=*/0);
    const auto via_explicit = RunMatrix(configs, /*reps=*/1,
                                        /*shuffle_seed=*/9, /*jobs=*/3);
    for (size_t i = 0; i < via_default.size(); ++i) {
        ExpectIdentical(via_default[i][0], via_explicit[i][0]);
    }
}

TEST(RunnerTest, ProgressFiresExactlyOncePerCell)
{
    const auto configs = SmallMatrix();
    std::set<std::pair<size_t, uint32_t>> seen;
    int calls = 0;
    RunMatrix(configs, /*reps=*/3, /*shuffle_seed=*/1, /*jobs=*/4,
              [&](const Cell& cell) {
                  ++calls;
                  seen.insert({cell.config_index, cell.rep});
              });
    EXPECT_EQ(calls, 6);
    EXPECT_EQ(seen.size(), 6u);  // Every (config, rep) pair, no repeats.
}

TEST(RunnerTest, ProgressRunsOnTheCallingThread)
{
    const auto caller = std::this_thread::get_id();
    bool checked = false;
    RunMatrix({SmallRun()}, /*reps=*/2, /*shuffle_seed=*/1, /*jobs=*/2,
              [&](const Cell&) {
                  EXPECT_EQ(std::this_thread::get_id(), caller);
                  checked = true;
              });
    EXPECT_TRUE(checked);
}

TEST(RunnerTest, ProgressSeesDerivedCellSeed)
{
    RunMatrix({SmallRun()}, /*reps=*/2, /*shuffle_seed=*/1, /*jobs=*/2,
              [&](const Cell& cell) {
                  EXPECT_EQ(cell.config.seed,
                            CellSeed(SmallRun().seed, cell.rep));
              });
}

TEST(RunnerTest, CellSeedMatchesHistoricalDerivation)
{
    // The derivation the sequential RunMatrix always used; changing it
    // would silently shift every recorded experiment result.
    EXPECT_EQ(CellSeed(1, 0), 1u * 1000003 + 17);
    EXPECT_EQ(CellSeed(1, 2), 1u * 1000003 + 2 * 7919 + 17);
    EXPECT_EQ(CellSeed(42, 1), 42u * 1000003 + 7919 + 17);
}

TEST(RunnerTest, RunAllPreservesInputOrderAndSeeds)
{
    std::vector<core::RunConfig> configs(3, SmallRun());
    configs[1].seed = 6;
    configs[2].memory_mb = 5;
    const auto parallel = RunAll(configs, /*jobs=*/3);
    ASSERT_EQ(parallel.size(), 3u);
    for (size_t i = 0; i < configs.size(); ++i) {
        ExpectIdentical(parallel[i], core::RunOnce(configs[i]));
    }
}

TEST(RunnerTest, ThrowingCellDoesNotDeadlockAndRethrows)
{
    std::atomic<int> executed{0};
    EXPECT_THROW(
        ParallelFor(8, /*jobs=*/4,
                    [&](size_t i) {
                        ++executed;
                        if (i == 3) {
                            throw std::runtime_error("cell failed");
                        }
                    }),
        std::runtime_error);
    // Every other cell still ran; the pool drained instead of hanging.
    EXPECT_EQ(executed.load(), 8);
}

TEST(RunnerTest, FirstExceptionInIndexOrderWins)
{
    try {
        ParallelFor(6, /*jobs=*/3, [](size_t i) {
            if (i == 2 || i == 5) {
                throw std::runtime_error("cell " + std::to_string(i));
            }
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "cell 2");
    }
}

TEST(RunnerTest, PoolUsableAfterAnException)
{
    EXPECT_THROW(ParallelFor(2, /*jobs=*/2,
                             [](size_t) {
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    std::atomic<int> count{0};
    ParallelFor(16, /*jobs=*/4, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        for (int i = 0; i < 100; ++i) {
            pool.Submit([&count] { ++count; });
        }
    }  // Destructor drains the queue before joining.
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, DefaultJobsFollowsOverride)
{
    const unsigned hardware = HardwareJobs();
    EXPECT_GE(hardware, 1u);
    SetDefaultJobs(3);
    EXPECT_EQ(DefaultJobs(), 3u);
    SetDefaultJobs(0);  // Restore the hardware default.
    EXPECT_EQ(DefaultJobs(), hardware);
}

}  // namespace
}  // namespace spur::runner

/**
 * @file
 * Tests for the Figure 3.2(a) PTE format: field packing, independence of
 * bits, and the software-bit extensions used by the FAULT emulation.
 */
#include <gtest/gtest.h>

#include "src/pt/pte.h"

namespace spur::pt {
namespace {

TEST(PteTest, DefaultIsAllZero)
{
    Pte pte;
    EXPECT_EQ(pte.raw(), 0u);
    EXPECT_FALSE(pte.valid());
    EXPECT_FALSE(pte.dirty());
    EXPECT_FALSE(pte.referenced());
    EXPECT_FALSE(pte.soft_dirty());
    EXPECT_FALSE(pte.zfod_clean());
    EXPECT_EQ(pte.protection(), Protection::kNone);
    EXPECT_EQ(pte.pfn(), 0u);
}

TEST(PteTest, PfnRoundTrips)
{
    Pte pte;
    pte.set_pfn(0xABCDE);
    EXPECT_EQ(pte.pfn(), 0xABCDEu);
    // The PFN must not disturb the low control bits.
    EXPECT_FALSE(pte.valid());
    EXPECT_EQ(pte.protection(), Protection::kNone);
}

TEST(PteTest, PfnOccupiesHighBits)
{
    Pte pte;
    pte.set_pfn(1);
    EXPECT_EQ(pte.raw(), uint32_t{1} << Pte::kPfnShift);
}

TEST(PteTest, ProtectionRoundTrips)
{
    Pte pte;
    for (Protection prot : {Protection::kNone, Protection::kReadOnly,
                            Protection::kReadWrite}) {
        pte.set_protection(prot);
        EXPECT_EQ(pte.protection(), prot);
    }
}

TEST(PteTest, FlagBitsAreIndependent)
{
    Pte pte;
    pte.set_pfn(0xFFFFF);
    pte.set_protection(Protection::kReadWrite);
    pte.set_valid(true);
    pte.set_dirty(true);
    pte.set_referenced(true);
    pte.set_cacheable(true);
    pte.set_coherent(true);
    pte.set_soft_dirty(true);
    pte.set_writable_intent(true);
    pte.set_zfod_clean(true);

    // Clear one flag at a time; all others must survive.
    pte.set_dirty(false);
    EXPECT_FALSE(pte.dirty());
    EXPECT_TRUE(pte.valid());
    EXPECT_TRUE(pte.referenced());
    EXPECT_TRUE(pte.soft_dirty());
    EXPECT_TRUE(pte.writable_intent());
    EXPECT_TRUE(pte.zfod_clean());
    EXPECT_EQ(pte.pfn(), 0xFFFFFu);
    EXPECT_EQ(pte.protection(), Protection::kReadWrite);

    pte.set_referenced(false);
    EXPECT_FALSE(pte.referenced());
    EXPECT_TRUE(pte.valid());
    EXPECT_TRUE(pte.cacheable());
    EXPECT_TRUE(pte.coherent());
}

TEST(PteTest, RawConstructorPreservesImage)
{
    Pte a;
    a.set_pfn(0x12345);
    a.set_valid(true);
    a.set_dirty(true);
    Pte b(a.raw());
    EXPECT_EQ(a, b);
    EXPECT_TRUE(b.dirty());
    EXPECT_EQ(b.pfn(), 0x12345u);
}

TEST(PteTest, BitPositionsMatchDocumentedLayout)
{
    // Figure 3.2(a) fields at our documented positions.
    EXPECT_EQ(Pte::kValidBit, 1u << 1);
    EXPECT_EQ(Pte::kRefBit, 1u << 2);
    EXPECT_EQ(Pte::kDirtyBit, 1u << 3);
    EXPECT_EQ(Pte::kCacheBit, 1u << 4);
    EXPECT_EQ(Pte::kCohBit, 1u << 5);
    EXPECT_EQ(Pte::kProtShift, 6u);
    EXPECT_EQ(Pte::kPfnShift, 12u);
    // Software bits sit between protection and the PFN.
    EXPECT_EQ(Pte::kSoftDirtyBit, 1u << 8);
    EXPECT_EQ(Pte::kWritableBit, 1u << 9);
    EXPECT_EQ(Pte::kZfodBit, 1u << 10);
}

}  // namespace
}  // namespace spur::pt

/**
 * @file
 * Concurrency stress tests for the parallel-runner machinery: the thread
 * pool, ParallelFor, RunMatrix's completion queue, and the serialized
 * logger.  These are written for the TSan preset (build-tsan/) — under
 * ThreadSanitizer any data race in the exercised paths fails the test —
 * but they also run in every other build as plain correctness checks.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/runner/thread_pool.h"

namespace spur::runner {
namespace {

TEST(ThreadPoolStressTest, ManySubmittersManyTasks)
{
    // Tasks submitted from several threads (through a feeder pool) into a
    // shared worker pool: exercises the queue's mutex from both sides.
    std::atomic<uint64_t> sum{0};
    {
        ThreadPool workers(4);
        {
            ThreadPool feeders(3);
            for (int f = 0; f < 3; ++f) {
                feeders.Submit([&workers, &sum, f] {
                    for (uint64_t i = 0; i < 2'000; ++i) {
                        workers.Submit([&sum, f, i] {
                            sum.fetch_add(f * 10'000 + i % 7,
                                          std::memory_order_relaxed);
                        });
                    }
                });
            }
        }  // Feeders joined: all 6000 tasks are queued.
    }      // Workers joined: all tasks ran.
    uint64_t expected = 0;
    for (int f = 0; f < 3; ++f) {
        for (uint64_t i = 0; i < 2'000; ++i) {
            expected += f * 10'000 + i % 7;
        }
    }
    EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolStressTest, DestructorDrainsPendingQueue)
{
    // The destructor promises to drain the queue, not discard it; a lost
    // task here would surface as a missed experiment cell in RunMatrix.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 5'000; ++i) {
            pool.Submit([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    EXPECT_EQ(ran.load(), 5'000);
}

TEST(ParallelForStressTest, AllIndicesVisitedExactlyOnce)
{
    constexpr size_t kCount = 10'000;
    std::vector<std::atomic<int>> visits(kCount);
    ParallelFor(kCount, /*jobs=*/8, [&](size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelForStressTest, ExceptionsPropagateWithoutRaces)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(
        ParallelFor(512, /*jobs=*/8,
                    [&](size_t i) {
                        ran.fetch_add(1, std::memory_order_relaxed);
                        if (i % 17 == 3) {
                            throw std::runtime_error("injected");
                        }
                    }),
        std::runtime_error);
    EXPECT_EQ(ran.load(), 512);  // A failure never cancels other items.
}

TEST(LogStressTest, ConcurrentLoggingAndVerbosityToggles)
{
    // Warn/Inform serialize on an internal mutex and SetVerbose flips
    // shared state; hammering them together is the TSan target.  Output
    // goes to stderr, so keep the volume modest.
    SetVerbose(false);
    {
        ThreadPool pool(6);
        for (int t = 0; t < 6; ++t) {
            pool.Submit([t] {
                for (int i = 0; i < 200; ++i) {
                    if (t == 0 && i % 50 == 0) {
                        SetVerbose(i % 100 == 0);
                    } else if (t % 2 == 0) {
                        Inform("stress inform " + std::to_string(i));
                    } else if (i % 100 == 99) {
                        Warn("stress warn " + std::to_string(t));
                    }
                }
            });
        }
    }
    SetVerbose(true);
}

TEST(RunMatrixStressTest, ParallelMatrixMatchesSequential)
{
    // The determinism contract under contention: many small cells, more
    // jobs than cores, progress callbacks firing — bit-identical results
    // at any job count, no races under TSan.
    std::vector<core::RunConfig> configs;
    for (const policy::DirtyPolicyKind dirty :
         {policy::DirtyPolicyKind::kSpur, policy::DirtyPolicyKind::kFault}) {
        core::RunConfig config;
        config.workload = core::WorkloadId::kSlc;
        config.memory_mb = 5;
        config.dirty = dirty;
        config.refs = 60'000;
        configs.push_back(config);
    }

    const auto sequential = RunMatrix(configs, /*reps=*/3,
                                      /*shuffle_seed=*/7, /*jobs=*/1);
    std::atomic<int> cells{0};
    const auto parallel =
        RunMatrix(configs, /*reps=*/3, /*shuffle_seed=*/7, /*jobs=*/6,
                  [&](const Cell&) {
                      cells.fetch_add(1, std::memory_order_relaxed);
                  });
    EXPECT_EQ(cells.load(), 6);

    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
        ASSERT_EQ(sequential[i].size(), parallel[i].size());
        for (size_t r = 0; r < sequential[i].size(); ++r) {
            EXPECT_EQ(sequential[i][r].page_ins, parallel[i][r].page_ins);
            EXPECT_EQ(sequential[i][r].refs_issued,
                      parallel[i][r].refs_issued);
            for (size_t e = 0; e < sim::kNumEvents; ++e) {
                const auto event = static_cast<sim::Event>(e);
                ASSERT_EQ(sequential[i][r].events.Get(event),
                          parallel[i][r].events.Get(event))
                    << sim::ToString(event);
            }
        }
    }
}

}  // namespace
}  // namespace spur::runner

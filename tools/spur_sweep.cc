/**
 * @file
 * Merge/validate tool for distributed sweep output (DESIGN.md §12).
 *
 *   spur_sweep validate FILE...
 *       Schema-checks each sweep JSON document (as written behind
 *       --json) and prints a one-line summary per file.  Exit 1 if any
 *       file fails.
 *
 *   spur_sweep merge [--out=FILE] [--strip-telemetry] FILE...
 *       Merges the shard files of one sweep into a single canonical
 *       document (see src/sweep/merge.h for the contract) and writes it
 *       to --out (default "-" = stdout).  A single input file is
 *       canonicalized in place, which is how CI byte-compares a merged
 *       N-shard sweep against a full single-process run.
 *
 *   spur_sweep diff-telemetry [--threshold=F] [--min-wall=S] BASE NEW
 *       Compares per-cell --telemetry cost (wall clock, peak RSS)
 *       between two sweep documents and reports cells that regressed
 *       by more than the threshold (default +25%).  Exit 1 when any
 *       cell regressed — advisory in CI (non-fatal step), since
 *       telemetry is machine-dependent.  See src/sweep/diff.h.
 *
 *   spur_sweep recover [--out=FILE] STREAM
 *       Turns a --stream file (src/sweep/stream.h) into a sweep JSON
 *       document on --out (default "-" = stdout).  A truncated stream —
 *       the file a killed run leaves behind — recovers every complete
 *       record as a partial document suitable for --resume; a stream
 *       with a verified trailer recovers the exact --json document.
 *       Corruption (anything truncation cannot explain) is a hard
 *       error, exit 1.
 *
 *   spur_sweep submit --socket=PATH --save=FILE [--out=FILE] REQUEST
 *   spur_sweep wait   --socket=PATH --save=FILE [--out=FILE] REQUEST
 *       Client side of the sweep service (DESIGN.md §17).  submit sends
 *       the request to a spur_serve daemon and streams the reply into
 *       --save; on a complete reply it writes the recovered document to
 *       --out and exits 0.  A rejected request exits 3 (reason on
 *       stderr); a torn connection exits 4, leaving --save holding every
 *       byte received so far.  wait is the resume path: it requires
 *       --save to exist (from an earlier torn submit) and re-submits
 *       with that prefix, so the daemon skips the records the client
 *       already holds.  A save file that already carries a verified
 *       trailer completes locally without contacting the daemon.
 *
 *   spur_sweep audit [--strict] FILE...
 *       Re-runs the MIN / NOREF dominance audits over the records of a
 *       (merged) sweep document — the post-hoc audit for sharded sweeps,
 *       which cannot run the in-process matrix audit.  Multiple FILEs
 *       are merged first.  Exit 1 on errors; with --strict, also on
 *       warnings.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/audit/doc_audit.h"
#include "src/common/args.h"
#include "src/serve/client.h"
#include "src/serve/request.h"
#include "src/stats/run_record.h"
#include "src/sweep/diff.h"
#include "src/sweep/merge.h"
#include "src/sweep/stream.h"

namespace {

using spur::IsFlagArg;
using spur::MatchFlag;
using spur::ParsePositiveDouble;
using spur::ParseUnsigned;
using spur::ToolCommand;
using spur::sweep::DiffOptions;
using spur::sweep::DiffTelemetry;
using spur::sweep::FormatDiffReport;
using spur::sweep::HasFatalRegressions;
using spur::sweep::HasRegressions;
using spur::sweep::LoadSweepFile;
using spur::sweep::MergeDocuments;
using spur::sweep::MergeOptions;
using spur::sweep::RecoveredStream;
using spur::sweep::RecoverStreamFile;
using spur::sweep::SweepDocument;
using spur::sweep::TelemetryDiff;
using spur::sweep::ValidateShardAccounting;

int
Usage()
{
    const std::vector<ToolCommand> commands = {
        {"validate FILE...",
         "schema-check sweep JSON documents (--json output) and their "
         "shard cell accounting",
         {}},
        {"merge [options] FILE...",
         "merge the shard files of one sweep into one canonical "
         "document (FILE may be '-' for stdin)",
         {{"--out=FILE", "write the merged document here (default '-')"},
          {"--strip-telemetry", "drop telemetry blocks while merging"}}},
        {"diff-telemetry [options] BASE NEW",
         "compare per-cell wall-clock/RSS telemetry between two "
         "documents; exit 1 on regressions",
         {{"--threshold=F", "regression fraction (default 0.25)"},
          {"--min-wall=S", "ignore cells faster than S seconds"},
          {"--fail-throughput=F",
           "CI perf gate: wall/RSS turn advisory; fail only when refs/s "
           "drops more than F below base"}}},
        {"recover [--out=FILE] STREAM",
         "turn a --stream file (possibly truncated by a crash) into a "
         "sweep document for --resume",
         {{"--out=FILE", "write the document here (default '-')"}}},
        {"submit --socket=PATH --save=FILE [options] REQUEST",
         "send a sweep request to a spur_serve daemon, streaming the "
         "reply into --save; exit 0 complete, 3 rejected, 4 torn",
         {{"--socket=PATH", "daemon Unix-domain socket"},
          {"--save=FILE", "resumable reply stream (kept on tear)"},
          {"--out=FILE", "write the completed document here"},
          {"--timeout-ms=N", "per-read reply timeout (default 60000)"}}},
        {"wait --socket=PATH --save=FILE [options] REQUEST",
         "resume a torn submit: re-send with the records already in "
         "--save so the daemon skips them; same flags and exits",
         {}},
        {"audit [--strict] FILE...",
         "re-run MIN/NOREF dominance audits over (merged) document "
         "records; exit 1 on errors",
         {{"--strict", "also exit 1 on warnings"}}},
    };
    std::cerr << spur::FormatToolUsage(
        "spur_sweep",
        "Sweep document tool: validate, merge and audit distributed "
        "sweep output,\nrecover crashed --stream files, and talk to the "
        "spur_serve sweep service.",
        commands);
    return 2;
}

int
Validate(const std::vector<std::string>& paths)
{
    int failures = 0;
    for (const std::string& path : paths) {
        std::string error;
        const std::optional<SweepDocument> document =
            LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            ++failures;
            continue;
        }
        if (!ValidateShardAccounting(*document, &error)) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            ++failures;
            continue;
        }
        std::cout << path << ": ok (schema v" << document->schema_version
                  << ", bench " << document->meta.bench << ", shard "
                  << document->meta.shard_index << "/"
                  << document->meta.shard_count << ", "
                  << document->records.size() << " records)\n";
    }
    return (failures > 0) ? 1 : 0;
}

int
Merge(const std::vector<std::string>& args)
{
    std::string out_path = "-";
    MergeOptions options;
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "out", &value)) {
            out_path = value;
        } else if (arg == "--strip-telemetry") {
            options.strip_telemetry = true;
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown merge option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        return Usage();
    }

    std::vector<SweepDocument> documents;
    documents.reserve(paths.size());
    for (const std::string& path : paths) {
        std::string error;
        std::optional<SweepDocument> document = LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            return 1;
        }
        documents.push_back(std::move(*document));
    }

    std::string error;
    const std::optional<SweepDocument> merged =
        MergeDocuments(std::move(documents), options, &error);
    if (!merged) {
        std::cerr << "spur_sweep: merge failed: " << error << "\n";
        return 1;
    }

    const std::string json = spur::sweep::ToJson(*merged);
    if (out_path == "-") {
        std::cout << json;
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    out.flush();
    if (!out) {
        std::cerr << "spur_sweep: failed to write " << out_path << "\n";
        return 1;
    }
    return 0;
}

int
Diff(const std::vector<std::string>& args)
{
    DiffOptions options;
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "threshold", &value)) {
            if (!ParsePositiveDouble(value, &options.threshold)) {
                std::cerr << "spur_sweep: bad --threshold value in '" << arg
                          << "'\n";
                return 2;
            }
        } else if (MatchFlag(arg, "min-wall", &value)) {
            if (!ParsePositiveDouble(value, &options.min_wall_seconds)) {
                std::cerr << "spur_sweep: bad --min-wall value in '" << arg
                          << "'\n";
                return 2;
            }
        } else if (MatchFlag(arg, "fail-throughput", &value)) {
            if (!ParsePositiveDouble(value,
                                     &options.throughput_threshold)) {
                std::cerr << "spur_sweep: bad --fail-throughput value in '"
                          << arg << "'\n";
                return 2;
            }
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown diff-telemetry option '"
                      << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        return Usage();
    }

    std::vector<SweepDocument> documents;
    documents.reserve(2);
    for (const std::string& path : paths) {
        std::string error;
        std::optional<SweepDocument> document = LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            return 2;
        }
        documents.push_back(std::move(*document));
    }

    const TelemetryDiff diff =
        DiffTelemetry(documents[0], documents[1], options);
    std::cout << FormatDiffReport(diff, options);
    // In gate mode only throughput drops fail the run — wall/RSS stay
    // advisory (printed above).  Without the gate, any regression fails.
    if (options.throughput_threshold > 0.0) {
        return HasFatalRegressions(diff) ? 1 : 0;
    }
    return HasRegressions(diff) ? 1 : 0;
}

int
Recover(const std::vector<std::string>& args)
{
    std::string out_path = "-";
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "out", &value)) {
            out_path = value;
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown recover option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 1) {
        return Usage();
    }

    std::string error;
    const std::optional<RecoveredStream> recovered =
        RecoverStreamFile(paths[0], &error);
    if (!recovered) {
        std::cerr << "spur_sweep: " << error << "\n";
        return 1;
    }
    std::cerr << "spur_sweep: " << paths[0] << ": " << recovered->note
              << "\n";

    const std::string json = spur::sweep::ToJson(recovered->document);
    if (out_path == "-") {
        std::cout << json;
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    out.flush();
    if (!out) {
        std::cerr << "spur_sweep: failed to write " << out_path << "\n";
        return 1;
    }
    return 0;
}

/** Writes @p json to @p out_path ('-' = stdout); returns the exit code. */
int
WriteDocument(const std::string& json, const std::string& out_path)
{
    if (out_path == "-") {
        std::cout << json;
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    out.flush();
    if (!out) {
        std::cerr << "spur_sweep: failed to write " << out_path << "\n";
        return 1;
    }
    return 0;
}

/**
 * Shared body of submit and wait — the only difference is that wait
 * (@p resume true) requires the save file to already exist, making a
 * typo'd --save an error instead of a silent from-scratch run.
 */
int
Submit(const std::vector<std::string>& args, bool resume)
{
    const char* verb = resume ? "wait" : "submit";
    spur::serve::SubmitOptions options;
    std::string save_path;
    std::string out_path;
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "socket", &value)) {
            options.socket_path = value;
        } else if (MatchFlag(arg, "save", &value)) {
            save_path = value;
        } else if (MatchFlag(arg, "out", &value)) {
            out_path = value;
        } else if (MatchFlag(arg, "timeout-ms", &value)) {
            uint64_t number = 0;
            if (!ParseUnsigned(value, &number) || number == 0 ||
                number > (1u << 30)) {
                std::cerr << "spur_sweep: bad --timeout-ms value in '"
                          << arg << "'\n";
                return 2;
            }
            options.timeout_ms = static_cast<int>(number);
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown " << verb << " option '"
                      << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 1 || options.socket_path.empty() ||
        save_path.empty()) {
        return Usage();
    }
    if (resume) {
        std::ifstream probe(save_path, std::ios::binary);
        if (!probe) {
            std::cerr << "spur_sweep: wait: no save file at " << save_path
                      << " (nothing to resume)\n";
            return 1;
        }
    }

    std::string error;
    const std::optional<spur::serve::SweepRequest> request =
        spur::serve::LoadRequestFile(paths[0], &error);
    if (!request) {
        std::cerr << "spur_sweep: " << error << "\n";
        return 1;
    }
    const std::optional<spur::serve::SubmitResult> result =
        spur::serve::SubmitRequest(*request, options, save_path, &error);
    if (!result) {
        std::cerr << "spur_sweep: " << verb << ": " << error << "\n";
        return 1;
    }
    if (!result->accepted) {
        std::cerr << "spur_sweep: request rejected: "
                  << result->reject_reason << "\n";
        return 3;
    }
    if (!result->complete) {
        std::cerr << "spur_sweep: connection torn after "
                  << result->records << " records; " << save_path
                  << " holds the prefix (resume with 'spur_sweep wait')\n";
        return 4;
    }
    std::cerr << "spur_sweep: complete (" << result->records
              << " records)\n";
    if (out_path.empty()) {
        return 0;
    }
    return WriteDocument(spur::sweep::ToJson(result->document), out_path);
}

int
Audit(const std::vector<std::string>& args)
{
    bool strict = false;
    std::vector<std::string> paths;
    for (const std::string& arg : args) {
        if (arg == "--strict") {
            strict = true;
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown audit option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        return Usage();
    }

    std::vector<SweepDocument> documents;
    documents.reserve(paths.size());
    for (const std::string& path : paths) {
        std::string error;
        std::optional<SweepDocument> document = LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            return 1;
        }
        documents.push_back(std::move(*document));
    }
    std::optional<SweepDocument> merged = std::move(documents[0]);
    if (documents.size() > 1) {
        std::string error;
        merged = MergeDocuments(std::move(documents), MergeOptions{},
                                &error);
        if (!merged) {
            std::cerr << "spur_sweep: merge failed: " << error << "\n";
            return 1;
        }
    }

    const spur::check::AuditReport report =
        spur::audit::AuditSweepRecords(merged->records);
    std::cout << report.Summary();
    if (report.NumErrors() > 0) {
        return 1;
    }
    if (strict && report.NumWarnings() > 0) {
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }
    const std::string mode = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (mode == "validate") {
        if (rest.empty()) {
            return Usage();
        }
        return Validate(rest);
    }
    if (mode == "merge") {
        return Merge(rest);
    }
    if (mode == "diff-telemetry") {
        return Diff(rest);
    }
    if (mode == "recover") {
        return Recover(rest);
    }
    if (mode == "submit") {
        return Submit(rest, /*resume=*/false);
    }
    if (mode == "wait") {
        return Submit(rest, /*resume=*/true);
    }
    if (mode == "audit") {
        return Audit(rest);
    }
    return Usage();
}

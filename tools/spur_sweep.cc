/**
 * @file
 * Merge/validate tool for distributed sweep output (DESIGN.md §12).
 *
 *   spur_sweep validate FILE...
 *       Schema-checks each sweep JSON document (as written behind
 *       --json) and prints a one-line summary per file.  Exit 1 if any
 *       file fails.
 *
 *   spur_sweep merge [--out=FILE] [--strip-telemetry] FILE...
 *       Merges the shard files of one sweep into a single canonical
 *       document (see src/sweep/merge.h for the contract) and writes it
 *       to --out (default "-" = stdout).  A single input file is
 *       canonicalized in place, which is how CI byte-compares a merged
 *       N-shard sweep against a full single-process run.
 *
 *   spur_sweep diff-telemetry [--threshold=F] [--min-wall=S] BASE NEW
 *       Compares per-cell --telemetry cost (wall clock, peak RSS)
 *       between two sweep documents and reports cells that regressed
 *       by more than the threshold (default +25%).  Exit 1 when any
 *       cell regressed — advisory in CI (non-fatal step), since
 *       telemetry is machine-dependent.  See src/sweep/diff.h.
 *
 *   spur_sweep recover [--out=FILE] STREAM
 *       Turns a --stream file (src/sweep/stream.h) into a sweep JSON
 *       document on --out (default "-" = stdout).  A truncated stream —
 *       the file a killed run leaves behind — recovers every complete
 *       record as a partial document suitable for --resume; a stream
 *       with a verified trailer recovers the exact --json document.
 *       Corruption (anything truncation cannot explain) is a hard
 *       error, exit 1.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/stats/run_record.h"
#include "src/sweep/diff.h"
#include "src/sweep/merge.h"
#include "src/sweep/stream.h"

namespace {

using spur::IsFlagArg;
using spur::MatchFlag;
using spur::ParsePositiveDouble;
using spur::sweep::DiffOptions;
using spur::sweep::DiffTelemetry;
using spur::sweep::FormatDiffReport;
using spur::sweep::HasFatalRegressions;
using spur::sweep::HasRegressions;
using spur::sweep::LoadSweepFile;
using spur::sweep::MergeDocuments;
using spur::sweep::MergeOptions;
using spur::sweep::RecoveredStream;
using spur::sweep::RecoverStreamFile;
using spur::sweep::SweepDocument;
using spur::sweep::TelemetryDiff;
using spur::sweep::ValidateShardAccounting;

int
Usage()
{
    std::cerr
        << "usage: spur_sweep validate FILE...\n"
           "       spur_sweep merge [--out=FILE] [--strip-telemetry] "
           "FILE...\n"
           "       spur_sweep diff-telemetry [--threshold=F] "
           "[--min-wall=S] [--fail-throughput=F] BASE NEW\n"
           "       spur_sweep recover [--out=FILE] STREAM\n"
           "\n"
           "validate        schema-check sweep JSON documents (--json "
           "output)\n"
           "                and their shard cell accounting\n"
           "merge           merge the shard files of one sweep into one\n"
           "                canonical document (FILE may be '-' for "
           "stdin)\n"
           "diff-telemetry  compare per-cell wall-clock/RSS telemetry\n"
           "                between two documents; exit 1 on regressions.\n"
           "                With --fail-throughput=F, wall/RSS findings\n"
           "                turn advisory (exit 0) and only cells whose\n"
           "                refs/s dropped more than the fraction F below\n"
           "                base are fatal (exit 1) — the CI perf gate\n"
           "recover         turn a --stream file (possibly truncated by\n"
           "                a crash) into a sweep document for --resume\n";
    return 2;
}

int
Validate(const std::vector<std::string>& paths)
{
    int failures = 0;
    for (const std::string& path : paths) {
        std::string error;
        const std::optional<SweepDocument> document =
            LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            ++failures;
            continue;
        }
        if (!ValidateShardAccounting(*document, &error)) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            ++failures;
            continue;
        }
        std::cout << path << ": ok (schema v" << document->schema_version
                  << ", bench " << document->meta.bench << ", shard "
                  << document->meta.shard_index << "/"
                  << document->meta.shard_count << ", "
                  << document->records.size() << " records)\n";
    }
    return (failures > 0) ? 1 : 0;
}

int
Merge(const std::vector<std::string>& args)
{
    std::string out_path = "-";
    MergeOptions options;
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "out", &value)) {
            out_path = value;
        } else if (arg == "--strip-telemetry") {
            options.strip_telemetry = true;
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown merge option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        return Usage();
    }

    std::vector<SweepDocument> documents;
    documents.reserve(paths.size());
    for (const std::string& path : paths) {
        std::string error;
        std::optional<SweepDocument> document = LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            return 1;
        }
        documents.push_back(std::move(*document));
    }

    std::string error;
    const std::optional<SweepDocument> merged =
        MergeDocuments(std::move(documents), options, &error);
    if (!merged) {
        std::cerr << "spur_sweep: merge failed: " << error << "\n";
        return 1;
    }

    const std::string json = spur::sweep::ToJson(*merged);
    if (out_path == "-") {
        std::cout << json;
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    out.flush();
    if (!out) {
        std::cerr << "spur_sweep: failed to write " << out_path << "\n";
        return 1;
    }
    return 0;
}

int
Diff(const std::vector<std::string>& args)
{
    DiffOptions options;
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "threshold", &value)) {
            if (!ParsePositiveDouble(value, &options.threshold)) {
                std::cerr << "spur_sweep: bad --threshold value in '" << arg
                          << "'\n";
                return 2;
            }
        } else if (MatchFlag(arg, "min-wall", &value)) {
            if (!ParsePositiveDouble(value, &options.min_wall_seconds)) {
                std::cerr << "spur_sweep: bad --min-wall value in '" << arg
                          << "'\n";
                return 2;
            }
        } else if (MatchFlag(arg, "fail-throughput", &value)) {
            if (!ParsePositiveDouble(value,
                                     &options.throughput_threshold)) {
                std::cerr << "spur_sweep: bad --fail-throughput value in '"
                          << arg << "'\n";
                return 2;
            }
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown diff-telemetry option '"
                      << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        return Usage();
    }

    std::vector<SweepDocument> documents;
    documents.reserve(2);
    for (const std::string& path : paths) {
        std::string error;
        std::optional<SweepDocument> document = LoadSweepFile(path, &error);
        if (!document) {
            std::cerr << "spur_sweep: " << path << ": " << error << "\n";
            return 2;
        }
        documents.push_back(std::move(*document));
    }

    const TelemetryDiff diff =
        DiffTelemetry(documents[0], documents[1], options);
    std::cout << FormatDiffReport(diff, options);
    // In gate mode only throughput drops fail the run — wall/RSS stay
    // advisory (printed above).  Without the gate, any regression fails.
    if (options.throughput_threshold > 0.0) {
        return HasFatalRegressions(diff) ? 1 : 0;
    }
    return HasRegressions(diff) ? 1 : 0;
}

int
Recover(const std::vector<std::string>& args)
{
    std::string out_path = "-";
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "out", &value)) {
            out_path = value;
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_sweep: unknown recover option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 1) {
        return Usage();
    }

    std::string error;
    const std::optional<RecoveredStream> recovered =
        RecoverStreamFile(paths[0], &error);
    if (!recovered) {
        std::cerr << "spur_sweep: " << error << "\n";
        return 1;
    }
    std::cerr << "spur_sweep: " << paths[0] << ": " << recovered->note
              << "\n";

    const std::string json = spur::sweep::ToJson(recovered->document);
    if (out_path == "-") {
        std::cout << json;
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    out.flush();
    if (!out) {
        std::cerr << "spur_sweep: failed to write " << out_path << "\n";
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }
    const std::string mode = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (mode == "validate") {
        if (rest.empty()) {
            return Usage();
        }
        return Validate(rest);
    }
    if (mode == "merge") {
        return Merge(rest);
    }
    if (mode == "diff-telemetry") {
        return Diff(rest);
    }
    if (mode == "recover") {
        return Recover(rest);
    }
    return Usage();
}

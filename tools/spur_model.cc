/**
 * @file
 * CLI driver for the protocol model checker (src/model/, DESIGN.md §16).
 *
 *   spur_model explore [--procs=N] [--policy=NAME] [--ref=NAME]
 *       Exhaustively enumerates the reachable protocol state space for
 *       each selected (dirty, ref) policy pair (default: all pairs) at
 *       N processors (default 2, max 3), checking every state and
 *       transition against the M1..M10 invariants and the spec table's
 *       totality/determinism.  Prints one summary line per
 *       configuration; on a violation, prints the shortest stimulus
 *       counterexample trace and exits 1.
 *
 *   spur_model conform [--procs=N] [--policy=NAME] [--ref=NAME]
 *                      [--impl=uni|mp]
 *       Differential conformance: replays every reachable (state,
 *       stimulus) pair against the real transition code and asserts the
 *       implementation's successor equals the spec's.  --impl=uni
 *       drives SpurSystem::AccessBatch (the SoA hot path; procs must
 *       be 1), --impl=mp drives MpSpurSystem::Access; the default
 *       drives mp, plus uni when procs is 1.  Exit 1 on divergence,
 *       with the offending stimulus trace.
 */
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/model/conform.h"
#include "src/model/explore.h"
#include "src/model/spec.h"

namespace {

using spur::model::Conform;
using spur::model::ConformResult;
using spur::model::Explore;
using spur::model::ExploreResult;
using spur::model::Implementation;
using spur::model::kMaxProcs;
using spur::model::ModelConfig;

int
Usage()
{
    const std::vector<spur::ToolCommand> commands = {
        {"explore [--procs=N] [--policy=NAME] [--ref=NAME]",
         "enumerate the reachable protocol state space and check the "
         "M1..M10 invariants plus spec totality/determinism",
         {{"--procs=N", "processors, 1..3 (default 2)"},
          {"--policy=P",
           "dirty policy (MIN/FAULT/FLUSH/SPUR/WRITE/SPUR-PROT/WRITE-HW) "
           "or 'all' (default)"},
          {"--ref=R",
           "reference policy (MISS/REF/NOREF) or 'all' (default)"}}},
        {"conform [--procs=N] [--policy=NAME] [--ref=NAME] "
         "[--impl=uni|mp]",
         "additionally drive the real cache/bus/system code over every "
         "reachable (state, stimulus) pair and require the "
         "implementation successor to equal the spec successor",
         {{"--impl=I",
           "'uni' (SpurSystem batch path, needs --procs=1), 'mp' "
           "(MpSpurSystem), default both where applicable"}}},
    };
    std::cerr << spur::FormatToolUsage(
        "spur_model",
        "Exhaustive protocol model checker (DESIGN.md §16).", commands);
    return 2;
}

std::string
ConfigLabel(const ModelConfig& config)
{
    return "procs=" + std::to_string(config.procs) +
           " dirty=" + spur::policy::ToString(config.dirty) +
           " ref=" + spur::policy::ToString(config.ref);
}

int
RunExplore(const ModelConfig& config)
{
    const ExploreResult result = Explore(config);
    if (!result.ok) {
        std::printf("explore %s: FAIL\n%s", ConfigLabel(config).c_str(),
                    result.problem.c_str());
        return 1;
    }
    std::string fires;
    for (const auto& [rule, count] : result.rule_fires) {
        fires += " " + rule + "=" + std::to_string(count);
    }
    std::printf("explore %s: ok — %zu states, %llu transitions, depth "
                "%u\n  rule fires:%s\n",
                ConfigLabel(config).c_str(), result.states.size(),
                static_cast<unsigned long long>(result.transitions),
                result.max_depth, fires.c_str());
    return 0;
}

int
RunConform(const ModelConfig& config, Implementation impl)
{
    const ConformResult result = Conform(config, impl);
    if (!result.ok) {
        std::printf("conform %s impl=%s: FAIL\n%s",
                    ConfigLabel(config).c_str(), ToString(impl),
                    result.problem.c_str());
        return 1;
    }
    std::printf("conform %s impl=%s: ok — %llu states replayed, %llu "
                "(state, stimulus) pairs conform\n",
                ConfigLabel(config).c_str(), ToString(impl),
                static_cast<unsigned long long>(result.states_replayed),
                static_cast<unsigned long long>(result.pairs_checked));
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }
    const std::string mode = args.front();
    if (mode != "explore" && mode != "conform") {
        return Usage();
    }

    uint64_t procs = 2;
    std::string policy = "all";
    std::string ref = "all";
    std::string impl = "all";
    std::string value;
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (spur::MatchFlag(arg, "procs", &value)) {
            if (!spur::ParseUnsigned(value, &procs) || procs < 1 ||
                procs > kMaxProcs) {
                std::fprintf(stderr,
                             "spur_model: bad --procs value in '%s' "
                             "(want 1..%u)\n",
                             arg.c_str(), kMaxProcs);
                return 2;
            }
        } else if (spur::MatchFlag(arg, "policy", &value)) {
            policy = value;
        } else if (spur::MatchFlag(arg, "ref", &value)) {
            ref = value;
        } else if (spur::MatchFlag(arg, "impl", &value)) {
            impl = value;
        } else {
            std::fprintf(stderr, "spur_model: unknown argument '%s'\n",
                         arg.c_str());
            return Usage();
        }
    }

    std::vector<spur::policy::DirtyPolicyKind> dirties;
    if (policy == "all") {
        dirties = {spur::policy::DirtyPolicyKind::kMin,
                   spur::policy::DirtyPolicyKind::kFault,
                   spur::policy::DirtyPolicyKind::kFlush,
                   spur::policy::DirtyPolicyKind::kSpur,
                   spur::policy::DirtyPolicyKind::kWrite,
                   spur::policy::DirtyPolicyKind::kSpurProt,
                   spur::policy::DirtyPolicyKind::kWriteHw};
    } else {
        dirties = {spur::policy::ParseDirtyPolicy(policy)};
    }
    std::vector<spur::policy::RefPolicyKind> refs;
    if (ref == "all") {
        refs = {spur::policy::RefPolicyKind::kMiss,
                spur::policy::RefPolicyKind::kRef,
                spur::policy::RefPolicyKind::kNoRef};
    } else {
        refs = {spur::policy::ParseRefPolicy(ref)};
    }
    std::vector<Implementation> impls;
    if (impl == "uni") {
        if (procs != 1) {
            std::fprintf(stderr,
                         "spur_model: --impl=uni requires --procs=1\n");
            return 2;
        }
        impls = {Implementation::kUniprocessorBatch};
    } else if (impl == "mp") {
        impls = {Implementation::kMultiprocessor};
    } else if (impl == "all") {
        if (procs == 1) {
            impls.push_back(Implementation::kUniprocessorBatch);
        }
        impls.push_back(Implementation::kMultiprocessor);
    } else {
        std::fprintf(stderr, "spur_model: bad --impl value '%s'\n",
                     impl.c_str());
        return 2;
    }

    int failures = 0;
    for (const spur::policy::DirtyPolicyKind dirty : dirties) {
        for (const spur::policy::RefPolicyKind ref_kind : refs) {
            ModelConfig config;
            config.procs = static_cast<unsigned>(procs);
            config.dirty = dirty;
            config.ref = ref_kind;
            if (mode == "explore") {
                failures += RunExplore(config);
            } else {
                for (const Implementation i : impls) {
                    failures += RunConform(config, i);
                }
            }
        }
    }
    if (failures > 0) {
        std::fprintf(stderr, "spur_model: %d configuration(s) FAILED\n",
                     failures);
        return 1;
    }
    return 0;
}

/**
 * @file
 * CLI driver for the determinism linter (src/lint/, DESIGN.md §13).
 *
 *   spur_lint [--compile-commands=FILE] [PATH...]
 *       Lints the union of: every "file" entry of the compile database
 *       (produced by CMAKE_EXPORT_COMPILE_COMMANDS=ON), every explicit
 *       source file argument, and every *.h / *.cc found under
 *       directory arguments.  Headers are not part of the compile
 *       database, so a typical CI invocation passes both:
 *
 *           spur_lint --compile-commands=build/compile_commands.json \
 *               src tools bench examples tests
 *
 *       Prints one "file:line: [rule] message" per violation and exits
 *       1 when there is any, 0 on a clean tree, 2 on usage/IO errors.
 *
 *   spur_lint --list-rules
 *       Prints every rule name with its one-line summary.
 */
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/lint/lint.h"

namespace {

int
Usage()
{
    const std::vector<spur::ToolCommand> commands = {
        {"[--compile-commands=FILE] [PATH...]",
         "lint source files, directory trees, and/or the file list of a "
         "compile_commands.json; exit 1 on violations",
         {{"--compile-commands=FILE",
           "lint every \"file\" entry of the compile database"}}},
        {"--list-rules",
         "print every rule name with its one-line summary",
         {}},
    };
    std::cerr << spur::FormatToolUsage(
        "spur_lint",
        "Enforces the project's determinism rules (DESIGN.md §13).",
        commands);
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }

    std::string compile_commands;
    std::vector<std::string> paths;
    std::string value;
    bool list_rules = false;
    for (const std::string& arg : args) {
        if (spur::MatchFlag(arg, "compile-commands", &value)) {
            compile_commands = value;
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (spur::IsFlagArg(arg)) {
            std::fprintf(stderr, "spur_lint: unknown option '%s'\n",
                         arg.c_str());
            return Usage();
        } else {
            paths.push_back(arg);
        }
    }

    if (list_rules) {
        for (const spur::lint::RuleInfo& rule : spur::lint::Rules()) {
            std::printf("%-22s %s\n", rule.name.c_str(),
                        rule.summary.c_str());
        }
        return 0;
    }
    if (compile_commands.empty() && paths.empty()) {
        return Usage();
    }

    spur::lint::Linter linter;
    std::string error;
    if (!compile_commands.empty() &&
        !linter.AddCompileCommands(compile_commands, &error)) {
        std::fprintf(stderr, "spur_lint: %s\n", error.c_str());
        return 2;
    }
    for (const std::string& path : paths) {
        std::error_code ec;
        const bool ok = std::filesystem::is_directory(path, ec)
                            ? linter.AddTree(path, &error)
                            : linter.AddFileFromDisk(path, &error);
        if (!ok) {
            std::fprintf(stderr, "spur_lint: %s\n", error.c_str());
            return 2;
        }
    }

    const std::vector<spur::lint::Violation> violations = linter.Run();
    for (const spur::lint::Violation& violation : violations) {
        std::printf("%s\n",
                    spur::lint::FormatViolation(violation).c_str());
    }
    if (!violations.empty()) {
        std::fprintf(stderr, "spur_lint: %zu violation(s) in %zu files\n",
                     violations.size(), linter.file_count());
        return 1;
    }
    std::fprintf(stderr, "spur_lint: OK (%zu files clean)\n",
                 linter.file_count());
    return 0;
}

/**
 * @file
 * CLI driver for the determinism/architecture linter (src/lint/,
 * DESIGN.md §13 and §18).
 *
 *   spur_lint check [--layers=FILE] [--compile-commands=FILE]
 *                   [--format=text|json] [--jobs=N] [PATH...]
 *       Runs every pass over the union of: every "file" entry of the
 *       compile database, every explicit source file argument, and
 *       every *.h / *.cc found under directory arguments.  Headers are
 *       not part of the compile database, so a typical CI invocation
 *       passes both:
 *
 *           spur_lint check --compile-commands=build/compile_commands.json \
 *               src tools bench examples tests
 *
 *       Prints one "file:line: [rule] message" per violation (or, with
 *       --format=json, a JSON array with one finding object per line —
 *       stable ordering, machine-diffable) and exits 1 when there is
 *       any, 0 on a clean tree, 2 on usage/IO errors.  --jobs=N scans
 *       files in parallel; output is byte-identical at any job count.
 *
 *   spur_lint graph [--dot] [--check-layers] [--layers=FILE] [PATH...]
 *       The subsystem include graph: --dot prints it in DOT form
 *       (pipe through `dot -Tsvg` to render), --check-layers exits 1
 *       if any layering finding exists (the CI architecture gate).
 *
 *   spur_lint allows [PATH...]
 *       Inventories every allow() suppression marker with its
 *       liveness, so reviews can see the whole budget spend.
 *
 *   spur_lint --list-rules [--markdown]
 *       Prints every rule name with its one-line summary; --markdown
 *       emits the table DESIGN.md §18 embeds.
 *
 * The legacy flat form `spur_lint [--compile-commands=...] PATH...` is
 * still accepted and behaves as `check`.
 *
 * The layer manifest defaults to ./LAYERS.toml when present; pass
 * --layers=FILE to point elsewhere.  Without a manifest the layering
 * pass only reports observed subsystem cycles.
 */
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/lint/lint.h"

namespace {

constexpr char kDefaultManifest[] = "LAYERS.toml";

int
Usage()
{
    const std::vector<spur::ToolCommand> commands = {
        {"check [--layers=FILE] [--compile-commands=FILE] "
         "[--format=text|json] [--jobs=N] [PATH...]",
         "run every pass over source files, directory trees, and/or a "
         "compile database file list; exit 1 on violations",
         {{"--layers=FILE",
           "layer manifest (default: ./LAYERS.toml when present)"},
          {"--compile-commands=FILE",
           "lint every \"file\" entry of the compile database"},
          {"--format=text|json",
           "violation rendering (json: one finding object per line, "
           "stable ordering)"},
          {"--jobs=N",
           "parallel file scanning (0 = hardware threads); output is "
           "byte-identical at any job count"}}},
        {"graph [--dot] [--check-layers] [--layers=FILE] [PATH...]",
         "print the observed subsystem include graph (--dot), or exit 1 "
         "on layering findings (--check-layers)",
         {}},
        {"allows [PATH...]",
         "inventory every allow() suppression marker with its liveness",
         {}},
        {"--list-rules [--markdown]",
         "print every rule name with its one-line summary "
         "(--markdown: the DESIGN.md table)",
         {}},
    };
    std::cerr << spur::FormatToolUsage(
        "spur_lint",
        "Enforces the project's determinism and architecture rules "
        "(DESIGN.md §13, §18).",
        commands);
    return 2;
}

struct Options {
    std::string command = "check";
    std::string compile_commands;
    std::string layers;
    std::string format = "text";
    size_t jobs = 1;
    bool dot = false;
    bool check_layers = false;
    bool list_rules = false;
    bool markdown = false;
    std::vector<std::string> paths;
};

bool
ParseArgs(const std::vector<std::string>& args, Options* options)
{
    size_t first = 0;
    if (!args.empty() &&
        (args[0] == "check" || args[0] == "graph" || args[0] == "allows")) {
        options->command = args[0];
        first = 1;
    }
    std::string value;
    for (size_t i = first; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (spur::MatchFlag(arg, "compile-commands", &value)) {
            options->compile_commands = value;
        } else if (spur::MatchFlag(arg, "layers", &value)) {
            options->layers = value;
        } else if (spur::MatchFlag(arg, "format", &value)) {
            if (value != "text" && value != "json") {
                std::fprintf(stderr,
                             "spur_lint: --format must be text or json\n");
                return false;
            }
            options->format = value;
        } else if (spur::MatchFlag(arg, "jobs", &value)) {
            options->jobs = static_cast<size_t>(std::stoul(value));
        } else if (arg == "--dot") {
            options->dot = true;
        } else if (arg == "--check-layers") {
            options->check_layers = true;
        } else if (arg == "--list-rules") {
            options->list_rules = true;
        } else if (arg == "--markdown") {
            options->markdown = true;
        } else if (spur::IsFlagArg(arg)) {
            std::fprintf(stderr, "spur_lint: unknown option '%s'\n",
                         arg.c_str());
            return false;
        } else {
            options->paths.push_back(arg);
        }
    }
    return true;
}

int
ListRules(bool markdown)
{
    if (markdown) {
        std::printf("| Rule | Enforces |\n|------|----------|\n");
        for (const spur::lint::RuleInfo& rule : spur::lint::Rules()) {
            std::printf("| `%s` | %s |\n", rule.name.c_str(),
                        rule.summary.c_str());
        }
    } else {
        for (const spur::lint::RuleInfo& rule : spur::lint::Rules()) {
            std::printf("%-22s %s\n", rule.name.c_str(),
                        rule.summary.c_str());
        }
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }
    Options options;
    if (!ParseArgs(args, &options)) {
        return Usage();
    }
    if (options.list_rules) {
        return ListRules(options.markdown);
    }
    if (options.compile_commands.empty() && options.paths.empty()) {
        return Usage();
    }

    spur::lint::Linter linter;
    std::string error;
    if (!options.compile_commands.empty() &&
        !linter.AddCompileCommands(options.compile_commands, &error)) {
        std::fprintf(stderr, "spur_lint: %s\n", error.c_str());
        return 2;
    }
    for (const std::string& path : options.paths) {
        std::error_code ec;
        const bool ok = std::filesystem::is_directory(path, ec)
                            ? linter.AddTree(path, &error)
                            : linter.AddFileFromDisk(path, &error);
        if (!ok) {
            std::fprintf(stderr, "spur_lint: %s\n", error.c_str());
            return 2;
        }
    }
    std::string manifest = options.layers;
    if (manifest.empty()) {
        std::error_code ec;
        if (std::filesystem::is_regular_file(kDefaultManifest, ec)) {
            manifest = kDefaultManifest;
        }
    }
    if (!manifest.empty() &&
        !linter.LoadLayerManifest(manifest, &error)) {
        std::fprintf(stderr, "spur_lint: %s\n", error.c_str());
        return 2;
    }

    const spur::lint::LintReport report = linter.Analyze(options.jobs);

    if (options.command == "graph") {
        if (options.dot) {
            std::fputs(report.subsystem_dot.c_str(), stdout);
        }
        if (!options.check_layers) {
            return 0;
        }
        size_t findings = 0;
        for (const spur::lint::Violation& violation : report.violations) {
            if (violation.rule == "layering") {
                std::printf(
                    "%s\n",
                    spur::lint::FormatViolation(violation).c_str());
                ++findings;
            }
        }
        if (findings > 0) {
            std::fprintf(stderr,
                         "spur_lint: %zu layering finding(s) in %zu "
                         "files\n",
                         findings, linter.file_count());
            return 1;
        }
        std::fprintf(stderr, "spur_lint: layers OK (%zu files)\n",
                     linter.file_count());
        return 0;
    }

    if (options.command == "allows") {
        for (const spur::lint::AllowSite& site : report.allows) {
            std::printf("%s:%zu: allow(%s) — %s\n", site.file.c_str(),
                        site.line, site.rule.c_str(),
                        site.used ? "live" : "dead");
        }
        std::fprintf(stderr, "spur_lint: %zu suppression site(s) in %zu "
                     "files\n",
                     report.allows.size(), linter.file_count());
        return 0;
    }

    // check (default).
    if (options.format == "json") {
        std::printf("[");
        for (size_t i = 0; i < report.violations.size(); ++i) {
            std::printf(
                "%s%s", i == 0 ? "\n" : ",\n",
                spur::lint::FormatViolationJson(report.violations[i])
                    .c_str());
        }
        std::printf("%s]\n", report.violations.empty() ? "" : "\n");
    } else {
        for (const spur::lint::Violation& violation : report.violations) {
            std::printf("%s\n",
                        spur::lint::FormatViolation(violation).c_str());
        }
    }
    if (!report.violations.empty()) {
        std::fprintf(stderr, "spur_lint: %zu violation(s) in %zu files\n",
                     report.violations.size(), linter.file_count());
        return 1;
    }
    std::fprintf(stderr, "spur_lint: OK (%zu files clean)\n",
                 linter.file_count());
    return 0;
}

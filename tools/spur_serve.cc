/**
 * @file
 * The sweep service daemon and its offline reference path
 * (DESIGN.md §17).
 *
 *   spur_serve serve --socket=PATH [options]
 *       Long-lived daemon: accepts SPUR-SERVE/1 requests on a
 *       Unix-domain socket, executes them over one shared worker pool,
 *       streams each reply incrementally as SPUR-STREAM/1 frames.
 *       SIGTERM/SIGINT drain gracefully: stop accepting, finish
 *       in-flight replies, exit 0.
 *
 *   spur_serve exec [--json=FILE] [--jobs=N] REQUEST
 *       Executes a request file offline through the exact executor the
 *       daemon uses and writes the sweep document — the byte-identity
 *       reference a served reply is compared against (CI cmp's the two).
 */
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/serve/client.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/sweep/merge.h"

namespace {

using spur::IsFlagArg;
using spur::MatchFlag;
using spur::ParseUnsigned;
using spur::ToolCommand;
using spur::serve::ExecuteHooks;
using spur::serve::ExecuteOutcome;
using spur::serve::ExecuteSweepRequest;
using spur::serve::LoadRequestFile;
using spur::serve::ServeOptions;
using spur::serve::SweepRequest;
using spur::serve::SweepServer;

int
Usage()
{
    const std::vector<ToolCommand> commands = {
        {"serve --socket=PATH [options]",
         "run the sweep service daemon; SIGTERM/SIGINT drain "
         "gracefully",
         {{"--socket=PATH", "Unix-domain socket to listen on"},
          {"--jobs=N", "shared worker-pool threads (default: hardware)"},
          {"--costs=FILE",
           "telemetry sweep JSON driving longest-first scheduling"},
          {"--max-queued-cells=N",
           "admission bound on queued cells (default 4096)"},
          {"--max-clients=N",
           "concurrent connection limit (default 32)"},
          {"--request-timeout-ms=N",
           "how long a client may take to send its request"}}},
        {"exec [--json=FILE] [--jobs=N] REQUEST",
         "execute a request file offline (the byte-identity reference "
         "for served replies)",
         {{"--json=FILE", "write the sweep document here (default '-')"},
          {"--jobs=N", "worker threads (default: hardware)"}}},
    };
    std::cerr << spur::FormatToolUsage(
        "spur_serve",
        "Sweep service: serve concurrent sweep requests over a "
        "Unix-domain socket,\nstreaming each reply as a resumable "
        "SPUR-STREAM/1 file (DESIGN.md §17).",
        commands);
    return 2;
}

SweepServer* g_server = nullptr;

extern "C" void
HandleDrainSignal(int)
{
    // RequestDrain is a single write(2) on a self-pipe: signal-safe.
    if (g_server != nullptr) {
        g_server->RequestDrain();
    }
}

int
Serve(const std::vector<std::string>& args)
{
    ServeOptions options;
    std::string value;
    uint64_t number = 0;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "socket", &value)) {
            options.socket_path = value;
        } else if (MatchFlag(arg, "jobs", &value)) {
            if (!ParseUnsigned(value, &number) || number == 0) {
                std::cerr << "spur_serve: bad --jobs value in '" << arg
                          << "'\n";
                return 2;
            }
            options.jobs = static_cast<unsigned>(number);
        } else if (MatchFlag(arg, "costs", &value)) {
            std::string error;
            const std::optional<spur::sweep::SweepDocument> document =
                spur::sweep::LoadSweepFile(value, &error);
            if (!document) {
                std::cerr << "spur_serve: --costs: " << error << "\n";
                return 2;
            }
            options.costs =
                spur::sweep::CostTable::FromDocument(*document);
        } else if (MatchFlag(arg, "max-queued-cells", &value)) {
            if (!ParseUnsigned(value, &number) || number == 0) {
                std::cerr << "spur_serve: bad --max-queued-cells value\n";
                return 2;
            }
            options.max_queued_cells = number;
        } else if (MatchFlag(arg, "max-clients", &value)) {
            if (!ParseUnsigned(value, &number) || number == 0) {
                std::cerr << "spur_serve: bad --max-clients value\n";
                return 2;
            }
            options.max_clients = static_cast<unsigned>(number);
        } else if (MatchFlag(arg, "request-timeout-ms", &value)) {
            if (!ParseUnsigned(value, &number) || number == 0 ||
                number > (1u << 30)) {
                std::cerr << "spur_serve: bad --request-timeout-ms value\n";
                return 2;
            }
            options.request_timeout_ms = static_cast<int>(number);
        } else {
            std::cerr << "spur_serve: unknown serve option '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (options.socket_path.empty()) {
        return Usage();
    }

    SweepServer server(std::move(options));
    std::string error;
    if (!server.Start(&error)) {
        std::cerr << "spur_serve: " << error << "\n";
        return 1;
    }
    g_server = &server;
    std::signal(SIGTERM, HandleDrainSignal);
    std::signal(SIGINT, HandleDrainSignal);
    std::cerr << "spur_serve: listening\n";
    const int code = server.Run();
    g_server = nullptr;
    std::cerr << "spur_serve: drained\n";
    return code;
}

int
Exec(const std::vector<std::string>& args)
{
    std::string json_path = "-";
    unsigned jobs = 0;
    std::vector<std::string> paths;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "json", &value)) {
            json_path = value;
        } else if (MatchFlag(arg, "jobs", &value)) {
            uint64_t number = 0;
            if (!ParseUnsigned(value, &number) || number == 0) {
                std::cerr << "spur_serve: bad --jobs value in '" << arg
                          << "'\n";
                return 2;
            }
            jobs = static_cast<unsigned>(number);
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_serve: unknown exec option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 1) {
        return Usage();
    }

    std::string error;
    const std::optional<SweepRequest> request =
        LoadRequestFile(paths[0], &error);
    if (!request) {
        std::cerr << "spur_serve: " << error << "\n";
        return 1;
    }
    const ExecuteOutcome outcome =
        ExecuteSweepRequest(*request, jobs, ExecuteHooks{});
    if (!outcome.completed) {
        std::cerr << "spur_serve: execution did not complete\n";
        return 1;
    }
    const std::string json = spur::sweep::ToJson(outcome.document);
    if (json_path == "-") {
        std::cout << json;
        return 0;
    }
    std::ofstream out(json_path, std::ios::binary);
    out << json;
    out.flush();
    if (!out) {
        std::cerr << "spur_serve: failed to write " << json_path << "\n";
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }
    const std::string mode = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (mode == "serve") {
        return Serve(rest);
    }
    if (mode == "exec") {
        return Exec(rest);
    }
    return Usage();
}

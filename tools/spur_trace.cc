/**
 * @file
 * Operator tool for SPUR-TRACE/1 workload-trace libraries (DESIGN.md
 * §19) — the record/replay counterpart of spur_sweep.
 *
 *   spur_trace record --out=FILE [--workload=NAME | --all-scenarios]
 *                     [--seed=N] [--refs=N] [--intensity=F]
 *       Generates the named workload (or the whole scenario library)
 *       through the counts-only host and appends one stream per
 *       workload to FILE.  Pid normalization makes the bytes identical
 *       to what a live `--record-trace` run would capture, at a
 *       fraction of the cost — no cache or VM simulation runs.
 *
 *   spur_trace replay FILE [--dirty=NAME] [--ref=NAME] [--memory=N]
 *       Replays every stream of FILE through a fresh SPUR machine per
 *       stream and prints the resulting counters — the quick look at
 *       what a recorded workload does under one policy choice.
 *
 *   spur_trace info FILE
 *       Prints the streams of FILE (identity, ops, accesses, refs,
 *       digest) without replaying.  A truncated file prints what
 *       recovered plus the recovery note; corruption is exit 1.
 *
 *   spur_trace validate [--out=FILE] TRACE
 *       Integrity check with the §13 exit-code convention: 0 for a
 *       complete verified file, 2 for a truncated file whose
 *       complete-stream prefix recovered (a killed recorder's leavings),
 *       1 for corruption.  With --out, writes the recovered streams
 *       back out as a complete trace — the repair path the CI
 *       kill-recovery job exercises.
 */
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/run_trace.h"
#include "src/core/system.h"
#include "src/sim/config.h"
#include "src/workload/driver.h"
#include "src/workload/trace.h"

namespace {

using spur::IsFlagArg;
using spur::MatchFlag;
using spur::ParsePositiveDouble;
using spur::ParseUnsigned;
using spur::Table;
using spur::ToolCommand;

int
Usage()
{
    const std::vector<ToolCommand> commands = {
        {"record --out=FILE [options]",
         "generate workload op streams (counts-only host; byte-identical "
         "to a live --record-trace) into a trace library",
         {{"--out=FILE", "trace library to create (required)"},
          {"--workload=NAME", "one workload (default WORKLOAD1)"},
          {"--all-scenarios",
           "record the whole scenario library instead of one workload"},
          {"--seed=N", "driver seed (default 1)"},
          {"--refs=N", "reference budget (default: workload's own)"},
          {"--intensity=F", "dev-machine intensity (default 1.0)"}}},
        {"replay FILE [options]",
         "replay every stream through a fresh SPUR machine and print "
         "the counters",
         {{"--dirty=NAME", "dirty-bit policy (default SPUR)"},
          {"--ref=NAME", "reference-bit policy (default MISS)"},
          {"--memory=N", "memory size in MB (default 8)"}}},
        {"info FILE",
         "list the streams (identity, ops, accesses, refs, digest); "
         "prints the recovery note for truncated files",
         {}},
        {"validate [--out=FILE] TRACE",
         "integrity check: exit 0 complete, 2 truncated-but-recovered, "
         "1 corrupt",
         {{"--out=FILE",
           "write the recovered streams back out as a complete trace"}}},
    };
    std::cerr << spur::FormatToolUsage(
        "spur_trace",
        "SPUR-TRACE/1 workload-trace tool: record scenario op streams "
        "once, inspect\nand validate the library, and replay it through "
        "any policy choice.",
        commands);
    return 2;
}

/** Parses a workload name by its core::ToString spelling. */
std::optional<spur::core::WorkloadId>
WorkloadByName(const std::string& name)
{
    for (const spur::core::WorkloadId id : spur::core::kAllWorkloads) {
        if (name == spur::core::ToString(id)) {
            return id;
        }
    }
    return std::nullopt;
}

/** Records one workload's stream into @p writer; false on I/O error. */
bool
RecordOne(const spur::core::RunConfig& config,
          spur::workload::TraceFileWriter& writer)
{
    namespace workload = spur::workload;
    const workload::TraceStreamMeta meta = spur::core::TraceMetaFor(config);
    workload::WorkloadSpec spec = spur::core::SpecFor(config);
    const uint32_t slice_refs = spec.slice_refs;
    workload::CountingHost host(
        spur::sim::MachineConfig::Prototype(config.memory_mb));
    workload::TraceEncoder encoder(meta);
    workload::RecordingHost recorder(host, encoder);
    workload::Driver driver(recorder, std::move(spec), meta.refs,
                            config.seed, slice_refs);
    driver.Run();
    recorder.StopRecording();
    const uint64_t ops = encoder.ops();
    const uint64_t accesses = encoder.accesses();
    std::string error;
    if (!writer.AppendStream(encoder.Finish(driver.refs_issued()),
                             &error)) {
        std::cerr << "spur_trace: " << error << "\n";
        return false;
    }
    std::cout << "recorded '" << meta.Identity() << "': " << ops
              << " ops, " << accesses << " accesses\n";
    return true;
}

int
Record(const std::vector<std::string>& args)
{
    std::string out_path;
    std::string workload_name = "WORKLOAD1";
    bool all_scenarios = false;
    spur::core::RunConfig base;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "out", &value)) {
            out_path = value;
        } else if (MatchFlag(arg, "workload", &value)) {
            workload_name = value;
        } else if (arg == "--all-scenarios") {
            all_scenarios = true;
        } else if (MatchFlag(arg, "seed", &value)) {
            if (!ParseUnsigned(value, &base.seed)) {
                std::cerr << "spur_trace: bad --seed '" << value << "'\n";
                return 2;
            }
        } else if (MatchFlag(arg, "refs", &value)) {
            if (!ParseUnsigned(value, &base.refs)) {
                std::cerr << "spur_trace: bad --refs '" << value << "'\n";
                return 2;
            }
        } else if (MatchFlag(arg, "intensity", &value)) {
            if (!ParsePositiveDouble(value, &base.intensity)) {
                std::cerr << "spur_trace: bad --intensity '" << value
                          << "'\n";
                return 2;
            }
        } else {
            std::cerr << "spur_trace: unknown record option '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (out_path.empty()) {
        return Usage();
    }

    std::vector<spur::core::RunConfig> configs;
    if (all_scenarios) {
        for (const spur::core::WorkloadId id :
             spur::core::kScenarioLibrary) {
            spur::core::RunConfig config = base;
            config.workload = id;
            configs.push_back(config);
        }
    } else {
        const auto id = WorkloadByName(workload_name);
        if (!id) {
            std::cerr << "spur_trace: unknown workload '" << workload_name
                      << "'\n";
            return 2;
        }
        spur::core::RunConfig config = base;
        config.workload = *id;
        configs.push_back(config);
    }

    spur::workload::TraceFileWriter writer;
    std::string error;
    if (!writer.Open(out_path, &error)) {
        std::cerr << "spur_trace: " << error << "\n";
        return 1;
    }
    for (const spur::core::RunConfig& config : configs) {
        if (!RecordOne(config, writer)) {
            return 1;
        }
    }
    if (!writer.Finish(&error)) {
        std::cerr << "spur_trace: " << error << "\n";
        return 1;
    }
    std::cout << out_path << ": " << configs.size() << " stream"
              << (configs.size() == 1 ? "" : "s") << "\n";
    return 0;
}

int
Replay(const std::vector<std::string>& args)
{
    std::string path;
    auto dirty = spur::policy::DirtyPolicyKind::kSpur;
    auto ref = spur::policy::RefPolicyKind::kMiss;
    uint32_t memory_mb = 8;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "dirty", &value)) {
            dirty = spur::policy::ParseDirtyPolicy(value);
        } else if (MatchFlag(arg, "ref", &value)) {
            ref = spur::policy::ParseRefPolicy(value);
        } else if (MatchFlag(arg, "memory", &value)) {
            uint64_t parsed = 0;
            if (!ParseUnsigned(value, &parsed) || parsed == 0) {
                std::cerr << "spur_trace: bad --memory '" << value
                          << "'\n";
                return 2;
            }
            memory_mb = static_cast<uint32_t>(parsed);
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_trace: unknown replay option '" << arg
                      << "'\n";
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            return Usage();
        }
    }
    if (path.empty()) {
        return Usage();
    }

    spur::workload::TraceLibrary library;
    std::string error;
    if (!library.Load(path, &error)) {
        std::cerr << "spur_trace: " << error << "\n";
        return 1;
    }

    Table t(path + " under " + spur::policy::ToString(dirty) + "/" +
            spur::policy::ToString(ref) + " at " +
            std::to_string(memory_mb) + " MB");
    t.SetHeader({"stream", "refs", "misses", "dirty faults", "excess",
                 "page-ins", "elapsed (s)"});
    const spur::sim::MachineConfig config =
        spur::sim::MachineConfig::Prototype(memory_mb);
    for (const spur::workload::TraceStream& stream : library.streams()) {
        spur::core::SpurSystem system(config, dirty, ref);
        const spur::workload::ReplayStats stats =
            spur::workload::ReplayStream(stream, system);
        const auto& ev = system.events();
        t.AddRow({stream.meta.Identity(), Table::Num(stats.refs_issued),
                  Table::Num(ev.TotalMisses()),
                  Table::Num(ev.Get(spur::sim::Event::kDirtyFault)),
                  Table::Num(ev.Get(spur::sim::Event::kExcessFault)),
                  Table::Num(ev.Get(spur::sim::Event::kPageIn)),
                  Table::Num(system.timing().ElapsedSeconds(), 3)});
    }
    t.Print(stdout);
    return 0;
}

/** Shared by info/validate: recover @p path, report, pick the exit. */
int
Inspect(const std::string& path, const std::string& repair_path)
{
    std::string error;
    const auto recovered =
        spur::workload::RecoverTraceFile(path, &error);
    if (!recovered) {
        std::cerr << "spur_trace: " << path << ": " << error << "\n";
        return 1;
    }
    for (const spur::workload::TraceStream& stream : recovered->streams) {
        std::printf("  %s: %llu ops, %llu accesses, %llu refs, digest "
                    "%016llx\n",
                    stream.meta.Identity().c_str(),
                    static_cast<unsigned long long>(stream.op_count),
                    static_cast<unsigned long long>(stream.accesses),
                    static_cast<unsigned long long>(stream.refs_issued),
                    static_cast<unsigned long long>(stream.digest));
    }
    if (recovered->complete) {
        std::printf("%s: ok (%zu stream%s, trailer verified)\n",
                    path.c_str(), recovered->streams.size(),
                    recovered->streams.size() == 1 ? "" : "s");
    } else {
        std::printf("%s: truncated — %s\n", path.c_str(),
                    recovered->note.c_str());
    }
    if (!repair_path.empty()) {
        std::vector<std::string> frames;
        frames.reserve(recovered->streams.size());
        for (const spur::workload::TraceStream& stream :
             recovered->streams) {
            frames.push_back(stream.framed);
        }
        const std::string bytes = spur::workload::EncodeTraceFile(frames);
        std::FILE* f = std::fopen(repair_path.c_str(), "wb");
        if (f == nullptr ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) !=
                bytes.size()) {
            std::cerr << "spur_trace: cannot write '" << repair_path
                      << "'\n";
            if (f != nullptr) {
                std::fclose(f);
            }
            return 1;
        }
        std::fclose(f);
        std::printf("%s: %zu stream%s (complete)\n", repair_path.c_str(),
                    recovered->streams.size(),
                    recovered->streams.size() == 1 ? "" : "s");
    }
    return recovered->complete ? 0 : 2;
}

int
Info(const std::vector<std::string>& args)
{
    if (args.size() != 1 || IsFlagArg(args[0])) {
        return Usage();
    }
    const int exit_code = Inspect(args[0], "");
    // info is a report, not a gate: a recovered-truncated file is
    // still a successful inspection.
    return (exit_code == 1) ? 1 : 0;
}

int
Validate(const std::vector<std::string>& args)
{
    std::string path;
    std::string repair_path;
    std::string value;
    for (const std::string& arg : args) {
        if (MatchFlag(arg, "out", &value)) {
            repair_path = value;
        } else if (IsFlagArg(arg)) {
            std::cerr << "spur_trace: unknown validate option '" << arg
                      << "'\n";
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            return Usage();
        }
    }
    if (path.empty()) {
        return Usage();
    }
    return Inspect(path, repair_path);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return Usage();
    }
    const std::string mode = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (mode == "record") {
        return Record(rest);
    }
    if (mode == "replay") {
        return Replay(rest);
    }
    if (mode == "info") {
        return Info(rest);
    }
    if (mode == "validate") {
        return Validate(rest);
    }
    return Usage();
}

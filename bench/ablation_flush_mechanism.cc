/**
 * @file
 * Section 3.2's flush-mechanism aside, measured: SPUR's real flush
 * "flushes a single cache block regardless of its virtual address tag",
 * so flushing a page costs 128 blind operations and evicts innocent
 * blocks from other pages (the paper estimates ~2000 cycles, with
 * one-fifth of blocks written back); a tag-checked flush (assumed for
 * the comparisons) costs ~500.
 *
 * This bench fills the cache from a realistic workload snapshot, flushes
 * pages both ways, and reports the collateral damage: foreign blocks
 * evicted, writebacks forced, and the refetch misses the victimized
 * pages suffer afterwards.
 */
#include <cstdio>

#include "src/cache/cache.h"
#include "src/common/args.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/sim/config.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    runner::BenchSession session("ablation_flush_mechanism", args);
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);

    Table t("Indexed (SPUR hardware) vs. tag-checked page flush: "
            "collateral damage over 512 page flushes");
    t.SetHeader({"flush kind", "blocks flushed", "of page", "foreign",
                 "writebacks", "est. cycles/page"});

    // The two flush mechanisms run concurrently; each has a private
    // cache and RNG, and rows are added in a fixed order afterwards.
    struct Variant {
        uint64_t flushed = 0;
        uint64_t own = 0;
        uint64_t foreign = 0;
        uint64_t writebacks = 0;
        double per_page = 0.0;
    };
    const bool kinds[] = {true, false};
    Variant variants[2];
    runner::ParallelFor(2, session.jobs(), [&](size_t v) {
        const bool checked = kinds[v];
        cache::VirtualCache vcache(config);
        Rng rng(3);
        // A working set of 160 pages with ~10% of each page's blocks
        // cached (the paper's flush-cost assumption), a third dirty.
        auto populate = [&] {
            for (uint64_t i = 0; i < config.NumBlocks() / 2; ++i) {
                const GlobalAddr addr =
                    (rng.NextBelow(160) * config.page_bytes) |
                    (rng.NextBelow(config.BlocksPerPage()) *
                     config.block_bytes);
                cache::LineRef line = vcache.Fill(
                    addr, Protection::kReadWrite, true, nullptr);
                if (rng.Chance(0.33)) {
                    cache::VirtualCache::MarkWritten(line);
                }
            }
        };
        populate();

        uint64_t flushed = 0;
        uint64_t own = 0;
        uint64_t foreign = 0;
        uint64_t writebacks = 0;
        const int kFlushes = 512;
        for (int i = 0; i < kFlushes; ++i) {
            // Flush a page from the live working set, then refill the
            // cache to steady state so each flush sees the same load.
            const GlobalAddr page =
                rng.NextBelow(160) * config.page_bytes;
            const cache::FlushResult result =
                checked ? vcache.FlushPageChecked(page)
                        : vcache.FlushPageIndexed(page);
            flushed += result.blocks_flushed;
            foreign += result.foreign_flushed;
            own += result.blocks_flushed - result.foreign_flushed;
            writebacks += result.writebacks;
            if (i % 8 == 7) {
                populate();
            }
        }
        // Cycle estimate per the paper's accounting: 2 cycles per slot of
        // loop overhead for checked (1 for blind hardware ops), plus 10
        // cycles per block actually flushed (writeback path).
        const double per_page =
            (checked ? 2.0 : 1.0) * config.BlocksPerPage() +
            10.0 * static_cast<double>(flushed) / kFlushes +
            // Refetch cost of the innocent foreign blocks.
            static_cast<double>(config.BlockFetchCycles()) *
                static_cast<double>(foreign) / kFlushes;
        variants[v] = Variant{flushed, own, foreign, writebacks, per_page};
    });

    for (size_t v = 0; v < 2; ++v) {
        const Variant& r = variants[v];
        t.AddRow({kinds[v] ? "tag-checked" : "indexed (SPUR)",
                  Table::Num(r.flushed), Table::Num(r.own),
                  Table::Num(r.foreign), Table::Num(r.writebacks),
                  Table::Num(r.per_page, 0)});
        stats::RunRecord record;
        record.workload = kinds[v] ? "tag-checked" : "indexed";
        record.memory_mb = 8;
        record.AddMetric("blocks_flushed", static_cast<double>(r.flushed));
        record.AddMetric("foreign_flushed",
                         static_cast<double>(r.foreign));
        record.AddMetric("writebacks", static_cast<double>(r.writebacks));
        record.AddMetric("est_cycles_per_page", r.per_page);
        session.Record(std::move(record));
    }
    t.Print(stdout);
    std::printf(
        "\nThe indexed flush touches the same 128 slots but cannot tell\n"
        "whose blocks they hold: the foreign evictions (plus their later\n"
        "refetch misses) are why the paper prices SPUR's real flush at\n"
        "~4x the tag-checked one, and why FLUSH-style policies need the\n"
        "better hardware to be even marginally viable.\n");
    return session.Finish();
}

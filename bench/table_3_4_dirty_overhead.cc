/**
 * @file
 * Reproduces Tables 3.1, 3.2 and 3.4 — the dirty-bit alternatives, the
 * time parameters, and "Overhead of Dirty Bit Alternatives (Excluding
 * Zero-Fills)".
 *
 * Like the paper, the overheads are computed by combining *measured*
 * event frequencies (a run under the SPUR mechanism, which observes the
 * necessary faults, dirty-bit misses, w-hits and w-misses without
 * perturbing the cache) with the Section 3.2 cost models.  A second,
 * mechanistic mode (--mechanistic) instead executes each policy for real
 * and reports the simulator's actually-charged cycles, validating the
 * analytic model.
 *
 * Flags: --reps=N, --refs=M (millions), --mechanistic, --csv, --seed=S,
 *        --scenarios (append the DESIGN.md §19 scenario-library
 *        workloads — ctx-switch, flush-storm, server-churn, gc-sweep —
 *        as extra rows), plus the standard session flags --jobs=N,
 *        --json=FILE, --shard=K/N, --telemetry, --costs=FILE,
 *        --stream=FILE, --resume=FILE, --record-trace=FILE,
 *        --replay-trace=FILE (src/runner/session.h)
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/overhead_model.h"
#include "src/runner/session.h"
#include "src/stats/summary.h"

namespace {

using namespace spur;

constexpr policy::DirtyPolicyKind kOrder[] = {
    policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
    policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
    policy::DirtyPolicyKind::kWrite,
};

void
PrintPreamble()
{
    Table alt("Table 3.1: Dirty Bit Implementation Alternatives");
    alt.SetHeader({"Policy", "Mechanism"});
    alt.AddRow({"FAULT", "Emulate dirty bits with protection; writes to "
                         "previously cached blocks cause excess faults."});
    alt.AddRow({"FLUSH", "Emulate with protection; flush the page from "
                         "the cache on a fault, preventing excess faults."});
    alt.AddRow({"SPUR", "Cache the dirty bit with each block; check the "
                        "PTE before faulting; refresh stale copies with a "
                        "dirty bit miss."});
    alt.AddRow({"WRITE", "Check the PTE on the first write to each cache "
                         "block."});
    alt.AddRow({"MIN", "Minimal policy: only the intrinsic overhead."});
    alt.Print(stdout);
    std::printf("\n");

    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    Table tp("Table 3.2: Time Parameters");
    tp.SetHeader({"Parameter", "Cycle Count", "Description"});
    tp.AddRow({"t_ds", Table::Num(uint64_t{config.t_fault}),
               "Time for handler to set dirty bit"});
    tp.AddRow({"t_flush", Table::Num(uint64_t{config.t_flush_page}),
               "Time to flush page from cache"});
    tp.AddRow({"t_dm", Table::Num(uint64_t{config.t_dirty_miss}),
               "Time to update cached dirty bit"});
    tp.AddRow({"t_dc", Table::Num(uint64_t{config.t_dirty_check}),
               "Time to check PTE dirty bit"});
    tp.Print(stdout);
    std::printf("\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    const Args args(argc, argv);
    const auto reps = static_cast<uint32_t>(args.GetInt("reps", 1));
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    const bool mechanistic = args.Has("mechanistic");
    runner::BenchSession session("table_3_4_dirty_overhead", args);

    if (!args.Has("csv")) {
        PrintPreamble();
    }

    Table t(mechanistic
                ? "Table 3.4 (mechanistic): measured dirty-bit cycles per "
                  "policy, zero-fill faults excluded analytically"
                : "Table 3.4: Overhead of Dirty Bit Alternatives "
                  "(Excluding Zero-Fills), millions of cycles (relative "
                  "to MIN)");
    t.SetHeader({"Workload", "Memory (MB)", "MIN", "FAULT", "FLUSH", "SPUR",
                 "WRITE"});

    const sim::MachineConfig model_config = sim::MachineConfig::Prototype(8);
    const core::OverheadModel model(model_config);

    // The paper's own workloads, plus — under --scenarios — the
    // scenario library rows (marked by their workload names).
    std::vector<core::WorkloadId> workloads = {core::WorkloadId::kSlc,
                                               core::WorkloadId::kWorkload1};
    if (args.Has("scenarios")) {
        for (const core::WorkloadId id : core::kScenarioLibrary) {
            workloads.push_back(id);
        }
    }

    const char* last_workload = nullptr;
    for (const core::WorkloadId workload : workloads) {
        for (const uint32_t mb : {5u, 6u, 8u}) {
            std::vector<double> cycles(std::size(kOrder), 0.0);
            if (!mechanistic) {
                // Paper mode: one measurement run (SPUR mechanism), then
                // the analytic models.
                core::RunConfig config;
                config.workload = workload;
                config.memory_mb = mb;
                config.dirty = policy::DirtyPolicyKind::kSpur;
                config.ref = policy::RefPolicyKind::kMiss;
                config.refs = refs;
                config.seed = seed;
                stats::Summary per_policy[std::size(kOrder)];
                const auto results = session.RunMatrix({config}, reps);
                const double scale = core::RefCompression(workload);
                for (const core::RunResult& r : results[0]) {
                    // Per-reference event counts are rescaled to
                    // prototype-equivalent run lengths (see
                    // core::RefCompression); per-page counts are already
                    // at prototype scale by calibration.
                    core::EventFrequencies f = r.frequencies;
                    f.n_w_hit = static_cast<uint64_t>(
                        static_cast<double>(f.n_w_hit) * scale);
                    f.n_w_miss = static_cast<uint64_t>(
                        static_cast<double>(f.n_w_miss) * scale);
                    for (size_t p = 0; p < std::size(kOrder); ++p) {
                        per_policy[p].Add(model.Overhead(
                            kOrder[p], f,
                            /*exclude_zfod=*/true));
                    }
                }
                for (size_t p = 0; p < std::size(kOrder); ++p) {
                    cycles[p] = per_policy[p].Mean();
                }
            } else {
                // Validation mode: run each policy for real and read the
                // cycles the simulator charged to the dirty-bit buckets.
                // Zero-fill fault costs are excluded the same way the
                // paper's table does, by subtracting N_zfod * t_ds.
                std::vector<core::RunConfig> configs;
                for (const policy::DirtyPolicyKind dirty : kOrder) {
                    core::RunConfig config;
                    config.workload = workload;
                    config.memory_mb = mb;
                    config.dirty = dirty;
                    config.ref = policy::RefPolicyKind::kMiss;
                    config.refs = refs;
                    config.seed = seed;
                    configs.push_back(config);
                }
                const auto results = session.RunMatrix(configs, reps);
                for (size_t p = 0; p < std::size(kOrder); ++p) {
                    cycles[p] =
                        stats::Summary::Over(
                            results[p],
                            [&](const core::RunResult& r) {
                                const double fault_s = r.bucket_seconds[
                                    static_cast<size_t>(
                                        sim::TimeBucket::kFault)];
                                const double flush_s = r.bucket_seconds[
                                    static_cast<size_t>(
                                        sim::TimeBucket::kFlush)];
                                const double aux_s = r.bucket_seconds[
                                    static_cast<size_t>(
                                        sim::TimeBucket::kDirtyAux)];
                                const double cycle_ns =
                                    model_config.cpu_cycle_ns;
                                double total = (fault_s + flush_s + aux_s) *
                                               1e9 / cycle_ns;
                                // Remove costs that are not dirty-bit
                                // overhead: ref faults, zero-fill faults,
                                // page-fault software, and the VM's
                                // reclaim flushes.
                                total -= static_cast<double>(
                                    r.events.Get(sim::Event::kRefFault) *
                                    model_config.t_fault);
                                total -= static_cast<double>(
                                    r.events.Get(
                                        sim::Event::kDirtyFaultZfod) *
                                    model_config.t_fault);
                                total -= static_cast<double>(
                                    r.events.Get(sim::Event::kPageFault) *
                                    model_config.t_pagefault_sw);
                                total -= static_cast<double>(
                                    r.events.Get(sim::Event::kPageFlush) *
                                    model_config.t_flush_page);
                                return total;
                            })
                            .Mean();
                }
            }

            const double min_cycles = (cycles[0] > 0) ? cycles[0] : 1.0;
            std::vector<std::string> row = {ToString(workload),
                                            std::to_string(mb)};
            for (size_t p = 0; p < std::size(kOrder); ++p) {
                row.push_back(Table::Num(cycles[p] / 1e6, 2) + " " +
                              Table::Rel(cycles[p] / min_cycles));
            }
            const char* name = ToString(workload);
            if (last_workload != nullptr && name != last_workload) {
                t.AddSeparator();
            }
            last_workload = name;
            t.AddRow(row);
        }
    }

    if (args.Has("csv")) {
        t.PrintCsv(stdout);
    } else {
        t.Print(stdout);
        std::printf(
            "\nShape checks vs. the paper: MIN < SPUR (~1.03) < FAULT "
            "(~1.15-1.35)\n< FLUSH (1.50) << WRITE (5-10x).  Hardware "
            "support buys at most a\nfew tens of percent of a tiny "
            "overhead: FAULT needs no hardware at all.\n");
    }
    return session.Finish();
}

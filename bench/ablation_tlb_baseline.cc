/**
 * @file
 * The introduction's premise, measured: a virtual-address cache vs. the
 * conventional TLB + physical-cache machine on identical workloads.
 *
 *  - The TLB machine translates on *every* reference (a serial cycle,
 *    plus page-table walks on TLB misses) but gets reference and dirty
 *    bits for free.
 *  - The SPUR machine translates only on cache misses but pays the
 *    Section 3/4 bit-maintenance machinery.
 *
 * Reported: elapsed time, translation time, bit-maintenance events, and
 * the net advantage — quantifying "virtual address caches generally
 * provide faster access times than physical address caches".
 *
 * Flags: --refs=M (millions, default 6), --mem=MB (default 8), --seed=S,
 *        plus the standard session flags --jobs=N, --json=FILE,
 *        --shard=K/N, --telemetry, --costs=FILE,
 *        --stream=FILE, --resume=FILE (src/runner/session.h)
 */
#include <cstdio>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/core/tlb_system.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/workload/driver.h"
#include "src/workload/workloads.h"

namespace {

using namespace spur;

/** One machine run: either SPUR or the TLB baseline on one workload. */
struct MachineRun {
    double xlate_seconds = 0;
    uint64_t bit_events = 0;
    double bit_fault_seconds = 0;
    uint64_t page_ins = 0;
    double elapsed_seconds = 0;
};

MachineRun
RunSpur(workload::WorkloadSpec (*make_spec)(), uint32_t mem, uint64_t refs,
        uint64_t seed)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(mem);
    config.page_in_us = 800.0;
    core::SpurSystem machine(config, policy::DirtyPolicyKind::kSpur,
                             policy::RefPolicyKind::kMiss);
    workload::Driver driver(machine, make_spec(), refs, seed);
    driver.Run();
    const auto& ev = machine.events();
    MachineRun r;
    r.xlate_seconds = machine.timing().Seconds(sim::TimeBucket::kXlate);
    r.bit_events = ev.Get(sim::Event::kDirtyFault) +
                   ev.Get(sim::Event::kDirtyBitMiss) +
                   ev.Get(sim::Event::kRefFault) +
                   ev.Get(sim::Event::kRefClear);
    r.bit_fault_seconds = static_cast<double>((ev.Get(sim::Event::kDirtyFault) +
                                               ev.Get(sim::Event::kRefFault)) *
                                              config.t_fault) *
                          config.cpu_cycle_ns * 1e-9;
    r.page_ins = ev.Get(sim::Event::kPageIn);
    r.elapsed_seconds = machine.timing().ElapsedSeconds();
    return r;
}

MachineRun
RunTlb(workload::WorkloadSpec (*make_spec)(), uint32_t mem, uint64_t refs,
       uint64_t seed)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(mem);
    config.page_in_us = 800.0;
    core::TlbSystem machine(config);
    workload::Driver driver(machine, make_spec(), refs, seed);
    driver.Run();
    const auto& ev = machine.events();
    MachineRun r;
    r.xlate_seconds = machine.timing().Seconds(sim::TimeBucket::kXlate);
    r.bit_events = ev.Get(sim::Event::kRefClear);
    r.page_ins = ev.Get(sim::Event::kPageIn);
    r.elapsed_seconds = machine.timing().ElapsedSeconds();
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 6)) * 1'000'000ull;
    const auto mem = static_cast<uint32_t>(args.GetInt("mem", 8));
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 13));
    runner::BenchSession session("ablation_tlb_baseline", args);

    Table t("Virtual-address cache (SPUR) vs. TLB + physical cache, "
            "identical workloads at " + std::to_string(mem) + " MB");
    t.SetHeader({"workload", "machine", "xlate (s)", "bit events",
                 "bit-fault (s)", "page-ins", "elapsed (s)"});

    // 2 workloads x 2 machines, each with a private system: the four
    // cells run concurrently and the table is assembled afterwards.
    workload::WorkloadSpec (*const specs[])() = {&workload::MakeSlc,
                                                 &workload::MakeWorkload1};
    MachineRun runs[2][2];  // [workload][0=SPUR, 1=TLB]
    runner::ParallelFor(4, session.jobs(), [&](size_t i) {
        const size_t w = i / 2;
        if (i % 2 == 0) {
            runs[w][0] = RunSpur(specs[w], mem, refs, seed);
        } else {
            runs[w][1] = RunTlb(specs[w], mem, refs, seed);
        }
    });

    for (size_t w = 0; w < 2; ++w) {
        const workload::WorkloadSpec probe = specs[w]();
        const MachineRun& spur_run = runs[w][0];
        const MachineRun& tlb_run = runs[w][1];
        t.AddRow({probe.name, "SPUR (virtual cache)",
                  Table::Num(spur_run.xlate_seconds, 2),
                  Table::Num(spur_run.bit_events),
                  Table::Num(spur_run.bit_fault_seconds, 2),
                  Table::Num(spur_run.page_ins),
                  Table::Num(spur_run.elapsed_seconds, 2)});
        t.AddRow({"", "TLB + physical cache",
                  Table::Num(tlb_run.xlate_seconds, 2),
                  Table::Num(tlb_run.bit_events), Table::Num(0.0, 2),
                  Table::Num(tlb_run.page_ins),
                  Table::Num(tlb_run.elapsed_seconds, 2)});
        const double tlb_elapsed = tlb_run.elapsed_seconds;
        t.AddRow({"", "SPUR advantage", "", "", "", "",
                  Table::Num(100.0 *
                                 (tlb_elapsed - spur_run.elapsed_seconds) /
                                 (tlb_elapsed > 0 ? tlb_elapsed : 1),
                             1) +
                      "%"});
        t.AddSeparator();
        for (size_t m = 0; m < 2; ++m) {
            const MachineRun& r = runs[w][m];
            stats::RunRecord record;
            record.workload = probe.name;
            // The dirty-policy slot doubles as the machine label here:
            // the TLB baseline has no SPUR-style dirty policy at all.
            record.dirty_policy = m == 0 ? "SPUR" : "TLB";
            record.memory_mb = mem;
            record.seed = seed;
            record.refs_issued = refs;
            record.page_ins = r.page_ins;
            record.elapsed_seconds = r.elapsed_seconds;
            record.AddMetric("xlate_seconds", r.xlate_seconds);
            record.AddMetric("bit_events",
                             static_cast<double>(r.bit_events));
            record.AddMetric("bit_fault_seconds", r.bit_fault_seconds);
            session.Record(std::move(record));
        }
    }
    t.Print(stdout);
    std::printf(
        "\nThe TLB machine spends translation time on every reference;\n"
        "the SPUR machine only on misses, buying back far more than its\n"
        "bit-maintenance faults cost — the trade the paper's whole\n"
        "investigation rests on.\n");
    return session.Finish();
}

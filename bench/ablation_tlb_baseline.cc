/**
 * @file
 * The introduction's premise, measured: a virtual-address cache vs. the
 * conventional TLB + physical-cache machine on identical workloads.
 *
 *  - The TLB machine translates on *every* reference (a serial cycle,
 *    plus page-table walks on TLB misses) but gets reference and dirty
 *    bits for free.
 *  - The SPUR machine translates only on cache misses but pays the
 *    Section 3/4 bit-maintenance machinery.
 *
 * Reported: elapsed time, translation time, bit-maintenance events, and
 * the net advantage — quantifying "virtual address caches generally
 * provide faster access times than physical address caches".
 *
 * Flags: --refs=M (millions, default 6), --mem=MB (default 8), --seed=S
 */
#include <cstdio>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/core/tlb_system.h"
#include "src/workload/driver.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 6)) * 1'000'000ull;
    const auto mem = static_cast<uint32_t>(args.GetInt("mem", 8));
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 13));

    Table t("Virtual-address cache (SPUR) vs. TLB + physical cache, "
            "identical workloads at " + std::to_string(mem) + " MB");
    t.SetHeader({"workload", "machine", "xlate (s)", "bit events",
                 "bit-fault (s)", "page-ins", "elapsed (s)"});

    for (const auto make_spec :
         {&workload::MakeSlc, &workload::MakeWorkload1}) {
        const workload::WorkloadSpec probe = make_spec();
        double spur_elapsed = 0;
        double tlb_elapsed = 0;
        // SPUR machine.
        {
            sim::MachineConfig config = sim::MachineConfig::Prototype(mem);
            config.page_in_us = 800.0;
            core::SpurSystem machine(config, policy::DirtyPolicyKind::kSpur,
                                     policy::RefPolicyKind::kMiss);
            workload::Driver driver(machine, make_spec(), refs, seed);
            driver.Run();
            const auto& ev = machine.events();
            const uint64_t bit_events =
                ev.Get(sim::Event::kDirtyFault) +
                ev.Get(sim::Event::kDirtyBitMiss) +
                ev.Get(sim::Event::kRefFault) +
                ev.Get(sim::Event::kRefClear);
            const double bit_fault_s =
                static_cast<double>(
                    (ev.Get(sim::Event::kDirtyFault) +
                     ev.Get(sim::Event::kRefFault)) *
                    config.t_fault) *
                config.cpu_cycle_ns * 1e-9;
            spur_elapsed = machine.timing().ElapsedSeconds();
            t.AddRow({probe.name, "SPUR (virtual cache)",
                      Table::Num(
                          machine.timing().Seconds(sim::TimeBucket::kXlate),
                          2),
                      Table::Num(bit_events), Table::Num(bit_fault_s, 2),
                      Table::Num(ev.Get(sim::Event::kPageIn)),
                      Table::Num(spur_elapsed, 2)});
        }
        // TLB machine.
        {
            sim::MachineConfig config = sim::MachineConfig::Prototype(mem);
            config.page_in_us = 800.0;
            core::TlbSystem machine(config);
            workload::Driver driver(machine, make_spec(), refs, seed);
            driver.Run();
            const auto& ev = machine.events();
            tlb_elapsed = machine.timing().ElapsedSeconds();
            t.AddRow({"", "TLB + physical cache",
                      Table::Num(
                          machine.timing().Seconds(sim::TimeBucket::kXlate),
                          2),
                      Table::Num(ev.Get(sim::Event::kRefClear)),
                      Table::Num(0.0, 2),
                      Table::Num(ev.Get(sim::Event::kPageIn)),
                      Table::Num(tlb_elapsed, 2)});
        }
        t.AddRow({"", "SPUR advantage", "", "", "", "",
                  Table::Num(100.0 * (tlb_elapsed - spur_elapsed) /
                                 (tlb_elapsed > 0 ? tlb_elapsed : 1),
                             1) +
                      "%"});
        t.AddSeparator();
    }
    t.Print(stdout);
    std::printf(
        "\nThe TLB machine spends translation time on every reference;\n"
        "the SPUR machine only on misses, buying back far more than its\n"
        "bit-maintenance faults cost — the trade the paper's whole\n"
        "investigation rests on.\n");
    return 0;
}

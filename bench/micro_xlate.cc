/**
 * @file
 * google-benchmark micro-benchmarks for in-cache translation and the
 * page-fault path: PTE cached vs. not, fault handling with zero-fill
 * and with page-in, and the workload generator's raw speed.
 */
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "src/common/random.h"
#include "src/core/system.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/workload/process.h"
#include "src/workload/workloads.h"
#include "src/xlate/translator.h"

namespace {

using namespace spur;

void
BM_TranslatePteCached(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    pt::PageTable table;
    xlate::Translator xlate(vcache, table, config);
    sim::EventCounts events;
    // One warm translation caches the PTE block; afterwards every
    // translation of nearby pages hits the same PTE block.
    const GlobalAddr addr = 0x40000;
    xlate.Translate(addr, events);
    for (auto _ : state) {
        benchmark::DoNotOptimize(xlate.Translate(addr, events));
    }
}
BENCHMARK(BM_TranslatePteCached);

void
BM_TranslatePteCold(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    pt::PageTable table;
    xlate::Translator xlate(vcache, table, config);
    sim::EventCounts events;
    Rng rng(1);
    for (auto _ : state) {
        // Spread addresses so PTE blocks rarely stay cached.
        const GlobalAddr addr = rng.NextBelow(uint64_t{1} << 38) &
                                ~uint64_t{0xFFF};
        benchmark::DoNotOptimize(xlate.Translate(addr, events));
    }
}
BENCHMARK(BM_TranslatePteCold);

void
BM_PageFaultZeroFill(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(64);
    core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                            policy::RefPolicyKind::kMiss);
    const Pid pid = system.CreateProcess();
    const uint64_t pages = 8192;
    system.MapRegion(pid, workload::kHeapBase, pages * config.page_bytes,
                     vm::PageKind::kHeap);
    uint64_t next = 0;
    for (auto _ : state) {
        // Touch a fresh page each iteration (wraps; wrapped pages are
        // already resident and measure the lookup instead).
        const ProcessAddr addr = workload::kHeapBase +
                                 static_cast<ProcessAddr>(
                                     (next++ % pages) * config.page_bytes);
        system.Access(pid, addr, AccessType::kWrite);
    }
}
BENCHMARK(BM_PageFaultZeroFill);

void
BM_WorkloadGenerator(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                            policy::RefPolicyKind::kMiss);
    workload::ProcessProfile profile;  // Defaults.
    workload::SyntheticProcess process(system, profile, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(process.Next());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGenerator);

void
BM_EndToEndWorkload1(benchmark::State& state)
{
    // Whole-stack throughput: references per second through workload
    // generation, cache, translation, policies and VM.
    for (auto _ : state) {
        sim::MachineConfig config = sim::MachineConfig::Prototype(8);
        core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                                policy::RefPolicyKind::kMiss);
        workload::Driver driver(system, workload::MakeWorkload1(),
                                500'000, 1);
        driver.Run();
        benchmark::DoNotOptimize(system.events().TotalRefs());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            500'000);
}
BENCHMARK(BM_EndToEndWorkload1)->Unit(benchmark::kMillisecond);

}  // namespace

SPUR_MICRO_BENCHMARK_MAIN()

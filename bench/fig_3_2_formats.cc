/**
 * @file
 * Reproduces Figure 3.2 — the SPUR page-table-entry and cache-line
 * formats — by rendering the live bit layouts of pt::Pte and cache::Line
 * and demonstrating the copy-on-fill of PR and the page dirty bit.
 *
 * Flags: --jobs=N (accepted for uniformity), --json=FILE
 */
#include <cstdio>

#include "src/cache/cache.h"
#include "src/common/args.h"
#include "src/common/table.h"
#include "src/pt/pte.h"
#include "src/runner/session.h"
#include "src/sim/config.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    runner::BenchSession session("fig_3_2_formats", args);

    std::printf("Figure 3.2(a): SPUR Page Table Entry format\n\n");
    std::printf("  31                    12 11  10   9   8  7 6  5  4  3  2  1  0\n");
    std::printf(" +------------------------+---+----+---+---+----+--+--+--+--+--+--+\n");
    std::printf(" |          PFN           |SW |ZF  |WI |SD | PR |C |K |D |R |V |- |\n");
    std::printf(" +------------------------+---+----+---+---+----+--+--+--+--+--+--+\n");
    std::printf("  PR = Protection (2 bits)   C = Coherency   K = Cacheable\n");
    std::printf("  D = Page Dirty Bit   R = Page Referenced Bit   V = Page Valid\n");
    std::printf("  (SD/WI/ZF: software bits used by the Sprite-style kernel)\n\n");

    // Demonstrate the packing with a worked example.
    pt::Pte pte;
    pte.set_pfn(0x00ABC);
    pte.set_protection(Protection::kReadOnly);
    pte.set_cacheable(true);
    pte.set_coherent(true);
    pte.set_valid(true);
    pte.set_referenced(true);
    Table p("Worked PTE example");
    p.SetHeader({"field", "value"});
    p.AddRow({"raw image", Table::Num(uint64_t{pte.raw()})});
    p.AddRow({"pfn", Table::Num(uint64_t{pte.pfn()})});
    p.AddRow({"protection", ToString(pte.protection())});
    p.AddRow({"dirty (D)", pte.dirty() ? "1" : "0"});
    p.AddRow({"referenced (R)", pte.referenced() ? "1" : "0"});
    p.AddRow({"valid (V)", pte.valid() ? "1" : "0"});
    p.Print(stdout);

    std::printf("\nFigure 3.2(b): SPUR Cache Line (block frame) format\n\n");
    std::printf(" +----------------+----+---+---+------+\n");
    std::printf(" |      VTag      | PR | P | B |  CS  |\n");
    std::printf(" +----------------+----+---+---+------+\n");
    std::printf("  PR = Protection (2 bits)   P = Page Dirty Bit\n");
    std::printf("  B = Block Dirty Bit        CS = Coherency State (2 bits)\n\n");

    // Demonstrate the fill-time copy of PR and the page dirty bit, and
    // that the cached copies go stale when the PTE later changes — the
    // phenomenon the whole paper is about.
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    const GlobalAddr addr = 0x12340;
    const cache::Line line =
        vcache.Fill(addr, pte.protection(), pte.dirty(), nullptr).Get();
    Table c("Cache line filled from the PTE (copy-on-fill)");
    c.SetHeader({"field", "value"});
    c.AddRow({"VTag", Table::Num(uint64_t{line.tag})});
    c.AddRow({"PR (copied)", ToString(line.prot)});
    c.AddRow({"P (copied page dirty)", line.page_dirty ? "1" : "0"});
    c.AddRow({"B (block dirty)", line.block_dirty ? "1" : "0"});
    c.AddRow({"CS", ToString(line.state)});
    c.Print(stdout);

    pte.set_protection(Protection::kReadWrite);
    pte.set_dirty(true);
    std::printf("\nAfter the kernel upgrades the PTE to read-write+dirty:\n"
                "  PTE:        PR=%s D=%d\n"
                "  cache line: PR=%s P=%d   <-- stale copies (Figure 3.1)\n",
                ToString(pte.protection()), pte.dirty() ? 1 : 0,
                ToString(line.prot), line.page_dirty ? 1 : 0);

    stats::RunRecord record;
    record.workload = "pte_cache_line_formats";
    record.AddMetric("pte_raw", static_cast<double>(pte.raw()));
    record.AddMetric("line_tag", static_cast<double>(line.tag));
    record.AddMetric("line_page_dirty", line.page_dirty ? 1.0 : 0.0);
    record.AddMetric("pte_dirty", pte.dirty() ? 1.0 : 0.0);
    session.Record(std::move(record));
    return session.Finish();
}

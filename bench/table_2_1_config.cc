/**
 * @file
 * Reproduces Table 2.1 — "SPUR System Configuration" — from the live
 * MachineConfig, and validates the derived timing quantities the rest of
 * the evaluation depends on (block fetch latency, page-in cost).
 */
#include <cstdio>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/runner/session.h"
#include "src/sim/config.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    runner::BenchSession session("table_2_1_config", args);
    sim::MachineConfig config =
        sim::MachineConfig::Prototype(
            static_cast<uint32_t>(args.GetInt("memory-mb", 8)));

    Table t("Table 2.1: SPUR System Configuration");
    t.SetHeader({"Parameter", "Value"});
    t.AddRow({"Processor Information", ""});
    t.AddSeparator();
    t.AddRow({"Cache Size",
              std::to_string(config.cache_bytes / 1024) + " Kbytes"});
    t.AddRow({"Associativity", "Direct Mapped"});
    t.AddRow({"Block Size", std::to_string(config.block_bytes) + " bytes"});
    t.AddRow({"Page Size",
              std::to_string(config.page_bytes / 1024) + " Kbytes"});
    t.AddRow({"Instruction Buffer", "Disabled"});
    t.AddRow({"Processor cycle time",
              Table::Num(config.cpu_cycle_ns, 0) + "ns"});
    t.AddRow({"Backplane cycle time",
              Table::Num(config.bus_cycle_ns, 0) + "ns"});
    t.AddSeparator();
    t.AddRow({"Memory Information", ""});
    t.AddSeparator();
    t.AddRow({"Time to first word",
              std::to_string(config.mem_first_word_cycles) + " cycles"});
    t.AddRow({"Time to next word",
              std::to_string(config.mem_next_word_cycles) + " cycles"});
    t.AddRow({"Main memory size",
              std::to_string(config.memory_bytes / (1024 * 1024)) +
                  " Mbytes"});
    t.Print(stdout);

    Table d("Derived timing quantities (checked by the test suite)");
    d.SetHeader({"Quantity", "Value"});
    d.AddRow({"Cache blocks", Table::Num(config.NumBlocks())});
    d.AddRow({"Blocks per page", Table::Num(config.BlocksPerPage())});
    d.AddRow({"Page frames", Table::Num(config.NumFrames())});
    d.AddRow({"Block fetch (bus cycles)",
              Table::Num(uint64_t{config.BlockFetchBusCycles()})});
    d.AddRow({"Block fetch (CPU cycles)",
              Table::Num(uint64_t{config.BlockFetchCycles()})});
    d.AddRow({"Fault handler t_ds (cycles)",
              Table::Num(uint64_t{config.t_fault})});
    d.AddRow({"Page flush t_flush (cycles)",
              Table::Num(uint64_t{config.t_flush_page})});
    d.AddRow({"Dirty-bit miss t_dm (cycles)",
              Table::Num(uint64_t{config.t_dirty_miss})});
    d.AddRow({"Dirty check t_dc (cycles)",
              Table::Num(uint64_t{config.t_dirty_check})});
    d.Print(stdout);

    // No simulation runs here; the JSON record carries the derived
    // machine parameters instead.
    stats::RunRecord record;
    record.memory_mb = config.memory_bytes / (1024 * 1024);
    record.AddMetric("cache_bytes", static_cast<double>(config.cache_bytes));
    record.AddMetric("block_bytes", static_cast<double>(config.block_bytes));
    record.AddMetric("page_bytes", static_cast<double>(config.page_bytes));
    record.AddMetric("t_fault", static_cast<double>(config.t_fault));
    record.AddMetric("t_flush_page",
                     static_cast<double>(config.t_flush_page));
    record.AddMetric("t_dirty_miss",
                     static_cast<double>(config.t_dirty_miss));
    record.AddMetric("t_dirty_check",
                     static_cast<double>(config.t_dirty_check));
    session.Record(std::move(record));
    return session.Finish();
}

/**
 * @file
 * Quantifies the Section 4.1 claim that true reference bits are
 * "especially [expensive] in a multiprocessor, which must flush the page
 * from all the caches": runs a shared-memory parallel workload on 1..8
 * processors under MISS and REF and reports how the reference-bit
 * maintenance cost (flush work plus induced refetch misses) scales.
 *
 * Flags: --refs=M (millions per CPU count; default 3), --seed=S,
 *        plus the standard session flags --jobs=N, --json=FILE,
 *        --shard=K/N, --telemetry, --costs=FILE,
 *        --stream=FILE, --resume=FILE (src/runner/session.h)
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/args.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/core/mp_system.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/workload/process.h"

namespace {

using namespace spur;

/** One espresso-like worker per CPU, all sharing one result segment. */
struct MpRun {
    uint64_t total_flush_cycles = 0;
    uint64_t page_ins = 0;
    uint64_t ref_clears = 0;
    uint64_t bus_transfers = 0;
    double elapsed_seconds = 0;
};

MpRun
Run(unsigned cpus, policy::RefPolicyKind ref, uint64_t refs, uint64_t seed)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    config.page_in_us = 800.0;
    core::MpSpurSystem system(config, cpus, policy::DirtyPolicyKind::kSpur,
                              ref);
    const uint64_t page = config.page_bytes;

    // One worker process per CPU: a private heap, plus segment 3 shared
    // with worker 0 (the jointly updated result structures).  Each CPU's
    // reference stream is a simple Zipf mix over the two, read-mostly.
    std::vector<Pid> worker_pids(cpus);
    for (unsigned cpu = 0; cpu < cpus; ++cpu) {
        worker_pids[cpu] = system.CreateProcess();
        system.MapRegion(worker_pids[cpu], workload::kHeapBase, 420 * page,
                         vm::PageKind::kHeap);
        if (cpu == 0) {
            system.MapRegion(worker_pids[0], workload::kStackBase,
                             96 * page, vm::PageKind::kHeap);
        } else {
            // Segment 3 shared with worker 0: one global address.
            system.ShareSegment(worker_pids[cpu], 3, worker_pids[0], 3);
        }
    }

    // A slow cold scan keeps the machine under constant memory pressure
    // regardless of the worker count, so the page daemon clears
    // reference bits at a comparable rate in every configuration.
    const uint64_t filler_pages = config.NumFrames() + 256;
    system.MapRegion(worker_pids[0], workload::kDataBase,
                     filler_pages * page, vm::PageKind::kHeap);
    uint64_t filler_pos = 0;

    Rng rng(seed);
    const uint64_t per_cpu = refs / cpus;
    for (uint64_t i = 0; i < per_cpu; ++i) {
        if (i % 24 == 0) {
            system.Access(0, MemRef{worker_pids[0],
                                    static_cast<ProcessAddr>(
                                        workload::kDataBase +
                                        (filler_pos++ % filler_pages) *
                                            page),
                                    AccessType::kRead});
        }
        for (unsigned cpu = 0; cpu < cpus; ++cpu) {
            const bool shared = rng.Chance(0.25);
            const ProcessAddr base =
                shared ? workload::kStackBase : workload::kHeapBase;
            const uint32_t pages = shared ? 96 : 180;
            const ProcessAddr addr =
                base + static_cast<ProcessAddr>(
                           rng.NextZipf(pages, 0.85) * page +
                           (rng.NextBelow(128) * 32));
            const AccessType type =
                rng.Chance(0.10) ? AccessType::kWrite : AccessType::kRead;
            system.Access(cpu, MemRef{worker_pids[cpu], addr, type});
        }
    }

    MpRun result;
    result.total_flush_cycles =
        system.timing().Get(sim::TimeBucket::kFlush);
    result.page_ins = system.events().Get(sim::Event::kPageIn);
    result.ref_clears = system.events().Get(sim::Event::kRefClear);
    result.bus_transfers =
        system.events().Get(sim::Event::kBusCacheToCache);
    result.elapsed_seconds = system.timing().ElapsedSeconds();
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 3)) * 1'000'000ull;
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 21));
    runner::BenchSession session("ablation_mp_refbits", args);

    // Each (cpus, policy) combination builds its own MpSpurSystem, so
    // the grid runs concurrently on the session's job count.
    struct Combo {
        unsigned cpus;
        policy::RefPolicyKind ref;
    };
    std::vector<Combo> combos;
    for (const unsigned cpus : {1u, 2u, 4u, 8u}) {
        for (const policy::RefPolicyKind ref :
             {policy::RefPolicyKind::kMiss, policy::RefPolicyKind::kRef}) {
            combos.push_back(Combo{cpus, ref});
        }
    }
    std::vector<MpRun> runs(combos.size());
    runner::ParallelFor(combos.size(), session.jobs(), [&](size_t i) {
        runs[i] = Run(combos[i].cpus, combos[i].ref, refs, seed);
    });

    Table t("Ablation: reference-bit maintenance on a multiprocessor "
            "(shared-memory workers, 8 MB)");
    t.SetHeader({"CPUs", "policy", "ref clears", "flush Mcycles",
                 "bus transfers", "page-ins", "elapsed (s)"});
    for (size_t i = 0; i < combos.size(); ++i) {
        const MpRun& r = runs[i];
        t.AddRow({std::to_string(combos[i].cpus), ToString(combos[i].ref),
                  Table::Num(r.ref_clears),
                  Table::Num(static_cast<double>(r.total_flush_cycles) /
                                 1e6,
                             2),
                  Table::Num(r.bus_transfers), Table::Num(r.page_ins),
                  Table::Num(r.elapsed_seconds, 2)});
        if (i % 2 == 1) {
            t.AddSeparator();
        }
        stats::RunRecord record;
        // The CPU count is part of the cell's identity (records with one
        // identity must agree byte-for-byte when sweep shards merge), so
        // it goes in the workload label, not only the metrics.
        record.workload = "MP" + std::to_string(combos[i].cpus);
        record.ref_policy = ToString(combos[i].ref);
        record.memory_mb = 8;
        record.seed = seed;
        record.page_ins = r.page_ins;
        record.elapsed_seconds = r.elapsed_seconds;
        record.AddMetric("cpus", static_cast<double>(combos[i].cpus));
        record.AddMetric("ref_clears", static_cast<double>(r.ref_clears));
        record.AddMetric("flush_cycles",
                         static_cast<double>(r.total_flush_cycles));
        record.AddMetric("bus_transfers",
                         static_cast<double>(r.bus_transfers));
        session.Record(std::move(record));
    }
    t.Print(stdout);
    std::printf(
        "\nUnder REF every reference-bit clear flushes the page from all\n"
        "the caches: the flush work grows with the processor count while\n"
        "MISS's stays flat — the paper's Section 4.1 argument for why\n"
        "true reference bits do not belong on a multiprocessor.\n");
    return session.Finish();
}

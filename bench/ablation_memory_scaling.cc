/**
 * @file
 * The paper's closing prediction, tested: "the benefits of reference and
 * dirty bits decline as memory size increases, and may eventually
 * degrade rather than improve performance.  We are conducting further
 * studies to evaluate ... larger memory sizes."
 *
 * Sweeps memory from 5 to 16 MB for both workloads under MISS and NOREF
 * and reports where maintaining reference bits stops paying: the NOREF
 * elapsed-time penalty shrinks as paging vanishes while its savings
 * (no ref faults, no clears) stay, so the curves cross.
 *
 * Flags: --refs=M (millions), --seed=S
 */
#include <cstdio>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));

    Table t("Future work (Section 5): reference bits vs. memory size");
    t.SetHeader({"workload", "memory (MB)", "MISS page-ins",
                 "NOREF page-ins", "MISS elapsed (s)", "NOREF elapsed (s)",
                 "NOREF penalty"});

    for (const core::WorkloadId workload :
         {core::WorkloadId::kSlc, core::WorkloadId::kWorkload1}) {
        for (const uint32_t mb : {5u, 6u, 8u, 10u, 12u, 16u}) {
            double elapsed[2];
            uint64_t page_ins[2];
            int i = 0;
            for (const policy::RefPolicyKind ref :
                 {policy::RefPolicyKind::kMiss,
                  policy::RefPolicyKind::kNoRef}) {
                core::RunConfig config;
                config.workload = workload;
                config.memory_mb = mb;
                config.ref = ref;
                config.refs = refs;
                config.seed = seed;
                const core::RunResult r = core::RunOnce(config);
                elapsed[i] = r.elapsed_seconds;
                page_ins[i] = r.page_ins;
                ++i;
            }
            const double penalty =
                100.0 * (elapsed[1] - elapsed[0]) /
                (elapsed[0] > 0 ? elapsed[0] : 1);
            t.AddRow({ToString(workload), std::to_string(mb),
                      Table::Num(page_ins[0]), Table::Num(page_ins[1]),
                      Table::Num(elapsed[0], 2), Table::Num(elapsed[1], 2),
                      Table::Num(penalty, 1) + "%"});
        }
        t.AddSeparator();
    }
    t.Print(stdout);
    std::printf(
        "\nAs memory grows past the workload's footprint the page daemon\n"
        "goes idle, NOREF's extra page-ins vanish, and the cost of\n"
        "maintaining reference bits (ref faults on every post-clear\n"
        "miss, daemon clears) is all that separates the policies — the\n"
        "paper's prediction that the bits eventually become a liability.\n");
    return 0;
}

/**
 * @file
 * The paper's closing prediction, tested: "the benefits of reference and
 * dirty bits decline as memory size increases, and may eventually
 * degrade rather than improve performance.  We are conducting further
 * studies to evaluate ... larger memory sizes."
 *
 * Sweeps memory from 5 to 16 MB for both workloads under MISS and NOREF
 * and reports where maintaining reference bits stops paying: the NOREF
 * elapsed-time penalty shrinks as paging vanishes while its savings
 * (no ref faults, no clears) stay, so the curves cross.
 *
 * Flags: --refs=M (millions), --reps=N (default 1), --seed=S, plus the
 *        standard session flags --jobs=N, --json=FILE, --shard=K/N,
 *        --telemetry, --costs=FILE,
 *        --stream=FILE, --resume=FILE (src/runner/session.h)
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/runner/session.h"
#include "src/stats/summary.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    const auto reps = static_cast<uint32_t>(args.GetInt("reps", 1));
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    runner::BenchSession session("ablation_memory_scaling", args);

    const core::WorkloadId workloads[] = {core::WorkloadId::kSlc,
                                          core::WorkloadId::kWorkload1};
    const uint32_t memories[] = {5u, 6u, 8u, 10u, 12u, 16u};

    // One config per (workload, memory, policy) cell; MISS and NOREF
    // alternate so configs[2k] / configs[2k+1] form one table row.
    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload : workloads) {
        for (const uint32_t mb : memories) {
            for (const policy::RefPolicyKind ref :
                 {policy::RefPolicyKind::kMiss,
                  policy::RefPolicyKind::kNoRef}) {
                core::RunConfig config;
                config.workload = workload;
                config.memory_mb = mb;
                config.ref = ref;
                config.refs = refs;
                config.seed = seed;
                configs.push_back(config);
            }
        }
    }

    const auto results = session.RunMatrix(configs, reps);

    Table t("Future work (Section 5): reference bits vs. memory size");
    t.SetHeader({"workload", "memory (MB)", "MISS page-ins",
                 "NOREF page-ins", "MISS elapsed (s)", "NOREF elapsed (s)",
                 "NOREF penalty"});

    for (size_t i = 0; i < configs.size(); i += 2) {
        stats::Summary elapsed[2], page_ins[2];
        for (size_t p = 0; p < 2; ++p) {
            elapsed[p] = stats::Summary::Over(
                results[i + p],
                [](const core::RunResult& r) { return r.elapsed_seconds; });
            page_ins[p] = stats::Summary::Over(
                results[i + p],
                [](const core::RunResult& r) { return r.page_ins; });
        }
        const double penalty =
            100.0 * (elapsed[1].Mean() - elapsed[0].Mean()) /
            (elapsed[0].Mean() > 0 ? elapsed[0].Mean() : 1);
        t.AddRow({ToString(configs[i].workload),
                  std::to_string(configs[i].memory_mb),
                  Table::Num(static_cast<uint64_t>(page_ins[0].Mean())),
                  Table::Num(static_cast<uint64_t>(page_ins[1].Mean())),
                  Table::Num(elapsed[0].Mean(), 2),
                  Table::Num(elapsed[1].Mean(), 2),
                  Table::Num(penalty, 1) + "%"});
        if (configs[i].memory_mb == memories[std::size(memories) - 1]) {
            t.AddSeparator();
        }
    }
    t.Print(stdout);
    std::printf(
        "\nAs memory grows past the workload's footprint the page daemon\n"
        "goes idle, NOREF's extra page-ins vanish, and the cost of\n"
        "maintaining reference bits (ref faults on every post-clear\n"
        "miss, daemon clears) is all that separates the policies — the\n"
        "paper's prediction that the bits eventually become a liability.\n");
    return session.Finish();
}

/**
 * @file
 * Reproduces Table 4.1 — "Reference Bit Results" — by running both
 * workloads at 5, 6 and 8 MB under each of the three reference-bit
 * policies (MISS / REF / NOREF), with repetitions in randomized order as
 * in the paper's experiment design.  Reports page-ins and elapsed time,
 * each with the percentage relative to MISS at the same point.
 *
 * Flags: --reps=N (default 3; the paper used 5), --refs=M (millions),
 *        --csv, --seed=S, plus the standard session flags --jobs=N,
 *        --json=FILE, --shard=K/N, --telemetry, --costs=FILE,
 *        --stream=FILE, --resume=FILE (src/runner/session.h)
 */
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/runner/session.h"
#include "src/stats/summary.h"

namespace {

/** "(NN%)" cell contents for @p value relative to @p base. */
std::string
PctOf(double value, double base)
{
    // Built up with += (not a single operator+ chain): GCC 12's
    // -Wrestrict misfires on `const char* + string&&` inlined through
    // char_traits (GCC PR 105329).
    std::string out = "(";
    out += spur::Table::Num(100.0 * value / (base > 0 ? base : 1), 0);
    out += "%)";
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto reps = static_cast<uint32_t>(args.GetInt("reps", 3));
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    runner::BenchSession session("table_4_1_refbits", args);

    const policy::RefPolicyKind order[] = {policy::RefPolicyKind::kMiss,
                                           policy::RefPolicyKind::kRef,
                                           policy::RefPolicyKind::kNoRef};

    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload :
         {core::WorkloadId::kSlc, core::WorkloadId::kWorkload1}) {
        for (const uint32_t mb : {5u, 6u, 8u}) {
            for (const policy::RefPolicyKind ref : order) {
                core::RunConfig config;
                config.workload = workload;
                config.memory_mb = mb;
                config.dirty = policy::DirtyPolicyKind::kSpur;
                config.ref = ref;
                config.refs = refs;
                config.seed = seed;
                configs.push_back(config);
            }
        }
    }

    const auto results = session.RunMatrix(configs, reps);

    Table t("Table 4.1: Reference Bit Results (elapsed time in scaled "
            "seconds; percentages relative to MISS)");
    const bool show_ci = reps >= 2;
    if (show_ci) {
        t.SetHeader({"Workload", "Memory (MB)", "Policy", "Page-Ins", "",
                     "Elapsed (s)", "", "±95% CI (s)"});
    } else {
        t.SetHeader({"Workload", "Memory (MB)", "Policy", "Page-Ins", "",
                     "Elapsed (s)", ""});
    }

    for (size_t i = 0; i < configs.size(); i += 3) {
        stats::Summary page_ins[3], elapsed[3];
        for (size_t p = 0; p < 3; ++p) {
            page_ins[p] = stats::Summary::Over(
                results[i + p],
                [](const core::RunResult& r) { return r.page_ins; });
            elapsed[p] = stats::Summary::Over(
                results[i + p],
                [](const core::RunResult& r) { return r.elapsed_seconds; });
        }
        const double miss_pi = page_ins[0].Mean();
        const double miss_el = elapsed[0].Mean();
        for (size_t p = 0; p < 3; ++p) {
            const char* policy_name = ToString(order[p]);
            std::vector<std::string> row{
                p == 0 ? ToString(configs[i].workload) : "",
                p == 0 ? std::to_string(configs[i].memory_mb) : "",
                policy_name,
                Table::Num(static_cast<uint64_t>(page_ins[p].Mean())),
                PctOf(page_ins[p].Mean(), miss_pi),
                Table::Num(elapsed[p].Mean(), 0),
                PctOf(elapsed[p].Mean(), miss_el)};
            if (show_ci) {
                row.push_back(Table::Num(elapsed[p].Ci95(), 1));
            }
            t.AddRow(row);
        }
        t.AddSeparator();
    }

    if (args.Has("csv")) {
        t.PrintCsv(stdout);
    } else {
        t.Print(stdout);
        std::printf(
            "\nShape checks vs. the paper: NOREF generates substantially\n"
            "more page-ins at 5-6 MB but converges at 8 MB; REF's page-in\n"
            "savings never pay for its flush overhead, so MISS has the\n"
            "best (or near-best) elapsed time everywhere.\n");
    }
    return session.Finish();
}

/**
 * @file
 * google-benchmark micro-benchmarks for the virtual cache's primitive
 * operations: lookup hit/miss, fill, tag-checked page flush vs. SPUR's
 * indexed flush, and the full system Access() hot path.
 */
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "src/cache/cache.h"
#include "src/common/random.h"
#include "src/core/system.h"
#include "src/sim/config.h"
#include "src/workload/process.h"

namespace {

using namespace spur;

void
BM_CacheLookupHit(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    for (GlobalAddr a = 0; a < config.cache_bytes; a += config.block_bytes) {
        vcache.Fill(a, Protection::kReadWrite, true, nullptr);
    }
    Rng rng(1);
    for (auto _ : state) {
        const GlobalAddr addr = rng.NextBelow(config.cache_bytes);
        benchmark::DoNotOptimize(vcache.Lookup(addr));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheLookupMiss(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    Rng rng(1);
    for (auto _ : state) {
        // Addresses beyond the filled range always miss on tag.
        const GlobalAddr addr =
            config.cache_bytes + rng.NextBelow(1 << 30);
        benchmark::DoNotOptimize(vcache.Lookup(addr));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupMiss);

void
BM_CacheFill(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    Rng rng(1);
    cache::Eviction eviction;
    for (auto _ : state) {
        const GlobalAddr addr = rng.NextBelow(uint64_t{1} << 32);
        cache::LineRef line =
            vcache.Fill(addr, Protection::kReadWrite, false, &eviction);
        benchmark::DoNotOptimize(line);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheFill);

void
BM_FlushPageChecked(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    Rng rng(1);
    for (auto _ : state) {
        state.PauseTiming();
        const GlobalAddr page = rng.NextBelow(256) * config.page_bytes;
        for (uint64_t b = 0; b < config.BlocksPerPage(); b += 2) {
            vcache.Fill(page + b * config.block_bytes,
                        Protection::kReadWrite, true, nullptr);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(vcache.FlushPageChecked(page));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlushPageChecked);

void
BM_FlushPageIndexed(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    cache::VirtualCache vcache(config);
    Rng rng(1);
    for (auto _ : state) {
        state.PauseTiming();
        const GlobalAddr page = rng.NextBelow(256) * config.page_bytes;
        for (uint64_t b = 0; b < config.BlocksPerPage(); b += 2) {
            vcache.Fill(page + b * config.block_bytes,
                        Protection::kReadWrite, true, nullptr);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(vcache.FlushPageIndexed(page));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlushPageIndexed);

void
BM_SystemAccessHot(benchmark::State& state)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                            policy::RefPolicyKind::kMiss);
    const Pid pid = system.CreateProcess();
    system.MapRegion(pid, workload::kHeapBase, 64 * config.page_bytes,
                     vm::PageKind::kHeap);
    Rng rng(1);
    // Confine to 16 pages so the simulated cache mostly hits: this
    // measures the simulator's per-reference overhead on the fast path.
    const uint32_t span = 16 * static_cast<uint32_t>(config.page_bytes);
    for (auto _ : state) {
        const auto offset =
            static_cast<ProcessAddr>(rng.NextBelow(span) & ~3u);
        system.Access(pid, workload::kHeapBase + offset,
                      AccessType::kRead);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SystemAccessHot);

}  // namespace

SPUR_MICRO_BENCHMARK_MAIN()

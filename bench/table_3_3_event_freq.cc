/**
 * @file
 * Reproduces Table 3.3 — "Event Frequencies" — by running both synthetic
 * workloads at 5, 6 and 8 MB on the machine configured with the policies
 * SPUR actually implemented (SPUR dirty-bit mechanism, MISS reference
 * bits) and reading the cache controller's counters, exactly as the
 * prototype measurements were taken.
 *
 * Flags: --reps=N (default 1), --refs=M (override run length, millions),
 *        --csv, --seed=S, plus the standard session flags --jobs=N,
 *        --json=FILE, --shard=K/N, --telemetry, --costs=FILE,
 *        --stream=FILE, --resume=FILE (src/runner/session.h)
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/runner/session.h"
#include "src/stats/summary.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto reps = static_cast<uint32_t>(args.GetInt("reps", 1));
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    runner::BenchSession session("table_3_3_event_freq", args);

    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload :
         {core::WorkloadId::kSlc, core::WorkloadId::kWorkload1}) {
        for (const uint32_t mb : {5u, 6u, 8u}) {
            core::RunConfig config;
            config.workload = workload;
            config.memory_mb = mb;
            config.dirty = policy::DirtyPolicyKind::kSpur;
            config.ref = policy::RefPolicyKind::kMiss;
            config.refs = refs;
            config.seed = seed;
            configs.push_back(config);
        }
    }

    const auto results = session.RunMatrix(configs, reps);

    Table t("Table 3.3: Event Frequencies  (N_w-hit / N_w-miss in "
            "prototype-equivalent millions via the documented "
            "reference-compression factor; elapsed in scaled seconds)");
    t.SetHeader({"Workload", "Size (MB)", "N_ds", "N_zfod", "N_ef = N_dm",
                 "N_w-hit (M)", "N_w-miss (M)", "t_elapsed (s)"});
    const char* last_workload = nullptr;
    for (size_t i = 0; i < configs.size(); ++i) {
        using core::RunResult;
        const auto ds = stats::Summary::Over(
            results[i], [](const RunResult& r) { return r.frequencies.n_ds; });
        const auto zfod = stats::Summary::Over(
            results[i],
            [](const RunResult& r) { return r.frequencies.n_zfod; });
        const auto ef = stats::Summary::Over(
            results[i], [](const RunResult& r) { return r.frequencies.n_ef; });
        const auto whit = stats::Summary::Over(
            results[i],
            [](const RunResult& r) { return r.frequencies.n_w_hit; });
        const auto wmiss = stats::Summary::Over(
            results[i],
            [](const RunResult& r) { return r.frequencies.n_w_miss; });
        const auto elapsed = stats::Summary::Over(
            results[i], [](const RunResult& r) { return r.elapsed_seconds; });
        const char* name = ToString(configs[i].workload);
        const double scale = core::RefCompression(configs[i].workload);
        if (last_workload != nullptr && name != last_workload) {
            t.AddSeparator();
        }
        last_workload = name;
        t.AddRow({name, std::to_string(configs[i].memory_mb),
                  Table::Num(static_cast<uint64_t>(ds.Mean())),
                  Table::Num(static_cast<uint64_t>(zfod.Mean())),
                  Table::Num(static_cast<uint64_t>(ef.Mean())),
                  Table::Num(whit.Mean() * scale / 1e6, 2),
                  Table::Num(wmiss.Mean() * scale / 1e6, 2),
                  Table::Num(elapsed.Mean(), 0)});
    }
    if (args.Has("csv")) {
        t.PrintCsv(stdout);
    } else {
        t.Print(stdout);
        std::printf(
            "\nShape checks vs. the paper: excess faults are a small\n"
            "fraction of necessary faults and shrink with memory;\n"
            "N_w-hit : N_w-miss is roughly 1 : 4-6; N_zfod is nearly\n"
            "constant across memory sizes while N_ds falls.\n");
    }
    return session.Finish();
}

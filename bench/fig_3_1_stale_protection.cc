/**
 * @file
 * Reproduces Figure 3.1 — "Example of Multiple Cache Blocks" — by driving
 * the real machine through the scenario the figure illustrates:
 *
 *   1. Two blocks of page A are brought into the cache while the page's
 *      protection is read-only (the FAULT policy's initial state for
 *      writable pages).
 *   2. The first write faults; the handler upgrades the PTE to
 *      read-write.
 *   3. A write to the *other* previously cached block still sees the
 *      stale read-only copy in its cache line and faults again — the
 *      excess fault.
 *
 * The same scenario is then replayed under the SPUR dirty-bit-miss
 * mechanism, where step 3 costs a 25-cycle dirty-bit miss instead of a
 * 1000-cycle fault.
 *
 * Flags: --jobs=N (accepted for uniformity), --json=FILE
 */
#include <cstdio>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/runner/session.h"
#include "src/sim/config.h"
#include "src/workload/process.h"

namespace {

using namespace spur;

/** Final event counters after the four-step scenario. */
struct ScenarioTotals {
    uint64_t necessary = 0;
    uint64_t excess = 0;
    uint64_t dirty_bit_misses = 0;
    uint64_t fault_aux_cycles = 0;
};

ScenarioTotals
RunScenario(policy::DirtyPolicyKind dirty, Table* out)
{
    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::SpurSystem system(config, dirty, policy::RefPolicyKind::kMiss);
    const Pid pid = system.CreateProcess();
    system.MapRegion(pid, workload::kHeapBase, config.page_bytes,
                     vm::PageKind::kHeap);

    const ProcessAddr block0 = workload::kHeapBase;
    const ProcessAddr block1 = workload::kHeapBase +
                               static_cast<ProcessAddr>(config.block_bytes);

    auto snapshot = [&](const char* step) {
        const auto& ev = system.events();
        out->AddRow({step,
                     Table::Num(ev.Get(sim::Event::kDirtyFault)),
                     Table::Num(ev.Get(sim::Event::kExcessFault)),
                     Table::Num(ev.Get(sim::Event::kDirtyBitMiss)),
                     Table::Num(system.timing().Get(sim::TimeBucket::kFault) +
                                system.timing().Get(
                                    sim::TimeBucket::kDirtyAux))});
    };

    // Touch the page with a read first so the zero-fill dirty fault does
    // not conflate the picture: the page is resident and clean, exactly
    // the figure's starting point.
    system.Access(pid, block0, AccessType::kRead);
    system.Access(pid, block1, AccessType::kRead);
    snapshot("blocks 0,1 read in (page clean, cached PR=RO)");

    system.Access(pid, block0, AccessType::kWrite);
    snapshot("write block 0: necessary fault, PTE now RW");

    system.Access(pid, block1, AccessType::kWrite);
    snapshot("write block 1: stale cached state");

    system.Access(pid, block1, AccessType::kWrite);
    snapshot("write block 1 again: proceeds normally");

    const auto& ev = system.events();
    return ScenarioTotals{
        ev.Get(sim::Event::kDirtyFault), ev.Get(sim::Event::kExcessFault),
        ev.Get(sim::Event::kDirtyBitMiss),
        system.timing().Get(sim::TimeBucket::kFault) +
            system.timing().Get(sim::TimeBucket::kDirtyAux)};
}

void
RecordScenario(runner::BenchSession* session, policy::DirtyPolicyKind dirty,
               const ScenarioTotals& totals)
{
    stats::RunRecord record;
    record.workload = "fig_3_1_scenario";
    record.dirty_policy = ToString(dirty);
    record.memory_mb = 8;
    record.AddMetric("necessary_faults",
                     static_cast<double>(totals.necessary));
    record.AddMetric("excess_faults", static_cast<double>(totals.excess));
    record.AddMetric("dirty_bit_misses",
                     static_cast<double>(totals.dirty_bit_misses));
    record.AddMetric("fault_aux_cycles",
                     static_cast<double>(totals.fault_aux_cycles));
    session->Record(std::move(record));
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    runner::BenchSession session("fig_3_1_stale_protection", args);

    std::printf("Figure 3.1: writes to previously cached blocks after the\n"
                "page's first dirty fault.\n\n");

    Table fault("FAULT policy (emulate dirty bits with protection)");
    fault.SetHeader({"step", "necessary", "excess", "dirty-bit misses",
                     "fault+aux cycles"});
    RecordScenario(&session, policy::DirtyPolicyKind::kFault,
                   RunScenario(policy::DirtyPolicyKind::kFault, &fault));
    fault.Print(stdout);
    std::printf("\n");

    Table spurp("SPUR policy (cached page dirty bit + dirty-bit miss)");
    spurp.SetHeader({"step", "necessary", "excess", "dirty-bit misses",
                     "fault+aux cycles"});
    RecordScenario(&session, policy::DirtyPolicyKind::kSpur,
                   RunScenario(policy::DirtyPolicyKind::kSpur, &spurp));
    spurp.Print(stdout);

    std::printf(
        "\nThe excess fault costs t_ds = 1000 cycles under FAULT; the same\n"
        "event is a t_dm = 25 cycle dirty-bit miss under SPUR.\n");
    return session.Finish();
}

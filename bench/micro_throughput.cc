/**
 * @file
 * google-benchmark throughput measurement for the full-system reference
 * path: simulated-references-per-second through SpurSystem::Access()
 * across representative (dirty, ref) policy cells.
 *
 * Unlike micro_cache.cc, which times individual cache primitives, this
 * bench replays a fixed, pre-generated synthetic reference stream so the
 * number reported is the simulator's end-to-end per-reference cost —
 * segment mapping, cache lookup, policy dispatch, event counting, cycle
 * accounting — with reference *generation* excluded from the timed loop.
 * The items_per_second counter is the headline simulated-refs/sec figure
 * the CI perf gate tracks.
 */
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/micro_common.h"

#include "src/core/system.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/sim/config.h"
#include "src/sim/counters.h"
#include "src/workload/process.h"
#include "src/workload/profile.h"

namespace {

using namespace spur;

/// References in the replay buffer.  Large enough that one pass touches
/// the whole synthetic working set (cold misses amortized by the warmup
/// pass), small enough to regenerate quickly per benchmark.
constexpr size_t kBufRefs = 1 << 16;

/// Builds the deterministic replay buffer: the first kBufRefs references
/// a default-profile synthetic process would issue.  Generation reads
/// only the process's private RNG, so the stream is independent of the
/// policy cell under test.
std::vector<MemRef>
MakeRefStream(workload::WorkloadHost& host)
{
    workload::ProcessProfile profile;
    workload::SyntheticProcess proc(host, profile, /*seed=*/42);
    std::vector<MemRef> refs;
    refs.reserve(kBufRefs);
    for (size_t i = 0; i < kBufRefs; ++i) {
        refs.push_back(proc.Next());
    }
    return refs;
    // ~SyntheticProcess() destroys the pid; the bench recreates an
    // identical process (same seed, same fresh system) to replay into.
}

/// Replays the stream through the host's per-reference entry point.
/// Issued through the WorkloadHost interface — exactly how the workload
/// driver reaches the system — so interface dispatch is part of the
/// measured cost.
void
RunFullSystem(benchmark::State& state, policy::DirtyPolicyKind dirty,
              policy::RefPolicyKind ref, bool attach_counters,
              bool batched = false)
{
    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::SpurSystem system(config, dirty, ref);
    sim::PerfCounters counters;
    if (attach_counters) {
        system.AttachPerfCounters(&counters);
    }
    workload::WorkloadHost& host = system;

    std::vector<MemRef> refs = MakeRefStream(host);
    workload::ProcessProfile profile;
    workload::SyntheticProcess proc(host, profile, /*seed=*/42);
    // Rewrite the recorded stream onto the live process's pid so the
    // replay resolves to the same global addresses.
    for (MemRef& r : refs) {
        r.pid = proc.pid();
    }
    // One warmup pass so steady-state (mostly-hit) behaviour dominates.
    for (const MemRef& r : refs) {
        host.Access(r);
    }

    if (batched) {
        // The driver's issue path: one AccessBatch() dispatch per quantum.
        for (auto _ : state) {
            host.AccessBatch(refs.data(), refs.size());
            benchmark::ClobberMemory();
        }
    } else {
        for (auto _ : state) {
            for (const MemRef& r : refs) {
                host.Access(r);
            }
            benchmark::ClobberMemory();
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(refs.size()));
}

void
BM_FullSystem_SPUR_MISS(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kSpur,
                  policy::RefPolicyKind::kMiss, /*attach_counters=*/false);
}
BENCHMARK(BM_FullSystem_SPUR_MISS);

void
BM_FullSystem_FAULT_NOREF(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kFault,
                  policy::RefPolicyKind::kNoRef, /*attach_counters=*/false);
}
BENCHMARK(BM_FullSystem_FAULT_NOREF);

void
BM_FullSystem_WRITE_REF(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kWrite,
                  policy::RefPolicyKind::kRef, /*attach_counters=*/false);
}
BENCHMARK(BM_FullSystem_WRITE_REF);

void
BM_FullSystem_MIN_NOREF(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kMin,
                  policy::RefPolicyKind::kNoRef, /*attach_counters=*/false);
}
BENCHMARK(BM_FullSystem_MIN_NOREF);

/// The observed variant: PerfCounters attached, every event mirrored.
/// Tracks the cost of observation staying *off* the unobserved path.
void
BM_FullSystem_SPUR_MISS_Observed(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kSpur,
                  policy::RefPolicyKind::kMiss, /*attach_counters=*/true);
}
BENCHMARK(BM_FullSystem_SPUR_MISS_Observed);

// Batched-issue variants: the same streams through AccessBatch(), the
// entry point the workload driver uses.  These are the headline
// simulated-refs/sec numbers.

void
BM_FullSystemBatch_SPUR_MISS(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kSpur,
                  policy::RefPolicyKind::kMiss, /*attach_counters=*/false,
                  /*batched=*/true);
}
BENCHMARK(BM_FullSystemBatch_SPUR_MISS);

void
BM_FullSystemBatch_FAULT_NOREF(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kFault,
                  policy::RefPolicyKind::kNoRef, /*attach_counters=*/false,
                  /*batched=*/true);
}
BENCHMARK(BM_FullSystemBatch_FAULT_NOREF);

void
BM_FullSystemBatch_WRITE_REF(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kWrite,
                  policy::RefPolicyKind::kRef, /*attach_counters=*/false,
                  /*batched=*/true);
}
BENCHMARK(BM_FullSystemBatch_WRITE_REF);

void
BM_FullSystemBatch_MIN_NOREF(benchmark::State& state)
{
    RunFullSystem(state, policy::DirtyPolicyKind::kMin,
                  policy::RefPolicyKind::kNoRef, /*attach_counters=*/false,
                  /*batched=*/true);
}
BENCHMARK(BM_FullSystemBatch_MIN_NOREF);

}  // namespace

SPUR_MICRO_BENCHMARK_MAIN()

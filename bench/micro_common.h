/**
 * @file
 * Shared main() for the google-benchmark micro benches, giving them the
 * same command-line surface as the table/ablation benches:
 *
 *   --jobs=N    accepted and ignored (micro benches are single-threaded
 *               timing loops; running them concurrently would only add
 *               noise to the numbers)
 *   --json=FILE translated to google-benchmark's own JSON reporter
 *               (--benchmark_out=FILE --benchmark_out_format=json)
 *
 * Native --benchmark_* flags are forwarded to benchmark::Initialize
 * unchanged.  Any other --flag (e.g. --reps passed by run_all.sh to the
 * whole suite) is dropped rather than rejected, so the micro benches can
 * share a command line with the table benches.
 */
#ifndef SPUR_BENCH_MICRO_COMMON_H_
#define SPUR_BENCH_MICRO_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#define SPUR_MICRO_BENCHMARK_MAIN()                                         \
    int main(int argc, char** argv)                                         \
    {                                                                       \
        return spur::bench_micro::Main(argc, argv);                         \
    }

namespace spur::bench_micro {

inline int
Main(int argc, char** argv)
{
    std::vector<std::string> storage;
    storage.reserve(static_cast<size_t>(argc) + 1);
    storage.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--json=", 7) == 0) {
            storage.emplace_back(std::string("--benchmark_out=") +
                                 (arg + 7));
            storage.emplace_back("--benchmark_out_format=json");
            continue;
        }
        if (std::strncmp(arg, "--", 2) == 0 &&
            std::strncmp(arg, "--benchmark_", 12) != 0) {
            continue;  // --jobs and other table-bench flags: ignored.
        }
        storage.emplace_back(arg);
    }

    std::vector<char*> rewritten;
    rewritten.reserve(storage.size());
    for (std::string& s : storage) {
        rewritten.push_back(s.data());
    }
    int rewritten_argc = static_cast<int>(rewritten.size());
    benchmark::Initialize(&rewritten_argc, rewritten.data());
    if (benchmark::ReportUnrecognizedArguments(rewritten_argc,
                                               rewritten.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace spur::bench_micro

#endif  // SPUR_BENCH_MICRO_COMMON_H_

/**
 * @file
 * Reproduces Table 3.5 — "Page-Out Results from Sprite Development
 * Systems" — with six simulated development machines at 8, 12 and 16 MB
 * of memory and varying load intensity (users self-schedule big jobs
 * onto big-memory machines, so intensity grows with memory).
 *
 * Columns follow the paper: page-ins, potentially modified (writable)
 * pages replaced, how many of those were *not* modified (the page-outs
 * dirty bits saved), and the extra paging I/O that would occur without
 * dirty bits.
 *
 * Flags: --refs=M (millions, per host), --csv, --seed=S, --scenarios
 *        (append a page-out table over the DESIGN.md §19 scenario
 *        library — ctx-switch, flush-storm, server-churn, gc-sweep),
 *        plus the standard session flags --jobs=N, --json=FILE,
 *        --shard=K/N, --telemetry, --costs=FILE, --stream=FILE,
 *        --resume=FILE, --record-trace=FILE, --replay-trace=FILE
 *        (src/runner/session.h)
 */
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    runner::BenchSession session("table_3_5_pageout", args);

    struct Host {
        const char* name;
        uint32_t memory_mb;
        double intensity;
        uint32_t hours;  ///< Nominal observation window (for flavour).
    };
    // Modelled on the paper's hosts: mace and sloth are busy 8 MB
    // machines, sage and fenugreek are 12 MB, murder is a loaded 16 MB
    // server.
    const Host hosts[] = {
        {"mace", 8, 1.30, 70},   {"sloth", 8, 1.00, 37},
        {"mace", 8, 1.60, 46},   {"sage", 12, 1.70, 45},
        {"fenugreek", 12, 1.85, 36}, {"murder", 16, 3.00, 119},
    };

    Table t("Table 3.5: Page-Out Results from Simulated Development "
            "Systems");
    t.SetHeader({"Hostname", "Memory", "Window", "Page-Ins",
                 "Potentially Modified", "Not Modified", "% Not Modified",
                 "% Additional Paging I/O"});

    std::vector<core::RunConfig> configs;
    for (const Host& host : hosts) {
        core::RunConfig config;
        config.workload = core::WorkloadId::kDevMachine;
        config.memory_mb = host.memory_mb;
        config.intensity = host.intensity;
        config.refs = refs;
        config.seed = seed + host.hours;  // Distinct, reproducible.
        config.dirty = policy::DirtyPolicyKind::kSpur;
        config.ref = policy::RefPolicyKind::kMiss;
        configs.push_back(config);
    }
    const auto results = session.RunAll(configs);

    for (size_t i = 0; i < std::size(hosts); ++i) {
        const Host& host = hosts[i];
        const core::RunResult& r = results[i];

        const uint64_t modified =
            r.events.Get(sim::Event::kPageoutWritableModified);
        const uint64_t not_modified =
            r.events.Get(sim::Event::kPageoutWritableNotModified);
        const uint64_t potentially = modified + not_modified;
        const uint64_t total_io = r.page_ins + r.page_outs;
        const double pct_not_modified =
            (potentially > 0)
                ? static_cast<double>(not_modified) /
                      static_cast<double>(potentially)
                : 0.0;
        // Without dirty bits every clean writable reclaim becomes a
        // page-out: the additional I/O relative to today's total.
        const double pct_additional =
            (total_io > 0) ? static_cast<double>(not_modified) /
                                 static_cast<double>(total_io)
                           : 0.0;

        t.AddRow({host.name, std::to_string(host.memory_mb) + " MB",
                  std::to_string(host.hours) + " h",
                  Table::Num(r.page_ins), Table::Num(potentially),
                  Table::Num(not_modified), Table::Pct(pct_not_modified),
                  Table::Pct(pct_additional, 1)});
    }

    if (args.Has("csv")) {
        t.PrintCsv(stdout);
    } else {
        t.Print(stdout);
        std::printf(
            "\nShape checks vs. the paper: at 8 MB at least ~80%% of\n"
            "replaced writable pages were actually modified (>=90%% at\n"
            "12+ MB), and dropping dirty bits would add at most a few\n"
            "percent of paging I/O — dirty bits buy very little here.\n");
    }

    // The scenario library (DESIGN.md §19): the same page-out columns
    // over the VAC-stress scripts, on one 8 MB machine each.
    if (args.Has("scenarios")) {
        Table s("Scenario library: page-out results (8 MB, SPUR/MISS)");
        s.SetHeader({"Scenario", "Page-Ins", "Potentially Modified",
                     "Not Modified", "% Not Modified",
                     "% Additional Paging I/O"});
        std::vector<core::RunConfig> scenario_configs;
        for (const core::WorkloadId id : core::kScenarioLibrary) {
            core::RunConfig config;
            config.workload = id;
            config.memory_mb = 8;
            config.refs = refs;
            config.seed = seed;
            config.dirty = policy::DirtyPolicyKind::kSpur;
            config.ref = policy::RefPolicyKind::kMiss;
            scenario_configs.push_back(config);
        }
        const auto scenario_results = session.RunAll(scenario_configs);
        for (size_t i = 0; i < scenario_configs.size(); ++i) {
            const core::RunResult& r = scenario_results[i];
            const uint64_t modified =
                r.events.Get(sim::Event::kPageoutWritableModified);
            const uint64_t not_modified =
                r.events.Get(sim::Event::kPageoutWritableNotModified);
            const uint64_t potentially = modified + not_modified;
            const uint64_t total_io = r.page_ins + r.page_outs;
            const double pct_not_modified =
                (potentially > 0) ? static_cast<double>(not_modified) /
                                        static_cast<double>(potentially)
                                  : 0.0;
            const double pct_additional =
                (total_io > 0) ? static_cast<double>(not_modified) /
                                     static_cast<double>(total_io)
                               : 0.0;
            s.AddRow({ToString(scenario_configs[i].workload),
                      Table::Num(r.page_ins), Table::Num(potentially),
                      Table::Num(not_modified),
                      Table::Pct(pct_not_modified),
                      Table::Pct(pct_additional, 1)});
        }
        if (args.Has("csv")) {
            s.PrintCsv(stdout);
        } else {
            s.Print(stdout);
        }
    }
    return session.Finish();
}

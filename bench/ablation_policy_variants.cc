/**
 * @file
 * Ablation over the policy variants the paper describes but did not
 * build:
 *
 *  - SPUR-PROT: the Section 3.1 "generalized" SPUR scheme on the
 *    protection field.  Must be cycle-identical to SPUR (saving one tag
 *    bit per cache line and 7% of the controller PLA).
 *  - WRITE-HW: the real Sun-3 mechanism, where hardware updates the
 *    dirty bit itself — no faults at all.  Even so, the per-block check
 *    keeps it far more expensive than FAULT, strengthening the paper's
 *    "no special hardware is necessary" conclusion.
 *
 * Mechanistic runs (each policy actually executes); w-hit-driven terms
 * are also reported at prototype scale via the analytic model.
 *
 * Flags: --refs=M (millions, default 6), --scenarios (append the
 *        DESIGN.md §19 scenario-library workloads — ctx-switch,
 *        flush-storm, server-churn, gc-sweep — to the analytic table),
 *        plus the standard session flags --jobs=N, --json=FILE,
 *        --shard=K/N, --telemetry, --costs=FILE, --stream=FILE,
 *        --resume=FILE, --record-trace=FILE, --replay-trace=FILE
 *        (src/runner/session.h)
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/overhead_model.h"
#include "src/core/system.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/workload/driver.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 6)) * 1'000'000ull;
    runner::BenchSession session("ablation_policy_variants", args);

    // Mechanistic comparison: SPUR vs SPUR-PROT must match exactly.
    // Each policy drives a private SpurSystem, so the pair runs
    // concurrently; rows are emitted in fixed order afterwards.
    struct MechRun {
        uint64_t n_ds = 0;
        uint64_t refreshes = 0;
        uint64_t fault_cycles = 0;
        uint64_t aux_cycles = 0;
        uint64_t misses = 0;
    };
    const policy::DirtyPolicyKind kinds[] = {
        policy::DirtyPolicyKind::kSpur,
        policy::DirtyPolicyKind::kSpurProt};
    MechRun mech[2];
    runner::ParallelFor(2, session.jobs(), [&](size_t i) {
        sim::MachineConfig config = sim::MachineConfig::Prototype(6);
        config.page_in_us = 800.0;
        core::SpurSystem system(config, kinds[i],
                                policy::RefPolicyKind::kMiss);
        workload::Driver driver(system, workload::MakeWorkload1(), refs, 3);
        driver.Run();
        const auto& ev = system.events();
        mech[i] = MechRun{ev.Get(sim::Event::kDirtyFault),
                          ev.Get(sim::Event::kDirtyBitMiss),
                          system.timing().Get(sim::TimeBucket::kFault),
                          system.timing().Get(sim::TimeBucket::kDirtyAux),
                          ev.TotalMisses()};
    });

    Table eq("SPUR vs SPUR-PROT (mechanistic, WORKLOAD1 @ 6 MB): the "
             "generalized scheme is identical");
    eq.SetHeader({"policy", "N_ds", "refresh events", "fault cycles",
                  "aux cycles", "misses"});
    for (size_t i = 0; i < 2; ++i) {
        eq.AddRow({ToString(kinds[i]), Table::Num(mech[i].n_ds),
                   Table::Num(mech[i].refreshes),
                   Table::Num(mech[i].fault_cycles),
                   Table::Num(mech[i].aux_cycles),
                   Table::Num(mech[i].misses)});
        stats::RunRecord record;
        record.workload = "WORKLOAD1";
        record.dirty_policy = ToString(kinds[i]);
        record.memory_mb = 6;
        record.seed = 3;
        record.refs_issued = refs;
        record.AddMetric("n_ds", static_cast<double>(mech[i].n_ds));
        record.AddMetric("refresh_events",
                         static_cast<double>(mech[i].refreshes));
        record.AddMetric("fault_cycles",
                         static_cast<double>(mech[i].fault_cycles));
        record.AddMetric("aux_cycles",
                         static_cast<double>(mech[i].aux_cycles));
        record.AddMetric("misses", static_cast<double>(mech[i].misses));
        session.Record(std::move(record));
    }
    eq.Print(stdout);
    std::printf("\n");

    // Analytic comparison at prototype scale: WRITE-HW vs the rest.
    Table hw("WRITE-HW vs FAULT/SPUR (analytic, prototype-equivalent "
             "scale, zero-fills excluded; millions of cycles)");
    hw.SetHeader({"Workload", "Memory (MB)", "FAULT", "SPUR", "WRITE",
                  "WRITE-HW"});
    const core::OverheadModel model(sim::MachineConfig::Prototype(8));
    std::vector<core::WorkloadId> workloads = {core::WorkloadId::kSlc,
                                               core::WorkloadId::kWorkload1};
    if (args.Has("scenarios")) {
        // The scenario library (DESIGN.md §19), marked by its workload
        // names in the rows below.
        for (const core::WorkloadId id : core::kScenarioLibrary) {
            workloads.push_back(id);
        }
    }
    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload : workloads) {
        for (const uint32_t mb : {5u, 8u}) {
            core::RunConfig config;
            config.workload = workload;
            config.memory_mb = mb;
            config.refs = refs;
            configs.push_back(config);
        }
    }
    const auto results = session.RunAll(configs);
    for (size_t i = 0; i < configs.size(); ++i) {
        core::EventFrequencies f = results[i].frequencies;
        const double scale = core::RefCompression(configs[i].workload);
        f.n_w_hit =
            static_cast<uint64_t>(static_cast<double>(f.n_w_hit) * scale);
        f.n_w_miss =
            static_cast<uint64_t>(static_cast<double>(f.n_w_miss) * scale);
        hw.AddRow(
            {ToString(configs[i].workload),
             std::to_string(configs[i].memory_mb),
             Table::Num(
                 model.Overhead(policy::DirtyPolicyKind::kFault, f) / 1e6,
                 2),
             Table::Num(
                 model.Overhead(policy::DirtyPolicyKind::kSpur, f) / 1e6,
                 2),
             Table::Num(
                 model.Overhead(policy::DirtyPolicyKind::kWrite, f) / 1e6,
                 2),
             Table::Num(
                 model.Overhead(policy::DirtyPolicyKind::kWriteHw, f) / 1e6,
                 2)});
    }
    hw.Print(stdout);
    std::printf(
        "\nEliminating the faults (WRITE-HW) removes the N_ds*t_ds term,\n"
        "but the per-block check volume still dwarfs FAULT's total - the\n"
        "check rate, not the fault cost, is what sinks the Sun-3 scheme.\n");
    return session.Finish();
}

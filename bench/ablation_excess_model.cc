/**
 * @file
 * Reproduces footnote 3 of Section 3.2: the geometric probability model
 * for excess faults.  The model assumes a uniform read/write miss mix,
 * infinitely large pages, and necessary faults only on write misses; the
 * number of excess faults per necessary fault is then geometric with
 * parameter p_w = N_w-miss / (N_w-hit + N_w-miss), i.e. its mean is
 * (1 - p_w) / p_w.  The paper notes the model *over*-predicts (relaxing
 * its assumptions only lowers the expectation) and that measured ratios
 * come in below it.
 *
 * This bench (a) verifies the geometric mean analytically over a sweep
 * of p_w, and (b) compares the model's prediction against the measured
 * excess ratio for both workloads at all three memory sizes.
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/overhead_model.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    runner::BenchSession session("ablation_excess_model", args);

    Table sweep("Geometric model sweep: E[excess per necessary] = "
                "(1 - p_w) / p_w");
    sweep.SetHeader({"p_w (write-miss probability)", "predicted ratio"});
    for (const double p_w : {0.5, 0.6, 0.7, 0.8, 0.833, 0.9}) {
        core::EventFrequencies f;
        f.n_w_miss = static_cast<uint64_t>(p_w * 1e6);
        f.n_w_hit = static_cast<uint64_t>((1.0 - p_w) * 1e6);
        sweep.AddRow({Table::Num(p_w, 3),
                      Table::Pct(core::OverheadModel::PredictedExcessRatio(f),
                                 1)});
    }
    sweep.Print(stdout);
    std::printf("\nAt the paper's measured 1:4-6 w-hit:w-miss mix "
                "(p_w ~ 0.8-0.86) the model\npredicts < ~25%% excess per "
                "necessary fault.\n\n");

    Table t("Model vs. measurement (zero-fill faults excluded)");
    t.SetHeader({"Workload", "Memory (MB)", "p_w", "model prediction",
                 "measured excess ratio"});
    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload :
         {core::WorkloadId::kSlc, core::WorkloadId::kWorkload1}) {
        for (const uint32_t mb : {5u, 6u, 8u}) {
            core::RunConfig config;
            config.workload = workload;
            config.memory_mb = mb;
            config.refs = refs;
            configs.push_back(config);
        }
    }
    const auto results = session.RunAll(configs);
    for (size_t i = 0; i < configs.size(); ++i) {
        const core::RunResult& r = results[i];
        t.AddRow({ToString(configs[i].workload),
                  std::to_string(configs[i].memory_mb),
                  Table::Num(core::OverheadModel::WriteMissProbability(
                                 r.frequencies),
                             3),
                  Table::Pct(core::OverheadModel::PredictedExcessRatio(
                                 r.frequencies),
                             1),
                  Table::Pct(core::OverheadModel::MeasuredExcessRatio(
                                 r.frequencies),
                             1)});
    }
    t.Print(stdout);
    std::printf("\nAs in the paper, the measured ratio stays below the "
                "model's\nprediction: pages that will be modified are "
                "modified quickly.\n");
    return session.Finish();
}

#!/bin/sh
# Regenerates every paper table/figure and ablation into stdout.
# Usage: bench/run_all.sh [build_dir]
set -e
BUILD="${1:-build}"
for b in "$BUILD"/bench/*; do
    [ -x "$b" ] || continue
    echo "==================================================================="
    echo "== $(basename "$b")"
    echo "==================================================================="
    "$b"
    echo
done

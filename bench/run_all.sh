#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into stdout.
#
# Usage: bench/run_all.sh [build_dir] [--json-dir=DIR] [extra flags...]
#
# The optional build_dir (default: build) must come first.  Every other
# argument is passed through to each bench binary, so e.g.
#
#   bench/run_all.sh build --jobs=8 --reps=2
#
# runs the whole suite with 8 worker threads.  With --json-dir=DIR each
# bench additionally writes machine-readable run records to
# DIR/<bench>.json (the micro benches emit google-benchmark's JSON).
set -euo pipefail

BUILD="build"
JSON_DIR=""
ARGS=()
for arg in "$@"; do
    case "$arg" in
        --json-dir=*)
            JSON_DIR="${arg#--json-dir=}"
            ;;
        --*)
            ARGS+=("$arg")
            ;;
        *)
            BUILD="$arg"
            ;;
    esac
done

if [[ ! -d "$BUILD/bench" ]]; then
    echo "error: no bench binaries under '$BUILD' (build first?)" >&2
    exit 1
fi

if [[ -n "$JSON_DIR" ]]; then
    mkdir -p "$JSON_DIR"
fi

for b in "$BUILD"/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    name="$(basename "$b")"
    echo "==================================================================="
    echo "== $name"
    echo "==================================================================="
    EXTRA=()
    if [[ -n "$JSON_DIR" ]]; then
        EXTRA+=("--json=$JSON_DIR/$name.json")
    fi
    "$b" ${ARGS[@]+"${ARGS[@]}"} ${EXTRA[@]+"${EXTRA[@]}"}
    echo
done

#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into stdout.
#
# Usage: bench/run_all.sh [build_dir] [--json-dir=DIR] [--shard=K/N]
#                         [--stream-dir=DIR] [extra flags...]
#        bench/run_all.sh [build_dir] --merge-dir=DIR
#
# The optional build_dir (default: build) must come first.  Every other
# argument is passed through to each bench binary, so e.g.
#
#   bench/run_all.sh build --jobs=8 --reps=2
#
# runs the whole suite with 8 worker threads.  With --json-dir=DIR each
# bench additionally writes machine-readable run records to
# DIR/<bench>.json (the micro benches emit google-benchmark's JSON).
#
# --shard=K/N runs this process's slice of a distributed sweep: each
# bench gets the flag passed through and its JSON lands in
# DIR/<bench>.shard_K_of_N.json.  The micro benches do not shard
# (google-benchmark has no cell notion), so only shard 0 runs them.
# After all N shard invocations have run with the same --json-dir,
# merge per-bench with:
#
#   bench/run_all.sh build --merge-dir=DIR
#
# which runs `spur_sweep merge` over every DIR/<bench>.shard_*.json
# group and writes the canonical merged DIR/<bench>.json files.
#
# --stream-dir=DIR additionally gives each bench --stream so every
# record lands crash-tolerantly in DIR/<bench><shard suffix>.stream as
# it completes; a killed suite is recovered per file with
# `spur_sweep recover` and finished with --resume (DESIGN.md §14).
# Like sharding, the micro benches are excluded (google-benchmark has
# no record stream).
set -euo pipefail

BUILD="build"
JSON_DIR=""
MERGE_DIR=""
STREAM_DIR=""
SHARD=""
ARGS=()
for arg in "$@"; do
    case "$arg" in
        --json-dir=*)
            JSON_DIR="${arg#--json-dir=}"
            ;;
        --stream-dir=*)
            STREAM_DIR="${arg#--stream-dir=}"
            ;;
        --merge-dir=*)
            MERGE_DIR="${arg#--merge-dir=}"
            ;;
        --shard=*)
            SHARD="${arg#--shard=}"
            ARGS+=("$arg")
            ;;
        --*)
            ARGS+=("$arg")
            ;;
        *)
            BUILD="$arg"
            ;;
    esac
done

if [[ -n "$MERGE_DIR" ]]; then
    SWEEP="$BUILD/tools/spur_sweep"
    if [[ ! -x "$SWEEP" ]]; then
        echo "error: no $SWEEP (build first?)" >&2
        exit 1
    fi
    shopt -s nullglob
    merged=0
    for first in "$MERGE_DIR"/*.shard_0_of_*.json; do
        base="$(basename "$first")"
        name="${base%%.shard_0_of_*.json}"
        count="${base##*.shard_0_of_}"
        count="${count%.json}"
        shards=("$MERGE_DIR/$name".shard_*_of_"$count".json)
        echo "== merging ${#shards[@]} shard(s) -> $MERGE_DIR/$name.json"
        "$SWEEP" merge --out="$MERGE_DIR/$name.json" "${shards[@]}"
        merged=$((merged + 1))
    done
    if [[ "$merged" -eq 0 ]]; then
        echo "error: no *.shard_0_of_*.json files in '$MERGE_DIR'" >&2
        exit 1
    fi
    exit 0
fi

if [[ ! -d "$BUILD/bench" ]]; then
    echo "error: no bench binaries under '$BUILD' (build first?)" >&2
    exit 1
fi

if [[ -n "$JSON_DIR" ]]; then
    mkdir -p "$JSON_DIR"
fi

if [[ -n "$STREAM_DIR" ]]; then
    mkdir -p "$STREAM_DIR"
fi

SHARD_SUFFIX=""
SHARD_INDEX=""
if [[ -n "$SHARD" ]]; then
    SHARD_INDEX="${SHARD%%/*}"
    SHARD_SUFFIX=".shard_${SHARD_INDEX}_of_${SHARD##*/}"
fi

# The scenario library (DESIGN.md §19) — ctx-switch, flush-storm,
# server-churn and gc-sweep — rides along on these benches as extra
# --scenarios rows/tables (record/replay them with spur_trace or the
# session --record-trace / --replay-trace flags).
SCENARIO_BENCHES="ablation_policy_variants table_3_4_dirty_overhead \
table_3_5_pageout"

for b in "$BUILD"/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    name="$(basename "$b")"
    if [[ "$name" == micro_* && -n "$SHARD_INDEX" &&
          "$SHARD_INDEX" != "0" ]]; then
        continue  # micro benches don't shard; shard 0 covers them.
    fi
    echo "==================================================================="
    echo "== $name"
    echo "==================================================================="
    EXTRA=()
    if [[ -n "$JSON_DIR" ]]; then
        if [[ "$name" == micro_* ]]; then
            EXTRA+=("--json=$JSON_DIR/$name.json")
        else
            EXTRA+=("--json=$JSON_DIR/$name$SHARD_SUFFIX.json")
        fi
    fi
    if [[ -n "$STREAM_DIR" && "$name" != micro_* ]]; then
        EXTRA+=("--stream=$STREAM_DIR/$name$SHARD_SUFFIX.stream")
    fi
    if [[ " $SCENARIO_BENCHES " == *" $name "* ]]; then
        EXTRA+=("--scenarios")
    fi
    "$b" ${ARGS[@]+"${ARGS[@]}"} ${EXTRA[@]+"${EXTRA[@]}"}
    echo
done

/**
 * @file
 * Reproduces the Section 3.2 claim: "Even if the time to check the PTE
 * dirty bit is reduced to only 1 cycle, this [WRITE] alternative still
 * has the worst performance."  Sweeps t_dc from 5 down to 1 cycle (and a
 * hypothetical 0) and recomputes the Table 3.4 overheads.
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/overhead_model.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    runner::BenchSession session("ablation_tdc_sweep", args);

    Table t("Ablation: WRITE-policy overhead vs. t_dc "
            "(millions of cycles; FAULT shown for comparison)");
    t.SetHeader({"Workload", "Memory (MB)", "FAULT", "WRITE t_dc=5",
                 "WRITE t_dc=3", "WRITE t_dc=1", "WRITE t_dc=0"});

    const sim::MachineConfig base = sim::MachineConfig::Prototype(8);
    std::vector<core::RunConfig> configs;
    for (const core::WorkloadId workload :
         {core::WorkloadId::kSlc, core::WorkloadId::kWorkload1}) {
        for (const uint32_t mb : {5u, 6u, 8u}) {
            core::RunConfig config;
            config.workload = workload;
            config.memory_mb = mb;
            config.refs = refs;
            configs.push_back(config);
        }
    }
    const auto results = session.RunAll(configs);
    for (size_t i = 0; i < configs.size(); ++i) {
        {
            const core::RunResult& r = results[i];
            const core::WorkloadId workload = configs[i].workload;
            core::EventFrequencies freq = r.frequencies;
            const double scale = core::RefCompression(workload);
            freq.n_w_hit = static_cast<uint64_t>(
                static_cast<double>(freq.n_w_hit) * scale);
            freq.n_w_miss = static_cast<uint64_t>(
                static_cast<double>(freq.n_w_miss) * scale);

            std::vector<std::string> row = {
                ToString(workload), std::to_string(configs[i].memory_mb)};
            {
                const core::OverheadModel model(base);
                row.push_back(Table::Num(
                    model.Overhead(policy::DirtyPolicyKind::kFault, freq) /
                        1e6,
                    2));
            }
            for (const Cycles t_dc : {Cycles{5}, Cycles{3}, Cycles{1},
                                      Cycles{0}}) {
                const core::OverheadModel model(base.t_fault,
                                                base.t_flush_page,
                                                base.t_dirty_miss, t_dc);
                row.push_back(Table::Num(
                    model.Overhead(policy::DirtyPolicyKind::kWrite, freq) /
                        1e6,
                    2));
            }
            t.AddRow(row);
        }
    }
    t.Print(stdout);
    std::printf(
        "\nShape check vs. the paper: at t_dc = 1 the WRITE policy still\n"
        "costs more than FAULT (the check rate — one per modified block —\n"
        "is simply too high); only a free check would tie it.\n");
    return session.Finish();
}

/**
 * @file
 * Reproduces the Section 3.2 claim: "FAULT is superior to FLUSH if there
 * are at least twice as many necessary faults as excess faults" — i.e.
 * O(FAULT) < O(FLUSH) iff N_ef * t_ds < N_ds * t_flush, and with
 * t_flush = t_ds / 2 the crossover sits at N_ef / N_ds = 1/2.
 *
 * Sweeps the excess-to-necessary ratio analytically to locate the
 * crossover, then shows where the measured workloads sit relative to it.
 */
#include <cstdio>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/overhead_model.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const uint64_t refs =
        static_cast<uint64_t>(args.GetInt("refs", 0)) * 1'000'000ull;
    runner::BenchSession session("ablation_flush_crossover", args);

    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    const core::OverheadModel model(config);

    Table sweep("Analytic crossover sweep (N_ds = 1000 intrinsic faults)");
    sweep.SetHeader({"N_ef / N_ds", "O(FAULT) (kcycles)",
                     "O(FLUSH) (kcycles)", "winner"});
    for (const double ratio :
         {0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55, 0.6, 0.8, 1.0}) {
        core::EventFrequencies f;
        f.n_ds = 1000;
        f.n_zfod = 0;
        f.n_ef = static_cast<uint64_t>(1000 * ratio);
        const double fault =
            model.Overhead(policy::DirtyPolicyKind::kFault, f);
        const double flush =
            model.Overhead(policy::DirtyPolicyKind::kFlush, f);
        sweep.AddRow({Table::Num(ratio, 2), Table::Num(fault / 1e3, 0),
                      Table::Num(flush / 1e3, 0),
                      fault < flush   ? "FAULT"
                      : fault > flush ? "FLUSH"
                                      : "tie"});
    }
    sweep.Print(stdout);
    std::printf("\nWith t_flush = %llu = t_ds/2, the crossover is exactly "
                "at N_ef/N_ds = 0.5,\nas the paper derives.\n\n",
                static_cast<unsigned long long>(config.t_flush_page));

    Table t("Measured workloads relative to the crossover");
    t.SetHeader({"Workload", "Memory (MB)", "N_ef / (N_ds - N_zfod)",
                 "winner"});
    std::vector<core::RunConfig> runs;
    for (const core::WorkloadId workload :
         {core::WorkloadId::kSlc, core::WorkloadId::kWorkload1}) {
        for (const uint32_t mb : {5u, 6u, 8u}) {
            core::RunConfig run;
            run.workload = workload;
            run.memory_mb = mb;
            run.refs = refs;
            runs.push_back(run);
        }
    }
    const auto results = session.RunAll(runs);
    for (size_t i = 0; i < runs.size(); ++i) {
        const double ratio = core::OverheadModel::MeasuredExcessRatio(
            results[i].frequencies);
        t.AddRow({ToString(runs[i].workload),
                  std::to_string(runs[i].memory_mb), Table::Num(ratio, 3),
                  ratio < 0.5 ? "FAULT" : "FLUSH"});
    }
    t.Print(stdout);
    std::printf("\nAll measured points sit well below 0.5: flushing never "
                "pays, matching\nthe paper's conclusion that FLUSH costs "
                "~1.5x MIN while FAULT stays\nnear 1.15-1.35x.\n");
    return session.Finish();
}

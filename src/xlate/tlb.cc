#include "src/xlate/tlb.h"

#include "src/common/bits.h"
#include "src/common/log.h"

namespace spur::xlate {

Tlb::Tlb(uint32_t entries)
    : slots_(entries), mask_(entries - 1)
{
    if (entries == 0 || !IsPowerOfTwo(entries)) {
        Fatal("Tlb: entry count must be a nonzero power of two");
    }
}

bool
Tlb::Lookup(GlobalVpn vpn)
{
    const Slot& slot = slots_[vpn & mask_];
    if (slot.valid && slot.vpn == vpn) {
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

void
Tlb::Insert(GlobalVpn vpn)
{
    Slot& slot = slots_[vpn & mask_];
    slot.vpn = vpn;
    slot.valid = true;
}

void
Tlb::Invalidate(GlobalVpn vpn)
{
    Slot& slot = slots_[vpn & mask_];
    if (slot.valid && slot.vpn == vpn) {
        slot.valid = false;
    }
}

void
Tlb::Flush()
{
    for (Slot& slot : slots_) {
        slot.valid = false;
    }
}

}  // namespace spur::xlate

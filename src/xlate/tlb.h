/**
 * @file
 * A conventional translation lookaside buffer — the mechanism SPUR
 * deliberately does *not* have.
 *
 * The paper's introduction frames the whole problem against TLB systems:
 * "The TLB provides a convenient place to cache the reference and dirty
 * bits... Since the TLB must be accessed on each reference, checking the
 * bits incurs no additional overhead."  This class (with
 * core::TlbSystem) implements that baseline machine so the trade can be
 * measured rather than asserted: free bit maintenance, but translation
 * on every access's critical path.
 *
 * Organization: direct-mapped over the global VPN, a typical late-80s
 * 64-entry configuration (MIPS R2000 had 64 fully-associative entries;
 * direct-mapped keeps the model simple and slightly pessimistic).
 * Entries are (vpn, valid) pairs: PTE *contents* are read live from the
 * page table, so R/D updates through the TLB are write-through, which is
 * what TLBs with hardware-maintained bits effectively did.
 */
#ifndef SPUR_XLATE_TLB_H_
#define SPUR_XLATE_TLB_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace spur::xlate {

/** A direct-mapped TLB over global virtual page numbers. */
class Tlb
{
  public:
    /** @param entries number of slots (power of two). */
    explicit Tlb(uint32_t entries = 64);

    Tlb(const Tlb&) = delete;
    Tlb& operator=(const Tlb&) = delete;

    /** True when @p vpn currently hits. */
    bool Lookup(GlobalVpn vpn);

    /** Installs @p vpn (displacing whatever shares its slot). */
    void Insert(GlobalVpn vpn);

    /** Removes @p vpn if present (page reclaim / remap shootdown). */
    void Invalidate(GlobalVpn vpn);

    /** Empties the TLB (context-switch flush on untagged TLBs). */
    void Flush();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint32_t NumEntries() const
    {
        return static_cast<uint32_t>(slots_.size());
    }

  private:
    struct Slot {
        GlobalVpn vpn = 0;
        bool valid = false;
    };

    std::vector<Slot> slots_;
    uint32_t mask_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

}  // namespace spur::xlate

#endif  // SPUR_XLATE_TLB_H_

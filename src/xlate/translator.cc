#include "src/xlate/translator.h"

namespace spur::xlate {

Translator::Translator(cache::VirtualCache& vcache, pt::PageTable& table,
                       const sim::MachineConfig& config)
    : vcache_(vcache),
      table_(table),
      pte_hit_cycles_(config.t_xlate_hit),
      block_fetch_cycles_(config.BlockFetchCycles()),
      page_shift_(config.PageShift())
{
}

Cycles
Translator::TouchPteBlock(GlobalVpn vpn, sim::EventCounts& events,
                          bool* pte_hit, bool* evicted_dirty)
{
    const GlobalAddr pte_va = pt::PageTable::PteVa(vpn);
    if (vcache_.Lookup(pte_va) != nullptr) {
        events.Add(sim::Event::kXlatePteHit);
        *pte_hit = true;
        return pte_hit_cycles_;
    }
    // First-level PTE not cached: consult the wired second-level table
    // (physical access, no recursion possible) and fetch the PTE block.
    events.Add(sim::Event::kXlatePteMiss);
    events.Add(sim::Event::kXlateL2Access);
    *pte_hit = false;
    cache::Eviction eviction;
    // Page-table pages are wired kernel data: their lines carry kernel
    // read-write protection and a set page-dirty bit so stores to PTEs
    // (bit updates by fault handlers) never re-enter the dirty machinery.
    vcache_.Fill(pte_va, Protection::kReadWrite, /*page_dirty=*/true,
                 &eviction);
    if (eviction.writeback) {
        events.Add(sim::Event::kWriteback);
        *evicted_dirty = true;
    }
    return pte_hit_cycles_ + block_fetch_cycles_ +
           (eviction.writeback ? block_fetch_cycles_ : 0);
}

XlateResult
Translator::Translate(GlobalAddr addr, sim::EventCounts& events)
{
    XlateResult result;
    const GlobalVpn vpn = addr >> page_shift_;
    result.cycles = TouchPteBlock(vpn, events, &result.pte_hit,
                                  &result.evicted_dirty);
    result.pte = &table_.Ensure(vpn);
    return result;
}

Cycles
Translator::ProbePteCost(GlobalAddr addr, sim::EventCounts& events)
{
    bool pte_hit = false;
    bool evicted_dirty = false;
    const GlobalVpn vpn = addr >> page_shift_;
    return TouchPteBlock(vpn, events, &pte_hit, &evicted_dirty);
}

}  // namespace spur::xlate

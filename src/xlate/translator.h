/**
 * @file
 * SPUR's in-cache address translation [Wood86].
 *
 * There is no TLB.  On a cache miss the controller computes the global
 * virtual address of the first-level PTE with a shift-and-concatenate
 * circuit and looks for *that* address in the same unified cache — the
 * cache doubles as a very large TLB.  If the PTE block misses too, the
 * second-level PTE (wired in physical memory at a known address) supplies
 * the physical address of the first-level PTE page, which is then fetched
 * from memory into the cache.  Either way the access may then discover the
 * page is not resident and raise a page fault.
 */
#ifndef SPUR_XLATE_TRANSLATOR_H_
#define SPUR_XLATE_TRANSLATOR_H_

#include "src/cache/cache.h"
#include "src/common/types.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::xlate {

/** Outcome of one translation attempt. */
struct XlateResult {
    pt::Pte* pte = nullptr;  ///< The PTE (never null; may be !valid()).
    Cycles cycles = 0;       ///< Controller cycles spent translating.
    bool pte_hit = false;    ///< First-level PTE was found in the cache.
    bool evicted_dirty = false;  ///< PTE fill displaced a dirty block.
};

/** The cache controller's translation engine. */
class Translator
{
  public:
    Translator(cache::VirtualCache& vcache, pt::PageTable& table,
               const sim::MachineConfig& config);

    Translator(const Translator&) = delete;
    Translator& operator=(const Translator&) = delete;

    /**
     * Translates the page containing @p addr.
     *
     * Models the cache behaviour of the PTE fetch (possibly filling the
     * PTE's block into the cache, which can evict a data block) and counts
     * kXlatePteHit / kXlatePteMiss / kXlateL2Access in @p events.  The
     * returned PTE is the authoritative one: the caller must check
     * `valid()` and raise a page fault when clear.
     */
    XlateResult Translate(GlobalAddr addr, sim::EventCounts& events);

    /**
     * Probes the PTE through the cache *without* the full miss sequence —
     * the dirty-bit check path used by the SPUR and WRITE policies.
     * Returns the cycle cost (t_xlate_hit on a cached PTE, plus a memory
     * fetch when it is not).
     */
    Cycles ProbePteCost(GlobalAddr addr, sim::EventCounts& events);

  private:
    cache::VirtualCache& vcache_;
    pt::PageTable& table_;
    Cycles pte_hit_cycles_;
    Cycles block_fetch_cycles_;
    unsigned page_shift_;

    /** Ensures the PTE block for @p vpn is cached; returns cost. */
    Cycles TouchPteBlock(GlobalVpn vpn, sim::EventCounts& events,
                         bool* pte_hit, bool* evicted_dirty);
};

}  // namespace spur::xlate

#endif  // SPUR_XLATE_TRANSLATOR_H_

/**
 * @file
 * SPUR's in-cache address translation [Wood86].
 *
 * There is no TLB.  On a cache miss the controller computes the global
 * virtual address of the first-level PTE with a shift-and-concatenate
 * circuit and looks for *that* address in the same unified cache — the
 * cache doubles as a very large TLB.  If the PTE block misses too, the
 * second-level PTE (wired in physical memory at a known address) supplies
 * the physical address of the first-level PTE page, which is then fetched
 * from memory into the cache.  Either way the access may then discover the
 * page is not resident and raise a page fault.
 */
#ifndef SPUR_XLATE_TRANSLATOR_H_
#define SPUR_XLATE_TRANSLATOR_H_

#include "src/cache/cache.h"
#include "src/common/types.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::xlate {

/** Outcome of one translation attempt. */
struct XlateResult {
    pt::Pte* pte = nullptr;  ///< The PTE (never null; may be !valid()).
    Cycles cycles = 0;       ///< Controller cycles spent translating.
    bool pte_hit = false;    ///< First-level PTE was found in the cache.
    bool evicted_dirty = false;  ///< PTE fill displaced a dirty block.
};

/**
 * The cache controller's translation engine.
 *
 * Header-inline: Translate() runs once per cache miss — the simulator's
 * second-hottest path — and inlining it into the miss handler lets the
 * PTE-block probe overlap the surrounding miss bookkeeping.
 */
class Translator
{
  public:
    Translator(cache::VirtualCache& vcache, pt::PageTable& table,
               const sim::MachineConfig& config)
        : vcache_(vcache),
          table_(table),
          pte_hit_cycles_(config.t_xlate_hit),
          block_fetch_cycles_(config.BlockFetchCycles()),
          page_shift_(config.PageShift())
    {
    }

    Translator(const Translator&) = delete;
    Translator& operator=(const Translator&) = delete;

    /**
     * Translates the page containing @p addr.
     *
     * Models the cache behaviour of the PTE fetch (possibly filling the
     * PTE's block into the cache, which can evict a data block) and counts
     * kXlatePteHit / kXlatePteMiss / kXlateL2Access in @p events.  The
     * returned PTE is the authoritative one: the caller must check
     * `valid()` and raise a page fault when clear.
     */
    XlateResult Translate(GlobalAddr addr, sim::EventCounts& events)
    {
        XlateResult result;
        const GlobalVpn vpn = addr >> page_shift_;
        result.cycles = TouchPteBlock(vpn, events, &result.pte_hit,
                                      &result.evicted_dirty);
        result.pte = &table_.Ensure(vpn);
        return result;
    }

    /**
     * Probes the PTE through the cache *without* the full miss sequence —
     * the dirty-bit check path used by the SPUR and WRITE policies.
     * Returns the cycle cost (t_xlate_hit on a cached PTE, plus a memory
     * fetch when it is not).
     */
    Cycles ProbePteCost(GlobalAddr addr, sim::EventCounts& events)
    {
        bool pte_hit = false;
        bool evicted_dirty = false;
        const GlobalVpn vpn = addr >> page_shift_;
        return TouchPteBlock(vpn, events, &pte_hit, &evicted_dirty);
    }

  private:
    cache::VirtualCache& vcache_;
    pt::PageTable& table_;
    Cycles pte_hit_cycles_;
    Cycles block_fetch_cycles_;
    unsigned page_shift_;

    /** Ensures the PTE block for @p vpn is cached; returns cost. */
    Cycles TouchPteBlock(GlobalVpn vpn, sim::EventCounts& events,
                         bool* pte_hit, bool* evicted_dirty)
    {
        const GlobalAddr pte_va = pt::PageTable::PteVa(vpn);
        if (vcache_.Lookup(pte_va)) {
            events.Add(sim::Event::kXlatePteHit);
            *pte_hit = true;
            return pte_hit_cycles_;
        }
        // First-level PTE not cached: consult the wired second-level
        // table (physical access, no recursion possible) and fetch the
        // PTE block.
        events.Add(sim::Event::kXlatePteMiss);
        events.Add(sim::Event::kXlateL2Access);
        *pte_hit = false;
        cache::Eviction eviction;
        // Page-table pages are wired kernel data: their lines carry
        // kernel read-write protection and a set page-dirty bit so
        // stores to PTEs (bit updates by fault handlers) never re-enter
        // the dirty machinery.
        vcache_.Fill(pte_va, Protection::kReadWrite, /*page_dirty=*/true,
                     &eviction);
        if (eviction.writeback) {
            events.Add(sim::Event::kWriteback);
            *evicted_dirty = true;
        }
        return pte_hit_cycles_ + block_fetch_cycles_ +
               (eviction.writeback ? block_fetch_cycles_ : 0);
    }
};

}  // namespace spur::xlate

#endif  // SPUR_XLATE_TRANSLATOR_H_

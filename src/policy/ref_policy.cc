#include "src/policy/ref_policy.h"

#include <algorithm>
#include <cctype>

#include "src/common/log.h"

namespace spur::policy {

const char*
ToString(RefPolicyKind kind)
{
    switch (kind) {
      case RefPolicyKind::kMiss: return "MISS";
      case RefPolicyKind::kRef: return "REF";
      case RefPolicyKind::kNoRef: return "NOREF";
    }
    return "?";
}

RefPolicyKind
ParseRefPolicy(const std::string& name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "MISS") return RefPolicyKind::kMiss;
    if (upper == "REF") return RefPolicyKind::kRef;
    if (upper == "NOREF") return RefPolicyKind::kNoRef;
    Fatal("unknown ref policy '" + name + "' (expected MISS/REF/NOREF)");
}

namespace {

/** Shared state for the concrete policies. */
class RefPolicyBase : public RefPolicy
{
  public:
    RefPolicyBase(cache::PageFlusher& flusher,
                  const sim::MachineConfig& config)
        : flusher_(flusher), config_(config)
    {
    }

  protected:
    cache::PageFlusher& flusher_;
    const sim::MachineConfig& config_;
};

// ---------------------------------------------------------------------------
// MISS: the miss-bit approximation SPUR implements.
// ---------------------------------------------------------------------------
class MissRefPolicy : public RefPolicyBase
{
  public:
    using RefPolicyBase::RefPolicyBase;

    RefPolicyKind kind() const override { return RefPolicyKind::kMiss; }

    RefCost OnCacheMiss(pt::Pte& pte, sim::EventCounts& events) override
    {
        RefCost cost;
        if (!pte.referenced()) {
            events.Add(sim::Event::kRefFault);
            pte.set_referenced(true);
            cost.fault_cycles = config_.t_fault;
        }
        return cost;
    }

    bool ReadRefBit(const pt::Pte& pte) const override
    {
        return pte.referenced();
    }

    RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                        sim::EventCounts& events) override
    {
        (void)page_addr;
        RefCost cost;
        events.Add(sim::Event::kRefClear);
        pte.set_referenced(false);
        cost.kernel_cycles = config_.t_ref_clear;
        return cost;
    }
};

// ---------------------------------------------------------------------------
// REF: true reference bits via flush-on-clear.
// ---------------------------------------------------------------------------
class TrueRefPolicy final : public MissRefPolicy
{
  public:
    using MissRefPolicy::MissRefPolicy;

    RefPolicyKind kind() const override { return RefPolicyKind::kRef; }

    RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                        sim::EventCounts& events) override
    {
        RefCost cost = MissRefPolicy::ClearRefBit(pte, page_addr, events);
        // Flush the page so any further use must miss and re-set the bit.
        // The flushed blocks' re-fetch misses then surface naturally in
        // the simulation, which is the "disrupts the cache" effect the
        // paper describes.
        events.Add(sim::Event::kRefClearFlush);
        flusher_.FlushPageChecked(page_addr);
        // On a multiprocessor every cache must be visited.
        cost.flush_cycles =
            config_.t_flush_page * flusher_.NumFlushTargets();
        return cost;
    }
};

// ---------------------------------------------------------------------------
// NOREF: no reference information at all.
// ---------------------------------------------------------------------------
class NoRefPolicy final : public RefPolicyBase
{
  public:
    using RefPolicyBase::RefPolicyBase;

    RefPolicyKind kind() const override { return RefPolicyKind::kNoRef; }

    RefCost OnCacheMiss(pt::Pte& pte, sim::EventCounts& events) override
    {
        // The hardware bit is left permanently set (the VM sets it at
        // page-in), so no reference fault can occur and nothing is spent.
        (void)pte;
        (void)events;
        return RefCost{};
    }

    bool ReadRefBit(const pt::Pte& pte) const override
    {
        (void)pte;
        return false;  // The machine-dependent read always says "unused".
    }

    RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                        sim::EventCounts& events) override
    {
        (void)pte;
        (void)page_addr;
        (void)events;
        return RefCost{};  // Clearing has no effect and costs nothing.
    }
};

}  // namespace

std::unique_ptr<RefPolicy>
MakeRefPolicy(RefPolicyKind kind, cache::PageFlusher& flusher,
              const sim::MachineConfig& config)
{
    switch (kind) {
      case RefPolicyKind::kMiss:
        return std::make_unique<MissRefPolicy>(flusher, config);
      case RefPolicyKind::kRef:
        return std::make_unique<TrueRefPolicy>(flusher, config);
      case RefPolicyKind::kNoRef:
        return std::make_unique<NoRefPolicy>(flusher, config);
    }
    Panic("MakeRefPolicy: bad kind");
}

}  // namespace spur::policy

#include "src/policy/ref_policy.h"

#include <algorithm>
#include <cctype>

#include "src/common/log.h"
#include "src/policy/policy_ops.h"

namespace spur::policy {

const char*
ToString(RefPolicyKind kind)
{
    switch (kind) {
      case RefPolicyKind::kMiss: return "MISS";
      case RefPolicyKind::kRef: return "REF";
      case RefPolicyKind::kNoRef: return "NOREF";
    }
    return "?";
}

RefPolicyKind
ParseRefPolicy(const std::string& name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "MISS") return RefPolicyKind::kMiss;
    if (upper == "REF") return RefPolicyKind::kRef;
    if (upper == "NOREF") return RefPolicyKind::kNoRef;
    Fatal("unknown ref policy '" + name + "' (expected MISS/REF/NOREF)");
}

namespace {

/**
 * Virtual-dispatch adapter over the compile-time ops in policy_ops.h;
 * see DirtyPolicyImpl in dirty_policy.cc for the pattern.
 */
template <RefPolicyKind K>
class RefPolicyImpl final : public RefPolicy
{
  public:
    RefPolicyImpl(cache::PageFlusher& flusher,
                  const sim::MachineConfig& config)
        : flusher_(flusher), config_(config)
    {
    }

    RefPolicyKind kind() const override { return K; }

    RefCost OnCacheMiss(pt::Pte& pte, sim::EventCounts& events) override
    {
        return RefOps<K>::OnCacheMiss(pte, events, config_);
    }

    bool ReadRefBit(const pt::Pte& pte) const override
    {
        return RefOps<K>::ReadRefBit(pte);
    }

    RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                        sim::EventCounts& events) override
    {
        return RefOps<K>::ClearRefBit(pte, page_addr, events, flusher_,
                                      config_);
    }

  private:
    cache::PageFlusher& flusher_;
    const sim::MachineConfig& config_;
};

}  // namespace

std::unique_ptr<RefPolicy>
MakeRefPolicy(RefPolicyKind kind, cache::PageFlusher& flusher,
              const sim::MachineConfig& config)
{
    switch (kind) {
      case RefPolicyKind::kMiss:
        return std::make_unique<RefPolicyImpl<RefPolicyKind::kMiss>>(
            flusher, config);
      case RefPolicyKind::kRef:
        return std::make_unique<RefPolicyImpl<RefPolicyKind::kRef>>(
            flusher, config);
      case RefPolicyKind::kNoRef:
        return std::make_unique<RefPolicyImpl<RefPolicyKind::kNoRef>>(
            flusher, config);
    }
    Panic("MakeRefPolicy: bad kind");
}

}  // namespace spur::policy

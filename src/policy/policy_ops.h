/**
 * @file
 * Compile-time policy operation tables: the dirty-bit and reference-bit
 * policy semantics of dirty_policy.h / ref_policy.h as static methods of
 * `DirtyOps<Kind>` / `RefOps<Kind>` templates.
 *
 * These are the single source of truth for policy behaviour.  The
 * virtual `DirtyPolicy`/`RefPolicy` classes (used by the cold paths, the
 * VM daemon, and the multiprocessor system) are thin wrappers over these
 * methods, and the devirtualized `SpurSystem` hot path instantiates them
 * directly per (dirty, ref) run configuration — so both paths execute
 * byte-for-byte identical event counting and cycle charging.
 *
 * The `Events` template parameter accepts either `sim::EventCounts`
 * (observer branch preserved — what the virtual wrappers pass) or a
 * `sim::EventSink<false>` (branchless — what the unobserved hot path
 * passes); see events.h.
 */
// spur:hot-path
#ifndef SPUR_POLICY_POLICY_OPS_H_
#define SPUR_POLICY_POLICY_OPS_H_

#include "src/cache/cache.h"
#include "src/cache/flusher.h"
#include "src/common/log.h"
#include "src/common/types.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/pte.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::policy {

namespace detail {

/**
 * Records a necessary dirty fault in @p events, classifying the zero-fill
 * subset (Section 3.2 excludes those as non-intrinsic) and consuming the
 * page's zero-fill marker.
 */
template <typename Events>
inline void
CountNecessaryFault(pt::Pte& pte, Events& events)
{
    events.Add(sim::Event::kDirtyFault);
    if (pte.zfod_clean()) {
        events.Add(sim::Event::kDirtyFaultZfod);
        pte.set_zfod_clean(false);
    }
}

}  // namespace detail

template <DirtyPolicyKind kKind>
struct DirtyOps;

// ---------------------------------------------------------------------------
// MIN: the oracle lower bound.  Only the intrinsic necessary faults are
// charged; dirty state is tracked with zero checking overhead.
// ---------------------------------------------------------------------------
template <>
struct DirtyOps<DirtyPolicyKind::kMin> {
    static bool WriteHitFastPath(cache::ConstLineRef line)
    {
        return line.page_dirty();
    }

    static Protection ResidentProtection(bool writable)
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    template <typename Events>
    static DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr,
                                pt::Pte& pte, Events& events,
                                cache::PageFlusher& flusher,
                                const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        if (line.prot() != Protection::kReadWrite) {
            Panic("MIN: write to a read-only page");
        }
        DirtyCost cost;
        if (!line.page_dirty()) {
            if (!pte.dirty()) {
                detail::CountNecessaryFault(pte, events);
                pte.set_dirty(true);
                cost.fault_cycles = config.t_fault;
            }
            line.set_page_dirty(true);  // Oracle refresh: free.
        }
        return cost;
    }

    template <typename Events>
    static DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                                 Events& events, cache::PageFlusher& flusher,
                                 const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        DirtyCost cost;
        if (!pte.dirty()) {
            detail::CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config.t_fault;
        }
        return cost;
    }

    static bool IsPageDirty(const pt::Pte& pte) { return pte.dirty(); }
};

// ---------------------------------------------------------------------------
// FAULT: emulate dirty bits with protection.  Writable clean pages are
// mapped read-only; the first write faults, the handler sets the software
// dirty bit and upgrades the PTE to read-write.  Blocks cached while the
// page was read-only keep their stale protection, so writes to them fault
// too — the *excess faults* of Figure 3.1.
//
// FLUSH is FAULT plus a page flush on every necessary fault (no stale
// read-only blocks can survive, so no excess faults), expressed here as
// the kFlushOnFault compile-time variant.
// ---------------------------------------------------------------------------
template <bool kFlushOnFault>
struct FaultFamilyOps {
    static bool WriteHitFastPath(cache::ConstLineRef line)
    {
        return line.prot() == Protection::kReadWrite;
    }

    static Protection ResidentProtection(bool writable)
    {
        // The emulation's whole trick: writable pages start read-only.
        (void)writable;
        return Protection::kReadOnly;
    }

    template <typename Events>
    static DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr,
                                pt::Pte& pte, Events& events,
                                cache::PageFlusher& flusher,
                                const sim::MachineConfig& config)
    {
        DirtyCost cost;
        if (line.prot() == Protection::kReadWrite) {
            return cost;  // Fast path: no check beyond the normal one.
        }
        if (!pte.writable_intent()) {
            Panic("FAULT: write to a genuinely read-only page");
        }
        cost.fault_cycles = config.t_fault;
        if (!pte.soft_dirty()) {
            // Necessary fault: really the first write to the page.
            detail::CountNecessaryFault(pte, events);
            pte.set_soft_dirty(true);
            pte.set_protection(Protection::kReadWrite);
            if constexpr (kFlushOnFault) {
                FlushPage(addr, flusher, config, &cost);
                // The written line itself was flushed: the access must
                // re-execute as a miss (and will refill with read-write
                // protection).
                cost.line_invalidated = true;
            } else {
                // The handler refreshes the single faulting block's
                // protection so the retried write proceeds (equivalent to
                // flushing that one block and refilling it; the refill is
                // inside the 1000-cycle handler estimate).
                line.set_prot(Protection::kReadWrite);
            }
        } else {
            // Excess fault: the PTE is already read-write; only this
            // block's cached protection is stale.
            events.Add(sim::Event::kExcessFault);
            line.set_prot(Protection::kReadWrite);
        }
        return cost;
    }

    template <typename Events>
    static DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                                 Events& events, cache::PageFlusher& flusher,
                                 const sim::MachineConfig& config)
    {
        DirtyCost cost;
        if (pte.protection() == Protection::kReadWrite) {
            return cost;
        }
        if (!pte.writable_intent()) {
            Panic("FAULT: write miss on a genuinely read-only page");
        }
        // Write misses always translate first, so the fault is detected on
        // the PTE itself and is always a necessary fault.
        detail::CountNecessaryFault(pte, events);
        pte.set_soft_dirty(true);
        pte.set_protection(Protection::kReadWrite);
        cost.fault_cycles = config.t_fault;
        if constexpr (kFlushOnFault) {
            // Other blocks of this page may be cached with stale
            // protection.
            FlushPage(addr, flusher, config, &cost);
        }
        return cost;
    }

    static bool IsPageDirty(const pt::Pte& pte) { return pte.soft_dirty(); }

  private:
    static void FlushPage(GlobalAddr addr, cache::PageFlusher& flusher,
                          const sim::MachineConfig& config, DirtyCost* cost)
    {
        flusher.FlushPageChecked(addr);
        // The paper prices the tag-checked flush at a flat ~500 cycles
        // (128 slots, ~10% needing writeback); we charge the flat cost
        // per cache the flush must visit (all of them on a
        // multiprocessor) and let the flushed blocks' re-fetch misses
        // surface naturally.
        cost->flush_cycles = config.t_flush_page * flusher.NumFlushTargets();
    }
};

template <>
struct DirtyOps<DirtyPolicyKind::kFault> : FaultFamilyOps<false> {
};

template <>
struct DirtyOps<DirtyPolicyKind::kFlush> : FaultFamilyOps<true> {
};

// ---------------------------------------------------------------------------
// SPUR: an explicit hardware dirty bit, cached per block.  A write that
// finds the cached page-dirty bit clear checks the PTE: if the PTE is also
// clean this is the first write (fault); if not, the cached copy is merely
// stale and a 25-cycle dirty-bit miss refreshes it.
// ---------------------------------------------------------------------------
template <>
struct DirtyOps<DirtyPolicyKind::kSpur> {
    static bool WriteHitFastPath(cache::ConstLineRef line)
    {
        return line.prot() == Protection::kReadWrite && line.page_dirty();
    }

    static Protection ResidentProtection(bool writable)
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    template <typename Events>
    static DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr,
                                pt::Pte& pte, Events& events,
                                cache::PageFlusher& flusher,
                                const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        if (line.prot() != Protection::kReadWrite) {
            Panic("SPUR: write to a read-only page");
        }
        DirtyCost cost;
        if (line.page_dirty()) {
            return cost;  // Common case: proceed without delay.
        }
        if (pte.dirty()) {
            // Stale cached copy: refresh via a dirty-bit miss.
            events.Add(sim::Event::kDirtyBitMiss);
            cost.aux_cycles = config.t_dirty_miss;
        } else {
            // First write to the page: fault to software, then refresh
            // the cached copy (the fault is followed by the same forced
            // miss, hence t_ds + t_dm in the paper's O(SPUR)).
            detail::CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config.t_fault;
            cost.aux_cycles = config.t_dirty_miss;
        }
        line.set_page_dirty(true);
        return cost;
    }

    template <typename Events>
    static DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                                 Events& events, cache::PageFlusher& flusher,
                                 const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        DirtyCost cost;
        if (!pte.dirty()) {
            detail::CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config.t_fault;
        }
        return cost;
    }

    static bool IsPageDirty(const pt::Pte& pte) { return pte.dirty(); }
};

// ---------------------------------------------------------------------------
// WRITE: Sun-3 style.  The PTE dirty bit is checked on the first write to
// each cache *block*: free on write misses (the PTE is already in hand for
// translation), t_dc on write hits to clean blocks.  Never any excess
// faults, but the check rate is the block modification rate.
//
// WRITE-HW is the Sun-3's real mechanism: the hardware *updates* the
// dirty bit itself on the first write — the per-block check cost remains
// but no fault is ever taken (the kHardwareUpdate variant).
// ---------------------------------------------------------------------------
template <bool kHardwareUpdate>
struct WriteFamilyOps {
    static bool WriteHitFastPath(cache::ConstLineRef line)
    {
        return line.block_dirty();
    }

    static Protection ResidentProtection(bool writable)
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    template <typename Events>
    static DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr,
                                pt::Pte& pte, Events& events,
                                cache::PageFlusher& flusher,
                                const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        if (line.prot() != Protection::kReadWrite) {
            Panic(kHardwareUpdate ? "WRITE-HW: write to a read-only page"
                                  : "WRITE: write to a read-only page");
        }
        DirtyCost cost;
        if (line.block_dirty()) {
            return cost;  // Not the first write to this block.
        }
        events.Add(sim::Event::kDirtyCheck);
        cost.aux_cycles = config.t_dirty_check;
        if (!pte.dirty()) {
            detail::CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            if constexpr (!kHardwareUpdate) {
                cost.fault_cycles = config.t_fault;
            }
            // WRITE-HW: the hardware sets the bit silently; the
            // clean-to-dirty transition is recorded for the Table 3.3
            // bookkeeping but costs no fault.
        }
        return cost;
    }

    template <typename Events>
    static DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                                 Events& events, cache::PageFlusher& flusher,
                                 const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        DirtyCost cost;
        // The controller examined the PTE during translation anyway, so
        // this check is free.
        if (!pte.dirty()) {
            detail::CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            if constexpr (!kHardwareUpdate) {
                cost.fault_cycles = config.t_fault;
            }
        }
        return cost;
    }

    static bool IsPageDirty(const pt::Pte& pte) { return pte.dirty(); }
};

template <>
struct DirtyOps<DirtyPolicyKind::kWrite> : WriteFamilyOps<false> {
};

template <>
struct DirtyOps<DirtyPolicyKind::kWriteHw> : WriteFamilyOps<true> {
};

// ---------------------------------------------------------------------------
// SPUR-PROT: the generalized SPUR scheme of Section 3.1 applied to the
// protection field.  Writable clean pages are mapped read-only (like
// FAULT), but a write that hits a stale read-only cached copy checks the
// PTE first: if the PTE is already read-write the hardware refreshes the
// cached copy with a "protection bit miss" (cost t_dm) instead of
// faulting.  Saves the extra cache-tag bit; performance is identical to
// SPUR's, which the test suite verifies property-style.
// ---------------------------------------------------------------------------
template <>
struct DirtyOps<DirtyPolicyKind::kSpurProt> {
    static bool WriteHitFastPath(cache::ConstLineRef line)
    {
        return line.prot() == Protection::kReadWrite;
    }

    static Protection ResidentProtection(bool writable)
    {
        (void)writable;
        return Protection::kReadOnly;  // Clean writable pages start RO.
    }

    template <typename Events>
    static DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr,
                                pt::Pte& pte, Events& events,
                                cache::PageFlusher& flusher,
                                const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        DirtyCost cost;
        if (line.prot() == Protection::kReadWrite) {
            return cost;
        }
        if (!pte.writable_intent()) {
            Panic("SPUR-PROT: write to a genuinely read-only page");
        }
        if (pte.protection() == Protection::kReadWrite) {
            // Stale cached protection: protection bit miss.
            events.Add(sim::Event::kDirtyBitMiss);
            cost.aux_cycles = config.t_dirty_miss;
        } else {
            // First write to the page: fault, then the forced refresh.
            detail::CountNecessaryFault(pte, events);
            pte.set_soft_dirty(true);
            pte.set_protection(Protection::kReadWrite);
            cost.fault_cycles = config.t_fault;
            cost.aux_cycles = config.t_dirty_miss;
        }
        line.set_prot(Protection::kReadWrite);
        return cost;
    }

    template <typename Events>
    static DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                                 Events& events, cache::PageFlusher& flusher,
                                 const sim::MachineConfig& config)
    {
        (void)addr;
        (void)flusher;
        DirtyCost cost;
        if (pte.protection() != Protection::kReadWrite) {
            if (!pte.writable_intent()) {
                Panic("SPUR-PROT: write miss on a read-only page");
            }
            detail::CountNecessaryFault(pte, events);
            pte.set_soft_dirty(true);
            pte.set_protection(Protection::kReadWrite);
            cost.fault_cycles = config.t_fault;
        }
        return cost;
    }

    static bool IsPageDirty(const pt::Pte& pte) { return pte.soft_dirty(); }
};

// ===========================================================================
// Reference-bit policy operations (Section 4).
// ===========================================================================

template <RefPolicyKind kKind>
struct RefOps;

// ---------------------------------------------------------------------------
// MISS: the miss-bit approximation SPUR implements.  REF derives from it
// (same miss handling, plus flush-on-clear), expressed as the
// kFlushOnClear variant.
// ---------------------------------------------------------------------------
template <bool kFlushOnClear>
struct MissFamilyRefOps {
    template <typename Events>
    static RefCost OnCacheMiss(pt::Pte& pte, Events& events,
                               const sim::MachineConfig& config)
    {
        RefCost cost;
        if (!pte.referenced()) {
            events.Add(sim::Event::kRefFault);
            pte.set_referenced(true);
            cost.fault_cycles = config.t_fault;
        }
        return cost;
    }

    static bool ReadRefBit(const pt::Pte& pte) { return pte.referenced(); }

    template <typename Events>
    static RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                               Events& events, cache::PageFlusher& flusher,
                               const sim::MachineConfig& config)
    {
        RefCost cost;
        events.Add(sim::Event::kRefClear);
        pte.set_referenced(false);
        cost.kernel_cycles = config.t_ref_clear;
        if constexpr (kFlushOnClear) {
            // Flush the page so any further use must miss and re-set the
            // bit.  The flushed blocks' re-fetch misses then surface
            // naturally in the simulation, which is the "disrupts the
            // cache" effect the paper describes.
            events.Add(sim::Event::kRefClearFlush);
            flusher.FlushPageChecked(page_addr);
            // On a multiprocessor every cache must be visited.
            cost.flush_cycles =
                config.t_flush_page * flusher.NumFlushTargets();
        } else {
            (void)page_addr;
            (void)flusher;
        }
        return cost;
    }
};

template <>
struct RefOps<RefPolicyKind::kMiss> : MissFamilyRefOps<false> {
};

template <>
struct RefOps<RefPolicyKind::kRef> : MissFamilyRefOps<true> {
};

// ---------------------------------------------------------------------------
// NOREF: no reference information at all.
// ---------------------------------------------------------------------------
template <>
struct RefOps<RefPolicyKind::kNoRef> {
    template <typename Events>
    static RefCost OnCacheMiss(pt::Pte& pte, Events& events,
                               const sim::MachineConfig& config)
    {
        // The hardware bit is left permanently set (the VM sets it at
        // page-in), so no reference fault can occur and nothing is spent.
        (void)pte;
        (void)events;
        (void)config;
        return RefCost{};
    }

    static bool ReadRefBit(const pt::Pte& pte)
    {
        (void)pte;
        return false;  // The machine-dependent read always says "unused".
    }

    template <typename Events>
    static RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                               Events& events, cache::PageFlusher& flusher,
                               const sim::MachineConfig& config)
    {
        (void)pte;
        (void)page_addr;
        (void)events;
        (void)flusher;
        (void)config;
        return RefCost{};  // Clearing has no effect and costs nothing.
    }
};

}  // namespace spur::policy

#endif  // SPUR_POLICY_POLICY_OPS_H_

/**
 * @file
 * The five dirty-bit maintenance alternatives of Section 3 (Table 3.1).
 *
 * | Policy | Mechanism                                                    |
 * |--------|--------------------------------------------------------------|
 * | FAULT  | Emulate dirty bits with protection; writes to previously    |
 * |        | cached blocks cause *excess faults*.                         |
 * | FLUSH  | FAULT, plus flush the page from the cache on the first      |
 * |        | fault, preventing excess faults.                             |
 * | SPUR   | Cache a copy of the page dirty bit with each block; check   |
 * |        | the PTE before faulting; refresh stale copies with a cheap  |
 * |        | *dirty-bit miss*.                                            |
 * | WRITE  | Check the PTE on the first write to each cache block        |
 * |        | (Sun-3 style, but faulting to software).                     |
 * | MIN    | Oracle: only the intrinsic necessary faults, no checking    |
 * |        | overhead.  Lower bound for comparisons.                      |
 *
 * Two variants the paper describes but did not build are also provided:
 *
 * | SPUR-PROT | Section 3.1's generalized SPUR scheme applied to the     |
 * |           | protection field instead of an explicit dirty bit: a     |
 * |           | stale read-only cached copy is refreshed with a          |
 * |           | "protection bit miss" after checking the PTE.  The paper |
 * |           | notes its performance is identical to SPUR's; the test   |
 * |           | suite verifies that equivalence.                          |
 * | WRITE-HW  | The actual Sun-3 mechanism: the hardware *updates* the   |
 * |           | dirty bit itself on the first write to each block — no   |
 * |           | faults at all, but the per-block check cost remains.      |
 *
 * All policies share the software fault handler (cost t_ds) that actually
 * sets the dirty information in the PTE; they differ in *when* control
 * reaches it and what hardware checking costs accrue.
 */
#ifndef SPUR_POLICY_DIRTY_POLICY_H_
#define SPUR_POLICY_DIRTY_POLICY_H_

#include <memory>
#include <string>

#include "src/cache/cache.h"
#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/pt/pte.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::policy {

/** Selector for the dirty-bit alternative. */
enum class DirtyPolicyKind : uint8_t {
    kMin,
    kFault,
    kFlush,
    kSpur,
    kWrite,
    kSpurProt,  ///< SPUR semantics on the protection field (no extra bit).
    kWriteHw,   ///< Sun-3 hardware dirty-bit update (no faults).
};

/** Returns the paper's name for the policy ("FAULT", "SPUR", ...). */
const char* ToString(DirtyPolicyKind kind);

/** Parses a policy name (case-insensitive); fatal on unknown names. */
DirtyPolicyKind ParseDirtyPolicy(const std::string& name);

/** Cycle charges produced by a policy action, by destination bucket. */
struct DirtyCost {
    Cycles fault_cycles = 0;  ///< Software fault handler time.
    Cycles flush_cycles = 0;  ///< Page flush time (FLUSH policy).
    Cycles aux_cycles = 0;    ///< Dirty-bit misses / PTE dirty checks.
    /// The written line was invalidated (page flushed); the system must
    /// re-execute the write as a cache miss.
    bool line_invalidated = false;
};

/**
 * Interface of a dirty-bit maintenance policy.
 *
 * The SpurSystem calls OnWriteHit for every write that hits in the cache
 * and OnWriteMiss for every write after its miss has been translated
 * (PTE in hand, page resident).  Policies update PTE and line state,
 * count events, and report cycle charges.
 */
class DirtyPolicy
{
  public:
    virtual ~DirtyPolicy() = default;

    DirtyPolicy(const DirtyPolicy&) = delete;
    DirtyPolicy& operator=(const DirtyPolicy&) = delete;

    /** Which alternative this is. */
    virtual DirtyPolicyKind kind() const = 0;

    /**
     * Protection value the VM installs in the PTE when a page becomes
     * resident while clean.  FAULT/FLUSH deliberately under-protect
     * writable pages as read-only; the others install the real protection.
     */
    virtual Protection ResidentProtection(bool writable) const = 0;

    /**
     * True when a write hitting @p line needs no policy action (the
     * cached checks pass).  The system skips the PTE lookup and the
     * OnWriteHit call entirely on this fast path — exactly the "proceed
     * without delay" case of the hardware.
     */
    virtual bool WriteHitFastPath(cache::ConstLineRef line) const = 0;

    /** Handles a write that hit on @p line (slow path only). */
    virtual DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr,
                                 pt::Pte& pte, sim::EventCounts& events) = 0;

    /** Handles a write miss after translation (before the fill). */
    virtual DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                                  sim::EventCounts& events) = 0;

    /**
     * The policy's notion of "this page is modified", consulted by the
     * page daemon at replacement time.  FAULT/FLUSH use the software
     * dirty bit; the hardware policies use the PTE D bit.
     */
    virtual bool IsPageDirty(const pt::Pte& pte) const = 0;

  protected:
    DirtyPolicy() = default;
};

/**
 * Creates a policy instance.
 *
 * @param kind     which alternative.
 * @param flusher  the machine's cache(s): FLUSH purges pages through it.
 * @param config   time parameters (Table 3.2).
 */
std::unique_ptr<DirtyPolicy> MakeDirtyPolicy(DirtyPolicyKind kind,
                                             cache::PageFlusher& flusher,
                                             const sim::MachineConfig& config);

}  // namespace spur::policy

#endif  // SPUR_POLICY_DIRTY_POLICY_H_

#include "src/policy/dirty_policy.h"

#include <algorithm>
#include <cctype>

#include "src/common/log.h"

namespace spur::policy {

const char*
ToString(DirtyPolicyKind kind)
{
    switch (kind) {
      case DirtyPolicyKind::kMin: return "MIN";
      case DirtyPolicyKind::kFault: return "FAULT";
      case DirtyPolicyKind::kFlush: return "FLUSH";
      case DirtyPolicyKind::kSpur: return "SPUR";
      case DirtyPolicyKind::kWrite: return "WRITE";
      case DirtyPolicyKind::kSpurProt: return "SPUR-PROT";
      case DirtyPolicyKind::kWriteHw: return "WRITE-HW";
    }
    return "?";
}

DirtyPolicyKind
ParseDirtyPolicy(const std::string& name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "MIN") return DirtyPolicyKind::kMin;
    if (upper == "FAULT") return DirtyPolicyKind::kFault;
    if (upper == "FLUSH") return DirtyPolicyKind::kFlush;
    if (upper == "SPUR") return DirtyPolicyKind::kSpur;
    if (upper == "WRITE") return DirtyPolicyKind::kWrite;
    if (upper == "SPUR-PROT") return DirtyPolicyKind::kSpurProt;
    if (upper == "WRITE-HW") return DirtyPolicyKind::kWriteHw;
    Fatal("unknown dirty policy '" + name +
          "' (expected MIN/FAULT/FLUSH/SPUR/WRITE/SPUR-PROT/WRITE-HW)");
}

namespace {

/**
 * Records a necessary dirty fault in @p events, classifying the zero-fill
 * subset (Section 3.2 excludes those as non-intrinsic) and consuming the
 * page's zero-fill marker.
 */
void
CountNecessaryFault(pt::Pte& pte, sim::EventCounts& events)
{
    events.Add(sim::Event::kDirtyFault);
    if (pte.zfod_clean()) {
        events.Add(sim::Event::kDirtyFaultZfod);
        pte.set_zfod_clean(false);
    }
}

/** Shared state for the concrete policies. */
class DirtyPolicyBase : public DirtyPolicy
{
  public:
    DirtyPolicyBase(cache::PageFlusher& flusher,
                    const sim::MachineConfig& config)
        : flusher_(flusher), config_(config)
    {
    }

  protected:
    cache::PageFlusher& flusher_;
    const sim::MachineConfig& config_;
};

// ---------------------------------------------------------------------------
// MIN: the oracle lower bound.  Only the intrinsic necessary faults are
// charged; dirty state is tracked with zero checking overhead.
// ---------------------------------------------------------------------------
class MinPolicy final : public DirtyPolicyBase
{
  public:
    using DirtyPolicyBase::DirtyPolicyBase;

    DirtyPolicyKind kind() const override { return DirtyPolicyKind::kMin; }

    bool WriteHitFastPath(const cache::Line& line) const override
    {
        return line.page_dirty;
    }

    Protection ResidentProtection(bool writable) const override
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    DirtyCost OnWriteHit(cache::Line& line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        (void)addr;
        if (line.prot != Protection::kReadWrite) {
            Panic("MIN: write to a read-only page");
        }
        DirtyCost cost;
        if (!line.page_dirty) {
            if (!pte.dirty()) {
                CountNecessaryFault(pte, events);
                pte.set_dirty(true);
                cost.fault_cycles = config_.t_fault;
            }
            line.page_dirty = true;  // Oracle refresh: free.
        }
        return cost;
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        (void)addr;
        DirtyCost cost;
        if (!pte.dirty()) {
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config_.t_fault;
        }
        return cost;
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return pte.dirty();
    }
};

// ---------------------------------------------------------------------------
// FAULT: emulate dirty bits with protection.  Writable clean pages are
// mapped read-only; the first write faults, the handler sets the software
// dirty bit and upgrades the PTE to read-write.  Blocks cached while the
// page was read-only keep their stale protection, so writes to them fault
// too — the *excess faults* of Figure 3.1.
// ---------------------------------------------------------------------------
class FaultPolicy : public DirtyPolicyBase
{
  public:
    using DirtyPolicyBase::DirtyPolicyBase;

    DirtyPolicyKind kind() const override { return DirtyPolicyKind::kFault; }

    bool WriteHitFastPath(const cache::Line& line) const override
    {
        return line.prot == Protection::kReadWrite;
    }

    Protection ResidentProtection(bool writable) const override
    {
        // The emulation's whole trick: writable pages start read-only.
        (void)writable;
        return Protection::kReadOnly;
    }

    DirtyCost OnWriteHit(cache::Line& line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        DirtyCost cost;
        if (line.prot == Protection::kReadWrite) {
            return cost;  // Fast path: no check beyond the normal one.
        }
        if (!pte.writable_intent()) {
            Panic("FAULT: write to a genuinely read-only page");
        }
        cost.fault_cycles = config_.t_fault;
        if (!pte.soft_dirty()) {
            // Necessary fault: really the first write to the page.
            CountNecessaryFault(pte, events);
            pte.set_soft_dirty(true);
            pte.set_protection(Protection::kReadWrite);
            AfterNecessaryFault(line, addr, &cost);
        } else {
            // Excess fault: the PTE is already read-write; only this
            // block's cached protection is stale.
            events.Add(sim::Event::kExcessFault);
            line.prot = Protection::kReadWrite;
        }
        return cost;
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        DirtyCost cost;
        if (pte.protection() == Protection::kReadWrite) {
            return cost;
        }
        if (!pte.writable_intent()) {
            Panic("FAULT: write miss on a genuinely read-only page");
        }
        // Write misses always translate first, so the fault is detected on
        // the PTE itself and is always a necessary fault.
        CountNecessaryFault(pte, events);
        pte.set_soft_dirty(true);
        pte.set_protection(Protection::kReadWrite);
        cost.fault_cycles = config_.t_fault;
        OnMissFault(addr, &cost);
        return cost;
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return pte.soft_dirty();
    }

  protected:
    /** Hook: what to do with the stale faulting line (FLUSH overrides). */
    virtual void AfterNecessaryFault(cache::Line& line, GlobalAddr addr,
                                     DirtyCost* cost)
    {
        (void)addr;
        (void)cost;
        // The handler refreshes the single faulting block's protection so
        // the retried write proceeds (equivalent to flushing that one
        // block and refilling it; the refill is inside the 1000-cycle
        // handler estimate).
        line.prot = Protection::kReadWrite;
    }

    /** Hook: extra work on a write-miss necessary fault. */
    virtual void OnMissFault(GlobalAddr addr, DirtyCost* cost)
    {
        (void)addr;
        (void)cost;
    }
};

// ---------------------------------------------------------------------------
// FLUSH: FAULT, plus flush the whole page from the cache inside the fault
// handler so no stale read-only blocks survive — excess faults cannot
// happen, at the price of t_flush per necessary fault.
// ---------------------------------------------------------------------------
class FlushPolicy final : public FaultPolicy
{
  public:
    FlushPolicy(cache::PageFlusher& flusher, const sim::MachineConfig& config)
        : FaultPolicy(flusher, config)
    {
    }

    DirtyPolicyKind kind() const override { return DirtyPolicyKind::kFlush; }

  protected:
    void AfterNecessaryFault(cache::Line& line, GlobalAddr addr,
                             DirtyCost* cost) override
    {
        (void)line;
        FlushPage(addr, cost);
        // The written line itself was flushed: the access must re-execute
        // as a miss (and will refill with read-write protection).
        cost->line_invalidated = true;
    }

    void OnMissFault(GlobalAddr addr, DirtyCost* cost) override
    {
        // Other blocks of this page may be cached with stale protection.
        FlushPage(addr, cost);
    }

  private:
    void FlushPage(GlobalAddr addr, DirtyCost* cost)
    {
        flusher_.FlushPageChecked(addr);
        // The paper prices the tag-checked flush at a flat ~500 cycles
        // (128 slots, ~10% needing writeback); we charge the flat cost
        // per cache the flush must visit (all of them on a
        // multiprocessor) and let the flushed blocks' re-fetch misses
        // surface naturally.
        cost->flush_cycles =
            config_.t_flush_page * flusher_.NumFlushTargets();
    }
};

// ---------------------------------------------------------------------------
// SPUR: an explicit hardware dirty bit, cached per block.  A write that
// finds the cached page-dirty bit clear checks the PTE: if the PTE is also
// clean this is the first write (fault); if not, the cached copy is merely
// stale and a 25-cycle dirty-bit miss refreshes it.
// ---------------------------------------------------------------------------
class SpurPolicy final : public DirtyPolicyBase
{
  public:
    using DirtyPolicyBase::DirtyPolicyBase;

    DirtyPolicyKind kind() const override { return DirtyPolicyKind::kSpur; }

    bool WriteHitFastPath(const cache::Line& line) const override
    {
        return line.prot == Protection::kReadWrite && line.page_dirty;
    }

    Protection ResidentProtection(bool writable) const override
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    DirtyCost OnWriteHit(cache::Line& line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        (void)addr;
        if (line.prot != Protection::kReadWrite) {
            Panic("SPUR: write to a read-only page");
        }
        DirtyCost cost;
        if (line.page_dirty) {
            return cost;  // Common case: proceed without delay.
        }
        if (pte.dirty()) {
            // Stale cached copy: refresh via a dirty-bit miss.
            events.Add(sim::Event::kDirtyBitMiss);
            cost.aux_cycles = config_.t_dirty_miss;
        } else {
            // First write to the page: fault to software, then refresh
            // the cached copy (the fault is followed by the same forced
            // miss, hence t_ds + t_dm in the paper's O(SPUR)).
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config_.t_fault;
            cost.aux_cycles = config_.t_dirty_miss;
        }
        line.page_dirty = true;
        return cost;
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        (void)addr;
        DirtyCost cost;
        if (!pte.dirty()) {
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config_.t_fault;
        }
        return cost;
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return pte.dirty();
    }
};

// ---------------------------------------------------------------------------
// WRITE: Sun-3 style.  The PTE dirty bit is checked on the first write to
// each cache *block*: free on write misses (the PTE is already in hand for
// translation), t_dc on write hits to clean blocks.  Never any excess
// faults, but the check rate is the block modification rate.
// ---------------------------------------------------------------------------
class WritePolicy final : public DirtyPolicyBase
{
  public:
    using DirtyPolicyBase::DirtyPolicyBase;

    DirtyPolicyKind kind() const override { return DirtyPolicyKind::kWrite; }

    bool WriteHitFastPath(const cache::Line& line) const override
    {
        return line.block_dirty;
    }

    Protection ResidentProtection(bool writable) const override
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    DirtyCost OnWriteHit(cache::Line& line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        (void)addr;
        if (line.prot != Protection::kReadWrite) {
            Panic("WRITE: write to a read-only page");
        }
        DirtyCost cost;
        if (line.block_dirty) {
            return cost;  // Not the first write to this block.
        }
        events.Add(sim::Event::kDirtyCheck);
        cost.aux_cycles = config_.t_dirty_check;
        if (!pte.dirty()) {
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config_.t_fault;
        }
        return cost;
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        (void)addr;
        DirtyCost cost;
        // The controller examined the PTE during translation anyway, so
        // this check is free.
        if (!pte.dirty()) {
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
            cost.fault_cycles = config_.t_fault;
        }
        return cost;
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return pte.dirty();
    }
};

// ---------------------------------------------------------------------------
// SPUR-PROT: the generalized SPUR scheme of Section 3.1 applied to the
// protection field.  Writable clean pages are mapped read-only (like
// FAULT), but a write that hits a stale read-only cached copy checks the
// PTE first: if the PTE is already read-write the hardware refreshes the
// cached copy with a "protection bit miss" (cost t_dm) instead of
// faulting.  Saves the extra cache-tag bit; performance is identical to
// SPUR's, which the test suite verifies property-style.
// ---------------------------------------------------------------------------
class SpurProtPolicy final : public DirtyPolicyBase
{
  public:
    using DirtyPolicyBase::DirtyPolicyBase;

    DirtyPolicyKind kind() const override
    {
        return DirtyPolicyKind::kSpurProt;
    }

    bool WriteHitFastPath(const cache::Line& line) const override
    {
        return line.prot == Protection::kReadWrite;
    }

    Protection ResidentProtection(bool writable) const override
    {
        (void)writable;
        return Protection::kReadOnly;  // Clean writable pages start RO.
    }

    DirtyCost OnWriteHit(cache::Line& line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        (void)addr;
        DirtyCost cost;
        if (line.prot == Protection::kReadWrite) {
            return cost;
        }
        if (!pte.writable_intent()) {
            Panic("SPUR-PROT: write to a genuinely read-only page");
        }
        if (pte.protection() == Protection::kReadWrite) {
            // Stale cached protection: protection bit miss.
            events.Add(sim::Event::kDirtyBitMiss);
            cost.aux_cycles = config_.t_dirty_miss;
        } else {
            // First write to the page: fault, then the forced refresh.
            CountNecessaryFault(pte, events);
            pte.set_soft_dirty(true);
            pte.set_protection(Protection::kReadWrite);
            cost.fault_cycles = config_.t_fault;
            cost.aux_cycles = config_.t_dirty_miss;
        }
        line.prot = Protection::kReadWrite;
        return cost;
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        (void)addr;
        DirtyCost cost;
        if (pte.protection() != Protection::kReadWrite) {
            if (!pte.writable_intent()) {
                Panic("SPUR-PROT: write miss on a read-only page");
            }
            CountNecessaryFault(pte, events);
            pte.set_soft_dirty(true);
            pte.set_protection(Protection::kReadWrite);
            cost.fault_cycles = config_.t_fault;
        }
        return cost;
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return pte.soft_dirty();
    }
};

// ---------------------------------------------------------------------------
// WRITE-HW: the Sun-3's real mechanism.  On the first write to each cache
// block the hardware checks the page's dirty state in the memory
// management unit and *updates it itself* — no software fault ever.  The
// per-block check cost t_dc remains, which is still enough to make it
// uncompetitive (Section 3.2's t_dc sweep).
// ---------------------------------------------------------------------------
class WriteHwPolicy final : public DirtyPolicyBase
{
  public:
    using DirtyPolicyBase::DirtyPolicyBase;

    DirtyPolicyKind kind() const override
    {
        return DirtyPolicyKind::kWriteHw;
    }

    bool WriteHitFastPath(const cache::Line& line) const override
    {
        return line.block_dirty;
    }

    Protection ResidentProtection(bool writable) const override
    {
        return writable ? Protection::kReadWrite : Protection::kReadOnly;
    }

    DirtyCost OnWriteHit(cache::Line& line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        (void)addr;
        if (line.prot != Protection::kReadWrite) {
            Panic("WRITE-HW: write to a read-only page");
        }
        DirtyCost cost;
        if (line.block_dirty) {
            return cost;
        }
        events.Add(sim::Event::kDirtyCheck);
        cost.aux_cycles = config_.t_dirty_check;
        if (!pte.dirty()) {
            // The hardware sets the bit silently: the clean-to-dirty
            // transition is recorded for the Table 3.3 bookkeeping but
            // costs no fault.
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
        }
        return cost;
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        (void)addr;
        if (!pte.dirty()) {
            CountNecessaryFault(pte, events);
            pte.set_dirty(true);
        }
        return DirtyCost{};  // The PTE was in hand: free.
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return pte.dirty();
    }
};

}  // namespace

std::unique_ptr<DirtyPolicy>
MakeDirtyPolicy(DirtyPolicyKind kind, cache::PageFlusher& flusher,
                const sim::MachineConfig& config)
{
    switch (kind) {
      case DirtyPolicyKind::kMin:
        return std::make_unique<MinPolicy>(flusher, config);
      case DirtyPolicyKind::kFault:
        return std::make_unique<FaultPolicy>(flusher, config);
      case DirtyPolicyKind::kFlush:
        return std::make_unique<FlushPolicy>(flusher, config);
      case DirtyPolicyKind::kSpur:
        return std::make_unique<SpurPolicy>(flusher, config);
      case DirtyPolicyKind::kWrite:
        return std::make_unique<WritePolicy>(flusher, config);
      case DirtyPolicyKind::kSpurProt:
        return std::make_unique<SpurProtPolicy>(flusher, config);
      case DirtyPolicyKind::kWriteHw:
        return std::make_unique<WriteHwPolicy>(flusher, config);
    }
    Panic("MakeDirtyPolicy: bad kind");
}

}  // namespace spur::policy

#include "src/policy/dirty_policy.h"

#include <algorithm>
#include <cctype>

#include "src/common/log.h"
#include "src/policy/policy_ops.h"

namespace spur::policy {

const char*
ToString(DirtyPolicyKind kind)
{
    switch (kind) {
      case DirtyPolicyKind::kMin: return "MIN";
      case DirtyPolicyKind::kFault: return "FAULT";
      case DirtyPolicyKind::kFlush: return "FLUSH";
      case DirtyPolicyKind::kSpur: return "SPUR";
      case DirtyPolicyKind::kWrite: return "WRITE";
      case DirtyPolicyKind::kSpurProt: return "SPUR-PROT";
      case DirtyPolicyKind::kWriteHw: return "WRITE-HW";
    }
    return "?";
}

DirtyPolicyKind
ParseDirtyPolicy(const std::string& name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "MIN") return DirtyPolicyKind::kMin;
    if (upper == "FAULT") return DirtyPolicyKind::kFault;
    if (upper == "FLUSH") return DirtyPolicyKind::kFlush;
    if (upper == "SPUR") return DirtyPolicyKind::kSpur;
    if (upper == "WRITE") return DirtyPolicyKind::kWrite;
    if (upper == "SPUR-PROT") return DirtyPolicyKind::kSpurProt;
    if (upper == "WRITE-HW") return DirtyPolicyKind::kWriteHw;
    Fatal("unknown dirty policy '" + name +
          "' (expected MIN/FAULT/FLUSH/SPUR/WRITE/SPUR-PROT/WRITE-HW)");
}

namespace {

/**
 * Virtual-dispatch adapter over the compile-time ops in policy_ops.h.
 * Events pass through sim::EventCounts::Add (observer mirror preserved);
 * the devirtualized hot path instantiates DirtyOps<K> directly instead.
 */
template <DirtyPolicyKind K>
class DirtyPolicyImpl final : public DirtyPolicy
{
  public:
    DirtyPolicyImpl(cache::PageFlusher& flusher,
                    const sim::MachineConfig& config)
        : flusher_(flusher), config_(config)
    {
    }

    DirtyPolicyKind kind() const override { return K; }

    Protection ResidentProtection(bool writable) const override
    {
        return DirtyOps<K>::ResidentProtection(writable);
    }

    bool WriteHitFastPath(cache::ConstLineRef line) const override
    {
        return DirtyOps<K>::WriteHitFastPath(line);
    }

    DirtyCost OnWriteHit(cache::LineRef line, GlobalAddr addr, pt::Pte& pte,
                         sim::EventCounts& events) override
    {
        return DirtyOps<K>::OnWriteHit(line, addr, pte, events, flusher_,
                                       config_);
    }

    DirtyCost OnWriteMiss(GlobalAddr addr, pt::Pte& pte,
                          sim::EventCounts& events) override
    {
        return DirtyOps<K>::OnWriteMiss(addr, pte, events, flusher_,
                                        config_);
    }

    bool IsPageDirty(const pt::Pte& pte) const override
    {
        return DirtyOps<K>::IsPageDirty(pte);
    }

  private:
    cache::PageFlusher& flusher_;
    const sim::MachineConfig& config_;
};

}  // namespace

std::unique_ptr<DirtyPolicy>
MakeDirtyPolicy(DirtyPolicyKind kind, cache::PageFlusher& flusher,
                const sim::MachineConfig& config)
{
    switch (kind) {
      case DirtyPolicyKind::kMin:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kMin>>(
            flusher, config);
      case DirtyPolicyKind::kFault:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kFault>>(
            flusher, config);
      case DirtyPolicyKind::kFlush:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kFlush>>(
            flusher, config);
      case DirtyPolicyKind::kSpur:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kSpur>>(
            flusher, config);
      case DirtyPolicyKind::kWrite:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kWrite>>(
            flusher, config);
      case DirtyPolicyKind::kSpurProt:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kSpurProt>>(
            flusher, config);
      case DirtyPolicyKind::kWriteHw:
        return std::make_unique<DirtyPolicyImpl<DirtyPolicyKind::kWriteHw>>(
            flusher, config);
    }
    Panic("MakeDirtyPolicy: bad kind");
}

}  // namespace spur::policy

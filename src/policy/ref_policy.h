/**
 * @file
 * The three reference-bit policies of Section 4.
 *
 * | Policy | Mechanism                                                     |
 * |--------|---------------------------------------------------------------|
 * | MISS   | Check the reference bit only on cache misses (free: the PTE  |
 * |        | is in hand for translation); fault to software to set it.    |
 * |        | Blocks that stay cache-resident never re-set the bit, so the |
 * |        | daemon can replace genuinely active pages.                    |
 * | REF    | True reference bits: the daemon flushes the page from the    |
 * |        | cache whenever it clears the bit, guaranteeing the next      |
 * |        | reference misses and re-sets it.                              |
 * | NOREF  | No reference bits: reads of the bit always return false and  |
 * |        | clears are no-ops (the hardware bit stays set so no ref      |
 * |        | faults ever occur); replacement degenerates to sweep order.   |
 */
#ifndef SPUR_POLICY_REF_POLICY_H_
#define SPUR_POLICY_REF_POLICY_H_

#include <memory>
#include <string>

#include "src/cache/cache.h"
#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/pt/pte.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::policy {

/** Selector for the reference-bit policy. */
enum class RefPolicyKind : uint8_t {
    kMiss,
    kRef,
    kNoRef,
};

/** Returns the paper's name for the policy ("MISS", "REF", "NOREF"). */
const char* ToString(RefPolicyKind kind);

/** Parses a policy name (case-insensitive); fatal on unknown names. */
RefPolicyKind ParseRefPolicy(const std::string& name);

/** Cycle charges from a reference-bit action. */
struct RefCost {
    Cycles fault_cycles = 0;   ///< Reference faults (software handler).
    Cycles flush_cycles = 0;   ///< Page flushes on clear (REF policy).
    Cycles kernel_cycles = 0;  ///< Bit clearing work in the daemon.
};

/** Interface of a reference-bit policy. */
class RefPolicy
{
  public:
    virtual ~RefPolicy() = default;

    RefPolicy(const RefPolicy&) = delete;
    RefPolicy& operator=(const RefPolicy&) = delete;

    /** Which policy this is. */
    virtual RefPolicyKind kind() const = 0;

    /**
     * Called on every cache miss after translation: the hardware checks
     * the PTE's R bit and faults to software when it must be set.
     */
    virtual RefCost OnCacheMiss(pt::Pte& pte, sim::EventCounts& events) = 0;

    /** The page daemon's read of the reference bit. */
    virtual bool ReadRefBit(const pt::Pte& pte) const = 0;

    /**
     * The page daemon's clear of the reference bit for page @p vpn whose
     * blocks live at global page address @p page_addr.
     */
    virtual RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                                sim::EventCounts& events) = 0;

  protected:
    RefPolicy() = default;
};

/** Creates a reference policy (REF flushes pages through the machine's
 *  cache(s) when clearing bits). */
std::unique_ptr<RefPolicy> MakeRefPolicy(RefPolicyKind kind,
                                         cache::PageFlusher& flusher,
                                         const sim::MachineConfig& config);

}  // namespace spur::policy

#endif  // SPUR_POLICY_REF_POLICY_H_

#include "src/core/run_trace.h"

#include "src/common/log.h"
#include "src/sim/config.h"

namespace spur::core {

workload::TraceStreamMeta
TraceMetaFor(const RunConfig& config)
{
    // The geometry fields come from the same Prototype the run builds;
    // memory_mb scales memory_bytes only, so identities are shared
    // across memory sizes (one recording feeds a whole memory sweep).
    const sim::MachineConfig machine =
        sim::MachineConfig::Prototype(config.memory_mb);
    workload::TraceStreamMeta meta;
    meta.workload = ToString(config.workload);
    meta.seed = config.seed;
    meta.refs = (config.refs != 0) ? config.refs
                                   : DefaultRefs(config.workload);
    meta.intensity = config.intensity;
    meta.page_bytes = machine.page_bytes;
    meta.block_bytes = machine.block_bytes;
    return meta;
}

bool
TraceRecordSession::Open(const std::string& path, std::string* error)
{
    MutexLock lock(mutex_);
    return writer_.Open(path, error);
}

bool
TraceRecordSession::Claim(const std::string& identity)
{
    MutexLock lock(mutex_);
    if (!writer_.is_open()) {
        return false;
    }
    return claimed_.emplace(identity, true).second;
}

void
TraceRecordSession::Commit(const std::string& identity,
                           const std::string& bytes)
{
    MutexLock lock(mutex_);
    std::string error;
    if (!writer_.AppendStream(bytes, &error)) {
        Warn("--record-trace: stream '" + identity + "': " + error);
        failed_ = true;
    }
}

bool
TraceRecordSession::Finish(std::string* error)
{
    MutexLock lock(mutex_);
    if (failed_) {
        // The writer already closed on the failed append; the file is a
        // recoverable prefix, not a complete trace.
        if (error != nullptr) {
            *error = "a stream append failed; the trace is partial";
        }
        return false;
    }
    return writer_.Finish(error);
}

bool
TraceRecordSession::failed() const
{
    MutexLock lock(mutex_);
    return failed_;
}

uint64_t
TraceRecordSession::streams() const
{
    MutexLock lock(mutex_);
    return writer_.streams();
}

bool
TraceReplaySource::Load(const std::string& path, std::string* error)
{
    return library_.Load(path, error);
}

}  // namespace spur::core

#include "src/core/system.h"

#include <string>

#include "src/common/log.h"

namespace spur::core {

SpurSystem::SpurSystem(const sim::MachineConfig& config,
                       policy::DirtyPolicyKind dirty,
                       policy::RefPolicyKind ref)
    : config_(config),
      timing_(config_),
      vcache_(config_),
      xlate_(vcache_, table_, config_),
      dirty_(policy::MakeDirtyPolicy(dirty, vcache_, config_)),
      ref_(policy::MakeRefPolicy(ref, vcache_, config_)),
      block_fetch_cycles_(config_.BlockFetchCycles())
{
    config_.Validate();
    vm_ = std::make_unique<vm::VirtualMemory>(config_, table_, vcache_,
                                              events_, timing_);
    vm_->SetPolicies(dirty_.get(), ref_.get());
}

SpurSystem::~SpurSystem() = default;

Pid
SpurSystem::CreateProcess()
{
    const Pid pid = segmap_.CreateProcess();
    process_regions_[pid];
    return pid;
}

void
SpurSystem::DestroyProcess(Pid pid)
{
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("SpurSystem: destroying unknown pid " + std::to_string(pid));
    }
    for (const auto& [base, start_vpn] : it->second) {
        vm_->UnmapRegion(start_vpn);
    }
    process_regions_.erase(it);
    segmap_.DestroyProcess(pid);
    OnContextSwitch();
}

void
SpurSystem::MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                      vm::PageKind kind)
{
    const uint64_t page_bytes = config_.page_bytes;
    if (base % page_bytes != 0 || bytes == 0 || bytes % page_bytes != 0) {
        Fatal("SpurSystem: region must be page aligned and nonempty");
    }
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("SpurSystem: MapRegion on unknown pid " + std::to_string(pid));
    }
    const GlobalAddr gva = segmap_.ToGlobal(pid, base);
    const GlobalVpn start = gva >> config_.PageShift();
    vm_->MapRegion(start, bytes / page_bytes, kind);
    it->second.emplace(base, start);
}

void
SpurSystem::UnmapRegion(Pid pid, ProcessAddr base)
{
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("SpurSystem: UnmapRegion on unknown pid " +
              std::to_string(pid));
    }
    auto region_it = it->second.find(base);
    if (region_it == it->second.end()) {
        Fatal("SpurSystem: no region mapped at this base");
    }
    vm_->UnmapRegion(region_it->second);
    it->second.erase(region_it);
}

void
SpurSystem::Access(const MemRef& ref)
{
    if constexpr (check::kAuditEnabled) {
        if (--audit_countdown_ == 0) {
            audit_countdown_ = check::kAuditAccessInterval;
            Audit().RaiseIfFailed("SpurSystem::Access (periodic)");
        }
    }

    const GlobalAddr gva = segmap_.ToGlobal(ref.pid, ref.addr);

    switch (ref.type) {
      case AccessType::kIFetch:
        events_.Add(sim::Event::kIFetch);
        break;
      case AccessType::kRead:
        events_.Add(sim::Event::kRead);
        break;
      case AccessType::kWrite:
        events_.Add(sim::Event::kWrite);
        break;
    }

    cache::Line* line = vcache_.Lookup(gva);
    if (line != nullptr) {
        timing_.Charge(sim::TimeBucket::kExecute, config_.t_cache_hit);
        if (ref.type != AccessType::kWrite) {
            return;
        }
        // First write to a block that arrived via a read/fetch: this is
        // the N_w-hit population of Table 3.3.
        if (!line->block_dirty) {
            events_.Add(sim::Event::kWriteHitCleanBlock);
        }
        if (dirty_->WriteHitFastPath(*line)) {
            cache::VirtualCache::MarkWritten(*line);
            return;
        }
        const policy::DirtyCost cost =
            dirty_->OnWriteHit(*line, gva, ResidentPte(gva), events_);
        ChargeDirty(cost);
        if (cost.line_invalidated) {
            // FLUSH purged the written line inside the fault handler; the
            // store re-executes as a cache miss and refills the block
            // under the page's new protection.
            AccessMiss(gva, ref.type);
            return;
        }
        cache::VirtualCache::MarkWritten(*line);
        return;
    }

    switch (ref.type) {
      case AccessType::kIFetch:
        events_.Add(sim::Event::kIFetchMiss);
        break;
      case AccessType::kRead:
        events_.Add(sim::Event::kReadMiss);
        break;
      case AccessType::kWrite:
        events_.Add(sim::Event::kWriteMiss);
        break;
    }
    AccessMiss(gva, ref.type);
}

void
SpurSystem::AccessMiss(GlobalAddr gva, AccessType type)
{
    // In-cache translation: find the PTE (possibly faulting the page in).
    xlate::XlateResult xr = xlate_.Translate(gva, events_);
    timing_.Charge(sim::TimeBucket::kXlate, xr.cycles);
    pt::Pte* pte = xr.pte;
    if (!pte->valid()) {
        pte = &vm_->HandlePageFault(gva);
    }

    // Reference bit: the controller checks R while it has the PTE.
    const policy::RefCost ref_cost = ref_->OnCacheMiss(*pte, events_);
    timing_.Charge(sim::TimeBucket::kFault, ref_cost.fault_cycles);

    // Dirty bit: a write miss checks the dirty state before the fill.
    if (type == AccessType::kWrite) {
        ChargeDirty(dirty_->OnWriteMiss(gva, *pte, events_));
    }

    // Fill the block, copying PR and the page dirty bit from the PTE into
    // the cache line (Figure 3.2).
    cache::Eviction eviction;
    cache::Line& line =
        vcache_.Fill(gva, pte->protection(), pte->dirty(), &eviction);
    if (eviction.writeback) {
        events_.Add(sim::Event::kWriteback);
        timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);
    }
    timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);

    if (type == AccessType::kWrite) {
        events_.Add(sim::Event::kWriteMissFill);
        cache::VirtualCache::MarkWritten(line);
    }
}

void
SpurSystem::OnContextSwitch()
{
    events_.Add(sim::Event::kContextSwitch);
    timing_.Charge(sim::TimeBucket::kKernel, config_.t_context_switch);
    if constexpr (check::kAuditEnabled) {
        Audit().RaiseIfFailed("SpurSystem::OnContextSwitch");
    }
}

check::AuditReport
SpurSystem::Audit() const
{
    check::AuditContext context;
    context.config = &config_;
    context.caches = {&vcache_};
    context.table = &table_;
    context.frames = &vm_->frames();
    context.store = &vm_->store();
    context.regions = &vm_->regions();
    context.events = &events_;
    context.dirty = dirty_->kind();
    context.ref = ref_->kind();
    return check::InvariantChecker::Default().Run(context);
}

pt::Pte&
SpurSystem::ResidentPte(GlobalAddr gva)
{
    pt::Pte* pte = table_.FindMutable(gva >> config_.PageShift());
    if (pte == nullptr || !pte->valid()) {
        Panic("SpurSystem: cache hit on a non-resident page (reclaim "
              "missed a flush?)");
    }
    return *pte;
}

void
SpurSystem::ChargeDirty(const policy::DirtyCost& cost)
{
    timing_.Charge(sim::TimeBucket::kFault, cost.fault_cycles);
    timing_.Charge(sim::TimeBucket::kFlush, cost.flush_cycles);
    timing_.Charge(sim::TimeBucket::kDirtyAux, cost.aux_cycles);
}

}  // namespace spur::core

// spur:hot-path
#include "src/core/system.h"

#include <string>

#include "src/common/log.h"
#include "src/policy/policy_ops.h"

namespace spur::core {

SpurSystem::SpurSystem(const sim::MachineConfig& config,
                       policy::DirtyPolicyKind dirty,
                       policy::RefPolicyKind ref)
    : config_(config),
      timing_(config_),
      vcache_(config_),
      xlate_(vcache_, table_, config_),
      dirty_(policy::MakeDirtyPolicy(dirty, vcache_, config_)),
      ref_(policy::MakeRefPolicy(ref, vcache_, config_)),
      block_fetch_cycles_(config_.BlockFetchCycles())
{
    config_.Validate();
    vm_ = std::make_unique<vm::VirtualMemory>(config_, table_, vcache_,
                                              events_, timing_);
    vm_->SetPolicies(dirty_.get(), ref_.get());
    SelectDispatch();
}

SpurSystem::~SpurSystem() = default;

Pid
SpurSystem::CreateProcess()
{
    const Pid pid = segmap_.CreateProcess();
    process_regions_[pid];
    return pid;
}

void
SpurSystem::DestroyProcess(Pid pid)
{
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("SpurSystem: destroying unknown pid " + std::to_string(pid));
    }
    for (const auto& [base, start_vpn] : it->second) {
        vm_->UnmapRegion(start_vpn);
    }
    process_regions_.erase(it);
    segmap_.DestroyProcess(pid);
    OnContextSwitch();
}

void
SpurSystem::MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                      vm::PageKind kind)
{
    const uint64_t page_bytes = config_.page_bytes;
    if (base % page_bytes != 0 || bytes == 0 || bytes % page_bytes != 0) {
        Fatal("SpurSystem: region must be page aligned and nonempty");
    }
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("SpurSystem: MapRegion on unknown pid " + std::to_string(pid));
    }
    const GlobalAddr gva = segmap_.ToGlobal(pid, base);
    const GlobalVpn start = gva >> config_.PageShift();
    vm_->MapRegion(start, bytes / page_bytes, kind);
    it->second.emplace(base, start);
}

void
SpurSystem::UnmapRegion(Pid pid, ProcessAddr base)
{
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("SpurSystem: UnmapRegion on unknown pid " +
              std::to_string(pid));
    }
    auto region_it = it->second.find(base);
    if (region_it == it->second.end()) {
        Fatal("SpurSystem: no region mapped at this base");
    }
    vm_->UnmapRegion(region_it->second);
    it->second.erase(region_it);
}

// ---------------------------------------------------------------------------
// The devirtualized hot path.  One AccessImpl instantiation exists per
// (dirty policy, ref policy, observer attached) configuration; the policy
// hooks inline from policy_ops.h and the event sink's observer check is
// resolved by the kObserved parameter.  The bodies below must stay
// semantically identical to the virtual-policy path (same events in the
// same order, same cycle charges): the policy ops are the shared source
// of truth, and tests/golden outputs pin the equivalence.
// ---------------------------------------------------------------------------

namespace {

// The reference-type events and their miss counterparts mirror the
// AccessType encoding, so the per-reference classification is a single
// indexed counter add instead of a data-dependent (mispredict-prone)
// three-way branch.
constexpr unsigned kMissEventOffset =
    static_cast<unsigned>(sim::Event::kIFetchMiss) -
    static_cast<unsigned>(sim::Event::kIFetch);
static_assert(static_cast<unsigned>(sim::Event::kIFetch) ==
              static_cast<unsigned>(AccessType::kIFetch));
static_assert(static_cast<unsigned>(sim::Event::kRead) ==
              static_cast<unsigned>(AccessType::kRead));
static_assert(static_cast<unsigned>(sim::Event::kWrite) ==
              static_cast<unsigned>(AccessType::kWrite));
static_assert(static_cast<unsigned>(sim::Event::kReadMiss) ==
              static_cast<unsigned>(AccessType::kRead) + kMissEventOffset);
static_assert(static_cast<unsigned>(sim::Event::kWriteMiss) ==
              static_cast<unsigned>(AccessType::kWrite) + kMissEventOffset);

inline sim::Event
RefEvent(AccessType type)
{
    return static_cast<sim::Event>(static_cast<unsigned>(type));
}

inline sim::Event
MissEvent(AccessType type)
{
    return static_cast<sim::Event>(static_cast<unsigned>(type) +
                                   kMissEventOffset);
}

}  // namespace

template <policy::DirtyPolicyKind D, policy::RefPolicyKind R, bool kObserved>
void
SpurSystem::WriteHitSlow(cache::LineRef line, GlobalAddr gva)
{
    sim::EventSink<kObserved> events(events_);
    const policy::DirtyCost cost = policy::DirtyOps<D>::OnWriteHit(
        line, gva, ResidentPte(gva), events, vcache_, config_);
    ChargeDirty(cost);
    if (cost.line_invalidated) {
        // FLUSH purged the written line inside the fault handler; the
        // store re-executes as a cache miss and refills the block
        // under the page's new protection.
        AccessMissImpl<D, R, kObserved>(gva, AccessType::kWrite);
        return;
    }
    line.MarkWritten();
}

template <policy::DirtyPolicyKind D, policy::RefPolicyKind R, bool kObserved>
void
SpurSystem::AccessImpl(const MemRef& ref)
{
    if constexpr (check::kAuditEnabled) {
        if (--audit_countdown_ == 0) {
            audit_countdown_ = check::kAuditAccessInterval;
            Audit().RaiseIfFailed("SpurSystem::Access (periodic)");
        }
    }

    sim::EventSink<kObserved> events(events_);
    const GlobalAddr gva = segmap_.ToGlobal(ref.pid, ref.addr);
    events.Add(RefEvent(ref.type));

    cache::LineRef line = vcache_.Lookup(gva);
    if (line) {
        timing_.Charge(sim::TimeBucket::kExecute, config_.t_cache_hit);
        if (ref.type != AccessType::kWrite) {
            return;
        }
        // First write to a block that arrived via a read/fetch: this is
        // the N_w-hit population of Table 3.3.
        if (!line.block_dirty()) {
            events.Add(sim::Event::kWriteHitCleanBlock);
        }
        if (policy::DirtyOps<D>::WriteHitFastPath(line)) {
            line.MarkWritten();
            return;
        }
        WriteHitSlow<D, R, kObserved>(line, gva);
        return;
    }

    events.Add(MissEvent(ref.type));
    AccessMissImpl<D, R, kObserved>(gva, ref.type);
}

template <policy::DirtyPolicyKind D, policy::RefPolicyKind R, bool kObserved>
void
SpurSystem::AccessMissImpl(GlobalAddr gva, AccessType type)
{
    sim::EventSink<kObserved> events(events_);
    // In-cache translation: find the PTE (possibly faulting the page in).
    xlate::XlateResult xr = xlate_.Translate(gva, events_);
    timing_.Charge(sim::TimeBucket::kXlate, xr.cycles);
    pt::Pte* pte = xr.pte;
    if (!pte->valid()) {
        pte = &vm_->HandlePageFault(gva);
    }

    // Reference bit: the controller checks R while it has the PTE.
    const policy::RefCost ref_cost =
        policy::RefOps<R>::OnCacheMiss(*pte, events, config_);
    timing_.Charge(sim::TimeBucket::kFault, ref_cost.fault_cycles);

    // Dirty bit: a write miss checks the dirty state before the fill.
    if (type == AccessType::kWrite) {
        ChargeDirty(policy::DirtyOps<D>::OnWriteMiss(gva, *pte, events,
                                                     vcache_, config_));
    }

    // Fill the block, copying PR and the page dirty bit from the PTE into
    // the cache line (Figure 3.2).
    cache::Eviction eviction;
    cache::LineRef line =
        vcache_.Fill(gva, pte->protection(), pte->dirty(), &eviction);
    if (eviction.writeback) {
        events.Add(sim::Event::kWriteback);
        timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);
    }
    timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);

    if (type == AccessType::kWrite) {
        events.Add(sim::Event::kWriteMissFill);
        cache::VirtualCache::MarkWritten(line);
    }
}

template <policy::DirtyPolicyKind D, policy::RefPolicyKind R, bool kObserved>
void
SpurSystem::AccessBatchImpl(const MemRef* refs, size_t n)
{
    if constexpr (check::kAuditEnabled || kObserved) {
        // Audit builds need the per-reference countdown and observers
        // need every event mirrored in issue order: run the plain loop.
        for (size_t i = 0; i < n; ++i) {
            AccessImpl<D, R, kObserved>(refs[i]);
        }
    } else if (config_.cache_bytes > pt::kSegmentBytes) {
        // Exotic configuration (cache larger than a segment): the
        // index-from-process-address trick below is unsound, so keep the
        // plain per-reference loop.
        for (size_t i = 0; i < n; ++i) {
            AccessImpl<D, R, kObserved>(refs[i]);
        }
    } else {
        // Unobserved: every event add is a plain commutative counter
        // increment and nothing can see the machine between the batch's
        // references, so the per-reference type counts and hit cycles
        // accumulate in registers and flush once at the end.  Final
        // events/timing state is bit-identical to the loop above; state
        // mutation (cache, PTEs, VM) still happens strictly in order.
        sim::EventSink<false> events(events_);
        const Cycles t_hit = config_.t_cache_hit;
        // Raw SoA view and geometry in locals: the write fast path's
        // metadata byte store would otherwise (char aliasing) force
        // every member below to be re-loaded from `this` each iteration.
        const cache::VirtualCache::HotView hv = vcache_.hot_view();
        // Per-type counts as independent register accumulators: an
        // indexed `++counts[type]` would chain same-address store
        // forwards (70% of a typical stream is instruction fetches), so
        // count reads and writes with branchless compares and derive the
        // ifetch count from the total.
        uint64_t reads = 0;
        uint64_t writes = 0;
        uint64_t hits = 0;
        uint64_t clean_write_hits = 0;
        // The four segment registers are cached per process across the
        // batch (a batch is one scheduling quantum: a single process).
        const std::array<uint32_t, pt::kSegmentsPerProcess>* segs = nullptr;
        Pid segs_pid = 0;
        for (size_t i = 0; i < n; ++i) {
            const MemRef ref = refs[i];
            reads += static_cast<uint64_t>(ref.type == AccessType::kRead);
            writes += static_cast<uint64_t>(ref.type == AccessType::kWrite);
            if (segs == nullptr || ref.pid != segs_pid) {
                segs = &segmap_.RegistersOf(ref.pid);
                segs_pid = ref.pid;
            }
            // The cache indexes entirely below the segment shift
            // (checked above), so the slot index depends only on the
            // process address and the tag/metadata loads overlap the
            // segment-register resolution.
            const GlobalAddr gva =
                (static_cast<GlobalAddr>(
                     (*segs)[ref.addr >> pt::kSegmentShift])
                 << pt::kSegmentShift) |
                (ref.addr & (pt::kSegmentBytes - 1));
            const uint64_t index =
                (ref.addr >> hv.block_shift) & hv.index_mask;
            const uint64_t tag = gva >> hv.tag_shift;
            const uint8_t m = hv.meta[index];
            // spur-lint: allow(no-raw-meta-bits) — the SoA hot loop
            if ((m & cache::meta::kStateMask) != 0 &&
                hv.tags[index] == tag) {
                ++hits;
                // Branch-free hit tail: the random read/write mix makes
                // a per-type branch mispredict-prone, so the write
                // marking is an unconditional masked OR and the Table
                // 3.3 N_w-hit count a register accumulator.  Only the
                // rare non-fast-path write (first write under a lazy
                // dirty policy) takes a branch.
                const bool is_write = (ref.type == AccessType::kWrite);
                clean_write_hits += static_cast<uint64_t>(
                    // spur-lint: allow(no-raw-meta-bits) — hot loop
                    is_write && (m & cache::meta::kBlockDirtyBit) == 0);
                cache::LineRef line(&hv.tags[index], &hv.meta[index]);
                if (is_write &&
                    !policy::DirtyOps<D>::WriteHitFastPath(line)) {
                    WriteHitSlow<D, R, false>(line, gva);
                    continue;
                }
                hv.meta[index] = static_cast<uint8_t>(
                    // spur-lint: allow(no-raw-meta-bits) — hot loop
                    m | ((cache::meta::kBlockDirtyBit |
                          static_cast<uint8_t>(
                              cache::CoherencyState::kOwnedExclusive)) &
                         -static_cast<int>(is_write)));
                continue;
            }
            events.Add(MissEvent(ref.type));
            AccessMissImpl<D, R, false>(gva, ref.type);
        }
        events_.AddUnobserved(sim::Event::kIFetch, n - reads - writes);
        events_.AddUnobserved(sim::Event::kRead, reads);
        events_.AddUnobserved(sim::Event::kWrite, writes);
        events_.AddUnobserved(sim::Event::kWriteHitCleanBlock,
                              clean_write_hits);
        timing_.Charge(sim::TimeBucket::kExecute, hits * t_hit);
    }
}

template <policy::DirtyPolicyKind D, policy::RefPolicyKind R>
void
SpurSystem::SetDispatchFns(bool observed)
{
    if (observed) {
        access_fn_ = &SpurSystem::AccessImpl<D, R, true>;
        batch_fn_ = &SpurSystem::AccessBatchImpl<D, R, true>;
    } else {
        access_fn_ = &SpurSystem::AccessImpl<D, R, false>;
        batch_fn_ = &SpurSystem::AccessBatchImpl<D, R, false>;
    }
}

template <policy::DirtyPolicyKind D>
void
SpurSystem::SelectDispatchRef(bool observed)
{
    switch (ref_->kind()) {
      case policy::RefPolicyKind::kMiss:
        SetDispatchFns<D, policy::RefPolicyKind::kMiss>(observed);
        break;
      case policy::RefPolicyKind::kRef:
        SetDispatchFns<D, policy::RefPolicyKind::kRef>(observed);
        break;
      case policy::RefPolicyKind::kNoRef:
        SetDispatchFns<D, policy::RefPolicyKind::kNoRef>(observed);
        break;
    }
}

void
SpurSystem::SelectDispatch()
{
    const bool observed = events_.HasObserver();
    switch (dirty_->kind()) {
      case policy::DirtyPolicyKind::kMin:
        SelectDispatchRef<policy::DirtyPolicyKind::kMin>(observed);
        break;
      case policy::DirtyPolicyKind::kFault:
        SelectDispatchRef<policy::DirtyPolicyKind::kFault>(observed);
        break;
      case policy::DirtyPolicyKind::kFlush:
        SelectDispatchRef<policy::DirtyPolicyKind::kFlush>(observed);
        break;
      case policy::DirtyPolicyKind::kSpur:
        SelectDispatchRef<policy::DirtyPolicyKind::kSpur>(observed);
        break;
      case policy::DirtyPolicyKind::kWrite:
        SelectDispatchRef<policy::DirtyPolicyKind::kWrite>(observed);
        break;
      case policy::DirtyPolicyKind::kSpurProt:
        SelectDispatchRef<policy::DirtyPolicyKind::kSpurProt>(observed);
        break;
      case policy::DirtyPolicyKind::kWriteHw:
        SelectDispatchRef<policy::DirtyPolicyKind::kWriteHw>(observed);
        break;
    }
}

void
SpurSystem::OnContextSwitch()
{
    events_.Add(sim::Event::kContextSwitch);
    timing_.Charge(sim::TimeBucket::kKernel, config_.t_context_switch);
    if constexpr (check::kAuditEnabled) {
        Audit().RaiseIfFailed("SpurSystem::OnContextSwitch");
    }
}

check::AuditReport
SpurSystem::Audit() const
{
    check::AuditContext context;
    context.config = &config_;
    context.caches = {&vcache_};
    context.table = &table_;
    context.frames = &vm_->frames();
    context.store = &vm_->store();
    context.regions = &vm_->regions();
    context.events = &events_;
    context.dirty = dirty_->kind();
    context.ref = ref_->kind();
    return check::InvariantChecker::Default().Run(context);
}

void
SpurSystem::ClearRefBit(GlobalAddr gva)
{
    pt::Pte* pte = table_.FindMutable(gva >> config_.PageShift());
    if (pte == nullptr || !pte->valid()) {
        Panic("SpurSystem::ClearRefBit: page not resident");
    }
    const GlobalAddr page_addr = gva & ~(config_.page_bytes - 1);
    const policy::RefCost cost =
        ref_->ClearRefBit(*pte, page_addr, events_);
    timing_.Charge(sim::TimeBucket::kKernel, cost.kernel_cycles);
    timing_.Charge(sim::TimeBucket::kFlush, cost.flush_cycles);
}

void
SpurSystem::FlushPage(GlobalAddr gva)
{
    const GlobalAddr page_addr = gva & ~(config_.page_bytes - 1);
    const cache::FlushResult result = vcache_.FlushPageChecked(page_addr);
    events_.Add(sim::Event::kPageFlush);
    events_.Add(sim::Event::kBlockFlush, result.blocks_flushed);
    events_.Add(sim::Event::kWriteback, result.writebacks);
    timing_.Charge(sim::TimeBucket::kFlush, config_.t_flush_page);
}

pt::Pte&
SpurSystem::ResidentPte(GlobalAddr gva)
{
    pt::Pte* pte = table_.FindMutable(gva >> config_.PageShift());
    if (pte == nullptr || !pte->valid()) {
        Panic("SpurSystem: cache hit on a non-resident page (reclaim "
              "missed a flush?)");
    }
    return *pte;
}

void
SpurSystem::ChargeDirty(const policy::DirtyCost& cost)
{
    timing_.Charge(sim::TimeBucket::kFault, cost.fault_cycles);
    timing_.Charge(sim::TimeBucket::kFlush, cost.flush_cycles);
    timing_.Charge(sim::TimeBucket::kDirtyAux, cost.aux_cycles);
}

}  // namespace spur::core

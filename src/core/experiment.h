/**
 * @file
 * The experiment framework: one place that knows how to run a workload on
 * a configured machine under chosen policies and hand back everything the
 * paper's tables need (event counts, page-ins, elapsed time).
 *
 * Scaling note (documented in DESIGN.md): the prototype executed billions
 * of references per workload; our runs use tens of millions with the same
 * memory sizes, so blocking page-in latency is scaled down by a similar
 * factor (kScaledPageInUs) to preserve the paper's CPU-time-to-paging-time
 * balance.  All comparisons are within this single scaled machine.
 */
#ifndef SPUR_CORE_EXPERIMENT_H_
#define SPUR_CORE_EXPERIMENT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/overhead_model.h"
#include "src/core/system.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"
#include "src/workload/driver.h"

namespace spur::core {

/** Which of the paper's two workloads (plus extras) to run. */
enum class WorkloadId : uint8_t {
    kWorkload1,
    kSlc,
    kDevMachine,
    // The scenario library (DESIGN.md §19): VAC-stress scripts beyond
    // the paper's own workloads.
    kCtxSwitch,    ///< Rapid process interleave (context-flush stress).
    kFlushStorm,   ///< Short-lived dirty writers (segment/page flushes).
    kServerChurn,  ///< Multi-tenant short-lived address spaces.
    kGcSweep,      ///< Lisp-style linear heap walks over a zfod heap.
};

/** Returns the paper's name for a workload id. */
const char* ToString(WorkloadId id);

/** Every workload id, in declaration order (tools and servers iterate
 *  this instead of hand-listing enumerators). */
inline constexpr WorkloadId kAllWorkloads[] = {
    WorkloadId::kWorkload1,   WorkloadId::kSlc,
    WorkloadId::kDevMachine,  WorkloadId::kCtxSwitch,
    WorkloadId::kFlushStorm,  WorkloadId::kServerChurn,
    WorkloadId::kGcSweep,
};

/** The scenario library: the workloads beyond the paper's own (benches
 *  append these rows under --scenarios; see bench/run_all.sh). */
inline constexpr WorkloadId kScenarioLibrary[] = {
    WorkloadId::kCtxSwitch,
    WorkloadId::kFlushStorm,
    WorkloadId::kServerChurn,
    WorkloadId::kGcSweep,
};

class TraceRecordSession;
class TraceReplaySource;

/** Everything needed to execute one run. */
struct RunConfig {
    WorkloadId workload = WorkloadId::kWorkload1;
    uint32_t memory_mb = 8;
    policy::DirtyPolicyKind dirty = policy::DirtyPolicyKind::kSpur;
    policy::RefPolicyKind ref = policy::RefPolicyKind::kMiss;
    uint64_t refs = 0;       ///< 0 = the workload's default budget.
    uint64_t seed = 1;
    double intensity = 1.0;  ///< Dev-machine workloads only.
    /// Page-in latency override in microseconds; <= 0 keeps the scaled
    /// default (kScaledPageInUs).
    double page_in_us = 0.0;
    /// Injected by BenchSession --record-trace: the first cell to claim
    /// this run's stream identity records its op stream (src/core/
    /// run_trace.h).  Not part of the cell identity; never serialized.
    TraceRecordSession* trace_record = nullptr;
    /// Injected by BenchSession --replay-trace: the run is driven from
    /// the recorded stream instead of the live generator.  Missing
    /// identities are a Fatal user error.
    const TraceReplaySource* trace_replay = nullptr;
};

/** Page-in latency used for scaled runs (see file comment). */
inline constexpr double kScaledPageInUs = 800.0;

/**
 * Reference-compression factor: how many prototype references one
 * simulated reference stands for.
 *
 * The workload scripts compress the prototype sessions (elapsed seconds
 * from Tables 3.3/4.1 at 1.5 MIPS, i.e. 0.5-4.5 billion references) into
 * the default budgets of 20-24 million simulated references while
 * keeping the *page-level* activity (dirty faults, page-ins) at
 * prototype scale.  Quantities that accrue per reference — the
 * N_w-hit / N_w-miss block-modification counts — are therefore deflated
 * by roughly this factor relative to quantities that accrue per page.
 * Benches that combine the two kinds (Table 3.3's w-hit/w-miss columns,
 * Table 3.4's WRITE-policy t_dc term) multiply the per-reference counts
 * back up by this factor and say so in their output.
 *
 * Derivation: paper elapsed time x 1.5 MIPS / default simulated refs;
 * WORKLOAD1 ~2535-3016 s -> ~3.8-4.5 G refs / 24 M ~ 160;
 * SLC ~341-948 s -> ~0.5-1.4 G refs / 20 M ~ 35.
 */
double RefCompression(WorkloadId id);

/** The distilled outcome of one run. */
struct RunResult {
    sim::EventCounts events;       ///< Full ground-truth counters.
    EventFrequencies frequencies;  ///< The Table 3.3 tuple.
    double elapsed_seconds = 0.0;
    uint64_t page_ins = 0;
    uint64_t page_outs = 0;
    uint64_t refs_issued = 0;
    /// Per-bucket seconds, indexed by sim::TimeBucket.
    std::array<double, sim::kNumTimeBuckets> bucket_seconds{};
};

/** The workload script a config runs (name, jobs, scheduling slice). */
workload::WorkloadSpec SpecFor(const RunConfig& config);

/** The default reference budget of a workload. */
uint64_t DefaultRefs(WorkloadId id);

/** Executes one run to completion. */
RunResult RunOnce(const RunConfig& config);

// Matrix execution (randomized order, repetitions, parallel cells)
// lives one layer up in runner::RunMatrix (src/runner/runner.h): the
// experiment layer defines what a run *is*, the runner decides how many
// execute at once.  Keeping the orchestration out of src/core keeps the
// subsystem graph acyclic (LAYERS.toml).

}  // namespace spur::core

#endif  // SPUR_CORE_EXPERIMENT_H_

#include "src/core/overhead_model.h"

#include "src/common/log.h"

namespace spur::core {

EventFrequencies
EventFrequencies::FromEvents(const sim::EventCounts& events)
{
    EventFrequencies freq;
    freq.n_ds = events.Get(sim::Event::kDirtyFault);
    freq.n_zfod = events.Get(sim::Event::kDirtyFaultZfod);
    // N_ef and N_dm are the same population seen by different policies;
    // a SPUR-policy measurement run reports them as dirty-bit misses, a
    // FAULT-policy run as excess faults.
    freq.n_ef = events.Get(sim::Event::kDirtyBitMiss) +
                events.Get(sim::Event::kExcessFault);
    freq.n_w_hit = events.Get(sim::Event::kWriteHitCleanBlock);
    freq.n_w_miss = events.Get(sim::Event::kWriteMissFill);
    return freq;
}

double
OverheadModel::Overhead(policy::DirtyPolicyKind kind,
                        const EventFrequencies& freq,
                        bool exclude_zfod) const
{
    const double n_ds = static_cast<double>(
        exclude_zfod ? freq.IntrinsicFaults() : freq.n_ds);
    const double n_ef = static_cast<double>(freq.n_ef);
    const double n_w_hit = static_cast<double>(freq.n_w_hit);
    const double t_ds = static_cast<double>(t_ds_);
    const double t_flush = static_cast<double>(t_flush_);
    const double t_dm = static_cast<double>(t_dm_);
    const double t_dc = static_cast<double>(t_dc_);

    switch (kind) {
      case policy::DirtyPolicyKind::kMin:
        return n_ds * t_ds;
      case policy::DirtyPolicyKind::kFault:
        return (n_ds + n_ef) * t_ds;
      case policy::DirtyPolicyKind::kFlush:
        return n_ds * (t_ds + t_flush);
      case policy::DirtyPolicyKind::kSpur:
        return n_ds * (t_ds + t_dm) + n_ef * t_dm;
      case policy::DirtyPolicyKind::kWrite:
        return n_ds * t_ds + n_w_hit * t_dc;
      case policy::DirtyPolicyKind::kSpurProt:
        // Identical structure to SPUR (Section 3.1).
        return n_ds * (t_ds + t_dm) + n_ef * t_dm;
      case policy::DirtyPolicyKind::kWriteHw:
        // No faults at all: only the per-block hardware check.
        return n_w_hit * t_dc;
    }
    Panic("OverheadModel: bad policy kind");
}

double
OverheadModel::RelativeToMin(policy::DirtyPolicyKind kind,
                             const EventFrequencies& freq,
                             bool exclude_zfod) const
{
    const double min =
        Overhead(policy::DirtyPolicyKind::kMin, freq, exclude_zfod);
    if (min <= 0) {
        return 1.0;
    }
    return Overhead(kind, freq, exclude_zfod) / min;
}

double
OverheadModel::WriteMissProbability(const EventFrequencies& freq)
{
    const double total =
        static_cast<double>(freq.n_w_hit + freq.n_w_miss);
    if (total <= 0) {
        return 1.0;
    }
    return static_cast<double>(freq.n_w_miss) / total;
}

double
OverheadModel::PredictedExcessRatio(const EventFrequencies& freq)
{
    const double p_w = WriteMissProbability(freq);
    if (p_w <= 0) {
        return 0.0;  // Degenerate: no write misses at all.
    }
    return (1.0 - p_w) / p_w;
}

double
OverheadModel::MeasuredExcessRatio(const EventFrequencies& freq,
                                   bool exclude_zfod)
{
    const double n_ds = static_cast<double>(
        exclude_zfod ? freq.IntrinsicFaults() : freq.n_ds);
    if (n_ds <= 0) {
        return 0.0;
    }
    return static_cast<double>(freq.n_ef) / n_ds;
}

}  // namespace spur::core

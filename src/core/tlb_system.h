/**
 * @file
 * TlbSystem: the conventional machine the paper argues against — a
 * physically addressed cache behind a TLB.
 *
 * Every reference translates through the TLB before (conceptually, in
 * series with) the cache access, so translation adds a cycle to every
 * hit; in exchange the reference and dirty bits are checked and set as a
 * side effect of the mandatory TLB access — no faults, no dirty-bit
 * misses, no flush-on-clear.  A TLB miss walks the two-level page table
 * in memory.
 *
 * Differences from the virtual-cache machine that the model captures:
 *  - hit time: t_cache_hit + t_tlb vs. t_cache_hit;
 *  - bit maintenance: free vs. the Section 3/4 machinery;
 *  - page reclaim: a TLB shootdown instead of a cache flush (the
 *    physical cache needs no flush when a *virtual* page dies; its
 *    frame's lines are invalidated when the frame is refilled by I/O);
 *  - the page daemon reads true reference bits (TLB systems get REF
 *    semantics for free).
 *
 * Shares the Sprite VM, frame table, page table, and workload machinery
 * with the SPUR machine, so `bench/ablation_tlb_baseline` can run the
 * identical workload on both.
 */
#ifndef SPUR_CORE_TLB_SYSTEM_H_
#define SPUR_CORE_TLB_SYSTEM_H_

#include <memory>
#include <unordered_map>

#include "src/cache/cache.h"
#include "src/workload/host.h"
#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/page_table.h"
#include "src/pt/segment_map.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"
#include "src/vm/vm.h"
#include "src/xlate/tlb.h"

namespace spur::core {

/** The TLB + physical-cache baseline machine. */
class TlbSystem : public workload::WorkloadHost
{
  public:
    explicit TlbSystem(const sim::MachineConfig& config,
                       uint32_t tlb_entries = 64);

    ~TlbSystem();

    TlbSystem(const TlbSystem&) = delete;
    TlbSystem& operator=(const TlbSystem&) = delete;

    // ---- Address-space management (same surface as SpurSystem) ----------

    Pid CreateProcess() override;
    void DestroyProcess(Pid pid) override;
    void MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                   vm::PageKind kind) override;
    void ShareSegment(Pid pid, unsigned reg, Pid other,
                      unsigned other_reg) override
    {
        segmap_.ShareSegment(pid, reg, other, other_reg);
    }

    // ---- The hot path ------------------------------------------------------

    /** Executes one memory reference. */
    void Access(const MemRef& ref) override;

    void Access(Pid pid, ProcessAddr addr, AccessType type)
    {
        Access(MemRef{pid, addr, type});
    }

    /** Context switch: untagged TLBs flush (we use the global space, so
     *  like SPUR no flush is needed — only the switch cost). */
    void OnContextSwitch() override;

    // ---- State access ------------------------------------------------------

    const sim::MachineConfig& config() const override { return config_; }
    const sim::EventCounts& events() const { return events_; }
    const sim::TimingModel& timing() const { return timing_; }
    const xlate::Tlb& tlb() const { return tlb_; }
    const vm::VirtualMemory& memory() const { return *vm_; }
    GlobalAddr ToGlobal(Pid pid, ProcessAddr addr) const
    {
        return segmap_.ToGlobal(pid, addr);
    }

  private:
    /**
     * The VM's reclaim flush, physical-cache style: translate the dying
     * page to its frame, invalidate the frame's cache lines, and shoot
     * the TLB entry down.
     */
    class ReclaimFlusher : public cache::PageFlusher
    {
      public:
        explicit ReclaimFlusher(TlbSystem& system) : system_(system) {}
        cache::FlushResult FlushPageChecked(GlobalAddr addr) override;

      private:
        TlbSystem& system_;
    };

    /** TLB machines maintain true reference bits for free. */
    class TlbRefPolicy : public policy::RefPolicy
    {
      public:
        explicit TlbRefPolicy(TlbSystem& system) : system_(system) {}
        policy::RefPolicyKind kind() const override
        {
            return policy::RefPolicyKind::kRef;
        }
        policy::RefCost OnCacheMiss(pt::Pte& pte,
                                    sim::EventCounts& events) override;
        bool ReadRefBit(const pt::Pte& pte) const override
        {
            return pte.referenced();
        }
        policy::RefCost ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                                    sim::EventCounts& events) override;

      private:
        TlbSystem& system_;
    };

    sim::MachineConfig config_;
    sim::EventCounts events_;
    sim::TimingModel timing_;
    pt::SegmentMap segmap_;
    pt::PageTable table_;
    xlate::Tlb tlb_;
    cache::VirtualCache pcache_;  ///< Physically indexed/tagged cache.
    ReclaimFlusher flusher_;
    TlbRefPolicy ref_policy_;
    std::unique_ptr<policy::DirtyPolicy> dirty_;  ///< MIN: bits are free.
    std::unique_ptr<vm::VirtualMemory> vm_;
    std::unordered_map<Pid, std::unordered_map<ProcessAddr, GlobalVpn>>
        process_regions_;
    Cycles block_fetch_cycles_;
    Cycles t_tlb_ = 1;         ///< Serial TLB access per reference.
    Cycles t_walk_;            ///< Page-table walk on a TLB miss.

    /** Translates, updating R/D for free; returns the live PTE. */
    pt::Pte& Translate(GlobalAddr gva, bool is_write);
};

}  // namespace spur::core

#endif  // SPUR_CORE_TLB_SYSTEM_H_

/**
 * @file
 * The analytic overhead models of Section 3.2.
 *
 * The paper evaluates the dirty-bit alternatives by combining *measured
 * event frequencies* (Table 3.3) with *modelled per-event costs*
 * (Table 3.2):
 *
 *   O(FAULT) = (N_ds + N_ef) * t_ds
 *   O(FLUSH) = N_ds * (t_ds + t_flush)
 *   O(SPUR)  = N_ds * (t_ds + t_dm) + N_dm * t_dm
 *   O(WRITE) = N_ds * t_ds + N_w-hit * t_dc
 *   O(MIN)   = N_ds * t_ds
 *
 * For Table 3.4 the zero-fill faults are excluded (N_ds - N_zfod is
 * substituted for N_ds) because they are not intrinsic to the dirty-bit
 * mechanism.  Also provided: the geometric excess-fault model of
 * footnote 3.
 */
#ifndef SPUR_CORE_OVERHEAD_MODEL_H_
#define SPUR_CORE_OVERHEAD_MODEL_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/policy/dirty_policy.h"
#include "src/sim/config.h"
#include "src/sim/events.h"

namespace spur::core {

/** The Table 3.3 event-frequency tuple for one run. */
struct EventFrequencies {
    uint64_t n_ds = 0;      ///< Necessary dirty faults (incl. zero-fill).
    uint64_t n_zfod = 0;    ///< Zero-fill subset of the above.
    uint64_t n_ef = 0;      ///< Excess faults == dirty-bit misses (N_dm).
    uint64_t n_w_hit = 0;   ///< Blocks read in, later modified.
    uint64_t n_w_miss = 0;  ///< Blocks brought in by a write miss.

    /** Extracts the tuple from a finished run's counters. */
    static EventFrequencies FromEvents(const sim::EventCounts& events);

    /** N_ds excluding the zero-fill class. */
    uint64_t IntrinsicFaults() const
    {
        return (n_ds >= n_zfod) ? n_ds - n_zfod : 0;
    }
};

/** Computes the Section 3.2 overheads from frequencies and time params. */
class OverheadModel
{
  public:
    explicit OverheadModel(const sim::MachineConfig& config)
        : t_ds_(config.t_fault),
          t_flush_(config.t_flush_page),
          t_dm_(config.t_dirty_miss),
          t_dc_(config.t_dirty_check)
    {
    }

    /** Direct construction from the Table 3.2 parameters. */
    OverheadModel(Cycles t_ds, Cycles t_flush, Cycles t_dm, Cycles t_dc)
        : t_ds_(t_ds), t_flush_(t_flush), t_dm_(t_dm), t_dc_(t_dc)
    {
    }

    /**
     * Overhead in cycles of @p kind given @p freq.
     * @param exclude_zfod substitute (N_ds - N_zfod) for N_ds, as in
     *                     Table 3.4.
     */
    double Overhead(policy::DirtyPolicyKind kind,
                    const EventFrequencies& freq,
                    bool exclude_zfod = true) const;

    /** Overhead relative to MIN (Table 3.4's parenthesized column). */
    double RelativeToMin(policy::DirtyPolicyKind kind,
                         const EventFrequencies& freq,
                         bool exclude_zfod = true) const;

    // ---- Footnote 3: the geometric excess-fault model --------------------

    /** p_w = N_w-miss / (N_w-hit + N_w-miss). */
    static double WriteMissProbability(const EventFrequencies& freq);

    /**
     * Expected excess faults per necessary fault under the footnote-3
     * assumptions (uniform miss mix, infinite pages, necessary faults
     * only on write misses): the mean of a geometric distribution with
     * parameter p_w, i.e. (1 - p_w) / p_w.
     */
    static double PredictedExcessRatio(const EventFrequencies& freq);

    /** Measured excess ratio N_ef / (N_ds - N_zfod). */
    static double MeasuredExcessRatio(const EventFrequencies& freq,
                                      bool exclude_zfod = true);

    Cycles t_ds() const { return t_ds_; }
    Cycles t_flush() const { return t_flush_; }
    Cycles t_dm() const { return t_dm_; }
    Cycles t_dc() const { return t_dc_; }

  private:
    Cycles t_ds_;
    Cycles t_flush_;
    Cycles t_dm_;
    Cycles t_dc_;
};

}  // namespace spur::core

#endif  // SPUR_CORE_OVERHEAD_MODEL_H_

#include "src/core/tlb_system.h"

#include <string>

#include "src/common/log.h"

namespace spur::core {

cache::FlushResult
TlbSystem::ReclaimFlusher::FlushPageChecked(GlobalAddr addr)
{
    TlbSystem& sys = system_;
    const GlobalVpn vpn = addr >> sys.config_.PageShift();
    cache::FlushResult result;
    const pt::Pte* pte = sys.table_.Find(vpn);
    if (pte != nullptr && pte->valid()) {
        // Invalidate the physical frame's lines (the next occupant of the
        // frame arrives by I/O, which is not coherent with the cache).
        const PhysAddr frame_base = static_cast<PhysAddr>(pte->pfn())
                                    << sys.config_.PageShift();
        result = sys.pcache_.FlushPageChecked(frame_base);
    }
    // Shoot down the translation.
    sys.tlb_.Invalidate(vpn);
    return result;
}

policy::RefCost
TlbSystem::TlbRefPolicy::OnCacheMiss(pt::Pte& pte, sim::EventCounts& events)
{
    // Never called on the TLB machine's hot path (bits are set during
    // translation), but keep it correct for the shared VM code.
    (void)events;
    pte.set_referenced(true);
    return policy::RefCost{};
}

policy::RefCost
TlbSystem::TlbRefPolicy::ClearRefBit(pt::Pte& pte, GlobalAddr page_addr,
                                     sim::EventCounts& events)
{
    events.Add(sim::Event::kRefClear);
    pte.set_referenced(false);
    // The cached translation must go, or the hardware would keep
    // skipping the R update: the TLB shootdown is the whole cost of
    // clearing a bit here (no cache flush!).
    system_.tlb_.Invalidate(page_addr >> system_.config_.PageShift());
    policy::RefCost cost;
    cost.kernel_cycles = system_.config_.t_ref_clear;
    return cost;
}

TlbSystem::TlbSystem(const sim::MachineConfig& config, uint32_t tlb_entries)
    : config_(config),
      timing_(config_),
      tlb_(tlb_entries),
      pcache_(config_),
      flusher_(*this),
      ref_policy_(*this),
      block_fetch_cycles_(config_.BlockFetchCycles()),
      // A miss walks two levels in memory: one block fetch per level.
      t_walk_(2 * Cycles{config.BlockFetchCycles()})
{
    config_.Validate();
    // MIN is exactly right here: the hardware maintains D with zero
    // marginal cost, so only intrinsic state changes happen.
    dirty_ = policy::MakeDirtyPolicy(policy::DirtyPolicyKind::kMin,
                                     pcache_, config_);
    vm_ = std::make_unique<vm::VirtualMemory>(config_, table_, flusher_,
                                              events_, timing_);
    vm_->SetPolicies(dirty_.get(), &ref_policy_);
}

TlbSystem::~TlbSystem() = default;

Pid
TlbSystem::CreateProcess()
{
    const Pid pid = segmap_.CreateProcess();
    process_regions_[pid];
    return pid;
}

void
TlbSystem::DestroyProcess(Pid pid)
{
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("TlbSystem: destroying unknown pid " + std::to_string(pid));
    }
    for (const auto& [base, start_vpn] : it->second) {
        vm_->UnmapRegion(start_vpn);
    }
    process_regions_.erase(it);
    segmap_.DestroyProcess(pid);
    OnContextSwitch();
}

void
TlbSystem::MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                     vm::PageKind kind)
{
    const uint64_t page_bytes = config_.page_bytes;
    if (base % page_bytes != 0 || bytes == 0 || bytes % page_bytes != 0) {
        Fatal("TlbSystem: region must be page aligned and nonempty");
    }
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("TlbSystem: MapRegion on unknown pid");
    }
    const GlobalAddr gva = segmap_.ToGlobal(pid, base);
    const GlobalVpn start = gva >> config_.PageShift();
    vm_->MapRegion(start, bytes / page_bytes, kind);
    it->second.emplace(base, start);
}

pt::Pte&
TlbSystem::Translate(GlobalAddr gva, bool is_write)
{
    const GlobalVpn vpn = gva >> config_.PageShift();
    timing_.Charge(sim::TimeBucket::kXlate, t_tlb_);
    if (!tlb_.Lookup(vpn)) {
        // Hardware page-table walk.
        events_.Add(sim::Event::kXlatePteMiss);
        timing_.Charge(sim::TimeBucket::kXlate, t_walk_);
        tlb_.Insert(vpn);
    } else {
        events_.Add(sim::Event::kXlatePteHit);
    }
    pt::Pte* pte = table_.FindMutable(vpn);
    if (pte == nullptr || !pte->valid()) {
        pte = &vm_->HandlePageFault(gva);
        tlb_.Insert(vpn);
    }
    // The famous free lunch: R and D are set as a side effect of the
    // translation the machine had to do anyway.
    if (!pte->referenced()) {
        pte->set_referenced(true);
    }
    if (is_write && !pte->dirty()) {
        events_.Add(sim::Event::kDirtyFault);  // Bookkeeping: a
        if (pte->zfod_clean()) {               // clean->dirty transition,
            events_.Add(sim::Event::kDirtyFaultZfod);  // not a fault.
            pte->set_zfod_clean(false);
        }
        pte->set_dirty(true);
    }
    return *pte;
}

void
TlbSystem::Access(const MemRef& ref)
{
    const GlobalAddr gva = segmap_.ToGlobal(ref.pid, ref.addr);
    const bool is_write = ref.type == AccessType::kWrite;

    switch (ref.type) {
      case AccessType::kIFetch:
        events_.Add(sim::Event::kIFetch);
        break;
      case AccessType::kRead:
        events_.Add(sim::Event::kRead);
        break;
      case AccessType::kWrite:
        events_.Add(sim::Event::kWrite);
        break;
    }

    // Translation first: it is on the critical path of every access.
    pt::Pte& pte = Translate(gva, is_write);
    const PhysAddr pa =
        (static_cast<PhysAddr>(pte.pfn()) << config_.PageShift()) |
        (gva & (config_.page_bytes - 1));

    cache::LineRef line = pcache_.Lookup(pa);
    if (line) {
        timing_.Charge(sim::TimeBucket::kExecute, config_.t_cache_hit);
        if (is_write) {
            if (!line.block_dirty()) {
                events_.Add(sim::Event::kWriteHitCleanBlock);
            }
            cache::VirtualCache::MarkWritten(line);
        }
        return;
    }

    switch (ref.type) {
      case AccessType::kIFetch:
        events_.Add(sim::Event::kIFetchMiss);
        break;
      case AccessType::kRead:
        events_.Add(sim::Event::kReadMiss);
        break;
      case AccessType::kWrite:
        events_.Add(sim::Event::kWriteMiss);
        break;
    }
    cache::Eviction eviction;
    cache::LineRef filled =
        pcache_.Fill(pa, pte.protection(), pte.dirty(), &eviction);
    if (eviction.writeback) {
        events_.Add(sim::Event::kWriteback);
        timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);
    }
    timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);
    if (is_write) {
        events_.Add(sim::Event::kWriteMissFill);
        cache::VirtualCache::MarkWritten(filled);
    }
}

void
TlbSystem::OnContextSwitch()
{
    events_.Add(sim::Event::kContextSwitch);
    timing_.Charge(sim::TimeBucket::kKernel, config_.t_context_switch);
}

}  // namespace spur::core

#include "src/core/mp_system.h"

#include <string>

#include "src/common/log.h"

namespace spur::core {

cache::FlushResult
AllCachesFlusher::FlushPageChecked(GlobalAddr addr)
{
    cache::FlushResult total;
    for (const auto& vcache : caches_) {
        const cache::FlushResult one = vcache->FlushPageChecked(addr);
        total.slots_examined += one.slots_examined;
        total.blocks_flushed += one.blocks_flushed;
        total.writebacks += one.writebacks;
        total.foreign_flushed += one.foreign_flushed;
    }
    return total;
}

MpSpurSystem::MpSpurSystem(const sim::MachineConfig& config,
                           unsigned num_cpus, policy::DirtyPolicyKind dirty,
                           policy::RefPolicyKind ref)
    : config_(config),
      timing_(config_),
      bus_(events_),
      flusher_(caches_),
      block_fetch_cycles_(config_.BlockFetchCycles())
{
    config_.Validate();
    if (num_cpus < 1 || num_cpus > 12) {
        Fatal("MpSpurSystem: a SPUR workstation holds 1..12 processor "
              "boards, got " + std::to_string(num_cpus));
    }
    for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
        caches_.push_back(std::make_unique<cache::VirtualCache>(config_));
        bus_.Attach(caches_.back().get());
        xlates_.push_back(std::make_unique<xlate::Translator>(
            *caches_.back(), table_, config_));
    }
    dirty_ = policy::MakeDirtyPolicy(dirty, flusher_, config_);
    ref_ = policy::MakeRefPolicy(ref, flusher_, config_);
    vm_ = std::make_unique<vm::VirtualMemory>(config_, table_, flusher_,
                                              events_, timing_);
    vm_->SetPolicies(dirty_.get(), ref_.get());
}

MpSpurSystem::~MpSpurSystem() = default;

Pid
MpSpurSystem::CreateProcess()
{
    const Pid pid = segmap_.CreateProcess();
    process_regions_[pid];
    return pid;
}

void
MpSpurSystem::DestroyProcess(Pid pid)
{
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("MpSpurSystem: destroying unknown pid " + std::to_string(pid));
    }
    for (const auto& [base, start_vpn] : it->second) {
        vm_->UnmapRegion(start_vpn);
    }
    process_regions_.erase(it);
    segmap_.DestroyProcess(pid);
    if constexpr (check::kAuditEnabled) {
        Audit().RaiseIfFailed("MpSpurSystem::DestroyProcess");
    }
}

void
MpSpurSystem::MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                        vm::PageKind kind)
{
    const uint64_t page_bytes = config_.page_bytes;
    if (base % page_bytes != 0 || bytes == 0 || bytes % page_bytes != 0) {
        Fatal("MpSpurSystem: region must be page aligned and nonempty");
    }
    auto it = process_regions_.find(pid);
    if (it == process_regions_.end()) {
        Fatal("MpSpurSystem: MapRegion on unknown pid");
    }
    const GlobalAddr gva = segmap_.ToGlobal(pid, base);
    const GlobalVpn start = gva >> config_.PageShift();
    vm_->MapRegion(start, bytes / page_bytes, kind);
    it->second.emplace(base, start);
}

void
MpSpurSystem::Access(unsigned cpu, const MemRef& ref)
{
    if constexpr (check::kAuditEnabled) {
        if (--audit_countdown_ == 0) {
            audit_countdown_ = check::kAuditAccessInterval;
            Audit().RaiseIfFailed("MpSpurSystem::Access (periodic)");
        }
    }

    const GlobalAddr gva = segmap_.ToGlobal(ref.pid, ref.addr);

    switch (ref.type) {
      case AccessType::kIFetch:
        events_.Add(sim::Event::kIFetch);
        break;
      case AccessType::kRead:
        events_.Add(sim::Event::kRead);
        break;
      case AccessType::kWrite:
        events_.Add(sim::Event::kWrite);
        break;
    }

    cache::VirtualCache& vcache = *caches_[cpu];
    cache::LineRef line = vcache.Lookup(gva);
    if (line) {
        timing_.Charge(sim::TimeBucket::kExecute, config_.t_cache_hit);
        if (ref.type != AccessType::kWrite) {
            return;
        }
        if (!line.block_dirty()) {
            events_.Add(sim::Event::kWriteHitCleanBlock);
        }
        if (!dirty_->WriteHitFastPath(line)) {
            const policy::DirtyCost cost =
                dirty_->OnWriteHit(line, gva, ResidentPte(gva), events_);
            ChargeDirty(cost);
            if (cost.line_invalidated) {
                AccessMiss(cpu, gva, ref.type);
                return;
            }
        }
        // Coherency: gain exclusive ownership before the store.
        if (line.state() != cache::CoherencyState::kOwnedExclusive) {
            bus_.Upgrade(gva, cpu);
            timing_.Charge(sim::TimeBucket::kMissStall, 1);
        }
        cache::VirtualCache::MarkWritten(line);
        return;
    }

    switch (ref.type) {
      case AccessType::kIFetch:
        events_.Add(sim::Event::kIFetchMiss);
        break;
      case AccessType::kRead:
        events_.Add(sim::Event::kReadMiss);
        break;
      case AccessType::kWrite:
        events_.Add(sim::Event::kWriteMiss);
        break;
    }
    AccessMiss(cpu, gva, ref.type);
}

void
MpSpurSystem::AccessMiss(unsigned cpu, GlobalAddr gva, AccessType type)
{
    xlate::XlateResult xr = xlates_[cpu]->Translate(gva, events_);
    timing_.Charge(sim::TimeBucket::kXlate, xr.cycles);
    pt::Pte* pte = xr.pte;
    if (!pte->valid()) {
        pte = &vm_->HandlePageFault(gva);
    }

    const policy::RefCost ref_cost = ref_->OnCacheMiss(*pte, events_);
    timing_.Charge(sim::TimeBucket::kFault, ref_cost.fault_cycles);

    if (type == AccessType::kWrite) {
        ChargeDirty(dirty_->OnWriteMiss(gva, *pte, events_));
    }

    // The bus transaction settles ownership before the fill.
    if (type == AccessType::kWrite) {
        bus_.ReadOwned(gva, cpu);
    } else {
        bus_.Read(gva, cpu);
    }

    cache::VirtualCache& vcache = *caches_[cpu];
    cache::Eviction eviction;
    cache::LineRef line =
        vcache.Fill(gva, pte->protection(), pte->dirty(), &eviction);
    if (eviction.writeback) {
        events_.Add(sim::Event::kWriteback);
        timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);
    }
    timing_.Charge(sim::TimeBucket::kMissStall, block_fetch_cycles_);

    if (type == AccessType::kWrite) {
        events_.Add(sim::Event::kWriteMissFill);
        cache::VirtualCache::MarkWritten(line);
    }
}

check::AuditReport
MpSpurSystem::Audit() const
{
    check::AuditContext context;
    context.config = &config_;
    context.caches.reserve(caches_.size());
    for (const auto& vcache : caches_) {
        context.caches.push_back(vcache.get());
    }
    context.table = &table_;
    context.frames = &vm_->frames();
    context.store = &vm_->store();
    context.regions = &vm_->regions();
    context.events = &events_;
    context.dirty = dirty_->kind();
    context.ref = ref_->kind();
    return check::InvariantChecker::Default().Run(context);
}

void
MpSpurSystem::ClearRefBit(GlobalAddr gva)
{
    pt::Pte* pte = table_.FindMutable(gva >> config_.PageShift());
    if (pte == nullptr || !pte->valid()) {
        Panic("MpSpurSystem::ClearRefBit: page not resident");
    }
    const GlobalAddr page_addr = gva & ~(config_.page_bytes - 1);
    const policy::RefCost cost =
        ref_->ClearRefBit(*pte, page_addr, events_);
    timing_.Charge(sim::TimeBucket::kKernel, cost.kernel_cycles);
    timing_.Charge(sim::TimeBucket::kFlush, cost.flush_cycles);
}

void
MpSpurSystem::FlushPage(GlobalAddr gva)
{
    const GlobalAddr page_addr = gva & ~(config_.page_bytes - 1);
    const cache::FlushResult result = flusher_.FlushPageChecked(page_addr);
    events_.Add(sim::Event::kPageFlush);
    events_.Add(sim::Event::kBlockFlush, result.blocks_flushed);
    events_.Add(sim::Event::kWriteback, result.writebacks);
    timing_.Charge(sim::TimeBucket::kFlush,
                   config_.t_flush_page * flusher_.NumFlushTargets());
}

pt::Pte&
MpSpurSystem::ResidentPte(GlobalAddr gva)
{
    pt::Pte* pte = table_.FindMutable(gva >> config_.PageShift());
    if (pte == nullptr || !pte->valid()) {
        Panic("MpSpurSystem: cache hit on a non-resident page");
    }
    return *pte;
}

void
MpSpurSystem::ChargeDirty(const policy::DirtyCost& cost)
{
    timing_.Charge(sim::TimeBucket::kFault, cost.fault_cycles);
    timing_.Charge(sim::TimeBucket::kFlush, cost.flush_cycles);
    timing_.Charge(sim::TimeBucket::kDirtyAux, cost.aux_cycles);
}

}  // namespace spur::core

#include "src/core/experiment.h"

#include <optional>
#include <utility>

#include "src/check/audit.h"
#include "src/common/log.h"
#include "src/core/run_trace.h"
#include "src/workload/trace.h"
#include "src/workload/workloads.h"

namespace spur::core {

const char*
ToString(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kWorkload1: return "WORKLOAD1";
      case WorkloadId::kSlc: return "SLC";
      case WorkloadId::kDevMachine: return "dev-machine";
      case WorkloadId::kCtxSwitch: return "ctx-switch";
      case WorkloadId::kFlushStorm: return "flush-storm";
      case WorkloadId::kServerChurn: return "server-churn";
      case WorkloadId::kGcSweep: return "gc-sweep";
    }
    return "?";
}

double
RefCompression(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kWorkload1: return 160.0;
      case WorkloadId::kSlc: return 35.0;
      case WorkloadId::kDevMachine: return 80.0;
      // Scenario-library factors follow the same derivation: an
      // hour-scale session at 1.5 MIPS compressed into the default
      // budget, with gc-sweep nearer SLC's Lisp-session scale.
      case WorkloadId::kCtxSwitch: return 100.0;
      case WorkloadId::kFlushStorm: return 90.0;
      case WorkloadId::kServerChurn: return 110.0;
      case WorkloadId::kGcSweep: return 40.0;
    }
    return 1.0;
}

workload::WorkloadSpec
SpecFor(const RunConfig& config)
{
    switch (config.workload) {
      case WorkloadId::kWorkload1:
        return workload::MakeWorkload1();
      case WorkloadId::kSlc:
        return workload::MakeSlc();
      case WorkloadId::kDevMachine:
        return workload::MakeDevMachine(config.intensity);
      case WorkloadId::kCtxSwitch:
        return workload::MakeCtxSwitchHeavy();
      case WorkloadId::kFlushStorm:
        return workload::MakeFlushStorm();
      case WorkloadId::kServerChurn:
        return workload::MakeServerChurn();
      case WorkloadId::kGcSweep:
        return workload::MakeGcSweep();
    }
    Panic("SpecFor: bad workload id");
}

uint64_t
DefaultRefs(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kWorkload1: return workload::kWorkload1Refs;
      case WorkloadId::kSlc: return workload::kSlcRefs;
      case WorkloadId::kDevMachine: return workload::kDevMachineRefs;
      case WorkloadId::kCtxSwitch: return workload::kCtxSwitchRefs;
      case WorkloadId::kFlushStorm: return workload::kFlushStormRefs;
      case WorkloadId::kServerChurn: return workload::kServerChurnRefs;
      case WorkloadId::kGcSweep: return workload::kGcSweepRefs;
    }
    Panic("DefaultRefs: bad workload id");
}

namespace {

/** Samples the finished system into the standard result tuple. */
RunResult
Harvest(const SpurSystem& system, uint64_t refs_issued)
{
    RunResult result;
    result.events = system.events();
    result.frequencies = EventFrequencies::FromEvents(result.events);
    result.elapsed_seconds = system.timing().ElapsedSeconds();
    result.page_ins = result.events.Get(sim::Event::kPageIn);
    result.page_outs = result.events.Get(sim::Event::kPageOutDirty);
    result.refs_issued = refs_issued;
    for (size_t i = 0; i < sim::kNumTimeBuckets; ++i) {
        result.bucket_seconds[i] =
            system.timing().Seconds(static_cast<sim::TimeBucket>(i));
    }
    return result;
}

}  // namespace

RunResult
RunOnce(const RunConfig& config)
{
    sim::MachineConfig machine =
        sim::MachineConfig::Prototype(config.memory_mb);
    machine.page_in_us =
        (config.page_in_us > 0) ? config.page_in_us : kScaledPageInUs;

    SpurSystem system(machine, config.dirty, config.ref);
    const uint64_t refs =
        (config.refs != 0) ? config.refs : DefaultRefs(config.workload);

    if (config.trace_replay != nullptr) {
        // Trace-driven: the recorded op stream stands in for the live
        // generator; the machine under test sees the identical call
        // sequence, so counters — and therefore records — match the
        // live run byte for byte.
        const workload::TraceStreamMeta meta = TraceMetaFor(config);
        const workload::TraceStream* stream =
            config.trace_replay->Find(meta.Identity());
        if (stream == nullptr) {
            Fatal("--replay-trace: no stream for '" + meta.Identity() +
                  "' (record it with --record-trace or spur_trace "
                  "record)");
        }
        const workload::ReplayStats stats =
            workload::ReplayStream(*stream, system);
        if constexpr (check::kAuditEnabled) {
            system.Audit().RaiseIfFailed("core::RunOnce (end of replay)");
        }
        return Harvest(system, stats.refs_issued);
    }

    workload::WorkloadSpec spec = SpecFor(config);
    const uint32_t slice_refs = spec.slice_refs;

    // Live generation, optionally recording: the first cell to claim
    // this stream identity captures the op stream through a forwarding
    // shim; losers (same workload, different policy/memory) run plain —
    // the generator cannot see the difference.
    std::optional<workload::TraceEncoder> encoder;
    std::optional<workload::RecordingHost> recorder;
    std::string identity;
    workload::WorkloadHost* host = &system;
    if (config.trace_record != nullptr) {
        const workload::TraceStreamMeta meta = TraceMetaFor(config);
        identity = meta.Identity();
        if (config.trace_record->Claim(identity)) {
            encoder.emplace(meta);
            recorder.emplace(system, *encoder);
            host = &*recorder;
        }
    }

    workload::Driver driver(*host, std::move(spec), refs, config.seed,
                            slice_refs);
    driver.Run();
    if (recorder.has_value()) {
        // Stop before teardown: counters are sampled (and the stream
        // sealed) at this point of the run, not after driver teardown.
        recorder->StopRecording();
        config.trace_record->Commit(identity,
                                    encoder->Finish(driver.refs_issued()));
    }

    // End-of-run audit: the cell's final state must satisfy every
    // invariant before its numbers enter any table.
    if constexpr (check::kAuditEnabled) {
        system.Audit().RaiseIfFailed("core::RunOnce (end of run)");
    }

    return Harvest(system, driver.refs_issued());
}

}  // namespace spur::core

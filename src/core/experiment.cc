#include "src/core/experiment.h"

#include "src/check/audit.h"
#include "src/common/log.h"
#include "src/workload/workloads.h"

namespace spur::core {

const char*
ToString(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kWorkload1: return "WORKLOAD1";
      case WorkloadId::kSlc: return "SLC";
      case WorkloadId::kDevMachine: return "dev-machine";
    }
    return "?";
}

double
RefCompression(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kWorkload1: return 160.0;
      case WorkloadId::kSlc: return 35.0;
      case WorkloadId::kDevMachine: return 80.0;
    }
    return 1.0;
}

namespace {

workload::WorkloadSpec
SpecFor(const RunConfig& config)
{
    switch (config.workload) {
      case WorkloadId::kWorkload1:
        return workload::MakeWorkload1();
      case WorkloadId::kSlc:
        return workload::MakeSlc();
      case WorkloadId::kDevMachine:
        return workload::MakeDevMachine(config.intensity);
    }
    Panic("SpecFor: bad workload id");
}

uint64_t
DefaultRefs(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kWorkload1: return workload::kWorkload1Refs;
      case WorkloadId::kSlc: return workload::kSlcRefs;
      case WorkloadId::kDevMachine: return workload::kDevMachineRefs;
    }
    Panic("DefaultRefs: bad workload id");
}

}  // namespace

RunResult
RunOnce(const RunConfig& config)
{
    sim::MachineConfig machine =
        sim::MachineConfig::Prototype(config.memory_mb);
    machine.page_in_us =
        (config.page_in_us > 0) ? config.page_in_us : kScaledPageInUs;

    SpurSystem system(machine, config.dirty, config.ref);
    const uint64_t refs =
        (config.refs != 0) ? config.refs : DefaultRefs(config.workload);
    workload::Driver driver(system, SpecFor(config), refs, config.seed);
    driver.Run();

    // End-of-run audit: the cell's final state must satisfy every
    // invariant before its numbers enter any table.
    if constexpr (check::kAuditEnabled) {
        system.Audit().RaiseIfFailed("core::RunOnce (end of run)");
    }

    RunResult result;
    result.events = system.events();
    result.frequencies = EventFrequencies::FromEvents(result.events);
    result.elapsed_seconds = system.timing().ElapsedSeconds();
    result.page_ins = result.events.Get(sim::Event::kPageIn);
    result.page_outs = result.events.Get(sim::Event::kPageOutDirty);
    result.refs_issued = driver.refs_issued();
    for (size_t i = 0; i < sim::kNumTimeBuckets; ++i) {
        result.bucket_seconds[i] =
            system.timing().Seconds(static_cast<sim::TimeBucket>(i));
    }
    return result;
}

}  // namespace spur::core

/**
 * @file
 * Sweep-level trace glue: how --record-trace / --replay-trace thread a
 * SPUR-TRACE/1 library (src/workload/trace.h) through core::RunOnce.
 *
 * A stream's identity — workload, seed, refs, intensity, page/block
 * geometry — deliberately excludes the policies and memory size under
 * test, so a matrix of many cells maps onto few distinct streams.  The
 * recorder exploits that: the first cell to Claim() an identity records
 * it (generators are pure, so every would-be recorder produces the
 * same bytes); the rest run plain.  Claimed streams are committed to
 * the file whole and fsync'd under one mutex, so a killed sweep leaves
 * a recoverable complete-stream prefix and parallel cells never
 * interleave frames.  The replay side is a read-only library shared by
 * every cell without locking.
 */
#ifndef SPUR_CORE_RUN_TRACE_H_
#define SPUR_CORE_RUN_TRACE_H_

#include <map>
#include <string>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/experiment.h"
#include "src/workload/trace.h"

namespace spur::core {

/**
 * The stream identity RunOnce records or replays for @p config: the
 * workload name, the cell seed, the effective reference budget, the
 * intensity knob, and the machine's page/block geometry.
 */
workload::TraceStreamMeta TraceMetaFor(const RunConfig& config);

/**
 * One --record-trace file shared by every cell of a session.
 * Thread-safe; cells race through Claim() and the winner commits.
 */
class TraceRecordSession
{
  public:
    /** Creates/truncates @p path (magic + header, fsync'd). */
    bool Open(const std::string& path, std::string* error)
        SPUR_EXCLUDES(mutex_);

    /**
     * True iff the calling cell should record @p identity: the first
     * claimant wins, later cells (and re-runs of the same identity)
     * run unrecorded.
     */
    bool Claim(const std::string& identity) SPUR_EXCLUDES(mutex_);

    /**
     * Commits a claimed stream's TraceEncoder::Finish() bytes.  A
     * failed append is remembered (failed()) rather than fatal, so the
     * sweep's own results still land.
     */
    void Commit(const std::string& identity, const std::string& bytes)
        SPUR_EXCLUDES(mutex_);

    /** Writes the trailer; false + *error on failure. */
    bool Finish(std::string* error) SPUR_EXCLUDES(mutex_);

    /** True once any append or the trailer failed. */
    bool failed() const SPUR_EXCLUDES(mutex_);

    /** Streams committed so far. */
    uint64_t streams() const SPUR_EXCLUDES(mutex_);

  private:
    mutable Mutex mutex_;
    workload::TraceFileWriter writer_ SPUR_GUARDED_BY(mutex_);
    /// Identities claimed so far.  std::map for determinism-by-habit;
    /// only membership is queried.
    std::map<std::string, bool> claimed_ SPUR_GUARDED_BY(mutex_);
    bool failed_ SPUR_GUARDED_BY(mutex_) = false;
};

/**
 * The loaded --replay-trace library.  Load() once before the sweep;
 * afterwards it is immutable, so parallel cells call Find() freely.
 * A cell whose identity is missing from the library is a Fatal user
 * error in RunOnce (a partial trace silently degrading to live
 * generation would defeat the byte-identity contract).
 */
class TraceReplaySource
{
  public:
    bool Load(const std::string& path, std::string* error);

    const workload::TraceStream* Find(const std::string& identity) const
    {
        return library_.Find(identity);
    }

    const workload::TraceLibrary& library() const { return library_; }

  private:
    workload::TraceLibrary library_;
};

}  // namespace spur::core

#endif  // SPUR_CORE_RUN_TRACE_H_

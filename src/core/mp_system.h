/**
 * @file
 * MpSpurSystem: the SPUR multiprocessor — up to twelve processors, each
 * with its own 128 KB virtual-address cache and in-cache translation
 * engine, kept coherent over a shared snooping bus running the Berkeley
 * Ownership protocol [Katz85], over one shared Sprite kernel (page
 * table, VM, policies).
 *
 * This is the machine the paper's mechanisms were *designed* for (the
 * measured prototype was the uniprocessor configuration): dirty-bit
 * updates are done in software because PTEs are shared between
 * processors, and true reference bits are expensive because clearing one
 * must flush the page from *all* the caches.  The ablation bench
 * `ablation_mp_refbits` quantifies that claim.
 *
 * Timing note: the aggregate TimingModel accumulates total work cycles
 * across processors (not wall-clock of a parallel execution); the
 * experiments built on this class compare policy overheads, which are
 * work terms.
 */
#ifndef SPUR_CORE_MP_SYSTEM_H_
#define SPUR_CORE_MP_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/cache/bus.h"
#include "src/check/audit.h"
#include "src/check/checker.h"
#include "src/workload/host.h"
#include "src/cache/cache.h"
#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/page_table.h"
#include "src/pt/segment_map.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"
#include "src/vm/vm.h"
#include "src/xlate/translator.h"

namespace spur::core {

/** Fans page flushes out across every cache in the machine. */
class AllCachesFlusher : public cache::PageFlusher
{
  public:
    explicit AllCachesFlusher(
        std::vector<std::unique_ptr<cache::VirtualCache>>& caches)
        : caches_(caches)
    {
    }

    cache::FlushResult FlushPageChecked(GlobalAddr addr) override;

    unsigned NumFlushTargets() const override
    {
        return static_cast<unsigned>(caches_.size());
    }

  private:
    std::vector<std::unique_ptr<cache::VirtualCache>>& caches_;
};

/** The multiprocessor SPUR workstation. */
class MpSpurSystem
{
  public:
    /** Builds a machine with @p num_cpus processors (1..12). */
    MpSpurSystem(const sim::MachineConfig& config, unsigned num_cpus,
                 policy::DirtyPolicyKind dirty, policy::RefPolicyKind ref);

    ~MpSpurSystem();

    MpSpurSystem(const MpSpurSystem&) = delete;
    MpSpurSystem& operator=(const MpSpurSystem&) = delete;

    // ---- Address-space management (shared kernel) ------------------------

    Pid CreateProcess();
    void DestroyProcess(Pid pid);
    void MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                   vm::PageKind kind);
    void ShareSegment(Pid pid, unsigned reg, Pid other, unsigned other_reg)
    {
        segmap_.ShareSegment(pid, reg, other, other_reg);
    }

    // ---- The hot path ------------------------------------------------------

    /** Executes one reference on processor @p cpu. */
    void Access(unsigned cpu, const MemRef& ref);

    // ---- State access ------------------------------------------------------

    unsigned NumCpus() const
    {
        return static_cast<unsigned>(caches_.size());
    }
    const sim::MachineConfig& config() const { return config_; }
    const sim::EventCounts& events() const { return events_; }
    const sim::TimingModel& timing() const { return timing_; }
    const cache::VirtualCache& vcache(unsigned cpu) const
    {
        return *caches_[cpu];
    }
    const vm::VirtualMemory& memory() const { return *vm_; }
    GlobalAddr ToGlobal(Pid pid, ProcessAddr addr) const
    {
        return segmap_.ToGlobal(pid, addr);
    }

    /**
     * Runs every registered invariant pass (src/check/) over the whole
     * machine — all caches at once, which additionally arms the
     * cross-cache Berkeley Ownership audit.  Audit builds (SPUR_AUDIT=ON)
     * invoke it automatically every check::kAuditAccessInterval accesses
     * and at process teardown.
     */
    check::AuditReport Audit() const;

    // ---- Model-checking hooks (src/model/ conformance driver) -----------

    /** The PTE covering @p gva, or nullptr when none exists yet. */
    const pt::Pte* FindPte(GlobalAddr gva) const
    {
        return table_.Find(gva >> config_.PageShift());
    }

    /**
     * Clears the reference bit of @p gva's (resident) page exactly the
     * way the page daemon's front hand does: through the reference
     * policy (REF flushes every cache), with its cycles charged.
     */
    void ClearRefBit(GlobalAddr gva);

    /** Flushes @p gva's page from every cache (tag-checked), with the
     *  kernel flush-path event and cycle accounting. */
    void FlushPage(GlobalAddr gva);

    /**
     * A WorkloadHost view of one processor: synthetic processes and the
     * job driver built for the uniprocessor API can run pinned to a CPU
     * of the multiprocessor through this adapter.
     */
    class CpuPort : public workload::WorkloadHost
    {
      public:
        CpuPort(MpSpurSystem& system, unsigned cpu)
            : system_(system), cpu_(cpu)
        {
        }

        Pid CreateProcess() override { return system_.CreateProcess(); }
        void DestroyProcess(Pid pid) override
        {
            system_.DestroyProcess(pid);
        }
        void MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                       vm::PageKind kind) override
        {
            system_.MapRegion(pid, base, bytes, kind);
        }
        void ShareSegment(Pid pid, unsigned reg, Pid other,
                          unsigned other_reg) override
        {
            system_.ShareSegment(pid, reg, other, other_reg);
        }
        void Access(const MemRef& ref) override
        {
            system_.Access(cpu_, ref);
        }
        void OnContextSwitch() override
        {
            system_.events_.Add(sim::Event::kContextSwitch);
            system_.timing_.Charge(sim::TimeBucket::kKernel,
                                   system_.config_.t_context_switch);
        }
        const sim::MachineConfig& config() const override
        {
            return system_.config_;
        }

      private:
        MpSpurSystem& system_;
        unsigned cpu_;
    };

    /** A workload-host view pinned to processor @p cpu. */
    CpuPort Port(unsigned cpu) { return CpuPort(*this, cpu); }

  private:
    friend class CpuPort;
    sim::MachineConfig config_;
    sim::EventCounts events_;
    sim::TimingModel timing_;
    pt::SegmentMap segmap_;
    pt::PageTable table_;
    std::vector<std::unique_ptr<cache::VirtualCache>> caches_;
    cache::SnoopBus bus_;
    std::vector<std::unique_ptr<xlate::Translator>> xlates_;
    AllCachesFlusher flusher_;
    std::unique_ptr<policy::DirtyPolicy> dirty_;
    std::unique_ptr<policy::RefPolicy> ref_;
    std::unique_ptr<vm::VirtualMemory> vm_;
    std::unordered_map<Pid, std::unordered_map<ProcessAddr, GlobalVpn>>
        process_regions_;
    Cycles block_fetch_cycles_;

    /// Accesses until the next periodic audit (audit builds only).
    uint64_t audit_countdown_ = check::kAuditAccessInterval;

    void AccessMiss(unsigned cpu, GlobalAddr gva, AccessType type);
    pt::Pte& ResidentPte(GlobalAddr gva);
    void ChargeDirty(const policy::DirtyCost& cost);
};

}  // namespace spur::core

#endif  // SPUR_CORE_MP_SYSTEM_H_

/**
 * @file
 * SpurSystem: the complete simulated SPUR workstation.
 *
 * Wires together the virtual-address cache, in-cache translation, the
 * Sprite-like VM, the pluggable dirty/reference-bit policies, the cycle
 * accounting and the event counters, and exposes the single hot-path
 * entry point Access() that workloads drive with memory references.
 *
 * This is the library's primary public type: construct one per
 * experiment run, create processes and regions, feed references, read
 * the counters and the timing breakdown.
 */
#ifndef SPUR_CORE_SYSTEM_H_
#define SPUR_CORE_SYSTEM_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cache/cache.h"
#include "src/check/audit.h"
#include "src/check/checker.h"
#include "src/workload/host.h"
#include "src/common/types.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/page_table.h"
#include "src/pt/segment_map.h"
#include "src/sim/config.h"
#include "src/sim/counters.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"
#include "src/vm/vm.h"
#include "src/xlate/translator.h"

namespace spur::core {

/** One simulated SPUR workstation. */
class SpurSystem : public workload::WorkloadHost
{
  public:
    /**
     * @param config machine parameters (validated).
     * @param dirty  dirty-bit alternative to run.
     * @param ref    reference-bit policy to run.
     */
    SpurSystem(const sim::MachineConfig& config,
               policy::DirtyPolicyKind dirty, policy::RefPolicyKind ref);

    ~SpurSystem();

    SpurSystem(const SpurSystem&) = delete;
    SpurSystem& operator=(const SpurSystem&) = delete;

    // ---- Process and address-space management ---------------------------

    /** Creates a process with four private global segments. */
    Pid CreateProcess() override;

    /** Tears down a process: unmaps its regions, frees its pages. */
    void DestroyProcess(Pid pid) override;

    /**
     * Declares a region of @p pid's address space.
     * @param base  process virtual address (page aligned).
     * @param bytes region length (page aligned, nonzero).
     * @param kind  what backs the pages.
     */
    void MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                   vm::PageKind kind) override;

    /** Removes the region mapped at @p base and frees its pages. */
    void UnmapRegion(Pid pid, ProcessAddr base);

    /**
     * Shares memory the SPUR way: points @p pid's segment register
     * @p reg at the same global segment as @p other's @p other_reg, so
     * both processes use one global virtual address for the shared pages
     * (no synonyms possible, [Hill86]).  Typical use: shared program
     * text across repeated invocations of the same tool.
     */
    void ShareSegment(Pid pid, unsigned reg, Pid other,
                      unsigned other_reg) override
    {
        segmap_.ShareSegment(pid, reg, other, other_reg);
    }

    // ---- The hot path ----------------------------------------------------
    //
    // Access()/AccessBatch() dispatch through member-function pointers to
    // a per-(dirty, ref, observer) template instantiation: the policy
    // logic (policy_ops.h) and the event-sink observer check are resolved
    // at compile time, so the per-reference loop runs with no virtual
    // policy calls.  The pointers are selected once at construction and
    // re-selected when an observer is (de)attached.

    /** Executes one memory reference through the whole memory system. */
    void Access(const MemRef& ref) override { (this->*access_fn_)(ref); }

    /** Executes @p n references in issue order (identical semantics to a
     *  per-reference Access() loop; one dispatch for the whole run). */
    void AccessBatch(const MemRef* refs, size_t n) override
    {
        (this->*batch_fn_)(refs, n);
    }

    /** Convenience overload. */
    void Access(Pid pid, ProcessAddr addr, AccessType type)
    {
        Access(MemRef{pid, addr, type});
    }

    /** Accounts a context switch (scheduler notification). */
    void OnContextSwitch() override;

    // ---- State access ------------------------------------------------------

    const sim::MachineConfig& config() const override { return config_; }
    const sim::EventCounts& events() const { return events_; }
    const sim::TimingModel& timing() const { return timing_; }
    const cache::VirtualCache& vcache() const { return vcache_; }
    const vm::VirtualMemory& memory() const { return *vm_; }
    const pt::PageTable& page_table() const { return table_; }
    const pt::SegmentMap& segments() const { return segmap_; }

    policy::DirtyPolicyKind dirty_kind() const { return dirty_->kind(); }
    policy::RefPolicyKind ref_kind() const { return ref_->kind(); }

    /**
     * Attaches the hardware counter model: every subsequent event is also
     * mirrored into it (slower; used by fidelity tests and examples).
     * Pass nullptr to detach.
     */
    void AttachPerfCounters(sim::PerfCounters* counters)
    {
        events_.SetObserver(counters);
        // The observer state is baked into the dispatched instantiation
        // (branchless unobserved event adds), so re-select.
        SelectDispatch();
    }

    /** The global virtual address a reference resolves to (for tests). */
    GlobalAddr ToGlobal(Pid pid, ProcessAddr addr) const
    {
        return segmap_.ToGlobal(pid, addr);
    }

    /**
     * Runs every registered invariant pass (src/check/) against the
     * current machine state.  Always available; audit builds
     * (SPUR_AUDIT=ON) additionally invoke it automatically at context
     * switches and every check::kAuditAccessInterval accesses, aborting
     * on any violation.
     */
    check::AuditReport Audit() const;

    // ---- Model-checking hooks (src/model/ conformance driver) -----------

    /** The PTE covering @p gva, or nullptr when none exists yet. */
    const pt::Pte* FindPte(GlobalAddr gva) const
    {
        return table_.Find(gva >> config_.PageShift());
    }

    /**
     * Clears the reference bit of @p gva's (resident) page exactly the
     * way the page daemon's front hand does: through the reference
     * policy, with its kernel/flush cycles charged.
     */
    void ClearRefBit(GlobalAddr gva);

    /** Flushes @p gva's page from the cache (tag-checked), with the
     *  kernel flush-path event and cycle accounting. */
    void FlushPage(GlobalAddr gva);

  private:
    sim::MachineConfig config_;
    sim::EventCounts events_;
    sim::TimingModel timing_;
    pt::SegmentMap segmap_;
    pt::PageTable table_;
    cache::VirtualCache vcache_;
    xlate::Translator xlate_;
    std::unique_ptr<policy::DirtyPolicy> dirty_;
    std::unique_ptr<policy::RefPolicy> ref_;
    std::unique_ptr<vm::VirtualMemory> vm_;

    /// Region starts (global vpn) per process, keyed by process base addr.
    std::unordered_map<Pid,
                       std::unordered_map<ProcessAddr, GlobalVpn>>
        process_regions_;

    /// Cached cost of fetching one block from memory.
    Cycles block_fetch_cycles_;

    /// Accesses until the next periodic audit (audit builds only).
    uint64_t audit_countdown_ = check::kAuditAccessInterval;

    // ---- Devirtualized dispatch -----------------------------------------

    using AccessFn = void (SpurSystem::*)(const MemRef&);
    using AccessBatchFn = void (SpurSystem::*)(const MemRef*, size_t);

    /// Selected (dirty, ref, observer) instantiations of the hot path.
    AccessFn access_fn_ = nullptr;
    AccessBatchFn batch_fn_ = nullptr;

    /** Points access_fn_/batch_fn_ at the instantiation matching the
     *  current policies and observer state. */
    void SelectDispatch();

    template <policy::DirtyPolicyKind D>
    void SelectDispatchRef(bool observed);

    template <policy::DirtyPolicyKind D, policy::RefPolicyKind R>
    void SetDispatchFns(bool observed);

    /** One reference through the compile-time-policy path. */
    template <policy::DirtyPolicyKind D, policy::RefPolicyKind R,
              bool kObserved>
    void AccessImpl(const MemRef& ref);

    /** Per-reference loop over AccessImpl with one dispatch. */
    template <policy::DirtyPolicyKind D, policy::RefPolicyKind R,
              bool kObserved>
    void AccessBatchImpl(const MemRef* refs, size_t n);

    /** Handles the miss path for @p gva; @p type as in Access(). */
    template <policy::DirtyPolicyKind D, policy::RefPolicyKind R,
              bool kObserved>
    void AccessMissImpl(GlobalAddr gva, AccessType type);

    /** The non-fast-path tail of a write hit: policy hook, cost
     *  charging, and the FLUSH re-execute-as-miss case. */
    template <policy::DirtyPolicyKind D, policy::RefPolicyKind R,
              bool kObserved>
    void WriteHitSlow(cache::LineRef line, GlobalAddr gva);

    /** Returns the PTE backing a *hit* line (must exist and be valid). */
    pt::Pte& ResidentPte(GlobalAddr gva);

    /** Applies a DirtyCost to the timing buckets. */
    void ChargeDirty(const policy::DirtyCost& cost);
};

}  // namespace spur::core

#endif  // SPUR_CORE_SYSTEM_H_

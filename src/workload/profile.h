/**
 * @file
 * Parameter set describing one synthetic process's memory behaviour.
 *
 * The paper's workloads are themselves synthetic scripts ("designed to
 * reflect a moderately heavy load for a CAD tool developer"); what our
 * generators must reproduce is their *event structure*: the balance of
 * instruction fetches to data references, the fraction of modified blocks
 * that are read before written (N_w-hit : N_w-miss of Table 3.3), the
 * zero-fill allocation volume (N_zfod), the page reuse locality the page
 * daemon interacts with, and working-set sizes that stress 5-8 MB
 * memories.
 */
#ifndef SPUR_WORKLOAD_PROFILE_H_
#define SPUR_WORKLOAD_PROFILE_H_

#include <cstdint>
#include <string>

namespace spur::workload {

/**
 * Behavioural parameters for one synthetic process.
 *
 * Data references are produced by five generators, selected per access by
 * the `w_*` weights (normalized internally):
 *  - seq_read:    cyclic sequential read of the file-backed data region
 *                 (source files, object files, symbol tables);
 *  - seq_write:   an allocation front walking the zero-fill heap (fresh
 *                 pages, first touch is a write — the N_zfod producer);
 *  - rmw:         read a block then immediately write it back (the
 *                 read-modify-write that produces write hits on clean
 *                 blocks with no excess faults);
 *  - scan_update: read a run of blocks from one page, then write part of
 *                 the run back (produces the multiple-clean-cached-blocks
 *                 pattern of Figure 3.1, i.e. excess faults);
 *  - rand:        Zipf-distributed references over a sliding heap working
 *                 set (read-mostly; writes come in short word bursts);
 *  - file_write:  sequential writes over the file-backed data region
 *                 (compiler/linker output files — the source of dirty
 *                 faults on non-zero-fill pages).
 */
struct ProcessProfile {
    std::string name = "proc";

    // ---- Region sizes (pages) -------------------------------------------
    uint32_t code_pages = 64;    ///< Read-only text.
    uint32_t data_pages = 64;    ///< File-backed read-write data.
    uint32_t heap_pages = 256;   ///< Zero-fill heap.
    uint32_t stack_pages = 16;   ///< Zero-fill stack.

    // ---- Reference mix ---------------------------------------------------
    double frac_ifetch = 0.70;   ///< Fraction of refs that fetch code.
    double frac_stack = 0.06;    ///< Of data refs, fraction to the stack.

    // ---- Data generator weights (relative) --------------------------------
    double w_seq_read = 1.0;
    double w_seq_write = 0.5;
    double w_rmw = 0.5;
    double w_scan_update = 0.5;
    double w_rand = 1.5;
    double w_file_write = 0.0;

    // ---- Generator details -------------------------------------------------
    double rand_write_frac = 0.12;  ///< Write fraction inside `rand`.
    /// Inside `file_write`: fraction of operations that *re-read* an
    /// earlier output page (previewing / reloading what was written).
    /// Re-read pages come back clean and are the main source of
    /// replaced-but-unmodified writable pages (Table 3.5).
    double file_reread_frac = 0.25;
    uint32_t write_burst_words = 6; ///< Words per rand/stack write burst.
    uint32_t scan_read_blocks = 8;  ///< Blocks read per scan_update burst.
    uint32_t scan_write_blocks = 4; ///< Of those, blocks written back.

    // ---- Locality ----------------------------------------------------------
    uint32_t heap_ws_pages = 96;  ///< Sliding window within the heap.
    double zipf_skew = 0.88;      ///< Reuse skew inside windows.
    double ws_slide_prob = 2e-4;  ///< Per-data-ref chance to slide the WS.
    uint32_t code_ws_pages = 24;  ///< Hot code window.

    // ---- Instruction-fetch loop model ---------------------------------------
    // Code executes as loops: a body of loop_blocks cache blocks is
    // fetched sequentially loop_iters times (first iteration misses, the
    // rest hit), then control moves on — sometimes sequentially,
    // sometimes by a call/jump elsewhere in the hot window.
    uint32_t loop_blocks_max = 6;   ///< Body length, 1..max blocks.
    uint32_t loop_iters_max = 24;   ///< Iterations, 1..max.
    double call_prob = 0.25;        ///< Post-loop chance of a far jump.

    // ---- Lifetime ------------------------------------------------------------
    uint64_t lifetime_refs = 0;   ///< Refs until exit; 0 = runs forever.
};

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_PROFILE_H_

/**
 * @file
 * The workload driver: schedules synthetic processes round-robin over a
 * SpurSystem, spawning and reaping jobs according to a WorkloadSpec
 * timeline (the "script" of Section 2's synthetic workloads).
 */
#ifndef SPUR_WORKLOAD_DRIVER_H_
#define SPUR_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/workload/host.h"
#include "src/workload/process.h"
#include "src/workload/profile.h"

namespace spur::workload {

/** One entry in a workload script. */
struct JobSpec {
    ProcessProfile profile;
    /// References into the run at which the first instance starts.
    uint64_t start_refs = 0;
    /// Instances running concurrently (e.g. two parallel compiles).
    uint32_t concurrency = 1;
    /// When an instance exits, respawn after this many further global
    /// references (0 = do not respawn).  Models the edit-compile-debug
    /// cycle and the periodic performance monitors.
    uint64_t respawn_delay_refs = 0;
    /// Instances reuse one shared text segment (Sprite's sticky text:
    /// repeated invocations of the same tool share its code pages).
    bool share_text = true;
    /// Instances also share the file-backed data segment (tools that
    /// reread the same files, e.g. monitors reading kernel tables).
    bool share_data = false;
};

/** A named collection of jobs: WORKLOAD1, SLC, the dev machines. */
struct WorkloadSpec {
    std::string name;
    std::vector<JobSpec> jobs;
    /// References per scheduling quantum.  Part of the script, not the
    /// machine: the ctx-switch scenario owes its switch rate to a small
    /// slice.  core::RunOnce passes this into the Driver, so it is part
    /// of a trace stream's generation identity too.
    uint32_t slice_refs = 20000;
};

/** Drives a WorkloadSpec against a system for a fixed reference budget. */
class Driver
{
  public:
    /**
     * @param system       the machine under test.
     * @param spec         the script to run.
     * @param total_refs   references to issue in the whole run.
     * @param seed         seed for process generators and scheduling.
     * @param slice_refs   references per scheduling quantum.
     */
    Driver(WorkloadHost& system, WorkloadSpec spec, uint64_t total_refs,
           uint64_t seed, uint32_t slice_refs = 20000);

    ~Driver();

    Driver(const Driver&) = delete;
    Driver& operator=(const Driver&) = delete;

    /** Runs to the reference budget. */
    void Run();

    /** Runs at most @p refs more references (for incremental tests). */
    void RunRefs(uint64_t refs);

    /** Global references issued so far. */
    uint64_t refs_issued() const { return refs_issued_; }

    /** Processes currently live (for tests). */
    size_t NumLive() const { return live_.size(); }

    /** Total process spawns so far (for tests and reports). */
    uint64_t NumSpawns() const { return spawns_; }

  private:
    /** A live process instance and the job it instantiates. */
    struct Instance {
        std::unique_ptr<SyntheticProcess> process;
        size_t job_index;
    };

    /** A job instance scheduled to start in the future. */
    struct Pending {
        uint64_t at_refs;
        size_t job_index;
    };

    WorkloadHost& system_;
    WorkloadSpec spec_;
    uint64_t total_refs_;
    Rng rng_;
    uint32_t slice_refs_;

    std::vector<Instance> live_;
    std::vector<Pending> pending_;
    /// Reusable quantum buffer for batched reference issue.
    std::vector<MemRef> batch_;
    /// Per-job owner process holding shared text/data segments, or
    /// kNoOwner when the job shares nothing (or not yet spawned).
    static constexpr Pid kNoOwner = ~Pid{0};
    std::vector<Pid> owners_;
    uint64_t refs_issued_ = 0;
    uint64_t spawns_ = 0;
    size_t next_slot_ = 0;  ///< Round-robin cursor.

    void SpawnDue();
    void Spawn(size_t job_index);
    void ReapFinished();
};

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_DRIVER_H_

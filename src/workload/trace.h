/**
 * @file
 * Binary reference-trace recording and replay.
 *
 * The paper's Section 2 explains why the study could not use trace-driven
 * simulation (paging-scale traces were too large to collect in 1989);
 * with synthetic generators we can have both: record a generator's
 * stream once, replay it byte-identically against any machine/policy
 * configuration — the classical trace-driven methodology, supported as a
 * first-class library feature.
 *
 * Format (little-endian, fixed 9-byte records after a 16-byte header):
 *   header:  magic "SPURTRC1" (8 bytes), record count (8 bytes)
 *   record:  pid (4 bytes), addr (4 bytes), type (1 byte)
 */
#ifndef SPUR_WORKLOAD_TRACE_H_
#define SPUR_WORKLOAD_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/types.h"
#include "src/workload/host.h"

namespace spur::workload {

/** Streams MemRefs to a trace file. */
class TraceWriter
{
  public:
    /** Opens @p path for writing; fatal on failure. */
    explicit TraceWriter(const std::string& path);

    /** Finalizes the header and closes the file. */
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Appends one reference. */
    void Append(const MemRef& ref);

    /** Records written so far. */
    uint64_t count() const { return count_; }

  private:
    std::FILE* file_;
    uint64_t count_ = 0;
};

/** Reads MemRefs back from a trace file. */
class TraceReader
{
  public:
    /** Opens @p path; fatal on missing file or bad magic. */
    explicit TraceReader(const std::string& path);

    ~TraceReader();

    TraceReader(const TraceReader&) = delete;
    TraceReader& operator=(const TraceReader&) = delete;

    /** Reads the next record; false at end of trace. */
    bool Next(MemRef* ref);

    /** Total records according to the header. */
    uint64_t count() const { return count_; }

  private:
    std::FILE* file_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
};

/**
 * Replays a trace against any WorkloadHost.
 *
 * The trace format stores no region information, so the replayer maps one
 * generously sized region of each kind for every pid it encounters (lazy,
 * on first sight), mirroring the SyntheticProcess layout.  Returns the
 * number of references replayed.
 */
uint64_t ReplayTrace(const std::string& path, WorkloadHost& system);

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_TRACE_H_

/**
 * @file
 * SPUR-TRACE/1: the deterministic workload-trace substrate (DESIGN.md
 * §19).
 *
 * The paper's Section 2 explains why the study could not use
 * trace-driven simulation: paging-scale traces were unaffordable to
 * collect in 1989.  We reverse that verdict.  Because the synthetic
 * generators are pure (rng + cursors, no feedback from the machine), a
 * workload's *operation stream* — every WorkloadHost call the driver
 * makes — depends only on (spec, refs, seed, slice_refs, page geometry),
 * never on the policies or memory size under test.  Recording that
 * stream once therefore feeds every cell of a policy/memory matrix
 * byte-identically, which is exactly the classical trace-driven
 * methodology, now the *cheap* path.
 *
 * A trace is an op trace, not a bare reference trace: process creation,
 * teardown, region maps, segment shares and context switches are all
 * frames of the stream, so replaying reproduces the live run's counters
 * exactly (the old format's "map generous regions per pid" replay could
 * not).  Host pids are renamed to dense first-seen order on record and
 * renamed back on replay, so the same workload recorded against any
 * host — the real SpurSystem or the counts-only CountingHost — produces
 * byte-identical trace bytes.
 *
 * File format, following the §13 stream discipline (same framing,
 * digesting and truncation-vs-corruption rules as SPUR-STREAM/1):
 *
 *     SPUR-TRACE/1\n                    magic line
 *     H <len>\n<header-json>\n          trace format version
 *     per stream (one per distinct stream identity):
 *       S <len>\n<meta-json>\n          workload, seed, refs, intensity,
 *                                       page/block geometry
 *       B <len>\n<binary-ops>\n         delta/varint op batches (~64 KiB)
 *       ...
 *       E <len>\n<end-json>\n           op/access counts, refs issued,
 *                                       FNV-1a64 digest over the B
 *                                       payloads
 *     T <len>\n<trailer-json>\n         stream count + whole-file digest
 *
 * Binary op encoding (all integers LEB128 varints; access addresses are
 * zigzag deltas against the previous access address):
 *
 *     0 create   <pid>                       pid must be the next dense id
 *     1 destroy  <pid>
 *     2 map      <pid> <base> <bytes> <kind>
 *     3 share    <pid> <reg> <other> <other_reg>
 *     4 switch
 *     5 setpid   <pid>                       current pid for accesses
 *     6 ifetch   <zigzag addr delta>
 *     7 read     <zigzag addr delta>
 *     8 write    <zigzag addr delta>
 *
 * Recovery semantics: a trace cut at any byte offset recovers the
 * streams whose E frame is present and verified; a torn tail (and any
 * stream it cut) is dropped and reported.  Damage truncation cannot
 * explain — bad magic, malformed frames, a digest or count that
 * disagrees — is a hard error, never a silent partial result.
 * tests/trace_test.cc and the TraceFuzzTest corpus in
 * tests/json_fuzz_test.cc enforce this at every byte offset.
 */
#ifndef SPUR_WORKLOAD_TRACE_H_
#define SPUR_WORKLOAD_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/config.h"
#include "src/workload/host.h"

namespace spur::workload {

/** Version of the trace framing; bump on any format change. */
inline constexpr int kTraceVersion = 1;

/** First line of every trace file. */
inline constexpr char kTraceMagic[] = "SPUR-TRACE/1\n";

/**
 * The identity of one recorded stream: everything the generator's
 * output depends on.  Policies and memory size are deliberately absent
 * — the generator cannot see them — which is what lets one recording
 * feed every cell of a policy/memory matrix.
 */
struct TraceStreamMeta {
    std::string workload;     ///< Scenario name (core::ToString spelling).
    uint64_t seed = 0;        ///< Driver seed (cell-derived for matrices).
    uint64_t refs = 0;        ///< Reference budget of the recorded run.
    double intensity = 1.0;   ///< Dev-machine intensity knob.
    uint64_t page_bytes = 0;  ///< Page size the stream was generated at.
    uint64_t block_bytes = 0; ///< Cache block size likewise.

    /** Canonical lookup key ("<workload>|seed=...|..."). */
    std::string Identity() const;
};

/**
 * Encodes one stream's op sequence into framed bytes.  The encoder
 * renames host pids to dense first-seen trace pids, so the output is
 * independent of the recording host's pid policy.
 */
class TraceEncoder
{
  public:
    explicit TraceEncoder(TraceStreamMeta meta);

    TraceEncoder(const TraceEncoder&) = delete;
    TraceEncoder& operator=(const TraceEncoder&) = delete;

    // One call per WorkloadHost operation, in issue order.
    void OnCreateProcess(Pid host_pid);
    void OnDestroyProcess(Pid host_pid);
    void OnMapRegion(Pid host_pid, ProcessAddr base, uint64_t bytes,
                     vm::PageKind kind);
    void OnShareSegment(Pid host_pid, unsigned reg, Pid other,
                        unsigned other_reg);
    void OnContextSwitch();
    void OnAccess(const MemRef& ref);

    /**
     * Seals the stream: flushes the final op batch and appends the E
     * frame.  @p refs_issued is the driver's global reference clock
     * (idle skips advance it without accesses, so it cannot be
     * recomputed from the ops).  Returns the complete framed S..E
     * bytes; the encoder must not be used afterwards.
     */
    std::string Finish(uint64_t refs_issued);

    /** Access ops recorded so far. */
    uint64_t accesses() const { return accesses_; }

    /** Ops of any kind recorded so far. */
    uint64_t ops() const { return ops_; }

  private:
    void Op(uint8_t opcode);
    void Varint(uint64_t value);
    void FlushBatch();
    uint32_t TracePid(Pid host_pid) const;

    TraceStreamMeta meta_;
    std::string framed_;        ///< S frame + completed B frames.
    std::string batch_;         ///< Op bytes of the open batch.
    uint64_t digest_;           ///< Rolling FNV over B payloads.
    uint64_t ops_ = 0;
    uint64_t accesses_ = 0;
    uint32_t next_trace_pid_ = 0;
    std::vector<std::pair<Pid, uint32_t>> pid_map_;  ///< host -> trace.
    uint32_t current_pid_ = ~uint32_t{0};
    ProcessAddr last_addr_ = 0;
    bool finished_ = false;
};

/**
 * A WorkloadHost shim that records every operation into a TraceEncoder
 * while forwarding it to the real host unchanged.  StopRecording()
 * keeps forwarding but stops recording — RunOnce samples counters
 * before driver teardown, so teardown ops must not enter the trace.
 */
class RecordingHost : public WorkloadHost
{
  public:
    RecordingHost(WorkloadHost& host, TraceEncoder& encoder)
        : host_(host), encoder_(encoder)
    {
    }

    void StopRecording() { recording_ = false; }

    Pid CreateProcess() override;
    void DestroyProcess(Pid pid) override;
    void MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                   vm::PageKind kind) override;
    void ShareSegment(Pid pid, unsigned reg, Pid other,
                      unsigned other_reg) override;
    void Access(const MemRef& ref) override;
    void AccessBatch(const MemRef* refs, size_t n) override;
    void OnContextSwitch() override;
    const sim::MachineConfig& config() const override;

  private:
    WorkloadHost& host_;
    TraceEncoder& encoder_;
    bool recording_ = true;
};

/**
 * A counts-only host: accepts the full WorkloadHost surface without
 * simulating anything, so `spur_trace record` can capture a scenario's
 * op stream without paying for cache/VM simulation.  Thanks to pid
 * normalization, a trace recorded through CountingHost is byte-
 * identical to one recorded against the live SpurSystem.
 */
class CountingHost : public WorkloadHost
{
  public:
    explicit CountingHost(const sim::MachineConfig& config)
        : config_(config)
    {
    }

    Pid CreateProcess() override { return next_pid_++; }
    void DestroyProcess(Pid) override {}
    void MapRegion(Pid, ProcessAddr, uint64_t, vm::PageKind) override {}
    void ShareSegment(Pid, unsigned, Pid, unsigned) override {}
    void Access(const MemRef&) override { ++accesses_; }
    void OnContextSwitch() override { ++context_switches_; }
    const sim::MachineConfig& config() const override { return config_; }

    uint64_t accesses() const { return accesses_; }
    uint64_t context_switches() const { return context_switches_; }

  private:
    sim::MachineConfig config_;
    Pid next_pid_ = 1;
    uint64_t accesses_ = 0;
    uint64_t context_switches_ = 0;
};

/**
 * Appends encoded streams to a trace file.  The magic line and H frame
 * land at Open; every AppendStream is written and fsync'd whole, so a
 * killed recorder leaves a file whose complete-stream prefix recovers.
 * Not thread-safe; core::TraceRecordSession serializes callers.
 */
class TraceFileWriter
{
  public:
    TraceFileWriter() = default;
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter&) = delete;
    TraceFileWriter& operator=(const TraceFileWriter&) = delete;

    /** Creates/truncates @p path, writes magic + H frame (fsync'd). */
    bool Open(const std::string& path, std::string* error);

    /** Appends one TraceEncoder::Finish() result (fsync'd whole). */
    bool AppendStream(const std::string& stream_bytes, std::string* error);

    /** Writes the T trailer frame and closes. */
    bool Finish(std::string* error);

    bool is_open() const { return fd_ >= 0; }

    /** Streams appended so far. */
    uint64_t streams() const { return streams_; }

  private:
    void Close();

    int fd_ = -1;
    uint64_t streams_ = 0;
    uint64_t digest_ = 0;
};

/** One complete, digest-verified stream read back from a trace. */
struct TraceStream {
    TraceStreamMeta meta;
    std::string ops;       ///< Concatenated B payloads (decoded on replay).
    std::string framed;    ///< The exact S..E frame bytes (re-encoding).
    uint64_t op_count = 0;
    uint64_t accesses = 0;
    uint64_t refs_issued = 0;
    uint64_t digest = 0;   ///< FNV-1a64 over the B payloads.
};

/** Outcome of reading a trace file back. */
struct RecoveredTrace {
    /// True when the T trailer was present and verified.  False =
    /// truncated: `streams` holds every stream whose E frame verified;
    /// the torn tail (and any stream it cut) was dropped.
    bool complete = false;
    std::vector<TraceStream> streams;
    /// Bytes dropped after the last complete stream.
    uint64_t dropped_bytes = 0;
    /// One-line human-readable recovery summary.
    std::string note;
};

/**
 * Parses @p bytes as a trace.  Truncation at any byte offset recovers
 * the complete-stream prefix; corruption (anything truncation cannot
 * produce, including malformed op payloads behind a valid digest)
 * returns nullopt with *error set.
 */
std::optional<RecoveredTrace> RecoverTraceBytes(const std::string& bytes,
                                                std::string* error);

/** Reads @p path and recovers it via RecoverTraceBytes. */
std::optional<RecoveredTrace> RecoverTraceFile(const std::string& path,
                                               std::string* error);

/**
 * Renders a complete trace file from framed stream bytes (each entry a
 * TraceEncoder::Finish() result or a TraceStream::framed).  A complete
 * file recovered by RecoverTraceBytes re-encodes byte-identically —
 * the fix-point the fuzzer holds the parser to.
 */
std::string EncodeTraceFile(const std::vector<std::string>& stream_frames);

/**
 * A loaded trace library: the replay side of --replay-trace.  Load
 * demands a complete file (recover partial ones with `spur_trace
 * validate` / RecoverTraceFile first); lookups are read-only and
 * therefore safe from parallel sweep cells.
 */
class TraceLibrary
{
  public:
    /** Loads @p path; false + *error on I/O error, corruption, or a
     *  truncated (trailerless) file. */
    bool Load(const std::string& path, std::string* error);

    /** Finds a stream by TraceStreamMeta::Identity(), else nullptr. */
    const TraceStream* Find(const std::string& identity) const;

    const std::vector<TraceStream>& streams() const { return streams_; }

  private:
    std::vector<TraceStream> streams_;
};

/** Counters from one replayed stream. */
struct ReplayStats {
    uint64_t refs_issued = 0;      ///< The recorded driver clock.
    uint64_t accesses = 0;
    uint64_t context_switches = 0;
    uint64_t processes = 0;        ///< Processes created during replay.
};

/**
 * Replays one stream against @p host, issuing every recorded operation
 * in order (accesses are batched through AccessBatch, which the host
 * contract makes equivalent to the per-reference loop).  Fatal on a
 * page/block geometry mismatch with the host.
 */
ReplayStats ReplayStream(const TraceStream& stream, WorkloadHost& host);

/**
 * Loads @p path (Fatal on error or a truncated file) and replays every
 * stream in file order.  Convenience for examples and spur_trace.
 */
ReplayStats ReplayTrace(const std::string& path, WorkloadHost& host);

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_TRACE_H_

#include "src/workload/process.h"

#include <algorithm>

#include "src/common/log.h"

namespace spur::workload {

SyntheticProcess::SyntheticProcess(WorkloadHost& system,
                                   const ProcessProfile& profile,
                                   uint64_t seed, const ShareSpec* share)
    : system_(system),
      profile_(profile),
      rng_(seed),
      pid_(system.CreateProcess()),
      page_shift_(system.config().PageShift()),
      block_bytes_(static_cast<uint32_t>(system.config().block_bytes)),
      page_bytes_(static_cast<uint32_t>(system.config().page_bytes)),
      seq_read_pos_(kDataBase),
      alloc_front_(kHeapBase),
      file_write_pos_(kDataBase)
{
    const auto& config = system.config();
    auto map = [&](ProcessAddr base, uint32_t pages, vm::PageKind kind) {
        if (pages > 0) {
            system_.MapRegion(pid_, base, uint64_t{pages} * config.page_bytes,
                              kind);
        }
    };
    if (share != nullptr && share->text) {
        system_.ShareSegment(pid_, kCodeSeg, share->owner, kCodeSeg);
    } else {
        map(kCodeBase, profile_.code_pages, vm::PageKind::kCode);
    }
    if (share != nullptr && share->data) {
        system_.ShareSegment(pid_, kDataSeg, share->owner, kDataSeg);
    } else {
        MapDataSegment(system_, pid_, profile_);
    }
    map(kHeapBase, profile_.heap_pages, vm::PageKind::kHeap);
    map(kStackBase, profile_.stack_pages, vm::PageKind::kStack);

    // Build the cumulative distribution over the six data generators.
    const std::array<double, 6> weights = {
        profile_.w_seq_read, profile_.w_seq_write, profile_.w_rmw,
        profile_.w_scan_update, profile_.w_rand, profile_.w_file_write};
    double total = 0;
    for (double w : weights) {
        if (w < 0) {
            Fatal("ProcessProfile: negative generator weight");
        }
        total += w;
    }
    if (total <= 0) {
        Fatal("ProcessProfile: all generator weights are zero");
    }
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i] / total;
        gen_cdf_[i] = acc;
    }
    gen_cdf_.back() = 1.0;

    // Clamp windows to region sizes.
    profile_.heap_ws_pages =
        std::max(1u, std::min(profile_.heap_ws_pages, profile_.heap_pages));
    profile_.code_ws_pages =
        std::max(1u, std::min(profile_.code_ws_pages, profile_.code_pages));
}

void
MapDataSegment(WorkloadHost& system, Pid pid,
               const ProcessProfile& profile)
{
    if (profile.data_pages == 0) {
        return;
    }
    const uint64_t page_bytes = system.config().page_bytes;
    if (profile.w_file_write > 0 && profile.data_pages >= 4) {
        const uint32_t half = profile.data_pages / 2;
        system.MapRegion(pid, kDataBase, uint64_t{half} * page_bytes,
                         vm::PageKind::kFileCache);
        system.MapRegion(pid,
                         kDataBase + static_cast<ProcessAddr>(
                                         half * page_bytes),
                         uint64_t{profile.data_pages - half} * page_bytes,
                         vm::PageKind::kData);
    } else {
        system.MapRegion(pid, kDataBase,
                         uint64_t{profile.data_pages} * page_bytes,
                         profile.w_file_write > 0 ? vm::PageKind::kData
                                                  : vm::PageKind::kFileCache);
    }
}

SyntheticProcess::~SyntheticProcess()
{
    system_.DestroyProcess(pid_);
}

MemRef
SyntheticProcess::Next()
{
    ++refs_issued_;
    if (rng_.NextDouble() < profile_.frac_ifetch) {
        return MakeIFetch();
    }
    return MakeDataRef();
}

MemRef
SyntheticProcess::MakeIFetch()
{
    if (loop_base_ == 0) {
        PickNextLoop();
    }
    const MemRef ref = Ref(loop_base_ + loop_block_idx_ * block_bytes_ +
                               loop_offset_,
                           AccessType::kIFetch);
    loop_offset_ += 4;
    if (loop_offset_ >= block_bytes_) {
        loop_offset_ = 0;
        if (++loop_block_idx_ >= loop_blocks_) {
            loop_block_idx_ = 0;
            if (--loop_iters_left_ == 0) {
                PickNextLoop();
            }
        }
    }
    return ref;
}

void
SyntheticProcess::PickNextLoop()
{
    const uint32_t blocks_per_page = page_bytes_ / block_bytes_;
    if (loop_base_ == 0 || rng_.Chance(profile_.call_prob)) {
        // Call or long jump into the hot-code window, which itself drifts
        // slowly across the text (program phases).
        if (rng_.Chance(0.02)) {
            code_ws_base_ = static_cast<uint32_t>(rng_.NextBelow(
                std::max(1u,
                         profile_.code_pages - profile_.code_ws_pages + 1)));
        }
        const uint32_t page = ZipfPage(code_ws_base_, profile_.code_ws_pages,
                                       profile_.code_pages);
        const uint32_t block =
            static_cast<uint32_t>(rng_.NextBelow(blocks_per_page));
        loop_base_ = BlockAddr(kCodeBase, page, block);
    } else {
        // Fall through to the code after the previous loop body.
        loop_base_ += loop_blocks_ * block_bytes_;
        if (loop_base_ >= kCodeBase + profile_.code_pages * page_bytes_) {
            loop_base_ = kCodeBase;
        }
    }
    loop_blocks_ = 1 + static_cast<uint32_t>(
                           rng_.NextBelow(profile_.loop_blocks_max));
    loop_iters_left_ = 1 + static_cast<uint32_t>(
                               rng_.NextBelow(profile_.loop_iters_max));
    loop_block_idx_ = 0;
    loop_offset_ = 0;
    // Keep the body inside the region.
    const ProcessAddr region_end =
        kCodeBase + profile_.code_pages * page_bytes_;
    if (loop_base_ + loop_blocks_ * block_bytes_ > region_end) {
        loop_base_ = region_end - loop_blocks_ * block_bytes_;
    }
}

MemRef
SyntheticProcess::MakeDataRef()
{
    // Slide the heap working set occasionally: phase behaviour.
    if (rng_.Chance(profile_.ws_slide_prob) && profile_.heap_pages > 0) {
        heap_ws_base_ = (heap_ws_base_ + 1 +
                         static_cast<uint32_t>(rng_.NextBelow(4))) %
                        std::max(1u, profile_.heap_pages);
    }
    if (profile_.stack_pages > 0 && rng_.NextDouble() < profile_.frac_stack) {
        return GenStack();
    }
    // A pending write burst completes before anything else starts.
    if (burst_words_ != 0) {
        const MemRef ref = Ref(burst_addr_, AccessType::kWrite);
        burst_addr_ += 4;
        --burst_words_;
        return ref;
    }
    const double draw = rng_.NextDouble();
    if (draw < gen_cdf_[0] && profile_.data_pages > 0) {
        return GenSeqRead();
    }
    if (draw < gen_cdf_[1] && profile_.heap_pages > 0) {
        return GenSeqWrite();
    }
    if (draw < gen_cdf_[2] && profile_.heap_pages > 0) {
        return GenRmw();
    }
    if (draw < gen_cdf_[3] && profile_.heap_pages > 0) {
        return GenScanUpdate();
    }
    if (draw < gen_cdf_[4] && profile_.heap_pages > 0) {
        return GenRand();
    }
    if (profile_.data_pages > 0) {
        return GenFileWrite();
    }
    if (profile_.heap_pages > 0) {
        return GenRand();
    }
    return GenStack();
}

MemRef
SyntheticProcess::StartBurst(ProcessAddr addr, uint32_t words)
{
    // Clip the burst to its cache block so every word after the first
    // hits the freshly written (dirty) block.
    const uint32_t word_in_block = (addr % block_bytes_) / 4;
    const uint32_t room = block_bytes_ / 4 - word_in_block;
    const uint32_t len = std::max(1u, std::min(words, room));
    burst_addr_ = addr + 4;
    burst_words_ = len - 1;
    return Ref(addr, AccessType::kWrite);
}

MemRef
SyntheticProcess::GenFileWrite()
{
    const uint32_t half = std::max(1u, profile_.data_pages / 2);
    const ProcessAddr lo = kDataBase + half * page_bytes_;
    if (file_write_pos_ < lo) {
        file_write_pos_ = lo;
    }
    // Sometimes re-read an earlier output page (previewing what was
    // written) rather than appending.
    const uint32_t written_pages = static_cast<uint32_t>(
        (file_write_pos_ - lo) / page_bytes_);
    if (written_pages > 0 && rng_.NextDouble() < profile_.file_reread_frac) {
        const uint32_t page =
            static_cast<uint32_t>(rng_.NextBelow(written_pages));
        const ProcessAddr addr =
            lo + page * page_bytes_ +
            static_cast<ProcessAddr>(rng_.NextBelow(page_bytes_) & ~3u);
        return Ref(addr, AccessType::kRead);
    }
    const MemRef ref = Ref(file_write_pos_, AccessType::kWrite);
    file_write_pos_ += 4;
    if (file_write_pos_ >= kDataBase + profile_.data_pages * page_bytes_) {
        file_write_pos_ = lo;
    }
    return ref;
}

MemRef
SyntheticProcess::GenSeqRead()
{
    // Input files live in the lower part of the data region; output files
    // (GenFileWrite) in the upper part, so scans do not pre-cache the
    // blocks the writer dirties.
    const uint32_t read_pages =
        (profile_.w_file_write > 0) ? std::max(1u, profile_.data_pages / 2)
                                    : profile_.data_pages;
    const MemRef ref = Ref(seq_read_pos_, AccessType::kRead);
    seq_read_pos_ += 4;
    if (seq_read_pos_ >= kDataBase + read_pages * page_bytes_) {
        seq_read_pos_ = kDataBase;
    }
    return ref;
}

MemRef
SyntheticProcess::GenSeqWrite()
{
    const MemRef ref = Ref(alloc_front_, AccessType::kWrite);
    alloc_front_ += 4;
    if (alloc_front_ >= kHeapBase + profile_.heap_pages * page_bytes_) {
        alloc_front_ = kHeapBase;
    }
    return ref;
}

MemRef
SyntheticProcess::GenRmw()
{
    const uint32_t page = ZipfPage(heap_ws_base_, profile_.heap_ws_pages,
                                   profile_.heap_pages);
    const uint32_t block =
        static_cast<uint32_t>(rng_.NextBelow(page_bytes_ / block_bytes_));
    const ProcessAddr addr = BlockAddr(kHeapBase, page, block);
    // The modify-write of a couple of words follows on later accesses.
    burst_addr_ = addr;
    burst_words_ = 2;
    return Ref(addr, AccessType::kRead);
}

MemRef
SyntheticProcess::GenScanUpdate()
{
    const uint32_t blocks_per_page = page_bytes_ / block_bytes_;
    const uint32_t read_burst =
        std::min(profile_.scan_read_blocks, blocks_per_page);
    const uint32_t write_burst =
        std::min(profile_.scan_write_blocks, read_burst);

    if (scan_page_ == 0) {
        // Scans walk *allocated* structures: pages at or below the
        // allocation high-water mark.  Resident allocated pages are
        // already dirty (writes take the fast path), but pages that were
        // paged out and reloaded come back clean — so the excess-fault
        // rate tracks paging pressure, as in the paper's Table 3.3.
        const uint32_t allocated = static_cast<uint32_t>(
            (alloc_front_ - kHeapBase) / page_bytes_);
        if (allocated == 0) {
            return GenRand();
        }
        const uint32_t page =
            static_cast<uint32_t>(rng_.NextBelow(allocated));
        scan_page_ = kHeapBase + page * page_bytes_;
        scan_index_ = 0;
        scan_writing_ = false;
    }
    MemRef ref{};
    if (!scan_writing_) {
        ref = Ref(scan_page_ + scan_index_ * block_bytes_, AccessType::kRead);
        if (++scan_index_ >= read_burst) {
            scan_index_ = 0;
            scan_writing_ = true;
        }
    } else {
        ref =
            Ref(scan_page_ + scan_index_ * block_bytes_, AccessType::kWrite);
        if (++scan_index_ >= write_burst) {
            scan_page_ = 0;  // Burst complete; pick a new page next time.
        }
    }
    return ref;
}

MemRef
SyntheticProcess::GenRand()
{
    const bool write = rng_.NextDouble() < profile_.rand_write_frac;
    // Reads concentrate on the hot (Zipf) pages, which therefore live in
    // the cache; update bursts scatter uniformly over the window, mostly
    // landing on blocks that are *not* cached — real programs update far
    // more data than they keep hot, which is why the paper measures four
    // to six write-miss fills per write hit on a clean block.
    // Updates cover only the lower half of the window: the upper half
    // models initialized-once, read-many structures (tables, loaded
    // structures), which is where replaced-but-never-modified writable
    // pages come from (Table 3.5's "not modified" column).
    const uint32_t write_span = std::max(1u, profile_.heap_ws_pages / 2);
    const uint32_t page =
        write ? (heap_ws_base_ +
                 static_cast<uint32_t>(rng_.NextBelow(write_span))) %
                    std::max(1u, profile_.heap_pages)
              : ZipfPage(heap_ws_base_, profile_.heap_ws_pages,
                         profile_.heap_pages);
    const uint32_t block =
        static_cast<uint32_t>(rng_.NextBelow(page_bytes_ / block_bytes_));
    const ProcessAddr addr =
        BlockAddr(kHeapBase, page, block) +
        4 * static_cast<uint32_t>(rng_.NextBelow(block_bytes_ / 4));
    if (write) {
        return StartBurst(addr, profile_.write_burst_words);
    }
    return Ref(addr, AccessType::kRead);
}

MemRef
SyntheticProcess::GenStack()
{
    // Stack activity clusters near the top (page 0 of the region), with a
    // write bias: call frames are written on entry.
    const uint32_t page = static_cast<uint32_t>(
        rng_.NextZipf(profile_.stack_pages, /*skew=*/0.85));
    const uint32_t block =
        static_cast<uint32_t>(rng_.NextBelow(page_bytes_ / block_bytes_));
    const ProcessAddr addr = BlockAddr(kStackBase, page, block);
    if (rng_.NextDouble() < 0.55) {
        // Frame setup: a run of stores.
        return StartBurst(addr, block_bytes_ / 4);
    }
    return Ref(addr, AccessType::kRead);
}

uint32_t
SyntheticProcess::ZipfPage(uint32_t window_base, uint32_t window_pages,
                           uint32_t region_pages)
{
    const uint32_t offset = static_cast<uint32_t>(
        rng_.NextZipf(window_pages, profile_.zipf_skew));
    return (window_base + offset) % std::max(1u, region_pages);
}

ProcessAddr
SyntheticProcess::BlockAddr(ProcessAddr region_base, uint32_t page,
                            uint32_t block)
{
    return region_base + page * page_bytes_ + block * block_bytes_;
}

}  // namespace spur::workload

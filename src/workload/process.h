/**
 * @file
 * A synthetic process: owns an address space in a SpurSystem and generates
 * a reference stream according to its ProcessProfile.
 */
#ifndef SPUR_WORKLOAD_PROCESS_H_
#define SPUR_WORKLOAD_PROCESS_H_

#include <array>
#include <cstdint>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/workload/host.h"
#include "src/workload/profile.h"

namespace spur::workload {

/** Process-VA layout constants: one segment register per region kind
 *  (top two address bits select the register, see pt::SegmentMap), so
 *  text or data can be shared between processes at segment granularity. */
inline constexpr ProcessAddr kCodeBase = 0x00000000;   // Segment 0.
inline constexpr ProcessAddr kDataBase = 0x40000000;   // Segment 1.
inline constexpr ProcessAddr kHeapBase = 0x80000000;   // Segment 2.
inline constexpr ProcessAddr kStackBase = 0xC0000000;  // Segment 3.

/** Segment-register indexes of the regions. */
inline constexpr unsigned kCodeSeg = 0;
inline constexpr unsigned kDataSeg = 1;

/**
 * Sharing instructions for a new process: reuse another process's text
 * and/or data segment instead of mapping private regions (Sprite's
 * sticky text and file-cache effects for repeatedly invoked tools).
 */
struct ShareSpec {
    Pid owner = 0;
    bool text = false;
    bool data = false;
};

/**
 * Maps the data segment for @p profile on @p pid: when the profile writes
 * output files, the lower half (input files, read through the file cache)
 * is mapped read-only and the upper half (output files) read-write;
 * otherwise the whole region is file-cache.
 */
void MapDataSegment(WorkloadHost& system, Pid pid,
                    const ProcessProfile& profile);

/** One live synthetic process. */
class SyntheticProcess
{
  public:
    /**
     * Creates the process in @p system and maps its regions.
     * @param seed  deterministic per-process random seed.
     */
    SyntheticProcess(WorkloadHost& system, const ProcessProfile& profile,
                     uint64_t seed, const ShareSpec* share = nullptr);

    /** Tears the process down in the system (frees all its pages). */
    ~SyntheticProcess();

    SyntheticProcess(const SyntheticProcess&) = delete;
    SyntheticProcess& operator=(const SyntheticProcess&) = delete;

    /** Generates and returns the next memory reference. */
    MemRef Next();

    /**
     * Fills @p out with up to @p max references and returns how many were
     * generated (short only when the process finishes).  Exactly the
     * stream a sequence of Next() calls would produce: the generator is
     * pure (rng + cursors, no feedback from the system), so batching
     * cannot change it.
     */
    size_t NextBatch(MemRef* out, size_t max)
    {
        size_t n = 0;
        while (n < max && !Done()) {
            out[n++] = Next();
        }
        return n;
    }

    /** Issues the next reference directly into the system. */
    void Step() { system_.Access(Next()); }

    /** True once lifetime_refs references have been generated. */
    bool Done() const
    {
        return profile_.lifetime_refs != 0 &&
               refs_issued_ >= profile_.lifetime_refs;
    }

    Pid pid() const { return pid_; }
    const ProcessProfile& profile() const { return profile_; }
    uint64_t refs_issued() const { return refs_issued_; }

  private:
    WorkloadHost& system_;
    ProcessProfile profile_;
    Rng rng_;
    Pid pid_;
    uint64_t refs_issued_ = 0;

    unsigned page_shift_;
    uint32_t block_bytes_;
    uint32_t page_bytes_;

    // Normalized cumulative generator weights.
    std::array<double, 6> gen_cdf_{};

    // ---- Generator state ----------------------------------------------------
    // Instruction-fetch loop model.
    ProcessAddr loop_base_ = 0;   ///< First block of the current loop body.
    uint32_t loop_blocks_ = 1;    ///< Body length in blocks.
    uint32_t loop_iters_left_ = 1;///< Iterations remaining.
    uint32_t loop_block_idx_ = 0; ///< Current block within the body.
    uint32_t loop_offset_ = 0;    ///< Byte offset within the block.
    uint32_t code_ws_base_ = 0;   ///< Hot-code window base page.
    ProcessAddr seq_read_pos_;    ///< Data-scan cursor.
    ProcessAddr alloc_front_;     ///< Heap allocation cursor (seq_write).
    ProcessAddr file_write_pos_;  ///< Output-file cursor (file_write).
    uint32_t heap_ws_base_ = 0;   ///< Heap working-set window base page.
    // Pending write burst (rmw completion, rand/stack store runs).
    ProcessAddr burst_addr_ = 0;  ///< Next word to write, or 0.
    uint32_t burst_words_ = 0;    ///< Words remaining in the burst.
    // scan_update state machine.
    ProcessAddr scan_page_ = 0;   ///< Page being scanned (0 = pick new).
    uint32_t scan_index_ = 0;     ///< Next block within the burst.
    bool scan_writing_ = false;   ///< Read phase vs. write-back phase.

    MemRef MakeIFetch();
    void PickNextLoop();
    MemRef MakeDataRef();
    MemRef GenSeqRead();
    MemRef GenSeqWrite();
    MemRef GenRmw();
    MemRef GenScanUpdate();
    MemRef GenRand();
    MemRef GenStack();
    MemRef GenFileWrite();

    /** Starts a write burst at @p addr, clipped to its cache block, and
     *  returns the first write of the burst. */
    MemRef StartBurst(ProcessAddr addr, uint32_t words);

    /** Picks a page within [base, base+window) of a region via Zipf. */
    uint32_t ZipfPage(uint32_t window_base, uint32_t window_pages,
                      uint32_t region_pages);

    /** A random block-aligned address inside @p region_base + page. */
    ProcessAddr BlockAddr(ProcessAddr region_base, uint32_t page,
                          uint32_t block);

    MemRef Ref(ProcessAddr addr, AccessType type)
    {
        return MemRef{pid_, addr, type};
    }
};

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_PROCESS_H_

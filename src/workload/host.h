/**
 * @file
 * The machine surface workloads are written against.
 *
 * The synthetic processes and the job driver only need to create address
 * spaces, map regions, share segments, and issue references; any machine
 * that provides those — the uniprocessor SPUR system, the TLB baseline —
 * can run the same WorkloadSpec, which is what makes cross-machine
 * comparisons (bench/ablation_tlb_baseline) meaningful.
 */
#ifndef SPUR_WORKLOAD_HOST_H_
#define SPUR_WORKLOAD_HOST_H_

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/sim/config.h"
#include "src/vm/region.h"

namespace spur::workload {

/** A machine that can host synthetic workloads. */
class WorkloadHost
{
  public:
    virtual ~WorkloadHost() = default;

    /** Creates a process with private segments; returns its pid. */
    virtual Pid CreateProcess() = 0;

    /** Tears down a process and frees its pages. */
    virtual void DestroyProcess(Pid pid) = 0;

    /** Declares a region of @p pid's address space. */
    virtual void MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                           vm::PageKind kind) = 0;

    /** Points @p pid's segment register at @p other's (shared memory). */
    virtual void ShareSegment(Pid pid, unsigned reg, Pid other,
                              unsigned other_reg) = 0;

    /** Executes one memory reference. */
    virtual void Access(const MemRef& ref) = 0;

    /**
     * Executes @p n references in issue order.  Semantically identical to
     * calling Access() on each element of @p refs in sequence — hosts may
     * override it only to amortize per-call dispatch, never to reorder.
     * The default is exactly that per-reference loop, so hosts that do
     * not care (the TLB baseline, the multiprocessor ports, test fakes)
     * inherit unchanged behaviour.
     */
    virtual void AccessBatch(const MemRef* refs, size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            Access(refs[i]);
        }
    }

    /** Accounts a context switch. */
    virtual void OnContextSwitch() = 0;

    /** The machine parameters. */
    virtual const sim::MachineConfig& config() const = 0;
};

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_HOST_H_

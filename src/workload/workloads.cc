#include "src/workload/workloads.h"

namespace spur::workload {

namespace {

/** The espresso PLA optimizer running in the background: long-lived,
 *  large heap, heavy read-modify-write over a sliding working set. */
ProcessProfile
EspressoProfile()
{
    ProcessProfile p;
    p.name = "espresso-bg";
    p.code_pages = 64;    // ~256 KB text.
    p.data_pages = 96;    // The large input PLA.
    p.heap_pages = 450;   // ~3.6 MB of cover/cube structures.
    p.stack_pages = 12;
    p.frac_ifetch = 0.71;
    p.w_seq_read = 0.55;
    p.w_seq_write = 0.938;
    p.w_rmw = 0.09;
    p.w_scan_update = 0.0714;
    p.w_rand = 1.9;
    p.w_file_write = 0.30;  // Periodic solution checkpoints.
    p.rand_write_frac = 0.08;
    p.heap_ws_pages = 240;
    p.ws_slide_prob = 3e-4;
    p.code_ws_pages = 20;
    p.lifetime_refs = 0;  // Runs for the whole script.
    return p;
}

/** One cc invocation: read sources/headers, build ASTs in fresh heap. */
ProcessProfile
CompileProfile()
{
    ProcessProfile p;
    p.name = "cc";
    p.code_pages = 110;   // Compiler text.
    p.data_pages = 90;   // Source + headers, scanned.
    p.heap_pages = 260;   // Fresh ASTs and symbol tables: zfod volume.
    p.stack_pages = 20;
    p.frac_ifetch = 0.69;
    p.w_seq_read = 1.1;
    p.w_seq_write = 1.88;  // Allocation-heavy.
    p.w_rmw = 0.08;
    p.w_scan_update = 0.0612;
    p.w_rand = 1.0;
    p.w_file_write = 0.75;  // Emitting the object file.
    p.rand_write_frac = 0.07;
    p.heap_ws_pages = 90;
    p.ws_slide_prob = 8e-4;  // Pass structure: front advances steadily.
    p.code_ws_pages = 30;
    p.lifetime_refs = 1'100'000;
    return p;
}

/** Linking the CAD tool: streams object files, emits the image. */
ProcessProfile
LinkProfile()
{
    ProcessProfile p;
    p.name = "ld";
    p.code_pages = 40;
    p.data_pages = 200;   // Object files read through.
    p.heap_pages = 180;   // Output image + symbol tables.
    p.stack_pages = 10;
    p.frac_ifetch = 0.62;
    p.w_seq_read = 2.2;
    p.w_seq_write = 2;
    p.w_rmw = 0.05;
    p.w_scan_update = 0.0408;
    p.w_rand = 0.5;
    p.w_file_write = 1.1;   // Writing the linked image.
    p.rand_write_frac = 0.06;
    p.heap_ws_pages = 100;
    p.ws_slide_prob = 1e-3;
    p.code_ws_pages = 16;
    p.lifetime_refs = 700'000;
    return p;
}

/** Debugging espresso: big symbol tables, read-mostly random probes. */
ProcessProfile
DebugProfile()
{
    ProcessProfile p;
    p.name = "dbx";
    p.code_pages = 130;
    p.data_pages = 200;   // Symbol tables and the debuggee image.
    p.heap_pages = 100;
    p.stack_pages = 16;
    p.frac_ifetch = 0.72;
    p.w_seq_read = 1.0;
    p.w_seq_write = 0.438;
    p.w_rmw = 0.07;
    p.w_scan_update = 0.0408;
    p.w_rand = 1.8;        // Pointer chasing.
    p.w_file_write = 0.08;
    p.rand_write_frac = 0.07;
    p.heap_ws_pages = 70;
    p.ws_slide_prob = 5e-4;
    p.code_ws_pages = 36;
    p.lifetime_refs = 1'400'000;
    return p;
}

/** Edits and miscellaneous file/directory commands. */
ProcessProfile
EditProfile()
{
    ProcessProfile p;
    p.name = "edit-misc";
    p.code_pages = 48;
    p.data_pages = 70;
    p.heap_pages = 60;
    p.stack_pages = 10;
    p.frac_ifetch = 0.70;
    p.w_seq_read = 1.4;
    p.w_seq_write = 1.12;
    p.w_rmw = 0.09;
    p.w_scan_update = 0.051;
    p.w_rand = 1.0;
    p.w_file_write = 0.55;  // Saving edited files.
    p.rand_write_frac = 0.08;
    p.heap_ws_pages = 40;
    p.ws_slide_prob = 6e-4;
    p.code_ws_pages = 18;
    p.lifetime_refs = 350'000;
    return p;
}

/** A periodic performance monitor: small, short, touches kernel stats. */
ProcessProfile
MonitorProfile(const char* name)
{
    ProcessProfile p;
    p.name = name;
    p.code_pages = 12;
    p.data_pages = 40;    // The tables it reports from.
    p.heap_pages = 8;
    p.stack_pages = 4;
    p.frac_ifetch = 0.68;
    p.w_seq_read = 2.0;
    p.w_seq_write = 0.5;
    p.w_rmw = 0.06;
    p.w_scan_update = 0.012;
    p.w_rand = 0.6;
    p.w_file_write = 0.15;  // Appending the report log.
    p.rand_write_frac = 0.08;
    p.heap_ws_pages = 8;
    p.code_ws_pages = 8;
    p.lifetime_refs = 70'000;
    return p;
}

/** The resident SPUR Common Lisp system: huge heap, allocation front. */
ProcessProfile
LispSystemProfile()
{
    ProcessProfile p;
    p.name = "slc-lisp";
    p.code_pages = 220;    // The Lisp image text.
    p.data_pages = 130;    // Loaded fasl/benchmark sources.
    p.heap_pages = 1400;   // ~6 MB cons space.
    p.stack_pages = 24;
    p.frac_ifetch = 0.70;
    p.w_seq_read = 0.5;
    p.w_seq_write = 0.18;   // Cons allocation: the N_zfod producer.
    p.w_rmw = 0.05;
    p.w_scan_update = 0.06;
    p.w_rand = 1.7;
    p.w_file_write = 0.28;  // Writing compiled fasl output.
    p.rand_write_frac = 0.1;
    p.heap_ws_pages = 900;
    p.ws_slide_prob = 2.5e-4;
    p.code_ws_pages = 40;
    p.lifetime_refs = 0;
    return p;
}

/** One compiler task inside SLC: compiling a benchmark file. */
ProcessProfile
LispCompileProfile()
{
    ProcessProfile p;
    p.name = "slc-compile";
    p.code_pages = 90;
    p.data_pages = 160;
    p.heap_pages = 70;
    p.stack_pages = 16;
    p.frac_ifetch = 0.69;
    p.w_seq_read = 1.0;
    p.w_seq_write = 0.35;
    p.w_rmw = 0.05;
    p.w_scan_update = 0.084;
    p.w_rand = 1.1;
    p.w_file_write = 1.3;   // The compiled output file.
    p.rand_write_frac = 0.07;
    p.heap_ws_pages = 45;
    p.ws_slide_prob = 7e-4;
    p.code_ws_pages = 28;
    p.lifetime_refs = 650'000;
    return p;
}

}  // namespace

WorkloadSpec
MakeWorkload1()
{
    WorkloadSpec spec;
    spec.name = "WORKLOAD1";
    // The background optimizer runs throughout.
    spec.jobs.push_back(JobSpec{EspressoProfile(), 0, 1, 0});
    // Two interleaved compile streams: the edit-compile cycle.
    spec.jobs.push_back(JobSpec{CompileProfile(), 50'000, 2, 260'000});
    // Link after the first compiles complete, then repeatedly.
    spec.jobs.push_back(JobSpec{LinkProfile(), 1'500'000, 1, 1'700'000});
    // Debug sessions between builds.
    spec.jobs.push_back(JobSpec{DebugProfile(), 2'600'000, 1, 1'900'000,
                                /*share_text=*/true, /*share_data=*/true});
    // Edits and miscellaneous commands all along.
    spec.jobs.push_back(JobSpec{EditProfile(), 120'000, 1, 420'000});
    // Two periodic monitors (VM status and CPU performance).
    spec.jobs.push_back(JobSpec{MonitorProfile("vmstat"), 0, 1, 380'000,
                                /*share_text=*/true, /*share_data=*/true});
    spec.jobs.push_back(JobSpec{MonitorProfile("cpustat"), 190'000, 1,
                                380'000, /*share_text=*/true,
                                /*share_data=*/true});
    return spec;
}

WorkloadSpec
MakeSlc()
{
    WorkloadSpec spec;
    spec.name = "SLC";
    spec.jobs.push_back(JobSpec{LispSystemProfile(), 0, 1, 0});
    // A steady stream of benchmark compilations.
    spec.jobs.push_back(JobSpec{LispCompileProfile(), 30'000, 1, 100'000});
    return spec;
}

WorkloadSpec
MakeDevMachine(double intensity)
{
    WorkloadSpec spec;
    spec.name = "dev-machine";

    // A long-lived login session: editor buffers, a window-less shell,
    // mail folders.  Sized with the machine (users with big machines run
    // big jobs), read-biased, with a modest stream of file saves.
    ProcessProfile session;
    session.name = "session";
    // Sessions run many different programs over the window; their text
    // cycles through memory as clean read-only pages (the bulk of the
    // paper's page-in traffic on these hosts).
    session.code_pages = static_cast<uint32_t>(350 * intensity);
    session.data_pages = static_cast<uint32_t>(140 * intensity);
    session.heap_pages = static_cast<uint32_t>(1400 * intensity);
    session.stack_pages = 16;
    session.frac_ifetch = 0.70;
    session.w_seq_read = 1.6;
    session.w_seq_write = 0.5;
    session.w_rmw = 0.10;
    session.w_scan_update = 0.08;
    session.w_rand = 1.6;
    session.w_file_write = 0.35;
    session.rand_write_frac = 0.07;
    session.file_reread_frac = 0.45;
    session.heap_ws_pages = static_cast<uint32_t>(500 * intensity);
    session.ws_slide_prob = 2.5e-4;
    session.code_ws_pages = 36;
    session.lifetime_refs = 0;
    spec.jobs.push_back(JobSpec{session, 0, 1, 0});

    // Kernel builds and tool compiles: two parallel streams.
    ProcessProfile compile = CompileProfile();
    compile.heap_pages = static_cast<uint32_t>(300 * intensity);
    compile.data_pages = static_cast<uint32_t>(120 * intensity);
    spec.jobs.push_back(JobSpec{compile, 80'000, 2, 300'000});

    // Linking the build results.
    ProcessProfile link = LinkProfile();
    link.data_pages = static_cast<uint32_t>(220 * intensity);
    spec.jobs.push_back(JobSpec{link, 1'200'000, 1, 2'400'000});

    // Paper/dissertation writing: mostly reads, few dirty pages.
    ProcessProfile tex = DebugProfile();
    tex.name = "latex";
    tex.data_pages = static_cast<uint32_t>(220 * intensity);
    tex.rand_write_frac = 0.05;
    tex.w_seq_write = 0.3;
    tex.lifetime_refs = 900'000;
    spec.jobs.push_back(JobSpec{tex, 500'000, 1, 1'500'000,
                                /*share_text=*/true, /*share_data=*/true});

    // Mail reading: small, frequent.
    spec.jobs.push_back(JobSpec{MonitorProfile("mail"), 0, 1, 700'000,
                                /*share_text=*/true, /*share_data=*/true});
    return spec;
}

// ---------------------------------------------------------------------------
// The scenario library (workloads.h): VAC-stress scripts beyond the
// paper.  Budgets and knobs are chosen so each scenario exaggerates one
// flush/teardown axis while staying inside the 5-8 MB memories the
// Table 3.x benches sweep.
// ---------------------------------------------------------------------------

namespace {

/** A small interactive process for the ctx-switch scenario. */
ProcessProfile
InteractiveProfile(const char* name, uint32_t heap_pages)
{
    ProcessProfile p;
    p.name = name;
    p.code_pages = 40;
    p.data_pages = 36;
    p.heap_pages = heap_pages;
    p.stack_pages = 8;
    p.frac_ifetch = 0.72;
    p.w_seq_read = 1.0;
    p.w_seq_write = 0.5;
    p.w_rmw = 0.08;
    p.w_scan_update = 0.04;
    p.w_rand = 1.4;
    p.w_file_write = 0.12;
    p.rand_write_frac = 0.08;
    p.heap_ws_pages = heap_pages / 2;
    p.ws_slide_prob = 4e-4;
    p.code_ws_pages = 16;
    p.lifetime_refs = 0;  // Sessions last the whole script.
    return p;
}

/** A short-lived writer that dirties most of what it touches. */
ProcessProfile
DirtyBurstProfile(const char* name)
{
    ProcessProfile p;
    p.name = name;
    p.code_pages = 36;
    p.data_pages = 160;   // The output files it streams.
    p.heap_pages = 200;   // Scratch buffers, freshly allocated.
    p.stack_pages = 8;
    p.frac_ifetch = 0.62;
    p.w_seq_read = 0.6;
    p.w_seq_write = 2.0;   // Allocation front: zfod pages.
    p.w_rmw = 0.06;
    p.w_scan_update = 0.30;  // Read-then-write-back passes.
    p.w_rand = 0.5;
    p.w_file_write = 2.6;  // The storm: streaming dirty output.
    p.rand_write_frac = 0.15;
    p.file_reread_frac = 0.10;  // Nearly everything stays dirty.
    p.heap_ws_pages = 120;
    p.ws_slide_prob = 1.5e-3;
    p.code_ws_pages = 14;
    p.lifetime_refs = 150'000;  // Exit fast: teardown IS the workload.
    return p;
}

/** One request handler in the server-churn scenario. */
ProcessProfile
HandlerProfile()
{
    ProcessProfile p;
    p.name = "handler";
    p.code_pages = 90;    // Shared with every sibling (sticky text).
    p.data_pages = 48;    // The request and response buffers.
    p.heap_pages = 110;   // Per-request allocation: zfod churn.
    p.stack_pages = 10;
    p.frac_ifetch = 0.68;
    p.w_seq_read = 1.0;
    p.w_seq_write = 1.6;
    p.w_rmw = 0.08;
    p.w_scan_update = 0.06;
    p.w_rand = 1.1;
    p.w_file_write = 0.9;   // Writing the reply.
    p.rand_write_frac = 0.09;
    p.heap_ws_pages = 60;
    p.ws_slide_prob = 1e-3;
    p.code_ws_pages = 24;
    p.lifetime_refs = 90'000;  // One request's worth of work.
    return p;
}

}  // namespace

WorkloadSpec
MakeCtxSwitchHeavy()
{
    WorkloadSpec spec;
    spec.name = "ctx-switch";
    // The stress is the schedule, not the footprints: a dozen small
    // long-lived processes on a ~13x shorter quantum than the paper
    // workloads, so per-switch costs (context flushes, cache
    // repopulation) stop amortizing.
    spec.slice_refs = 1500;
    spec.jobs.push_back(JobSpec{InteractiveProfile("xterm", 56), 0, 4, 0});
    spec.jobs.push_back(
        JobSpec{InteractiveProfile("editor", 80), 10'000, 3, 0});
    spec.jobs.push_back(
        JobSpec{InteractiveProfile("repl", 64), 20'000, 3, 0});
    // Two monitors add spawn/teardown seasoning without dominating.
    spec.jobs.push_back(JobSpec{MonitorProfile("vmstat"), 0, 1, 300'000,
                                /*share_text=*/true, /*share_data=*/true});
    spec.jobs.push_back(JobSpec{MonitorProfile("top"), 150'000, 1,
                                300'000, /*share_text=*/true,
                                /*share_data=*/true});
    return spec;
}

WorkloadSpec
MakeFlushStorm()
{
    WorkloadSpec spec;
    spec.name = "flush-storm";
    // A resident coordinator keeps baseline pressure on the cache.
    ProcessProfile master = EspressoProfile();
    master.name = "build-master";
    master.heap_pages = 300;
    master.heap_ws_pages = 160;
    spec.jobs.push_back(JobSpec{master, 0, 1, 0});
    // The storm: four concurrent short-lived writers, respawning
    // almost immediately — every ~40k refs some process exits with
    // hundreds of dirty pages to flush and free.
    spec.jobs.push_back(
        JobSpec{DirtyBurstProfile("burst-writer"), 20'000, 4, 30'000});
    // A slower wave with bigger output, out of phase with the first.
    ProcessProfile heavy = DirtyBurstProfile("burst-heavy");
    heavy.data_pages = 260;
    heavy.lifetime_refs = 320'000;
    spec.jobs.push_back(JobSpec{heavy, 250'000, 2, 120'000});
    return spec;
}

WorkloadSpec
MakeServerChurn()
{
    WorkloadSpec spec;
    spec.name = "server-churn";
    // The frontend: long-lived, read-mostly, owns the shared text the
    // handlers reuse across their short lives.
    ProcessProfile frontend;
    frontend.name = "frontend";
    frontend.code_pages = 140;
    frontend.data_pages = 120;
    frontend.heap_pages = 260;
    frontend.stack_pages = 12;
    frontend.frac_ifetch = 0.71;
    frontend.w_seq_read = 1.2;
    frontend.w_seq_write = 0.4;
    frontend.w_rmw = 0.08;
    frontend.w_scan_update = 0.05;
    frontend.w_rand = 1.5;
    frontend.w_file_write = 0.25;
    frontend.heap_ws_pages = 150;
    frontend.ws_slide_prob = 3e-4;
    frontend.code_ws_pages = 32;
    frontend.lifetime_refs = 0;
    spec.jobs.push_back(JobSpec{frontend, 0, 1, 0});
    // Six concurrent handlers, respawning ~9 lifetimes per million
    // refs each: address-space creation/teardown as the steady state.
    spec.jobs.push_back(JobSpec{HandlerProfile(), 5'000, 6, 10'000});
    // An access logger appending continuously (steady dirty trickle).
    ProcessProfile logger = MonitorProfile("access-log");
    logger.w_file_write = 0.9;
    logger.lifetime_refs = 0;
    spec.jobs.push_back(JobSpec{logger, 0, 1, 0});
    return spec;
}

WorkloadSpec
MakeGcSweep()
{
    WorkloadSpec spec;
    spec.name = "gc-sweep";
    // The Lisp image: a ~7 MB heap walked linearly by the collector
    // (scan_update reads a run of blocks and writes survivors back)
    // while the allocation front keeps minting zero-fill pages.  The
    // working-set window is small but slides fast, which is what makes
    // the walk linear rather than Zipf-resident.
    ProcessProfile image;
    image.name = "gc-image";
    image.code_pages = 200;
    image.data_pages = 120;
    image.heap_pages = 1700;
    image.stack_pages = 20;
    image.frac_ifetch = 0.64;
    image.w_seq_read = 0.4;
    image.w_seq_write = 0.9;     // The allocation front (N_zfod).
    image.w_rmw = 0.05;
    image.w_scan_update = 1.3;   // The sweep itself dominates data refs.
    image.w_rand = 0.6;
    image.w_file_write = 0.15;
    image.rand_write_frac = 0.10;
    image.heap_ws_pages = 280;
    image.ws_slide_prob = 4e-3;  // Advance the sweep window briskly.
    image.code_ws_pages = 36;
    image.lifetime_refs = 0;
    spec.jobs.push_back(JobSpec{image, 0, 1, 0});
    // A mutator thread of work (the program the GC serves).
    ProcessProfile mutator = LispCompileProfile();
    mutator.name = "gc-mutator";
    spec.jobs.push_back(JobSpec{mutator, 40'000, 1, 150'000});
    return spec;
}

}  // namespace spur::workload

/**
 * @file
 * The paper's synthetic workloads, rebuilt as WorkloadSpecs.
 *
 * WORKLOAD1 (Section 2): "a moderately heavy load for a CAD tool
 * developer" — compilation of several modules, link and debug of a
 * ~12000-line CAD tool (espresso), the same tool running in the
 * background optimizing a large PLA, plus edit/miscellaneous commands
 * and two periodic performance monitors.
 *
 * SLC (Section 2): the SPUR Common Lisp system with its compiler
 * compiling a set of benchmark programs — a large allocation-heavy heap
 * (the N_zfod producer) with compiler phases on top.
 *
 * Development machines (Table 3.5): software-development day workloads
 * at 8/12/16 MB used to measure how many replaced writable pages were
 * actually modified.
 */
#ifndef SPUR_WORKLOAD_WORKLOADS_H_
#define SPUR_WORKLOAD_WORKLOADS_H_

#include <cstdint>

#include "src/workload/driver.h"

namespace spur::workload {

/** The CAD-developer script (Section 2's WORKLOAD1). */
WorkloadSpec MakeWorkload1();

/** The SPUR Common Lisp compiler script (Section 2's SLC). */
WorkloadSpec MakeSlc();

/**
 * A development-machine day for Table 3.5.
 *
 * @param intensity  relative activity level: >1 means more and bigger
 *                   jobs (the paper's hosts differ in load; users also
 *                   self-schedule big jobs onto big-memory machines).
 */
WorkloadSpec MakeDevMachine(double intensity);

// ---------------------------------------------------------------------------
// The scenario library (DESIGN.md §19): scripts modeled on real VAC
// management beyond the paper's two workloads.  SPARC's vac-ops.h (see
// ROADMAP.md) names the three flush granularities a VAC kernel lives
// by — context, segment and page flushes — and each scenario leans on
// one of them.
// ---------------------------------------------------------------------------

/**
 * Context-switch-heavy: a dozen small interactive processes scheduled
 * on a deliberately short quantum (WorkloadSpec::slice_refs), so
 * context switches — and the context-flush work they imply — dominate
 * instead of amortizing away.
 */
WorkloadSpec MakeCtxSwitchHeavy();

/**
 * Flush-storm: waves of short-lived processes that dirty most of what
 * they touch (output files, scan-update passes) and then exit, so page
 * teardown arrives in bursts — the segment/page flush storms of SPARC's
 * vac_flush_segment/vac_flush_page paths.
 */
WorkloadSpec MakeFlushStorm();

/**
 * Multi-tenant server churn: one long-lived frontend whose text every
 * short-lived request handler shares (Sprite's sticky text), with
 * handlers respawning fast enough that address-space creation and
 * teardown is the steady state, as on a busy timesharing host.
 */
WorkloadSpec MakeServerChurn();

/**
 * GC-sweep: a Lisp image whose collector walks a multi-megabyte heap
 * linearly — read a page, write back its survivors, advance — on top
 * of an allocation front that keeps producing zero-fill pages (the
 * N_zfod machinery at its worst).
 */
WorkloadSpec MakeGcSweep();

/** Default reference budget for one WORKLOAD1 run. */
inline constexpr uint64_t kWorkload1Refs = 24'000'000;

/** Default reference budget for one SLC run. */
inline constexpr uint64_t kSlcRefs = 20'000'000;

/** Default reference budget for one dev-machine observation window. */
inline constexpr uint64_t kDevMachineRefs = 30'000'000;

/** Default reference budget for one ctx-switch run. */
inline constexpr uint64_t kCtxSwitchRefs = 16'000'000;

/** Default reference budget for one flush-storm run. */
inline constexpr uint64_t kFlushStormRefs = 16'000'000;

/** Default reference budget for one server-churn run. */
inline constexpr uint64_t kServerChurnRefs = 18'000'000;

/** Default reference budget for one gc-sweep run. */
inline constexpr uint64_t kGcSweepRefs = 20'000'000;

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_WORKLOADS_H_

/**
 * @file
 * The paper's synthetic workloads, rebuilt as WorkloadSpecs.
 *
 * WORKLOAD1 (Section 2): "a moderately heavy load for a CAD tool
 * developer" — compilation of several modules, link and debug of a
 * ~12000-line CAD tool (espresso), the same tool running in the
 * background optimizing a large PLA, plus edit/miscellaneous commands
 * and two periodic performance monitors.
 *
 * SLC (Section 2): the SPUR Common Lisp system with its compiler
 * compiling a set of benchmark programs — a large allocation-heavy heap
 * (the N_zfod producer) with compiler phases on top.
 *
 * Development machines (Table 3.5): software-development day workloads
 * at 8/12/16 MB used to measure how many replaced writable pages were
 * actually modified.
 */
#ifndef SPUR_WORKLOAD_WORKLOADS_H_
#define SPUR_WORKLOAD_WORKLOADS_H_

#include <cstdint>

#include "src/workload/driver.h"

namespace spur::workload {

/** The CAD-developer script (Section 2's WORKLOAD1). */
WorkloadSpec MakeWorkload1();

/** The SPUR Common Lisp compiler script (Section 2's SLC). */
WorkloadSpec MakeSlc();

/**
 * A development-machine day for Table 3.5.
 *
 * @param intensity  relative activity level: >1 means more and bigger
 *                   jobs (the paper's hosts differ in load; users also
 *                   self-schedule big jobs onto big-memory machines).
 */
WorkloadSpec MakeDevMachine(double intensity);

/** Default reference budget for one WORKLOAD1 run. */
inline constexpr uint64_t kWorkload1Refs = 24'000'000;

/** Default reference budget for one SLC run. */
inline constexpr uint64_t kSlcRefs = 20'000'000;

/** Default reference budget for one dev-machine observation window. */
inline constexpr uint64_t kDevMachineRefs = 30'000'000;

}  // namespace spur::workload

#endif  // SPUR_WORKLOAD_WORKLOADS_H_

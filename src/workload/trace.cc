#include "src/workload/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/log.h"
#include "src/vm/region.h"

namespace spur::workload {

namespace {

// FNV-1a 64, byte-compatible with the §13 stream digest: payload bytes
// followed by a '\n' separator so payload boundaries cannot alias.
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/** Frame payloads larger than this are corruption, not trace data. */
constexpr uint64_t kMaxFramePayload = 1ULL << 30;

/** Flush an open op batch into a B frame at this size. */
constexpr size_t kBatchFlushBytes = 64 * 1024;

/** Highest valid vm::PageKind value in an op payload. */
constexpr uint8_t kMaxPageKind =
    static_cast<uint8_t>(vm::PageKind::kFileCache);

/** Highest valid segment-register index in a share op. */
constexpr uint8_t kMaxSegReg = 3;

// Op opcodes (see the format comment in trace.h).
constexpr uint8_t kOpCreate = 0;
constexpr uint8_t kOpDestroy = 1;
constexpr uint8_t kOpMapRegion = 2;
constexpr uint8_t kOpShare = 3;
constexpr uint8_t kOpSwitch = 4;
constexpr uint8_t kOpSetPid = 5;
constexpr uint8_t kOpIFetch = 6;
constexpr uint8_t kOpRead = 7;
constexpr uint8_t kOpWrite = 8;

uint64_t
Mix(uint64_t digest, const std::string& payload)
{
    for (const char c : payload) {
        digest ^= static_cast<unsigned char>(c);
        digest *= kFnvPrime;
    }
    digest ^= static_cast<unsigned char>('\n');
    digest *= kFnvPrime;
    return digest;
}

std::string
DigestHex(uint64_t digest)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buffer;
}

std::string
FormatUint(uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    return buffer;
}

/** Canonical double rendering; Identity() and the S payload share it. */
std::string
FormatDouble(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string
EncodeFrame(char tag, const std::string& payload)
{
    std::string frame;
    frame.reserve(payload.size() + 16);
    frame.push_back(tag);
    frame.push_back(' ');
    frame += FormatUint(payload.size());
    frame.push_back('\n');
    frame += payload;
    frame.push_back('\n');
    return frame;
}

std::string
HeaderPayload()
{
    return "{\"trace_version\": " + FormatUint(kTraceVersion) + "}";
}

std::string
MetaPayload(const TraceStreamMeta& meta)
{
    std::string payload = "{\"workload\": \"";
    payload += meta.workload;
    payload += "\", \"seed\": " + FormatUint(meta.seed);
    payload += ", \"refs\": " + FormatUint(meta.refs);
    payload += ", \"intensity\": " + FormatDouble(meta.intensity);
    payload += ", \"page_bytes\": " + FormatUint(meta.page_bytes);
    payload += ", \"block_bytes\": " + FormatUint(meta.block_bytes);
    payload += "}";
    return payload;
}

std::string
EndPayload(uint64_t ops, uint64_t accesses, uint64_t refs_issued,
           uint64_t digest)
{
    std::string payload = "{\"ops\": " + FormatUint(ops);
    payload += ", \"accesses\": " + FormatUint(accesses);
    payload += ", \"refs_issued\": " + FormatUint(refs_issued);
    payload += ", \"digest\": \"" + DigestHex(digest) + "\"}";
    return payload;
}

std::string
TrailerPayload(uint64_t streams, uint64_t digest)
{
    return "{\"streams\": " + FormatUint(streams) + ", \"digest\": \"" +
           DigestHex(digest) + "\"}";
}

// ---------------------------------------------------------------------------
// Strict payload scanners.  The parser accepts exactly the writer's
// rendering — key order, spacing, no escapes, no leading zeros — so
// every accepted payload re-serializes byte-identically (the fuzzer's
// fix-point property) and any deviation is corruption, never a guess.
// ---------------------------------------------------------------------------

bool
ScanLiteral(const std::string& s, size_t* pos, const char* literal)
{
    const size_t n = std::strlen(literal);
    if (s.compare(*pos, n, literal) != 0) {
        return false;
    }
    *pos += n;
    return true;
}

bool
ScanUint(const std::string& s, size_t* pos, uint64_t* out)
{
    size_t p = *pos;
    uint64_t value = 0;
    size_t digits = 0;
    while (p < s.size() && s[p] >= '0' && s[p] <= '9') {
        const uint64_t digit = static_cast<uint64_t>(s[p] - '0');
        if (value > (~uint64_t{0} - digit) / 10) {
            return false;
        }
        value = value * 10 + digit;
        ++digits;
        ++p;
    }
    if (digits == 0 || (digits > 1 && s[*pos] == '0')) {
        return false;
    }
    *pos = p;
    *out = value;
    return true;
}

/** A quoted string with no escapes: printable ASCII minus '"' and '\\'. */
bool
ScanQuoted(const std::string& s, size_t* pos, std::string* out)
{
    size_t p = *pos;
    if (p >= s.size() || s[p] != '"') {
        return false;
    }
    ++p;
    const size_t start = p;
    while (p < s.size() && s[p] != '"') {
        const char c = s[p];
        if (c < 0x20 || c > 0x7e || c == '\\') {
            return false;
        }
        ++p;
    }
    if (p >= s.size()) {
        return false;
    }
    out->assign(s, start, p - start);
    *pos = p + 1;
    return true;
}

/** A double token that round-trips through the canonical rendering. */
bool
ScanDouble(const std::string& s, size_t* pos, double* out)
{
    size_t p = *pos;
    const size_t start = p;
    while (p < s.size() &&
           (std::strchr("0123456789.eE+-", s[p]) != nullptr)) {
        ++p;
    }
    if (p == start) {
        return false;
    }
    const std::string token = s.substr(start, p - start);
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
        return false;
    }
    if (FormatDouble(value) != token) {
        return false;
    }
    *pos = p;
    *out = value;
    return true;
}

bool
ScanHexDigest(const std::string& s, size_t* pos, uint64_t* out)
{
    std::string hex;
    if (!ScanQuoted(s, pos, &hex) || hex.size() != 16) {
        return false;
    }
    uint64_t value = 0;
    for (const char c : hex) {
        uint64_t nibble = 0;
        if (c >= '0' && c <= '9') {
            nibble = static_cast<uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            nibble = static_cast<uint64_t>(c - 'a') + 10;
        } else {
            return false;
        }
        value = (value << 4) | nibble;
    }
    *out = value;
    return true;
}

bool
ParseHeaderPayload(const std::string& payload)
{
    return payload == HeaderPayload();
}

bool
ParseMetaPayload(const std::string& payload, TraceStreamMeta* meta)
{
    size_t pos = 0;
    if (!ScanLiteral(payload, &pos, "{\"workload\": ") ||
        !ScanQuoted(payload, &pos, &meta->workload) ||
        !ScanLiteral(payload, &pos, ", \"seed\": ") ||
        !ScanUint(payload, &pos, &meta->seed) ||
        !ScanLiteral(payload, &pos, ", \"refs\": ") ||
        !ScanUint(payload, &pos, &meta->refs) ||
        !ScanLiteral(payload, &pos, ", \"intensity\": ") ||
        !ScanDouble(payload, &pos, &meta->intensity) ||
        !ScanLiteral(payload, &pos, ", \"page_bytes\": ") ||
        !ScanUint(payload, &pos, &meta->page_bytes) ||
        !ScanLiteral(payload, &pos, ", \"block_bytes\": ") ||
        !ScanUint(payload, &pos, &meta->block_bytes) ||
        !ScanLiteral(payload, &pos, "}")) {
        return false;
    }
    return pos == payload.size();
}

bool
ParseEndPayload(const std::string& payload, uint64_t* ops,
                uint64_t* accesses, uint64_t* refs_issued, uint64_t* digest)
{
    size_t pos = 0;
    if (!ScanLiteral(payload, &pos, "{\"ops\": ") ||
        !ScanUint(payload, &pos, ops) ||
        !ScanLiteral(payload, &pos, ", \"accesses\": ") ||
        !ScanUint(payload, &pos, accesses) ||
        !ScanLiteral(payload, &pos, ", \"refs_issued\": ") ||
        !ScanUint(payload, &pos, refs_issued) ||
        !ScanLiteral(payload, &pos, ", \"digest\": ") ||
        !ScanHexDigest(payload, &pos, digest) ||
        !ScanLiteral(payload, &pos, "}")) {
        return false;
    }
    return pos == payload.size();
}

bool
ParseTrailerPayload(const std::string& payload, uint64_t* streams,
                    uint64_t* digest)
{
    size_t pos = 0;
    if (!ScanLiteral(payload, &pos, "{\"streams\": ") ||
        !ScanUint(payload, &pos, streams) ||
        !ScanLiteral(payload, &pos, ", \"digest\": ") ||
        !ScanHexDigest(payload, &pos, digest) ||
        !ScanLiteral(payload, &pos, "}")) {
        return false;
    }
    return pos == payload.size();
}

// ---------------------------------------------------------------------------
// Varint / zigzag op coding.
// ---------------------------------------------------------------------------

void
AppendVarint(std::string* out, uint64_t value)
{
    while (value >= 0x80) {
        out->push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out->push_back(static_cast<char>(value));
}

bool
ReadVarint(const std::string& bytes, size_t* pos, uint64_t* out)
{
    uint64_t value = 0;
    unsigned shift = 0;
    while (*pos < bytes.size()) {
        const uint8_t byte = static_cast<uint8_t>(bytes[*pos]);
        ++*pos;
        if (shift == 63 && (byte & 0x7f) > 1) {
            return false;  // Overflows 64 bits.
        }
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            // Reject non-canonical encodings (a trailing 0x00 group)
            // so every accepted op stream re-encodes byte-identically.
            if (byte == 0 && shift != 0) {
                return false;
            }
            *out = value;
            return true;
        }
        shift += 7;
        if (shift > 63) {
            return false;
        }
    }
    return false;
}

uint64_t
ZigzagEncode(int64_t value)
{
    return (static_cast<uint64_t>(value) << 1) ^
           static_cast<uint64_t>(value >> 63);
}

int64_t
ZigzagDecode(uint64_t value)
{
    return static_cast<int64_t>(value >> 1) ^
           -static_cast<int64_t>(value & 1);
}

/** Summary facts ValidateOps checks against the E payload. */
struct OpCounts {
    uint64_t ops = 0;
    uint64_t accesses = 0;
    uint64_t created = 0;
};

/**
 * Walks an op payload, enforcing well-formed varints, known opcodes,
 * dense pid assignment and in-range field values.  What this accepts,
 * ReplayStream can execute without further checks.
 */
bool
ValidateOps(const std::string& ops, OpCounts* out, std::string* why)
{
    size_t pos = 0;
    uint64_t created = 0;
    while (pos < ops.size()) {
        const uint8_t opcode = static_cast<uint8_t>(ops[pos]);
        ++pos;
        ++out->ops;
        uint64_t value = 0;
        switch (opcode) {
          case kOpCreate:
            if (!ReadVarint(ops, &pos, &value) || value != created) {
                *why = "op stream: bad create pid";
                return false;
            }
            ++created;
            break;
          case kOpDestroy:
          case kOpSetPid:
            if (!ReadVarint(ops, &pos, &value) || value >= created) {
                *why = "op stream: pid out of range";
                return false;
            }
            break;
          case kOpMapRegion: {
            uint64_t base = 0;
            uint64_t bytes = 0;
            if (!ReadVarint(ops, &pos, &value) || value >= created ||
                !ReadVarint(ops, &pos, &base) || base > ~ProcessAddr{0} ||
                !ReadVarint(ops, &pos, &bytes) || pos >= ops.size() ||
                static_cast<uint8_t>(ops[pos]) > kMaxPageKind) {
                *why = "op stream: bad map op";
                return false;
            }
            ++pos;
            break;
          }
          case kOpShare: {
            uint64_t other = 0;
            if (!ReadVarint(ops, &pos, &value) || value >= created ||
                pos >= ops.size() ||
                static_cast<uint8_t>(ops[pos]) > kMaxSegReg) {
                *why = "op stream: bad share op";
                return false;
            }
            ++pos;
            if (!ReadVarint(ops, &pos, &other) || other >= created ||
                pos >= ops.size() ||
                static_cast<uint8_t>(ops[pos]) > kMaxSegReg) {
                *why = "op stream: bad share op";
                return false;
            }
            ++pos;
            break;
          }
          case kOpSwitch:
            break;
          case kOpIFetch:
          case kOpRead:
          case kOpWrite:
            if (!ReadVarint(ops, &pos, &value)) {
                *why = "op stream: bad access delta";
                return false;
            }
            ++out->accesses;
            break;
          default:
            *why = "op stream: unknown opcode";
            return false;
        }
    }
    out->created = created;
    return true;
}

/** Only reachable on a bug: recovery validates ops before replay. */
[[noreturn]] void
BadOps()
{
    Fatal("trace: malformed op stream escaped validation");
}

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

/** write(2) until every byte landed (EINTR-safe). */
bool
WriteAll(int fd, const std::string& data)
{
    size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        written += static_cast<size_t>(n);
    }
    return true;
}

// ---------------------------------------------------------------------------
// Frame scanning (reader side), mirroring src/sweep/stream.cc.
// ---------------------------------------------------------------------------

enum class FrameStatus : uint8_t {
    kOk,
    kTruncated,  ///< Bytes ran out mid-frame: a crash artifact.
    kCorrupt,    ///< Malformed despite enough bytes: never truncation.
};

struct Frame {
    char tag = '\0';
    std::string payload;
    size_t end = 0;  ///< Offset of the first byte after the frame.
};

FrameStatus
NextFrame(const std::string& bytes, size_t pos, Frame* out,
          std::string* why)
{
    const char tag = bytes[pos];
    if (tag != 'H' && tag != 'S' && tag != 'B' && tag != 'E' &&
        tag != 'T') {
        *why = "unknown frame tag";
        return FrameStatus::kCorrupt;
    }
    size_t p = pos + 1;
    if (p >= bytes.size()) {
        return FrameStatus::kTruncated;
    }
    if (bytes[p] != ' ') {
        *why = "missing space after frame tag";
        return FrameStatus::kCorrupt;
    }
    ++p;
    uint64_t length = 0;
    size_t digits = 0;
    while (p < bytes.size() && bytes[p] >= '0' && bytes[p] <= '9') {
        length = length * 10 + static_cast<uint64_t>(bytes[p] - '0');
        if (length > kMaxFramePayload) {
            *why = "frame length out of range";
            return FrameStatus::kCorrupt;
        }
        ++digits;
        ++p;
    }
    if (p >= bytes.size()) {
        return FrameStatus::kTruncated;
    }
    if (digits == 0 || bytes[p] != '\n') {
        *why = "malformed frame length";
        return FrameStatus::kCorrupt;
    }
    ++p;
    if (p + length + 1 > bytes.size()) {
        return FrameStatus::kTruncated;
    }
    if (bytes[p + length] != '\n') {
        *why = "frame payload not newline-terminated";
        return FrameStatus::kCorrupt;
    }
    out->tag = tag;
    out->payload.assign(bytes, p, length);
    out->end = p + length + 1;
    return FrameStatus::kOk;
}

bool
ReadFileBytes(const std::string& path, std::string* bytes,
              std::string* error)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return Fail(error, "cannot open '" + path + "'");
    }
    char buffer[64 * 1024];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        bytes->append(buffer, n);
    }
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok) {
        return Fail(error, "read error on '" + path + "'");
    }
    return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceStreamMeta
// ---------------------------------------------------------------------------

std::string
TraceStreamMeta::Identity() const
{
    std::string key = workload;
    key += "|seed=" + FormatUint(seed);
    key += "|refs=" + FormatUint(refs);
    key += "|intensity=" + FormatDouble(intensity);
    key += "|page=" + FormatUint(page_bytes);
    key += "|block=" + FormatUint(block_bytes);
    return key;
}

// ---------------------------------------------------------------------------
// TraceEncoder
// ---------------------------------------------------------------------------

TraceEncoder::TraceEncoder(TraceStreamMeta meta)
    : meta_(std::move(meta)), digest_(kFnvOffset)
{
    for (const char c : meta_.workload) {
        if (c < 0x20 || c > 0x7e || c == '"' || c == '\\') {
            Fatal("trace: workload name '" + meta_.workload +
                  "' is not representable");
        }
    }
    framed_ = EncodeFrame('S', MetaPayload(meta_));
}

void
TraceEncoder::Op(uint8_t opcode)
{
    batch_.push_back(static_cast<char>(opcode));
    ++ops_;
}

void
TraceEncoder::Varint(uint64_t value)
{
    AppendVarint(&batch_, value);
}

void
TraceEncoder::FlushBatch()
{
    if (batch_.empty()) {
        return;
    }
    digest_ = Mix(digest_, batch_);
    framed_ += EncodeFrame('B', batch_);
    batch_.clear();
}

uint32_t
TraceEncoder::TracePid(Pid host_pid) const
{
    for (const auto& [host, trace] : pid_map_) {
        if (host == host_pid) {
            return trace;
        }
    }
    Fatal("trace: pid " + std::to_string(host_pid) +
          " was not created while recording");
}

void
TraceEncoder::OnCreateProcess(Pid host_pid)
{
    for (const auto& [host, trace] : pid_map_) {
        (void)trace;
        if (host == host_pid) {
            Fatal("trace: host pid " + std::to_string(host_pid) +
                  " created twice");
        }
    }
    const uint32_t trace_pid = next_trace_pid_++;
    pid_map_.emplace_back(host_pid, trace_pid);
    Op(kOpCreate);
    Varint(trace_pid);
}

void
TraceEncoder::OnDestroyProcess(Pid host_pid)
{
    const uint32_t trace_pid = TracePid(host_pid);
    for (size_t i = 0; i < pid_map_.size(); ++i) {
        if (pid_map_[i].first == host_pid) {
            pid_map_[i] = pid_map_.back();
            pid_map_.pop_back();
            break;
        }
    }
    if (current_pid_ == trace_pid) {
        current_pid_ = ~uint32_t{0};
    }
    Op(kOpDestroy);
    Varint(trace_pid);
}

void
TraceEncoder::OnMapRegion(Pid host_pid, ProcessAddr base, uint64_t bytes,
                          vm::PageKind kind)
{
    Op(kOpMapRegion);
    Varint(TracePid(host_pid));
    Varint(base);
    Varint(bytes);
    batch_.push_back(static_cast<char>(kind));
}

void
TraceEncoder::OnShareSegment(Pid host_pid, unsigned reg, Pid other,
                             unsigned other_reg)
{
    if (reg > kMaxSegReg || other_reg > kMaxSegReg) {
        Fatal("trace: segment register out of range");
    }
    Op(kOpShare);
    Varint(TracePid(host_pid));
    batch_.push_back(static_cast<char>(reg));
    Varint(TracePid(other));
    batch_.push_back(static_cast<char>(other_reg));
}

void
TraceEncoder::OnContextSwitch()
{
    Op(kOpSwitch);
    if (batch_.size() >= kBatchFlushBytes) {
        FlushBatch();
    }
}

void
TraceEncoder::OnAccess(const MemRef& ref)
{
    const uint32_t trace_pid = TracePid(ref.pid);
    if (trace_pid != current_pid_) {
        Op(kOpSetPid);
        Varint(trace_pid);
        current_pid_ = trace_pid;
    }
    uint8_t opcode = kOpRead;
    switch (ref.type) {
      case AccessType::kIFetch:
        opcode = kOpIFetch;
        break;
      case AccessType::kRead:
        opcode = kOpRead;
        break;
      case AccessType::kWrite:
        opcode = kOpWrite;
        break;
    }
    Op(opcode);
    Varint(ZigzagEncode(static_cast<int64_t>(ref.addr) -
                        static_cast<int64_t>(last_addr_)));
    last_addr_ = ref.addr;
    ++accesses_;
}

std::string
TraceEncoder::Finish(uint64_t refs_issued)
{
    if (finished_) {
        Fatal("trace: TraceEncoder::Finish called twice");
    }
    finished_ = true;
    FlushBatch();
    framed_ += EncodeFrame(
        'E', EndPayload(ops_, accesses_, refs_issued, digest_));
    return std::move(framed_);
}

// ---------------------------------------------------------------------------
// RecordingHost
// ---------------------------------------------------------------------------

Pid
RecordingHost::CreateProcess()
{
    const Pid pid = host_.CreateProcess();
    if (recording_) {
        encoder_.OnCreateProcess(pid);
    }
    return pid;
}

void
RecordingHost::DestroyProcess(Pid pid)
{
    if (recording_) {
        encoder_.OnDestroyProcess(pid);
    }
    host_.DestroyProcess(pid);
}

void
RecordingHost::MapRegion(Pid pid, ProcessAddr base, uint64_t bytes,
                         vm::PageKind kind)
{
    if (recording_) {
        encoder_.OnMapRegion(pid, base, bytes, kind);
    }
    host_.MapRegion(pid, base, bytes, kind);
}

void
RecordingHost::ShareSegment(Pid pid, unsigned reg, Pid other,
                            unsigned other_reg)
{
    if (recording_) {
        encoder_.OnShareSegment(pid, reg, other, other_reg);
    }
    host_.ShareSegment(pid, reg, other, other_reg);
}

void
RecordingHost::Access(const MemRef& ref)
{
    if (recording_) {
        encoder_.OnAccess(ref);
    }
    host_.Access(ref);
}

void
RecordingHost::AccessBatch(const MemRef* refs, size_t n)
{
    if (recording_) {
        for (size_t i = 0; i < n; ++i) {
            encoder_.OnAccess(refs[i]);
        }
    }
    host_.AccessBatch(refs, n);
}

void
RecordingHost::OnContextSwitch()
{
    if (recording_) {
        encoder_.OnContextSwitch();
    }
    host_.OnContextSwitch();
}

const sim::MachineConfig&
RecordingHost::config() const
{
    return host_.config();
}

// ---------------------------------------------------------------------------
// TraceFileWriter
// ---------------------------------------------------------------------------

TraceFileWriter::~TraceFileWriter()
{
    Close();
}

void
TraceFileWriter::Close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TraceFileWriter::Open(const std::string& path, std::string* error)
{
    if (fd_ >= 0) {
        return Fail(error, "trace writer already open");
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
        return Fail(error, "cannot open '" + path + "' for writing: " +
                               std::strerror(errno));
    }
    digest_ = kFnvOffset;
    streams_ = 0;
    const std::string head =
        std::string(kTraceMagic) + EncodeFrame('H', HeaderPayload());
    if (!WriteAll(fd_, head) || ::fsync(fd_) != 0) {
        Close();
        return Fail(error, "write failed on '" + path + "'");
    }
    return true;
}

bool
TraceFileWriter::AppendStream(const std::string& stream_bytes,
                              std::string* error)
{
    if (fd_ < 0) {
        return Fail(error, "trace writer is not open");
    }
    if (!WriteAll(fd_, stream_bytes) || ::fsync(fd_) != 0) {
        Close();
        return Fail(error, "stream append failed");
    }
    digest_ = Mix(digest_, stream_bytes);
    ++streams_;
    return true;
}

bool
TraceFileWriter::Finish(std::string* error)
{
    if (fd_ < 0) {
        return Fail(error, "trace writer is not open");
    }
    const std::string trailer =
        EncodeFrame('T', TrailerPayload(streams_, digest_));
    const bool ok = WriteAll(fd_, trailer) && ::fsync(fd_) == 0;
    Close();
    if (!ok) {
        return Fail(error, "trailer write failed");
    }
    return true;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

std::string
EncodeTraceFile(const std::vector<std::string>& stream_frames)
{
    std::string bytes = kTraceMagic;
    bytes += EncodeFrame('H', HeaderPayload());
    uint64_t digest = kFnvOffset;
    for (const std::string& frames : stream_frames) {
        bytes += frames;
        digest = Mix(digest, frames);
    }
    bytes += EncodeFrame('T', TrailerPayload(stream_frames.size(), digest));
    return bytes;
}

std::optional<RecoveredTrace>
RecoverTraceBytes(const std::string& bytes, std::string* error)
{
    const std::string magic = kTraceMagic;
    if (bytes.size() < magic.size()) {
        if (magic.compare(0, bytes.size(), bytes) != 0) {
            Fail(error, "not a SPUR-TRACE/1 file");
            return std::nullopt;
        }
        RecoveredTrace result;
        result.dropped_bytes = bytes.size();
        result.note = "torn before the header; recovered 0 streams";
        return result;
    }
    if (bytes.compare(0, magic.size(), magic) != 0) {
        Fail(error, "not a SPUR-TRACE/1 file");
        return std::nullopt;
    }

    RecoveredTrace result;
    size_t pos = magic.size();
    // recovered_end: the offset up to which the file is a sequence of
    // complete verified streams (truncation recovery resumes here).
    size_t recovered_end = pos;
    std::string why;
    uint64_t file_digest = kFnvOffset;

    const auto truncated = [&](const char* where) {
        result.complete = false;
        result.dropped_bytes = bytes.size() - recovered_end;
        result.note = std::string("torn ") + where + "; recovered " +
                      FormatUint(result.streams.size()) + " stream(s), " +
                      FormatUint(result.dropped_bytes) + " byte(s) dropped";
        return result;
    };

    // The H frame.
    {
        if (pos >= bytes.size()) {
            return truncated("before the header");
        }
        Frame frame;
        const FrameStatus status = NextFrame(bytes, pos, &frame, &why);
        if (status == FrameStatus::kTruncated) {
            return truncated("inside the header");
        }
        if (status == FrameStatus::kCorrupt) {
            Fail(error, "header frame: " + why);
            return std::nullopt;
        }
        if (frame.tag != 'H' || !ParseHeaderPayload(frame.payload)) {
            Fail(error, "bad or unsupported trace header");
            return std::nullopt;
        }
        pos = frame.end;
        recovered_end = pos;
    }

    // Streams, then the trailer.
    while (pos < bytes.size()) {
        Frame frame;
        FrameStatus status = NextFrame(bytes, pos, &frame, &why);
        if (status == FrameStatus::kTruncated) {
            return truncated("mid-stream");
        }
        if (status == FrameStatus::kCorrupt) {
            Fail(error, "frame at offset " + FormatUint(pos) + ": " + why);
            return std::nullopt;
        }
        if (frame.tag == 'T') {
            uint64_t stream_count = 0;
            uint64_t digest = 0;
            if (!ParseTrailerPayload(frame.payload, &stream_count,
                                     &digest)) {
                Fail(error, "malformed trace trailer");
                return std::nullopt;
            }
            if (stream_count != result.streams.size()) {
                Fail(error,
                     "trailer claims " + FormatUint(stream_count) +
                         " stream(s), file holds " +
                         FormatUint(result.streams.size()));
                return std::nullopt;
            }
            if (digest != file_digest) {
                Fail(error, "trace digest mismatch");
                return std::nullopt;
            }
            if (frame.end != bytes.size()) {
                Fail(error, "bytes after the trace trailer");
                return std::nullopt;
            }
            result.complete = true;
            result.note = "complete: " +
                          FormatUint(result.streams.size()) + " stream(s)";
            return result;
        }
        if (frame.tag != 'S') {
            Fail(error, "expected S or T frame at offset " +
                            FormatUint(pos));
            return std::nullopt;
        }

        // One stream: S, B*, E.
        TraceStream stream;
        const size_t stream_start = pos;
        if (!ParseMetaPayload(frame.payload, &stream.meta)) {
            Fail(error, "malformed stream header at offset " +
                            FormatUint(pos));
            return std::nullopt;
        }
        pos = frame.end;
        uint64_t ops_digest = kFnvOffset;
        bool stream_done = false;
        while (!stream_done) {
            if (pos >= bytes.size()) {
                return truncated("inside a stream");
            }
            status = NextFrame(bytes, pos, &frame, &why);
            if (status == FrameStatus::kTruncated) {
                return truncated("inside a stream");
            }
            if (status == FrameStatus::kCorrupt) {
                Fail(error,
                     "frame at offset " + FormatUint(pos) + ": " + why);
                return std::nullopt;
            }
            if (frame.tag == 'B') {
                ops_digest = Mix(ops_digest, frame.payload);
                stream.ops += frame.payload;
                pos = frame.end;
                continue;
            }
            if (frame.tag != 'E') {
                Fail(error, "expected B or E frame at offset " +
                                FormatUint(pos));
                return std::nullopt;
            }
            if (!ParseEndPayload(frame.payload, &stream.op_count,
                                 &stream.accesses, &stream.refs_issued,
                                 &stream.digest)) {
                Fail(error, "malformed stream end at offset " +
                                FormatUint(pos));
                return std::nullopt;
            }
            if (stream.digest != ops_digest) {
                Fail(error, "stream '" + stream.meta.Identity() +
                                "': op digest mismatch");
                return std::nullopt;
            }
            OpCounts counts;
            if (!ValidateOps(stream.ops, &counts, &why)) {
                Fail(error,
                     "stream '" + stream.meta.Identity() + "': " + why);
                return std::nullopt;
            }
            if (counts.ops != stream.op_count ||
                counts.accesses != stream.accesses) {
                Fail(error, "stream '" + stream.meta.Identity() +
                                "': op counts disagree with the E frame");
                return std::nullopt;
            }
            pos = frame.end;
            stream_done = true;
        }
        stream.framed.assign(bytes, stream_start, pos - stream_start);
        file_digest = Mix(file_digest, stream.framed);
        result.streams.push_back(std::move(stream));
        recovered_end = pos;
    }
    return truncated("before the trailer");
}

std::optional<RecoveredTrace>
RecoverTraceFile(const std::string& path, std::string* error)
{
    std::string bytes;
    if (!ReadFileBytes(path, &bytes, error)) {
        return std::nullopt;
    }
    return RecoverTraceBytes(bytes, error);
}

// ---------------------------------------------------------------------------
// TraceLibrary
// ---------------------------------------------------------------------------

bool
TraceLibrary::Load(const std::string& path, std::string* error)
{
    std::string recover_error;
    const std::optional<RecoveredTrace> recovered =
        RecoverTraceFile(path, &recover_error);
    if (!recovered) {
        return Fail(error, path + ": " + recover_error);
    }
    if (!recovered->complete) {
        return Fail(error,
                    path + ": truncated trace (" + recovered->note +
                        "); recover it with `spur_trace validate` first");
    }
    streams_ = std::move(recovered->streams);
    return true;
}

const TraceStream*
TraceLibrary::Find(const std::string& identity) const
{
    for (const TraceStream& stream : streams_) {
        if (stream.meta.Identity() == identity) {
            return &stream;
        }
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

ReplayStats
ReplayStream(const TraceStream& stream, WorkloadHost& host)
{
    const sim::MachineConfig& config = host.config();
    if (config.page_bytes != stream.meta.page_bytes ||
        config.block_bytes != stream.meta.block_bytes) {
        Fatal("trace: stream '" + stream.meta.Identity() +
              "' was recorded at page/block " +
              FormatUint(stream.meta.page_bytes) + "/" +
              FormatUint(stream.meta.block_bytes) +
              ", host geometry is " + FormatUint(config.page_bytes) + "/" +
              FormatUint(config.block_bytes));
    }

    ReplayStats stats;
    stats.refs_issued = stream.refs_issued;
    std::vector<Pid> host_pid;   // Indexed by trace pid.
    std::vector<MemRef> batch;
    batch.reserve(4096);
    Pid current_pid = 0;
    bool have_pid = false;
    ProcessAddr last_addr = 0;

    const auto flush = [&] {
        if (!batch.empty()) {
            host.AccessBatch(batch.data(), batch.size());
            batch.clear();
        }
    };
    const std::string& ops = stream.ops;
    size_t pos = 0;
    while (pos < ops.size()) {
        const uint8_t opcode = static_cast<uint8_t>(ops[pos]);
        ++pos;
        uint64_t value = 0;
        switch (opcode) {
          case kOpCreate: {
            flush();
            if (!ReadVarint(ops, &pos, &value) ||
                value != host_pid.size()) {
                BadOps();
            }
            host_pid.push_back(host.CreateProcess());
            ++stats.processes;
            break;
          }
          case kOpDestroy:
            flush();
            if (!ReadVarint(ops, &pos, &value) ||
                value >= host_pid.size()) {
                BadOps();
            }
            host.DestroyProcess(host_pid[value]);
            break;
          case kOpMapRegion: {
            flush();
            uint64_t base = 0;
            uint64_t map_bytes = 0;
            if (!ReadVarint(ops, &pos, &value) ||
                value >= host_pid.size() ||
                !ReadVarint(ops, &pos, &base) ||
                !ReadVarint(ops, &pos, &map_bytes) || pos >= ops.size()) {
                BadOps();
            }
            const auto kind =
                static_cast<vm::PageKind>(static_cast<uint8_t>(ops[pos]));
            ++pos;
            host.MapRegion(host_pid[value],
                           static_cast<ProcessAddr>(base), map_bytes,
                           kind);
            break;
          }
          case kOpShare: {
            flush();
            uint64_t other = 0;
            if (!ReadVarint(ops, &pos, &value) ||
                value >= host_pid.size() || pos >= ops.size()) {
                BadOps();
            }
            const auto reg = static_cast<uint8_t>(ops[pos]);
            ++pos;
            if (!ReadVarint(ops, &pos, &other) ||
                other >= host_pid.size() || pos >= ops.size()) {
                BadOps();
            }
            const auto other_reg = static_cast<uint8_t>(ops[pos]);
            ++pos;
            host.ShareSegment(host_pid[value], reg, host_pid[other],
                              other_reg);
            break;
          }
          case kOpSwitch:
            flush();
            host.OnContextSwitch();
            ++stats.context_switches;
            break;
          case kOpSetPid:
            if (!ReadVarint(ops, &pos, &value) ||
                value >= host_pid.size()) {
                BadOps();
            }
            current_pid = host_pid[value];
            have_pid = true;
            break;
          case kOpIFetch:
          case kOpRead:
          case kOpWrite: {
            if (!ReadVarint(ops, &pos, &value) || !have_pid) {
                BadOps();
            }
            last_addr = static_cast<ProcessAddr>(
                static_cast<int64_t>(last_addr) + ZigzagDecode(value));
            MemRef ref;
            ref.pid = current_pid;
            ref.addr = last_addr;
            ref.type = (opcode == kOpIFetch) ? AccessType::kIFetch
                       : (opcode == kOpRead) ? AccessType::kRead
                                             : AccessType::kWrite;
            batch.push_back(ref);
            if (batch.size() == batch.capacity()) {
                flush();
            }
            ++stats.accesses;
            break;
          }
          default:
            BadOps();
        }
    }
    flush();
    return stats;
}

ReplayStats
ReplayTrace(const std::string& path, WorkloadHost& host)
{
    TraceLibrary library;
    std::string error;
    if (!library.Load(path, &error)) {
        Fatal("trace: " + error);
    }
    ReplayStats total;
    for (const TraceStream& stream : library.streams()) {
        const ReplayStats stats = ReplayStream(stream, host);
        total.refs_issued += stats.refs_issued;
        total.accesses += stats.accesses;
        total.context_switches += stats.context_switches;
        total.processes += stats.processes;
    }
    return total;
}

}  // namespace spur::workload

#include "src/workload/trace.h"

#include <cstring>
#include <unordered_map>

#include "src/common/log.h"
#include "src/workload/process.h"

namespace spur::workload {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'U', 'R', 'T', 'R', 'C', '1'};

void
WriteU64(std::FILE* file, uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    if (std::fwrite(bytes, 1, 8, file) != 8) {
        Fatal("trace: short write");
    }
}

uint64_t
ReadU64(std::FILE* file)
{
    unsigned char bytes[8];
    if (std::fread(bytes, 1, 8, file) != 8) {
        Fatal("trace: truncated header");
    }
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
        value = (value << 8) | bytes[i];
    }
    return value;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (file_ == nullptr) {
        Fatal("trace: cannot open '" + path + "' for writing");
    }
    if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic)) {
        Fatal("trace: short write");
    }
    WriteU64(file_, 0);  // Patched in the destructor.
}

TraceWriter::~TraceWriter()
{
    std::fseek(file_, sizeof(kMagic), SEEK_SET);
    WriteU64(file_, count_);
    std::fclose(file_);
}

void
TraceWriter::Append(const MemRef& ref)
{
    unsigned char record[9];
    for (int i = 0; i < 4; ++i) {
        record[i] = static_cast<unsigned char>(ref.pid >> (8 * i));
        record[4 + i] = static_cast<unsigned char>(ref.addr >> (8 * i));
    }
    record[8] = static_cast<unsigned char>(ref.type);
    if (std::fwrite(record, 1, sizeof(record), file_) != sizeof(record)) {
        Fatal("trace: short write");
    }
    ++count_;
}

TraceReader::TraceReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (file_ == nullptr) {
        Fatal("trace: cannot open '" + path + "'");
    }
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        Fatal("trace: '" + path + "' is not a SPUR trace");
    }
    count_ = ReadU64(file_);
}

TraceReader::~TraceReader()
{
    std::fclose(file_);
}

bool
TraceReader::Next(MemRef* ref)
{
    if (read_ >= count_) {
        return false;
    }
    unsigned char record[9];
    if (std::fread(record, 1, sizeof(record), file_) != sizeof(record)) {
        Fatal("trace: truncated record");
    }
    ref->pid = 0;
    ref->addr = 0;
    for (int i = 3; i >= 0; --i) {
        ref->pid = (ref->pid << 8) | record[i];
        ref->addr = (ref->addr << 8) | record[4 + i];
    }
    if (record[8] > static_cast<unsigned char>(AccessType::kWrite)) {
        Fatal("trace: corrupt access type");
    }
    ref->type = static_cast<AccessType>(record[8]);
    ++read_;
    return true;
}

uint64_t
ReplayTrace(const std::string& path, WorkloadHost& system)
{
    TraceReader reader(path);
    // Trace pids are renamed into processes of the target system, with
    // generously sized regions mapped lazily on first sight of a pid.
    std::unordered_map<Pid, Pid> pid_map;
    const uint64_t page_bytes = system.config().page_bytes;
    auto target_pid = [&](Pid trace_pid) {
        const auto it = pid_map.find(trace_pid);
        if (it != pid_map.end()) {
            return it->second;
        }
        const Pid pid = system.CreateProcess();
        system.MapRegion(pid, kCodeBase, 2048 * page_bytes,
                         vm::PageKind::kCode);
        system.MapRegion(pid, kDataBase, 2048 * page_bytes,
                         vm::PageKind::kData);
        system.MapRegion(pid, kHeapBase, 8192 * page_bytes,
                         vm::PageKind::kHeap);
        system.MapRegion(pid, kStackBase, 256 * page_bytes,
                         vm::PageKind::kStack);
        pid_map.emplace(trace_pid, pid);
        return pid;
    };

    uint64_t replayed = 0;
    MemRef ref;
    Pid last_pid = ~Pid{0};
    while (reader.Next(&ref)) {
        ref.pid = target_pid(ref.pid);
        if (ref.pid != last_pid) {
            if (last_pid != ~Pid{0}) {
                system.OnContextSwitch();
            }
            last_pid = ref.pid;
        }
        system.Access(ref);
        ++replayed;
    }
    return replayed;
}

}  // namespace spur::workload

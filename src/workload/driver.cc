#include "src/workload/driver.h"

#include <algorithm>

#include "src/common/log.h"

namespace spur::workload {

Driver::Driver(WorkloadHost& system, WorkloadSpec spec,
               uint64_t total_refs, uint64_t seed, uint32_t slice_refs)
    : system_(system),
      spec_(std::move(spec)),
      total_refs_(total_refs),
      rng_(seed),
      slice_refs_(std::max(1u, slice_refs))
{
    batch_.resize(slice_refs_);
    if (spec_.jobs.empty()) {
        Fatal("Driver: workload has no jobs");
    }
    owners_.assign(spec_.jobs.size(), kNoOwner);
    for (size_t i = 0; i < spec_.jobs.size(); ++i) {
        for (uint32_t n = 0; n < spec_.jobs[i].concurrency; ++n) {
            pending_.push_back(Pending{spec_.jobs[i].start_refs, i});
        }
    }
}

Driver::~Driver()
{
    // Instances go first (vector member order would do it too, but be
    // explicit): they reference the owners' segments.
    live_.clear();
    for (Pid owner : owners_) {
        if (owner != kNoOwner) {
            system_.DestroyProcess(owner);
        }
    }
}

void
Driver::Run()
{
    if (refs_issued_ < total_refs_) {
        RunRefs(total_refs_ - refs_issued_);
    }
}

void
Driver::RunRefs(uint64_t refs)
{
    const uint64_t stop = refs_issued_ + refs;
    while (refs_issued_ < stop) {
        SpawnDue();
        if (live_.empty()) {
            if (pending_.empty()) {
                Warn("Driver: all jobs finished before the reference "
                     "budget was reached");
                return;
            }
            // Idle until the next pending job: skip time forward.
            uint64_t next = ~uint64_t{0};
            for (const Pending& p : pending_) {
                next = std::min(next, p.at_refs);
            }
            refs_issued_ = std::max(refs_issued_ + 1, next);
            continue;
        }
        // Round-robin: one quantum for the process at the cursor.  The
        // quantum's references are generated up front and issued through
        // one AccessBatch() dispatch; the generator is pure, so the
        // stream and the access order match the old per-reference loop
        // exactly.
        next_slot_ = (next_slot_ >= live_.size()) ? 0 : next_slot_;
        SyntheticProcess& proc = *live_[next_slot_].process;
        const uint64_t quantum =
            std::min<uint64_t>(slice_refs_, stop - refs_issued_);
        const size_t issued =
            proc.NextBatch(batch_.data(), static_cast<size_t>(quantum));
        system_.AccessBatch(batch_.data(), issued);
        refs_issued_ += issued;
        ++next_slot_;
        system_.OnContextSwitch();
        ReapFinished();
    }
}

void
Driver::SpawnDue()
{
    for (size_t i = 0; i < pending_.size();) {
        if (pending_[i].at_refs <= refs_issued_) {
            Spawn(pending_[i].job_index);
            pending_[i] = pending_.back();
            pending_.pop_back();
        } else {
            ++i;
        }
    }
}

void
Driver::Spawn(size_t job_index)
{
    const JobSpec& job = spec_.jobs[job_index];
    ShareSpec share;
    const bool wants_share = (job.share_text || job.share_data) &&
                             job.respawn_delay_refs != 0;
    if (wants_share) {
        if (owners_[job_index] == kNoOwner) {
            // Materialize the job's shared segments on a passive owner
            // process that exists for the whole run.
            const Pid owner = system_.CreateProcess();
            const uint64_t page_bytes = system_.config().page_bytes;
            (void)page_bytes;
            if (job.share_text && job.profile.code_pages > 0) {
                system_.MapRegion(owner, kCodeBase,
                                  job.profile.code_pages * page_bytes,
                                  vm::PageKind::kCode);
            }
            if (job.share_data && job.profile.data_pages > 0) {
                MapDataSegment(system_, owner, job.profile);
            }
            owners_[job_index] = owner;
        }
        share.owner = owners_[job_index];
        share.text = job.share_text && job.profile.code_pages > 0;
        share.data = job.share_data && job.profile.data_pages > 0;
    }
    ++spawns_;
    live_.push_back(Instance{
        std::make_unique<SyntheticProcess>(system_, job.profile, rng_.Next(),
                                           wants_share ? &share : nullptr),
        job_index});
}

void
Driver::ReapFinished()
{
    for (size_t i = 0; i < live_.size();) {
        if (live_[i].process->Done()) {
            const size_t job_index = live_[i].job_index;
            live_[i].process.reset();  // Destroys the process's pages.
            if (i + 1 != live_.size()) {
                live_[i] = std::move(live_.back());
            }
            live_.pop_back();
            const JobSpec& job = spec_.jobs[job_index];
            if (job.respawn_delay_refs != 0) {
                pending_.push_back(Pending{
                    refs_issued_ + job.respawn_delay_refs, job_index});
            }
            if (next_slot_ >= live_.size()) {
                next_slot_ = 0;
            }
        } else {
            ++i;
        }
    }
}

}  // namespace spur::workload

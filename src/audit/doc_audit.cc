#include "src/audit/doc_audit.h"

#include <map>
#include <optional>
#include <string>

#include "src/audit/dominance.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"

namespace spur::audit {

namespace {

std::optional<double>
Metric(const stats::RunRecord& record, const char* name)
{
    for (const auto& [metric, value] : record.metrics) {
        if (metric == name) {
            return value;
        }
    }
    return std::nullopt;
}

/** Intrinsic dirty faults from the recorded metrics (N_ds - N_zfod). */
std::optional<double>
RecordedIntrinsicFaults(const stats::RunRecord& record)
{
    const std::optional<double> n_ds = Metric(record, "n_ds");
    const std::optional<double> n_zfod = Metric(record, "n_zfod");
    if (!n_ds || !n_zfod) {
        return std::nullopt;
    }
    return *n_ds - *n_zfod;
}

/**
 * Cell-matching key with the dirty policy removed (MIN dominance); the
 * ref policy stays in.  The '\x1f' separator cannot appear in the
 * components (policy/workload names and decimal integers).
 */
std::string
DirtyKey(const stats::RunRecord& record)
{
    std::string key = record.bench;
    key += '\x1f';
    key += record.workload;
    key += '\x1f';
    key += record.ref_policy;
    key += '\x1f';
    key += std::to_string(record.memory_mb);
    key += '\x1f';
    key += std::to_string(record.rep);
    key += '\x1f';
    key += std::to_string(record.seed);
    return key;
}

/** Matching key for NOREF-vs-MISS (ref policy removed, dirty kept). */
std::string
RefKey(const stats::RunRecord& record)
{
    std::string key = record.bench;
    key += '\x1f';
    key += record.workload;
    key += '\x1f';
    key += record.dirty_policy;
    key += '\x1f';
    key += std::to_string(record.memory_mb);
    key += '\x1f';
    key += std::to_string(record.rep);
    key += '\x1f';
    key += std::to_string(record.seed);
    return key;
}

std::string
CellLabel(const stats::RunRecord& record)
{
    std::string label = record.workload;
    label += '/';
    label += std::to_string(record.memory_mb);
    label += "MB seed=";
    label += std::to_string(record.seed);
    label += " rep=";
    label += std::to_string(record.rep);
    label += " (bench ";
    label += record.bench;
    label += ')';
    return label;
}

std::string
PolicyPair(const stats::RunRecord& record)
{
    std::string label = record.dirty_policy;
    label += '/';
    label += record.ref_policy;
    return label;
}

}  // namespace

AuditReport
AuditSweepRecords(const std::vector<stats::RunRecord>& records)
{
    AuditReport report;
    const std::string min_name =
        policy::ToString(policy::DirtyPolicyKind::kMin);
    const std::string miss_name =
        policy::ToString(policy::RefPolicyKind::kMiss);
    const std::string noref_name =
        policy::ToString(policy::RefPolicyKind::kNoRef);

    // ---- MIN <= every real dirty-bit alternative -----------------------
    report.BeginPass(kPassMinDominance);
    std::map<std::string, const stats::RunRecord*> min_cell;
    for (const stats::RunRecord& record : records) {
        if (record.dirty_policy == min_name &&
            RecordedIntrinsicFaults(record)) {
            min_cell[DirtyKey(record)] = &record;
        }
    }
    for (const stats::RunRecord& record : records) {
        if (record.dirty_policy == min_name) {
            continue;
        }
        const std::optional<double> faults =
            RecordedIntrinsicFaults(record);
        if (!faults) {
            continue;  // Bespoke record without the standard metrics.
        }
        const auto it = min_cell.find(DirtyKey(record));
        if (it == min_cell.end()) {
            continue;  // No matched MIN run to compare against.
        }
        const double min_faults = *RecordedIntrinsicFaults(*it->second);
        if (min_faults > *faults) {
            report.Add(
                Severity::kError, PolicyPair(record), check::kNoPage,
                "MIN took " + std::to_string(min_faults) +
                    " intrinsic dirty faults but " + record.dirty_policy +
                    " took only " + std::to_string(*faults) + " on " +
                    CellLabel(record) + " (MIN must be a lower bound)");
        }
    }

    // ---- NOREF page-ins >= MISS page-ins -------------------------------
    report.BeginPass(kPassNorefPageIns);
    std::map<std::string, const stats::RunRecord*> miss_cell;
    for (const stats::RunRecord& record : records) {
        if (record.ref_policy == miss_name) {
            miss_cell[RefKey(record)] = &record;
        }
    }
    for (const stats::RunRecord& record : records) {
        if (record.ref_policy != noref_name) {
            continue;
        }
        const auto it = miss_cell.find(RefKey(record));
        if (it == miss_cell.end()) {
            continue;
        }
        if (record.page_ins < it->second->page_ins) {
            report.Add(
                Severity::kWarning, PolicyPair(record), check::kNoPage,
                "NOREF paged in " + std::to_string(record.page_ins) +
                    " but MISS paged in " +
                    std::to_string(it->second->page_ins) + " on " +
                    CellLabel(record) +
                    " (NOREF should page at least as much)");
        }
    }
    return report;
}

}  // namespace spur::audit

/**
 * @file
 * Dominance audits over recorded sweep documents.
 *
 * The in-process matrix audit (src/audit/dominance.h) needs the full
 * result grid, so sharded sweeps (shard_count > 1) and resumed runs
 * historically skipped it — the only audit gap in the pipeline.  This
 * closes it: the same MIN / NOREF dominance passes, re-derived from the
 * records of a *merged* document (`spur_sweep audit`), where the full
 * grid exists again regardless of how many shards produced it.
 *
 * Records carry everything the comparisons need: the n_ds / n_zfod
 * metrics BenchSession writes for every matrix cell (intrinsic dirty
 * faults = n_ds - n_zfod) and the page_ins field.  Cells match on the
 * record identity fields minus the policy under test; records missing
 * the metrics (bespoke bench output) are skipped, not failed.
 */
#ifndef SPUR_AUDIT_DOC_AUDIT_H_
#define SPUR_AUDIT_DOC_AUDIT_H_

#include <vector>

#include "src/check/report.h"
#include "src/stats/run_record.h"

namespace spur::audit {

using check::AuditReport;

/**
 * Runs the MIN-dominance (error) and NOREF-page-ins (warning) passes
 * over @p records, pairing cells that agree on every identity field
 * except the policy under comparison.  Uses the same pass names as the
 * in-process audit (kPassMinDominance, kPassNorefPageIns).
 */
AuditReport AuditSweepRecords(
    const std::vector<stats::RunRecord>& records);

}  // namespace spur::audit

#endif  // SPUR_AUDIT_DOC_AUDIT_H_

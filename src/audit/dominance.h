/**
 * @file
 * Cross-policy dominance audits over a finished experiment matrix.
 *
 * Two properties of the paper's experiment design are checkable from run
 * results alone, on cells that match in everything except the policy
 * under test (same workload, memory size, reference budget and seed):
 *
 *  - MIN is by construction a lower bound on every real dirty-bit
 *    alternative: its intrinsic dirty-fault count (N_ds - N_zfod,
 *    Section 3.2) can never exceed SPUR/WRITE/FAULT/FLUSH's on the same
 *    cell, because MIN takes exactly the necessary faults and nothing
 *    else ever removes one.
 *  - NOREF degenerates replacement to sweep order, so on a matched cell
 *    it pages in at least as much as MISS (Table 4.1's comparison).
 *    This one is reported as a *warning*: at large memories the two
 *    converge and the paper itself only claims the inequality for
 *    memory-constrained runs.
 *
 * runner::RunMatrix invokes this automatically after every matrix in
 * audit builds (SPUR_AUDIT=ON).
 */
#ifndef SPUR_AUDIT_DOMINANCE_H_
#define SPUR_AUDIT_DOMINANCE_H_

#include <vector>

#include "src/check/report.h"
#include "src/core/experiment.h"

namespace spur::audit {

// Result-level audits report through the same severity/report types as
// the machine-state checker (src/check/report.h), so spur_sweep can
// render both the same way.
using check::AuditReport;
using check::Severity;

// Pass names used in dominance violations.
inline constexpr const char* kPassMinDominance = "min-dominance";
inline constexpr const char* kPassNorefPageIns = "noref-page-ins";

/** A run's intrinsic dirty faults: N_ds minus the zero-fill subset. */
uint64_t IntrinsicDirtyFaults(const core::RunResult& result);

/**
 * Audits dominance across @p results (shaped result[i][r] as returned by
 * RunMatrix for @p configs).  Cells are grouped by every config field
 * except the policy being compared; groups lacking a comparison partner
 * are skipped.
 */
AuditReport AuditDominance(
    const std::vector<core::RunConfig>& configs,
    const std::vector<std::vector<core::RunResult>>& results);

}  // namespace spur::audit

#endif  // SPUR_AUDIT_DOMINANCE_H_

#include "src/audit/dominance.h"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

namespace spur::audit {

namespace {

/** Everything that must match for two cells to be comparable, minus the
 *  dirty policy (MIN dominance) — the ref policy stays in the key. */
using DirtyGroupKey = std::tuple<uint8_t, uint32_t, uint8_t, uint64_t,
                                 uint64_t, double, double>;

DirtyGroupKey
DirtyKey(const core::RunConfig& config)
{
    return {static_cast<uint8_t>(config.workload), config.memory_mb,
            static_cast<uint8_t>(config.ref), config.refs, config.seed,
            config.intensity, config.page_in_us};
}

/** Matching key for the NOREF-vs-MISS page-in comparison (ref policy
 *  removed, dirty policy kept). */
using RefGroupKey = std::tuple<uint8_t, uint32_t, uint8_t, uint64_t,
                               uint64_t, double, double>;

RefGroupKey
RefKey(const core::RunConfig& config)
{
    return {static_cast<uint8_t>(config.workload), config.memory_mb,
            static_cast<uint8_t>(config.dirty), config.refs, config.seed,
            config.intensity, config.page_in_us};
}

std::string
CellLabel(const core::RunConfig& config, uint32_t rep)
{
    std::string label = core::ToString(config.workload);
    label += '/';
    label += std::to_string(config.memory_mb);
    label += "MB seed=";
    label += std::to_string(config.seed);
    label += " rep=";
    label += std::to_string(rep);
    return label;
}

std::string
PolicyPair(const core::RunConfig& config)
{
    std::string label = policy::ToString(config.dirty);
    label += '/';
    label += policy::ToString(config.ref);
    return label;
}

}  // namespace

uint64_t
IntrinsicDirtyFaults(const core::RunResult& result)
{
    return result.events.Get(sim::Event::kDirtyFault) -
           result.events.Get(sim::Event::kDirtyFaultZfod);
}

AuditReport
AuditDominance(const std::vector<core::RunConfig>& configs,
               const std::vector<std::vector<core::RunResult>>& results)
{
    AuditReport report;

    // ---- MIN <= every real dirty-bit alternative -------------------------
    report.BeginPass(kPassMinDominance);
    std::map<DirtyGroupKey, size_t> min_cell;
    for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].dirty == policy::DirtyPolicyKind::kMin) {
            min_cell[DirtyKey(configs[i])] = i;
        }
    }
    for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].dirty == policy::DirtyPolicyKind::kMin) {
            continue;
        }
        const auto it = min_cell.find(DirtyKey(configs[i]));
        if (it == min_cell.end()) {
            continue;  // No matched MIN run to compare against.
        }
        const auto& min_runs = results[it->second];
        const auto& other_runs = results[i];
        const size_t reps = std::min(min_runs.size(), other_runs.size());
        for (size_t r = 0; r < reps; ++r) {
            const uint64_t min_faults = IntrinsicDirtyFaults(min_runs[r]);
            const uint64_t other_faults =
                IntrinsicDirtyFaults(other_runs[r]);
            if (min_faults > other_faults) {
                report.Add(
                    Severity::kError, PolicyPair(configs[i]), check::kNoPage,
                    "MIN took " + std::to_string(min_faults) +
                        " intrinsic dirty faults but " +
                        policy::ToString(configs[i].dirty) + " took only " +
                        std::to_string(other_faults) + " on " +
                        CellLabel(configs[i], static_cast<uint32_t>(r)) +
                        " (MIN must be a lower bound)");
            }
        }
    }

    // ---- NOREF page-ins >= MISS page-ins ---------------------------------
    report.BeginPass(kPassNorefPageIns);
    std::map<RefGroupKey, size_t> miss_cell;
    for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].ref == policy::RefPolicyKind::kMiss) {
            miss_cell[RefKey(configs[i])] = i;
        }
    }
    for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].ref != policy::RefPolicyKind::kNoRef) {
            continue;
        }
        const auto it = miss_cell.find(RefKey(configs[i]));
        if (it == miss_cell.end()) {
            continue;
        }
        const auto& miss_runs = results[it->second];
        const auto& noref_runs = results[i];
        const size_t reps = std::min(miss_runs.size(), noref_runs.size());
        for (size_t r = 0; r < reps; ++r) {
            if (noref_runs[r].page_ins < miss_runs[r].page_ins) {
                report.Add(
                    Severity::kWarning, PolicyPair(configs[i]), check::kNoPage,
                    "NOREF paged in " +
                        std::to_string(noref_runs[r].page_ins) +
                        " vs MISS's " +
                        std::to_string(miss_runs[r].page_ins) + " on " +
                        CellLabel(configs[i], static_cast<uint32_t>(r)) +
                        " (reference bits should never hurt)");
            }
        }
    }

    return report;
}

}  // namespace spur::audit

/**
 * @file
 * The safety properties the explorer checks on every reachable state and
 * transition.  Each invariant has a stable id (M1..M10); the runtime
 * audit passes in src/check/invariants.cc cross-reference these ids, so
 * a model-checker property and its (weaker, workload-dependent) runtime
 * shadow can be matched up.
 *
 *   M1  one-owner            — at most one cache holds the block in an
 *                              Owned* state.
 *   M2  exclusive-alone      — an OwnedExclusive copy is the only copy.
 *   M3  dirty-implies-owner  — a block-dirty (B) copy is in an Owned*
 *                              state: only owners write back, so a dirty
 *                              UnOwned copy would lose the data.
 *   M4  no-lost-dirty        — whenever any cached copy has B set, the
 *                              PTE already records the page dirty (D or
 *                              SD per policy), so dropping every copy
 *                              can never lose the modification.
 *   M5  p-not-ahead          — a cached P bit is never set while the
 *                              PTE's hardware D bit is clear (the cache
 *                              only copies P from D on fill/refresh).
 *   M6  protection-emulation — FAULT/FLUSH/SPUR-PROT: the PTE is
 *                              read-write iff SD is set, and a cached
 *                              read-write protection implies the PTE's;
 *                              FLUSH additionally guarantees no stale
 *                              read-only copy survives once SD is set
 *                              (its flush purges them — the no-excess-
 *                              fault property of Table 3.1).
 *   M7  ref-flush-hygiene    — REF policy: a resident page with R clear
 *                              has no cached copies, so the next use
 *                              must miss and re-set R (Section 4.1).
 *   M8  normalization        — invalid lines and non-resident pages
 *                              have every other field zero (the SoA
 *                              zero-on-invalidate contract).
 *   M9  dirty-monotone       — (transition) residency, D and SD never
 *                              fall: the model has no reclaim stimulus.
 *   M10 ref-monotone         — (transition) R falls only on a ClearRef
 *                              stimulus: the reference bit is monotone
 *                              within a clock epoch.
 */
#ifndef SPUR_MODEL_INVARIANTS_H_
#define SPUR_MODEL_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/model/spec.h"

namespace spur::model {

struct InvariantViolation {
    const char* id;      ///< Stable invariant id, e.g. "M4".
    std::string detail;  ///< Human-readable description of the breach.
};

/** Checks the per-state invariants M1..M8 on @p state. */
std::vector<InvariantViolation> CheckState(const ProtoState& state,
                                           const ModelConfig& config);

/** Checks the transition invariants M9/M10 across one step. */
std::vector<InvariantViolation> CheckTransition(const ProtoState& before,
                                                const Stimulus& stimulus,
                                                const ProtoState& after,
                                                const ModelConfig& config);

}  // namespace spur::model

#endif  // SPUR_MODEL_INVARIANTS_H_

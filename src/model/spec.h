/**
 * @file
 * The protocol specification the model checker explores: an abstract,
 * declarative encoding of how one cache block and its page behave under
 * the Berkeley Ownership protocol [Katz85] combined with the paper's
 * dirty-bit (Section 3) and reference-bit (Section 4) policies.
 *
 * The abstraction tracks *two* cache blocks of one writable page — two
 * blocks rather than one because the paper's central phenomenon, cached
 * PTE state going stale, is a cross-block effect: a line's P/PR copy
 * goes stale when a *different* block's write dirties the page.  With a
 * single tracked block the dirty-bit-miss, excess-fault and
 * FLUSH-purge rules would be spec dead code.  Tracked state:
 *
 *   - per processor and per tracked block, the Figure 3.2(b) line
 *     fields: CS (coherency state), PR (cached protection), P (cached
 *     page dirty), B (block dirty);
 *   - one shared PTE: residency, PR, D (hardware dirty), SD (software
 *     dirty), R (referenced), Z (zero-fill-clean marker);
 *   - the pending bus transaction.  The simulated bus is *atomic* — a
 *     Read/ReadOwned/Upgrade is a synchronous call that settles before
 *     the issuing access completes — so this component collapses to
 *     "none" and every spec rule fuses a transaction's request and
 *     completion.  DESIGN.md §16 records this modelling decision.
 *
 * Transitions are a table of named, guarded rules (SpecRules()): for
 * every reachable (state, stimulus) pair exactly one rule must be
 * enabled, which SpecStep() enforces — an unmatched pair is a hole in
 * the spec, two matched rules an ambiguity; the explorer reports either
 * as a counterexample.  The rules are written from the paper's and
 * DESIGN.md's description of the mechanisms, deliberately *not* by
 * calling the implementation (src/policy/policy_ops.h, src/cache/bus.cc,
 * src/core/): the differential conformance mode (conform.h) exists to
 * prove the two encodings agree.
 */
#ifndef SPUR_MODEL_SPEC_H_
#define SPUR_MODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache.h"
#include "src/common/types.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"

namespace spur::model {

/** Largest processor count the model supports (conform drives N=1..3). */
inline constexpr unsigned kMaxProcs = 3;

/** Cache blocks of the page the model tracks (see the header comment). */
inline constexpr unsigned kTrackedBlocks = 2;

/** Abstract cache-line state for the tracked block on one processor.
 *  Mirrors the SoA normalization invariant: an Invalid line has every
 *  other field zero (cache.h zeroes tag and meta on invalidation). */
struct LineState {
    cache::CoherencyState cs = cache::CoherencyState::kInvalid;
    Protection prot = Protection::kNone;
    bool page_dirty = false;   ///< P
    bool block_dirty = false;  ///< B

    bool valid() const { return cs != cache::CoherencyState::kInvalid; }
    bool operator==(const LineState&) const = default;
};

/** Abstract PTE state for the tracked (writable, anonymous) page.
 *  A non-resident page has every field zero. */
struct PteState {
    bool resident = false;
    Protection prot = Protection::kNone;
    bool dirty = false;       ///< D (hardware dirty bit).
    bool soft_dirty = false;  ///< SD (Sprite software dirty bit).
    bool referenced = false;  ///< R
    bool zfod = false;        ///< Zero-fill-clean marker.

    bool operator==(const PteState&) const = default;
};

/** One abstract protocol state: N processors × two lines plus the PTE. */
struct ProtoState {
    unsigned procs = 1;
    LineState line[kMaxProcs][kTrackedBlocks];
    PteState pte;

    bool operator==(const ProtoState& other) const;
};

/** The stimuli the explorer drives states with. */
enum class StimulusKind : uint8_t {
    kRead,       ///< Load/ifetch of one tracked block on one processor.
    kWrite,      ///< Store to one tracked block on one processor.
    kEvict,      ///< Conflict miss displaces one block on one processor.
    kFlushPage,  ///< Kernel page flush through every cache.
    kClearRef,   ///< Page-daemon front hand clears the reference bit.
};

struct Stimulus {
    StimulusKind kind = StimulusKind::kRead;
    unsigned cpu = 0;    ///< Ignored for the global kinds.
    unsigned block = 0;  ///< Tracked block index; ditto.

    bool operator==(const Stimulus&) const = default;
};

/** One model configuration: processor count and the policy pair. */
struct ModelConfig {
    unsigned procs = 1;
    policy::DirtyPolicyKind dirty = policy::DirtyPolicyKind::kSpur;
    policy::RefPolicyKind ref = policy::RefPolicyKind::kMiss;
};

/**
 * One declarative transition rule.  For a (state, stimulus) pair the
 * rule fires when the stimulus kind matches and the guard holds; apply
 * returns the successor.  Rule ids are stable — DESIGN.md §16 documents
 * them and tests/bus_test.cc cross-references them.
 */
struct Rule {
    const char* id;
    StimulusKind kind;
    const char* description;
    bool (*guard)(const ProtoState&, const Stimulus&, const ModelConfig&);
    ProtoState (*apply)(const ProtoState&, const Stimulus&,
                        const ModelConfig&);
};

/** The spec table, in evaluation order. */
const std::vector<Rule>& SpecRules();

/** Result of applying the spec to one (state, stimulus) pair. */
struct SpecStepResult {
    const Rule* rule = nullptr;  ///< The unique enabled rule.
    ProtoState next;
};

/**
 * Applies the spec table.  Returns the unique enabled rule and the
 * successor; false + *error when no rule or more than one rule is
 * enabled (a spec hole / ambiguity — itself a checkable defect).
 */
bool SpecStep(const ProtoState& state, const Stimulus& stimulus,
              const ModelConfig& config, SpecStepResult* result,
              std::string* error);

/** The initial state: page never touched, every cache cold. */
ProtoState InitialState(const ModelConfig& config);

/**
 * Every stimulus applicable to @p state: Read/Write/Evict per
 * (processor, tracked block), plus FlushPage and ClearRef once the page
 * is resident (the kernel only operates on resident pages).
 */
std::vector<Stimulus> EnumerateStimuli(const ProtoState& state);

/**
 * Canonical encoding of @p state under processor symmetry: per-
 * processor line codes sorted descending, so states differing only by a
 * permutation of processor ids collapse to one key.  Invariants and
 * stimuli are symmetric in the processor id, which makes exploring one
 * representative per key sound.  (Tracked blocks are NOT symmetric-
 * reduced: they are interchangeable in the spec, but keeping both
 * orders costs little and keeps traces concrete.)
 */
uint64_t CanonicalKey(const ProtoState& state);

/** Compact rendering, e.g. "[UO ro, OE rw P B | I, I] pte{rw D R}". */
std::string ToString(const ProtoState& state);
std::string ToString(const Stimulus& stimulus);

/** The protection the VM installs when the page faults in (writable
 *  page): read-only under the protection-emulating policies. */
Protection SpecResidentProtection(policy::DirtyPolicyKind dirty);

/** The policy's record of "this page was modified" (D or SD). */
bool SpecPageDirty(policy::DirtyPolicyKind dirty, const PteState& pte);

}  // namespace spur::model

#endif  // SPUR_MODEL_SPEC_H_

#include "src/model/spec.h"

#include <algorithm>
#include <array>
#include <functional>

namespace spur::model {

namespace {

using cache::CoherencyState;
using policy::DirtyPolicyKind;
using policy::RefPolicyKind;

bool
IsEmulation(DirtyPolicyKind dirty)
{
    return dirty == DirtyPolicyKind::kFault ||
           dirty == DirtyPolicyKind::kFlush ||
           dirty == DirtyPolicyKind::kSpurProt;
}

/** The hardware's write-hit fast path ("proceed without delay"):
 *  which cached checks must pass, per Table 3.1 mechanism. */
bool
FastPath(DirtyPolicyKind dirty, const LineState& line)
{
    switch (dirty) {
        case DirtyPolicyKind::kMin:
            return line.page_dirty;
        case DirtyPolicyKind::kFault:
        case DirtyPolicyKind::kFlush:
        case DirtyPolicyKind::kSpurProt:
            return line.prot == Protection::kReadWrite;
        case DirtyPolicyKind::kSpur:
            return line.prot == Protection::kReadWrite && line.page_dirty;
        case DirtyPolicyKind::kWrite:
        case DirtyPolicyKind::kWriteHw:
            return line.block_dirty;
    }
    return false;
}

/** The slow path's refresh of the cached copy once the PTE records the
 *  page dirty (the dirty-bit-miss / excess-fault / stale-protection
 *  refresh; WRITE's PTE check refreshes nothing cached). */
void
RefreshLine(DirtyPolicyKind dirty, LineState& line)
{
    switch (dirty) {
        case DirtyPolicyKind::kMin:
        case DirtyPolicyKind::kSpur:
            line.page_dirty = true;
            break;
        case DirtyPolicyKind::kFault:
        case DirtyPolicyKind::kFlush:
        case DirtyPolicyKind::kSpurProt:
            line.prot = Protection::kReadWrite;
            break;
        case DirtyPolicyKind::kWrite:
        case DirtyPolicyKind::kWriteHw:
            break;
    }
}

/** The necessary fault's PTE update: record the page dirty (D or
 *  SD + protection upgrade) and consume the zero-fill marker. */
void
RecordPageDirty(DirtyPolicyKind dirty, PteState& pte)
{
    if (IsEmulation(dirty)) {
        pte.soft_dirty = true;
        pte.prot = Protection::kReadWrite;
    } else {
        pte.dirty = true;
    }
    pte.zfod = false;
}

/** Bus Read of one block: the owner (if any) supplies and drops to
 *  OwnedShared; UnOwned peers are untouched. */
void
BusRead(ProtoState& s, unsigned requester, unsigned block)
{
    for (unsigned j = 0; j < s.procs; ++j) {
        if (j == requester) {
            continue;
        }
        if (s.line[j][block].cs == CoherencyState::kOwnedShared ||
            s.line[j][block].cs == CoherencyState::kOwnedExclusive) {
            s.line[j][block].cs = CoherencyState::kOwnedShared;
        }
    }
}

/** Bus ReadOwned / Upgrade of one block: every peer copy is invalidated
 *  (a dirty owner supplies the data on the way out). */
void
InvalidatePeers(ProtoState& s, unsigned requester, unsigned block)
{
    for (unsigned j = 0; j < s.procs; ++j) {
        if (j != requester) {
            s.line[j][block] = LineState{};
        }
    }
}

/** Fill: the block enters UnOwned with PR and P copied from the PTE
 *  (P from the hardware D bit — Figure 3.2). */
void
FillLine(ProtoState& s, unsigned cpu, unsigned block)
{
    s.line[cpu][block] = LineState{CoherencyState::kUnOwned, s.pte.prot,
                                   s.pte.dirty, false};
}

/** Kernel page flush: every cache drops every block of the page
 *  (writebacks implied). */
void
FlushAllCaches(ProtoState& s)
{
    for (unsigned j = 0; j < s.procs; ++j) {
        for (unsigned b = 0; b < kTrackedBlocks; ++b) {
            s.line[j][b] = LineState{};
        }
    }
}

/** Page-fault-in of the (writable, anonymous) page on first touch. */
void
FaultInIfNeeded(ProtoState& s, DirtyPolicyKind dirty)
{
    if (s.pte.resident) {
        return;
    }
    s.pte.resident = true;
    s.pte.prot = SpecResidentProtection(dirty);
    s.pte.dirty = false;
    s.pte.soft_dirty = false;
    s.pte.referenced = true;  // The faulting access references it.
    s.pte.zfod = true;        // Fresh anonymous page, zero-filled.
}

/** The miss-path reference-bit check: MISS/REF fault R back on when it
 *  is clear; NOREF never checks (its hardware bit stays set). */
void
RefOnMiss(RefPolicyKind ref, PteState& pte)
{
    if (ref != RefPolicyKind::kNoRef) {
        pte.referenced = true;
    }
}

/** The write's completion: gain exclusive ownership (Upgrade
 *  invalidates every peer copy unless already exclusive), then
 *  MarkWritten sets B and promotes CS to OwnedExclusive. */
void
CompleteWriteHit(ProtoState& s, unsigned cpu, unsigned block)
{
    if (s.line[cpu][block].cs != CoherencyState::kOwnedExclusive) {
        InvalidatePeers(s, cpu, block);
    }
    s.line[cpu][block].cs = CoherencyState::kOwnedExclusive;
    s.line[cpu][block].block_dirty = true;
}

/** The write-miss tail shared by write-miss and the FLUSH re-execute:
 *  dirty-policy write-miss hook, ReadOwned, fill, MarkWritten. */
void
WriteMissTail(ProtoState& s, unsigned cpu, unsigned block,
              const ModelConfig& config)
{
    if (!SpecPageDirty(config.dirty, s.pte)) {
        RecordPageDirty(config.dirty, s.pte);
        if (config.dirty == DirtyPolicyKind::kFlush) {
            // FLUSH purges the page everywhere before refilling, so no
            // stale read-only block of it can survive anywhere.
            FlushAllCaches(s);
        }
    }
    InvalidatePeers(s, cpu, block);  // Bus ReadOwned.
    FillLine(s, cpu, block);
    s.line[cpu][block].cs = CoherencyState::kOwnedExclusive;  // MarkWritten
    s.line[cpu][block].block_dirty = true;
}

// ---------------------------------------------------------------------------
// Guards and applications (one pair per rule; see SpecRules()).
// ---------------------------------------------------------------------------

bool
GuardHit(const ProtoState& s, const Stimulus& st, const ModelConfig&)
{
    return s.line[st.cpu][st.block].valid();
}

bool
GuardMissed(const ProtoState& s, const Stimulus& st, const ModelConfig& c)
{
    return !GuardHit(s, st, c);
}

ProtoState
ApplyIdentity(const ProtoState& s, const Stimulus&, const ModelConfig&)
{
    return s;
}

ProtoState
ApplyReadMiss(const ProtoState& s, const Stimulus& st, const ModelConfig& c)
{
    ProtoState next = s;
    FaultInIfNeeded(next, c.dirty);
    RefOnMiss(c.ref, next.pte);
    BusRead(next, st.cpu, st.block);
    FillLine(next, st.cpu, st.block);
    return next;
}

bool
GuardWriteHitFast(const ProtoState& s, const Stimulus& st,
                  const ModelConfig& c)
{
    return s.line[st.cpu][st.block].valid() &&
           FastPath(c.dirty, s.line[st.cpu][st.block]);
}

ProtoState
ApplyWriteHitFast(const ProtoState& s, const Stimulus& st,
                  const ModelConfig&)
{
    ProtoState next = s;
    CompleteWriteHit(next, st.cpu, st.block);
    return next;
}

bool
GuardWriteHitRefresh(const ProtoState& s, const Stimulus& st,
                     const ModelConfig& c)
{
    return s.line[st.cpu][st.block].valid() &&
           !FastPath(c.dirty, s.line[st.cpu][st.block]) &&
           SpecPageDirty(c.dirty, s.pte);
}

ProtoState
ApplyWriteHitRefresh(const ProtoState& s, const Stimulus& st,
                     const ModelConfig& c)
{
    ProtoState next = s;
    RefreshLine(c.dirty, next.line[st.cpu][st.block]);
    CompleteWriteHit(next, st.cpu, st.block);
    return next;
}

bool
GuardWriteHitFirstFault(const ProtoState& s, const Stimulus& st,
                        const ModelConfig& c)
{
    return s.line[st.cpu][st.block].valid() &&
           !FastPath(c.dirty, s.line[st.cpu][st.block]) &&
           !SpecPageDirty(c.dirty, s.pte) &&
           c.dirty != DirtyPolicyKind::kFlush;
}

ProtoState
ApplyWriteHitFirstFault(const ProtoState& s, const Stimulus& st,
                        const ModelConfig& c)
{
    ProtoState next = s;
    RecordPageDirty(c.dirty, next.pte);
    RefreshLine(c.dirty, next.line[st.cpu][st.block]);
    CompleteWriteHit(next, st.cpu, st.block);
    return next;
}

bool
GuardWriteHitFlushFault(const ProtoState& s, const Stimulus& st,
                        const ModelConfig& c)
{
    return s.line[st.cpu][st.block].valid() &&
           !FastPath(c.dirty, s.line[st.cpu][st.block]) &&
           !SpecPageDirty(c.dirty, s.pte) &&
           c.dirty == DirtyPolicyKind::kFlush;
}

ProtoState
ApplyWriteHitFlushFault(const ProtoState& s, const Stimulus& st,
                        const ModelConfig& c)
{
    // FLUSH's necessary fault purges the page from every cache — the
    // written line included — so the store re-executes as a write miss
    // and refills under the upgraded protection.
    ProtoState next = s;
    RecordPageDirty(c.dirty, next.pte);
    FlushAllCaches(next);
    RefOnMiss(c.ref, next.pte);  // The re-executed miss checks R.
    WriteMissTail(next, st.cpu, st.block, c);
    return next;
}

ProtoState
ApplyWriteMiss(const ProtoState& s, const Stimulus& st,
               const ModelConfig& c)
{
    ProtoState next = s;
    FaultInIfNeeded(next, c.dirty);
    RefOnMiss(c.ref, next.pte);
    WriteMissTail(next, st.cpu, st.block, c);
    return next;
}

ProtoState
ApplyEvict(const ProtoState& s, const Stimulus& st, const ModelConfig&)
{
    ProtoState next = s;
    next.line[st.cpu][st.block] = LineState{};  // Writeback if B; gone.
    return next;
}

bool
GuardTrue(const ProtoState&, const Stimulus&, const ModelConfig&)
{
    return true;
}

ProtoState
ApplyFlushPage(const ProtoState& s, const Stimulus&, const ModelConfig&)
{
    ProtoState next = s;
    FlushAllCaches(next);
    return next;
}

bool
GuardRefMiss(const ProtoState&, const Stimulus&, const ModelConfig& c)
{
    return c.ref == RefPolicyKind::kMiss;
}

bool
GuardRefRef(const ProtoState&, const Stimulus&, const ModelConfig& c)
{
    return c.ref == RefPolicyKind::kRef;
}

bool
GuardRefNoRef(const ProtoState&, const Stimulus&, const ModelConfig& c)
{
    return c.ref == RefPolicyKind::kNoRef;
}

ProtoState
ApplyClearRef(const ProtoState& s, const Stimulus&, const ModelConfig&)
{
    ProtoState next = s;
    next.pte.referenced = false;
    return next;
}

ProtoState
ApplyClearRefFlush(const ProtoState& s, const Stimulus& st,
                   const ModelConfig& c)
{
    ProtoState next = ApplyClearRef(s, st, c);
    FlushAllCaches(next);  // Guarantees the next use misses and re-sets R.
    return next;
}

uint64_t
EncodeLine(const LineState& line)
{
    return static_cast<uint64_t>(line.cs) |
           (static_cast<uint64_t>(line.prot) << 2) |
           (line.page_dirty ? uint64_t{1} << 4 : 0u) |
           (line.block_dirty ? uint64_t{1} << 5 : 0u);
}

/** 12-bit code for one processor's pair of tracked lines. */
uint64_t
EncodeProc(const LineState lines[kTrackedBlocks])
{
    return EncodeLine(lines[0]) | (EncodeLine(lines[1]) << 6);
}

uint64_t
EncodePte(const PteState& pte)
{
    return (pte.resident ? 1u : 0u) |
           (static_cast<uint64_t>(pte.prot) << 1) |
           (pte.dirty ? uint64_t{1} << 3 : 0u) |
           (pte.soft_dirty ? uint64_t{1} << 4 : 0u) |
           (pte.referenced ? uint64_t{1} << 5 : 0u) |
           (pte.zfod ? uint64_t{1} << 6 : 0u);
}

void
AppendLine(std::string& out, const LineState& line)
{
    if (!line.valid()) {
        out += "I";
        return;
    }
    out += cache::ToString(line.cs);
    out += line.prot == Protection::kReadWrite ? " rw" : " ro";
    if (line.page_dirty) {
        out += " P";
    }
    if (line.block_dirty) {
        out += " B";
    }
}

}  // namespace

bool
ProtoState::operator==(const ProtoState& other) const
{
    if (procs != other.procs || !(pte == other.pte)) {
        return false;
    }
    for (unsigned i = 0; i < procs; ++i) {
        for (unsigned b = 0; b < kTrackedBlocks; ++b) {
            if (!(line[i][b] == other.line[i][b])) {
                return false;
            }
        }
    }
    return true;
}

const std::vector<Rule>&
SpecRules()
{
    static const std::vector<Rule> rules = {
        {"read-hit", StimulusKind::kRead,
         "read/ifetch hits; no state changes", GuardHit, ApplyIdentity},
        {"read-miss", StimulusKind::kRead,
         "read/ifetch misses: fault the page in if needed, check R, bus "
         "Read (owner supplies and drops to OwnedShared), fill UnOwned",
         GuardMissed, ApplyReadMiss},
        {"write-hit-fast", StimulusKind::kWrite,
         "write hits and the cached checks pass: Upgrade unless already "
         "exclusive, MarkWritten", GuardWriteHitFast, ApplyWriteHitFast},
        {"write-hit-refresh", StimulusKind::kWrite,
         "write hits a stale cached copy while the PTE already records "
         "the page dirty: refresh the copy (dirty-bit miss / excess "
         "fault / protection miss), Upgrade, MarkWritten",
         GuardWriteHitRefresh, ApplyWriteHitRefresh},
        {"write-hit-first-fault", StimulusKind::kWrite,
         "first write to the page hits: necessary fault records D/SD, "
         "refresh the cached copy, Upgrade, MarkWritten",
         GuardWriteHitFirstFault, ApplyWriteHitFirstFault},
        {"write-hit-flush-fault", StimulusKind::kWrite,
         "FLUSH only: the necessary fault purges the page from every "
         "cache and the store re-executes as a write miss",
         GuardWriteHitFlushFault, ApplyWriteHitFlushFault},
        {"write-miss", StimulusKind::kWrite,
         "write misses: fault the page in if needed, check R, dirty "
         "policy write-miss hook, bus ReadOwned invalidates every peer "
         "copy, fill, MarkWritten", GuardMissed, ApplyWriteMiss},
        {"evict", StimulusKind::kEvict,
         "a conflicting fill displaces the block (writeback if B)",
         GuardHit, ApplyEvict},
        {"evict-idle", StimulusKind::kEvict,
         "conflict miss while the block is not cached: nothing to evict",
         GuardMissed, ApplyIdentity},
        {"flush-page", StimulusKind::kFlushPage,
         "kernel page flush: every cache drops every block of the page",
         GuardTrue, ApplyFlushPage},
        {"clear-ref", StimulusKind::kClearRef,
         "MISS: the daemon clears R; cached blocks stay resident",
         GuardRefMiss, ApplyClearRef},
        {"clear-ref-flush", StimulusKind::kClearRef,
         "REF: clearing R also flushes the page from every cache",
         GuardRefRef, ApplyClearRefFlush},
        {"clear-ref-noop", StimulusKind::kClearRef,
         "NOREF: the hardware bit stays set; clearing is a no-op",
         GuardRefNoRef, ApplyIdentity},
    };
    return rules;
}

bool
SpecStep(const ProtoState& state, const Stimulus& stimulus,
         const ModelConfig& config, SpecStepResult* result,
         std::string* error)
{
    const Rule* enabled = nullptr;
    for (const Rule& rule : SpecRules()) {
        if (rule.kind != stimulus.kind ||
            !rule.guard(state, stimulus, config)) {
            continue;
        }
        if (enabled != nullptr) {
            if (error != nullptr) {
                *error = std::string("spec ambiguity: rules '") +
                         enabled->id + "' and '" + rule.id +
                         "' both enabled for " + ToString(stimulus) +
                         " in " + ToString(state);
            }
            return false;
        }
        enabled = &rule;
    }
    if (enabled == nullptr) {
        if (error != nullptr) {
            *error = "spec hole: no rule enabled for " +
                     ToString(stimulus) + " in " + ToString(state);
        }
        return false;
    }
    result->rule = enabled;
    result->next = enabled->apply(state, stimulus, config);
    return true;
}

ProtoState
InitialState(const ModelConfig& config)
{
    ProtoState state;
    state.procs = config.procs;
    return state;
}

std::vector<Stimulus>
EnumerateStimuli(const ProtoState& state)
{
    std::vector<Stimulus> stimuli;
    stimuli.reserve(3 * kTrackedBlocks * state.procs + 2);
    for (unsigned cpu = 0; cpu < state.procs; ++cpu) {
        for (unsigned block = 0; block < kTrackedBlocks; ++block) {
            stimuli.push_back({StimulusKind::kRead, cpu, block});
            stimuli.push_back({StimulusKind::kWrite, cpu, block});
            stimuli.push_back({StimulusKind::kEvict, cpu, block});
        }
    }
    if (state.pte.resident) {
        // The kernel's page operations only ever target resident pages
        // (the daemon walks bound frames; flushes precede reclaim).
        stimuli.push_back({StimulusKind::kFlushPage, 0, 0});
        stimuli.push_back({StimulusKind::kClearRef, 0, 0});
    }
    return stimuli;
}

uint64_t
CanonicalKey(const ProtoState& state)
{
    std::array<uint64_t, kMaxProcs> procs = {0, 0, 0};
    for (unsigned i = 0; i < state.procs; ++i) {
        procs[i] = EncodeProc(state.line[i]);
    }
    // Descending insertion sort over at most kMaxProcs = 3 entries.
    for (unsigned i = 1; i < state.procs; ++i) {
        for (unsigned j = i; j > 0 && procs[j] > procs[j - 1]; --j) {
            std::swap(procs[j], procs[j - 1]);
        }
    }
    return EncodePte(state.pte) | (procs[0] << 7) | (procs[1] << 19) |
           (procs[2] << 31);
}

std::string
ToString(const ProtoState& state)
{
    std::string out = "[";
    for (unsigned i = 0; i < state.procs; ++i) {
        if (i > 0) {
            out += " | ";
        }
        for (unsigned b = 0; b < kTrackedBlocks; ++b) {
            if (b > 0) {
                out += ", ";
            }
            AppendLine(out, state.line[i][b]);
        }
    }
    out += "] pte{";
    if (!state.pte.resident) {
        out += "not-resident";
    } else {
        out += state.pte.prot == Protection::kReadWrite ? "rw" : "ro";
        if (state.pte.dirty) {
            out += " D";
        }
        if (state.pte.soft_dirty) {
            out += " SD";
        }
        if (state.pte.referenced) {
            out += " R";
        }
        if (state.pte.zfod) {
            out += " Z";
        }
    }
    out += "}";
    return out;
}

std::string
ToString(const Stimulus& stimulus)
{
    switch (stimulus.kind) {
        case StimulusKind::kRead:
            return "read@" + std::to_string(stimulus.cpu) + ".b" +
                   std::to_string(stimulus.block);
        case StimulusKind::kWrite:
            return "write@" + std::to_string(stimulus.cpu) + ".b" +
                   std::to_string(stimulus.block);
        case StimulusKind::kEvict:
            return "evict@" + std::to_string(stimulus.cpu) + ".b" +
                   std::to_string(stimulus.block);
        case StimulusKind::kFlushPage:
            return "flush-page";
        case StimulusKind::kClearRef:
            return "clear-ref";
    }
    return "?";
}

Protection
SpecResidentProtection(policy::DirtyPolicyKind dirty)
{
    // FAULT/FLUSH/SPUR-PROT under-protect writable clean pages so the
    // first write faults; the others install the real protection.
    return IsEmulation(dirty) ? Protection::kReadOnly
                              : Protection::kReadWrite;
}

bool
SpecPageDirty(policy::DirtyPolicyKind dirty, const PteState& pte)
{
    return IsEmulation(dirty) ? pte.soft_dirty : pte.dirty;
}

}  // namespace spur::model

#include "src/model/explore.h"

#include <algorithm>
#include <deque>

namespace spur::model {

namespace {

std::string
FormatViolations(const std::vector<InvariantViolation>& violations)
{
    std::string out;
    for (const InvariantViolation& v : violations) {
        if (!out.empty()) {
            out += "; ";
        }
        out += v.id;
        out += ": ";
        out += v.detail;
    }
    return out;
}

/** A trace ending in a violated step: the path to the offending state
 *  plus (optionally) one more stimulus that exposed the problem. */
std::string
FormatCounterexample(const ExploreResult& result, size_t index,
                     const Stimulus* final_stimulus,
                     const char* final_rule, const ProtoState* final_state,
                     const std::string& diagnosis)
{
    std::string out = diagnosis;
    out += "\ncounterexample (shortest stimulus trace):\n";
    out += FormatTrace(result, index);
    if (final_stimulus != nullptr) {
        out += "     -- " + ToString(*final_stimulus);
        if (final_rule != nullptr) {
            out += std::string(" (") + final_rule + ")";
        }
        out += " -->\n";
        if (final_state != nullptr) {
            out += "  *  " + ToString(*final_state) + "\n";
        }
    }
    return out;
}

}  // namespace

ExploreResult
Explore(const ModelConfig& config)
{
    ExploreResult result;
    const ProtoState initial = InitialState(config);

    std::map<uint64_t, int32_t> visited;
    std::deque<int32_t> frontier;

    result.states.push_back(ExploredState{initial, -1, Stimulus{}, nullptr, 0});
    visited[CanonicalKey(initial)] = 0;
    frontier.push_back(0);

    const std::vector<InvariantViolation> initial_violations =
        CheckState(initial, config);
    if (!initial_violations.empty()) {
        result.problem = FormatCounterexample(
            result, 0, nullptr, nullptr, nullptr,
            "invariant violation in the initial state: " +
                FormatViolations(initial_violations));
        return result;
    }

    while (!frontier.empty()) {
        const int32_t index = frontier.front();
        frontier.pop_front();
        // states grows during the loop; copy instead of holding a ref.
        const ProtoState state = result.states[index].state;
        const unsigned depth = result.states[index].depth;

        for (const Stimulus& stimulus : EnumerateStimuli(state)) {
            SpecStepResult step;
            std::string error;
            if (!SpecStep(state, stimulus, config, &step, &error)) {
                result.problem = FormatCounterexample(
                    result, static_cast<size_t>(index), &stimulus, nullptr,
                    nullptr, error);
                return result;
            }
            ++result.transitions;
            ++result.rule_fires[step.rule->id];

            const std::vector<InvariantViolation> transition_violations =
                CheckTransition(state, stimulus, step.next, config);
            if (!transition_violations.empty()) {
                result.problem = FormatCounterexample(
                    result, static_cast<size_t>(index), &stimulus,
                    step.rule->id, &step.next,
                    "transition invariant violation: " +
                        FormatViolations(transition_violations));
                return result;
            }
            const std::vector<InvariantViolation> state_violations =
                CheckState(step.next, config);
            if (!state_violations.empty()) {
                result.problem = FormatCounterexample(
                    result, static_cast<size_t>(index), &stimulus,
                    step.rule->id, &step.next,
                    "invariant violation: " +
                        FormatViolations(state_violations));
                return result;
            }

            const uint64_t key = CanonicalKey(step.next);
            if (visited.find(key) != visited.end()) {
                continue;
            }
            const int32_t next_index =
                static_cast<int32_t>(result.states.size());
            visited[key] = next_index;
            result.states.push_back(ExploredState{
                step.next, index, stimulus, step.rule->id, depth + 1});
            if (depth + 1 > result.max_depth) {
                result.max_depth = depth + 1;
            }
            frontier.push_back(next_index);
        }
    }

    result.ok = true;
    return result;
}

std::vector<Stimulus>
TraceTo(const ExploreResult& result, size_t index)
{
    std::vector<Stimulus> trace;
    for (int32_t i = static_cast<int32_t>(index);
         result.states[static_cast<size_t>(i)].parent >= 0;
         i = result.states[static_cast<size_t>(i)].parent) {
        trace.push_back(result.states[static_cast<size_t>(i)].via);
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
}

std::string
FormatTrace(const ExploreResult& result, size_t index)
{
    std::vector<size_t> path;
    for (int32_t i = static_cast<int32_t>(index); i >= 0;
         i = result.states[static_cast<size_t>(i)].parent) {
        path.push_back(static_cast<size_t>(i));
    }
    std::reverse(path.begin(), path.end());

    std::string out;
    for (size_t step = 0; step < path.size(); ++step) {
        const ExploredState& node = result.states[path[step]];
        if (step > 0) {
            out += "     -- " + ToString(node.via);
            if (node.rule != nullptr) {
                out += std::string(" (") + node.rule + ")";
            }
            out += " -->\n";
        }
        out += "  " + std::to_string(step) + ". " + ToString(node.state) +
               "\n";
    }
    return out;
}

}  // namespace spur::model

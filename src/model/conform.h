/**
 * @file
 * Differential conformance: drives the *real* transition code — the
 * SoA cache, the snoop bus, the policies and the VM, through the
 * public SpurSystem/MpSpurSystem surface — over every reachable
 * (state, stimulus) pair the spec explorer enumerates, and asserts the
 * implementation's successor abstracts to exactly the spec's successor.
 * This turns the spec table into an executable contract over the
 * hot-path rewrite.
 *
 * Concretization: one process, one writable heap page; the tracked
 * blocks are two adjacent blocks of that page (chosen so their cache
 * indexes dodge the page-table lines translation fills — see
 * conform.cc), and each Evict stimulus is realized as a read of the
 * block's cache-size-aligned alias (same cache index, different tag),
 * exactly the conflict miss the abstraction models.
 * Replaying a node's shortest stimulus trace on a fresh machine
 * reconstructs its representative state; symmetry of the machine over
 * processor ids extends the per-representative check to the whole
 * orbit.
 */
#ifndef SPUR_MODEL_CONFORM_H_
#define SPUR_MODEL_CONFORM_H_

#include <cstdint>
#include <string>

#include "src/model/explore.h"
#include "src/model/spec.h"

namespace spur::model {

/** Which real transition code conform drives. */
enum class Implementation : uint8_t {
    /** SpurSystem::AccessBatch — the devirtualized SoA batch hot path
     *  (procs must be 1). */
    kUniprocessorBatch,
    /** MpSpurSystem::Access — the snoop-bus multiprocessor (procs
     *  1..kMaxProcs; 1 exercises the degenerate-bus configuration). */
    kMultiprocessor,
};

const char* ToString(Implementation impl);

struct ConformResult {
    bool ok = false;
    /** Empty when ok; otherwise the divergence plus stimulus trace. */
    std::string problem;
    uint64_t states_replayed = 0;
    uint64_t pairs_checked = 0;
};

/**
 * Explores @p config's spec state space, then checks every reachable
 * (state, stimulus) pair against @p impl.  Any spec-side failure
 * (invariant violation, hole) is reported the same way.
 */
ConformResult Conform(const ModelConfig& config, Implementation impl);

}  // namespace spur::model

#endif  // SPUR_MODEL_CONFORM_H_

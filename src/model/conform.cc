#include "src/model/conform.h"

#include <array>
#include <memory>
#include <vector>

#include "src/common/log.h"
#include "src/core/mp_system.h"
#include "src/core/system.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/vm/region.h"

namespace spur::model {

namespace {

/** Heap segment base (segment register 2) — same layout the synthetic
 *  workloads use; defined here so src/model does not pull in workload. */
constexpr ProcessAddr kHeapBase = 0x80000000;

/** Offset, in blocks, of tracked block 0 within the tracked page.
 *  Blocks 2 and 3 rather than 0 and 1: the tracked page's own PTE line
 *  maps to cache index 0 in the prototype geometry, and a tracked block
 *  sharing that index would be collaterally displaced by PTE fills the
 *  abstraction does not model.  The constructor checks the final
 *  geometry and refuses to run on a collision. */
constexpr unsigned kFirstTrackedBlock = 2;

/**
 * One freshly built real machine plus the concretization of the
 * abstract model: a single heap region of cache_bytes + page_bytes, the
 * tracked blocks inside its first page, each Evict alias one cache size
 * above its block (same cache index, different tag).
 */
class Harness
{
  public:
    Harness(const ModelConfig& config, Implementation impl)
        : procs_(config.procs)
    {
        const sim::MachineConfig machine = sim::MachineConfig::Prototype(1);
        if (impl == Implementation::kUniprocessorBatch) {
            if (config.procs != 1) {
                Fatal("model: the uniprocessor batch harness requires "
                      "procs=1");
            }
            uni_ = std::make_unique<core::SpurSystem>(machine, config.dirty,
                                                      config.ref);
            pid_ = uni_->CreateProcess();
            uni_->MapRegion(pid_, kHeapBase,
                            machine.cache_bytes + machine.page_bytes,
                            vm::PageKind::kHeap);
        } else {
            mp_ = std::make_unique<core::MpSpurSystem>(
                machine, config.procs, config.dirty, config.ref);
            pid_ = mp_->CreateProcess();
            mp_->MapRegion(pid_, kHeapBase,
                           machine.cache_bytes + machine.page_bytes,
                           vm::PageKind::kHeap);
        }
        for (unsigned b = 0; b < kTrackedBlocks; ++b) {
            target_va_[b] = static_cast<ProcessAddr>(
                kHeapBase + (kFirstTrackedBlock + b) * machine.block_bytes);
            alias_va_[b] = static_cast<ProcessAddr>(target_va_[b] +
                                                    machine.cache_bytes);
            target_gva_[b] = ToGlobal(target_va_[b]);
        }
        CheckGeometry(machine);
    }

    void Apply(const Stimulus& stimulus)
    {
        switch (stimulus.kind) {
            case StimulusKind::kRead:
                Access(stimulus.cpu, MemRef{pid_, target_va_[stimulus.block],
                                            AccessType::kRead});
                return;
            case StimulusKind::kWrite:
                Access(stimulus.cpu, MemRef{pid_, target_va_[stimulus.block],
                                            AccessType::kWrite});
                return;
            case StimulusKind::kEvict:
                // A read of the alias block: same index, different tag —
                // the conflict miss displaces the tracked block.
                Access(stimulus.cpu, MemRef{pid_, alias_va_[stimulus.block],
                                            AccessType::kRead});
                return;
            case StimulusKind::kFlushPage:
                if (uni_ != nullptr) {
                    uni_->FlushPage(target_gva_[0]);
                } else {
                    mp_->FlushPage(target_gva_[0]);
                }
                return;
            case StimulusKind::kClearRef:
                if (uni_ != nullptr) {
                    uni_->ClearRefBit(target_gva_[0]);
                } else {
                    mp_->ClearRefBit(target_gva_[0]);
                }
                return;
        }
    }

    /** Reads the machine back into the abstract state space. */
    ProtoState Abstract() const
    {
        ProtoState state;
        state.procs = procs_;
        for (unsigned cpu = 0; cpu < procs_; ++cpu) {
            const cache::VirtualCache& vcache =
                uni_ != nullptr ? uni_->vcache() : mp_->vcache(cpu);
            for (unsigned b = 0; b < kTrackedBlocks; ++b) {
                const cache::ConstLineRef line =
                    vcache.Lookup(target_gva_[b]);
                if (line) {
                    state.line[cpu][b] =
                        LineState{line.state(), line.prot(),
                                  line.page_dirty(), line.block_dirty()};
                }
            }
        }
        const pt::Pte* pte = uni_ != nullptr
                                 ? uni_->FindPte(target_gva_[0])
                                 : mp_->FindPte(target_gva_[0]);
        if (pte != nullptr && pte->valid()) {
            state.pte.resident = true;
            state.pte.prot = pte->protection();
            state.pte.dirty = pte->dirty();
            state.pte.soft_dirty = pte->soft_dirty();
            state.pte.referenced = pte->referenced();
            state.pte.zfod = pte->zfod_clean();
        }
        return state;
    }

  private:
    GlobalAddr ToGlobal(ProcessAddr va) const
    {
        return uni_ != nullptr ? uni_->ToGlobal(pid_, va)
                               : mp_->ToGlobal(pid_, va);
    }

    /**
     * The abstraction assumes nothing but the two tracked blocks and
     * their deliberate aliases ever occupies the tracked cache indexes.
     * Translation also fills *PTE* blocks into the cache, so the PTE
     * lines of the tracked page and of the alias page must map to other
     * indexes — otherwise a PTE fill would displace a tracked block
     * behind the model's back.  Checked here, once, against the real
     * geometry rather than assumed.
     */
    void CheckGeometry(const sim::MachineConfig& machine) const
    {
        const auto index_of = [&machine](GlobalAddr gva) {
            return (gva >> machine.BlockShift()) &
                   ((uint64_t{1} << machine.IndexBits()) - 1);
        };
        const GlobalAddr pte_lines[2] = {
            pt::PageTable::PteVa(target_gva_[0] >> machine.PageShift()),
            pt::PageTable::PteVa(ToGlobal(alias_va_[0]) >>
                                 machine.PageShift()),
        };
        for (unsigned b = 0; b < kTrackedBlocks; ++b) {
            for (const GlobalAddr pte_line : pte_lines) {
                if (index_of(pte_line) == index_of(target_gva_[b])) {
                    Fatal("model: tracked block " + std::to_string(b) +
                          " (cache index " +
                          std::to_string(index_of(target_gva_[b])) +
                          ") collides with a page-table line; move "
                          "kFirstTrackedBlock");
                }
            }
        }
    }

    void Access(unsigned cpu, const MemRef& ref)
    {
        if (uni_ != nullptr) {
            // Through the devirtualized SoA batch path, one reference at
            // a time — identical semantics to Access(), and exactly the
            // code the issue's conformance contract targets.
            uni_->AccessBatch(&ref, 1);
        } else {
            mp_->Access(cpu, ref);
        }
    }

    unsigned procs_;
    std::unique_ptr<core::SpurSystem> uni_;
    std::unique_ptr<core::MpSpurSystem> mp_;
    Pid pid_ = 0;
    std::array<ProcessAddr, kTrackedBlocks> target_va_ = {};
    std::array<ProcessAddr, kTrackedBlocks> alias_va_ = {};
    std::array<GlobalAddr, kTrackedBlocks> target_gva_ = {};
};

/** Replays @p trace on a fresh machine. */
std::unique_ptr<Harness>
Replay(const ModelConfig& config, Implementation impl,
       const std::vector<Stimulus>& trace)
{
    auto harness = std::make_unique<Harness>(config, impl);
    for (const Stimulus& stimulus : trace) {
        harness->Apply(stimulus);
    }
    return harness;
}

std::string
Mismatch(const char* what, const ExploreResult& graph, size_t index,
         const Stimulus* stimulus, const ProtoState& expected,
         const ProtoState& actual, Implementation impl)
{
    std::string out = std::string("conformance divergence (") +
                      ToString(impl) + "): " + what + "\n";
    out += "  spec:           " + ToString(expected) + "\n";
    out += "  implementation: " + ToString(actual) + "\n";
    out += "stimulus trace:\n";
    out += FormatTrace(graph, index);
    if (stimulus != nullptr) {
        out += "     -- " + ToString(*stimulus) + " -->  (diverges)\n";
    }
    return out;
}

}  // namespace

const char*
ToString(Implementation impl)
{
    switch (impl) {
        case Implementation::kUniprocessorBatch:
            return "uniprocessor-batch";
        case Implementation::kMultiprocessor:
            return "multiprocessor";
    }
    return "?";
}

ConformResult
Conform(const ModelConfig& config, Implementation impl)
{
    ConformResult result;

    ExploreResult graph = Explore(config);
    if (!graph.ok) {
        result.problem = "spec exploration failed: " + graph.problem;
        return result;
    }

    for (size_t i = 0; i < graph.states.size(); ++i) {
        const ProtoState& state = graph.states[i].state;
        const std::vector<Stimulus> trace = TraceTo(graph, i);

        // Reconstruct the representative and verify the replay lands on
        // it — this re-checks every prefix transition along the way.
        const std::unique_ptr<Harness> base = Replay(config, impl, trace);
        const ProtoState replayed = base->Abstract();
        if (!(replayed == state)) {
            result.problem = Mismatch("replaying the trace does not "
                                      "reproduce the explored state",
                                      graph, i, nullptr, state, replayed,
                                      impl);
            return result;
        }
        ++result.states_replayed;

        for (const Stimulus& stimulus : EnumerateStimuli(state)) {
            SpecStepResult step;
            std::string error;
            if (!SpecStep(state, stimulus, config, &step, &error)) {
                result.problem = "spec failure during conformance: " + error;
                return result;
            }
            const std::unique_ptr<Harness> probe =
                Replay(config, impl, trace);
            probe->Apply(stimulus);
            const ProtoState actual = probe->Abstract();
            if (!(actual == step.next)) {
                std::string what =
                    std::string("successor mismatch on rule '") +
                    step.rule->id + "'";
                result.problem = Mismatch(what.c_str(), graph, i, &stimulus,
                                          step.next, actual, impl);
                return result;
            }
            ++result.pairs_checked;
        }
    }

    result.ok = true;
    return result;
}

}  // namespace spur::model

#include "src/model/invariants.h"

namespace spur::model {

namespace {

using cache::CoherencyState;
using policy::DirtyPolicyKind;
using policy::RefPolicyKind;

bool
IsOwned(const LineState& line)
{
    return line.cs == CoherencyState::kOwnedShared ||
           line.cs == CoherencyState::kOwnedExclusive;
}

bool
UsesProtectionEmulation(DirtyPolicyKind dirty)
{
    return dirty == DirtyPolicyKind::kFault ||
           dirty == DirtyPolicyKind::kFlush ||
           dirty == DirtyPolicyKind::kSpurProt;
}

void
Add(std::vector<InvariantViolation>& out, const char* id,
    std::string detail)
{
    out.push_back(InvariantViolation{id, std::move(detail)});
}

std::string
LineName(unsigned cpu, unsigned block)
{
    return "cpu " + std::to_string(cpu) + " block " +
           std::to_string(block);
}

}  // namespace

std::vector<InvariantViolation>
CheckState(const ProtoState& state, const ModelConfig& config)
{
    std::vector<InvariantViolation> out;

    // Ownership (M1/M2) is a per-block property; the dirty/ref page
    // invariants (M4/M6/M7) range over every tracked block.
    unsigned total_copies = 0;
    bool any_block_dirty = false;
    for (unsigned b = 0; b < kTrackedBlocks; ++b) {
        unsigned owners = 0;
        unsigned copies = 0;
        bool exclusive = false;
        for (unsigned i = 0; i < state.procs; ++i) {
            const LineState& line = state.line[i][b];
            if (line.valid()) {
                ++copies;
            }
            if (IsOwned(line)) {
                ++owners;
            }
            if (line.cs == CoherencyState::kOwnedExclusive) {
                exclusive = true;
            }
            if (line.block_dirty) {
                any_block_dirty = true;
            }

            // M3 dirty-implies-owner.
            if (line.block_dirty && !IsOwned(line)) {
                Add(out, "M3",
                    LineName(i, b) +
                        " holds a block-dirty copy without ownership");
            }
            // M5 p-not-ahead.
            if (line.page_dirty && !state.pte.dirty) {
                Add(out, "M5",
                    LineName(i, b) +
                        " caches P=1 while the PTE's D bit is clear");
            }
            // M8 normalization (invalid line side).
            if (!line.valid() && !(line == LineState{})) {
                Add(out, "M8",
                    LineName(i, b) +
                        " is an invalid line with non-zero fields");
            }
        }
        if (owners > 1) {
            Add(out, "M1",
                std::to_string(owners) +
                    " simultaneous owners of block " + std::to_string(b));
        }
        if (exclusive && copies > 1) {
            Add(out, "M2",
                "an OwnedExclusive copy of block " + std::to_string(b) +
                    " coexists with " + std::to_string(copies - 1) +
                    " other copies");
        }
        total_copies += copies;
    }

    // M4 no-lost-dirty.
    if (any_block_dirty && !SpecPageDirty(config.dirty, state.pte)) {
        Add(out, "M4",
            "a block-dirty copy exists but the PTE does not record the "
            "page dirty");
    }

    // M6 protection-emulation.
    if (UsesProtectionEmulation(config.dirty) && state.pte.resident) {
        const bool pte_rw = state.pte.prot == Protection::kReadWrite;
        if (pte_rw != state.pte.soft_dirty) {
            Add(out, "M6",
                std::string("PTE protection ") +
                    (pte_rw ? "read-write" : "read-only") +
                    " disagrees with SD=" +
                    (state.pte.soft_dirty ? "1" : "0"));
        }
        for (unsigned i = 0; i < state.procs; ++i) {
            for (unsigned b = 0; b < kTrackedBlocks; ++b) {
                const LineState& line = state.line[i][b];
                if (line.valid() &&
                    line.prot == Protection::kReadWrite && !pte_rw) {
                    Add(out, "M6",
                        LineName(i, b) +
                            " caches read-write protection while the "
                            "PTE is read-only");
                }
                if (config.dirty == DirtyPolicyKind::kFlush &&
                    state.pte.soft_dirty && line.valid() &&
                    line.prot != Protection::kReadWrite) {
                    Add(out, "M6",
                        "FLUSH: " + LineName(i, b) +
                            " keeps a stale read-only copy after the "
                            "page went dirty (would excess-fault)");
                }
            }
        }
    }

    // M7 ref-flush-hygiene.
    if (config.ref == RefPolicyKind::kRef && state.pte.resident &&
        !state.pte.referenced && total_copies > 0) {
        Add(out, "M7",
            "REF: the page is unreferenced yet still cached (" +
                std::to_string(total_copies) + " copies)");
    }

    // M8 normalization (non-resident page side).
    if (!state.pte.resident) {
        if (!(state.pte == PteState{})) {
            Add(out, "M8", "non-resident PTE has non-zero fields");
        }
        if (total_copies > 0) {
            Add(out, "M8",
                "a non-resident page has " +
                    std::to_string(total_copies) + " cached copies");
        }
    }

    return out;
}

std::vector<InvariantViolation>
CheckTransition(const ProtoState& before, const Stimulus& stimulus,
                const ProtoState& after, const ModelConfig&)
{
    std::vector<InvariantViolation> out;

    // M9 dirty-monotone.
    if (before.pte.resident && !after.pte.resident) {
        Add(out, "M9", "residency fell during a step");
    }
    if (before.pte.dirty && !after.pte.dirty) {
        Add(out, "M9", "the hardware D bit fell during a step");
    }
    if (before.pte.soft_dirty && !after.pte.soft_dirty) {
        Add(out, "M9", "the software SD bit fell during a step");
    }

    // M10 ref-monotone.
    if (before.pte.referenced && !after.pte.referenced &&
        stimulus.kind != StimulusKind::kClearRef) {
        Add(out, "M10",
            "R fell on " + ToString(stimulus) +
                " (only clear-ref may clear it)");
    }

    return out;
}

}  // namespace spur::model

/**
 * @file
 * Murphi-style explicit-state breadth-first exploration of the spec
 * table, with symmetry reduction over processor ids (CanonicalKey).
 * Every reachable state is checked against the M1..M8 state invariants,
 * every transition against M9/M10 and spec totality/determinism; the
 * first violation stops the search and is reported with a shortest
 * stimulus trace from the initial state (BFS order makes it minimal
 * up to symmetry).
 *
 * The explorer keeps one *representative* concrete state per canonical
 * key plus its parent link; expanding representatives only is sound
 * because the rules, stimuli and invariants are symmetric under
 * processor permutation.  The retained graph doubles as the worklist
 * for differential conformance (conform.h): replaying a node's trace
 * on the real machine reconstructs exactly that representative.
 */
#ifndef SPUR_MODEL_EXPLORE_H_
#define SPUR_MODEL_EXPLORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/model/invariants.h"
#include "src/model/spec.h"

namespace spur::model {

/** One reachable representative and its shortest-path parent link. */
struct ExploredState {
    ProtoState state;
    int32_t parent = -1;  ///< Index into ExploreResult::states; -1 = root.
    Stimulus via;         ///< Stimulus that produced it from the parent.
    const char* rule = nullptr;  ///< Id of the rule that fired (null = root).
    unsigned depth = 0;
};

struct ExploreResult {
    bool ok = false;
    /** Empty when ok; otherwise the violation plus counterexample trace. */
    std::string problem;
    /** Reachable canonical states, in BFS order (index 0 = initial). */
    std::vector<ExploredState> states;
    uint64_t transitions = 0;
    unsigned max_depth = 0;
    /** Rule id -> number of (canonical state, stimulus) pairs it fired on. */
    std::map<std::string, uint64_t> rule_fires;
};

/** Exhaustively explores @p config's state space. */
ExploreResult Explore(const ModelConfig& config);

/** The stimulus sequence from the initial state to states[index]. */
std::vector<Stimulus> TraceTo(const ExploreResult& result, size_t index);

/**
 * Renders the trace to states[index] as a numbered stimulus sequence
 * with intermediate states and rule ids — the counterexample format.
 */
std::string FormatTrace(const ExploreResult& result, size_t index);

}  // namespace spur::model

#endif  // SPUR_MODEL_EXPLORE_H_

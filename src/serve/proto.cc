#include "src/serve/proto.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "src/sweep/json.h"
#include "src/sweep/stream.h"

namespace spur::serve {

namespace {

/** Protocol payloads larger than this are hostile, not requests. */
constexpr uint64_t kMaxProtoPayload = 1ULL << 24;

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

bool
CheckProtoVersion(const sweep::JsonValue& object, std::string* error)
{
    const sweep::JsonValue* field = object.Find("proto_version");
    if (field == nullptr) {
        return Fail(error, "missing 'proto_version'");
    }
    const std::optional<uint64_t> version = field->AsUint64();
    if (!version || *version != static_cast<uint64_t>(kProtoVersion)) {
        return Fail(error, "unsupported proto_version (expected " +
                               std::to_string(kProtoVersion) + ")");
    }
    return true;
}

bool
ReadUint(const sweep::JsonValue& object, const char* key, uint64_t* out,
         std::string* error)
{
    const sweep::JsonValue* field = object.Find(key);
    if (field == nullptr) {
        return Fail(error, std::string("missing '") + key + "'");
    }
    const std::optional<uint64_t> value = field->AsUint64();
    if (!value) {
        return Fail(error, std::string("'") + key +
                               "' must be a non-negative integer");
    }
    *out = *value;
    return true;
}

}  // namespace

std::string
EncodeHelloFrame(const ClientHello& hello)
{
    std::string payload = "{\"proto_version\": ";
    payload += std::to_string(kProtoVersion);
    payload += ", \"have_records\": ";
    payload += std::to_string(hello.have_records);
    payload += ", \"request\": ";
    payload += ToJson(hello.request);
    payload += '}';
    return sweep::EncodeStreamFrame(kTagRequest, payload);
}

std::string
EncodeAcceptFrame(const ServerAccept& accept)
{
    std::string payload = "{\"proto_version\": ";
    payload += std::to_string(kProtoVersion);
    payload += ", \"total_cells\": ";
    payload += std::to_string(accept.total_cells);
    payload += ", \"skip_records\": ";
    payload += std::to_string(accept.skip_records);
    payload += '}';
    return sweep::EncodeStreamFrame(kTagAccept, payload);
}

std::string
EncodeRejectFrame(const std::string& reason)
{
    std::string payload = "{\"proto_version\": ";
    payload += std::to_string(kProtoVersion);
    payload += ", \"error\": \"";
    payload += stats::JsonWriter::Escape(reason);
    payload += "\"}";
    return sweep::EncodeStreamFrame(kTagReject, payload);
}

bool
ParseHelloPayload(const std::string& payload, ClientHello* out,
                  std::string* error)
{
    std::string parse_error;
    const std::optional<sweep::JsonValue> root =
        sweep::ParseJson(payload, &parse_error);
    if (!root || !root->IsObject()) {
        return Fail(error, root ? "hello is not an object" : parse_error);
    }
    if (root->members().size() != 3) {
        return Fail(error, "hello must have exactly proto_version, "
                           "have_records and request");
    }
    ClientHello hello;
    if (!CheckProtoVersion(*root, error) ||
        !ReadUint(*root, "have_records", &hello.have_records, error)) {
        return false;
    }
    const sweep::JsonValue* request = root->Find("request");
    if (request == nullptr) {
        return Fail(error, "missing 'request'");
    }
    if (!ParseSweepRequestValue(*request, &hello.request, error)) {
        return false;
    }
    *out = std::move(hello);
    return true;
}

bool
ParseAcceptPayload(const std::string& payload, ServerAccept* out,
                   std::string* error)
{
    std::string parse_error;
    const std::optional<sweep::JsonValue> root =
        sweep::ParseJson(payload, &parse_error);
    if (!root || !root->IsObject()) {
        return Fail(error, root ? "accept is not an object" : parse_error);
    }
    if (root->members().size() != 3) {
        return Fail(error, "accept must have exactly proto_version, "
                           "total_cells and skip_records");
    }
    ServerAccept accept;
    if (!CheckProtoVersion(*root, error) ||
        !ReadUint(*root, "total_cells", &accept.total_cells, error) ||
        !ReadUint(*root, "skip_records", &accept.skip_records, error)) {
        return false;
    }
    *out = accept;
    return true;
}

bool
ParseRejectPayload(const std::string& payload, std::string* reason,
                   std::string* error)
{
    std::string parse_error;
    const std::optional<sweep::JsonValue> root =
        sweep::ParseJson(payload, &parse_error);
    if (!root || !root->IsObject()) {
        return Fail(error, root ? "reject is not an object" : parse_error);
    }
    if (!CheckProtoVersion(*root, error)) {
        return false;
    }
    const sweep::JsonValue* field = root->Find("error");
    if (field == nullptr || !field->IsString()) {
        return Fail(error, "'error' must be a string");
    }
    *reason = field->AsString();
    return true;
}

int64_t
MonotonicMs()
{
    // Connection deadlines are scheduling, not data: they bound how
    // long we wait for a peer and can never influence a reply byte
    // (DESIGN.md §17).
    // spur-lint: allow(no-wallclock)
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::milliseconds>(now)
        .count();
}

bool
WriteAllFd(int fd, const std::string& data)
{
    size_t written = 0;
    while (written < data.size()) {
        // MSG_NOSIGNAL: a peer that died mid-reply must surface as
        // EPIPE (cancellation), not kill the daemon with SIGPIPE.
        const ssize_t n = ::send(fd, data.data() + written,
                                 data.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        written += static_cast<size_t>(n);
    }
    return true;
}

bool
FrameReader::FillSome(int64_t deadline_ms, std::string* error)
{
    for (;;) {
        const int64_t remaining = deadline_ms - MonotonicMs();
        if (remaining <= 0) {
            return Fail(error, "timed out waiting for peer");
        }
        struct pollfd pfd = {fd_, POLLIN, 0};
        const int ready = ::poll(
            &pfd, 1,
            static_cast<int>(std::min<int64_t>(remaining, 1000)));
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            return Fail(error, "poll failed");
        }
        if (ready == 0) {
            continue;  // Re-check the deadline.
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return Fail(error, "read failed");
        }
        if (n == 0) {
            return Fail(error, "connection closed");
        }
        buffer_.append(chunk, static_cast<size_t>(n));
        return true;
    }
}

bool
FrameReader::ReadFrame(char* tag, std::string* payload, int timeout_ms,
                       std::string* error)
{
    const int64_t deadline = MonotonicMs() + timeout_ms;
    for (;;) {
        // Try to parse "<tag> <len>\n<payload>\n" from the buffer.
        const size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            if (newline < 3 || buffer_[1] != ' ') {
                return Fail(error, "malformed frame header");
            }
            uint64_t length = 0;
            for (size_t i = 2; i < newline; ++i) {
                if (buffer_[i] < '0' || buffer_[i] > '9') {
                    return Fail(error, "malformed frame length");
                }
                length = length * 10 +
                         static_cast<uint64_t>(buffer_[i] - '0');
                if (length > kMaxProtoPayload) {
                    return Fail(error, "frame length out of range");
                }
            }
            if (buffer_.size() >= newline + 1 + length + 1) {
                if (buffer_[newline + 1 + length] != '\n') {
                    return Fail(error,
                                "frame payload not newline-terminated");
                }
                *tag = buffer_[0];
                *payload = buffer_.substr(newline + 1, length);
                buffer_.erase(0, newline + 1 + length + 1);
                return true;
            }
        } else if (buffer_.size() > 32) {
            // A frame header fits well inside 32 bytes; anything longer
            // without a newline is not this protocol.
            return Fail(error, "malformed frame header");
        }
        if (!FillSome(deadline, error)) {
            return false;
        }
    }
}

std::string
FrameReader::TakeBuffered()
{
    return std::exchange(buffer_, std::string());
}

}  // namespace spur::serve

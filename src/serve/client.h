/**
 * @file
 * Client side of the sweep service (DESIGN.md §17): submit a request,
 * stream the reply into a resumable save file, recover the document.
 *
 * The reply is a SPUR-STREAM/1 file arriving over the socket, so the
 * save file IS a stream file at every instant: a client killed at any
 * byte leaves a torn-but-recoverable prefix, and resubmitting with the
 * same save path truncates the torn tail, tells the server how many
 * record frames it already holds, and appends only the missing bytes.
 * A completed save file recovers (via the existing RecoverStreamBytes
 * path) to the exact document an offline --json run would have written.
 */
#ifndef SPUR_SERVE_CLIENT_H_
#define SPUR_SERVE_CLIENT_H_

#include <optional>
#include <string>

#include "src/serve/request.h"
#include "src/sweep/merge.h"

namespace spur::serve {

/** Client connection configuration. */
struct SubmitOptions {
    std::string socket_path;
    /// Longest silent gap tolerated while waiting for reply bytes; a
    /// busy server streams records as they finish, so this bounds
    /// per-cell latency, not total request time.
    int timeout_ms = 60000;
};

/** What one submission attempt produced. */
struct SubmitResult {
    /// False when the server rejected the request; reject_reason then
    /// carries the server's explanation.  (Also true for a request
    /// satisfied entirely from a complete save file, no server needed.)
    bool accepted = false;
    /// True when the reply stream completed with a verified trailer;
    /// document is then the full sweep document.
    bool complete = false;
    std::string reject_reason;
    /// Record frames held after this attempt (resume position).
    uint64_t records = 0;
    sweep::SweepDocument document;
};

/**
 * Submits @p request, streaming the reply into @p save_path (empty =
 * in-memory only, not resumable).  An existing save file is recovered
 * first: if complete, the request is satisfied locally without
 * touching the server; otherwise its torn tail is truncated and the
 * reply resumes after the records it already holds.  Returns nullopt +
 * *error on hard failures — connection refused, protocol violations, a
 * corrupt save file, I/O errors.  A torn reply (server died, timeout)
 * is NOT a hard failure: the result has accepted && !complete and the
 * save file keeps every byte received, ready to resume.
 */
std::optional<SubmitResult> SubmitRequest(const SweepRequest& request,
                                          const SubmitOptions& options,
                                          const std::string& save_path,
                                          std::string* error);

}  // namespace spur::serve

#endif  // SPUR_SERVE_CLIENT_H_

#include "src/serve/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/serve/proto.h"
#include "src/sweep/stream.h"

namespace spur::serve {

namespace {

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

/** write(2) until every byte landed (regular files; EINTR-safe). */
bool
WriteAllFile(int fd, const std::string& data)
{
    size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        written += static_cast<size_t>(n);
    }
    return true;
}

/** Reads @p path fully; missing file = empty contents, not an error. */
bool
ReadFileIfExists(const std::string& path, std::string* contents,
                 std::string* error)
{
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        if (errno == ENOENT) {
            return true;
        }
        return Fail(error, path + ": cannot open");
    }
    char buffer[1 << 16];
    size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        contents->append(buffer, read);
    }
    const bool io_error = (std::ferror(file) != 0);
    std::fclose(file);
    if (io_error) {
        return Fail(error, path + ": read error");
    }
    return true;
}

int
ConnectUnix(const std::string& path, std::string* error)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        Fail(error, "socket path must be 1.." +
                        std::to_string(sizeof(addr.sun_path) - 1) +
                        " bytes");
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        Fail(error, "socket failed");
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        Fail(error, path + ": cannot connect");
        ::close(fd);
        return -1;
    }
    return fd;
}

/** RAII close for the two descriptors this call can hold. */
struct FdCloser {
    int fd = -1;
    ~FdCloser()
    {
        if (fd >= 0) {
            ::close(fd);
        }
    }
};

}  // namespace

std::optional<SubmitResult>
SubmitRequest(const SweepRequest& request, const SubmitOptions& options,
              const std::string& save_path, std::string* error)
{
    // Recover whatever an earlier torn attempt left behind: the valid
    // prefix becomes our resume position, the torn tail is discarded.
    std::string have_bytes;
    uint64_t have_records = 0;
    if (!save_path.empty()) {
        std::string bytes;
        if (!ReadFileIfExists(save_path, &bytes, error)) {
            return std::nullopt;
        }
        if (!bytes.empty()) {
            std::string recover_error;
            const std::optional<sweep::RecoveredStream> recovered =
                sweep::RecoverStreamBytes(bytes, &recover_error);
            if (!recovered) {
                Fail(error, save_path + ": " + recover_error);
                return std::nullopt;
            }
            if (!recovered->document.records.empty() &&
                recovered->document.meta.bench != request.name) {
                Fail(error, save_path + ": holds a reply for '" +
                                recovered->document.meta.bench +
                                "', request is '" + request.name + "'");
                return std::nullopt;
            }
            if (recovered->complete) {
                SubmitResult result;
                result.accepted = true;
                result.complete = true;
                result.records = recovered->document.records.size();
                result.document = recovered->document;
                return result;
            }
            have_records = recovered->document.records.size();
            if (have_records > 0) {
                have_bytes = bytes.substr(
                    0, bytes.size() - recovered->dropped_bytes);
            }
            // 0 records: drop even a bare magic/header prefix so the
            // resume state is exactly "empty" or "magic+header+K
            // records" — the only two shapes the server distinguishes.
        }
    }

    FdCloser socket_fd;
    socket_fd.fd = ConnectUnix(options.socket_path, error);
    if (socket_fd.fd < 0) {
        return std::nullopt;
    }
    ClientHello hello;
    hello.have_records = have_records;
    hello.request = request;
    if (!WriteAllFd(socket_fd.fd, EncodeHelloFrame(hello))) {
        Fail(error, "failed to send request");
        return std::nullopt;
    }

    FrameReader reader(socket_fd.fd);
    char tag = '\0';
    std::string payload;
    if (!reader.ReadFrame(&tag, &payload, options.timeout_ms, error)) {
        return std::nullopt;
    }
    if (tag == kTagReject) {
        SubmitResult result;
        if (!ParseRejectPayload(payload, &result.reject_reason, error)) {
            return std::nullopt;
        }
        result.records = have_records;
        return result;
    }
    if (tag != kTagAccept) {
        Fail(error, "unexpected reply frame");
        return std::nullopt;
    }
    ServerAccept accept;
    if (!ParseAcceptPayload(payload, &accept, error)) {
        return std::nullopt;
    }
    if (accept.skip_records != have_records) {
        Fail(error, "server acknowledged " +
                        std::to_string(accept.skip_records) +
                        " resume records, client holds " +
                        std::to_string(have_records));
        return std::nullopt;
    }

    // From here on every received byte goes straight to the save file,
    // so a kill at any moment leaves a recoverable stream prefix.
    std::string reply = have_bytes;
    FdCloser save_fd;
    if (!save_path.empty()) {
        save_fd.fd = ::open(save_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                            0644);
        if (save_fd.fd < 0) {
            Fail(error, save_path + ": cannot write");
            return std::nullopt;
        }
        if (!WriteAllFile(save_fd.fd, have_bytes)) {
            Fail(error, save_path + ": write failed");
            return std::nullopt;
        }
    }
    const auto append = [&](const std::string& data) {
        reply += data;
        return save_fd.fd < 0 || WriteAllFile(save_fd.fd, data);
    };
    if (!append(reader.TakeBuffered())) {
        Fail(error, save_path + ": write failed");
        return std::nullopt;
    }
    bool torn = false;
    for (;;) {
        const int64_t deadline = MonotonicMs() + options.timeout_ms;
        struct pollfd pfd = {socket_fd.fd, POLLIN, 0};
        const int ready = ::poll(
            &pfd, 1, static_cast<int>(deadline - MonotonicMs()));
        if (ready < 0 && errno == EINTR) {
            continue;
        }
        if (ready <= 0) {
            torn = true;  // Silent server: keep the prefix, resumable.
            break;
        }
        char chunk[1 << 16];
        const ssize_t n = ::recv(socket_fd.fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            torn = true;
            break;
        }
        if (n == 0) {
            break;  // Server finished (or died after its last byte).
        }
        if (!append(std::string(chunk, static_cast<size_t>(n)))) {
            Fail(error, save_path + ": write failed");
            return std::nullopt;
        }
    }

    std::string recover_error;
    const std::optional<sweep::RecoveredStream> recovered =
        sweep::RecoverStreamBytes(reply, &recover_error);
    if (!recovered) {
        Fail(error, "reply is corrupt: " + recover_error);
        return std::nullopt;
    }
    SubmitResult result;
    result.accepted = true;
    result.complete = recovered->complete && !torn;
    result.records = recovered->document.records.size();
    result.document = recovered->document;
    return result;
}

}  // namespace spur::serve

/**
 * @file
 * The sweep service daemon (DESIGN.md §17).
 *
 * SweepServer accepts SPUR-SERVE/1 connections on a Unix-domain socket,
 * admits or rejects each request against a bounded cell queue, executes
 * admitted requests over one shared runner::ThreadPool (cells from
 * every connection multiplex over the same workers, longest-first when
 * a cost table is loaded), and streams each reply incrementally as
 * SPUR-STREAM/1 frames so a torn client can reconnect and resume.
 *
 * Admission / backpressure (checked atomically per request):
 *   - draining                          -> reject "draining"
 *   - more than max_clients connections -> reject "too many clients"
 *   - request bigger than the queue     -> reject "exceeds queue capacity"
 *   - queue + request over capacity     -> reject "queue full"
 *   - resume offset beyond the request  -> reject "beyond the request"
 * Rejections carry their reason in an E frame and never block, so the
 * daemon survives saturation without deadlocking: queued cells drain,
 * capacity frees, later requests are admitted again.
 *
 * Lifecycle: Start() binds and listens, Run() serves until
 * RequestDrain() (async-signal-safe; the SIGTERM/SIGINT handlers in
 * tools/spur_serve.cc call it) — then the listener closes, in-flight
 * replies finish streaming, and Run() returns.  A client that
 * disconnects mid-reply cancels its remaining cells: queued ones become
 * no-ops, freeing queue capacity for other clients.
 */
#ifndef SPUR_SERVE_SERVER_H_
#define SPUR_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/runner/thread_pool.h"
#include "src/sweep/cost.h"

namespace spur::serve {

/** Daemon configuration. */
struct ServeOptions {
    std::string socket_path;
    unsigned jobs = 0;  ///< Shared-pool workers; 0 = DefaultJobs().
    /// Cells admitted but not yet executed, across all clients; a
    /// request that would push past this is rejected with a reason.
    uint64_t max_queued_cells = 4096;
    /// Concurrent connections; the one over the limit is rejected.
    unsigned max_clients = 32;
    /// How long a connected client may take to send its request frame.
    int request_timeout_ms = 10000;
    /// Measured durations driving longest-first cell scheduling
    /// (--costs; empty = shuffled order).  Never affects reply bytes.
    sweep::CostTable costs;
};

/** The daemon.  Construct, Start(), then Run() on the serving thread. */
class SweepServer
{
  public:
    explicit SweepServer(ServeOptions options);
    ~SweepServer();

    SweepServer(const SweepServer&) = delete;
    SweepServer& operator=(const SweepServer&) = delete;

    /**
     * Binds the socket (replacing any stale file at the path), starts
     * listening and spins up the shared pool.  False + *error on
     * failure; the server is then unusable.
     */
    bool Start(std::string* error);

    /**
     * Accepts and serves connections until RequestDrain().  Returns the
     * process exit code: 0 after a clean drain (every in-flight reply
     * finished streaming first).
     */
    int Run();

    /**
     * Requests a graceful drain: stop accepting, finish in-flight
     * replies, make Run() return.  Async-signal-safe (a single write to
     * a self-pipe), so signal handlers may call it directly.
     */
    void RequestDrain();

    /** Cells admitted but not yet finished executing (tests). */
    uint64_t queued_cells() const SPUR_EXCLUDES(mutex_);

  private:
    struct Admission {
        bool ok = false;
        std::string reason;
    };

    /** One connection, on its own thread: read, admit, execute, stream. */
    void ServeConnection(int fd) SPUR_EXCLUDES(mutex_);
    void HandleRequest(int fd) SPUR_EXCLUDES(mutex_);

    /** The atomic admission decision for one parsed request. */
    Admission Admit(uint64_t cells, uint64_t have_records)
        SPUR_EXCLUDES(mutex_);

    ServeOptions options_;
    int listen_fd_ = -1;
    int drain_pipe_[2] = {-1, -1};
    std::unique_ptr<runner::ThreadPool> pool_;

    mutable Mutex mutex_;
    bool draining_ SPUR_GUARDED_BY(mutex_) = false;
    unsigned active_clients_ SPUR_GUARDED_BY(mutex_) = 0;
    uint64_t queued_cells_ SPUR_GUARDED_BY(mutex_) = 0;

    /// Connection threads; only the Run() thread touches this.
    std::vector<std::thread> connections_;
};

}  // namespace spur::serve

#endif  // SPUR_SERVE_SERVER_H_

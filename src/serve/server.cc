#include "src/serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/serve/proto.h"
#include "src/serve/request.h"
#include "src/stats/run_record.h"
#include "src/sweep/stream.h"

namespace spur::serve {

namespace {

/**
 * True when the peer is gone or has broken the one-request-per-
 * connection protocol (any byte after the Q frame).  Non-blocking:
 * polled between cells by the executor's committer.
 */
bool
PeerGone(int fd)
{
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 0);
    if (ready <= 0) {
        return false;
    }
    if ((pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
        return true;
    }
    if ((pfd.revents & POLLIN) != 0) {
        char byte = 0;
        const ssize_t n =
            ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
        if (n == 0) {
            return true;  // Orderly shutdown: client closed.
        }
        if (n < 0) {
            return errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR;
        }
        return true;  // Extra bytes violate the protocol; cancel.
    }
    return false;
}

}  // namespace

SweepServer::SweepServer(ServeOptions options)
  : options_(std::move(options))
{
}

SweepServer::~SweepServer()
{
    // Join the pool before any member dies: queued task wrappers lock
    // mutex_ after their cell runs, and members destruct in reverse
    // declaration order (mutex_ would go before pool_).
    pool_.reset();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(options_.socket_path.c_str());
    }
    for (int& fd : drain_pipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

bool
SweepServer::Start(std::string* error)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) {
            *error = "socket path must be 1.." +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes";
        }
        return false;
    }
    if (::pipe2(drain_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
        if (error != nullptr) {
            *error = "pipe2 failed";
        }
        return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        if (error != nullptr) {
            *error = "socket failed";
        }
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size());
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        if (error != nullptr) {
            *error = options_.socket_path + ": bind/listen failed";
        }
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    const unsigned jobs =
        (options_.jobs != 0) ? options_.jobs : runner::DefaultJobs();
    pool_ = std::make_unique<runner::ThreadPool>(jobs);
    return true;
}

int
SweepServer::Run()
{
    for (;;) {
        struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                                {drain_pipe_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if (fds[1].revents != 0) {
            break;  // Drain requested.
        }
        if ((fds[0].revents & POLLIN) != 0) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                continue;
            }
            {
                MutexLock lock(mutex_);
                ++active_clients_;
            }
            connections_.emplace_back(&SweepServer::ServeConnection,
                                      this, fd);
        }
    }
    // Drain: reject late arrivals, stop accepting, let every in-flight
    // reply finish streaming, then return cleanly.
    {
        MutexLock lock(mutex_);
        draining_ = true;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    for (std::thread& connection : connections_) {
        connection.join();
    }
    connections_.clear();
    return 0;
}

void
SweepServer::RequestDrain()
{
    // Only a write(2) on the nonblocking self-pipe: async-signal-safe.
    const char byte = 'd';
    const ssize_t ignored = ::write(drain_pipe_[1], &byte, 1);
    (void)ignored;
}

uint64_t
SweepServer::queued_cells() const
{
    MutexLock lock(mutex_);
    return queued_cells_;
}

SweepServer::Admission
SweepServer::Admit(uint64_t cells, uint64_t have_records)
{
    Admission admission;
    if (cells == 0) {
        admission.reason = "request has no cells";
        return admission;
    }
    if (have_records > cells) {
        admission.reason =
            "resume offset " + std::to_string(have_records) +
            " is beyond the request (" + std::to_string(cells) +
            " cells)";
        return admission;
    }
    MutexLock lock(mutex_);
    if (draining_) {
        admission.reason = "server is draining";
        return admission;
    }
    if (active_clients_ > options_.max_clients) {
        admission.reason =
            "too many clients (" + std::to_string(active_clients_) +
            " active, limit " + std::to_string(options_.max_clients) +
            ")";
        return admission;
    }
    if (cells > options_.max_queued_cells) {
        admission.reason =
            "request of " + std::to_string(cells) +
            " cells exceeds queue capacity (" +
            std::to_string(options_.max_queued_cells) + ")";
        return admission;
    }
    if (queued_cells_ + cells > options_.max_queued_cells) {
        admission.reason =
            "queue full (" + std::to_string(queued_cells_) +
            " cells queued, capacity " +
            std::to_string(options_.max_queued_cells) + ")";
        return admission;
    }
    queued_cells_ += cells;
    admission.ok = true;
    return admission;
}

void
SweepServer::ServeConnection(int fd)
{
    HandleRequest(fd);
    ::close(fd);
    MutexLock lock(mutex_);
    --active_clients_;
}

void
SweepServer::HandleRequest(int fd)
{
    FrameReader reader(fd);
    char tag = '\0';
    std::string payload;
    std::string error;
    if (!reader.ReadFrame(&tag, &payload, options_.request_timeout_ms,
                          &error)) {
        // Nothing parseable arrived; there is no one to explain to.
        return;
    }
    if (tag != kTagRequest) {
        WriteAllFd(fd, EncodeRejectFrame("expected a request (Q) frame"));
        return;
    }
    ClientHello hello;
    if (!ParseHelloPayload(payload, &hello, &error)) {
        WriteAllFd(fd, EncodeRejectFrame(error));
        return;
    }
    const uint64_t total = TotalCells(hello.request);
    const Admission admission = Admit(total, hello.have_records);
    if (!admission.ok) {
        WriteAllFd(fd, EncodeRejectFrame(admission.reason));
        return;
    }

    // Admitted: every cell now occupies a queue slot until its task
    // runs (as a no-op once cancelled), so capacity frees even when the
    // client dies immediately.
    ServerAccept accept;
    accept.total_cells = total;
    accept.skip_records = hello.have_records;
    std::string preface = EncodeAcceptFrame(accept);
    if (hello.have_records == 0) {
        // Fresh request: the reply starts a new stream file.  A resume
        // (have_records > 0) already holds magic + header client-side.
        preface += sweep::kStreamMagic;
        preface += sweep::EncodeStreamFrame(
            'H', sweep::EncodeStreamHeaderPayload(hello.request.name, 0,
                                                  1));
    }
    bool alive = WriteAllFd(fd, preface);

    uint64_t digest = sweep::StreamDigestInit();
    uint64_t committed = 0;
    ExecuteHooks hooks;
    hooks.submit = [this](std::function<void()> task) {
        pool_->Submit([this, task = std::move(task)] {
            task();
            MutexLock lock(mutex_);
            --queued_cells_;
        });
    };
    if (!options_.costs.empty()) {
        hooks.cost = [this](const core::RunConfig& config, uint32_t rep) {
            return options_.costs.Lookup(config, rep);
        };
    }
    hooks.cancelled = [fd] { return PeerGone(fd); };
    hooks.commit = [&](const stats::RunRecord& record) {
        // The digest covers every record — including the skipped resume
        // prefix — because the trailer must verify the client's full
        // reconstructed file, not just the bytes this connection sent.
        const std::string record_json = stats::JsonWriter::ToJson(record);
        digest = sweep::StreamDigestMix(digest, record_json);
        ++committed;
        if (!alive) {
            return false;
        }
        if (committed <= hello.have_records) {
            return true;  // Client already holds this frame.
        }
        alive = WriteAllFd(fd,
                           sweep::EncodeStreamFrame('R', record_json));
        return alive;
    };

    const ExecuteOutcome outcome =
        ExecuteSweepRequest(hello.request, 0, hooks);
    if (alive && outcome.completed) {
        WriteAllFd(fd, sweep::EncodeStreamFrame(
                           'T', sweep::EncodeStreamTrailerPayload(
                                    outcome.document.meta, total, digest)));
    }
}

}  // namespace spur::serve
